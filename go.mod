module ccahydro

go 1.22
