// Package ccahydro's root benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation, plus ablation
// benches for the design choices called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// The full parameter sweeps (and the printed tables that mirror the
// paper's) live in cmd/experiments; these benches exercise the same
// code paths at benchmark-friendly sizes.
package ccahydro

import (
	"math"
	"testing"

	"ccahydro/internal/amr"
	"ccahydro/internal/bench"
	"ccahydro/internal/cca"
	"ccahydro/internal/chem"
	"ccahydro/internal/components"
	"ccahydro/internal/core"
	"ccahydro/internal/cvode"
	"ccahydro/internal/euler"
	"ccahydro/internal/field"
	"ccahydro/internal/mpi"
	"ccahydro/internal/rkc"
)

// ---- Table 4: component vs direct-call serial performance ------------------

// BenchmarkTable4Component times the component-assembled 0D code: the
// integrator reaches the chemistry through CCA ports. Compare directly
// against BenchmarkTable4Direct (identical algorithm, concrete calls).
func BenchmarkTable4Component(b *testing.B) {
	repo := components.NewRepository()
	f := cca.NewFramework(repo, nil)
	for _, p := range [][3]string{{"chem", "mech", "h2air-lite"}} {
		if err := f.SetParameter(p[0], p[1], p[2]); err != nil {
			b.Fatal(err)
		}
	}
	for _, inst := range [][2]string{
		{"ThermoChemistry", "chem"}, {"DPDt", "dpdt"},
		{"ProblemModeler", "model"}, {"CvodeComponent", "cvode"},
	} {
		if err := f.Instantiate(inst[0], inst[1]); err != nil {
			b.Fatal(err)
		}
	}
	for _, w := range [][4]string{
		{"dpdt", "chemistry", "chem", "chemistry"},
		{"model", "chemistry", "chem", "chemistry"},
		{"model", "dpdt", "dpdt", "dpdt"},
		{"cvode", "rhs", "model", "rhs"},
	} {
		if err := f.Connect(w[0], w[1], w[2], w[3]); err != nil {
			b.Fatal(err)
		}
	}
	comp, _ := f.Lookup("cvode")
	integ := comp.(*components.CvodeComponent)
	chemComp, _ := f.Lookup("chem")
	mech := chemComp.(*components.ThermoChemistry).Mechanism()
	n := mech.NumSpecies()
	y0 := make([]float64, n+2)
	y0[0] = 1000
	copy(y0[1:1+n], mech.StoichiometricH2Air())
	y0[1+n] = chem.PAtm
	y := make([]float64, len(y0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < 50; c++ {
			copy(y, y0)
			if _, err := integ.IntegrateTo(0, 2e-6, y); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// table4DirectRHS is the direct-call ("C-code") configuration.
func table4Direct(b *testing.B, cells int) {
	mech := chem.H2AirLite()
	ws := chem.NewSourceWorkspace(mech)
	n := mech.NumSpecies()
	rhs := func(_ float64, y, ydot []float64) {
		T := y[0]
		if T < 200 {
			T = 200
		}
		rho := mech.Density(y[1+n], T, y[1:1+n])
		ydot[0] = mech.ConstVolumeSource(T, rho, y[1:1+n], ydot[1:1+n], ws)
		ydot[1+n] = mech.DPDt(rho, T, ydot[0], y[1:1+n], ydot[1:1+n])
	}
	s := cvode.New(n+2, rhs, cvode.Options{RelTol: 1e-8, AbsTol: 1e-12})
	y0 := make([]float64, n+2)
	y0[0] = 1000
	copy(y0[1:1+n], mech.StoichiometricH2Air())
	y0[1+n] = chem.PAtm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < cells; c++ {
			s.Init(0, y0)
			if err := s.Integrate(2e-6); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable4Direct is the baseline the paper calls the "C-code".
func BenchmarkTable4Direct(b *testing.B) { table4Direct(b, 50) }

// ---- Table 5 / Fig 8: weak scaling on the simulated cluster ----------------

var benchCosts = bench.CellCosts{ColdChem: 5e-5, HotChem: 1.3e-4, DiffStage: 8e-6, DMax: 3e-3, HotT: 800}

func weakScaling(b *testing.B, perProc int) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bench.RunScaling(bench.ScalingConfig{P: 8, PerProcN: perProc, Costs: benchCosts})
		if r.Time <= 0 {
			b.Fatal("no virtual time")
		}
	}
}

// BenchmarkTable5Weak50 etc. run the constant-per-processor-workload
// configuration (paper Table 5 rows) at P=8.
func BenchmarkTable5Weak50(b *testing.B)  { weakScaling(b, 50) }
func BenchmarkTable5Weak100(b *testing.B) { weakScaling(b, 100) }
func BenchmarkTable5Weak175(b *testing.B) { weakScaling(b, 175) }

// ---- Fig 9: strong scaling ---------------------------------------------------

func strongScaling(b *testing.B, global, p int) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bench.RunScaling(bench.ScalingConfig{P: p, GlobalNx: global, GlobalNy: global, Costs: benchCosts})
		if r.Time <= 0 {
			b.Fatal("no virtual time")
		}
	}
}

// BenchmarkFig9Strong200P16 and friends are points on the paper's
// constant-global-size curves.
func BenchmarkFig9Strong200P16(b *testing.B) { strongScaling(b, 200, 16) }
func BenchmarkFig9Strong350P16(b *testing.B) { strongScaling(b, 350, 16) }

// ---- Fig 3 / Fig 4: one flame macro step ------------------------------------

// BenchmarkFig3FlameStep times one operator-split reaction-diffusion
// macro step (chemistry in every cell + RKC diffusion) on a 24x24
// 2-level hierarchy — the unit of work behind the paper's flame frames.
func BenchmarkFig3FlameStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, err := core.RunReactionDiffusion(nil,
			core.Param{Instance: "grace", Key: "nx", Value: "24"},
			core.Param{Instance: "grace", Key: "ny", Value: "24"},
			core.Param{Instance: "grace", Key: "maxLevels", Value: "2"},
			core.Param{Instance: "driver", Key: "steps", Value: "1"},
			core.Param{Instance: "driver", Key: "dt", Value: "1e-7"},
			core.Param{Instance: "driver", Key: "regridEvery", Value: "1"},
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig 6 / Fig 7: shock-interface work units --------------------------------

// BenchmarkFig7ShockRun times a short AMR Godunov run with the
// circulation diagnostic — the work unit behind the Fig 6/7 curves.
func BenchmarkFig7ShockRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, err := core.RunShockInterface(nil, "GodunovFlux",
			core.Param{Instance: "grace", Key: "nx", Value: "48"},
			core.Param{Instance: "grace", Key: "ny", Value: "24"},
			core.Param{Instance: "grace", Key: "lx", Value: "2.0"},
			core.Param{Instance: "grace", Key: "ly", Value: "1.0"},
			core.Param{Instance: "grace", Key: "maxLevels", Value: "2"},
			core.Param{Instance: "driver", Key: "tEnd", Value: "0.05"},
			core.Param{Instance: "driver", Key: "maxSteps", Value: "20"},
			core.Param{Instance: "driver", Key: "regridEvery", Value: "5"},
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation: port dispatch vs direct call ----------------------------------
//
// Isolates the mechanism Table 4 measures: the cost of one method
// invocation through a connected CCA port vs a direct concrete call vs
// a closure call.

type adderPort interface{ Add(a, b float64) float64 }

type adderComp struct{}

func (a *adderComp) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(a, "sum", "bench.AdderPort")
}

//go:noinline
func (a *adderComp) Add(x, y float64) float64 { return x + y }

type adderUser struct {
	svc  cca.Services
	port adderPort
}

func (u *adderUser) SetServices(svc cca.Services) error {
	u.svc = svc
	return svc.RegisterUsesPort("calc", "bench.AdderPort")
}

func BenchmarkAblationPortDispatch(b *testing.B) {
	repo := cca.NewRepository()
	repo.Register("Adder", func() cca.Component { return &adderComp{} })
	repo.Register("User", func() cca.Component { return &adderUser{} })
	f := cca.NewFramework(repo, nil)
	if err := f.Instantiate("Adder", "a"); err != nil {
		b.Fatal(err)
	}
	if err := f.Instantiate("User", "u"); err != nil {
		b.Fatal(err)
	}
	if err := f.Connect("u", "calc", "a", "sum"); err != nil {
		b.Fatal(err)
	}
	comp, _ := f.Lookup("u")
	u := comp.(*adderUser)
	p, err := u.svc.GetPort("calc")
	if err != nil {
		b.Fatal(err)
	}
	u.port = p.(adderPort)
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = u.port.Add(acc, 1)
	}
	sink = acc
}

func BenchmarkAblationDirectCall(b *testing.B) {
	a := &adderComp{}
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = a.Add(acc, 1)
	}
	sink = acc
}

func BenchmarkAblationClosureCall(b *testing.B) {
	a := &adderComp{}
	fn := func(x, y float64) float64 { return a.Add(x, y) }
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = fn(acc, 1)
	}
	sink = acc
}

var sink float64

// ---- Ablation: Godunov vs EFM flux cost ---------------------------------------

func fluxBench(b *testing.B, flux euler.FluxFunc) {
	g := euler.Gas{Gamma: 1.4}
	l := euler.Primitive{Rho: 1, U: 0.3, P: 1, Zeta: 0}
	r := euler.Primitive{Rho: 0.5, U: -0.2, P: 0.7, Zeta: 1}
	var acc euler.Conserved
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = flux(g, l, r)
	}
	sink = acc[0]
}

// BenchmarkAblationGodunovFlux vs BenchmarkAblationEFMFlux: the cost of
// the exact Riemann solution vs the kinetic splitting the paper swaps in.
func BenchmarkAblationGodunovFlux(b *testing.B) { fluxBench(b, euler.GodunovFlux) }
func BenchmarkAblationEFMFlux(b *testing.B)     { fluxBench(b, euler.EFMFlux) }
func BenchmarkAblationHLLCFlux(b *testing.B)    { fluxBench(b, euler.HLLCFlux) }

// ---- Ablation: clustering efficiency threshold ---------------------------------

func clusterBench(b *testing.B, efficiency float64) {
	ff := amr.NewFlagField(amr.NewBox(0, 0, 255, 255))
	// An annulus of flags (flame-front-like).
	for j := 0; j < 256; j++ {
		for i := 0; i < 256; i++ {
			r := math.Hypot(float64(i-128), float64(j-128))
			if r > 60 && r < 70 {
				ff.Set(i, j)
			}
		}
	}
	opt := amr.ClusterOptions{Efficiency: efficiency, MaxBoxCells: 4096, MinWidth: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boxes := amr.Cluster(ff, opt)
		if len(boxes) == 0 {
			b.Fatal("no boxes")
		}
	}
}

// Clustering threshold sweep: low efficiency gives few fat boxes, high
// efficiency gives many tight ones.
func BenchmarkAblationCluster50(b *testing.B) { clusterBench(b, 0.5) }
func BenchmarkAblationCluster70(b *testing.B) { clusterBench(b, 0.7) }
func BenchmarkAblationCluster90(b *testing.B) { clusterBench(b, 0.9) }

// ---- Ablation: greedy vs SFC load balancing ------------------------------------

func balanceBench(b *testing.B, bal amr.LoadBalancer) {
	var boxes []amr.Box
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			boxes = append(boxes, amr.NewBox(i*16, j*16, i*16+15+i%3, j*16+15))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		owners := bal.Assign(boxes, 1, 16, nil)
		if len(owners) != len(boxes) {
			b.Fatal("bad assignment")
		}
	}
}

func BenchmarkAblationGreedyBalance(b *testing.B) { balanceBench(b, amr.GreedyBalancer{}) }
func BenchmarkAblationSFCBalance(b *testing.B)    { balanceBench(b, amr.SFCBalancer{}) }

// ---- Ablation: RKC vs fixed-step RK2 on a stiff diffusion operator -------------

func diffusionOperator(n int, d, dx float64) (rkc.RHS, rkc.SpectralRadius, []float64) {
	inv := d / (dx * dx)
	f := func(_ float64, y, ydot []float64) {
		for i := 0; i < n; i++ {
			var l, r float64
			if i > 0 {
				l = y[i-1]
			}
			if i < n-1 {
				r = y[i+1]
			}
			ydot[i] = inv * (l - 2*y[i] + r)
		}
	}
	rho := func(_ float64, _ []float64) float64 { return 4 * inv }
	y0 := make([]float64, n)
	for i := range y0 {
		y0[i] = math.Sin(math.Pi * float64(i+1) / float64(n+1))
	}
	return f, rho, y0
}

// BenchmarkAblationRKCDiffusion integrates a stiff 1D diffusion system
// with RKC (stabilized stages).
func BenchmarkAblationRKCDiffusion(b *testing.B) {
	n := 255
	f, rho, y0 := diffusionOperator(n, 1, 1.0/256)
	for i := 0; i < b.N; i++ {
		s := rkc.New(n, f, rho, rkc.Options{RelTol: 1e-5, AbsTol: 1e-8})
		s.Init(0, y0)
		if err := s.Integrate(1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRK2Diffusion integrates the same system with
// explicit RK2 at its stability limit (the cost RKC's extended
// stability interval avoids).
func BenchmarkAblationRK2Diffusion(b *testing.B) {
	n := 255
	f, _, y0 := diffusionOperator(n, 1, 1.0/256)
	dx := 1.0 / 256
	dtStable := 0.4 * dx * dx // explicit diffusion limit
	for i := 0; i < b.N; i++ {
		y := append([]float64(nil), y0...)
		k1 := make([]float64, n)
		k2 := make([]float64, n)
		tmp := make([]float64, n)
		for t := 0.0; t < 1e-3; t += dtStable {
			f(t, y, k1)
			for j := range tmp {
				tmp[j] = y[j] + dtStable*k1[j]
			}
			f(t, tmp, k2)
			for j := range y {
				y[j] += 0.5 * dtStable * (k1[j] + k2[j])
			}
		}
		sink = y[n/2]
	}
}

// ---- Ablation: BDF order cap on ignition stiffness ------------------------------

func bdfOrderBench(b *testing.B, maxOrder int) {
	mech := chem.H2AirLite()
	ws := chem.NewSourceWorkspace(mech)
	n := mech.NumSpecies()
	rhs := func(_ float64, y, ydot []float64) {
		T := y[0]
		if T < 200 {
			T = 200
		}
		ydot[0] = mech.ConstPressureSource(T, chem.PAtm, y[1:1+n], ydot[1:1+n], ws)
	}
	y0 := make([]float64, n+1)
	y0[0] = 1200
	copy(y0[1:], mech.StoichiometricH2Air())
	s := cvode.New(n+1, rhs, cvode.Options{RelTol: 1e-8, AbsTol: 1e-12, MaxOrder: maxOrder})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Init(0, y0)
		if err := s.Integrate(1e-5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBDFOrder1(b *testing.B) { bdfOrderBench(b, 1) }
func BenchmarkAblationBDFOrder2(b *testing.B) { bdfOrderBench(b, 2) }
func BenchmarkAblationBDFOrder5(b *testing.B) { bdfOrderBench(b, 5) }

// ---- Infrastructure micro-benches ----------------------------------------------

// BenchmarkGhostExchange4Ranks times one collective ghost exchange on a
// 4-rank cohort (the unit the scaling harness repeats).
func BenchmarkGhostExchange4Ranks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mpi.Run(4, mpi.ZeroModel, func(comm *mpi.Comm) {
			h := amr.NewHierarchy(amr.NewBox(0, 0, 63, 63), 2, 1, 4)
			d := field.New("u", h, 10, 2, comm)
			for k := 0; k < 3; k++ {
				d.ExchangeGhosts(0)
			}
		})
	}
}

// BenchmarkChemistrySource times one full H2-air source-term
// evaluation (the flame's innermost kernel).
func BenchmarkChemistrySource(b *testing.B) {
	mech := chem.H2Air()
	ws := chem.NewSourceWorkspace(mech)
	Y := mech.StoichiometricH2Air()
	Y[mech.SpeciesIndex("OH")] = 1e-3
	chem.NormalizeY(Y)
	dY := make([]float64, mech.NumSpecies())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = mech.ConstPressureSource(1500, chem.PAtm, Y, dY, ws)
	}
}

// BenchmarkAMRRegrid times a full flag-cluster-rebuild cycle.
func BenchmarkAMRRegrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := amr.NewHierarchy(amr.NewBox(0, 0, 127, 127), 2, 3, 4)
		ff := amr.NewFlagField(h.LevelDomain(0))
		for j := 40; j < 90; j++ {
			ff.Set(j, j)
			ff.Set(j+1, j)
		}
		h.Regrid([]*amr.FlagField{ff}, amr.DefaultRegridOptions)
		if h.NumLevels() < 2 {
			b.Fatal("no refinement")
		}
	}
}

// BenchmarkIgnition0DFull times the complete paper Sec. 4.1 run
// (assembled code, full mechanism, 1 ms horizon; the paper reports
// 1.5 s on a 1 GHz Pentium III).
func BenchmarkIgnition0DFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dr, err := core.RunIgnition0D(
			core.Param{Instance: "driver", Key: "tEnd", Value: "1e-3"},
			core.Param{Instance: "driver", Key: "nOut", Value: "10"},
		)
		if err != nil {
			b.Fatal(err)
		}
		sink = dr.Temps[len(dr.Temps)-1]
	}
}

var _ = components.NewRepository // keep the import for palette parity checks
