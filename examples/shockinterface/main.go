// ShockInterface runs the paper's Sec. 4.3 experiment: a Mach 1.5
// shock rupturing an oblique Air/Freon interface (density ratio 3,
// 30 degrees from vertical) in a 2D shock tube with reflecting upper
// and lower walls, solved by a second-order Godunov method on a SAMR
// hierarchy — the Table 3 assembly.
//
// The -flux switch demonstrates the paper's headline reuse result:
// replacing the GodunovFlux component with EFMFlux (a more diffusive
// gas-kinetic scheme) to run strong shocks, with no other change:
//
//	go run ./examples/shockinterface                  # Mach 1.5, Godunov
//	go run ./examples/shockinterface -flux efm -mach 3.5
//	go run ./examples/shockinterface -arena           # Fig 5 wiring
package main

import (
	"flag"
	"fmt"
	"log"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/core"
)

func main() {
	nx := flag.Int("nx", 96, "coarse cells along the tube")
	levels := flag.Int("levels", 2, "max AMR levels (paper: 3)")
	tEnd := flag.Float64("tEnd", 1.0, "end time (shock-crossing units)")
	mach := flag.Float64("mach", 1.5, "incident shock Mach number")
	fluxFlag := flag.String("flux", "godunov", "flux component: godunov or efm")
	arena := flag.Bool("arena", false, "print the component assembly (Fig 5) and exit")
	flag.Parse()

	fluxClass := "GodunovFlux"
	if *fluxFlag == "efm" {
		fluxClass = "EFMFlux"
	}
	params := []core.Param{
		{Instance: "grace", Key: "nx", Value: fmt.Sprint(*nx)},
		{Instance: "grace", Key: "ny", Value: fmt.Sprint(*nx / 2)},
		{Instance: "grace", Key: "lx", Value: "2.0"},
		{Instance: "grace", Key: "ly", Value: "1.0"},
		{Instance: "grace", Key: "maxLevels", Value: fmt.Sprint(*levels)},
		{Instance: "gas", Key: "mach", Value: fmt.Sprint(*mach)},
		{Instance: "driver", Key: "tEnd", Value: fmt.Sprint(*tEnd)},
		{Instance: "driver", Key: "maxSteps", Value: "4000"},
		{Instance: "driver", Key: "regridEvery", Value: "5"},
	}

	if *arena {
		f := cca.NewFramework(core.Repo(), nil)
		if err := core.AssembleShockInterface(f, fluxClass, params...); err != nil {
			log.Fatal(err)
		}
		fmt.Print(cca.Arena(f))
		return
	}

	dr, f, err := core.RunShockInterface(nil, fluxClass, params...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("shock-interface interaction: Mach %.2f, %s flux, %d levels\n\n", *mach, fluxClass, *levels)
	n := len(dr.Times)
	stride := n / 12
	if stride < 1 {
		stride = 1
	}
	fmt.Printf("%10s %14s\n", "t", "circulation")
	for i := 0; i < n; i += stride {
		fmt.Printf("%10.3f %14.4f\n", dr.Times[i], dr.Circulations[i])
	}
	fmt.Printf("%10.3f %14.4f\n", dr.Times[n-1], dr.Circulations[n-1])
	comp, _ := f.Lookup("grace")
	fmt.Printf("\n%s", comp.(*components.GrACEComponent).Hierarchy())
	fmt.Printf("steps: %d, final time: %.3f\n", dr.Steps, dr.FinalTime)
}
