// Checkpoint demonstrates save/restart of a running SAMR simulation:
// the shock-interface problem is advanced halfway, each rank's shard
// (hierarchy geometry + owned patch data) is serialized, a fresh
// process-state restores it, and the restarted field is verified to be
// bit-identical before continuing the run.
//
//	go run ./examples/checkpoint [-dir /tmp/ckpt]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/core"
	"ccahydro/internal/euler"
	"ccahydro/internal/field"
)

func main() {
	dir := flag.String("dir", "", "checkpoint directory (default: temp dir)")
	flag.Parse()
	if *dir == "" {
		d, err := os.MkdirTemp("", "ccahydro-ckpt-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
		*dir = d
	}

	params := []core.Param{
		{Instance: "grace", Key: "nx", Value: "64"},
		{Instance: "grace", Key: "ny", Value: "32"},
		{Instance: "grace", Key: "lx", Value: "2.0"},
		{Instance: "grace", Key: "ly", Value: "1.0"},
		{Instance: "grace", Key: "maxLevels", Value: "2"},
		{Instance: "driver", Key: "tEnd", Value: "0.3"},
		{Instance: "driver", Key: "maxSteps", Value: "200"},
		{Instance: "driver", Key: "regridEvery", Value: "5"},
	}

	// Phase 1: run halfway.
	dr, f, err := core.RunShockInterface(nil, "GodunovFlux", params...)
	if err != nil {
		log.Fatal(err)
	}
	comp, _ := f.Lookup("grace")
	gc := comp.(*components.GrACEComponent)
	d := gc.Field("U")
	fmt.Printf("phase 1: %d steps to t=%.3f, hierarchy:\n%s", dr.Steps, dr.FinalTime, gc.Hierarchy())

	// Checkpoint (serial run: one shard).
	path := filepath.Join(*dir, "shock.ckpt")
	fd, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.WriteCheckpoint(fd); err != nil {
		log.Fatal(err)
	}
	fd.Close()
	info, _ := os.Stat(path)
	fmt.Printf("\ncheckpoint written: %s (%d bytes)\n", path, info.Size())

	// Phase 2: restore into a fresh DataObject and verify bit equality.
	rd, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := field.ReadCheckpoint(rd, nil)
	rd.Close()
	if err != nil {
		log.Fatal(err)
	}
	var buf1, buf2 bytes.Buffer
	if err := d.WriteCSV(&buf1, euler.IRho, "orig"); err != nil {
		log.Fatal(err)
	}
	if err := restored.WriteCSV(&buf2, euler.IRho, "orig"); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		log.Fatal("restored field differs from original")
	}
	fmt.Printf("restore verified: density field bit-identical (%d levels, %d cells)\n",
		restored.Hierarchy().NumLevels(), restored.Hierarchy().TotalCells())

	// Phase 3: continue the run from the restored state — assemble a
	// fresh framework, Adopt the restored field into its GrACE mesh,
	// and fire the driver; it detects the existing field and skips the
	// initial condition.
	f2 := cca.NewFramework(core.Repo(), nil)
	params2 := append(params, core.Param{Instance: "driver", Key: "tEnd", Value: "0.6"})
	if err := core.AssembleShockInterface(f2, "GodunovFlux", params2...); err != nil {
		log.Fatal(err)
	}
	g2Comp, _ := f2.Lookup("grace")
	g2Comp.(*components.GrACEComponent).Adopt("U", restored)
	if err := f2.Go("driver", "go"); err != nil {
		log.Fatal(err)
	}
	dr2Comp, _ := f2.Lookup("driver")
	dr2 := dr2Comp.(*components.ShockDriver)
	fmt.Printf("\nphase 3 (restarted run): %d more steps to t=%.3f, circulation %.4f\n",
		dr2.Steps, 0.3+dr2.FinalTime, dr2.Circulations[len(dr2.Circulations)-1])
}
