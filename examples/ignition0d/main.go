// Ignition0D runs the paper's Sec. 4.1 experiment: constant-volume
// autoignition of a stoichiometric H2–air mixture at 1000 K and 1 atm,
// assembled from the Table 1 components (ThermoChemistry,
// CvodeComponent, problemModeler, dPdt, Initializer) and integrated to
// 1 ms.
//
//	go run ./examples/ignition0d [-T0 1000] [-tEnd 1e-3] [-arena]
package main

import (
	"flag"
	"fmt"
	"log"

	"ccahydro/internal/cca"
	"ccahydro/internal/core"
)

func main() {
	t0 := flag.Float64("T0", 1000, "initial temperature (K)")
	tEnd := flag.Float64("tEnd", 1e-3, "integration horizon (s)")
	arena := flag.Bool("arena", false, "print the component assembly (the paper's Fig 1 GUI view)")
	flag.Parse()

	if *arena {
		f := cca.NewFramework(core.Repo(), nil)
		if err := core.AssembleIgnition0D(f); err != nil {
			log.Fatal(err)
		}
		fmt.Print(cca.Arena(f))
		return
	}

	dr, err := core.RunIgnition0D(
		core.Param{Instance: "init", Key: "T0", Value: fmt.Sprint(*t0)},
		core.Param{Instance: "driver", Key: "tEnd", Value: fmt.Sprint(*tEnd)},
		core.Param{Instance: "driver", Key: "nOut", Value: "25"},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("0D ignition: stoichiometric H2-air, T0=%.0f K, P0=1 atm (rigid vessel)\n\n", *t0)
	fmt.Printf("%12s %10s %12s\n", "t (s)", "T (K)", "P (Pa)")
	for i := range dr.Times {
		fmt.Printf("%12.4e %10.1f %12.0f\n", dr.Times[i], dr.Temps[i], dr.Pressures[i])
	}
	fmt.Printf("\nignition delay (peak dT/dt): %.3e s\n", dr.IgnitionDelay)
	fmt.Printf("final state: T = %.1f K, P = %.2f atm\n",
		dr.Temps[len(dr.Temps)-1], dr.Pressures[len(dr.Pressures)-1]/101325)
}
