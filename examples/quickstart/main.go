// Quickstart: the CCA component model in ~60 lines.
//
// Two components are defined — a provider exporting a tiny domain port
// and a driver that uses it — registered in a repository, instantiated
// inside a framework, wired port-to-port, and fired through the
// standard GoPort. This is the provides-uses pattern every assembly in
// this repository is built from.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ccahydro/internal/cca"
)

// GreeterPort is a domain port: a data-less interface owned by the
// "user community" (us).
type GreeterPort interface {
	Greet(name string) string
}

// greeter provides GreeterPort.
type greeter struct{ prefix string }

func (g *greeter) SetServices(svc cca.Services) error {
	g.prefix = svc.Parameters().GetString("prefix", "Hello")
	return svc.AddProvidesPort(g, "greetings", "demo.GreeterPort")
}

func (g *greeter) Greet(name string) string {
	return fmt.Sprintf("%s, %s!", g.prefix, name)
}

// driver uses a GreeterPort and provides the standard GoPort so the
// framework's "go" command can start it.
type driver struct{ svc cca.Services }

func (d *driver) SetServices(svc cca.Services) error {
	d.svc = svc
	if err := svc.RegisterUsesPort("greeter", "demo.GreeterPort"); err != nil {
		return err
	}
	return svc.AddProvidesPort(goPort{d}, "go", cca.GoPortType)
}

type goPort struct{ d *driver }

func (g goPort) Go() error {
	p, err := g.d.svc.GetPort("greeter")
	if err != nil {
		return err
	}
	defer g.d.svc.ReleasePort("greeter")
	fmt.Println(p.(GreeterPort).Greet("CCA world"))
	return nil
}

func main() {
	repo := cca.NewRepository()
	repo.Register("Greeter", func() cca.Component { return &greeter{} })
	repo.Register("Driver", func() cca.Component { return &driver{} })

	f := cca.NewFramework(repo, nil)
	must(f.SetParameter("hello", "prefix", "Greetings"))
	must(f.Instantiate("Greeter", "hello"))
	must(f.Instantiate("Driver", "main"))
	must(f.Connect("main", "greeter", "hello", "greetings"))

	fmt.Print(cca.Arena(f))
	fmt.Println("---")
	must(f.Go("main", "go"))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
