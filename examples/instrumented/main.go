// Instrumented runs the 0D ignition assembly with two observability
// layers stacked:
//
//  1. The TAU-style performance monitor spliced into the integrator's
//     RHS wire — the paper's future-work plan ("By using TAU, we intend
//     to characterize the performance characteristics of individual
//     components and their assemblies"), executed. The RHSMonitor
//     component provides and uses the same port type, so it drops into
//     the existing wiring without touching either endpoint:
//
//     before:  cvode.rhs ────────────────► model.rhs
//     after:   cvode.rhs ─► monitor.rhs; monitor.inner ─► model.rhs
//
//  2. The framework's own port-call interceptor: attaching an obs
//     session to the framework makes GetPort hand out instrumented
//     proxies, so every wire is measured without splicing anything.
//
//	go run ./examples/instrumented [-mech co-h2-air] [-trace flame.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/core"
	"ccahydro/internal/mpi"
	"ccahydro/internal/obs"
)

func main() {
	mech := flag.String("mech", "h2air", "mechanism: h2air, h2air-lite, co-h2-air")
	tEnd := flag.Float64("tEnd", 5e-4, "integration horizon (s)")
	tracePath := flag.String("trace", "", "write a Perfetto trace of the SCMD flame to this file")
	flag.Parse()

	repo := core.Repo()
	f := cca.NewFramework(repo, nil)
	serialObs := obs.NewGroup(1)
	f.SetObservability(serialObs.Rank(0))
	must(f.SetParameter("chem", "mech", *mech))
	must(f.SetParameter("driver", "tEnd", fmt.Sprint(*tEnd)))
	must(f.SetParameter("driver", "nOut", "10"))
	must(f.SetParameter("monitor", "label", "chemistry RHS"))

	for _, inst := range [][2]string{
		{"ThermoChemistry", "chem"}, {"DPDt", "dpdt"}, {"ProblemModeler", "model"},
		{"Initializer", "init"}, {"CvodeComponent", "cvode"},
		{"StatisticsComponent", "stats"}, {"IgnitionDriver", "driver"},
		{"TauTimer", "tau"}, {"RHSMonitor", "monitor"},
	} {
		must(f.Instantiate(inst[0], inst[1]))
	}
	for _, w := range [][4]string{
		{"dpdt", "chemistry", "chem", "chemistry"},
		{"model", "chemistry", "chem", "chemistry"},
		{"model", "dpdt", "dpdt", "dpdt"},
		{"init", "chemistry", "chem", "chemistry"},
		{"monitor", "inner", "model", "rhs"},
		{"monitor", "timing", "tau", "timing"},
		{"cvode", "rhs", "monitor", "rhs"},
		{"driver", "ic", "init", "ic"},
		{"driver", "integrator", "cvode", "integrator"},
		{"driver", "chemistry", "chem", "chemistry"},
		{"driver", "stats", "stats", "stats"},
	} {
		must(f.Connect(w[0], w[1], w[2], w[3]))
	}

	must(f.Go("driver", "go"))

	drComp, _ := f.Lookup("driver")
	dr := drComp.(*components.IgnitionDriver)
	fmt.Printf("ignition with %q: T %0.f -> %.0f K over %.1e s\n\n",
		*mech, dr.Temps[0], dr.Temps[len(dr.Temps)-1], *tEnd)

	tauComp, _ := f.Lookup("tau")
	fmt.Println("per-component timing (TAU-style, spliced monitor):")
	tauComp.(*components.TauTimer).WriteReport(os.Stdout)

	// The interceptor saw the same run from the framework side: every
	// GetPort wire, not just the one the monitor was spliced into.
	fmt.Println("\nport-call summary (framework interceptor, no splicing):")
	serialObs.MergedSnapshot().WriteCallTable(os.Stdout)

	// The message substrate instruments itself the same way: run a small
	// flame on the 4-rank virtual cluster and report each rank's traffic,
	// stall time, and the flight time the asynchronous coalesced exchange
	// hid behind interior compute.
	fmt.Println("\nmessage statistics, 4-rank SCMD flame (virtual CPlant):")
	flameObs := obs.NewGroup(4)
	stats := make([]mpi.CommStats, 4)
	res := cca.RunSCMD(4, mpi.CPlantModel, core.Repo(), func(f *cca.Framework, comm *mpi.Comm) error {
		f.SetObservability(flameObs.Rank(comm.Rank()))
		_, _, err := core.RunReactionDiffusion(comm,
			core.Param{Instance: "grace", Key: "nx", Value: "24"},
			core.Param{Instance: "grace", Key: "ny", Value: "24"},
			core.Param{Instance: "grace", Key: "maxLevels", Value: "1"},
			core.Param{Instance: "driver", Key: "steps", Value: "2"},
			core.Param{Instance: "driver", Key: "dt", Value: "1e-7"},
			core.Param{Instance: "driver", Key: "regridEvery", Value: "0"},
			core.Param{Instance: "driver", Key: "skipChem", Value: "true"},
		)
		stats[comm.Rank()] = comm.Stats()
		return err
	})
	for r, err := range res.Errors {
		if err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
	}
	fmt.Printf("%-6s %8s %8s %12s %12s %12s\n", "rank", "sends", "words", "stall (s)", "hidden (s)", "vtime (s)")
	for r, s := range stats {
		fmt.Printf("%-6d %8d %8d %12.6f %12.6f %12.6f\n",
			r, s.Sends, s.WordsSent, s.CommSeconds, s.HiddenSeconds, res.World.RankTime(r))
	}

	if *tracePath != "" {
		out, err := os.Create(*tracePath)
		must(err)
		must(flameObs.WriteTrace(out))
		must(out.Close())
		fmt.Printf("\nflame trace written to %s (open with https://ui.perfetto.dev)\n", *tracePath)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
