// Instrumented runs the 0D ignition assembly with the TAU-style
// performance monitor spliced into the integrator's RHS wire — the
// paper's future-work plan ("By using TAU, we intend to characterize
// the performance characteristics of individual components and their
// assemblies"), executed. The RHSMonitor component provides and uses
// the same port type, so it drops into the existing wiring without
// touching either endpoint:
//
//	before:  cvode.rhs ────────────────► model.rhs
//	after:   cvode.rhs ─► monitor.rhs; monitor.inner ─► model.rhs
//
//	go run ./examples/instrumented [-mech co-h2-air]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/core"
)

func main() {
	mech := flag.String("mech", "h2air", "mechanism: h2air, h2air-lite, co-h2-air")
	tEnd := flag.Float64("tEnd", 5e-4, "integration horizon (s)")
	flag.Parse()

	repo := core.Repo()
	f := cca.NewFramework(repo, nil)
	must(f.SetParameter("chem", "mech", *mech))
	must(f.SetParameter("driver", "tEnd", fmt.Sprint(*tEnd)))
	must(f.SetParameter("driver", "nOut", "10"))
	must(f.SetParameter("monitor", "label", "chemistry RHS"))

	for _, inst := range [][2]string{
		{"ThermoChemistry", "chem"}, {"DPDt", "dpdt"}, {"ProblemModeler", "model"},
		{"Initializer", "init"}, {"CvodeComponent", "cvode"},
		{"StatisticsComponent", "stats"}, {"IgnitionDriver", "driver"},
		{"TauTimer", "tau"}, {"RHSMonitor", "monitor"},
	} {
		must(f.Instantiate(inst[0], inst[1]))
	}
	for _, w := range [][4]string{
		{"dpdt", "chemistry", "chem", "chemistry"},
		{"model", "chemistry", "chem", "chemistry"},
		{"model", "dpdt", "dpdt", "dpdt"},
		{"init", "chemistry", "chem", "chemistry"},
		{"monitor", "inner", "model", "rhs"},
		{"monitor", "timing", "tau", "timing"},
		{"cvode", "rhs", "monitor", "rhs"},
		{"driver", "ic", "init", "ic"},
		{"driver", "integrator", "cvode", "integrator"},
		{"driver", "chemistry", "chem", "chemistry"},
		{"driver", "stats", "stats", "stats"},
	} {
		must(f.Connect(w[0], w[1], w[2], w[3]))
	}

	must(f.Go("driver", "go"))

	drComp, _ := f.Lookup("driver")
	dr := drComp.(*components.IgnitionDriver)
	fmt.Printf("ignition with %q: T %0.f -> %.0f K over %.1e s\n\n",
		*mech, dr.Temps[0], dr.Temps[len(dr.Temps)-1], *tEnd)

	tauComp, _ := f.Lookup("tau")
	fmt.Println("per-component timing (TAU-style):")
	tauComp.(*components.TauTimer).WriteReport(os.Stdout)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
