// Flame2D runs the paper's Sec. 4.2 experiment: a 2D reaction–diffusion
// flame (three hot spots in stoichiometric H2–air) on a SAMR hierarchy,
// assembled from the Table 2 components. Operator splitting advances
// stiff chemistry implicitly (CvodeComponent through the
// ImplicitIntegrator adaptor) and diffusion explicitly (RKC through
// DiffusionPhysics + DRFMComponent), with ErrorEstAndRegrid rebuilding
// the patch hierarchy around the igniting kernels.
//
//	go run ./examples/flame2d [-nx 32] [-steps 6] [-np 4] [-arena]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/core"
	"ccahydro/internal/mpi"
)

func main() {
	nx := flag.Int("nx", 32, "coarse mesh cells per side (paper: 100)")
	steps := flag.Int("steps", 6, "macro time steps")
	dt := flag.Float64("dt", 2e-7, "macro step (s)")
	levels := flag.Int("levels", 2, "max AMR levels")
	np := flag.Int("np", 1, "SCMD ranks (in-process cohort)")
	arena := flag.Bool("arena", false, "print the component assembly (Fig 2) and exit")
	flag.Parse()

	params := []core.Param{
		{Instance: "grace", Key: "nx", Value: fmt.Sprint(*nx)},
		{Instance: "grace", Key: "ny", Value: fmt.Sprint(*nx)},
		{Instance: "grace", Key: "maxLevels", Value: fmt.Sprint(*levels)},
		{Instance: "driver", Key: "steps", Value: fmt.Sprint(*steps)},
		{Instance: "driver", Key: "dt", Value: fmt.Sprint(*dt)},
		{Instance: "driver", Key: "regridEvery", Value: "2"},
	}

	if *arena {
		f := cca.NewFramework(core.Repo(), nil)
		if err := core.AssembleReactionDiffusion(f, params...); err != nil {
			log.Fatal(err)
		}
		fmt.Print(cca.Arena(f))
		return
	}

	if *np == 1 {
		dr, f, err := core.RunReactionDiffusion(nil, params...)
		if err != nil {
			log.Fatal(err)
		}
		report(dr, f)
		return
	}

	var mu sync.Mutex
	var rank0 *components.RDDriver
	var rank0f *cca.Framework
	res := cca.RunSCMD(*np, mpi.CPlantModel, core.Repo(), func(f *cca.Framework, comm *mpi.Comm) error {
		if err := core.AssembleReactionDiffusion(f, params...); err != nil {
			return err
		}
		if err := f.Go("driver", "go"); err != nil {
			return err
		}
		if comm.Rank() == 0 {
			comp, _ := f.Lookup("driver")
			mu.Lock()
			rank0 = comp.(*components.RDDriver)
			rank0f = f
			mu.Unlock()
		}
		return nil
	})
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	report(rank0, rank0f)
	fmt.Printf("SCMD cohort: %d ranks, simulated run time %.4f s\n", *np, res.MaxVirtualTime())
}

func report(dr *components.RDDriver, f *cca.Framework) {
	fmt.Printf("2D reaction-diffusion flame (10 mm square, 3 hot spots)\n\n")
	for i, sec := range dr.StepSeconds {
		fmt.Printf("step %2d: %8.3fs wall, %7d cells in hierarchy\n", i+1, sec, dr.CellsPerStep[i])
	}
	comp, _ := f.Lookup("grace")
	fmt.Printf("\n%s", comp.(*components.GrACEComponent).Hierarchy())
	fmt.Printf("temperature range on this rank: %.1f .. %.1f K\n", dr.TMin, dr.TMax)
}
