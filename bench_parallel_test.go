// Benchmarks for the patch-execution engine (internal/exec): flame
// macro steps and Euler flux sweeps at pool widths 1 and 4, plus
// steady-state allocation counts for the scratch-lifted kernels. On a
// multi-core host the W4 variants show the patch-level speedup; on a
// single-core CI box they measure the (small) coordination overhead.
// Run with
//
//	go test -bench=PatchParallel -benchmem
package ccahydro

import (
	"runtime"
	"testing"

	"ccahydro/internal/amr"
	"ccahydro/internal/core"
	"ccahydro/internal/euler"
	"ccahydro/internal/exec"
	"ccahydro/internal/field"
	"ccahydro/internal/rkc"
)

func flameStepAtWidth(b *testing.B, width int) {
	exec.SetDefaultWidth(width)
	defer exec.SetDefaultWidth(runtime.GOMAXPROCS(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := core.RunReactionDiffusion(nil,
			core.Param{Instance: "grace", Key: "nx", Value: "48"},
			core.Param{Instance: "grace", Key: "ny", Value: "48"},
			core.Param{Instance: "grace", Key: "maxLevels", Value: "2"},
			core.Param{Instance: "driver", Key: "steps", Value: "1"},
			core.Param{Instance: "driver", Key: "dt", Value: "1e-7"},
			core.Param{Instance: "driver", Key: "regridEvery", Value: "1"},
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPatchParallelFlameW1 vs W4: one operator-split flame macro
// step (per-cell implicit chemistry + RKC diffusion over all patches)
// under a serial and a 4-wide pool.
func BenchmarkPatchParallelFlameW1(b *testing.B) { flameStepAtWidth(b, 1) }
func BenchmarkPatchParallelFlameW4(b *testing.B) { flameStepAtWidth(b, 4) }

func shockStepAtWidth(b *testing.B, width int) {
	exec.SetDefaultWidth(width)
	defer exec.SetDefaultWidth(runtime.GOMAXPROCS(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := core.RunShockInterface(nil, "GodunovFlux",
			core.Param{Instance: "grace", Key: "nx", Value: "64"},
			core.Param{Instance: "grace", Key: "ny", Value: "32"},
			core.Param{Instance: "grace", Key: "lx", Value: "2.0"},
			core.Param{Instance: "grace", Key: "ly", Value: "1.0"},
			core.Param{Instance: "grace", Key: "maxLevels", Value: "2"},
			core.Param{Instance: "driver", Key: "tEnd", Value: "0.05"},
			core.Param{Instance: "driver", Key: "maxSteps", Value: "10"},
			core.Param{Instance: "driver", Key: "regridEvery", Value: "5"},
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPatchParallelShockW1 vs W4: RK2 Godunov steps with the
// circulation diagnostic under serial and 4-wide pools.
func BenchmarkPatchParallelShockW1(b *testing.B) { shockStepAtWidth(b, 1) }
func BenchmarkPatchParallelShockW4(b *testing.B) { shockStepAtWidth(b, 4) }

// eulerBenchPatch builds one ghost-padded patch of a smooth flow state.
func eulerBenchPatch(n int) (*field.PatchData, *field.PatchData) {
	p := &amr.Patch{Box: amr.NewBox(0, 0, n-1, n-1)}
	pd := field.NewPatchData(p, euler.NumComp, 2)
	out := field.NewPatchData(p, euler.NumComp, 2)
	g := pd.GrownBox()
	gas := euler.Gas{Gamma: 1.4}
	for j := g.Lo[1]; j <= g.Hi[1]; j++ {
		for i := g.Lo[0]; i <= g.Hi[0]; i++ {
			w := euler.Primitive{
				Rho: 1 + 0.1*float64((i+j)%5),
				U:   0.3, V: -0.1,
				P:    1 + 0.05*float64(i%3),
				Zeta: float64(j%2) * 0.5,
			}
			c := gas.ToConserved(w)
			for k := 0; k < euler.NumComp; k++ {
				pd.Set(k, i, j, c[k])
			}
		}
	}
	return pd, out
}

func eulerRHSAtWidth(b *testing.B, width int) {
	pd, out := eulerBenchPatch(128)
	s := euler.NewSolver(1.4, euler.GodunovFlux)
	if width > 1 {
		s.Pool = exec.NewPool(width)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RHSPatch(pd, out, 1.0/128, 1.0/128)
	}
}

// BenchmarkPatchParallelEulerRHSW1 vs W4: the row-sweep MUSCL+Godunov
// RHS on one 128x128 patch — the hot loop the pool chunks by rows.
// Also reports allocs/op: steady state should stay near zero thanks to
// the pooled sweep buffers.
func BenchmarkPatchParallelEulerRHSW1(b *testing.B) { eulerRHSAtWidth(b, 1) }
func BenchmarkPatchParallelEulerRHSW4(b *testing.B) { eulerRHSAtWidth(b, 4) }

// BenchmarkRKCSteadyStateAllocs shows the lifted Chebyshev scratch:
// repeated Init+Integrate on one solver, allocs/op ~ 0.
func BenchmarkRKCSteadyStateAllocs(b *testing.B) {
	n := 255
	f, rho, y0 := diffusionOperator(n, 1, 1.0/256)
	s := rkc.New(n, f, rho, rkc.Options{RelTol: 1e-5, AbsTol: 1e-8})
	s.Init(0, y0)
	if err := s.Integrate(1e-3); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Init(0, y0)
		if err := s.Integrate(1e-3); err != nil {
			b.Fatal(err)
		}
	}
}
