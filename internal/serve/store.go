package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is the content-addressed result store: full key -> Result,
// memoized in memory and (when dir != "") persisted as one JSON file
// per key so a restarted server keeps serving cache hits. Writes go
// through a temp-file rename, so a crashed write never leaves a
// half-result behind.
//
// The store is bounded: past max entries it evicts in LRU order (Get
// counts as use), deleting both the memory entry and the on-disk file.
// Checkpoint lineages live elsewhere (under the scheduler's ckpt root,
// keyed by prefix), so evicting a result never breaks warm starts — a
// resubmission of an evicted key misses the store but still restores
// from the lineage's newest checkpoint.
type Store struct {
	mu  sync.Mutex
	dir string
	max int // entry cap; 0 = unbounded
	mem map[string]*list.Element
	lru list.List // front = most recently used; values are *storeEntry

	evictions int
}

type storeEntry struct {
	key string
	res *Result
}

// NewStore opens (creating if needed) a store rooted at dir; dir ""
// keeps results in memory only. max bounds the entry count (0 for
// unbounded).
func NewStore(dir string, max int) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	if max < 0 {
		return nil, fmt.Errorf("serve: bad store cap %d", max)
	}
	s := &Store{dir: dir, max: max, mem: map[string]*list.Element{}}
	s.lru.Init()
	return s, nil
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// touch records a hit or insert for key, then trims past the cap.
// Caller holds the lock.
func (s *Store) touch(key string, r *Result) *Result {
	if el, ok := s.mem[key]; ok {
		s.lru.MoveToFront(el)
		return el.Value.(*storeEntry).res
	}
	s.mem[key] = s.lru.PushFront(&storeEntry{key: key, res: r})
	for s.max > 0 && s.lru.Len() > s.max {
		oldest := s.lru.Back()
		e := oldest.Value.(*storeEntry)
		s.lru.Remove(oldest)
		delete(s.mem, e.key)
		if s.dir != "" {
			os.Remove(s.path(e.key))
		}
		s.evictions++
	}
	return r
}

// Get returns the stored result for key, consulting memory first and
// the directory second (reloading results a previous process wrote).
// A hit makes the entry most recently used.
func (s *Store) Get(key string) (*Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.mem[key]; ok {
		s.lru.MoveToFront(el)
		return el.Value.(*storeEntry).res, true
	}
	if s.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, false
	}
	return s.touch(key, &r), true
}

// Put records the result under key, evicting the least recently used
// entry if the cap is exceeded.
func (s *Store) Put(key string, r *Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.mem[key]; ok {
		el.Value.(*storeEntry).res = r
		s.lru.MoveToFront(el)
	} else {
		s.touch(key, r)
	}
	if s.dir == "" {
		return nil
	}
	b, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	tmp := s.path(key) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: store %s: %w", key, err)
	}
	return nil
}

// Len counts results currently resident (loaded or stored and not yet
// evicted).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Evictions counts entries dropped by the LRU cap since the store
// opened.
func (s *Store) Evictions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}
