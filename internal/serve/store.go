package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is the content-addressed result store: full key -> Result,
// memoized in memory and (when dir != "") persisted as one JSON file
// per key so a restarted server keeps serving cache hits. Writes go
// through a temp-file rename, so a crashed write never leaves a
// half-result behind.
type Store struct {
	mu  sync.Mutex
	dir string
	mem map[string]*Result
}

// NewStore opens (creating if needed) a store rooted at dir; dir ""
// keeps results in memory only.
func NewStore(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{dir: dir, mem: map[string]*Result{}}, nil
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// Get returns the stored result for key, consulting memory first and
// the directory second (reloading results a previous process wrote).
func (s *Store) Get(key string) (*Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.mem[key]; ok {
		return r, true
	}
	if s.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, false
	}
	s.mem[key] = &r
	return &r, true
}

// Put records the result under key.
func (s *Store) Put(key string, r *Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem[key] = r
	if s.dir == "" {
		return nil
	}
	b, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	tmp := s.path(key) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: store %s: %w", key, err)
	}
	return nil
}

// Len counts results known in memory (loaded or stored this process).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}
