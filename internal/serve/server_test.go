package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"ccahydro/internal/telemetry"
)

func httpJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

func waitHTTPDone(t *testing.T, base, id string) Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var st Status
		if code := httpJSON(t, "GET", base+"/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: %d", id, code)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return Status{}
}

// TestServeLiveSmoke is the check.sh live smoke: boot the server,
// submit two concurrent jobs plus a duplicate over HTTP, stream one
// job's series, and assert the duplicate was served from the store
// without computing a single step.
func TestServeLiveSmoke(t *testing.T) {
	sched := newTestSched(t, 2)
	srv, err := Listen("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Malformed and invalid submissions are rejected up front.
	if code := httpJSON(t, "POST", base+"/jobs", map[string]string{"problem": "warp-drive"}, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid problem accepted: %d", code)
	}
	if code := httpJSON(t, "GET", base+"/jobs/job-9999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing job returned %d", code)
	}

	// Two concurrent jobs over the shared pool.
	var flame, shock, dup Status
	if code := httpJSON(t, "POST", base+"/jobs", flameSpec(2, 1, "high"), &flame); code != http.StatusAccepted {
		t.Fatalf("submit flame: %d", code)
	}
	if code := httpJSON(t, "POST", base+"/jobs", shockSpec(3, 1, "batch"), &shock); code != http.StatusAccepted {
		t.Fatalf("submit shock: %d", code)
	}
	flameDone := waitHTTPDone(t, base, flame.ID)
	shockDone := waitHTTPDone(t, base, shock.ID)
	if flameDone.State != StateDone || shockDone.State != StateDone {
		t.Fatalf("states: flame %s, shock %s", flameDone.State, shockDone.State)
	}
	if flameDone.StepsRun != 2 {
		t.Fatalf("flame computed %d steps, want 2", flameDone.StepsRun)
	}

	// The duplicate is a cache hit: zero live steps, same stored series.
	if code := httpJSON(t, "POST", base+"/jobs", flameSpec(2, 1, "high"), &dup); code != http.StatusAccepted {
		t.Fatalf("submit duplicate: %d", code)
	}
	dupDone := waitHTTPDone(t, base, dup.ID)
	if !dupDone.CacheHit || dupDone.StepsRun != 0 {
		t.Fatalf("duplicate was not a free cache hit: %+v", dupDone)
	}
	sameSeries(t, "cache-hit series over HTTP", flameDone.Result.Series["cells"], dupDone.Result.Series["cells"])

	// The jobs listing shows all three in submission order.
	var all []Status
	if code := httpJSON(t, "GET", base+"/jobs", nil, &all); code != http.StatusOK || len(all) != 3 {
		t.Fatalf("GET /jobs: %d, %d jobs", code, len(all))
	}

	// The stored series replays as NDJSON for a finished job.
	resp, err := http.Get(base + "/jobs/" + dup.ID + "/series")
	if err != nil {
		t.Fatal(err)
	}
	var points []telemetry.SeriesPoint
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var pt telemetry.SeriesPoint
		if err := json.Unmarshal(sc.Bytes(), &pt); err != nil {
			t.Fatalf("bad series line %q: %v", sc.Text(), err)
		}
		points = append(points, pt)
	}
	resp.Body.Close()
	cells := 0
	for _, pt := range points {
		if pt.Key == "cells" {
			cells++
		}
	}
	if cells != 2 {
		t.Fatalf("series replay carried %d cells points, want 2 (got %d points total)", cells, len(points))
	}

	// Scheduler health reflects the population.
	var h Health
	if code := httpJSON(t, "GET", base+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if h.Jobs != 3 || h.Free != h.Slots {
		t.Fatalf("healthz: %+v", h)
	}

	// Graceful shutdown refuses new work and drains.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := sched.Submit(ignSpec("1e-4")); err != ErrClosed {
		t.Fatalf("Submit after shutdown: %v, want ErrClosed", err)
	}
}

// TestSeriesFollowsLiveRun: a follower attached while the job runs
// streams samples and ends when the run completes.
func TestSeriesFollowsLiveRun(t *testing.T) {
	sched := newTestSched(t, 2)
	srv, err := Listen("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	j, err := sched.Submit(shockSpec(4, 2, "normal"))
	if err != nil {
		t.Fatal(err)
	}
	// Attach immediately — the handler waits for the hub if the job has
	// not been admitted yet.
	resp, err := http.Get(base + "/jobs/" + j.ID + "/series")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Count rank 0's samples: a live hub streams every rank's local
	// statistics, while a stored-result replay carries rank 0 only —
	// rank 0's view is identical either way.
	got := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var pt telemetry.SeriesPoint
		if err := json.Unmarshal(sc.Bytes(), &pt); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if pt.Rank == 0 {
			got[pt.Key]++
		}
	}
	if got["t"] != 4 || got["dt"] != 4 {
		t.Fatalf("live follower saw %v, want 4 t and 4 dt samples", got)
	}
	st := waitTerminal(t, sched, j.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s", st.State)
	}
}
