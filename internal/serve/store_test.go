package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func storeResult(tag string) *Result {
	return &Result{Problem: tag, Series: map[string][]float64{"t": {1, 2}}}
}

// TestStoreLRUEviction: the result store holds at most max entries,
// Get counts as use, and eviction removes both the memory entry and
// the on-disk file.
func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b"} {
		if err := st.Put(k, storeResult(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is now least recently used.
	if _, ok := st.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if err := st.Put("c", storeResult("c")); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 || st.Evictions() != 1 {
		t.Fatalf("len %d evictions %d, want 2 and 1", st.Len(), st.Evictions())
	}
	if _, ok := st.Get("b"); ok {
		t.Fatal("least recently used entry survived")
	}
	if _, ok := st.Get("a"); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, err := os.Stat(filepath.Join(dir, "b.json")); !os.IsNotExist(err) {
		t.Fatalf("evicted entry's file survived: %v", err)
	}
	// The eviction is real: a fresh store over the same dir cannot
	// reload the evicted key.
	st2, err := NewStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Get("b"); ok {
		t.Fatal("evicted result reloaded from disk")
	}
	if _, ok := st2.Get("c"); !ok {
		t.Fatal("surviving result did not reload from disk")
	}
}

func TestStoreUnboundedAndBadCap(t *testing.T) {
	st, err := NewStore("", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		st.Put(fmt.Sprintf("k%d", i), storeResult("x"))
	}
	if st.Len() != 50 || st.Evictions() != 0 {
		t.Fatalf("unbounded store evicted: len %d evictions %d", st.Len(), st.Evictions())
	}
	if _, err := NewStore("", -1); err == nil {
		t.Fatal("negative cap accepted")
	}
}

// TestWarmStartSurvivesEviction: evicting a result from the bounded
// store must not break its checkpoint lineage — a resubmission misses
// the cache but still warm-starts instead of recomputing from step 0.
func TestWarmStartSurvivesEviction(t *testing.T) {
	s, err := NewScheduler(Options{Slots: 1, Dir: t.TempDir(), StoreMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	short, err := s.Submit(flameSpec(2, 1, "normal"))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, short.ID); st.State != StateDone {
		t.Fatalf("short run: %+v", st)
	}

	// An unrelated run fills the single store slot, evicting the flame
	// result (but not its checkpoints).
	other, err := s.Submit(ignSpec("1e-4"))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, other.ID); st.State != StateDone {
		t.Fatalf("filler run: %+v", st)
	}
	if s.store.Evictions() == 0 {
		t.Fatal("store never evicted; the survival assertion below is vacuous")
	}

	// Not even a cache hit for the evicted flame...
	again, err := s.Submit(flameSpec(2, 1, "normal"))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, again.ID)
	if st.CacheHit {
		t.Fatalf("evicted result still served as a cache hit: %+v", st)
	}
	// ...but the lineage survived: the rerun restores instead of
	// recomputing everything.
	if !st.WarmStart {
		t.Fatalf("eviction destroyed the checkpoint lineage: %+v", st)
	}
	if got := len(st.Result.Series["cells"]); got != 2 {
		t.Fatalf("rerun holds %d steps of history, want 2", got)
	}
}
