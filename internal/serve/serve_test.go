package serve

import (
	"strconv"
	"testing"
	"time"

	"ccahydro/internal/telemetry"
)

// The serve acceptance suite drives the scheduler the way the ISSUE
// acceptance scenario reads: concurrent jobs over one shared pool,
// strict-priority preemption at a live checkpoint boundary, elastic
// resume on fewer ranks, and content-addressed dedup asserted through
// live step counts (a cache hit computes zero steps).
//
// Cross-rank-count series comparisons stick to the P-invariant keys:
// flame "cells" (replicated per-rank census) and shock "t"/"dt" (min
// reductions). The shock circulation is an FP sum whose grouping
// depends on the rank layout, and flame "stepSeconds" is wall-clock —
// neither is comparable bit-for-bit across allocations.

func flameSpec(steps, ranks int, priority string) Spec {
	return Spec{
		Problem:  "flame",
		Ranks:    ranks,
		Priority: priority,
		Params: map[string]map[string]string{
			"grace":  {"nx": "16", "ny": "16", "maxLevels": "2"},
			"driver": {"steps": strconv.Itoa(steps), "dt": "1e-7", "regridEvery": "2"},
		},
	}
}

func shockSpec(maxSteps, ranks int, priority string) Spec {
	return Spec{
		Problem:  "shock",
		Ranks:    ranks,
		Priority: priority,
		Params: map[string]map[string]string{
			"grace":  {"nx": "32", "ny": "16", "lx": "2.0", "ly": "1.0", "maxLevels": "2"},
			"driver": {"tEnd": "1.0", "maxSteps": strconv.Itoa(maxSteps), "regridEvery": "2"},
		},
	}
}

func ignSpec(tEnd string) Spec {
	return Spec{
		Problem: "ignition",
		Params: map[string]map[string]string{
			"driver": {"tEnd": tEnd, "nOut": "5"},
		},
	}
}

func newTestSched(t *testing.T, slots int) *Scheduler {
	t.Helper()
	s, err := NewScheduler(Options{Slots: slots, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func waitTerminal(t *testing.T, s *Scheduler, id string) Status {
	t.Helper()
	j, ok := s.job(id)
	if !ok {
		t.Fatalf("no job %q", id)
	}
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", id)
	}
	st, _ := s.Get(id, true)
	return st
}

// waitLiveSteps blocks until the job's current admission has begun at
// least n driver steps — the hook the tests use to time submissions
// against a genuinely mid-run victim.
func waitLiveSteps(t *testing.T, s *Scheduler, id string, n uint64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		j := s.jobs[id]
		var hub *telemetry.Hub
		ranks := 0
		if j != nil {
			hub, ranks = j.hub, j.ranks
		}
		s.mu.Unlock()
		// Each of the job's ranks emits one step event per driver step.
		if hub != nil && ranks > 0 && hub.EventCounts()[telemetry.EvStep] >= n*uint64(ranks) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %d live steps", id, n)
}

func sameSeries(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: lengths differ: want %d, got %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: sample %d differs: want %v, got %v", label, i, want[i], got[i])
		}
	}
}

func TestSpecKeys(t *testing.T) {
	a := shockSpec(6, 2, "normal")
	b := shockSpec(6, 4, "high") // scheduling knobs must not change the key
	for _, sp := range []*Spec{&a, &b} {
		if err := sp.Normalize(); err != nil {
			t.Fatal(err)
		}
	}
	if a.FullKey() != b.FullKey() {
		t.Fatal("rank/priority changed the content key")
	}

	short, long := shockSpec(3, 1, ""), shockSpec(6, 1, "")
	short.Normalize()
	long.Normalize()
	if short.FullKey() == long.FullKey() {
		t.Fatal("run length did not change the full key")
	}
	if short.PrefixKey() != long.PrefixKey() {
		t.Fatal("runs differing only in maxSteps must share a prefix key")
	}

	// tEnd clamps the final dt, so it must split the prefix lineage.
	other := shockSpec(6, 1, "")
	other.Params["driver"]["tEnd"] = "2.0"
	other.Normalize()
	if other.PrefixKey() == long.PrefixKey() {
		t.Fatal("tEnd must be part of the shock prefix key")
	}

	// A physics knob splits both keys.
	hot := flameSpec(4, 1, "")
	cold := flameSpec(4, 1, "")
	hot.Params["driver"]["dt"] = "2e-7"
	hot.Normalize()
	cold.Normalize()
	if hot.FullKey() == cold.FullKey() || hot.PrefixKey() == cold.PrefixKey() {
		t.Fatal("dt must change both keys")
	}

	// The explicit default and the omitted default hash identically.
	imp := flameSpec(4, 1, "")
	delete(imp.Params["driver"], "steps")
	imp.Normalize()
	exp := flameSpec(5, 1, "")
	exp.Normalize()
	if imp.FullKey() != exp.FullKey() {
		t.Fatal("omitted duration param must hash like its default")
	}
}

// TestDedupCacheHit: an identical resubmission is served from the
// result store — zero live steps, bit-identical series, and the CVODE
// counters of the original run.
func TestDedupCacheHit(t *testing.T) {
	s := newTestSched(t, 2)
	j1, err := s.Submit(ignSpec("1e-4"))
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitTerminal(t, s, j1.ID)
	if st1.State != StateDone || st1.CacheHit {
		t.Fatalf("first run: %+v", st1)
	}
	if st1.StepsRun == 0 {
		t.Fatal("first run reported zero live steps — the dedup assertion below would be vacuous")
	}
	if len(st1.Result.Counters) == 0 {
		t.Fatal("first run collected no solver counters")
	}

	j2, err := s.Submit(ignSpec("1e-4"))
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitTerminal(t, s, j2.ID)
	if st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("duplicate was not a cache hit: %+v", st2)
	}
	if st2.StepsRun != 0 {
		t.Fatalf("cache hit computed %d live steps, want 0", st2.StepsRun)
	}
	sameSeries(t, "cache-hit T series", st1.Result.Series["T"], st2.Result.Series["T"])

	// A different tEnd is a different run.
	j3, err := s.Submit(ignSpec("2e-4"))
	if err != nil {
		t.Fatal(err)
	}
	if st3 := waitTerminal(t, s, j3.ID); st3.CacheHit {
		t.Fatal("different tEnd must not hit the cache")
	}
}

// TestCoalesceInFlight: an identical submission while the first is
// still running attaches as a waiter and inherits the result without
// computing anything.
func TestCoalesceInFlight(t *testing.T) {
	s := newTestSched(t, 2)
	j1, err := s.Submit(shockSpec(6, 2, "normal"))
	if err != nil {
		t.Fatal(err)
	}
	waitLiveSteps(t, s, j1.ID, 1)
	j2, err := s.Submit(shockSpec(6, 2, "normal"))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Get(j2.ID, false); st.State != StateWaiting {
		t.Fatalf("duplicate of an in-flight run is %s, want waiting", st.State)
	}
	st1 := waitTerminal(t, s, j1.ID)
	st2 := waitTerminal(t, s, j2.ID)
	if st1.State != StateDone || st2.State != StateDone {
		t.Fatalf("states: %s / %s", st1.State, st2.State)
	}
	if !st2.CacheHit || st2.StepsRun != 0 {
		t.Fatalf("waiter recomputed: %+v", st2)
	}
	sameSeries(t, "coalesced t series", st1.Result.Series["t"], st2.Result.Series["t"])
}

// TestPrefixWarmStart: a longer run whose spec differs only in length
// restarts from the shorter run's last checkpoint instead of step 0,
// and still matches the cold full-length run bit-for-bit.
func TestPrefixWarmStart(t *testing.T) {
	ref := newTestSched(t, 1)
	r, err := ref.Submit(flameSpec(4, 1, "normal"))
	if err != nil {
		t.Fatal(err)
	}
	refSt := waitTerminal(t, ref, r.ID)

	s := newTestSched(t, 1)
	short, err := s.Submit(flameSpec(2, 1, "normal"))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, short.ID); st.StepsRun != 2 {
		t.Fatalf("short run computed %d steps, want 2", st.StepsRun)
	}

	long, err := s.Submit(flameSpec(4, 1, "normal"))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, long.ID)
	if !st.WarmStart || st.RestoreStep != 1 {
		t.Fatalf("long run did not warm-start from the shared prefix: %+v", st)
	}
	if st.StepsRun != 2 {
		t.Fatalf("warm start computed %d live steps, want 2 (steps 2 and 3)", st.StepsRun)
	}
	sameSeries(t, "warm-started cells series", refSt.Result.Series["cells"], st.Result.Series["cells"])
	if got := len(st.Result.Series["cells"]); got != 4 {
		t.Fatalf("warm-started run reports %d steps of history, want 4", got)
	}
}

// TestAcceptancePreemptResume is the ISSUE end-to-end scenario: a
// batch shock run holding the whole pool is preempted mid-run at a
// checkpoint boundary by a high-priority flame, resumes on the two
// ranks the flame left free — a different rank count than it started
// with — and its final series is bit-for-bit the uninterrupted solo
// run's.
func TestAcceptancePreemptResume(t *testing.T) {
	// Solo reference on a private scheduler.
	ref := newTestSched(t, 4)
	r, err := ref.Submit(shockSpec(12, 4, "normal"))
	if err != nil {
		t.Fatal(err)
	}
	refSt := waitTerminal(t, ref, r.ID)
	if refSt.State != StateDone {
		t.Fatalf("reference: %+v", refSt)
	}

	s := newTestSched(t, 4)
	shock, err := s.Submit(shockSpec(12, 4, "batch"))
	if err != nil {
		t.Fatal(err)
	}
	waitLiveSteps(t, s, shock.ID, 2)
	flame, err := s.Submit(flameSpec(6, 2, "high"))
	if err != nil {
		t.Fatal(err)
	}

	flameSt := waitTerminal(t, s, flame.ID)
	if flameSt.State != StateDone {
		t.Fatalf("flame: %+v", flameSt)
	}
	shockSt := waitTerminal(t, s, shock.ID)
	if shockSt.State != StateDone {
		t.Fatalf("shock: %+v", shockSt)
	}

	if shockSt.Preemptions < 1 {
		t.Fatal("the batch shock run was never preempted")
	}
	if shockSt.RanksAlloc != 2 {
		t.Fatalf("shock resumed on %d ranks, want 2 (flame held the other 2)", shockSt.RanksAlloc)
	}
	if shockSt.RestoreStep < 0 {
		t.Fatal("shock resume did not record its checkpoint restore point")
	}
	// The preemption checkpoint sits at the exact stop step, so across
	// both admissions every step is computed exactly once.
	if shockSt.StepsRun != 12 {
		t.Fatalf("preempted+resumed shock computed %d live steps, want exactly 12", shockSt.StepsRun)
	}

	sameSeries(t, "preempted shock t series", refSt.Result.Series["t"], shockSt.Result.Series["t"])
	sameSeries(t, "preempted shock dt series", refSt.Result.Series["dt"], shockSt.Result.Series["dt"])
}

// TestCancelKeepsCheckpoints: canceling a running job stops it at its
// next checkpoint; a resubmission warm-starts from the canceled run's
// lineage and completes to the reference result.
func TestCancelKeepsCheckpoints(t *testing.T) {
	s := newTestSched(t, 2)
	j1, err := s.Submit(shockSpec(6, 2, "normal"))
	if err != nil {
		t.Fatal(err)
	}
	waitLiveSteps(t, s, j1.ID, 1)
	if err := s.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	st1 := waitTerminal(t, s, j1.ID)
	if st1.State != StateCanceled {
		t.Fatalf("canceled job ended %s", st1.State)
	}

	j2, err := s.Submit(shockSpec(6, 2, "normal"))
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitTerminal(t, s, j2.ID)
	if st2.State != StateDone {
		t.Fatalf("resubmission: %+v", st2)
	}
	if st1.Result != nil {
		// The cancel landed after the computation had already finished;
		// the resubmission must then be a plain cache hit.
		if !st2.CacheHit {
			t.Fatal("resubmission of a canceled-but-complete run missed the cache")
		}
	} else if !st2.WarmStart {
		t.Fatal("resubmission ignored the canceled run's checkpoints")
	}
	if got := len(st2.Result.Series["t"]); got != 6 {
		t.Fatalf("resubmission holds %d steps of history, want 6", got)
	}
}
