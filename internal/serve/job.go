package serve

import (
	"time"

	"ccahydro/internal/ckpt"
	"ccahydro/internal/telemetry"
)

// State is a job's lifecycle stage.
type State string

const (
	// StateQueued: admitted to a class queue, waiting for slots.
	StateQueued State = "queued"
	// StateWaiting: an identical (same full key) job is already active;
	// this one coalesced onto it and will inherit its result.
	StateWaiting State = "waiting"
	// StateRunning: executing on its allocated ranks.
	StateRunning State = "running"
	// StatePreempting: running, but told to stop at its next checkpoint
	// boundary to yield slots to a higher class.
	StatePreempting State = "preempting"
	// StatePreempted: stopped at a checkpoint, re-queued; the next
	// admission resumes from the saved state, possibly on fewer ranks.
	StatePreempted State = "preempted"
	// Terminal states.
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Result is the durable outcome of a run: the rank-0 statistics series
// (the paper's Fig 4/7 curves), solver counters summed over ranks, and
// the completed step count. Results are stored content-addressed by
// the spec's full key, so identical resubmissions replay this instead
// of recomputing.
type Result struct {
	Problem  string               `json:"problem"`
	Key      string               `json:"key"`
	Steps    int                  `json:"steps"`
	Series   map[string][]float64 `json:"series"`
	Counters map[string]float64   `json:"counters,omitempty"`
}

// Job is one submitted run. All mutable fields are guarded by the
// owning Scheduler's lock; handlers read them through Status().
type Job struct {
	ID        string
	Spec      Spec
	fullKey   string
	prefixKey string
	class     int
	submitted time.Time

	state       State
	ranks       int // current/last allocation (0 before first admission)
	restore     string
	restoreStep int // -1 = cold start
	warmStart   bool
	gate        *ckpt.Gate
	hub         *telemetry.Hub
	result      *Result
	cacheHit    bool
	stepsRun    int // live steps actually computed by this job (0 on a cache hit)
	preemptions int
	cancelReq   bool
	err         error
	primary     *Job   // set while waiting: the job whose result we inherit
	waiters     []*Job // jobs coalesced onto this one
	done        chan struct{}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status is the wire view of a job.
type Status struct {
	ID          string  `json:"id"`
	State       State   `json:"state"`
	Problem     string  `json:"problem"`
	Priority    string  `json:"priority"`
	Key         string  `json:"key"`
	PrefixKey   string  `json:"prefixKey"`
	Ranks       int     `json:"ranks"`       // requested
	RanksAlloc  int     `json:"ranksAlloc"`  // current/last allocation
	RestoreStep int     `json:"restoreStep"` // step of the checkpoint the next/current attempt restores (-1 = cold)
	CacheHit    bool    `json:"cacheHit"`
	WarmStart   bool    `json:"warmStart"`
	StepsRun    int     `json:"stepsRun"`
	Preemptions int     `json:"preemptions"`
	Waiters     int     `json:"waiters,omitempty"`
	Error       string  `json:"error,omitempty"`
	Result      *Result `json:"result,omitempty"`
}

// statusLocked builds the wire view; caller holds the scheduler lock.
// withResult controls whether the (possibly large) stored series ride
// along.
func (j *Job) statusLocked(withResult bool) Status {
	st := Status{
		ID:          j.ID,
		State:       j.state,
		Problem:     j.Spec.ProblemLabel(),
		Priority:    j.Spec.Priority,
		Key:         j.fullKey,
		PrefixKey:   j.prefixKey,
		Ranks:       j.Spec.Ranks,
		RanksAlloc:  j.ranks,
		RestoreStep: j.restoreStep,
		CacheHit:    j.cacheHit,
		WarmStart:   j.warmStart,
		StepsRun:    j.stepsRun,
		Preemptions: j.preemptions,
		Waiters:     len(j.waiters),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if withResult && j.state.terminal() {
		st.Result = j.result
	}
	return st
}
