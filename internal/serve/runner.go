package serve

import (
	"errors"
	"sync"

	"ccahydro/internal/cca"
	"ccahydro/internal/ckpt"
	"ccahydro/internal/components"
	"ccahydro/internal/core"
	"ccahydro/internal/mpi"
	"ccahydro/internal/telemetry"
)

// run executes one admission of j: a supervised attempt chain for
// checkpointable problems (rank failures retry from the last durable
// checkpoint, exactly as ccarun does), a single shot otherwise. It is
// the only writer of j's result and terminal state after admission.
func (s *Scheduler) run(j *Job) {
	defer s.wg.Done()

	// Snapshot the admission decision under the lock; build the per-
	// admission hub so /series followers see this attempt's stream.
	s.mu.Lock()
	spec := j.Spec
	ranks := j.ranks
	restore := j.restore
	gate := j.gate
	hub := telemetry.NewHub(ranks, nil)
	hub.SetPhase("running")
	j.hub = hub
	dir := s.prefixDir(j)
	s.mu.Unlock()

	var result *Result
	var runErr error
	if spec.Checkpointable() {
		attempt := 0
		runErr = ckpt.SuperviseNotify(dir, s.opts.MaxRetries, hub, func(r string) error {
			attempt++
			hub.StartAttempt(attempt)
			if attempt == 1 {
				// The supervisor always passes "" for the first attempt;
				// the scheduler's restore decision (warm start or resume
				// after preemption) takes its place.
				r = restore
			}
			res, err := s.attempt(spec, ranks, hub, dir, r, gate)
			if err == nil {
				result = res
			}
			return err
		})
	} else {
		hub.StartAttempt(1)
		res, err := s.attempt(spec, ranks, hub, "", "", nil)
		if err == nil {
			result = res
		}
		runErr = err
	}

	// End the stream: followers drain everything recorded and hang up.
	// Preemption is not a failure — the next admission opens a new hub.
	if runErr != nil && !errors.Is(runErr, ckpt.ErrPreempted) {
		hub.SetPhase("failed")
	} else {
		hub.SetPhase("done")
	}
	// Every rank emits one step event per driver step; normalizing by
	// the allocation size yields driver steps actually computed.
	s.finish(j, result, runErr, int(hub.EventCounts()[telemetry.EvStep])/ranks)
}

// attempt runs the assembly once on a fresh world of the given size.
// The returned result carries rank 0's statistics series and the
// rank-summed CVODE counters.
func (s *Scheduler) attempt(spec Spec, ranks int, hub *telemetry.Hub, dir, restore string, gate *ckpt.Gate) (*Result, error) {
	var mu sync.Mutex
	var series map[string][]float64
	counters := map[string]float64{}
	req := spec.Request()
	w := mpi.NewWorld(ranks, s.opts.Model)
	res := cca.RunSCMDOn(w, s.repo, func(f *cca.Framework, comm *mpi.Comm) error {
		if err := core.AssembleRequest(f, req); err != nil {
			return err
		}
		if dir != "" {
			if err := core.WireCheckpointOpts(f, core.CheckpointOptions{
				Every:   spec.CkptEvery,
				Dir:     dir,
				Restore: restore,
				Preempt: gate,
			}); err != nil {
				return err
			}
		}
		core.AttachTelemetry(f, hub.Rank(comm.Rank()), comm)
		if err := f.Go(core.RunInstance(req), "go"); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		for _, name := range f.Instances() {
			// Counters come from the CVODE class only: the implicit
			// integrator proxies the same numbers, and counting both
			// would double them.
			if cls, err := f.ClassOf(name); err != nil || cls != "CvodeComponent" {
				continue
			}
			comp, err := f.Lookup(name)
			if err != nil {
				continue
			}
			if cs, ok := comp.(interface{ Counters() map[string]float64 }); ok {
				for k, v := range cs.Counters() {
					counters[k] += v
				}
			}
		}
		if comm.Rank() == 0 {
			// Find the statistics sink by class, not by the fixed "stats"
			// name the built-ins happen to use — scenarios name instances
			// freely.
			for _, name := range f.Instances() {
				if cls, err := f.ClassOf(name); err != nil || cls != "StatisticsComponent" {
					continue
				}
				comp, err := f.Lookup(name)
				if err != nil {
					continue
				}
				if sc, ok := comp.(*components.StatisticsComponent); ok {
					m := map[string][]float64{}
					for _, k := range sc.Keys() {
						m[k] = sc.Get(k)
					}
					series = m
					break
				}
			}
		}
		return nil
	})
	if err := res.Err(); err != nil {
		return nil, err
	}
	r := &Result{Problem: spec.ProblemLabel(), Key: spec.FullKey(), Series: series, Counters: counters}
	r.Steps = len(series[spec.ProgressKey()])
	return r, nil
}

// finish settles j after run: store-and-complete, preempt-and-requeue,
// cancel, or fail — then reschedules freed slots.
func (s *Scheduler) finish(j *Job, result *Result, runErr error, liveSteps int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.free += j.ranks
	if s.byPrefix[j.prefixKey] == j {
		delete(s.byPrefix, j.prefixKey)
	}
	j.stepsRun += liveSteps
	switch {
	case runErr == nil:
		j.result = result
		// Persistence is best-effort; the in-memory copy already serves
		// this process's cache hits.
		_ = s.store.Put(j.fullKey, result)
		if j.cancelReq {
			// Cancel landed after the computation finished (or the
			// problem was not preemptible): report canceled, keep the
			// result for the store and any waiters.
			s.terminateLocked(j, StateCanceled, errCanceled)
		} else {
			s.terminateLocked(j, StateDone, nil)
		}
	case errors.Is(runErr, ckpt.ErrPreempted) && !j.cancelReq && !s.closed:
		j.state = StatePreempted
		j.preemptions++
		s.probeRestore(j)
		// Head of its class queue: it already paid for its position.
		s.queues[j.class] = append([]*Job{j}, s.queues[j.class]...)
	case errors.Is(runErr, ckpt.ErrPreempted):
		// Stopped because of Cancel or Close; checkpoints stay behind
		// so a resubmission warm-starts.
		s.terminateLocked(j, StateCanceled, errCanceled)
	default:
		s.terminateLocked(j, StateFailed, runErr)
	}
	if !s.closed {
		s.scheduleLocked()
	}
}
