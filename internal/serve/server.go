package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"time"

	"ccahydro/internal/telemetry"
)

// Server is the HTTP face of a Scheduler:
//
//	POST /jobs               submit a Spec (JSON body), returns Status
//	GET  /jobs               list all jobs
//	GET  /jobs/{id}          one job's status (result inlined when done)
//	POST /jobs/{id}/cancel   stop a job at its next checkpoint boundary
//	POST /arrays             submit a swept scenario Spec as a job array
//	GET  /arrays             list all job arrays
//	GET  /arrays/{id}        one array's status (per-point job statuses)
//	GET  /jobs/{id}/series   stream the job's statistics series as
//	                         NDJSON (live via its telemetry hub, or the
//	                         stored result for completed/cache-hit jobs)
//	GET  /jobs/{id}/healthz  the job's per-run telemetry health
//	GET  /healthz            scheduler capacity and population
type Server struct {
	sched *Scheduler
	ln    net.Listener
	srv   *http.Server
	stop  chan struct{}
	once  sync.Once
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts serving sched.
func Listen(addr string, sched *Scheduler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{sched: sched, ln: ln, stop: make(chan struct{})}
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.submit)
	mux.HandleFunc("GET /jobs", s.list)
	mux.HandleFunc("GET /jobs/{id}", s.status)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.cancel)
	mux.HandleFunc("GET /jobs/{id}/{ep}", s.jobScope)
	mux.HandleFunc("POST /arrays", s.submitArray)
	mux.HandleFunc("GET /arrays", s.listArrays)
	mux.HandleFunc("GET /arrays/{id}", s.arrayStatus)
	mux.HandleFunc("GET /healthz", s.healthz)
	return mux
}

// Close hard-stops the server, dropping open streams.
func (s *Server) Close() error {
	s.once.Do(func() { close(s.stop) })
	return s.srv.Close()
}

// Shutdown stops gracefully: the scheduler drains (running jobs stop
// at their next checkpoint boundary), streaming followers get a final
// drain, and in-flight requests finish within ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.sched.Close()
	s.once.Do(func() { close(s.stop) })
	return s.srv.Shutdown(ctx)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, "serve: bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	j, err := s.sched.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if err == ErrClosed {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	st, _ := s.sched.Get(j.ID, false)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Jobs())
}

func (s *Server) submitArray(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, "serve: bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	a, err := s.sched.SubmitArray(spec)
	if err != nil {
		code := http.StatusBadRequest
		if err == ErrClosed {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	st, _ := s.sched.ArrayStatus(a.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) listArrays(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Arrays())
}

func (s *Server) arrayStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sched.ArrayStatus(r.PathValue("id"))
	if !ok {
		http.Error(w, "serve: no such array", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sched.Get(r.PathValue("id"), true)
	if !ok {
		http.Error(w, "serve: no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	st, _ := s.sched.Get(id, false)
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Health())
}

// jobScope forwards /jobs/{id}/{ep} to the job's telemetry endpoints
// (series, healthz, metrics, trace). A job between admissions (queued,
// preempted) or finished from cache has no live hub; /series then
// waits for the next admission (when following) or replays the stored
// result.
func (s *Server) jobScope(w http.ResponseWriter, r *http.Request) {
	id, ep := r.PathValue("id"), r.PathValue("ep")
	j, ok := s.sched.job(id)
	if !ok {
		http.Error(w, "serve: no such job", http.StatusNotFound)
		return
	}
	switch ep {
	case "series":
		s.series(w, r, j)
	case "healthz", "metrics", "trace":
		hub, _, _ := s.snapshot(j)
		if hub == nil {
			http.Error(w, "serve: job has no live run", http.StatusServiceUnavailable)
			return
		}
		r2 := r.Clone(r.Context())
		r2.URL.Path = "/" + ep
		telemetry.NewEndpoints(hub, s.stop).Handler().ServeHTTP(w, r2)
	default:
		http.Error(w, "serve: no such endpoint", http.StatusNotFound)
	}
}

// snapshot reads a job's stream-relevant fields under the lock.
func (s *Server) snapshot(j *Job) (*telemetry.Hub, *Result, bool) {
	s.sched.mu.Lock()
	defer s.sched.mu.Unlock()
	return j.hub, j.result, j.state.terminal()
}

// series streams one job's statistics. A live hub streams exactly as
// the standalone telemetry server does (the stream ends when the
// current admission finishes — on preemption a follower reconnects and
// the restored run replays the full history). Without a hub, a stored
// result is replayed as rank-0 points; a queued job in follow mode
// waits for either.
func (s *Server) series(w http.ResponseWriter, r *http.Request, j *Job) {
	follow := r.URL.Query().Get("follow") != "0"
	for {
		hub, result, terminal := s.snapshot(j)
		if hub != nil && !terminal {
			r2 := r.Clone(r.Context())
			r2.URL.Path = "/series"
			telemetry.NewEndpoints(hub, s.stop).Handler().ServeHTTP(w, r2)
			return
		}
		if result != nil {
			w.Header().Set("Content-Type", "application/x-ndjson")
			enc := json.NewEncoder(w)
			for _, k := range sortedKeys(result.Series) {
				for i, v := range result.Series[k] {
					enc.Encode(telemetry.SeriesPoint{Rank: 0, Key: k, Index: i, Value: v})
				}
			}
			return
		}
		if terminal || !follow {
			w.Header().Set("Content-Type", "application/x-ndjson")
			return // nothing recorded (failed/canceled before running)
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		case <-j.Done():
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func sortedKeys(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for k := i + 1; k < len(keys); k++ {
			if keys[k] < keys[i] {
				keys[i], keys[k] = keys[k], keys[i]
			}
		}
	}
	return keys
}
