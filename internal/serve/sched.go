package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ccahydro/internal/cca"
	"ccahydro/internal/ckpt"
	"ccahydro/internal/components"
	"ccahydro/internal/mpi"
)

// Options configures a Scheduler.
type Options struct {
	// Slots is the rank-slot capacity shared by all running jobs
	// (default 4). A job occupies Ranks slots while running; the
	// patch-parallel work inside every rank still multiplexes over the
	// one process-wide exec pool.
	Slots int
	// Dir is the state root: checkpoints under Dir/ckpt/<prefixKey>,
	// results under Dir/results. "" keeps results in memory and puts
	// checkpoints in a temp directory.
	Dir string
	// Model is the network cost model for the per-job mpi.Worlds; the
	// zero value is mpi.ZeroModel (free communication).
	Model mpi.NetworkModel
	// MaxRetries bounds rank-failure retries per admission (default 2).
	MaxRetries int
	// StoreMax caps the result store's entry count; past it the least
	// recently used result is evicted (memory and disk). 0 = unbounded.
	// Checkpoint lineages are stored separately and never evicted, so
	// warm starts survive result eviction.
	StoreMax int
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: scheduler closed")

// errCanceled marks jobs canceled by request or shutdown.
var errCanceled = errors.New("serve: job canceled")

// Scheduler owns the job table and the slot pool. Admission is
// weighted-fair across priority classes (each class accrues service in
// rank-slots; the nonempty class with the least service per weight goes
// first), preemption is strict-priority (a queued job may evict
// strictly lower classes, stopping them at their next checkpoint
// boundary), and resume is elastic (a preempted job restarts from its
// checkpoint on however many slots are free, down to one).
type Scheduler struct {
	opts  Options
	repo  *cca.Repository
	store *Store
	ckdir string

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job
	queues   [3][]*Job
	served   [3]float64
	free     int
	byKey    map[string]*Job // active (non-terminal) job per full key
	byPrefix map[string]*Job // running/preempting job per prefix key
	reserved *Job            // queued job whose preemption is in flight: only it may be admitted
	arrays   map[string]*Array
	arrOrder []*Array
	nextID   int
	nextArr  int
	closed   bool
	wg       sync.WaitGroup
}

// NewScheduler builds a scheduler over the shared component repository.
func NewScheduler(opts Options) (*Scheduler, error) {
	if opts.Slots == 0 {
		opts.Slots = 4
	}
	if opts.Slots < 1 {
		return nil, fmt.Errorf("serve: bad slot count %d", opts.Slots)
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 2
	}
	resultDir := ""
	ckdir := ""
	if opts.Dir != "" {
		resultDir = filepath.Join(opts.Dir, "results")
		ckdir = filepath.Join(opts.Dir, "ckpt")
	} else {
		d, err := os.MkdirTemp("", "ccaserve-ckpt-")
		if err != nil {
			return nil, err
		}
		ckdir = d
	}
	if err := os.MkdirAll(ckdir, 0o755); err != nil {
		return nil, err
	}
	store, err := NewStore(resultDir, opts.StoreMax)
	if err != nil {
		return nil, err
	}
	return &Scheduler{
		opts:     opts,
		repo:     components.NewRepository(),
		store:    store,
		ckdir:    ckdir,
		jobs:     map[string]*Job{},
		free:     opts.Slots,
		byKey:    map[string]*Job{},
		byPrefix: map[string]*Job{},
		arrays:   map[string]*Array{},
	}, nil
}

// Store exposes the result store (benchmarks and tests inspect it).
func (s *Scheduler) Store() *Store { return s.store }

func (s *Scheduler) prefixDir(j *Job) string {
	return filepath.Join(s.ckdir, j.prefixKey)
}

// Submit validates, dedups, and enqueues a run. The returned job may
// already be terminal (a stored result replayed as a cache hit) or
// waiting (coalesced onto an identical in-flight job). A scenario with
// a sweep block is a job array and must go through SubmitArray.
func (s *Scheduler) Submit(spec Spec) (*Job, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	if spec.HasSweep() {
		return nil, fmt.Errorf("serve: scenario declares a sweep (%d points); submit it as a job array", spec.SweepPoints())
	}
	if spec.Ranks > s.opts.Slots {
		return nil, fmt.Errorf("serve: job wants %d ranks but the server has %d slots", spec.Ranks, s.opts.Slots)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	j := s.submitLocked(spec)
	s.scheduleLocked()
	return j, nil
}

// SweepPoints exposes the expansion size (1 without a sweep).
func (sp *Spec) SweepPoints() int {
	if sp.compiled == nil {
		return 1
	}
	return sp.compiled.SweepPoints()
}

// submitLocked registers and dedups one normalized spec. Caller holds
// the lock and reschedules afterwards.
func (s *Scheduler) submitLocked(spec Spec) *Job {
	s.nextID++
	j := &Job{
		ID:          fmt.Sprintf("job-%04d", s.nextID),
		Spec:        spec,
		fullKey:     spec.FullKey(),
		prefixKey:   spec.PrefixKey(),
		class:       spec.Class(),
		submitted:   time.Now(),
		restoreStep: -1,
		done:        make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j)

	// Dedup tier 1: a completed identical run — replay the stored result.
	if r, ok := s.store.Get(j.fullKey); ok {
		j.state = StateDone
		j.cacheHit = true
		j.result = r
		close(j.done)
		return j
	}
	// Dedup tier 2: an identical run is active — coalesce onto it.
	if p := s.byKey[j.fullKey]; p != nil {
		j.state = StateWaiting
		j.primary = p
		p.waiters = append(p.waiters, j)
		return j
	}
	s.byKey[j.fullKey] = j
	// Dedup tier 3: a shared-prefix run left checkpoints — warm-start
	// from the longest prefix at or before this run's final step. The
	// probe is repeated at admission time, where later checkpoints from
	// a lineage sibling that ran in the meantime become visible.
	s.probeRestore(j)
	j.warmStart = j.restore != ""
	j.state = StateQueued
	s.queues[j.class] = append(s.queues[j.class], j)
	return j
}

// Array is a submitted job array: one swept scenario expanded into its
// cartesian product of points, each a full job with its own dedup keys.
type Array struct {
	ID       string
	Scenario string
	jobs     []*Job
}

// ArrayStatus is the wire view of a job array.
type ArrayStatus struct {
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	Points   int    `json:"points"`
	// SharedPrefix is true when every point hashes to one prefix key —
	// a duration-knob sweep, whose points chain warm starts down a
	// single checkpoint lineage.
	SharedPrefix bool     `json:"sharedPrefix"`
	Jobs         []Status `json:"jobs"`
}

// SubmitArray expands a swept scenario into one job per point and
// submits them all atomically (points are registered in sweep order,
// last axis fastest). Points sharing a prefix key — a sweep over the
// run-length knob — serialize onto one checkpoint lineage and each
// warm-starts from the longest prefix its predecessors left behind.
func (s *Scheduler) SubmitArray(spec Spec) (*Array, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	if spec.compiled == nil {
		return nil, fmt.Errorf("serve: job arrays take a scenario spec")
	}
	if !spec.compiled.HasSweep() {
		return nil, fmt.Errorf("serve: scenario declares no sweep; submit it as a single job")
	}
	if spec.Ranks > s.opts.Slots {
		return nil, fmt.Errorf("serve: job wants %d ranks but the server has %d slots", spec.Ranks, s.opts.Slots)
	}
	points := spec.Expand()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.nextArr++
	a := &Array{
		ID:       fmt.Sprintf("array-%04d", s.nextArr),
		Scenario: spec.compiled.Name,
		jobs:     make([]*Job, 0, len(points)),
	}
	for _, p := range points {
		a.jobs = append(a.jobs, s.submitLocked(p))
	}
	s.arrays[a.ID] = a
	s.arrOrder = append(s.arrOrder, a)
	s.scheduleLocked()
	return a, nil
}

// arrayStatusLocked builds the wire view; caller holds the lock.
func (a *Array) statusLocked() ArrayStatus {
	st := ArrayStatus{ID: a.ID, Scenario: a.Scenario, Points: len(a.jobs), SharedPrefix: len(a.jobs) > 0}
	for _, j := range a.jobs {
		if j.prefixKey != a.jobs[0].prefixKey {
			st.SharedPrefix = false
		}
		st.Jobs = append(st.Jobs, j.statusLocked(false))
	}
	return st
}

// ArrayStatus returns one array's status.
func (s *Scheduler) ArrayStatus(id string) (ArrayStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.arrays[id]
	if !ok {
		return ArrayStatus{}, false
	}
	return a.statusLocked(), true
}

// Arrays lists all job arrays in submission order.
func (s *Scheduler) Arrays() []ArrayStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ArrayStatus, 0, len(s.arrOrder))
	for _, a := range s.arrOrder {
		out = append(out, a.statusLocked())
	}
	return out
}

// probeRestore points j at the newest usable checkpoint in its prefix
// lineage, bounded by the job's own final step.
func (s *Scheduler) probeRestore(j *Job) {
	if !j.Spec.Checkpointable() {
		return
	}
	target := j.Spec.TargetStep()
	if path, step, ok := ckpt.LatestValidAtMost(s.prefixDir(j), target); ok {
		j.restore, j.restoreStep = path, step
	}
}

// Get returns a job's status (result included when terminal).
func (s *Scheduler) Get(id string, withResult bool) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, false
	}
	return j.statusLocked(withResult), true
}

// job returns the live job handle (HTTP series scoping needs the hub).
func (s *Scheduler) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all jobs in submission order.
func (s *Scheduler) Jobs() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, j := range s.order {
		out = append(out, j.statusLocked(false))
	}
	return out
}

// Health summarizes the scheduler for /healthz.
type Health struct {
	Slots   int  `json:"slots"`
	Free    int  `json:"free"`
	Jobs    int  `json:"jobs"`
	Running int  `json:"running"`
	Queued  int  `json:"queued"`
	Results int  `json:"results"`
	Closed  bool `json:"closed"`
}

// Health reports current capacity and population.
func (s *Scheduler) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{Slots: s.opts.Slots, Free: s.free, Jobs: len(s.jobs), Closed: s.closed, Results: s.store.Len()}
	for _, j := range s.order {
		switch j.state {
		case StateRunning, StatePreempting:
			h.Running++
		case StateQueued, StatePreempted, StateWaiting:
			h.Queued++
		}
	}
	return h
}

// Cancel stops a job: dequeued if waiting, told to stop at its next
// checkpoint boundary if running (its checkpoints stay behind for
// future warm starts). Non-checkpointable running jobs finish their
// computation but are reported canceled.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("serve: no job %q", id)
	}
	switch j.state {
	case StateQueued, StatePreempted:
		s.dequeue(j)
		s.terminateLocked(j, StateCanceled, errCanceled)
		s.scheduleLocked()
	case StateWaiting:
		p := j.primary
		for i, w := range p.waiters {
			if w == j {
				p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
				break
			}
		}
		j.primary = nil
		j.state = StateCanceled
		j.err = errCanceled
		close(j.done)
	case StateRunning, StatePreempting:
		j.cancelReq = true
		j.gate.Request()
	default:
		return fmt.Errorf("serve: job %q is already %s", id, j.state)
	}
	return nil
}

// dequeue removes j from its class queue (no-op if absent).
func (s *Scheduler) dequeue(j *Job) {
	q := s.queues[j.class]
	for i, x := range q {
		if x == j {
			s.queues[j.class] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// terminateLocked moves j to a terminal state, settles its waiters,
// and releases its dedup claims. Caller holds the lock.
func (s *Scheduler) terminateLocked(j *Job, st State, err error) {
	j.state = st
	j.err = err
	if s.reserved == j {
		s.reserved = nil
	}
	if s.byKey[j.fullKey] == j {
		delete(s.byKey, j.fullKey)
	}
	if j.result != nil {
		// Waiters inherit the result as cache hits.
		for _, w := range j.waiters {
			w.state = StateDone
			w.cacheHit = true
			w.result = j.result
			close(w.done)
		}
		j.waiters = nil
	} else if len(j.waiters) > 0 && s.closed {
		for _, w := range j.waiters {
			w.state = StateCanceled
			w.err = errCanceled
			close(w.done)
		}
		j.waiters = nil
	} else if len(j.waiters) > 0 {
		// Promote the first waiter to primary; the rest re-coalesce.
		p := j.waiters[0]
		p.waiters = append(p.waiters, j.waiters[1:]...)
		for _, w := range p.waiters {
			w.primary = p
		}
		j.waiters = nil
		p.primary = nil
		s.byKey[p.fullKey] = p
		s.probeRestore(p)
		p.warmStart = p.restore != ""
		p.state = StateQueued
		s.queues[p.class] = append(s.queues[p.class], p)
	}
	close(j.done)
}

// pickClass returns the class with the least service per weight among
// classes with queued work, ties to the higher class; -1 when idle.
func (s *Scheduler) pickClass(skip map[int]bool) int {
	best := -1
	var bestShare float64
	for c := 0; c < 3; c++ {
		if skip[c] || len(s.queues[c]) == 0 {
			continue
		}
		share := s.served[c] / classWeights[c]
		if best == -1 || share < bestShare || (share == bestShare && c > best) {
			best, bestShare = c, share
		}
	}
	return best
}

// neededRanks is the allocation j would get if admitted now: cold
// starts insist on the full request; checkpoint resumes shrink to what
// is free (elastic restore makes any rank count equivalent).
func (s *Scheduler) neededRanks(j *Job) (int, bool) {
	if j.restore != "" && j.Spec.Checkpointable() {
		if s.free < 1 {
			return 0, false
		}
		n := j.Spec.Ranks
		if n > s.free {
			n = s.free
		}
		return n, true
	}
	return j.Spec.Ranks, j.Spec.Ranks <= s.free
}

// fits reports whether j can start right now.
func (s *Scheduler) fits(j *Job) (int, bool) {
	if s.byPrefix[j.prefixKey] != nil {
		// One run per checkpoint lineage at a time: two writers in one
		// directory would interleave manifests from different steps.
		return 0, false
	}
	if s.reserved != nil && s.reserved != j {
		// Slots freed by an in-flight preemption are spoken for.
		return 0, false
	}
	return s.neededRanks(j)
}

// scheduleLocked admits jobs until nothing fits, then considers
// preemption for the best queued class. Caller holds the lock.
func (s *Scheduler) scheduleLocked() {
	for {
		admitted := false
		skip := map[int]bool{}
		for {
			c := s.pickClass(skip)
			if c < 0 {
				break
			}
			found := false
			for _, j := range s.queues[c] {
				if n, ok := s.fits(j); ok {
					s.dequeue(j)
					s.admitLocked(j, n)
					admitted, found = true, true
					break
				}
			}
			if !found {
				skip[c] = true // nothing runnable in this class right now
			}
		}
		if !admitted {
			break
		}
	}
	s.maybePreemptLocked()
}

// admitLocked starts j on n ranks. Caller holds the lock.
func (s *Scheduler) admitLocked(j *Job, n int) {
	// Re-probe the checkpoint lineage: a shared-prefix sibling may have
	// finished (and left checkpoints) after this job was submitted —
	// array points swept over the duration knob chain warm starts this
	// way, each admitted point restoring from the previous point's tail.
	prev := j.restoreStep
	s.probeRestore(j)
	if j.restoreStep > prev && j.preemptions == 0 {
		j.warmStart = true
	}
	j.ranks = n
	j.state = StateRunning
	j.gate = &ckpt.Gate{}
	if j.cancelReq {
		// Canceled while queued between preemption and resume.
		j.gate.Request()
	}
	s.free -= n
	s.served[j.class] += float64(n)
	s.byPrefix[j.prefixKey] = j
	if s.reserved == j {
		s.reserved = nil
	}
	s.wg.Add(1)
	go s.run(j)
}

// maybePreemptLocked checks whether the best queued job that cannot be
// admitted should evict strictly lower classes. Victims are signaled
// to stop at their next checkpoint boundary; the queued job holds a
// reservation on the freed slots until it is admitted. Caller holds
// the lock.
func (s *Scheduler) maybePreemptLocked() {
	if s.reserved != nil {
		return // one preemption in flight at a time
	}
	for c := ClassHigh; c > ClassBatch; c-- {
		for _, j := range s.queues[c] {
			if s.byPrefix[j.prefixKey] != nil {
				continue
			}
			need := j.Spec.Ranks // after eviction slots are plentiful; take the full request
			avail := s.free
			var victims []*Job
			for _, r := range s.order {
				if r.state != StateRunning || r.class >= c || !r.Spec.Checkpointable() {
					continue
				}
				victims = append(victims, r)
			}
			// Lowest class first, largest allocation first within a class:
			// evict the cheapest work and as few jobs as possible.
			for i := 0; i < len(victims); i++ {
				for k := i + 1; k < len(victims); k++ {
					a, b := victims[i], victims[k]
					if b.class < a.class || (b.class == a.class && b.ranks > a.ranks) {
						victims[i], victims[k] = b, a
					}
				}
			}
			var chosen []*Job
			for _, v := range victims {
				if avail >= need {
					break
				}
				avail += v.ranks
				chosen = append(chosen, v)
			}
			if avail < need || len(chosen) == 0 {
				continue // eviction would not make room; leave everyone alone
			}
			for _, v := range chosen {
				v.state = StatePreempting
				v.gate.Request()
			}
			s.reserved = j
			return
		}
	}
}

// Close stops the scheduler: queued jobs are canceled, running jobs
// are stopped at their next checkpoint boundary (their checkpoints
// remain for a future server), and the call waits for all runners to
// land. Safe to call once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for _, j := range s.order {
		switch j.state {
		case StateQueued, StatePreempted:
			s.dequeue(j)
			s.terminateLocked(j, StateCanceled, errCanceled)
		case StateWaiting:
			// Settled when its primary terminates below (or already was).
		case StateRunning, StatePreempting:
			j.cancelReq = true
			j.gate.Request()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}
