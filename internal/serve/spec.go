// Package serve is the multi-tenant simulation-as-a-service plane over
// the assembly machinery: a Scheduler that owns runs as jobs —
// priority-classed, weighted-fair, preemptible at checkpoint
// boundaries, elastically resumable on a different rank count — and an
// HTTP server exposing submit/status/cancel plus per-job telemetry
// scopes (streamed NDJSON series). All jobs multiplex their
// patch-parallel loops over the one shared internal/exec epoch pool;
// rank parallelism stays per-job in each job's private mpi.World.
//
// Jobs are either built-ins (Problem "ignition"/"flame"/"shock") or
// declarative scenarios: a Spec may carry scenario source text, which
// is compiled and statically validated at submission. A scenario with
// a sweep block is a job array (POST /arrays): one spec expanding into
// the cartesian product of its axes, every point a full job of its own.
//
// Content-addressed run dedup extends the FNV-1a fingerprint chain
// (per-patch field fingerprints, checkpoint content IDs) up to whole
// runs: a Spec hashes to a full key (every assembly-visible knob) and a
// prefix key (the same minus the run-length knob). Identical
// resubmissions are served from the result store or coalesced onto the
// in-flight twin; near-identical ones (same prefix, different length)
// restart from the longest shared checkpoint prefix — array points
// swept over the duration knob chain warm starts down one lineage.
package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"ccahydro/internal/core"
	"ccahydro/internal/scenario"
)

// Priority classes, lowest to highest. Weighted fairness shares slots
// across classes in proportion to their weights; strictly higher
// classes may additionally preempt strictly lower ones.
const (
	ClassBatch  = 0
	ClassNormal = 1
	ClassHigh   = 2
)

// classWeights drive the weighted-fair admission order.
var classWeights = [3]float64{1, 2, 4}

var classNames = map[string]int{"batch": ClassBatch, "normal": ClassNormal, "high": ClassHigh}

// Spec is one run request as submitted over the wire.
type Spec struct {
	// Problem selects a built-in assembly: "ignition", "flame", or
	// "shock". Empty when Scenario is set.
	Problem string `json:"problem,omitempty"`
	// Flux is the shock problem's flux component swap ("GodunovFlux",
	// the default, or "EFMFlux").
	Flux string `json:"flux,omitempty"`
	// Params are instance parameters, instance -> key -> value,
	// applied before instantiation (the Ccaffeine "parameter" verb).
	Params map[string]map[string]string `json:"params,omitempty"`
	// Scenario is declarative scenario source text (see
	// internal/scenario), mutually exclusive with Problem/Flux/Params.
	// It is compiled and fully validated at submission; a sweep block
	// makes the spec a job array and is accepted only via SubmitArray.
	Scenario string `json:"scenario,omitempty"`
	// Ranks is the requested SPMD rank count (default 1). A resumed
	// job may be restarted on fewer ranks when capacity is tight; the
	// elastic restore path keeps the results bit-identical.
	Ranks int `json:"ranks,omitempty"`
	// Priority is "batch", "normal" (default), or "high".
	Priority string `json:"priority,omitempty"`
	// CkptEvery is the checkpoint cadence in driver steps (default 1).
	// It bounds preemption latency: a job can only stop at a step
	// boundary, and only checkpointable problems can stop early at all.
	CkptEvery int `json:"ckptEvery,omitempty"`

	// compiled is the validated scenario (set by Normalize, or directly
	// for expanded sweep points).
	compiled *scenario.Compiled
}

// durationParam names the per-problem run-length knob — the one knob
// excluded from the prefix key, so runs differing only in length share
// a checkpoint lineage. For the shock problem that is maxSteps, not
// tEnd: the driver clamps the final dt against tEnd, so state at a
// given step is tEnd-dependent and tEnd must stay in the prefix key.
// Scenario specs take the same knob from the run target's driver-class
// schema instead.
var durationParam = map[string]string{"flame": "steps", "shock": "maxSteps"}

// durationDefault mirrors the drivers' defaults so an explicit
// "steps=5" and an omitted one hash identically.
var durationDefault = map[string]string{"flame": "5", "shock": "10000"}

// progressKey is the per-step statistics series whose length counts
// completed steps in a stored result.
var progressKey = map[string]string{"flame": "cells", "shock": "t", "ignition": "T"}

// Normalize validates the spec and fills defaults in place (rank count,
// priority, cadence, and the duration parameter, which must be explicit
// so content hashing and prefix probing agree on the run length).
func (sp *Spec) Normalize() error {
	if sp.compiled == nil && sp.Scenario != "" {
		if sp.Problem != "" || sp.Flux != "" || sp.Params != nil {
			return fmt.Errorf("serve: scenario spec must not also set problem/flux/params")
		}
		c, err := scenario.Compile("scenario", []byte(sp.Scenario))
		if err != nil {
			return fmt.Errorf("serve: bad scenario:\n%w", err)
		}
		sp.compiled = c
	}
	if sp.compiled == nil {
		if err := core.ValidRequest(core.RunRequest{Problem: sp.Problem, Flux: sp.Flux}); err != nil {
			return err
		}
	}
	if sp.Ranks == 0 {
		sp.Ranks = 1
	}
	if sp.Ranks < 0 {
		return fmt.Errorf("serve: bad rank count %d", sp.Ranks)
	}
	if sp.Priority == "" {
		sp.Priority = "normal"
	}
	if _, ok := classNames[sp.Priority]; !ok {
		return fmt.Errorf("serve: unknown priority %q (want batch, normal, or high)", sp.Priority)
	}
	if sp.CkptEvery == 0 {
		sp.CkptEvery = 1
	}
	if sp.CkptEvery < 0 {
		return fmt.Errorf("serve: bad checkpoint cadence %d", sp.CkptEvery)
	}
	if inst, dk, dflt := sp.durationKnob(); dk != "" {
		v := sp.param(inst, dk, dflt)
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return fmt.Errorf("serve: bad %s %s %q", inst, dk, v)
		}
		if sp.compiled != nil {
			sp.compiled.SetParam(inst, dk, strconv.Itoa(n))
		} else {
			if sp.Params == nil {
				sp.Params = map[string]map[string]string{}
			}
			if sp.Params[inst] == nil {
				sp.Params[inst] = map[string]string{}
			}
			sp.Params[inst][dk] = strconv.Itoa(n)
		}
	}
	return nil
}

// durationKnob locates the run-length knob: the instance carrying it,
// its key, and its default ("" key when the problem has none).
func (sp *Spec) durationKnob() (inst, key, dflt string) {
	if sp.compiled != nil {
		dk := sp.compiled.DurationParam()
		if dk == "" {
			return "", "", ""
		}
		dflt, _ := scenario.DefaultParam(sp.compiled.ClassOf(sp.compiled.RunInstance()), dk)
		return sp.compiled.RunInstance(), dk, dflt
	}
	dk, ok := durationParam[sp.Problem]
	if !ok {
		return "", "", ""
	}
	return "driver", dk, durationDefault[sp.Problem]
}

func (sp *Spec) param(instance, key, dflt string) string {
	if sp.compiled != nil {
		if v, ok := sp.compiled.Param(instance, key); ok {
			return v
		}
		return dflt
	}
	if m := sp.Params[instance]; m != nil {
		if v, ok := m[key]; ok {
			return v
		}
	}
	return dflt
}

// Class returns the numeric priority class.
func (sp *Spec) Class() int { return classNames[sp.Priority] }

// HasSweep reports whether the spec is a job array (a scenario with a
// sweep block).
func (sp *Spec) HasSweep() bool { return sp.compiled != nil && sp.compiled.HasSweep() }

// ProblemLabel is the display name of the assembly: the built-in
// problem, or "scenario:<name>".
func (sp *Spec) ProblemLabel() string {
	if sp.compiled != nil {
		return "scenario:" + sp.compiled.Name
	}
	return sp.Problem
}

// TargetStep is the last 0-based driver step the run executes, or -1
// when the problem has no step-indexed checkpoints. A prefix restart
// must restore at or before this step — a later checkpoint describes
// state this (shorter) run never reaches.
func (sp *Spec) TargetStep() int {
	inst, dk, dflt := sp.durationKnob()
	if dk == "" {
		return -1
	}
	n, _ := strconv.Atoi(sp.param(inst, dk, dflt))
	return n - 1
}

// Checkpointable reports whether this job can be preempted and resumed.
func (sp *Spec) Checkpointable() bool {
	if sp.compiled != nil {
		return sp.compiled.Checkpointable()
	}
	return core.Checkpointable(sp.Problem)
}

// ProgressKey returns the per-step series counting completed steps.
func (sp *Spec) ProgressKey() string {
	if sp.compiled != nil {
		return sp.compiled.ProgressKey()
	}
	return progressKey[sp.Problem]
}

// Request lowers the spec to the core assembly request. Parameters are
// emitted in sorted (instance, key) order so assembly is deterministic.
func (sp *Spec) Request() core.RunRequest {
	if sp.compiled != nil {
		return core.RunRequest{Problem: core.ScenarioProblem, Scenario: sp.compiled}
	}
	req := core.RunRequest{Problem: sp.Problem, Flux: sp.Flux}
	var insts []string
	for inst := range sp.Params {
		insts = append(insts, inst)
	}
	sort.Strings(insts)
	for _, inst := range insts {
		var keys []string
		for k := range sp.Params[inst] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			req.Params = append(req.Params, core.Param{Instance: inst, Key: k, Value: sp.Params[inst][k]})
		}
	}
	return req
}

// Expand materializes a job array's points as independent specs (a
// spec without a sweep expands to itself). Each point inherits the
// base spec's scheduling knobs; its Scenario text is re-rendered so
// statuses show the concrete point.
func (sp *Spec) Expand() []Spec {
	if sp.compiled == nil {
		return []Spec{*sp}
	}
	points := sp.compiled.Expand()
	out := make([]Spec, len(points))
	for i, p := range points {
		out[i] = Spec{
			Scenario:  p.Render(),
			Ranks:     sp.Ranks,
			Priority:  sp.Priority,
			CkptEvery: sp.CkptEvery,
			compiled:  p,
		}
	}
	return out
}

// hashLines folds canonical lines through FNV-1a 64 — the same hash
// family as the per-patch field fingerprints and checkpoint content
// IDs, extended to the whole (scenario, mechanism, solver params)
// tuple.
func hashLines(lines []string) string {
	h := fnv.New64a()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// FullKey is the content address of the complete run: every knob that
// can change the computed result, including the run length. Rank
// count, priority, and checkpoint cadence are deliberately excluded —
// results are rank-count-invariant (the elastic-restore matrix proves
// it) and scheduling knobs don't change the physics.
func (sp *Spec) FullKey() string {
	return hashLines(core.CanonicalRequestLines(sp.Request()))
}

// PrefixKey is FullKey minus the run-length knob: jobs sharing it walk
// the same trajectory for as long as both run, so they share one
// checkpoint lineage and a shorter/longer resubmission restarts from
// the longest shared checkpoint prefix.
func (sp *Spec) PrefixKey() string {
	inst, dk, _ := sp.durationKnob()
	if dk == "" {
		return sp.FullKey()
	}
	drop := inst + "/" + dk + "="
	if sp.compiled != nil {
		drop = "param/" + drop
	}
	var lines []string
	for _, l := range core.CanonicalRequestLines(sp.Request()) {
		if strings.HasPrefix(l, drop) {
			continue
		}
		lines = append(lines, l)
	}
	return hashLines(lines)
}
