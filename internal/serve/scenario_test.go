package serve

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// flameScenario renders the flame assembly as scenario text with the
// same shrunken parameters flameSpec uses, so built-in and scenario
// submissions of the same run can be compared series-for-series.
func flameScenario(steps int) string {
	return fmt.Sprintf(`scenario flame_scn
component grace     GrACEComponent { nx = 16  ny = 16  maxLevels = 2 }
component chem      ThermoChemistry
component drfm      DRFMComponent
component ic        InitialCondition
component diffusion DiffusionPhysics
component maxdiff   MaxDiffCoeffEvaluator
component rkc       ExplicitIntegrator
component cvode     CvodeComponent
component implicit  ImplicitIntegrator
component regrid    ErrorEstAndRegrid
component stats     StatisticsComponent
component driver    RDDriver { steps = %d  dt = 1e-7  regridEvery = 2 }
connect ic.chemistry        -> chem.chemistry
connect diffusion.transport -> drfm.transport
connect diffusion.chemistry -> chem.chemistry
connect maxdiff.transport   -> drfm.transport
connect maxdiff.chemistry   -> chem.chemistry
connect rkc.patchRHS        -> diffusion.patchRHS
connect rkc.maxEigen        -> maxdiff.maxEigen
connect cvode.rhs           -> implicit.cellRHS
connect implicit.integrator -> cvode.integrator
connect implicit.chemistry  -> chem.chemistry
connect driver.mesh          -> grace.mesh
connect driver.ic            -> ic.ic
connect driver.explicit      -> rkc.integrator
connect driver.cellChemistry -> implicit.cellChemistry
connect driver.regrid        -> regrid.regrid
connect driver.stats         -> stats.stats
connect driver.chemistry     -> chem.chemistry
run driver
`, steps)
}

func scenarioSpec(text string) Spec { return Spec{Scenario: text} }

// TestScenarioSpecMatchesBuiltin: submitting the flame as a scenario
// payload reproduces the built-in submission bit for bit, and the two
// hash to different content keys (the assembly paths are distinct).
func TestScenarioSpecMatchesBuiltin(t *testing.T) {
	s := newTestSched(t, 1)
	b, err := s.Submit(flameSpec(3, 1, "normal"))
	if err != nil {
		t.Fatal(err)
	}
	bst := waitTerminal(t, s, b.ID)
	if bst.State != StateDone {
		t.Fatalf("builtin: %+v", bst)
	}

	sc, err := s.Submit(scenarioSpec(flameScenario(3)))
	if err != nil {
		t.Fatal(err)
	}
	sst := waitTerminal(t, s, sc.ID)
	if sst.State != StateDone {
		t.Fatalf("scenario: %+v", sst)
	}
	if sst.CacheHit {
		t.Fatal("scenario submission must not alias the built-in's content key")
	}
	if sst.Problem != "scenario:flame_scn" {
		t.Fatalf("problem label: %q", sst.Problem)
	}
	sameSeries(t, "scenario-vs-builtin cells", bst.Result.Series["cells"], sst.Result.Series["cells"])

	// An identical scenario resubmission IS a cache hit.
	again, err := s.Submit(scenarioSpec(flameScenario(3)))
	if err != nil {
		t.Fatal(err)
	}
	ast := waitTerminal(t, s, again.ID)
	if !ast.CacheHit || ast.StepsRun != 0 {
		t.Fatalf("scenario resubmission recomputed: %+v", ast)
	}
}

// TestScenarioSpecRejections: malformed payloads fail at Submit with
// the front-end's positioned diagnostics, not inside a worker.
func TestScenarioSpecRejections(t *testing.T) {
	s := newTestSched(t, 1)
	if _, err := s.Submit(Spec{Scenario: "scenario x\ncomponent a Bogus\nrun a\n"}); err == nil {
		t.Fatal("invalid scenario was admitted")
	} else if !strings.Contains(err.Error(), `unknown component class "Bogus"`) {
		t.Fatalf("rejection lost the diagnostic: %v", err)
	}

	mixed := scenarioSpec(flameScenario(2))
	mixed.Problem = "flame"
	if _, err := s.Submit(mixed); err == nil {
		t.Fatal("scenario+problem spec was admitted")
	}

	sweep := scenarioSpec(flameScenario(2) + "sweep {\n    param driver.steps = [2, 4]\n}\n")
	if _, err := s.Submit(sweep); err == nil {
		t.Fatal("Submit accepted a sweep")
	} else if !strings.Contains(err.Error(), "job array") {
		t.Fatalf("sweep rejection should point at arrays: %v", err)
	}
}

// TestScenarioArraySharedLineage is the acceptance scenario: a
// duration sweep submitted as a job array whose points share one dedup
// prefix key, so each successive point warm-starts from its
// predecessor's checkpoints, and the final point matches a solo
// full-length run bit for bit.
func TestScenarioArraySharedLineage(t *testing.T) {
	ref := newTestSched(t, 1)
	r, err := ref.Submit(scenarioSpec(flameScenario(4)))
	if err != nil {
		t.Fatal(err)
	}
	refSt := waitTerminal(t, ref, r.ID)
	if refSt.State != StateDone {
		t.Fatalf("reference: %+v", refSt)
	}

	s := newTestSched(t, 1)
	arr, err := s.SubmitArray(scenarioSpec(
		flameScenario(2) + "sweep {\n    param driver.steps = [2, 4]\n}\n"))
	if err != nil {
		t.Fatal(err)
	}
	as, ok := s.ArrayStatus(arr.ID)
	if !ok {
		t.Fatalf("array %s not registered", arr.ID)
	}
	if as.Points != 2 || !as.SharedPrefix {
		t.Fatalf("array: %+v", as)
	}

	short := waitTerminal(t, s, as.Jobs[0].ID)
	long := waitTerminal(t, s, as.Jobs[1].ID)
	if short.State != StateDone || long.State != StateDone {
		t.Fatalf("states: %s / %s", short.State, long.State)
	}
	if short.StepsRun != 2 {
		t.Fatalf("short point computed %d steps", short.StepsRun)
	}
	if !long.WarmStart {
		t.Fatalf("second point did not warm-start from the first's lineage: %+v", long)
	}
	if long.StepsRun >= 4 {
		t.Fatalf("warm-started point recomputed the shared prefix: %d live steps", long.StepsRun)
	}
	sameSeries(t, "array warm-start cells", refSt.Result.Series["cells"], long.Result.Series["cells"])
}

// TestScenarioArrayDistinctLineages: a class-axis sweep (component
// swap) yields points with distinct prefix keys — independent runs, no
// shared checkpoints.
func TestScenarioArrayDistinctLineages(t *testing.T) {
	scn := `scenario flux_pair
component grace    GrACEComponent { nx = 24  ny = 12  maxLevels = 2 }
component gas      GasProperties
component ic       ConicalInterfaceIC
component states   States
component flux     GodunovFlux
component inviscid InviscidFlux
component chars    CharacteristicQuantities
component bc       BoundaryConditions
component rk2      ExplicitIntegratorRK2
component regrid   ErrorEstAndRegrid
component stats    StatisticsComponent
component driver   ShockDriver { tEnd = 1.0  maxSteps = 4  regridEvery = 2 }
connect ic.gasProperties       -> gas.properties
connect inviscid.states        -> states.states
connect inviscid.flux          -> flux.flux
connect inviscid.gasProperties -> gas.properties
connect chars.gasProperties    -> gas.properties
connect bc.mesh                -> grace.mesh
connect rk2.patchRHS           -> inviscid.patchRHS
connect rk2.bc                 -> bc.bc
connect driver.mesh            -> grace.mesh
connect driver.ic              -> ic.ic
connect driver.integrator      -> rk2.integrator
connect driver.characteristics -> chars.characteristics
connect driver.regrid          -> regrid.regrid
connect driver.stats           -> stats.stats
connect driver.gasProperties   -> gas.properties
connect driver.bc              -> bc.bc
run driver
sweep {
    class flux = [GodunovFlux, EFMFlux]
}
`
	s := newTestSched(t, 1)
	arr, err := s.SubmitArray(scenarioSpec(scn))
	if err != nil {
		t.Fatal(err)
	}
	as, _ := s.ArrayStatus(arr.ID)
	if as.Points != 2 || as.SharedPrefix {
		t.Fatalf("class-swap points must not share a lineage: %+v", as)
	}
	a := waitTerminal(t, s, as.Jobs[0].ID)
	b := waitTerminal(t, s, as.Jobs[1].ID)
	if a.State != StateDone || b.State != StateDone {
		t.Fatalf("states: %s / %s", a.State, b.State)
	}
	if b.WarmStart || b.CacheHit {
		t.Fatalf("EFM point inherited Godunov state: %+v", b)
	}
	// Different flux schemes must actually disagree on the trajectory.
	at, bt := a.Result.Series["dt"], b.Result.Series["dt"]
	same := len(at) == len(bt)
	if same {
		for i := range at {
			if at[i] != bt[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("Godunov and EFM produced identical dt series")
	}
}

// TestArrayHTTPEndpoints: the /arrays routes accept a swept scenario,
// report its shared-lineage shape, and list registered arrays.
func TestArrayHTTPEndpoints(t *testing.T) {
	sched := newTestSched(t, 1)
	srv, err := Listen("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// A sweep must go to /arrays, not /jobs.
	sweep := scenarioSpec(flameScenario(2) + "sweep {\n    param driver.steps = [2, 3]\n}\n")
	if code := httpJSON(t, "POST", base+"/jobs", sweep, nil); code != http.StatusBadRequest {
		t.Fatalf("POST /jobs with a sweep: %d, want 400", code)
	}
	// A sweepless scenario must go to /jobs, not /arrays.
	if code := httpJSON(t, "POST", base+"/arrays", scenarioSpec(flameScenario(2)), nil); code != http.StatusBadRequest {
		t.Fatalf("POST /arrays without a sweep: %d, want 400", code)
	}

	var as ArrayStatus
	if code := httpJSON(t, "POST", base+"/arrays", sweep, &as); code != http.StatusAccepted {
		t.Fatalf("POST /arrays: %d", code)
	}
	if as.Points != 2 || !as.SharedPrefix || len(as.Jobs) != 2 {
		t.Fatalf("array status: %+v", as)
	}
	for _, js := range as.Jobs {
		if st := waitHTTPDone(t, base, js.ID); st.State != StateDone {
			t.Fatalf("point %s ended %s", js.ID, st.State)
		}
	}

	var got ArrayStatus
	if code := httpJSON(t, "GET", base+"/arrays/"+as.ID, nil, &got); code != http.StatusOK {
		t.Fatalf("GET /arrays/%s: %d", as.ID, code)
	}
	if !got.Jobs[1].WarmStart {
		t.Fatalf("second point over HTTP did not warm-start: %+v", got.Jobs[1])
	}
	var all []ArrayStatus
	if code := httpJSON(t, "GET", base+"/arrays", nil, &all); code != http.StatusOK || len(all) != 1 {
		t.Fatalf("GET /arrays: %d, %d arrays", code, len(all))
	}
	if code := httpJSON(t, "GET", base+"/arrays/array-9999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing array returned %d", code)
	}
}
