// Package prof wires runtime/pprof file profiles into the command-line
// binaries (`ccarun -cpuprofile`, `experiments -memprofile`, ...), so
// pool and communication hotspots are inspectable with `go tool pprof`
// without attaching the tracer or the metrics HTTP server.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested profiles. Either path may be empty. The
// returned stop function finalizes them (it must run before the
// process exits for the profiles to be valid) and reports what was
// written; it is safe to call exactly once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
			fmt.Printf("cpu profile written to %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("heap profile written to %s\n", memPath)
		}
		return nil
	}, nil
}
