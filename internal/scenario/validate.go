package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// maxSweepPoints bounds the cartesian product a sweep may expand to: a
// job-array submission caps out well below it, and it keeps adversarial
// (fuzzed) inputs from amplifying into unbounded validation work.
const maxSweepPoints = 512

// Compile parses and validates src, returning the executable form. The
// error, when non-nil, is a DiagList: every finding has a position.
func Compile(path string, src []byte) (*Compiled, error) {
	file, err := Parse(path, src)
	if err != nil {
		return nil, err
	}
	return Validate(file)
}

// Validate checks a parsed scenario against the class schema and lowers
// it to a Compiled assembly. All diagnostics are collected, not just
// the first.
func Validate(file *File) (*Compiled, error) {
	v := &validator{file: file}
	c := v.run()
	if len(v.diags) > 0 {
		sort.SliceStable(v.diags, func(i, j int) bool {
			a, b := v.diags[i].Pos, v.diags[j].Pos
			return a.Line < b.Line || (a.Line == b.Line && a.Col < b.Col)
		})
		return nil, DiagList(v.diags)
	}
	return c, nil
}

type validator struct {
	file  *File
	diags []Diag
}

func (v *validator) errf(pos Pos, format string, args ...any) {
	v.diags = append(v.diags, Diag{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (v *validator) run() *Compiled {
	f := v.file
	start := Pos{File: f.Path, Line: 1, Col: 1}
	if f.Name == "" {
		v.errf(start, "missing scenario declaration (want: scenario NAME)")
	}
	c := &Compiled{Name: f.Name, Path: f.Path}

	// Components: unique instances, known classes, well-typed knobs.
	byInst := map[string]*ComponentStmt{}
	for _, comp := range f.Comps {
		if prev, dup := byInst[comp.Instance]; dup {
			v.errf(comp.Pos, "duplicate component instance %q (first declared at %s)", comp.Instance, prev.Pos)
			continue
		}
		byInst[comp.Instance] = comp
		cls, known := classes[comp.Class]
		if !known {
			v.errf(comp.ClassPos, "unknown component class %q", comp.Class)
		}
		cc := CompiledComponent{Instance: comp.Instance, Class: comp.Class, Params: map[string]string{}}
		for _, set := range comp.Params {
			if _, dup := cc.Params[set.Key]; dup {
				v.errf(set.Pos, "duplicate parameter %q on component %q", set.Key, comp.Instance)
				continue
			}
			if known {
				v.checkParam(set.Pos, comp.Instance, cls, comp.Class, set.Key, set.Value.Text)
			}
			cc.Params[set.Key] = set.Value.Text
		}
		c.Comps = append(c.Comps, cc)
	}

	// Connections: both ends exist, ports exist, types match exactly,
	// and no uses port is wired twice. Cycles are legal (the flame's
	// CVODE/implicit pair is mutually connected by design).
	usedPorts := map[string]Pos{} // "inst.port" -> first connect
	for _, cn := range f.Conns {
		uc, uok := byInst[cn.User]
		pc, pok := byInst[cn.Provider]
		if !uok {
			v.errf(cn.Pos, "connect references unknown instance %q", cn.User)
		}
		if !pok {
			v.errf(cn.ProviderPos, "connect references unknown instance %q", cn.Provider)
		}
		if !uok || !pok {
			continue
		}
		ucls, uclsOK := classes[uc.Class]
		pcls, pclsOK := classes[pc.Class]
		if !uclsOK || !pclsOK {
			continue // the unknown-class diagnostic already covers this
		}
		up := ucls.uses(cn.UsesPort)
		if up == nil {
			v.errf(cn.Pos, "component %q (%s) has no uses port %q", cn.User, uc.Class, cn.UsesPort)
		}
		pp := pcls.provides(cn.ProvidesPort)
		if pp == nil {
			v.errf(cn.ProviderPos, "component %q (%s) does not provide port %q", cn.Provider, pc.Class, cn.ProvidesPort)
		}
		if up == nil || pp == nil {
			continue
		}
		if up.Type != pp.Type {
			v.errf(cn.Pos, "port type mismatch: %s.%s uses %s but %s.%s provides %s",
				cn.User, cn.UsesPort, up.Type, cn.Provider, cn.ProvidesPort, pp.Type)
			continue
		}
		key := cn.User + "." + cn.UsesPort
		if prev, dup := usedPorts[key]; dup {
			v.errf(cn.Pos, "uses port %s.%s already connected (at %s)", cn.User, cn.UsesPort, prev)
			continue
		}
		usedPorts[key] = cn.Pos
		c.Conns = append(c.Conns, CompiledConnection{
			User: cn.User, UsesPort: cn.UsesPort,
			Provider: cn.Provider, ProvidesPort: cn.ProvidesPort,
		})
	}

	// Required uses ports must all be wired — this is the "fail at parse
	// time, not at step 500" guarantee: a missing required port would
	// otherwise panic inside the driver loop.
	for _, comp := range f.Comps {
		cls, ok := classes[comp.Class]
		if !ok || byInst[comp.Instance] != comp {
			continue
		}
		for _, up := range cls.Uses {
			if !up.Required {
				continue
			}
			if _, wired := usedPorts[comp.Instance+"."+up.Name]; !wired {
				v.errf(comp.Pos, "component %q (%s): required uses port %q (%s) is not connected",
					comp.Instance, comp.Class, up.Name, up.Type)
			}
		}
	}

	// Run target: present, known, and a go-port provider.
	if f.Run == nil {
		v.errf(start, "scenario has no run statement")
	} else {
		c.Run = f.Run.Instance
		rc, ok := byInst[f.Run.Instance]
		if !ok {
			v.errf(f.Run.Pos, "run references unknown instance %q", f.Run.Instance)
		} else if cls, clsOK := classes[rc.Class]; clsOK {
			c.RunClass = rc.Class
			if !cls.HasGo() {
				v.errf(f.Run.Pos, "run target %q (%s) does not provide a go port", f.Run.Instance, rc.Class)
			}
		}
	}

	// Sweep axes: each substitution must itself validate, and the
	// cartesian product must stay bounded.
	if f.Sweep != nil {
		points := 1
		for _, ax := range f.Sweep.Axes {
			points *= len(ax.Values)
			if points > maxSweepPoints {
				v.errf(f.Sweep.Pos, "sweep expands to more than %d points", maxSweepPoints)
				points = 1
				break
			}
		}
		for _, ax := range f.Sweep.Axes {
			v.checkAxis(ax, byInst, usedPorts)
			c.Sweep = append(c.Sweep, CompiledAxis{
				Kind: ax.Kind, Instance: ax.Instance, Key: ax.Key, Values: valueTexts(ax.Values),
			})
		}
	}
	return c
}

func valueTexts(vals []Value) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.Text
	}
	return out
}

// checkParam validates one parameter value against its schema.
func (v *validator) checkParam(pos Pos, inst string, cls *ClassSchema, clsName, key, val string) {
	ps, ok := cls.Params[key]
	if !ok {
		v.errf(pos, "component %q (%s) has no parameter %q", inst, clsName, key)
		return
	}
	ref := inst + "." + key
	switch ps.Kind {
	case KindInt:
		n, err := strconv.Atoi(val)
		if err != nil {
			v.errf(pos, "parameter %s: cannot parse %q as int", ref, val)
			return
		}
		if float64(n) < ps.Min || float64(n) > ps.Max {
			v.errf(pos, "parameter %s: value %d out of range [%s, %s]", ref, n, formatBound(ps.Min), formatBound(ps.Max))
		}
	case KindFloat:
		x, err := strconv.ParseFloat(val, 64)
		if err != nil {
			v.errf(pos, "parameter %s: cannot parse %q as float", ref, val)
			return
		}
		if x < ps.Min || x > ps.Max {
			v.errf(pos, "parameter %s: value %v out of range [%s, %s]", ref, x, formatBound(ps.Min), formatBound(ps.Max))
		}
	case KindBool:
		if _, err := strconv.ParseBool(val); err != nil {
			v.errf(pos, "parameter %s: cannot parse %q as bool", ref, val)
		}
	case KindEnum:
		for _, e := range ps.Enum {
			if val == e {
				return
			}
		}
		v.errf(pos, "parameter %s: invalid value %q (want one of %s)", ref, val, strings.Join(ps.Enum, ", "))
	}
}

// formatBound renders a range bound without trailing zeros.
func formatBound(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// checkAxis validates one sweep axis: the base scenario already passed,
// so only the substitutions can break a point — check each directly.
func (v *validator) checkAxis(ax *SweepAxis, byInst map[string]*ComponentStmt, usedPorts map[string]Pos) {
	comp, ok := byInst[ax.Instance]
	if !ok {
		v.errf(ax.Pos, "sweep references unknown instance %q", ax.Instance)
		return
	}
	cls, clsOK := classes[comp.Class]
	if !clsOK {
		return
	}
	if ax.Kind == "param" {
		for _, val := range ax.Values {
			v.checkParam(val.Pos, ax.Instance, cls, comp.Class, ax.Key, val.Text)
		}
		return
	}
	// Class axis: every substituted class must be connection-compatible
	// with the instance's wiring — same-named ports with identical
	// types on both the uses and provides sides, required ports still
	// satisfied, and every knob set on the instance still legal.
	for _, val := range ax.Values {
		sub, known := classes[val.Text]
		if !known {
			v.errf(val.Pos, "sweep class axis %q: unknown component class %q", ax.Instance, val.Text)
			continue
		}
		for _, cn := range v.file.Conns {
			if cn.User == ax.Instance {
				up := sub.uses(cn.UsesPort)
				if up == nil {
					v.errf(val.Pos, "sweep class %q for %q has no uses port %q (wired at %s)", val.Text, ax.Instance, cn.UsesPort, cn.Pos)
				} else if orig := cls.uses(cn.UsesPort); orig != nil && up.Type != orig.Type {
					v.errf(val.Pos, "sweep class %q for %q: uses port %q is %s, not %s", val.Text, ax.Instance, cn.UsesPort, up.Type, orig.Type)
				}
			}
			if cn.Provider == ax.Instance {
				pp := sub.provides(cn.ProvidesPort)
				if pp == nil {
					v.errf(val.Pos, "sweep class %q for %q does not provide port %q (wired at %s)", val.Text, ax.Instance, cn.ProvidesPort, cn.Pos)
				} else if orig := cls.provides(cn.ProvidesPort); orig != nil && pp.Type != orig.Type {
					v.errf(val.Pos, "sweep class %q for %q: provides port %q is %s, not %s", val.Text, ax.Instance, cn.ProvidesPort, pp.Type, orig.Type)
				}
			}
		}
		for _, up := range sub.Uses {
			if !up.Required {
				continue
			}
			if _, wired := usedPorts[ax.Instance+"."+up.Name]; !wired {
				v.errf(val.Pos, "sweep class %q for %q: required uses port %q (%s) is not connected", val.Text, ax.Instance, up.Name, up.Type)
			}
		}
		for _, set := range comp.Params {
			v.checkParam(val.Pos, ax.Instance, sub, val.Text, set.Key, set.Value.Text)
		}
	}
}
