package scenario_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/core"
	"ccahydro/internal/mpi"
	"ccahydro/internal/scenario"
)

func loadScenario(t *testing.T, name string) *scenario.Compiled {
	t.Helper()
	path := filepath.FromSlash("../../scenarios/" + name + ".scn")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := scenario.Compile(path, src)
	if err != nil {
		t.Fatalf("%s does not validate:\n%v", path, err)
	}
	return c
}

// buildAndGo assembles a compiled scenario onto a fresh framework and
// fires its go port — the run server's execution path in miniature.
func buildAndGo(t *testing.T, c *scenario.Compiled, comm *mpi.Comm, overrides ...scenario.Param) *cca.Framework {
	t.Helper()
	f := cca.NewFramework(core.Repo(), comm)
	if err := c.Build(f, overrides...); err != nil {
		t.Fatal(err)
	}
	if err := f.Go(c.RunInstance(), "go"); err != nil {
		t.Fatal(err)
	}
	return f
}

// snapshotField flattens every interior cell of every level of a named
// field into one deterministic vector (same scheme as the core package's
// checkpoint-comparison tests).
func snapshotField(t *testing.T, f *cca.Framework, fieldName string) []float64 {
	t.Helper()
	comp, err := f.Lookup("grace")
	if err != nil {
		t.Fatal(err)
	}
	gc := comp.(*components.GrACEComponent)
	d := gc.Field(fieldName)
	if d == nil {
		t.Fatalf("field %q not declared", fieldName)
	}
	h := gc.Hierarchy()
	var out []float64
	for l := 0; l < h.NumLevels(); l++ {
		for _, pd := range d.LocalPatches(l) {
			b := pd.Interior()
			for c := 0; c < d.NComp; c++ {
				for j := b.Lo[1]; j <= b.Hi[1]; j++ {
					for i := b.Lo[0]; i <= b.Hi[0]; i++ {
						out = append(out, pd.At(c, i, j))
					}
				}
			}
		}
	}
	return out
}

func statsSeries(t *testing.T, f *cca.Framework, key string) []float64 {
	t.Helper()
	comp, err := f.Lookup("stats")
	if err != nil {
		t.Fatal(err)
	}
	return comp.(*components.StatisticsComponent).Get(key)
}

// sameF64 demands bit-for-bit equality — the equivalence claim is that a
// scenario file IS the hard-coded assembly, not an approximation of it.
func sameF64(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: lengths differ: %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: %v != %v", label, i, got[i], want[i])
		}
	}
}

// TestGoldenIgnitionScenario: the ignition0d scenario reproduces the
// hard-coded Table 1 assembly bit for bit.
func TestGoldenIgnitionScenario(t *testing.T) {
	overrides := []scenario.Param{
		{Instance: "driver", Key: "tEnd", Value: "2e-5"},
		{Instance: "driver", Key: "nOut", Value: "4"},
	}
	ref, err := core.RunIgnition0D(
		core.Param{Instance: "driver", Key: "tEnd", Value: "2e-5"},
		core.Param{Instance: "driver", Key: "nOut", Value: "4"})
	if err != nil {
		t.Fatal(err)
	}

	f := buildAndGo(t, loadScenario(t, "ignition0d"), nil, overrides...)
	comp, err := f.Lookup("driver")
	if err != nil {
		t.Fatal(err)
	}
	dr := comp.(*components.IgnitionDriver)

	sameF64(t, "Times", dr.Times, ref.Times)
	sameF64(t, "Temps", dr.Temps, ref.Temps)
	sameF64(t, "Pressures", dr.Pressures, ref.Pressures)
	sameF64(t, "FinalY", dr.FinalY, ref.FinalY)
	if dr.IgnitionDelay != ref.IgnitionDelay {
		t.Fatalf("IgnitionDelay: %v != %v", dr.IgnitionDelay, ref.IgnitionDelay)
	}
}

var flameGoldenParams = []core.Param{
	{Instance: "grace", Key: "nx", Value: "24"}, {Instance: "grace", Key: "ny", Value: "24"},
	{Instance: "grace", Key: "maxLevels", Value: "2"},
	{Instance: "driver", Key: "steps", Value: "2"}, {Instance: "driver", Key: "dt", Value: "1e-7"},
	{Instance: "driver", Key: "regridEvery", Value: "1"},
}

func asOverrides(ps []core.Param) []scenario.Param {
	out := make([]scenario.Param, len(ps))
	for i, p := range ps {
		out[i] = scenario.Param(p)
	}
	return out
}

// TestGoldenFlameScenario: the flame2d scenario reproduces the
// hard-coded Table 2 assembly bit for bit — final field, extrema, and
// the deterministic statistics series.
func TestGoldenFlameScenario(t *testing.T) {
	refDr, refF, err := core.RunReactionDiffusion(nil, flameGoldenParams...)
	if err != nil {
		t.Fatal(err)
	}
	f := buildAndGo(t, loadScenario(t, "flame2d"), nil, asOverrides(flameGoldenParams)...)

	sameF64(t, "phi", snapshotField(t, f, "phi"), snapshotField(t, refF, "phi"))
	for _, key := range []string{"cells", "Tmax", "Tmin"} {
		sameF64(t, "series "+key, statsSeries(t, f, key), statsSeries(t, refF, key))
	}
	comp, _ := f.Lookup("driver")
	dr := comp.(*components.RDDriver)
	if dr.TMax != refDr.TMax || dr.TMin != refDr.TMin {
		t.Fatalf("extrema differ: (%v, %v) vs (%v, %v)", dr.TMax, dr.TMin, refDr.TMax, refDr.TMin)
	}
}

var shockGoldenParams = []core.Param{
	{Instance: "grace", Key: "nx", Value: "32"}, {Instance: "grace", Key: "ny", Value: "16"},
	{Instance: "grace", Key: "maxLevels", Value: "2"},
	{Instance: "driver", Key: "tEnd", Value: "0.05"}, {Instance: "driver", Key: "maxSteps", Value: "8"},
	{Instance: "driver", Key: "regridEvery", Value: "4"},
}

// TestGoldenShockScenario: the shockinterface scenario reproduces the
// hard-coded Table 3 assembly bit for bit, t/dt series included.
func TestGoldenShockScenario(t *testing.T) {
	refDr, refF, err := core.RunShockInterface(nil, "GodunovFlux", shockGoldenParams...)
	if err != nil {
		t.Fatal(err)
	}
	f := buildAndGo(t, loadScenario(t, "shockinterface"), nil, asOverrides(shockGoldenParams)...)

	sameF64(t, "U", snapshotField(t, f, "U"), snapshotField(t, refF, "U"))
	for _, key := range []string{"t", "dt", "circulation"} {
		sameF64(t, "series "+key, statsSeries(t, f, key), statsSeries(t, refF, key))
	}
	comp, _ := f.Lookup("driver")
	dr := comp.(*components.ShockDriver)
	sameF64(t, "Circulations", dr.Circulations, refDr.Circulations)
}

// runSCMDGolden executes assemble on 4 ranks and returns each rank's
// field snapshot and t/dt-style series.
func runSCMDGolden(t *testing.T, field string, keys []string,
	assemble func(f *cca.Framework) error) ([][]float64, map[string][][]float64) {
	t.Helper()
	const ranks = 4
	fields := make([][]float64, ranks)
	series := make(map[string][][]float64, len(keys))
	for _, k := range keys {
		series[k] = make([][]float64, ranks)
	}
	var mu sync.Mutex
	res := cca.RunSCMDOn(mpi.NewWorld(ranks, mpi.CPlantModel), core.Repo(),
		func(f *cca.Framework, comm *mpi.Comm) error {
			if err := assemble(f); err != nil {
				return err
			}
			if err := f.Go("driver", "go"); err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			fields[comm.Rank()] = snapshotField(t, f, field)
			for _, k := range keys {
				series[k][comm.Rank()] = statsSeries(t, f, k)
			}
			return nil
		})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return fields, series
}

// TestGoldenFlameScenario4Rank repeats the flame equivalence on 4 SCMD
// ranks: every rank's local field partition and statistics series must
// match the hard-coded assembly's, bit for bit.
func TestGoldenFlameScenario4Rank(t *testing.T) {
	keys := []string{"cells", "Tmax", "Tmin"}
	refFields, refSeries := runSCMDGolden(t, "phi", keys, func(f *cca.Framework) error {
		return core.AssembleReactionDiffusion(f, flameGoldenParams...)
	})
	c := loadScenario(t, "flame2d")
	gotFields, gotSeries := runSCMDGolden(t, "phi", keys, func(f *cca.Framework) error {
		return c.Build(f, asOverrides(flameGoldenParams)...)
	})
	for r := range refFields {
		sameF64(t, "rank phi", gotFields[r], refFields[r])
		for _, k := range keys {
			sameF64(t, "rank series "+k, gotSeries[k][r], refSeries[k][r])
		}
	}
}

// TestGoldenShockScenario4Rank repeats the shock equivalence on 4 ranks.
func TestGoldenShockScenario4Rank(t *testing.T) {
	keys := []string{"t", "dt"}
	refFields, refSeries := runSCMDGolden(t, "U", keys, func(f *cca.Framework) error {
		return core.AssembleShockInterface(f, "GodunovFlux", shockGoldenParams...)
	})
	c := loadScenario(t, "shockinterface")
	gotFields, gotSeries := runSCMDGolden(t, "U", keys, func(f *cca.Framework) error {
		return c.Build(f, asOverrides(shockGoldenParams)...)
	})
	for r := range refFields {
		sameF64(t, "rank U", gotFields[r], refFields[r])
		for _, k := range keys {
			sameF64(t, "rank series "+k, gotSeries[k][r], refSeries[k][r])
		}
	}
}

// small overrides that shrink the new scenarios to smoke-test size
// without touching their physics parameters.
func shrink(pairs ...string) []scenario.Param {
	var out []scenario.Param
	for i := 0; i+2 < len(pairs); i += 3 {
		out = append(out, scenario.Param{Instance: pairs[i], Key: pairs[i+1], Value: pairs[i+2]})
	}
	return out
}

// TestKelvinHelmholtzScenarioRuns: the KH scenario is runnable end to
// end and actually advances the shear layer.
func TestKelvinHelmholtzScenarioRuns(t *testing.T) {
	f := buildAndGo(t, loadScenario(t, "kelvin_helmholtz"), nil, shrink(
		"grace", "nx", "32", "grace", "ny", "32", "driver", "maxSteps", "4")...)
	if ts := statsSeries(t, f, "t"); len(ts) == 0 {
		t.Fatal("no time series recorded")
	}
	if got, _ := f.ClassOf("ic"); got != "KelvinHelmholtzIC" {
		t.Fatalf("ic class: %s", got)
	}
}

// TestRichtmyerMeshkovScenarioRuns: the first sweep point of the RM
// scenario runs end to end.
func TestRichtmyerMeshkovScenarioRuns(t *testing.T) {
	c := loadScenario(t, "richtmyer_meshkov")
	pts := c.Expand()
	if len(pts) != 3 {
		t.Fatalf("points: %d", len(pts))
	}
	if v, _ := pts[0].Param("driver", "maxSteps"); v != "10" {
		t.Fatalf("first point maxSteps: %q", v)
	}
	f := buildAndGo(t, pts[0], nil, shrink(
		"grace", "nx", "32", "grace", "ny", "16", "driver", "maxSteps", "4")...)
	if ts := statsSeries(t, f, "t"); len(ts) == 0 {
		t.Fatal("no time series recorded")
	}
}

// TestFluxSweepScenarioPointsRun: every point of the flux-comparison
// sweep runs end to end with its own flux component in the slot.
func TestFluxSweepScenarioPointsRun(t *testing.T) {
	c := loadScenario(t, "flux_sweep")
	for _, p := range c.Expand() {
		f := buildAndGo(t, p, nil, shrink(
			"grace", "nx", "24", "grace", "ny", "24", "driver", "maxSteps", "3")...)
		if got, _ := f.ClassOf("flux"); got != p.ClassOf("flux") {
			t.Fatalf("flux class: %s, want %s", got, p.ClassOf("flux"))
		}
		if ts := statsSeries(t, f, "t"); len(ts) == 0 {
			t.Fatalf("%s: no time series", p.ClassOf("flux"))
		}
	}
}

// TestIgnitionBatchScenarioRuns: two mechanism points of the ignition
// batch run end to end and disagree on the trajectory (different
// chemistry must actually reach the solver).
func TestIgnitionBatchScenarioRuns(t *testing.T) {
	c := loadScenario(t, "ignition_batch")
	pts := c.Expand()
	if len(pts) != 6 {
		t.Fatalf("points: %d", len(pts))
	}
	small := shrink("driver", "tEnd", "2e-5", "driver", "nOut", "3")
	temps := make([][]float64, 2)
	for i, p := range []*scenario.Compiled{pts[0], pts[2]} {
		f := buildAndGo(t, p, nil, small...)
		comp, err := f.Lookup("driver")
		if err != nil {
			t.Fatal(err)
		}
		temps[i] = comp.(*components.IgnitionDriver).Temps
		if len(temps[i]) == 0 {
			t.Fatalf("point %d recorded no temperatures", i)
		}
	}
	if m0, _ := pts[0].Param("chem", "mech"); m0 != "h2air" {
		t.Fatalf("point 0 mech: %q", m0)
	}
	if m2, _ := pts[2].Param("chem", "mech"); m2 != "h2air-lite" {
		t.Fatalf("point 2 mech: %q", m2)
	}
	same := len(temps[0]) == len(temps[1])
	if same {
		for i := range temps[0] {
			if temps[0][i] != temps[1][i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("h2air and h2air-lite produced identical trajectories")
	}
}
