package scenario

import (
	"fmt"
	"strings"
)

// Parse reads a scenario file into its AST, checking syntax only.
// Semantic validation (classes, ports, ranges) happens in Compile. The
// returned error, when non-nil, is a DiagList whose entries all carry
// positions.
func Parse(path string, src []byte) (*File, error) {
	p := &parser{lx: newLexer(path, src), file: &File{Path: path}}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.file, nil
}

type parser struct {
	lx   *lexer
	file *File
	tok  token
}

func (p *parser) fail(pos Pos, format string, args ...any) error {
	return DiagList{{Pos: pos, Msg: fmt.Sprintf(format, args...)}}
}

func (p *parser) advance() error {
	t, d := p.lx.next()
	if d != nil {
		return DiagList{*d}
	}
	p.tok = t
	return nil
}

// expect consumes the current token if it has the wanted kind.
func (p *parser) expect(kind tokKind, what string) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.fail(p.tok.pos, "expected %s %s, got %s", kind, what, p.describe())
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) describe() string {
	if p.tok.kind == tWord || p.tok.kind == tString {
		return fmt.Sprintf("%q", p.tok.text)
	}
	return p.tok.kind.String()
}

// isIdent reports whether s is a plain identifier (instance, class, or
// parameter name): a letter or underscore followed by letters, digits,
// or underscores.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ident consumes a word token and insists it is an identifier.
func (p *parser) ident(what string) (string, Pos, error) {
	t, err := p.expect(tWord, what)
	if err != nil {
		return "", Pos{}, err
	}
	if !isIdent(t.text) {
		return "", t.pos, p.fail(t.pos, "invalid %s %q (want an identifier)", what, t.text)
	}
	return t.text, t.pos, nil
}

// ref consumes an instance.port (or instance.param) reference.
func (p *parser) ref(what string) (inst, member string, pos Pos, err error) {
	t, err := p.expect(tWord, what)
	if err != nil {
		return "", "", Pos{}, err
	}
	i := strings.IndexByte(t.text, '.')
	if i < 0 || strings.IndexByte(t.text[i+1:], '.') >= 0 {
		return "", "", t.pos, p.fail(t.pos, "invalid %s %q (want instance.name)", what, t.text)
	}
	inst, member = t.text[:i], t.text[i+1:]
	if !isIdent(inst) || !isIdent(member) {
		return "", "", t.pos, p.fail(t.pos, "invalid %s %q (want instance.name)", what, t.text)
	}
	return inst, member, t.pos, nil
}

// value consumes a bare word or quoted string.
func (p *parser) value(what string) (Value, error) {
	switch p.tok.kind {
	case tWord:
		v := Value{Pos: p.tok.pos, Text: p.tok.text}
		return v, p.advance()
	case tString:
		v := Value{Pos: p.tok.pos, Text: p.tok.text, Quoted: true}
		return v, p.advance()
	}
	return Value{}, p.fail(p.tok.pos, "expected %s, got %s", what, p.describe())
}

func (p *parser) run() error {
	if err := p.advance(); err != nil {
		return err
	}
	for p.tok.kind != tEOF {
		t, err := p.expect(tWord, "statement")
		if err != nil {
			return err
		}
		switch t.text {
		case "scenario":
			if p.file.Name != "" {
				return p.fail(t.pos, "duplicate scenario declaration (first at %s)", p.file.NamePos)
			}
			name, pos, err := p.ident("scenario name")
			if err != nil {
				return err
			}
			p.file.Name, p.file.NamePos = name, pos
		case "component":
			if err := p.component(t.pos); err != nil {
				return err
			}
		case "connect":
			if err := p.connect(t.pos); err != nil {
				return err
			}
		case "run":
			if p.file.Run != nil {
				return p.fail(t.pos, "duplicate run statement (first at %s)", p.file.Run.Pos)
			}
			inst, _, err := p.ident("run instance")
			if err != nil {
				return err
			}
			p.file.Run = &RunStmt{Pos: t.pos, Instance: inst}
		case "sweep":
			if p.file.Sweep != nil {
				return p.fail(t.pos, "duplicate sweep block (first at %s)", p.file.Sweep.Pos)
			}
			if err := p.sweep(t.pos); err != nil {
				return err
			}
		default:
			return p.fail(t.pos, "unknown statement %q (want scenario, component, connect, run, or sweep)", t.text)
		}
	}
	return nil
}

func (p *parser) component(pos Pos) error {
	inst, _, err := p.ident("instance name")
	if err != nil {
		return err
	}
	class, classPos, err := p.ident("component class")
	if err != nil {
		return err
	}
	c := &ComponentStmt{Pos: pos, Instance: inst, Class: class, ClassPos: classPos}
	if p.tok.kind == tLBrace {
		if err := p.advance(); err != nil {
			return err
		}
		for p.tok.kind != tRBrace {
			key, keyPos, err := p.ident("parameter name")
			if err != nil {
				return err
			}
			if _, err := p.expect(tEq, "after parameter name"); err != nil {
				return err
			}
			v, err := p.value("parameter value")
			if err != nil {
				return err
			}
			c.Params = append(c.Params, &Setting{Pos: keyPos, Key: key, Value: v})
		}
		if err := p.advance(); err != nil { // consume '}'
			return err
		}
	}
	p.file.Comps = append(p.file.Comps, c)
	return nil
}

func (p *parser) connect(pos Pos) error {
	user, uses, _, err := p.ref("uses-port reference")
	if err != nil {
		return err
	}
	if _, err := p.expect(tArrow, "between ports"); err != nil {
		return err
	}
	provider, provides, ppos, err := p.ref("provides-port reference")
	if err != nil {
		return err
	}
	p.file.Conns = append(p.file.Conns, &ConnectStmt{
		Pos: pos, User: user, UsesPort: uses,
		Provider: provider, ProvidesPort: provides, ProviderPos: ppos,
	})
	return nil
}

func (p *parser) sweep(pos Pos) error {
	sw := &SweepStmt{Pos: pos}
	if _, err := p.expect(tLBrace, "to open the sweep block"); err != nil {
		return err
	}
	for p.tok.kind != tRBrace {
		t, err := p.expect(tWord, "sweep axis (param or class)")
		if err != nil {
			return err
		}
		ax := &SweepAxis{Pos: t.pos, Kind: t.text}
		switch t.text {
		case "param":
			inst, key, _, err := p.ref("sweep parameter reference")
			if err != nil {
				return err
			}
			ax.Instance, ax.Key = inst, key
		case "class":
			inst, _, err := p.ident("sweep instance")
			if err != nil {
				return err
			}
			ax.Instance = inst
		default:
			return p.fail(t.pos, "unknown sweep axis kind %q (want param or class)", t.text)
		}
		if _, err := p.expect(tEq, "after sweep axis"); err != nil {
			return err
		}
		if _, err := p.expect(tLBracket, "to open the value list"); err != nil {
			return err
		}
		for p.tok.kind != tRBracket {
			v, err := p.value("sweep value")
			if err != nil {
				return err
			}
			ax.Values = append(ax.Values, v)
			if p.tok.kind == tComma {
				if err := p.advance(); err != nil {
					return err
				}
			} else if p.tok.kind != tRBracket {
				return p.fail(p.tok.pos, "expected ',' or ']' in sweep value list, got %s", p.describe())
			}
		}
		if err := p.advance(); err != nil { // consume ']'
			return err
		}
		if len(ax.Values) == 0 {
			return p.fail(ax.Pos, "sweep axis has an empty value list")
		}
		sw.Axes = append(sw.Axes, ax)
	}
	if err := p.advance(); err != nil { // consume '}'
		return err
	}
	if len(sw.Axes) == 0 {
		return p.fail(pos, "sweep block has no axes")
	}
	p.file.Sweep = sw
	return nil
}
