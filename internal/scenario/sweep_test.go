package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSweepExpansion: cartesian product in declaration order with the
// last axis varying fastest, param and class axes composing.
func TestSweepExpansion(t *testing.T) {
	src := miniScenario + `sweep {
    param chem.mech = [h2air, h2air-lite]
    param init.T0 = [1000, 1200, 1400]
}
`
	c, err := Compile("s.scn", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.SweepPoints() != 6 {
		t.Fatalf("points = %d", c.SweepPoints())
	}
	pts := c.Expand()
	if len(pts) != 6 {
		t.Fatalf("expanded %d points", len(pts))
	}
	var order []string
	for _, p := range pts {
		mech, _ := p.Param("chem", "mech")
		T0, _ := p.Param("init", "T0")
		order = append(order, mech+"/"+T0)
		if p.HasSweep() {
			t.Fatal("expanded point still declares a sweep")
		}
	}
	want := "h2air/1000 h2air/1200 h2air/1400 h2air-lite/1000 h2air-lite/1200 h2air-lite/1400"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("expansion order:\n got  %s\n want %s", got, want)
	}
}

// TestSweepClassAxis: a class axis swaps the component class in its
// slot, each point hashes to distinct canonical lines, and each point
// renders to valid re-compilable source declaring the substituted
// class. Uses the shipped flux-comparison scenario, whose three flux
// schemes are genuinely port-compatible.
func TestSweepClassAxis(t *testing.T) {
	src, err := os.ReadFile(filepath.FromSlash("../../scenarios/flux_sweep.scn"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile("flux_sweep.scn", src)
	if err != nil {
		t.Fatal(err)
	}
	pts := c.Expand()
	if len(pts) != 3 {
		t.Fatalf("expanded %d points", len(pts))
	}
	wantClasses := []string{"GodunovFlux", "EFMFlux", "HLLCFlux"}
	lines := map[string]bool{}
	for i, p := range pts {
		if got := p.ClassOf("flux"); got != wantClasses[i] {
			t.Fatalf("point %d class: %s, want %s", i, got, wantClasses[i])
		}
		// Each class swap must change the content address.
		lines[strings.Join(p.CanonicalLines(), "\n")] = true
		p2, err := Compile("point.scn", []byte(p.Render()))
		if err != nil {
			t.Fatalf("point %d renders to rejected source: %v", i, err)
		}
		if p2.ClassOf("flux") != wantClasses[i] {
			t.Fatalf("point %d render dropped the class swap", i)
		}
	}
	if len(lines) != 3 {
		t.Fatalf("class swaps collided: %d distinct canonical forms", len(lines))
	}
}

// TestSweepCloneIndependence: mutating one expanded point must not leak
// into its siblings or the parent — the server submits points as
// independent jobs and bakes per-point duration defaults.
func TestSweepCloneIndependence(t *testing.T) {
	src := miniScenario + `sweep {
    param init.T0 = [1000, 1200]
}
`
	c, err := Compile("s.scn", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	pts := c.Expand()
	pts[0].SetParam("driver", "tEnd", "9e-1")
	pts[0].SetParam("init", "P0", "5")
	if v, _ := pts[1].Param("driver", "tEnd"); v != "1e-4" {
		t.Fatalf("sibling saw the mutation: tEnd = %q", v)
	}
	if _, ok := pts[1].Param("init", "P0"); ok {
		t.Fatal("sibling saw a parameter it never set")
	}
	if v, _ := c.Param("driver", "tEnd"); v != "1e-4" {
		t.Fatalf("parent saw the mutation: tEnd = %q", v)
	}
	if v, _ := pts[1].Param("init", "T0"); v != "1200" {
		t.Fatalf("point 1 lost its axis value: T0 = %q", v)
	}
}
