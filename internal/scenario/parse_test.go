package scenario

import (
	"strings"
	"testing"
)

const miniScenario = `# comment
scenario mini
component chem   ThermoChemistry { mech = h2air }
component dpdt   DPDt
component model  ProblemModeler
component init   Initializer { T0 = 1100 }
component cvode  CvodeComponent
component stats  StatisticsComponent
component driver IgnitionDriver { tEnd = 1e-4  nOut = 5 }
connect dpdt.chemistry   -> chem.chemistry
connect model.chemistry  -> chem.chemistry
connect model.dpdt       -> dpdt.dpdt
connect init.chemistry   -> chem.chemistry
connect cvode.rhs        -> model.rhs
connect driver.ic         -> init.ic
connect driver.integrator -> cvode.integrator
connect driver.chemistry  -> chem.chemistry
connect driver.stats      -> stats.stats
run driver
`

func TestParseStructure(t *testing.T) {
	f, err := Parse("mini.scn", []byte(miniScenario))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "mini" {
		t.Fatalf("name = %q", f.Name)
	}
	if len(f.Comps) != 7 || len(f.Conns) != 9 {
		t.Fatalf("got %d comps, %d conns", len(f.Comps), len(f.Conns))
	}
	if f.Comps[0].Instance != "chem" || f.Comps[0].Class != "ThermoChemistry" {
		t.Fatalf("first component: %+v", f.Comps[0])
	}
	if f.Comps[6].Params[0].Key != "tEnd" || f.Comps[6].Params[0].Value.Text != "1e-4" {
		t.Fatalf("driver params: %+v", f.Comps[6].Params[0])
	}
	cn := f.Conns[0]
	if cn.User != "dpdt" || cn.UsesPort != "chemistry" || cn.Provider != "chem" || cn.ProvidesPort != "chemistry" {
		t.Fatalf("first connection: %+v", cn)
	}
	if f.Run == nil || f.Run.Instance != "driver" {
		t.Fatalf("run: %+v", f.Run)
	}
	// Positions are 1-based file:line:col; the scenario keyword is on
	// line 2 of the source above.
	if f.NamePos.Line != 2 {
		t.Fatalf("scenario name position: %s", f.NamePos)
	}
}

func TestParseQuotedValues(t *testing.T) {
	src := `scenario q
component driver IgnitionDriver { tEnd = "1e-4" }
run driver
`
	f, err := Parse("q.scn", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	v := f.Comps[0].Params[0].Value
	if v.Text != "1e-4" || !v.Quoted {
		t.Fatalf("quoted value: %+v", v)
	}
}

func TestParseSweepBlock(t *testing.T) {
	src := `scenario s
component driver IgnitionDriver
run driver
sweep {
    param driver.tEnd = [1e-4, 2e-4]
    class driver = [IgnitionDriver]
}
`
	f, err := Parse("s.scn", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Sweep.Axes) != 2 {
		t.Fatalf("axes: %d", len(f.Sweep.Axes))
	}
	ax := f.Sweep.Axes[0]
	if ax.Kind != "param" || ax.Instance != "driver" || ax.Key != "tEnd" || len(ax.Values) != 2 {
		t.Fatalf("param axis: %+v", ax)
	}
	if f.Sweep.Axes[1].Kind != "class" || f.Sweep.Axes[1].Instance != "driver" {
		t.Fatalf("class axis: %+v", f.Sweep.Axes[1])
	}
}

// TestParseSyntaxErrors: every syntax rejection carries a position.
func TestParseSyntaxErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"scenario", "expected word scenario name, got end of file"},
		{"scenario x\nbogus y", `unknown statement "bogus"`},
		{"scenario x\ncomponent a", "expected word component class, got end of file"},
		{"scenario x\ncomponent a B { k }", "expected '=' after parameter name"},
		{"scenario x\nconnect a.b c.d", "expected '->' between ports"},
		{"scenario x\nconnect ab -> c.d", `invalid uses-port reference "ab"`},
		{"scenario x\nconnect a.b.c -> c.d", `invalid uses-port reference "a.b.c"`},
		{"scenario x\nscenario y", "duplicate scenario declaration"},
		{"scenario x\nrun a\nrun b", "duplicate run statement"},
		{"scenario x\nsweep { }\nsweep { }", "sweep block has no axes"},
		{"scenario x\nsweep { param a.b = [] }", "sweep axis has an empty value list"},
		{"scenario x\nsweep { size a = [1] }", `unknown sweep axis kind "size"`},
		{"scenario x\ncomponent a B { k = \"unterminated", "unterminated string"},
		{"scenario x\ncomponent a B { k = @ }", "unexpected character"},
	}
	for _, tc := range cases {
		_, err := Parse("t.scn", []byte(tc.src))
		if err == nil {
			t.Errorf("%q: no error", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q:\n got %v\nwant substring %q", tc.src, err, tc.want)
		}
		for _, d := range Diags(err) {
			if d.Pos.Line == 0 {
				t.Errorf("%q: diagnostic without a position: %v", tc.src, d)
			}
		}
	}
}

// TestRenderRoundTrip: Render emits source that re-compiles to an
// assembly with identical canonical lines.
func TestRenderRoundTrip(t *testing.T) {
	c, err := Compile("mini.scn", []byte(miniScenario))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compile("rendered.scn", []byte(c.Render()))
	if err != nil {
		t.Fatalf("rendered source does not compile: %v\n%s", err, c.Render())
	}
	a, b := c.CanonicalLines(), c2.CanonicalLines()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("canonical lines changed across render round trip:\n%v\nvs\n%v", a, b)
	}
}

// TestScriptLowering: the Ccaffeine-script form fires parameters before
// instantiation and ends with the go command.
func TestScriptLowering(t *testing.T) {
	c, err := Compile("mini.scn", []byte(miniScenario))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Script()
	seenInstantiate := false
	for _, cmd := range s.Commands {
		switch cmd.Verb {
		case "parameter":
			if seenInstantiate {
				t.Fatal("parameter command after instantiate: pending params would be lost")
			}
		case "instantiate":
			seenInstantiate = true
		}
	}
	last := s.Commands[len(s.Commands)-1]
	if last.Verb != "go" || last.Args[0] != "driver" {
		t.Fatalf("last command: %+v", last)
	}
}

// TestCanonicalLinesNameInsensitive: the scenario name is not part of
// the content address; parameter order is.
func TestCanonicalLinesNameInsensitive(t *testing.T) {
	renamed := strings.Replace(miniScenario, "scenario mini", "scenario other", 1)
	a, err := Compile("a.scn", []byte(miniScenario))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile("b.scn", []byte(renamed))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(a.CanonicalLines(), "\n") != strings.Join(b.CanonicalLines(), "\n") {
		t.Fatal("renaming the scenario changed its canonical lines")
	}
	reordered := strings.Replace(miniScenario, "{ tEnd = 1e-4  nOut = 5 }", "{ nOut = 5  tEnd = 1e-4 }", 1)
	c, err := Compile("c.scn", []byte(reordered))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(a.CanonicalLines(), "\n") != strings.Join(c.CanonicalLines(), "\n") {
		t.Fatal("parameter order changed the canonical lines")
	}
}
