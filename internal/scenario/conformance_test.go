package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
)

// portSet renders a port list as sorted "name type" strings for
// comparison regardless of declaration order.
func portSet(ports []PortSchema) []string {
	out := make([]string, len(ports))
	for i, p := range ports {
		out[i] = p.Name + " " + p.Type
	}
	sort.Strings(out)
	return out
}

func livePortSet(pairs [][2]string) []string {
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = p[0] + " " + p[1]
	}
	sort.Strings(out)
	return out
}

func diffSets(t *testing.T, label string, got, want []string) {
	t.Helper()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("%s:\n schema: %v\n live:   %v", label, want, got)
	}
}

// TestSchemaConformance pins the static schema against the living
// component registry: every registered class has a schema entry, every
// schema entry names a registered class, and for each class the uses
// and provides port lists (names AND exact type strings) match what the
// component registers in SetServices. A drifting schema would let the
// validator accept scenarios the framework rejects, or vice versa.
func TestSchemaConformance(t *testing.T) {
	repo := components.NewRepository()
	live := repo.Classes()
	if fmt.Sprint(Classes()) != fmt.Sprint(live) {
		t.Fatalf("class palettes differ:\n schema: %v\n live:   %v", Classes(), live)
	}
	for _, class := range live {
		cls, _ := ClassInfo(class)
		f := cca.NewFramework(repo, nil)
		if err := f.Instantiate(class, "x"); err != nil {
			t.Fatalf("instantiate %s: %v", class, err)
		}
		uses, err := f.UsesPorts("x")
		if err != nil {
			t.Fatal(err)
		}
		provides, err := f.ProvidedPorts("x")
		if err != nil {
			t.Fatal(err)
		}
		diffSets(t, class+" uses ports", livePortSet(uses), portSet(cls.Uses))
		diffSets(t, class+" provides ports", livePortSet(provides), portSet(cls.Provides))
		// Run-server metadata exists exactly for go-port providers.
		hasGo := false
		for _, p := range provides {
			if p[1] == cca.GoPortType {
				hasGo = true
			}
		}
		if hasGo != (cls.Driver != nil) {
			t.Errorf("%s: go port %v but driver schema %v", class, hasGo, cls.Driver)
		}
		if hasGo != cls.HasGo() {
			t.Errorf("%s: HasGo() = %v, live go port = %v", class, cls.HasGo(), hasGo)
		}
	}
}

// TestScenarioLibraryCompiles parse-validates every shipped scenario —
// the conformance gate for the scenarios/ library itself.
func TestScenarioLibraryCompiles(t *testing.T) {
	paths, err := filepath.Glob(filepath.FromSlash("../../scenarios/*.scn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 7 {
		t.Fatalf("expected the full scenario library, found %d files", len(paths))
	}
	wantPoints := map[string]int{
		"ignition0d":        1,
		"flame2d":           1,
		"shockinterface":    1,
		"kelvin_helmholtz":  1,
		"richtmyer_meshkov": 3,
		"flux_sweep":        3,
		"ignition_batch":    6,
	}
	seen := map[string]bool{}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(p, src)
		if err != nil {
			t.Errorf("%s does not validate:\n%v", p, err)
			continue
		}
		seen[c.Name] = true
		if want, ok := wantPoints[c.Name]; ok && c.SweepPoints() != want {
			t.Errorf("%s: %d sweep points, want %d", c.Name, c.SweepPoints(), want)
		}
	}
	for name := range wantPoints {
		if !seen[name] {
			t.Errorf("scenario %q missing from the library", name)
		}
	}
}
