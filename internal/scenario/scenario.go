// Package scenario is the declarative configuration language over the
// component assembly machinery — the Cactus-CCL-style answer to "every
// new simulation is a code change". A scenario file names a set of
// component instances (class + solver knobs), wires their ports,
// selects the driver to run, and optionally declares a parameter sweep
// that expands one spec into a job array.
//
// The front end validates everything a run could trip over *before*
// anything is instantiated: unknown component classes, unknown or
// mistyped parameters, out-of-range knobs, connections between ports
// whose types disagree, dangling required uses ports, and run targets
// with no go port are all rejected at parse time, each diagnostic
// carrying a file:line:col position. The schema the validator checks
// against is pinned to reality by a conformance test that instantiates
// every registered class and compares the declared port lists with the
// ones the components actually register.
//
// Grammar (newline-insensitive, '#' comments to end of line):
//
//	scenario NAME
//	component INSTANCE CLASS [ { KEY = VALUE ... } ]
//	connect USER.USESPORT -> PROVIDER.PROVIDESPORT
//	run INSTANCE
//	sweep {
//	    param INSTANCE.KEY = [ VALUE, VALUE, ... ]
//	    class INSTANCE     = [ CLASS, CLASS, ... ]
//	}
//
// Values are bare words (numbers, identifiers such as h2air-lite) or
// double-quoted strings. Port wiring may be cyclic — the flame's
// CVODE/implicit-integrator pair is mutually connected by design — so
// cycles are legal, not an error. A validated scenario compiles to a
// Compiled assembly that builds onto a cca.Framework through exactly
// the Instantiate/SetParameter/Connect path the hard-coded assemblies
// use, which is why the scenario library reproduces them bit for bit.
package scenario

import (
	"fmt"
	"strings"
)

// Pos is a source position within a scenario file.
type Pos struct {
	File string
	Line int // 1-based
	Col  int // 1-based, in bytes
}

func (p Pos) String() string { return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col) }

// Diag is one diagnostic: a position and a message. Every rejection the
// package produces is a Diag — there is no positionless error path.
type Diag struct {
	Pos Pos
	Msg string
}

// Error implements error as "file:line:col: message".
func (d Diag) Error() string { return d.Pos.String() + ": " + d.Msg }

// DiagList is the error type returned by Parse and Compile: all
// diagnostics found, in source order.
type DiagList []Diag

// Error joins the diagnostics, one per line.
func (l DiagList) Error() string {
	msgs := make([]string, len(l))
	for i, d := range l {
		msgs[i] = d.Error()
	}
	return strings.Join(msgs, "\n")
}

// Diags unwraps an error produced by this package into its diagnostic
// list (nil for foreign errors).
func Diags(err error) []Diag {
	switch e := err.(type) {
	case DiagList:
		return e
	case Diag:
		return []Diag{e}
	}
	return nil
}

// File is the parsed (not yet validated) form of a scenario.
type File struct {
	Path    string
	Name    string
	NamePos Pos
	Comps   []*ComponentStmt
	Conns   []*ConnectStmt
	Run     *RunStmt
	Sweep   *SweepStmt
}

// ComponentStmt declares one component instance.
type ComponentStmt struct {
	Pos      Pos
	Instance string
	Class    string
	ClassPos Pos
	Params   []*Setting
}

// Setting is one KEY = VALUE entry in a component block.
type Setting struct {
	Pos   Pos
	Key   string
	Value Value
}

// Value is a scalar parameter value; Quoted distinguishes "5" from 5
// only for rendering — the component parameter store is string-typed.
type Value struct {
	Pos    Pos
	Text   string
	Quoted bool
}

// ConnectStmt wires a uses port to a provides port.
type ConnectStmt struct {
	Pos          Pos
	User         string
	UsesPort     string
	Provider     string
	ProvidesPort string
	ProviderPos  Pos
}

// RunStmt names the instance whose go port drives the simulation.
type RunStmt struct {
	Pos      Pos
	Instance string
}

// SweepStmt declares the sweep axes; the cartesian product of the axis
// value lists expands the scenario into a job array.
type SweepStmt struct {
	Pos  Pos
	Axes []*SweepAxis
}

// SweepAxis is one sweep dimension: a parameter axis (param i.k = [..])
// or a component-class axis (class i = [..]).
type SweepAxis struct {
	Pos      Pos
	Kind     string // "param" or "class"
	Instance string
	Key      string // param axes only
	Values   []Value
}
