package scenario

import (
	"strings"
	"testing"
)

// fuzzSeeds is the hand-built corpus: valid scenarios, every rejection
// class, truncations, and pathological shapes. check.sh replays these
// through the fuzz target as fixed seeds even when no fuzzing budget is
// available.
func fuzzSeeds() []string {
	seeds := []string{
		miniScenario,
		// Valid sweeps, param and class axes.
		miniScenario + "sweep {\n    param driver.tEnd = [1e-4, 2e-4]\n}\n",
		miniScenario + "sweep {\n    class cvode = [CvodeComponent]\n}\n",
		// Empty and comment-only inputs.
		"",
		"# nothing here\n",
		// Bad parameter types and ranges.
		"scenario x\ncomponent g GrACEComponent { nx = lots }\nrun g\n",
		"scenario x\ncomponent g GrACEComponent { nx = -7 }\nrun g\n",
		"scenario x\ncomponent k ThermoChemistry { mech = argon }\nrun k\n",
		// Duplicate names, both instance and parameter.
		"scenario x\ncomponent a DPDt\ncomponent a DPDt\nrun a\n",
		"scenario x\ncomponent r ErrorEstAndRegrid { buffer = 2 buffer = 3 }\nrun r\n",
		// Cyclic wiring: legal at the framework level (uses/provides
		// graphs may cycle), must not hang or crash validation.
		"scenario x\ncomponent a ProblemModeler\ncomponent b DPDt\n" +
			"connect a.dpdt -> b.dpdt\nconnect b.chemistry -> a.chemistry\nrun a\n",
		// Self-connection.
		"scenario x\ncomponent c ThermoChemistry\nconnect c.keyvalue -> c.properties\nrun c\n",
		// Unterminated string, stray bytes, deep nesting.
		"scenario x\ncomponent a B { k = \"unterminated",
		"scenario x\ncomponent a B { k = @@@ }",
		"scenario x\nsweep { param a.b = [1, 2,\n",
		"scenario \"quoted\"\n",
		strings.Repeat("sweep {\n", 50),
		// Arrow and bracket soup.
		"scenario x\nconnect -> -> ->\n",
		"scenario x\nsweep { class = [] }\n",
	}
	// Truncations of a known-good scenario at every 17th byte: the
	// parser must fail with a position, never panic, on any prefix.
	for i := 0; i < len(miniScenario); i += 17 {
		seeds = append(seeds, miniScenario[:i])
	}
	return seeds
}

// FuzzParseScenario: the front-end never panics and every rejection is
// positioned. Run with `go test -fuzz=FuzzParseScenario` for coverage-
// guided exploration; without -fuzz the seeds alone replay.
func FuzzParseScenario(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Compile("fuzz.scn", []byte(src))
		if err == nil {
			// Accepted scenarios must survive the downstream paths the
			// server and CLI exercise: canonical lines, render, script
			// lowering, sweep expansion.
			if c.Name == "" {
				t.Fatal("accepted a scenario with no name")
			}
			_ = c.CanonicalLines()
			_ = c.Script()
			if _, err := Compile("rendered.scn", []byte(c.Render())); err != nil {
				t.Fatalf("accepted scenario renders to rejected source: %v", err)
			}
			if c.HasSweep() {
				if pts := c.Expand(); len(pts) != c.SweepPoints() {
					t.Fatalf("Expand gave %d points, SweepPoints says %d", len(pts), c.SweepPoints())
				}
			}
			return
		}
		ds := Diags(err)
		if len(ds) == 0 {
			t.Fatalf("rejection is not a diagnostic list: %v", err)
		}
		for _, d := range ds {
			if d.Pos.Line == 0 {
				t.Fatalf("diagnostic without a position: %v", d)
			}
			if !strings.HasPrefix(d.Error(), "fuzz.scn:") {
				t.Fatalf("diagnostic not anchored to the source file: %v", d)
			}
		}
	})
}
