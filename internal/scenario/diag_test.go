package scenario

import (
	"fmt"
	"strings"
	"testing"
)

// TestValidationDiagnostics pins the exact diagnostic text, position
// included, for every validation error class. These strings are the
// user interface of the scenario front-end; changing one is an
// observable break and must show up here.
func TestValidationDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "missing scenario and run",
			src:  "component a StatisticsComponent\n",
			want: []string{
				"t.scn:1:1: missing scenario declaration (want: scenario NAME)",
				"t.scn:1:1: scenario has no run statement",
			},
		},
		{
			name: "unknown class",
			src:  "scenario x\ncomponent a Bogus\nrun a\n",
			want: []string{
				`t.scn:2:13: unknown component class "Bogus"`,
			},
		},
		{
			name: "duplicate instance",
			src:  "scenario x\ncomponent a StatisticsComponent\ncomponent a TauTimer\nrun a\n",
			want: []string{
				`t.scn:3:1: duplicate component instance "a" (first declared at t.scn:2:1)`,
				`t.scn:4:1: run target "a" (StatisticsComponent) does not provide a go port`,
			},
		},
		{
			name: "duplicate parameter",
			src:  "scenario x\ncomponent r ErrorEstAndRegrid { buffer = 2 buffer = 3 }\nrun r\n",
			want: []string{
				`t.scn:2:44: duplicate parameter "buffer" on component "r"`,
				`t.scn:3:1: run target "r" (ErrorEstAndRegrid) does not provide a go port`,
			},
		},
		{
			name: "connect unknown instances",
			src:  "scenario x\ncomponent s TauTimer\nconnect a.ic -> b.stats\nrun s\n",
			want: []string{
				`t.scn:3:1: connect references unknown instance "a"`,
				`t.scn:3:17: connect references unknown instance "b"`,
				`t.scn:4:1: run target "s" (TauTimer) does not provide a go port`,
			},
		},
		{
			name: "no such uses port",
			src:  "scenario x\ncomponent t TauTimer\ncomponent s StatisticsComponent\nconnect s.timing -> t.timing\nrun t\n",
			want: []string{
				`t.scn:4:1: component "s" (StatisticsComponent) has no uses port "timing"`,
				`t.scn:5:1: run target "t" (TauTimer) does not provide a go port`,
			},
		},
		{
			name: "no such provides port",
			src:  "scenario x\ncomponent t TauTimer\ncomponent m RHSMonitor\nconnect m.timing -> t.clock\nrun t\n",
			want: []string{
				`t.scn:3:1: component "m" (RHSMonitor): required uses port "inner" (ode.RHSPort) is not connected`,
				`t.scn:3:1: component "m" (RHSMonitor): required uses port "timing" (perf.TimingPort) is not connected`,
				`t.scn:4:21: component "t" (TauTimer) does not provide port "clock"`,
				`t.scn:5:1: run target "t" (TauTimer) does not provide a go port`,
			},
		},
		{
			name: "port type mismatch",
			src:  "scenario x\ncomponent c ThermoChemistry\ncomponent d DPDt\nconnect d.chemistry -> c.properties\nrun d\n",
			want: []string{
				`t.scn:3:1: component "d" (DPDt): required uses port "chemistry" (chem.SourceTermPort) is not connected`,
				"t.scn:4:1: port type mismatch: d.chemistry uses chem.SourceTermPort but c.properties provides db.KeyValuePort",
				`t.scn:5:1: run target "d" (DPDt) does not provide a go port`,
			},
		},
		{
			name: "uses port connected twice",
			src:  "scenario x\ncomponent c ThermoChemistry\ncomponent d DPDt\nconnect d.chemistry -> c.chemistry\nconnect d.chemistry -> c.chemistry\nrun d\n",
			want: []string{
				"t.scn:5:1: uses port d.chemistry already connected (at t.scn:4:1)",
				`t.scn:6:1: run target "d" (DPDt) does not provide a go port`,
			},
		},
		{
			name: "run references unknown instance",
			src:  "scenario x\nrun ghost\n",
			want: []string{
				`t.scn:2:1: run references unknown instance "ghost"`,
			},
		},
		{
			name: "parameter errors",
			src: "scenario x\n" +
				"component g GrACEComponent { nx = lots }\n" +
				"component h GrACEComponent { nx = 2 }\n" +
				"component i GrACEComponent { lx = wide }\n" +
				"component j GrACEComponent { maxLevels = 99 }\n" +
				"component k ThermoChemistry { mech = argon }\n" +
				"component l RDDriver { skipChem = perhaps }\n" +
				"component m GrACEComponent { color = red }\n" +
				"run g\n",
			want: []string{
				`t.scn:2:30: parameter g.nx: cannot parse "lots" as int`,
				"t.scn:3:30: parameter h.nx: value 2 out of range [4, 4096]",
				`t.scn:4:30: parameter i.lx: cannot parse "wide" as float`,
				"t.scn:5:30: parameter j.maxLevels: value 99 out of range [1, 8]",
				`t.scn:6:31: parameter k.mech: invalid value "argon" (want one of co-h2-air, co-h2-air-12sp-28rx, h2air, h2air-9sp-19rx, h2air-lite, h2air-lite-8sp-5rx)`,
				`t.scn:7:1: component "l" (RDDriver): required uses port "chemistry" (chem.SourceTermPort) is not connected`,
				`t.scn:7:1: component "l" (RDDriver): required uses port "explicit" (samr.ExplicitIntegratorPort) is not connected`,
				`t.scn:7:1: component "l" (RDDriver): required uses port "ic" (samr.InitialConditionPort) is not connected`,
				`t.scn:7:1: component "l" (RDDriver): required uses port "mesh" (samr.MeshPort) is not connected`,
				`t.scn:7:24: parameter l.skipChem: cannot parse "perhaps" as bool`,
				`t.scn:8:30: component "m" (GrACEComponent) has no parameter "color"`,
				`t.scn:9:1: run target "g" (GrACEComponent) does not provide a go port`,
			},
		},
		{
			name: "sweep unknown instance",
			src:  "scenario x\ncomponent s TauTimer\nrun s\nsweep {\n    param q.tEnd = [1]\n}\n",
			want: []string{
				`t.scn:3:1: run target "s" (TauTimer) does not provide a go port`,
				`t.scn:5:5: sweep references unknown instance "q"`,
			},
		},
		{
			name: "sweep class incompatible",
			src: miniScenario +
				"sweep {\n    class cvode = [TauTimer]\n}\n",
			want: []string{
				`t.scn:21:20: sweep class "TauTimer" for "cvode" has no uses port "rhs" (wired at t.scn:14:1)`,
				`t.scn:21:20: sweep class "TauTimer" for "cvode" does not provide port "integrator" (wired at t.scn:16:1)`,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile("t.scn", []byte(tc.src))
			if err == nil {
				t.Fatal("compiled without error")
			}
			var got []string
			for _, d := range Diags(err) {
				got = append(got, d.Error())
			}
			if len(got) != len(tc.want) {
				t.Fatalf("diagnostics:\n got: %s\nwant: %s",
					strings.Join(got, "\n      "), strings.Join(tc.want, "\n      "))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("diag %d:\n got  %s\n want %s", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestSweepPointCap: the cartesian product is bounded at parse time.
func TestSweepPointCap(t *testing.T) {
	var b strings.Builder
	b.WriteString(miniScenario)
	b.WriteString("sweep {\n    param driver.tEnd = [")
	for i := 0; i < 23; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("1e-4")
	}
	b.WriteString("]\n    param driver.nOut = [")
	for i := 0; i < 23; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", i+1)
	}
	b.WriteString("]\n}\n")
	_, err := Compile("t.scn", []byte(b.String()))
	if err == nil {
		t.Fatal("529-point sweep compiled")
	}
	want := "t.scn:20:1: sweep expands to more than 512 points"
	ds := Diags(err)
	if len(ds) != 1 || ds[0].Error() != want {
		t.Fatalf("got %v, want exactly [%s]", err, want)
	}
}
