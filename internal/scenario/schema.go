package scenario

import (
	"sort"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
)

// This file is the static truth the validator checks scenarios against:
// for every registered component class, its parameters (with types,
// defaults, and legal ranges), its uses and provides ports (with the
// exact port-type strings connections must match), and — for driver
// classes — the metadata the run server needs for dedup keying
// (duration knob, progress series, checkpointability). Nothing here is
// consulted at run time; it exists so a scenario is rejected with a
// position before a single component is instantiated. The schema is
// pinned against reality by TestSchemaConformance, which instantiates
// every class and compares these port lists with the ones the
// components actually register.

// ParamKind is the value domain of a component parameter.
type ParamKind int

const (
	KindString ParamKind = iota
	KindInt
	KindFloat
	KindBool
	KindEnum
)

func (k ParamKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindEnum:
		return "enum"
	}
	return "string"
}

// ParamSchema describes one parameter: kind, default (as the component
// reads it), and either an inclusive [Min, Max] range (int/float) or
// the enumeration of legal values.
type ParamSchema struct {
	Kind     ParamKind
	Default  string
	Min, Max float64
	Enum     []string
}

// PortSchema describes one port: its name, its type string (connections
// require an exact match), and — for uses ports — whether the component
// panics without it (Required) or degrades gracefully.
type PortSchema struct {
	Name     string
	Type     string
	Required bool
}

// DriverSchema is the run-server metadata of a class that provides a go
// port: the run-length knob excluded from the dedup prefix key, the
// statistics series whose length counts completed steps, and whether
// the assembly supports checkpoint/restart (and therefore preemption
// and warm starts).
type DriverSchema struct {
	DurationParam  string
	ProgressKey    string
	Checkpointable bool
}

// ClassSchema is everything the validator knows about one class.
type ClassSchema struct {
	Params   map[string]*ParamSchema
	Uses     []PortSchema
	Provides []PortSchema
	Driver   *DriverSchema
}

// HasGo reports whether the class provides a go port (is a run target).
func (c *ClassSchema) HasGo() bool {
	for _, p := range c.Provides {
		if p.Type == cca.GoPortType {
			return true
		}
	}
	return false
}

func (c *ClassSchema) uses(name string) *PortSchema {
	for i := range c.Uses {
		if c.Uses[i].Name == name {
			return &c.Uses[i]
		}
	}
	return nil
}

func (c *ClassSchema) provides(name string) *PortSchema {
	for i := range c.Provides {
		if c.Provides[i].Name == name {
			return &c.Provides[i]
		}
	}
	return nil
}

// ClassInfo returns the schema for a class name.
func ClassInfo(name string) (*ClassSchema, bool) {
	c, ok := classes[name]
	return c, ok
}

// Classes returns the known class names, sorted.
func Classes() []string {
	out := make([]string, 0, len(classes))
	for name := range classes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultParam returns a class parameter's default value.
func DefaultParam(class, key string) (string, bool) {
	c, ok := classes[class]
	if !ok {
		return "", false
	}
	p, ok := c.Params[key]
	if !ok {
		return "", false
	}
	return p.Default, true
}

func pInt(def string, min, max float64) *ParamSchema {
	return &ParamSchema{Kind: KindInt, Default: def, Min: min, Max: max}
}

func pFloat(def string, min, max float64) *ParamSchema {
	return &ParamSchema{Kind: KindFloat, Default: def, Min: min, Max: max}
}

func pBool(def string) *ParamSchema { return &ParamSchema{Kind: KindBool, Default: def} }

func pStr(def string) *ParamSchema { return &ParamSchema{Kind: KindString, Default: def} }

func pEnum(def string, vals ...string) *ParamSchema {
	sort.Strings(vals)
	return &ParamSchema{Kind: KindEnum, Default: def, Enum: vals}
}

func use(name, typ string) PortSchema { return PortSchema{Name: name, Type: typ} }

func need(name, typ string) PortSchema { return PortSchema{Name: name, Type: typ, Required: true} }

func prov(name, typ string) PortSchema { return PortSchema{Name: name, Type: typ} }

// mechEnum lists the chemistry mechanisms chem.ByName resolves, under
// both their short and fully qualified names.
func mechEnum(def string) *ParamSchema {
	return pEnum(def,
		"h2air", "h2air-9sp-19rx",
		"h2air-lite", "h2air-lite-8sp-5rx",
		"co-h2-air", "co-h2-air-12sp-28rx")
}

var classes = map[string]*ClassSchema{
	// Mesh, data, and execution substrate.
	"GrACEComponent": {
		Params: map[string]*ParamSchema{
			"nx":            pInt("100", 4, 4096),
			"ny":            pInt("100", 4, 4096),
			"lx":            pFloat("0.01", 1e-12, 1e12),
			"ly":            pFloat("0.01", 1e-12, 1e12),
			"ratio":         pInt("2", 2, 4),
			"maxLevels":     pInt("3", 1, 8),
			"maxPatchCells": pInt("4096", 16, 1<<20),
		},
		Uses: []PortSchema{use("balancer", components.BalancerPortType)},
		Provides: []PortSchema{
			prov("bc", components.BCPortType),
			prov("data", components.DataPortType),
			prov("mesh", components.MeshPortType),
		},
	},
	"BalancerComponent": {
		Params:   map[string]*ParamSchema{"policy": pEnum("greedy", "greedy", "sfc")},
		Provides: []PortSchema{prov("balancer", components.BalancerPortType)},
	},
	"ExecutionComponent": {
		Params:   map[string]*ParamSchema{"workers": pInt("0", 0, 1024)},
		Provides: []PortSchema{prov("exec", components.ExecutionPortType)},
	},
	"CheckpointComponent": {
		Params: map[string]*ParamSchema{
			"every":       pInt("0", 0, 1<<20),
			"dir":         pStr("checkpoints"),
			"restore":     pStr(""),
			"incremental": pBool("false"),
			"fullEvery":   pInt("8", 1, 1<<20),
			"compress":    pBool("false"),
			"keep":        pInt("0", 0, 1<<20),
			"keepEvery":   pInt("0", 0, 1<<20),
		},
		Uses: []PortSchema{
			use("exec", components.ExecutionPortType),
			need("mesh", components.MeshPortType),
		},
		Provides: []PortSchema{prov("checkpoint", components.CheckpointPortType)},
	},

	// Chemistry and transport.
	"ThermoChemistry": {
		Params: map[string]*ParamSchema{
			"mech":    mechEnum("h2air"),
			"kernels": pEnum("auto", "auto", "on", "off"),
		},
		Provides: []PortSchema{
			prov("chemistry", components.ChemistryPortType),
			prov("properties", components.KeyValuePortType),
		},
	},
	"DRFMComponent": {
		Params:   map[string]*ParamSchema{"mech": mechEnum("h2air")},
		Provides: []PortSchema{prov("transport", components.TransportPortType)},
	},
	"DPDt": {
		Uses:     []PortSchema{need("chemistry", components.ChemistryPortType)},
		Provides: []PortSchema{prov("dpdt", components.DPDtPortType)},
	},
	"ProblemModeler": {
		Uses: []PortSchema{
			need("chemistry", components.ChemistryPortType),
			need("dpdt", components.DPDtPortType),
		},
		Provides: []PortSchema{prov("rhs", components.RHSPortType)},
	},
	"Initializer": {
		Params: map[string]*ParamSchema{
			"T0": pFloat("1000", 200, 5000),
			"P0": pFloat("101325", 1, 1e9),
		},
		Uses:     []PortSchema{need("chemistry", components.ChemistryPortType)},
		Provides: []PortSchema{prov("ic", components.ICStatePortType)},
	},

	// Integrators and solvers.
	"CvodeComponent": {
		Params: map[string]*ParamSchema{
			"rtol": pFloat("1e-8", 0, 1),
			"atol": pFloat("1e-12", 0, 1),
		},
		Uses:     []PortSchema{need("rhs", components.RHSPortType)},
		Provides: []PortSchema{prov("integrator", components.ImplicitIntegratorType)},
	},
	"ExplicitIntegrator": {
		Params: map[string]*ParamSchema{
			"rtol": pFloat("1e-5", 0, 1),
			"atol": pFloat("1e-8", 0, 1),
		},
		Uses: []PortSchema{
			use("exec", components.ExecutionPortType),
			need("maxEigen", components.SpectralRadiusPortType),
			need("patchRHS", components.PatchRHSPortType),
		},
		Provides: []PortSchema{prov("integrator", components.ExplicitIntegratorType)},
	},
	"ExplicitIntegratorRK2": {
		Uses: []PortSchema{
			need("bc", components.BCPortType),
			use("exec", components.ExecutionPortType),
			need("patchRHS", components.PatchRHSPortType),
		},
		Provides: []PortSchema{prov("integrator", components.ExplicitIntegratorType)},
	},
	"ImplicitIntegrator": {
		Params: map[string]*ParamSchema{"P": pFloat("101325", 1, 1e9)},
		Uses: []PortSchema{
			need("chemistry", components.ChemistryPortType),
			use("exec", components.ExecutionPortType),
			need("integrator", components.ImplicitIntegratorType),
		},
		Provides: []PortSchema{
			prov("cellChemistry", components.CellChemistryPortType),
			prov("cellRHS", components.RHSPortType),
		},
	},

	// Reaction–diffusion physics.
	"DiffusionPhysics": {
		Params: map[string]*ParamSchema{"P": pFloat("101325", 1, 1e9)},
		Uses: []PortSchema{
			need("chemistry", components.ChemistryPortType),
			need("transport", components.TransportPortType),
		},
		Provides: []PortSchema{prov("patchRHS", components.PatchRHSPortType)},
	},
	"MaxDiffCoeffEvaluator": {
		Params: map[string]*ParamSchema{"P": pFloat("101325", 1, 1e9)},
		Uses: []PortSchema{
			need("chemistry", components.ChemistryPortType),
			use("exec", components.ExecutionPortType),
			need("transport", components.TransportPortType),
		},
		Provides: []PortSchema{prov("maxEigen", components.SpectralRadiusPortType)},
	},
	"InitialCondition": {
		Params: map[string]*ParamSchema{
			"Tcold":  pFloat("300", 100, 5000),
			"Thot":   pFloat("1800", 100, 5000),
			"radius": pFloat("0.06", 1e-9, 1e3),
			"nspots": pInt("3", 1, 4),
		},
		Uses:     []PortSchema{need("chemistry", components.ChemistryPortType)},
		Provides: []PortSchema{prov("ic", components.ICFieldPortType)},
	},
	"ErrorEstAndRegrid": {
		Params: map[string]*ParamSchema{
			"threshold": pFloat("0.08", 0, 1e6),
			"comp":      pInt("0", 0, 64),
			"buffer":    pInt("2", 0, 64),
		},
		Provides: []PortSchema{prov("regrid", components.RegridPortType)},
	},

	// Hydrodynamics.
	"GasProperties": {
		Params: map[string]*ParamSchema{
			"gamma":        pFloat("1.4", 1.0001, 3),
			"densityRatio": pFloat("3.0", 1e-3, 1e3),
			"mach":         pFloat("1.5", 1, 50),
		},
		Provides: []PortSchema{prov("properties", components.KeyValuePortType)},
	},
	"States": {
		Params:   map[string]*ParamSchema{"limiter": pEnum("mc", "mc", "minmod", "first")},
		Provides: []PortSchema{prov("states", components.StatesPortType)},
	},
	"GodunovFlux": {Provides: []PortSchema{prov("flux", components.FluxPortType)}},
	"EFMFlux":     {Provides: []PortSchema{prov("flux", components.FluxPortType)}},
	"HLLCFlux":    {Provides: []PortSchema{prov("flux", components.FluxPortType)}},
	"InviscidFlux": {
		Uses: []PortSchema{
			use("exec", components.ExecutionPortType),
			need("flux", components.FluxPortType),
			need("gasProperties", components.KeyValuePortType),
			need("states", components.StatesPortType),
		},
		Provides: []PortSchema{prov("patchRHS", components.PatchRHSPortType)},
	},
	"CharacteristicQuantities": {
		Params: map[string]*ParamSchema{"cfl": pFloat("0.45", 1e-3, 1)},
		Uses: []PortSchema{
			use("exec", components.ExecutionPortType),
			need("gasProperties", components.KeyValuePortType),
		},
		Provides: []PortSchema{prov("characteristics", components.CharacteristicsPortType)},
	},
	"BoundaryConditions": {
		Params: map[string]*ParamSchema{
			"xlo": pEnum("outflow", "outflow", "reflect"),
			"xhi": pEnum("outflow", "outflow", "reflect"),
			"ylo": pEnum("reflect", "outflow", "reflect"),
			"yhi": pEnum("reflect", "outflow", "reflect"),
		},
		Uses:     []PortSchema{need("mesh", components.MeshPortType)},
		Provides: []PortSchema{prov("bc", components.BCPortType)},
	},
	"ProlongRestrict": {
		Provides: []PortSchema{prov("prolongRestrict", components.ProlongRestrictPortType)},
	},
	"ConicalInterfaceIC": {
		Params: map[string]*ParamSchema{
			"interfaceX": pFloat("0.40", 0, 1),
			"angleDeg":   pFloat("30", -85, 85),
			"shockX":     pFloat("0.20", 0, 1),
		},
		Uses:     []PortSchema{need("gasProperties", components.KeyValuePortType)},
		Provides: []PortSchema{prov("ic", components.ICFieldPortType)},
	},
	"KelvinHelmholtzIC": {
		Params: map[string]*ParamSchema{
			"shearU":     pFloat("0.5", 0, 50),
			"thickness":  pFloat("0.05", 1e-4, 0.25),
			"perturbAmp": pFloat("0.01", 0, 1),
			"modes":      pInt("2", 1, 64),
		},
		Uses:     []PortSchema{need("gasProperties", components.KeyValuePortType)},
		Provides: []PortSchema{prov("ic", components.ICFieldPortType)},
	},
	"RichtmyerMeshkovIC": {
		Params: map[string]*ParamSchema{
			"interfaceX": pFloat("0.55", 0, 1),
			"amplitude":  pFloat("0.05", 0, 0.25),
			"modes":      pInt("3", 1, 64),
			"shockX":     pFloat("0.25", 0, 1),
		},
		Uses:     []PortSchema{need("gasProperties", components.KeyValuePortType)},
		Provides: []PortSchema{prov("ic", components.ICFieldPortType)},
	},

	// Observability.
	"StatisticsComponent": {
		Provides: []PortSchema{prov("stats", components.StatsPortType)},
	},
	"TauTimer": {
		Provides: []PortSchema{prov("timing", components.TimingPortType)},
	},
	"RHSMonitor": {
		Params: map[string]*ParamSchema{"label": pStr("")},
		Uses: []PortSchema{
			need("inner", components.RHSPortType),
			need("timing", components.TimingPortType),
		},
		Provides: []PortSchema{prov("rhs", components.RHSPortType)},
	},
	"PatchRHSMonitor": {
		Params: map[string]*ParamSchema{"label": pStr("")},
		Uses: []PortSchema{
			need("inner", components.PatchRHSPortType),
			need("timing", components.TimingPortType),
		},
		Provides: []PortSchema{prov("patchRHS", components.PatchRHSPortType)},
	},

	// Drivers.
	"IgnitionDriver": {
		Params: map[string]*ParamSchema{
			"tEnd": pFloat("1e-3", 1e-12, 1e6),
			"nOut": pInt("50", 1, 1<<20),
		},
		Uses: []PortSchema{
			need("chemistry", components.ChemistryPortType),
			need("ic", components.ICStatePortType),
			need("integrator", components.ImplicitIntegratorType),
			need("stats", components.StatsPortType),
		},
		Provides: []PortSchema{prov("go", cca.GoPortType)},
		Driver:   &DriverSchema{ProgressKey: "T"},
	},
	"RDDriver": {
		Params: map[string]*ParamSchema{
			"dt":          pFloat("1e-7", 1e-15, 1e3),
			"steps":       pInt("5", 1, 1<<20),
			"regridEvery": pInt("0", 0, 1<<20),
			"splitting":   pEnum("lie", "lie", "strang"),
			"field":       pStr("phi"),
			"skipChem":    pBool("false"),
		},
		Uses: []PortSchema{
			use("cellChemistry", components.CellChemistryPortType),
			use("checkpoint", components.CheckpointPortType),
			need("chemistry", components.ChemistryPortType),
			use("exec", components.ExecutionPortType),
			need("explicit", components.ExplicitIntegratorType),
			need("ic", components.ICFieldPortType),
			need("mesh", components.MeshPortType),
			use("regrid", components.RegridPortType),
			use("stats", components.StatsPortType),
		},
		Provides: []PortSchema{prov("go", cca.GoPortType)},
		Driver:   &DriverSchema{DurationParam: "steps", ProgressKey: "cells", Checkpointable: true},
	},
	"ShockDriver": {
		Params: map[string]*ParamSchema{
			"tEnd":        pFloat("1.0", 1e-12, 1e12),
			"maxSteps":    pInt("10000", 1, 1<<20),
			"regridEvery": pInt("5", 0, 1<<20),
			"field":       pStr("U"),
		},
		Uses: []PortSchema{
			need("bc", components.BCPortType),
			need("characteristics", components.CharacteristicsPortType),
			use("checkpoint", components.CheckpointPortType),
			use("exec", components.ExecutionPortType),
			need("gasProperties", components.KeyValuePortType),
			need("ic", components.ICFieldPortType),
			need("integrator", components.ExplicitIntegratorType),
			need("mesh", components.MeshPortType),
			use("regrid", components.RegridPortType),
			use("stats", components.StatsPortType),
		},
		Provides: []PortSchema{prov("go", cca.GoPortType)},
		Driver:   &DriverSchema{DurationParam: "maxSteps", ProgressKey: "t", Checkpointable: true},
	},
}
