package scenario

import (
	"fmt"
	"sort"
	"strings"

	"ccahydro/internal/cca"
)

// Param is one programmatic (instance, key, value) override applied on
// top of a scenario's own parameters at Build time — the same escape
// hatch the hard-coded assemblies expose, used by tests and the run
// server to shrink problems without editing scenario files.
type Param struct {
	Instance, Key, Value string
}

// CompiledComponent is one validated instance declaration.
type CompiledComponent struct {
	Instance string
	Class    string
	Params   map[string]string
}

// CompiledConnection is one validated port wire.
type CompiledConnection struct {
	User, UsesPort, Provider, ProvidesPort string
}

// CompiledAxis is one validated sweep dimension.
type CompiledAxis struct {
	Kind     string // "param" or "class"
	Instance string
	Key      string
	Values   []string
}

// Compiled is a validated scenario, ready to build onto a framework.
// It is produced only by Compile/Validate, so holding one is proof the
// spec passed every static check.
type Compiled struct {
	Name  string
	Path  string
	Comps []CompiledComponent
	Conns []CompiledConnection
	Run   string
	// RunClass is the run target's component class; its schema carries
	// the driver metadata (duration knob, progress key, checkpointing).
	RunClass string
	Sweep    []CompiledAxis
}

// Build assembles the scenario onto f through the exact path the
// hard-coded assemblies use: parameters staged first (scenario file
// values, then overrides, later settings winning), then every component
// instantiated in declaration order, then every connection. It does not
// fire the go port — callers wire checkpointing/telemetry onto the
// finished assembly first, exactly as they do for built-ins.
func (c *Compiled) Build(f *cca.Framework, overrides ...Param) error {
	for _, comp := range c.Comps {
		keys := make([]string, 0, len(comp.Params))
		for k := range comp.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := f.SetParameter(comp.Instance, k, comp.Params[k]); err != nil {
				return err
			}
		}
	}
	for _, o := range overrides {
		if err := f.SetParameter(o.Instance, o.Key, o.Value); err != nil {
			return err
		}
	}
	for _, comp := range c.Comps {
		if err := f.Instantiate(comp.Class, comp.Instance); err != nil {
			return fmt.Errorf("scenario %s: instantiate %s %s: %w", c.Name, comp.Class, comp.Instance, err)
		}
	}
	for _, cn := range c.Conns {
		if err := f.Connect(cn.User, cn.UsesPort, cn.Provider, cn.ProvidesPort); err != nil {
			return fmt.Errorf("scenario %s: connect %s.%s -> %s.%s: %w",
				c.Name, cn.User, cn.UsesPort, cn.Provider, cn.ProvidesPort, err)
		}
	}
	return nil
}

// Script lowers the scenario to an equivalent Ccaffeine-style command
// script (parameters, then instantiation in declaration order, then
// connections, then the go command). ccarun executes scenarios through
// this path, so every launcher feature — arena printing, checkpoint
// retrofit, telemetry, fault supervision — applies to them unchanged.
func (c *Compiled) Script() *cca.Script {
	var s cca.Script
	add := func(verb string, args ...string) {
		s.Commands = append(s.Commands, cca.Command{Verb: verb, Args: args})
	}
	for _, comp := range c.Comps {
		keys := make([]string, 0, len(comp.Params))
		for k := range comp.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			add("parameter", comp.Instance, k, comp.Params[k])
		}
	}
	for _, comp := range c.Comps {
		add("instantiate", comp.Class, comp.Instance)
	}
	for _, cn := range c.Conns {
		add("connect", cn.User, cn.UsesPort, cn.Provider, cn.ProvidesPort)
	}
	add("go", c.Run, "go")
	return &s
}

// RunInstance is the instance whose go port drives the run.
func (c *Compiled) RunInstance() string { return c.Run }

func (c *Compiled) driver() *DriverSchema {
	if cls, ok := classes[c.RunClass]; ok && cls.Driver != nil {
		return cls.Driver
	}
	return nil
}

// DurationParam names the run target's run-length knob ("" when the
// driver has none) — the one parameter excluded from the dedup prefix
// key so runs differing only in length share a checkpoint lineage.
func (c *Compiled) DurationParam() string {
	if d := c.driver(); d != nil {
		return d.DurationParam
	}
	return ""
}

// ProgressKey is the statistics series whose length counts completed
// driver steps.
func (c *Compiled) ProgressKey() string {
	if d := c.driver(); d != nil {
		return d.ProgressKey
	}
	return ""
}

// Checkpointable reports whether the assembly supports checkpoint/
// restart (and therefore preemption, elastic resume, and warm starts).
func (c *Compiled) Checkpointable() bool {
	if d := c.driver(); d != nil {
		return d.Checkpointable
	}
	return false
}

// Param returns an instance parameter explicitly set by the scenario.
func (c *Compiled) Param(instance, key string) (string, bool) {
	for i := range c.Comps {
		if c.Comps[i].Instance == instance {
			v, ok := c.Comps[i].Params[key]
			return v, ok
		}
	}
	return "", false
}

// SetParam sets an instance parameter in place (the run server uses it
// to make the duration knob explicit before hashing).
func (c *Compiled) SetParam(instance, key, value string) {
	for i := range c.Comps {
		if c.Comps[i].Instance == instance {
			c.Comps[i].Params[key] = value
			return
		}
	}
}

// ClassOf returns the class of an instance ("" when absent).
func (c *Compiled) ClassOf(instance string) string {
	for i := range c.Comps {
		if c.Comps[i].Instance == instance {
			return c.Comps[i].Class
		}
	}
	return ""
}

// HasSweep reports whether the scenario declares a sweep block.
func (c *Compiled) HasSweep() bool { return len(c.Sweep) > 0 }

// SweepPoints is the number of points the sweep expands to (1 without
// a sweep block).
func (c *Compiled) SweepPoints() int {
	n := 1
	for _, ax := range c.Sweep {
		n *= len(ax.Values)
	}
	return n
}

// Expand materializes the sweep's cartesian product, axes in
// declaration order with the last axis varying fastest. Each point is
// an independent sweep-free Compiled; without a sweep the result is the
// scenario itself.
func (c *Compiled) Expand() []*Compiled {
	if !c.HasSweep() {
		return []*Compiled{c}
	}
	points := []*Compiled{c.clone()}
	for _, ax := range c.Sweep {
		next := make([]*Compiled, 0, len(points)*len(ax.Values))
		for _, p := range points {
			for _, val := range ax.Values {
				q := p.clone()
				if ax.Kind == "class" {
					for i := range q.Comps {
						if q.Comps[i].Instance == ax.Instance {
							q.Comps[i].Class = val
						}
					}
					if q.Run == ax.Instance {
						q.RunClass = val
					}
				} else {
					q.SetParam(ax.Instance, ax.Key, val)
				}
				next = append(next, q)
			}
		}
		points = next
	}
	return points
}

// clone deep-copies the scenario without its sweep block.
func (c *Compiled) clone() *Compiled {
	q := &Compiled{Name: c.Name, Path: c.Path, Run: c.Run, RunClass: c.RunClass}
	q.Comps = make([]CompiledComponent, len(c.Comps))
	for i, comp := range c.Comps {
		params := make(map[string]string, len(comp.Params))
		for k, v := range comp.Params {
			params[k] = v
		}
		q.Comps[i] = CompiledComponent{Instance: comp.Instance, Class: comp.Class, Params: params}
	}
	q.Conns = append([]CompiledConnection(nil), c.Conns...)
	return q
}

// CanonicalLines renders the assembly as a deterministic, order-
// insensitive line set — the content-addressing surface for run dedup.
// The scenario name is deliberately excluded: two differently named
// files describing the same assembly are the same computation. Sweep
// blocks are excluded too (each expanded point hashes on its own).
func (c *Compiled) CanonicalLines() []string {
	var lines []string
	for _, comp := range c.Comps {
		lines = append(lines, "component/"+comp.Instance+"="+comp.Class)
		for k, v := range comp.Params {
			lines = append(lines, "param/"+comp.Instance+"/"+k+"="+v)
		}
	}
	for _, cn := range c.Conns {
		lines = append(lines, "connect/"+cn.User+"."+cn.UsesPort+"="+cn.Provider+"."+cn.ProvidesPort)
	}
	sort.Strings(lines)
	return append(lines, "run="+c.Run)
}

// Render writes the scenario back out as canonical source text that
// re-compiles to an equivalent assembly — the wire form for expanded
// sweep points.
func (c *Compiled) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s\n", c.Name)
	for _, comp := range c.Comps {
		if len(comp.Params) == 0 {
			fmt.Fprintf(&b, "component %s %s\n", comp.Instance, comp.Class)
			continue
		}
		fmt.Fprintf(&b, "component %s %s {", comp.Instance, comp.Class)
		keys := make([]string, 0, len(comp.Params))
		for k := range comp.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s = %q", k, comp.Params[k])
		}
		b.WriteString(" }\n")
	}
	for _, cn := range c.Conns {
		fmt.Fprintf(&b, "connect %s.%s -> %s.%s\n", cn.User, cn.UsesPort, cn.Provider, cn.ProvidesPort)
	}
	fmt.Fprintf(&b, "run %s\n", c.Run)
	if c.HasSweep() {
		b.WriteString("sweep {\n")
		for _, ax := range c.Sweep {
			b.WriteString("    " + lineForAxis(ax) + "\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func lineForAxis(ax CompiledAxis) string {
	vals := make([]string, len(ax.Values))
	for i, v := range ax.Values {
		vals[i] = fmt.Sprintf("%q", v)
	}
	if ax.Kind == "class" {
		return fmt.Sprintf("class %s = [%s]", ax.Instance, strings.Join(vals, ", "))
	}
	return fmt.Sprintf("param %s.%s = [%s]", ax.Instance, ax.Key, strings.Join(vals, ", "))
}
