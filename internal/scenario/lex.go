package scenario

import "fmt"

type tokKind int

const (
	tEOF tokKind = iota
	tWord
	tString
	tLBrace
	tRBrace
	tLBracket
	tRBracket
	tEq
	tComma
	tArrow
)

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of file"
	case tWord:
		return "word"
	case tString:
		return "string"
	case tLBrace:
		return "'{'"
	case tRBrace:
		return "'}'"
	case tLBracket:
		return "'['"
	case tRBracket:
		return "']'"
	case tEq:
		return "'='"
	case tComma:
		return "','"
	case tArrow:
		return "'->'"
	}
	return "?"
}

type token struct {
	kind tokKind
	text string
	pos  Pos
}

// lexer walks the source byte by byte, tracking line/column. It never
// fails destructively: illegal input surfaces as a Diag from next().
type lexer struct {
	file string
	src  []byte
	off  int
	line int
	col  int
}

func newLexer(file string, src []byte) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (lx *lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *lexer) peekByte() (byte, bool) {
	if lx.off >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.off], true
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// isWordByte reports bytes legal inside a bare word. '.' joins
// instance.port references, '-'/'+' appear in numbers and mechanism
// names like h2air-lite; the '-' of '->' is excluded by lookahead in
// next().
func isWordByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_', c == '.', c == '-', c == '+':
		return true
	}
	return false
}

// next returns the next token, or a Diag on an illegal byte or an
// unterminated string.
func (lx *lexer) next() (token, *Diag) {
	for {
		c, ok := lx.peekByte()
		if !ok {
			return token{kind: tEOF, pos: lx.pos()}, nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
			continue
		case c == '#':
			for {
				c, ok := lx.peekByte()
				if !ok || c == '\n' {
					break
				}
				_ = c
				lx.advance()
			}
			continue
		}
		break
	}
	start := lx.pos()
	c := lx.src[lx.off]
	switch c {
	case '{':
		lx.advance()
		return token{kind: tLBrace, text: "{", pos: start}, nil
	case '}':
		lx.advance()
		return token{kind: tRBrace, text: "}", pos: start}, nil
	case '[':
		lx.advance()
		return token{kind: tLBracket, text: "[", pos: start}, nil
	case ']':
		lx.advance()
		return token{kind: tRBracket, text: "]", pos: start}, nil
	case '=':
		lx.advance()
		return token{kind: tEq, text: "=", pos: start}, nil
	case ',':
		lx.advance()
		return token{kind: tComma, text: ",", pos: start}, nil
	case '"':
		lx.advance()
		var buf []byte
		for {
			c, ok := lx.peekByte()
			if !ok || c == '\n' {
				return token{}, &Diag{Pos: start, Msg: "unterminated string"}
			}
			lx.advance()
			if c == '"' {
				return token{kind: tString, text: string(buf), pos: start}, nil
			}
			buf = append(buf, c)
		}
	case '-':
		if lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '>' {
			lx.advance()
			lx.advance()
			return token{kind: tArrow, text: "->", pos: start}, nil
		}
	}
	if !isWordByte(c) {
		lx.advance()
		return token{}, &Diag{Pos: start, Msg: fmt.Sprintf("unexpected character %q", string(c))}
	}
	startOff := lx.off
	for lx.off < len(lx.src) {
		c := lx.src[lx.off]
		if !isWordByte(c) {
			break
		}
		if c == '-' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '>' {
			break // leave '->' for the next token
		}
		lx.advance()
	}
	return token{kind: tWord, text: string(lx.src[startOff:lx.off]), pos: start}, nil
}
