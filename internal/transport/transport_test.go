package transport

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ccahydro/internal/chem"
)

func almost(a, b, rel float64) bool {
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}

func TestViscosityKnownValues(t *testing.T) {
	m := chem.H2Air()
	tr := New(m)
	// N2 at 300 K: mu ≈ 1.78e-5 Pa s.
	if mu := tr.Viscosity(m.SpeciesIndex("N2"), 300); !almost(mu, 1.78e-5, 0.05) {
		t.Errorf("mu_N2(300) = %v", mu)
	}
	// O2 at 300 K: mu ≈ 2.07e-5 Pa s.
	if mu := tr.Viscosity(m.SpeciesIndex("O2"), 300); !almost(mu, 2.07e-5, 0.06) {
		t.Errorf("mu_O2(300) = %v", mu)
	}
	// H2 at 300 K: mu ≈ 0.89e-5 Pa s.
	if mu := tr.Viscosity(m.SpeciesIndex("H2"), 300); !almost(mu, 0.89e-5, 0.06) {
		t.Errorf("mu_H2(300) = %v", mu)
	}
}

func TestConductivityKnownValues(t *testing.T) {
	m := chem.H2Air()
	tr := New(m)
	// N2 at 300 K: lambda ≈ 0.026 W/m/K.
	if lam := tr.Conductivity(m.SpeciesIndex("N2"), 300); !almost(lam, 0.026, 0.10) {
		t.Errorf("lambda_N2(300) = %v", lam)
	}
	// H2 at 300 K: lambda ≈ 0.18 W/m/K (very conductive).
	if lam := tr.Conductivity(m.SpeciesIndex("H2"), 300); !almost(lam, 0.18, 0.15) {
		t.Errorf("lambda_H2(300) = %v", lam)
	}
}

func TestBinaryDiffusionKnownValue(t *testing.T) {
	m := chem.H2Air()
	tr := New(m)
	// H2-N2 at 300 K, 1 atm: D ≈ 0.78 cm^2/s = 7.8e-5 m^2/s.
	d := tr.BinaryDiffusion(m.SpeciesIndex("H2"), m.SpeciesIndex("N2"), 300, chem.PAtm)
	if !almost(d, 7.8e-5, 0.12) {
		t.Errorf("D_H2,N2(300) = %v", d)
	}
	// O2-N2 at 300 K: D ≈ 0.21 cm^2/s.
	d2 := tr.BinaryDiffusion(m.SpeciesIndex("O2"), m.SpeciesIndex("N2"), 300, chem.PAtm)
	if !almost(d2, 2.1e-5, 0.12) {
		t.Errorf("D_O2,N2(300) = %v", d2)
	}
}

func TestBinaryDiffusionSymmetry(t *testing.T) {
	m := chem.H2Air()
	tr := New(m)
	f := func(jRaw, kRaw uint8, tRaw uint16) bool {
		j := int(jRaw) % m.NumSpecies()
		k := int(kRaw) % m.NumSpecies()
		T := 300 + float64(tRaw%2200)
		djk := tr.BinaryDiffusion(j, k, T, chem.PAtm)
		dkj := tr.BinaryDiffusion(k, j, T, chem.PAtm)
		return almost(djk, dkj, 1e-12) && djk > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDiffusionScalings(t *testing.T) {
	m := chem.H2Air()
	tr := New(m)
	j, k := m.SpeciesIndex("O2"), m.SpeciesIndex("N2")
	// D ~ 1/P at fixed T.
	d1 := tr.BinaryDiffusion(j, k, 400, chem.PAtm)
	d2 := tr.BinaryDiffusion(j, k, 400, 2*chem.PAtm)
	if !almost(d1, 2*d2, 1e-12) {
		t.Errorf("pressure scaling: %v vs %v", d1, 2*d2)
	}
	// D grows faster than T^1.5 (collision integral decreases).
	d300 := tr.BinaryDiffusion(j, k, 300, chem.PAtm)
	d600 := tr.BinaryDiffusion(j, k, 600, chem.PAtm)
	if d600/d300 < math.Pow(2, 1.5) {
		t.Errorf("temperature scaling = %v, want > %v", d600/d300, math.Pow(2, 1.5))
	}
}

func TestMixtureDiffusionAirLike(t *testing.T) {
	m := chem.H2Air()
	tr := New(m)
	Y := m.StoichiometricH2Air()
	n := m.NumSpecies()
	X := make([]float64, n)
	D := make([]float64, n)
	m.MoleFractions(Y, X)
	tr.MixtureDiffusion(300, chem.PAtm, X, Y, D)
	// H2 diffuses much faster than O2 in the mixture.
	if D[m.SpeciesIndex("H2")] < 2*D[m.SpeciesIndex("O2")] {
		t.Errorf("D_H2 = %v, D_O2 = %v", D[m.SpeciesIndex("H2")], D[m.SpeciesIndex("O2")])
	}
	for i, d := range D {
		if d <= 0 || math.IsNaN(d) {
			t.Errorf("D[%d] = %v", i, d)
		}
	}
}

func TestMixtureDiffusionSelfLimit(t *testing.T) {
	// Pure N2: the mixture formula degenerates; self-diffusion is used.
	m := chem.H2Air()
	tr := New(m)
	n := m.NumSpecies()
	Y := make([]float64, n)
	Y[m.SpeciesIndex("N2")] = 1
	X := make([]float64, n)
	D := make([]float64, n)
	m.MoleFractions(Y, X)
	tr.MixtureDiffusion(300, chem.PAtm, X, Y, D)
	dn2 := D[m.SpeciesIndex("N2")]
	if dn2 <= 0 || math.IsNaN(dn2) {
		t.Errorf("self-limit D_N2 = %v", dn2)
	}
}

func TestMixtureConductivityBounds(t *testing.T) {
	m := chem.H2Air()
	tr := New(m)
	Y := m.StoichiometricH2Air()
	X := make([]float64, m.NumSpecies())
	m.MoleFractions(Y, X)
	lam := tr.MixtureConductivity(300, X)
	// Must lie between the N2 and H2 pure values.
	lamN2 := tr.Conductivity(m.SpeciesIndex("N2"), 300)
	lamH2 := tr.Conductivity(m.SpeciesIndex("H2"), 300)
	if lam < lamN2 || lam > lamH2 {
		t.Errorf("lambda_mix = %v outside [%v, %v]", lam, lamN2, lamH2)
	}
}

func TestMixtureViscosityPureLimit(t *testing.T) {
	m := chem.H2Air()
	tr := New(m)
	n := m.NumSpecies()
	X := make([]float64, n)
	X[m.SpeciesIndex("N2")] = 1
	muMix := tr.MixtureViscosity(300, X)
	muN2 := tr.Viscosity(m.SpeciesIndex("N2"), 300)
	if !almost(muMix, muN2, 1e-10) {
		t.Errorf("pure-limit viscosity = %v, want %v", muMix, muN2)
	}
}

func TestEvaluate(t *testing.T) {
	m := chem.H2Air()
	tr := New(m)
	Y := m.StoichiometricH2Air()
	n := m.NumSpecies()
	X := make([]float64, n)
	D := make([]float64, n)
	lam, rho := tr.Evaluate(1000, chem.PAtm, Y, X, D)
	if lam <= 0 || rho <= 0 {
		t.Errorf("lambda = %v, rho = %v", lam, rho)
	}
	if !almost(rho, m.Density(chem.PAtm, 1000, Y), 1e-12) {
		t.Error("rho inconsistent with mechanism density")
	}
	// Thermal diffusivity alpha = lam/(rho cp) should be same order as
	// species diffusivities (Lewis ~ 1 for N2-dominated mixtures).
	alpha := lam / (rho * m.CpMass(1000, Y))
	dn2 := D[m.SpeciesIndex("N2")]
	if alpha/dn2 < 0.3 || alpha/dn2 > 3.5 {
		t.Errorf("Lewis-like ratio = %v", alpha/dn2)
	}
}

// Property: transport coefficients are positive, finite, and increase
// with temperature over flame-relevant ranges.
func TestTransportMonotoneInT(t *testing.T) {
	m := chem.H2Air()
	tr := New(m)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(m.NumSpecies())
		T := 300 + 2000*rng.Float64()
		mu1, mu2 := tr.Viscosity(k, T), tr.Viscosity(k, T+100)
		lam1, lam2 := tr.Conductivity(k, T), tr.Conductivity(k, T+100)
		return mu2 > mu1 && mu1 > 0 && lam2 > lam1 && lam1 > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
