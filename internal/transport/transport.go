// Package transport evaluates gas-phase transport properties —
// mixture-averaged diffusion coefficients, thermal conductivity, and
// viscosity — from kinetic theory with Lennard-Jones parameters and
// Neufeld collision-integral fits. It is the stand-in for the DRFM
// package the paper wraps into its DRFMComponent: same physical model
// class (Chapman–Enskog with mixture averaging), pure Go.
package transport

import (
	"math"

	"ccahydro/internal/chem"
)

// Boltzmann constant (J/K) and Avogadro number (1/mol).
const (
	kB = 1.380649e-23
	nA = 6.02214076e23
)

// LJ holds Lennard-Jones parameters: sigma in meters, epsilon/kB in K.
type LJ struct {
	Sigma    float64
	EpsOverK float64
}

// ljData maps species names to Lennard-Jones parameters (from the
// standard Chemkin transport database; sigma given in Angstrom here
// and converted below).
var ljData = map[string]struct {
	sigmaA float64
	epsK   float64
}{
	"H2":   {2.920, 38.0},
	"O2":   {3.458, 107.4},
	"H2O":  {2.605, 572.4},
	"OH":   {2.750, 80.0},
	"H":    {2.050, 145.0},
	"O":    {2.750, 80.0},
	"HO2":  {3.458, 107.4},
	"H2O2": {3.458, 107.4},
	"N2":   {3.621, 97.53},
}

// Model evaluates transport properties for one mechanism.
type Model struct {
	mech *chem.Mechanism
	lj   []LJ
	// mass is per-molecule mass in kg.
	mass []float64
	// Precomputed binary pair parameters.
	sigmaJK [][]float64
	epsJK   [][]float64
	mJK     [][]float64 // reduced mass
}

// New builds a transport model; unknown species fall back to N2-like
// parameters.
func New(m *chem.Mechanism) *Model {
	n := m.NumSpecies()
	t := &Model{
		mech: m,
		lj:   make([]LJ, n),
		mass: make([]float64, n),
	}
	for i, sp := range m.Species {
		d, ok := ljData[sp.Name]
		if !ok {
			d = ljData["N2"]
		}
		t.lj[i] = LJ{Sigma: d.sigmaA * 1e-10, EpsOverK: d.epsK}
		t.mass[i] = sp.W / nA
	}
	t.sigmaJK = make([][]float64, n)
	t.epsJK = make([][]float64, n)
	t.mJK = make([][]float64, n)
	for j := 0; j < n; j++ {
		t.sigmaJK[j] = make([]float64, n)
		t.epsJK[j] = make([]float64, n)
		t.mJK[j] = make([]float64, n)
		for k := 0; k < n; k++ {
			t.sigmaJK[j][k] = 0.5 * (t.lj[j].Sigma + t.lj[k].Sigma)
			t.epsJK[j][k] = math.Sqrt(t.lj[j].EpsOverK * t.lj[k].EpsOverK)
			t.mJK[j][k] = t.mass[j] * t.mass[k] / (t.mass[j] + t.mass[k])
		}
	}
	return t
}

// Mechanism returns the mechanism the model was built for.
func (t *Model) Mechanism() *chem.Mechanism { return t.mech }

// omega11 is the Neufeld fit to the reduced collision integral
// Omega(1,1)*(T*), used for diffusion.
func omega11(tStar float64) float64 {
	return 1.06036/math.Pow(tStar, 0.15610) +
		0.19300/math.Exp(0.47635*tStar) +
		1.03587/math.Exp(1.52996*tStar) +
		1.76474/math.Exp(3.89411*tStar)
}

// omega22 is the Neufeld fit to Omega(2,2)*(T*), used for viscosity and
// conductivity.
func omega22(tStar float64) float64 {
	return 1.16145/math.Pow(tStar, 0.14874) +
		0.52487/math.Exp(0.77320*tStar) +
		2.16178/math.Exp(2.43787*tStar)
}

// BinaryDiffusion returns D_jk in m^2/s at (T, P) from Chapman–Enskog
// first order:
//
//	D_jk = 3/16 * sqrt(2 pi (kB T)^3 / m_jk) / (P pi sigma_jk^2 Omega11)
func (t *Model) BinaryDiffusion(j, k int, T, P float64) float64 {
	tStar := T / t.epsJK[j][k]
	s := t.sigmaJK[j][k]
	num := 3.0 / 16.0 * math.Sqrt(2*math.Pi*math.Pow(kB*T, 3)/t.mJK[j][k])
	den := P * math.Pi * s * s * omega11(tStar)
	return num / den
}

// Viscosity returns the pure-species dynamic viscosity in Pa s:
//
//	mu_k = 5/16 * sqrt(pi m_k kB T) / (pi sigma_k^2 Omega22)
func (t *Model) Viscosity(k int, T float64) float64 {
	tStar := T / t.lj[k].EpsOverK
	s := t.lj[k].Sigma
	return 5.0 / 16.0 * math.Sqrt(math.Pi*t.mass[k]*kB*T) / (math.Pi * s * s * omega22(tStar))
}

// Conductivity returns the pure-species thermal conductivity in
// W/(m K) using the modified Eucken correction:
//
//	lambda_k = mu_k (cp_k + 5/4 R/W_k)
func (t *Model) Conductivity(k int, T float64) float64 {
	mu := t.Viscosity(k, T)
	sp := &t.mech.Species[k]
	return mu * (sp.CpMass(T) + 1.25*chem.R/sp.W)
}

// MixtureDiffusion fills D (length NumSpecies) with mixture-averaged
// diffusion coefficients in m^2/s:
//
//	D_i = (1 - Y_i) / Σ_{j≠i} X_j / D_ij
//
// For a species that is essentially the whole mixture the self-limit
// D_ii is used. X is mole fractions.
func (t *Model) MixtureDiffusion(T, P float64, X, Y, D []float64) {
	n := t.mech.NumSpecies()
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sum += X[j] / t.BinaryDiffusion(i, j, T, P)
		}
		if sum < 1e-300 {
			D[i] = t.BinaryDiffusion(i, i, T, P)
			continue
		}
		D[i] = (1 - Y[i]) / sum
	}
}

// MixtureConductivity returns the mixture thermal conductivity from the
// Mathur combination rule: lambda = (Σ X λ + 1/Σ(X/λ)) / 2.
func (t *Model) MixtureConductivity(T float64, X []float64) float64 {
	var s1, s2 float64
	for k := range X {
		if X[k] <= 0 {
			continue
		}
		lam := t.Conductivity(k, T)
		s1 += X[k] * lam
		s2 += X[k] / lam
	}
	if s2 == 0 {
		return 0
	}
	return 0.5 * (s1 + 1/s2)
}

// MixtureViscosity returns the mixture viscosity from Wilke's rule.
func (t *Model) MixtureViscosity(T float64, X []float64) float64 {
	n := t.mech.NumSpecies()
	mus := make([]float64, n)
	for k := 0; k < n; k++ {
		mus[k] = t.Viscosity(k, T)
	}
	var out float64
	for i := 0; i < n; i++ {
		if X[i] <= 0 {
			continue
		}
		var denom float64
		for j := 0; j < n; j++ {
			if X[j] <= 0 {
				continue
			}
			wi, wj := t.mech.Species[i].W, t.mech.Species[j].W
			phi := math.Pow(1+math.Sqrt(mus[i]/mus[j])*math.Pow(wj/wi, 0.25), 2) /
				math.Sqrt(8*(1+wi/wj))
			denom += X[j] * phi
		}
		out += X[i] * mus[i] / denom
	}
	return out
}

// Evaluate computes everything the flame solver needs at one state:
// mixture-averaged D_i, conductivity lambda, and density. Y is mass
// fractions; scratch X must have NumSpecies entries.
func (t *Model) Evaluate(T, P float64, Y, X, D []float64) (lambda, rho float64) {
	t.mech.MoleFractions(Y, X)
	t.MixtureDiffusion(T, P, X, Y, D)
	lambda = t.MixtureConductivity(T, X)
	rho = t.mech.Density(P, T, Y)
	return lambda, rho
}
