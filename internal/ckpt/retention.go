package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Retention: the checkpoint directory would otherwise grow without
// bound. The policy keeps the newest KeepLast checkpoints plus every
// KeepEvery-th step, closes that set over delta-chain parents (a kept
// delta is worthless without its base), and deletes the rest — manifest
// first, then any shard no surviving manifest references. Removing the
// manifest first makes the collection atomic from a reader's view: a
// crash mid-GC leaves at worst manifest-less shards, which LatestValid
// already ignores and the next pass sweeps.

// RetentionPolicy selects which durable checkpoints survive a GC pass.
type RetentionPolicy struct {
	// KeepLast keeps the newest K checkpoints; 0 disables retention
	// entirely (everything is kept, GC is a no-op).
	KeepLast int
	// KeepEvery additionally keeps checkpoints whose step is a multiple
	// of N (long-horizon archive points); 0 keeps none beyond KeepLast.
	KeepEvery int
}

// Enabled reports whether a GC pass would ever delete anything.
func (p RetentionPolicy) Enabled() bool { return p.KeepLast > 0 }

// gcManifest is one decoded manifest during a GC pass.
type gcManifest struct {
	name string
	m    *Manifest
}

// GC applies the retention policy to a checkpoint directory. Manifests
// that fail to decode are left untouched (conservative: never delete
// what we cannot understand), and their step's shards are protected by
// filename so a concurrent writer's in-flight checkpoint is never
// gutted. Returns the first filesystem error.
func GC(dir string, p RetentionPolicy) error {
	if !p.Enabled() {
		return nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var decoded []gcManifest
	protected := map[string]bool{} // manifest names kept regardless
	var shardNames []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".manifest":
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				protected[e.Name()] = true
				continue
			}
			m, err := DecodeManifest(data)
			if err != nil {
				protected[e.Name()] = true
				continue
			}
			decoded = append(decoded, gcManifest{name: e.Name(), m: m})
		case ".shard":
			shardNames = append(shardNames, e.Name())
		}
	}
	sort.Slice(decoded, func(a, b int) bool { return decoded[a].m.Step < decoded[b].m.Step })

	// Select survivors: newest KeepLast, every KeepEvery-th step.
	byStep := make(map[int]gcManifest, len(decoded))
	keep := map[string]bool{}
	for i, gm := range decoded {
		byStep[gm.m.Step] = gm
		if i >= len(decoded)-p.KeepLast {
			keep[gm.name] = true
		}
		if p.KeepEvery > 0 && gm.m.Step%p.KeepEvery == 0 {
			keep[gm.name] = true
		}
	}
	// Close over parent chains: a kept delta needs every ancestor down
	// to its full base. Steps strictly decrease along a chain, so this
	// terminates even on adversarial manifests.
	var closeChain func(gm gcManifest)
	closeChain = func(gm gcManifest) {
		for gm.m.Kind == ShardDelta {
			parent, ok := byStep[gm.m.ParentStep]
			if !ok || parent.m.Step >= gm.m.Step || keep[parent.name] {
				return
			}
			keep[parent.name] = true
			gm = parent
		}
	}
	for _, gm := range decoded {
		if keep[gm.name] {
			closeChain(gm)
		}
	}

	// Phase 1: remove superseded manifests (the durability markers).
	var firstErr error
	for _, gm := range decoded {
		if keep[gm.name] {
			continue
		}
		if err := os.Remove(filepath.Join(dir, gm.name)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("ckpt: gc manifest: %w", err)
		}
	}
	// Phase 2: remove shards no surviving manifest references. Shards
	// belonging to an undecodable (protected) manifest's step survive by
	// filename prefix.
	referenced := map[string]bool{}
	for _, gm := range decoded {
		if !keep[gm.name] {
			continue
		}
		for _, s := range gm.m.Shards {
			referenced[s.File] = true
		}
	}
	protectedSteps := map[string]bool{}
	for name := range protected {
		// "ck-%06d.manifest" -> "ck-%06d"
		protectedSteps[name[:len(name)-len(".manifest")]] = true
	}
	for _, name := range shardNames {
		if referenced[name] {
			continue
		}
		// "ck-%06d.rR.shard" -> "ck-%06d"
		base := name
		if i := strings.IndexByte(base, '.'); i >= 0 {
			base = base[:i]
		}
		if protectedSteps[base] {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("ckpt: gc shard: %w", err)
		}
	}
	return firstErr
}
