package ckpt

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ccahydro/internal/amr"
	"ccahydro/internal/exec"
	"ccahydro/internal/mpi"
)

func testShard() *Shard {
	return &Shard{
		Rank:     1,
		NumRanks: 4,
		Snapshot: amr.Snapshot{
			Domain:        amr.NewBox(0, 0, 31, 31),
			Ratio:         2,
			MaxLevels:     3,
			NumRanks:      4,
			NestingBuffer: 1,
			Regrids:       7,
			NextID:        42,
			Patches: []amr.PatchSnapshot{
				{ID: 0, Level: 0, Box: amr.NewBox(0, 0, 31, 15), Owner: 0},
				{ID: 1, Level: 0, Box: amr.NewBox(0, 16, 31, 31), Owner: 1},
				{ID: 40, Level: 1, Box: amr.NewBox(8, 8, 39, 39), Owner: 1},
			},
		},
		Fields: []FieldShard{
			{
				Name:  "U",
				NComp: 2,
				Ghost: 2,
				Names: []string{"rho", "e"},
				Patches: []PatchBlob{
					{ID: 1, Data: []float64{1.5, -2.25, math.Pi, 0, math.Inf(1), math.SmallestNonzeroFloat64}},
					{ID: 40, Data: []float64{3e-300, 7.125}},
				},
			},
			{Name: "phi", NComp: 1, Ghost: 1, Names: []string{"T"},
				Patches: []PatchBlob{{ID: 1, Data: []float64{300.0, 1200.5}}}},
		},
		Meta: Meta{
			Driver:      "flame",
			Step:        17,
			Time:        1.7e-6,
			VirtualTime: 0.125,
			Comm:        mpi.CommStats{Sends: 9, Recvs: 8, WordsSent: 1024, CommSeconds: 0.5, HiddenSeconds: 0.25},
			Counters:    map[string]float64{"cvode.steps": 123, "cvode.rhs": 456},
			Series:      map[string][]float64{"times": {0.1, 0.2}, "circ": {1.5, 1.25}},
		},
	}
}

func TestShardRoundTrip(t *testing.T) {
	want := testShard()
	for _, pool := range []*exec.Pool{nil, exec.Default()} {
		data := EncodeShard(want, pool)
		got, err := DecodeShard(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round-trip mismatch:\nwant %+v\ngot  %+v", want, got)
		}
	}
}

// Encoding must be deterministic (maps are sorted) — the manifest CRC
// depends on it, and so does comparing checkpoints across runs.
func TestEncodeDeterministic(t *testing.T) {
	a := EncodeShard(testShard(), nil)
	b := EncodeShard(testShard(), exec.Default())
	if string(a) != string(b) {
		t.Fatal("serial and pooled encodes differ")
	}
}

// Fuzz-style corruption sweep: truncate at every length and flip a byte
// at every offset; decode must always return an error and never panic.
func TestDecodeShardCorruptionNeverPanics(t *testing.T) {
	data := EncodeShard(testShard(), nil)
	check := func(name string, b []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: DecodeShard panicked: %v", name, r)
			}
		}()
		if _, err := DecodeShard(b); err == nil {
			t.Fatalf("%s: corrupted shard accepted", name)
		}
	}
	for n := 0; n < len(data); n++ {
		check(fmt.Sprintf("truncate@%d", n), data[:n])
	}
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		// A flip inside a float64 payload still decodes to *something*;
		// the CRC is what must catch it. Every flip must error out.
		check(fmt.Sprintf("flip@%d", i), mut)
	}
}

func TestDecodeShardRejectsVersionSkew(t *testing.T) {
	data := EncodeShard(testShard(), nil)
	data[8]++ // version field follows the 8-byte magic
	if _, err := DecodeShard(data); err == nil {
		t.Fatal("version skew accepted")
	}
}

func TestManifestRoundTripAndValidate(t *testing.T) {
	dir := t.TempDir()
	shard := EncodeShard(testShard(), nil)
	shardName := ShardFileName(17, 1)
	if err := os.WriteFile(filepath.Join(dir, shardName), shard, 0o644); err != nil {
		t.Fatal(err)
	}
	size, crc := Digest(shard)
	m := &Manifest{Step: 17, NumRanks: 1, Shards: []ManifestEntry{{File: shardName, Size: size, CRC: crc}}}
	mPath := filepath.Join(dir, ManifestFileName(17))
	if err := os.WriteFile(mPath, EncodeManifest(m), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := ReadManifest(mPath)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("manifest mismatch: want %+v got %+v", m, got)
	}

	path, step, ok := LatestValid(dir)
	if !ok || step != 17 || path != mPath {
		t.Fatalf("LatestValid = (%q, %d, %v), want (%q, 17, true)", path, step, ok, mPath)
	}

	// Damage the shard: the checkpoint must stop validating.
	shard[len(shard)/2] ^= 1
	if err := os.WriteFile(filepath.Join(dir, shardName), shard, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := LatestValid(dir); ok {
		t.Fatal("LatestValid accepted a checkpoint with a damaged shard")
	}
}

// LatestValid must skip a newer-but-broken checkpoint and fall back to
// the older durable one — the crash-mid-write recovery property.
func TestLatestValidFallsBack(t *testing.T) {
	dir := t.TempDir()
	writeCkpt := func(step int, corruptShard bool) {
		shard := EncodeShard(testShard(), nil)
		name := ShardFileName(step, 1)
		size, crc := Digest(shard)
		if corruptShard {
			shard = shard[:len(shard)-3] // torn write
		}
		if err := os.WriteFile(filepath.Join(dir, name), shard, 0o644); err != nil {
			t.Fatal(err)
		}
		m := &Manifest{Step: step, NumRanks: 1, Shards: []ManifestEntry{{File: name, Size: size, CRC: crc}}}
		if err := os.WriteFile(filepath.Join(dir, ManifestFileName(step)), EncodeManifest(m), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeCkpt(5, false)
	writeCkpt(9, true)
	// A manifest with no shard at all (writer died between the two).
	orphan := &Manifest{Step: 12, NumRanks: 1, Shards: []ManifestEntry{{File: ShardFileName(12, 1), Size: 10, CRC: 1}}}
	if err := os.WriteFile(filepath.Join(dir, ManifestFileName(12)), EncodeManifest(orphan), 0o644); err != nil {
		t.Fatal(err)
	}

	path, step, ok := LatestValid(dir)
	if !ok || step != 5 {
		t.Fatalf("LatestValid = (%q, %d, %v), want step 5", path, step, ok)
	}
}

func TestWriterAsyncFlush(t *testing.T) {
	dir := t.TempDir()
	w := NewWriter(nil)
	var want [][]byte
	for i := 0; i < 10; i++ {
		data := []byte(fmt.Sprintf("payload-%d", i))
		want = append(want, data)
		w.Enqueue(filepath.Join(dir, fmt.Sprintf("f%d", i)), data)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i := range want {
		got, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("f%d", i)))
		if err != nil || string(got) != string(want[i]) {
			t.Fatalf("file %d: %q, %v", i, got, err)
		}
	}
	// No .tmp residue.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	// Writer is reusable after Flush.
	w.Enqueue(filepath.Join(dir, "again"), []byte("x"))
	if err := w.Flush(); err != nil {
		t.Fatalf("second Flush: %v", err)
	}
}

func TestWriterReportsErrors(t *testing.T) {
	w := NewWriter(nil)
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// Writing under a regular file must fail (MkdirAll errors).
	w.Enqueue(filepath.Join(blocker, "sub", "f"), []byte("x"))
	if err := w.Flush(); err == nil {
		t.Fatal("Flush swallowed a write error")
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("error not cleared by Flush: %v", err)
	}
}

func TestSuperviseRetriesOnRankFailure(t *testing.T) {
	dir := t.TempDir()
	// Durable checkpoint at step 5.
	shard := EncodeShard(testShard(), nil)
	name := ShardFileName(5, 1)
	size, crc := Digest(shard)
	if err := os.WriteFile(filepath.Join(dir, name), shard, 0o644); err != nil {
		t.Fatal(err)
	}
	m := &Manifest{Step: 5, NumRanks: 1, Shards: []ManifestEntry{{File: name, Size: size, CRC: crc}}}
	mPath := filepath.Join(dir, ManifestFileName(5))
	if err := os.WriteFile(mPath, EncodeManifest(m), 0o644); err != nil {
		t.Fatal(err)
	}

	var restores []string
	calls := 0
	err := Supervise(dir, 3, func(restore string) error {
		restores = append(restores, restore)
		calls++
		if calls < 3 {
			return &mpi.FaultError{Rank: 1, At: "step 7"}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	if calls != 3 {
		t.Fatalf("attempt ran %d times, want 3", calls)
	}
	if restores[0] != "" || restores[1] != mPath || restores[2] != mPath {
		t.Fatalf("restore sequence %q, want [\"\", %q, %q]", restores, mPath, mPath)
	}

	// Non-fault errors propagate immediately.
	calls = 0
	wantErr := errors.New("boom")
	err = Supervise(dir, 3, func(string) error { calls++; return wantErr })
	if !errors.Is(err, wantErr) || calls != 1 {
		t.Fatalf("non-fault error: err=%v calls=%d", err, calls)
	}

	// Retry budget exhausts.
	calls = 0
	err = Supervise(dir, 2, func(string) error { calls++; return &mpi.FaultError{Rank: 0, At: "x"} })
	if !errors.Is(err, mpi.ErrRankFailed) || calls != 3 {
		t.Fatalf("exhausted retries: err=%v calls=%d", err, calls)
	}
}

// writeDurableCkpt deposits a complete single-rank checkpoint (shard +
// manifest) at the given step and returns the manifest path.
func writeDurableCkpt(t *testing.T, dir string, step int) string {
	t.Helper()
	shard := EncodeShard(testShard(), nil)
	name := ShardFileName(step, 0)
	size, crc := Digest(shard)
	if err := os.WriteFile(filepath.Join(dir, name), shard, 0o644); err != nil {
		t.Fatal(err)
	}
	m := &Manifest{Step: step, NumRanks: 1, Shards: []ManifestEntry{{File: name, Size: size, CRC: crc}}}
	m.ID = ManifestID(m)
	mPath := filepath.Join(dir, ManifestFileName(step))
	if err := os.WriteFile(mPath, EncodeManifest(m), 0o644); err != nil {
		t.Fatal(err)
	}
	return mPath
}

// Regression: Supervise must re-read the checkpoint directory before
// EVERY relaunch, not reuse a restore point captured at the previous
// failure. Checkpoints that land during a failed attempt (the async
// writer finishing its last manifest as the job dies) must be honored,
// and checkpoints that rot between attempts must be skipped.
func TestSuperviseReReadsManifestEachRetry(t *testing.T) {
	dir := t.TempDir()
	m5 := writeDurableCkpt(t, dir, 5)

	var restores []string
	calls := 0
	err := Supervise(dir, 5, func(restore string) error {
		restores = append(restores, restore)
		calls++
		switch calls {
		case 1:
			// The dying attempt's writer lands a newer checkpoint.
			writeDurableCkpt(t, dir, 9)
			return &mpi.FaultError{Rank: 1, At: "step 9"}
		case 2:
			// The newest checkpoint rots before the next relaunch.
			if err := os.Truncate(filepath.Join(dir, ShardFileName(9, 0)), 10); err != nil {
				t.Fatal(err)
			}
			return &mpi.FaultError{Rank: 1, At: "step 9 again"}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	m9 := filepath.Join(dir, ManifestFileName(9))
	want := []string{"", m9, m5}
	if len(restores) != len(want) {
		t.Fatalf("restore sequence %q, want %q", restores, want)
	}
	for i := range want {
		if restores[i] != want[i] {
			t.Fatalf("restore[%d] = %q, want %q (full sequence %q)", i, restores[i], want[i], restores)
		}
	}
}
