package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// The manifest is the durability marker. Ranks write their shards
// asynchronously; rank 0 gathers each shard's (size, CRC) digest and
// writes the step's manifest naming all of them. A checkpoint counts as
// durable only when its manifest exists AND every shard it names
// validates against the recorded digest — so a crash mid-write (missing
// shard, short shard, torn bytes) simply invalidates that step and
// recovery falls back to the previous one.
//
//	magic "CCAHMANI" | version u32 | body | crc32(body) u32
//	body := step u64 | nranks u64 | (file string, size u64, crc u32)*
const manifestMagic = "CCAHMANI"

// ManifestEntry names one rank's shard file and its expected digest.
type ManifestEntry struct {
	File string // base name, relative to the manifest's directory
	Size uint64
	CRC  uint32
}

// Manifest indexes one durable checkpoint.
type Manifest struct {
	Step     int
	NumRanks int
	Shards   []ManifestEntry
}

// ShardFileName is the per-rank shard file name for a step.
func ShardFileName(step, rank int) string {
	return fmt.Sprintf("ck-%06d.r%d.shard", step, rank)
}

// ManifestFileName is the manifest file name for a step. The zero-padded
// step keeps lexical order equal to step order.
func ManifestFileName(step int) string {
	return fmt.Sprintf("ck-%06d.manifest", step)
}

// Digest computes the (size, CRC) pair recorded in manifests.
func Digest(data []byte) (uint64, uint32) {
	return uint64(len(data)), crc32.ChecksumIEEE(data)
}

// EncodeManifest serializes a manifest.
func EncodeManifest(m *Manifest) []byte {
	var body encoder
	body.u64(uint64(m.Step))
	body.u64(uint64(m.NumRanks))
	for _, s := range m.Shards {
		body.str(s.File)
		body.u64(s.Size)
		body.u32(s.CRC)
	}
	var e encoder
	e.b = append(e.b, manifestMagic...)
	e.u32(FormatVersion)
	e.b = append(e.b, body.b...)
	e.u32(crc32.ChecksumIEEE(body.b))
	return e.b
}

// DecodeManifest parses and CRC-validates a manifest.
func DecodeManifest(b []byte) (*Manifest, error) {
	if len(b) < len(manifestMagic)+8 || string(b[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("ckpt: bad manifest magic")
	}
	d := &decoder{b: b, off: len(manifestMagic)}
	ver, err := d.u32()
	if err != nil {
		return nil, err
	}
	if ver != FormatVersion {
		return nil, fmt.Errorf("ckpt: manifest version %d, this build reads %d", ver, FormatVersion)
	}
	body := b[d.off : len(b)-4]
	wantCRC := binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return nil, fmt.Errorf("ckpt: manifest CRC mismatch (got %08x want %08x)", got, wantCRC)
	}
	d = &decoder{b: body}
	m := &Manifest{}
	if m.Step, err = d.i64(); err != nil {
		return nil, err
	}
	if m.NumRanks, err = d.i64(); err != nil {
		return nil, err
	}
	if m.Step < 0 || m.NumRanks < 1 || m.NumRanks > maxCount {
		return nil, fmt.Errorf("ckpt: manifest header step=%d ranks=%d out of range", m.Step, m.NumRanks)
	}
	for d.remaining() > 0 {
		var s ManifestEntry
		if s.File, err = d.str(); err != nil {
			return nil, err
		}
		if s.Size, err = d.u64(); err != nil {
			return nil, err
		}
		if s.CRC, err = d.u32(); err != nil {
			return nil, err
		}
		m.Shards = append(m.Shards, s)
	}
	if len(m.Shards) != m.NumRanks {
		return nil, fmt.Errorf("ckpt: manifest lists %d shards for %d ranks", len(m.Shards), m.NumRanks)
	}
	return m, nil
}

// Validate checks that every shard the manifest names exists next to it
// with the recorded size and CRC. path is the manifest file path.
func (m *Manifest) Validate(path string) error {
	dir := filepath.Dir(path)
	for _, s := range m.Shards {
		data, err := os.ReadFile(filepath.Join(dir, s.File))
		if err != nil {
			return fmt.Errorf("ckpt: manifest %s: %w", filepath.Base(path), err)
		}
		size, crc := Digest(data)
		if size != s.Size || crc != s.CRC {
			return fmt.Errorf("ckpt: shard %s digest mismatch (size %d/%d crc %08x/%08x)",
				s.File, size, s.Size, crc, s.CRC)
		}
	}
	return nil
}

// ReadManifest loads, decodes, and fully validates one manifest.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := DecodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	if err := m.Validate(path); err != nil {
		return nil, err
	}
	return m, nil
}

// LatestValid scans dir for the newest checkpoint whose manifest and
// all named shards validate, skipping damaged or incomplete ones. It
// returns the manifest path and step, or ok=false when none survives.
func LatestValid(dir string) (path string, step int, ok bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, false
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".manifest" {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		p := filepath.Join(dir, name)
		m, err := ReadManifest(p)
		if err != nil {
			continue
		}
		return p, m.Step, true
	}
	return "", 0, false
}
