package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// The manifest is the durability marker. Ranks write their shards
// asynchronously; rank 0 gathers each shard's (size, CRC) digest and
// writes the step's manifest naming all of them. A checkpoint counts as
// durable only when its manifest exists AND every shard it names
// validates against the recorded digest — so a crash mid-write (missing
// shard, short shard, torn bytes) simply invalidates that step and
// recovery falls back to the previous one. Incremental checkpoints add
// chain linkage: a delta manifest names its parent checkpoint by
// content-derived ID and step, and a delta counts as restorable only
// when the whole chain down to a full base validates (ResolveChain).
//
//	magic "CCAHMANI" | version u32 | body | crc32(body) u32
//	v1 body := step u64 | nranks u64 | entry*
//	v2 body := step u64 | nranks u64 | kind u64 | parentStep u64(two's complement)
//	           | id string | parentID string | entry*
//	entry    := file string | size u64 | crc u32
const manifestMagic = "CCAHMANI"

// ManifestEntry names one rank's shard file and its expected digest.
type ManifestEntry struct {
	File string // base name, relative to the manifest's directory
	Size uint64
	CRC  uint32
}

// Manifest indexes one durable checkpoint. ID is derived from the shard
// digests (see ManifestID); ParentID/ParentStep link a delta to the
// checkpoint it overlays and are meaningful only when Kind==ShardDelta
// (ParentStep is -1 otherwise; v1 manifests decode as full with no ID).
type Manifest struct {
	Step       int
	NumRanks   int
	Kind       ShardKind
	ID         string
	ParentID   string
	ParentStep int
	Shards     []ManifestEntry
}

// ShardFileName is the per-rank shard file name for a step.
func ShardFileName(step, rank int) string {
	return fmt.Sprintf("ck-%06d.r%d.shard", step, rank)
}

// ManifestFileName is the manifest file name for a step. The zero-padded
// step keeps lexical order equal to step order.
func ManifestFileName(step int) string {
	return fmt.Sprintf("ck-%06d.manifest", step)
}

// Digest computes the (size, CRC) pair recorded in manifests.
func Digest(data []byte) (uint64, uint32) {
	return uint64(len(data)), crc32.ChecksumIEEE(data)
}

// ManifestID derives the checkpoint's content ID from its step, rank
// count, and shard digests — every rank computes the same value from
// the same durable bytes, with no extra communication.
func ManifestID(m *Manifest) string {
	var e encoder
	e.u64(uint64(m.Step))
	e.u64(uint64(m.NumRanks))
	for _, s := range m.Shards {
		e.str(s.File)
		e.u64(s.Size)
		e.u32(s.CRC)
	}
	return fmt.Sprintf("%06d-%08x", m.Step, crc32.ChecksumIEEE(e.b))
}

// EncodeManifest serializes a manifest.
func EncodeManifest(m *Manifest) []byte {
	var body encoder
	body.u64(uint64(m.Step))
	body.u64(uint64(m.NumRanks))
	body.u64(uint64(m.Kind))
	body.i64(m.ParentStep)
	body.str(m.ID)
	body.str(m.ParentID)
	for _, s := range m.Shards {
		body.str(s.File)
		body.u64(s.Size)
		body.u32(s.CRC)
	}
	var e encoder
	e.b = append(e.b, manifestMagic...)
	e.u32(FormatVersion)
	e.b = append(e.b, body.b...)
	e.u32(crc32.ChecksumIEEE(body.b))
	return e.b
}

// DecodeManifest parses and CRC-validates a manifest (version 1 or 2).
func DecodeManifest(b []byte) (*Manifest, error) {
	if len(b) < len(manifestMagic)+8 || string(b[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("ckpt: bad manifest magic")
	}
	d := &decoder{b: b, off: len(manifestMagic)}
	ver, err := d.u32()
	if err != nil {
		return nil, err
	}
	if ver < MinFormatVersion || ver > FormatVersion {
		return nil, fmt.Errorf("ckpt: manifest version %d, this build reads %d..%d", ver, MinFormatVersion, FormatVersion)
	}
	body := b[d.off : len(b)-4]
	wantCRC := binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return nil, fmt.Errorf("ckpt: manifest CRC mismatch (got %08x want %08x)", got, wantCRC)
	}
	d = &decoder{b: body}
	m := &Manifest{ParentStep: -1}
	if m.Step, err = d.i64(); err != nil {
		return nil, err
	}
	if m.NumRanks, err = d.i64(); err != nil {
		return nil, err
	}
	if ver >= 2 {
		k, err := d.u64()
		if err != nil {
			return nil, err
		}
		if k > uint64(ShardDelta) {
			return nil, fmt.Errorf("ckpt: manifest kind %d out of range", k)
		}
		m.Kind = ShardKind(k)
		if m.ParentStep, err = d.i64(); err != nil {
			return nil, err
		}
		if m.ID, err = d.str(); err != nil {
			return nil, err
		}
		if m.ParentID, err = d.str(); err != nil {
			return nil, err
		}
	}
	if m.Step < 0 || m.NumRanks < 1 || m.NumRanks > maxCount {
		return nil, fmt.Errorf("ckpt: manifest header step=%d ranks=%d out of range", m.Step, m.NumRanks)
	}
	if m.Kind == ShardDelta {
		// The anti-cycle invariant: a delta's parent is strictly older,
		// so any chain walk strictly decreases and must terminate.
		if m.ParentStep < 0 || m.ParentStep >= m.Step {
			return nil, fmt.Errorf("ckpt: delta manifest step %d has invalid parent step %d", m.Step, m.ParentStep)
		}
		if m.ParentID == "" {
			return nil, fmt.Errorf("ckpt: delta manifest step %d has no parent ID", m.Step)
		}
	}
	for d.remaining() > 0 {
		var s ManifestEntry
		if s.File, err = d.str(); err != nil {
			return nil, err
		}
		if s.Size, err = d.u64(); err != nil {
			return nil, err
		}
		if s.CRC, err = d.u32(); err != nil {
			return nil, err
		}
		m.Shards = append(m.Shards, s)
	}
	if len(m.Shards) != m.NumRanks {
		return nil, fmt.Errorf("ckpt: manifest lists %d shards for %d ranks", len(m.Shards), m.NumRanks)
	}
	return m, nil
}

// Validate checks that every shard the manifest names exists next to it
// with the recorded size and CRC. path is the manifest file path.
func (m *Manifest) Validate(path string) error {
	dir := filepath.Dir(path)
	for _, s := range m.Shards {
		data, err := os.ReadFile(filepath.Join(dir, s.File))
		if err != nil {
			return fmt.Errorf("ckpt: manifest %s: %w", filepath.Base(path), err)
		}
		size, crc := Digest(data)
		if size != s.Size || crc != s.CRC {
			return fmt.Errorf("ckpt: shard %s digest mismatch (size %d/%d crc %08x/%08x)",
				s.File, size, s.Size, crc, s.CRC)
		}
	}
	return nil
}

// ReadManifest loads, decodes, and fully validates one manifest.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := DecodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	if err := m.Validate(path); err != nil {
		return nil, err
	}
	return m, nil
}

// ChainLink is one checkpoint of a resolved delta chain.
type ChainLink struct {
	Path     string
	Manifest *Manifest
}

// ResolveChain validates the checkpoint at path and every ancestor down
// to its full base: each link's manifest and shards must validate, each
// delta's recorded ParentID must match the parent's content ID, and
// parent steps must strictly decrease (which makes cycles impossible to
// express). The result is ordered base first, target last. Any torn,
// missing, mismatched, or dangling link fails the whole chain.
func ResolveChain(path string) ([]ChainLink, error) {
	var rev []ChainLink
	dir := filepath.Dir(path)
	for {
		m, err := ReadManifest(path)
		if err != nil {
			return nil, err
		}
		if len(rev) > 0 {
			child := rev[len(rev)-1].Manifest
			if m.Step != child.ParentStep {
				return nil, fmt.Errorf("ckpt: chain link %s is step %d, child expected parent step %d",
					filepath.Base(path), m.Step, child.ParentStep)
			}
			if id := ManifestID(m); id != child.ParentID {
				return nil, fmt.Errorf("ckpt: chain link %s has ID %s, child expected parent %s",
					filepath.Base(path), id, child.ParentID)
			}
			if m.NumRanks != child.NumRanks {
				return nil, fmt.Errorf("ckpt: chain link %s was written by %d ranks, child by %d",
					filepath.Base(path), m.NumRanks, child.NumRanks)
			}
		}
		rev = append(rev, ChainLink{Path: path, Manifest: m})
		if m.Kind != ShardDelta {
			break
		}
		// DecodeManifest guarantees ParentStep < Step for deltas, so this
		// walk strictly descends and terminates.
		path = filepath.Join(dir, ManifestFileName(m.ParentStep))
	}
	chain := make([]ChainLink, len(rev))
	for i, l := range rev {
		chain[len(rev)-1-i] = l
	}
	return chain, nil
}

// LatestValid scans dir for the newest checkpoint whose manifest, all
// named shards, and (for incremental checkpoints) the entire delta
// chain down to a full base validate, skipping damaged or incomplete
// ones. It returns the manifest path and step, or ok=false when none
// survives.
func LatestValid(dir string) (path string, step int, ok bool) {
	return LatestValidAtMost(dir, int(^uint(0)>>1))
}

// LatestValidAtMost is LatestValid restricted to checkpoints at step
// maxStep or earlier — the probe a content-addressed run store uses to
// find the longest shared checkpoint prefix a shorter resubmission can
// legally restart from (a checkpoint past the requested run length
// describes state the shorter run never reaches).
func LatestValidAtMost(dir string, maxStep int) (path string, step int, ok bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, false
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".manifest" {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		p := filepath.Join(dir, name)
		chain, err := ResolveChain(p)
		if err != nil {
			continue
		}
		if s := chain[len(chain)-1].Manifest.Step; s <= maxStep {
			return p, s, true
		}
	}
	return "", 0, false
}
