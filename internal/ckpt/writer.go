package ckpt

import (
	"os"
	"path/filepath"
	"sync"
	"time"

	"ccahydro/internal/obs"
)

// Writer flushes encoded checkpoint buffers to disk on a background
// goroutine, so the simulation's next step overlaps the IO. Each file
// lands via write-to-temp + rename: a reader never observes a partially
// written shard or manifest, and a crash mid-write leaves only a .tmp
// the validator ignores.
type Writer struct {
	mu      sync.Mutex
	ch      chan writeReq
	done    chan struct{}
	err     error
	pending int

	// Metrics (nil-safe): write latency, bytes, and file counts.
	writeSec   *obs.Histogram
	bytesTotal *obs.Counter
	filesTotal *obs.Counter
}

type writeReq struct {
	path string
	data []byte
	fn   func() error
}

// NewWriter creates an idle writer. o may be nil (no metrics).
func NewWriter(o *obs.Obs) *Writer {
	w := &Writer{}
	if o != nil {
		reg := o.Metrics()
		w.writeSec = reg.Histogram("ckpt_write_seconds")
		w.bytesTotal = reg.Counter("ckpt_bytes_total")
		w.filesTotal = reg.Counter("ckpt_files_total")
	}
	return w
}

// Enqueue schedules one file write. The writer takes ownership of data.
// The background goroutine starts lazily on first use.
func (w *Writer) Enqueue(path string, data []byte) {
	w.enqueue(writeReq{path: path, data: data})
}

// EnqueueFunc schedules fn on the writer's FIFO: it runs on the
// background goroutine strictly after every previously enqueued write
// has landed. The retention GC rides here so a checkpoint's manifest is
// durable before any collection pass can consider it.
func (w *Writer) EnqueueFunc(fn func() error) {
	w.enqueue(writeReq{fn: fn})
}

func (w *Writer) enqueue(req writeReq) {
	w.mu.Lock()
	if w.ch == nil {
		w.ch = make(chan writeReq, 64)
		w.done = make(chan struct{})
		go w.drain(w.ch, w.done)
	}
	w.pending++
	ch := w.ch
	w.mu.Unlock()
	ch <- req
}

func (w *Writer) drain(ch chan writeReq, done chan struct{}) {
	defer close(done)
	for req := range ch {
		var err error
		if req.fn != nil {
			err = req.fn()
		} else {
			err = w.writeOne(req)
		}
		w.mu.Lock()
		if err != nil && w.err == nil {
			w.err = err
		}
		w.pending--
		w.mu.Unlock()
	}
}

func (w *Writer) writeOne(req writeReq) error {
	t0 := time.Now()
	tmp := req.path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(req.path), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, req.data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, req.path); err != nil {
		os.Remove(tmp)
		return err
	}
	if w.writeSec != nil {
		w.writeSec.ObserveNs(time.Since(t0).Nanoseconds())
		w.bytesTotal.Add(uint64(len(req.data)))
		w.filesTotal.Inc()
	}
	return nil
}

// Flush waits for every enqueued write to land and returns the first
// error seen since the previous Flush. The writer remains usable.
func (w *Writer) Flush() error {
	w.mu.Lock()
	ch, done := w.ch, w.done
	w.ch, w.done = nil, nil
	w.mu.Unlock()
	if ch != nil {
		close(ch)
		<-done
	}
	w.mu.Lock()
	err := w.err
	w.err = nil
	w.mu.Unlock()
	return err
}
