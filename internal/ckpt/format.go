// Package ckpt implements the checkpoint/restart subsystem: a
// versioned, self-describing binary format capturing the complete
// simulation state — AMR hierarchy geometry, every registered field's
// per-patch data (ghosts included), solver counters, driver phase, and
// the MPI virtual clock — plus the durability machinery around it
// (per-rank shards, a rank-0 manifest validating them, an asynchronous
// writer, and a supervised retry loop for fault recovery).
//
// Layout of one shard file (format version 2):
//
//	magic "CCAHCKPT" | version u32 | section*
//	section := kind u32 | flags u32 | ulen u64 | clen u64 | stored | crc32(stored) u32
//
// flags bit 0 marks a gzip-compressed section: stored is the gzip
// stream of the raw payload (clen bytes on disk, ulen bytes raw). The
// CRC always covers the stored bytes, so manifests validate shards
// without decompressing them. Version-1 shards (no flags/clen words,
// payload always raw) remain fully readable.
//
// Sections appear in order: one header, one hierarchy, one field per
// registered variable, one meta. A *full* shard carries every locally
// owned patch; a *delta* shard (header kind 1) carries only the patches
// dirtied since the parent checkpoint it references. All integers are
// little-endian; signed values travel as two's-complement u64; floats
// travel as IEEE-754 bit patterns (math.Float64bits), which is what
// makes restores bit-exact. Every decode path is bounds-checked and
// returns an error — corrupt or truncated input never panics.
package ckpt

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"ccahydro/internal/amr"
	"ccahydro/internal/exec"
	"ccahydro/internal/mpi"
)

// FormatVersion is the version this build writes; decoders accept every
// version back to MinFormatVersion.
const (
	FormatVersion    = 2
	MinFormatVersion = 1
)

const shardMagic = "CCAHCKPT"

// Section kinds.
const (
	secHeader uint32 = iota + 1
	secHierarchy
	secField
	secMeta
)

// Section flags (v2 framing).
const sectionGzip uint32 = 1 << 0

// ShardKind distinguishes full checkpoints from incremental deltas.
type ShardKind int

const (
	// ShardFull carries every locally owned patch of every field.
	ShardFull ShardKind = iota
	// ShardDelta carries only patches dirtied since the parent
	// checkpoint; restore overlays it onto the materialized parent.
	ShardDelta
)

func (k ShardKind) String() string {
	if k == ShardDelta {
		return "delta"
	}
	return "full"
}

// Decode sanity caps: a corrupt length field must fail fast instead of
// driving a multi-gigabyte allocation.
const (
	maxStringLen  = 1 << 20
	maxCount      = 1 << 24
	maxWords      = 1 << 31
	maxSectionLen = 1 << 32
)

// PatchBlob is one patch's complete backing array (component-major over
// the grown box — ghosts included, so restore needs no exchange).
type PatchBlob struct {
	ID   int
	Data []float64
}

// FieldShard is one registered variable's locally owned data.
type FieldShard struct {
	Name    string
	NComp   int
	Ghost   int
	Names   []string
	Patches []PatchBlob
}

// Meta carries the driver's phase position and everything scalar:
// counters (solver statistics), series (accumulating diagnostics like
// the shock driver's circulation history), simulation time, and the
// rank's virtual clock and traffic stats.
type Meta struct {
	Driver      string
	Step        int
	Time        float64
	Counters    map[string]float64
	Series      map[string][]float64
	VirtualTime float64
	Comm        mpi.CommStats
}

// Shard is one rank's checkpoint state: complete for ShardFull, only
// the dirtied patches for ShardDelta. ParentStep is the step of the
// checkpoint a delta overlays (meaningful only when Kind==ShardDelta;
// -1 otherwise).
type Shard struct {
	Rank       int
	NumRanks   int
	Kind       ShardKind
	ParentStep int
	Snapshot   amr.Snapshot
	Fields     []FieldShard
	Meta       Meta
}

// ---- encoding ----

type encoder struct{ b []byte }

func (e *encoder) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) i64(v int)    { e.u64(uint64(int64(v))) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *encoder) floats(v []float64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}
func (e *encoder) box(b amr.Box) {
	e.i64(b.Lo[0])
	e.i64(b.Lo[1])
	e.i64(b.Hi[0])
	e.i64(b.Hi[1])
}

// section appends one v2 framed section. When compress is set and the
// gzip stream comes out smaller, the payload is stored compressed
// (flags bit 0); otherwise it is stored raw. The CRC covers the stored
// bytes either way.
func (e *encoder) section(kind uint32, payload []byte, compress bool) {
	stored := payload
	var flags uint32
	if compress && len(payload) >= 128 {
		if gz := gzipBytes(payload); len(gz) < len(payload) {
			stored = gz
			flags = sectionGzip
		}
	}
	e.u32(kind)
	e.u32(flags)
	e.u64(uint64(len(payload)))
	e.u64(uint64(len(stored)))
	e.b = append(e.b, stored...)
	e.u32(crc32.ChecksumIEEE(stored))
}

// gzipBytes compresses deterministically (fixed level, zero header).
func gzipBytes(raw []byte) []byte {
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	zw.Write(raw) //nolint:errcheck // bytes.Buffer cannot fail
	zw.Close()    //nolint:errcheck
	return buf.Bytes()
}

// gunzipBytes inflates a stored section, enforcing the recorded raw
// length: any mismatch or stream damage is an error, never a panic.
func gunzipBytes(stored []byte, ulen int) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(stored))
	if err != nil {
		return nil, fmt.Errorf("ckpt: gzip section: %w", err)
	}
	// Cap the up-front allocation: ulen is untrusted until the stream
	// actually inflates to it, and a corrupt header must not drive a
	// multi-gigabyte make. append grows the honest case just fine.
	prealloc := ulen
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	raw := make([]byte, 0, prealloc)
	lim := io.LimitReader(zr, int64(ulen)+1)
	buf := make([]byte, 32*1024)
	for {
		n, err := lim.Read(buf)
		raw = append(raw, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ckpt: gzip section: %w", err)
		}
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("ckpt: gzip section: %w", err)
	}
	if len(raw) != ulen {
		return nil, fmt.Errorf("ckpt: gzip section inflated to %d bytes, header says %d", len(raw), ulen)
	}
	return raw, nil
}

func encodeHierarchy(s amr.Snapshot) []byte {
	var e encoder
	e.box(s.Domain)
	e.i64(s.Ratio)
	e.i64(s.MaxLevels)
	e.i64(s.NumRanks)
	e.i64(s.NestingBuffer)
	e.i64(s.Regrids)
	e.i64(s.NextID)
	e.u64(uint64(len(s.Patches)))
	for _, p := range s.Patches {
		e.i64(p.ID)
		e.i64(p.Level)
		e.box(p.Box)
		e.i64(p.Owner)
	}
	return e.b
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func encodeMeta(m *Meta) []byte {
	var e encoder
	e.str(m.Driver)
	e.i64(m.Step)
	e.f64(m.Time)
	e.f64(m.VirtualTime)
	e.i64(m.Comm.Sends)
	e.i64(m.Comm.Recvs)
	e.i64(m.Comm.WordsSent)
	e.f64(m.Comm.CommSeconds)
	e.f64(m.Comm.HiddenSeconds)
	e.u64(uint64(len(m.Counters)))
	for _, k := range sortedKeys(m.Counters) {
		e.str(k)
		e.f64(m.Counters[k])
	}
	e.u64(uint64(len(m.Series)))
	for _, k := range sortedKeys(m.Series) {
		e.str(k)
		e.floats(m.Series[k])
	}
	return e.b
}

// encodeField lays out one field section payload. The patch headers are
// written serially; the bulk float64 payloads — the overwhelming
// majority of the bytes — are bit-packed in parallel on the exec pool.
func encodeField(f *FieldShard, pool *exec.Pool) []byte {
	var e encoder
	e.str(f.Name)
	e.i64(f.NComp)
	e.i64(f.Ghost)
	e.u64(uint64(len(f.Names)))
	for _, n := range f.Names {
		e.str(n)
	}
	e.u64(uint64(len(f.Patches)))
	// Fixed per-patch layout (id, nwords, data) lets us precompute each
	// patch's data offset and fill them concurrently.
	offsets := make([]int, len(f.Patches))
	off := len(e.b)
	for i, p := range f.Patches {
		off += 16 // id + nwords
		offsets[i] = off
		off += 8 * len(p.Data)
	}
	buf := make([]byte, off)
	copy(buf, e.b)
	for i, p := range f.Patches {
		hdr := offsets[i] - 16
		binary.LittleEndian.PutUint64(buf[hdr:], uint64(int64(p.ID)))
		binary.LittleEndian.PutUint64(buf[hdr+8:], uint64(len(p.Data)))
	}
	pack := func(i int) {
		p := f.Patches[i]
		at := offsets[i]
		for _, x := range p.Data {
			binary.LittleEndian.PutUint64(buf[at:], math.Float64bits(x))
			at += 8
		}
	}
	if pool != nil && len(f.Patches) > 1 {
		pool.ForEach(len(f.Patches), func(_ int, i int) { pack(i) })
	} else {
		for i := range f.Patches {
			pack(i)
		}
	}
	return buf
}

// EncodeShard serializes one rank's checkpoint state uncompressed. When
// pool is non-nil the per-patch field payloads are packed in parallel.
func EncodeShard(s *Shard, pool *exec.Pool) []byte {
	return EncodeShardOpts(s, pool, false)
}

// EncodeShardOpts serializes one rank's checkpoint state, optionally
// gzip-compressing section payloads (a section is stored raw when
// compression does not shrink it).
func EncodeShardOpts(s *Shard, pool *exec.Pool, compress bool) []byte {
	var hdr encoder
	hdr.i64(s.Rank)
	hdr.i64(s.NumRanks)
	hdr.u64(uint64(s.Kind))
	hdr.i64(s.ParentStep)

	var e encoder
	e.b = append(e.b, shardMagic...)
	e.u32(FormatVersion)
	e.section(secHeader, hdr.b, false)
	e.section(secHierarchy, encodeHierarchy(s.Snapshot), compress)
	for i := range s.Fields {
		e.section(secField, encodeField(&s.Fields[i], pool), compress)
	}
	e.section(secMeta, encodeMeta(&s.Meta), compress)
	return e.b
}

// ---- decoding ----

type decoder struct {
	b   []byte
	off int
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

func (d *decoder) u32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, fmt.Errorf("ckpt: truncated at offset %d (need u32)", d.off)
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, fmt.Errorf("ckpt: truncated at offset %d (need u64)", d.off)
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) i64() (int, error) {
	v, err := d.u64()
	return int(int64(v)), err
}

func (d *decoder) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *decoder) str() (string, error) {
	n, err := d.u64()
	if err != nil {
		return "", err
	}
	if n > maxStringLen || int(n) > d.remaining() {
		return "", fmt.Errorf("ckpt: string length %d at offset %d out of bounds", n, d.off)
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) floats() ([]float64, error) {
	n, err := d.u64()
	if err != nil {
		return nil, err
	}
	if n > maxWords || int(n)*8 > d.remaining() {
		return nil, fmt.Errorf("ckpt: float array length %d at offset %d out of bounds", n, d.off)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
		d.off += 8
	}
	return out, nil
}

func (d *decoder) box() (amr.Box, error) {
	var b amr.Box
	var err error
	if b.Lo[0], err = d.i64(); err != nil {
		return b, err
	}
	if b.Lo[1], err = d.i64(); err != nil {
		return b, err
	}
	if b.Hi[0], err = d.i64(); err != nil {
		return b, err
	}
	b.Hi[1], err = d.i64()
	return b, err
}

// count reads an element count and rejects anything implausible before
// an allocation happens.
func (d *decoder) count(what string) (int, error) {
	n, err := d.u64()
	if err != nil {
		return 0, err
	}
	if n > maxCount {
		return 0, fmt.Errorf("ckpt: %s count %d exceeds sanity cap", what, n)
	}
	return int(n), nil
}

func decodeHierarchy(payload []byte) (amr.Snapshot, error) {
	d := &decoder{b: payload}
	var s amr.Snapshot
	var err error
	if s.Domain, err = d.box(); err != nil {
		return s, err
	}
	for _, dst := range []*int{&s.Ratio, &s.MaxLevels, &s.NumRanks, &s.NestingBuffer, &s.Regrids, &s.NextID} {
		if *dst, err = d.i64(); err != nil {
			return s, err
		}
	}
	n, err := d.count("patch")
	if err != nil {
		return s, err
	}
	s.Patches = make([]amr.PatchSnapshot, n)
	for i := range s.Patches {
		p := &s.Patches[i]
		if p.ID, err = d.i64(); err != nil {
			return s, err
		}
		if p.Level, err = d.i64(); err != nil {
			return s, err
		}
		if p.Box, err = d.box(); err != nil {
			return s, err
		}
		if p.Owner, err = d.i64(); err != nil {
			return s, err
		}
	}
	if d.remaining() != 0 {
		return s, fmt.Errorf("ckpt: %d trailing bytes in hierarchy section", d.remaining())
	}
	return s, nil
}

func decodeField(payload []byte) (FieldShard, error) {
	d := &decoder{b: payload}
	var f FieldShard
	var err error
	if f.Name, err = d.str(); err != nil {
		return f, err
	}
	if f.NComp, err = d.i64(); err != nil {
		return f, err
	}
	if f.Ghost, err = d.i64(); err != nil {
		return f, err
	}
	if f.NComp < 0 || f.NComp > maxCount || f.Ghost < 0 || f.Ghost > maxCount {
		return f, fmt.Errorf("ckpt: field %q has invalid shape (ncomp=%d ghost=%d)", f.Name, f.NComp, f.Ghost)
	}
	nNames, err := d.count("component name")
	if err != nil {
		return f, err
	}
	f.Names = make([]string, nNames)
	for i := range f.Names {
		if f.Names[i], err = d.str(); err != nil {
			return f, err
		}
	}
	nPatches, err := d.count("patch blob")
	if err != nil {
		return f, err
	}
	f.Patches = make([]PatchBlob, nPatches)
	for i := range f.Patches {
		if f.Patches[i].ID, err = d.i64(); err != nil {
			return f, err
		}
		if f.Patches[i].Data, err = d.floats(); err != nil {
			return f, err
		}
	}
	if d.remaining() != 0 {
		return f, fmt.Errorf("ckpt: %d trailing bytes in field section", d.remaining())
	}
	return f, nil
}

func decodeMeta(payload []byte) (Meta, error) {
	d := &decoder{b: payload}
	var m Meta
	var err error
	if m.Driver, err = d.str(); err != nil {
		return m, err
	}
	if m.Step, err = d.i64(); err != nil {
		return m, err
	}
	if m.Time, err = d.f64(); err != nil {
		return m, err
	}
	if m.VirtualTime, err = d.f64(); err != nil {
		return m, err
	}
	if m.Comm.Sends, err = d.i64(); err != nil {
		return m, err
	}
	if m.Comm.Recvs, err = d.i64(); err != nil {
		return m, err
	}
	if m.Comm.WordsSent, err = d.i64(); err != nil {
		return m, err
	}
	if m.Comm.CommSeconds, err = d.f64(); err != nil {
		return m, err
	}
	if m.Comm.HiddenSeconds, err = d.f64(); err != nil {
		return m, err
	}
	nCounters, err := d.count("counter")
	if err != nil {
		return m, err
	}
	m.Counters = make(map[string]float64, nCounters)
	for i := 0; i < nCounters; i++ {
		k, err := d.str()
		if err != nil {
			return m, err
		}
		if m.Counters[k], err = d.f64(); err != nil {
			return m, err
		}
	}
	nSeries, err := d.count("series")
	if err != nil {
		return m, err
	}
	m.Series = make(map[string][]float64, nSeries)
	for i := 0; i < nSeries; i++ {
		k, err := d.str()
		if err != nil {
			return m, err
		}
		if m.Series[k], err = d.floats(); err != nil {
			return m, err
		}
	}
	if d.remaining() != 0 {
		return m, fmt.Errorf("ckpt: %d trailing bytes in meta section", d.remaining())
	}
	return m, nil
}

// readSection consumes one framed section for the given format version
// and returns (kind, raw payload). Version 1 frames are kind|len|
// payload|crc; version 2 adds flags and the stored length, and inflates
// gzip payloads after the CRC check.
func readSection(d *decoder, ver uint32) (uint32, []byte, error) {
	kind, err := d.u32()
	if err != nil {
		return 0, nil, err
	}
	var flags uint32
	ulen := uint64(0)
	if ver >= 2 {
		if flags, err = d.u32(); err != nil {
			return 0, nil, err
		}
		if flags&^sectionGzip != 0 {
			return 0, nil, fmt.Errorf("ckpt: section %d has unknown flags %#x", kind, flags)
		}
		if ulen, err = d.u64(); err != nil {
			return 0, nil, err
		}
		if ulen > maxSectionLen {
			return 0, nil, fmt.Errorf("ckpt: section %d raw length %d exceeds sanity cap", kind, ulen)
		}
	}
	n, err := d.u64()
	if err != nil {
		return 0, nil, err
	}
	if int64(n) < 0 || int(n) > d.remaining()-4 {
		return 0, nil, fmt.Errorf("ckpt: section %d length %d out of bounds at offset %d", kind, n, d.off)
	}
	stored := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	wantCRC, err := d.u32()
	if err != nil {
		return 0, nil, err
	}
	if got := crc32.ChecksumIEEE(stored); got != wantCRC {
		return 0, nil, fmt.Errorf("ckpt: section %d CRC mismatch (got %08x want %08x)", kind, got, wantCRC)
	}
	payload := stored
	if ver >= 2 {
		if flags&sectionGzip != 0 {
			if payload, err = gunzipBytes(stored, int(ulen)); err != nil {
				return 0, nil, fmt.Errorf("ckpt: section %d: %w", kind, err)
			}
		} else if uint64(len(stored)) != ulen {
			return 0, nil, fmt.Errorf("ckpt: section %d stored length %d != raw length %d without compression",
				kind, len(stored), ulen)
		}
	}
	return kind, payload, nil
}

// DecodeShard parses and validates one shard file's contents — this
// build's version 2 or the original version 1. Sections are
// CRC-verified individually; any structural damage — bad magic, version
// skew, truncation, bit flips, corrupt gzip frames, out-of-range counts
// — returns a descriptive error.
func DecodeShard(b []byte) (*Shard, error) {
	d := &decoder{b: b}
	if d.remaining() < len(shardMagic) || string(b[:len(shardMagic)]) != shardMagic {
		return nil, fmt.Errorf("ckpt: bad shard magic")
	}
	d.off = len(shardMagic)
	ver, err := d.u32()
	if err != nil {
		return nil, err
	}
	if ver < MinFormatVersion || ver > FormatVersion {
		return nil, fmt.Errorf("ckpt: format version %d, this build reads %d..%d", ver, MinFormatVersion, FormatVersion)
	}
	s := &Shard{Rank: -1, ParentStep: -1}
	var haveHeader, haveHierarchy, haveMeta bool
	for d.remaining() > 0 {
		kind, payload, err := readSection(d, ver)
		if err != nil {
			return nil, err
		}
		switch kind {
		case secHeader:
			hd := &decoder{b: payload}
			if s.Rank, err = hd.i64(); err != nil {
				return nil, err
			}
			if s.NumRanks, err = hd.i64(); err != nil {
				return nil, err
			}
			if ver >= 2 {
				k, err := hd.u64()
				if err != nil {
					return nil, err
				}
				if k > uint64(ShardDelta) {
					return nil, fmt.Errorf("ckpt: header shard kind %d out of range", k)
				}
				s.Kind = ShardKind(k)
				if s.ParentStep, err = hd.i64(); err != nil {
					return nil, err
				}
			}
			if s.NumRanks < 1 || s.Rank < 0 || s.Rank >= s.NumRanks {
				return nil, fmt.Errorf("ckpt: header rank %d/%d out of range", s.Rank, s.NumRanks)
			}
			haveHeader = true
		case secHierarchy:
			if s.Snapshot, err = decodeHierarchy(payload); err != nil {
				return nil, err
			}
			haveHierarchy = true
		case secField:
			f, err := decodeField(payload)
			if err != nil {
				return nil, err
			}
			s.Fields = append(s.Fields, f)
		case secMeta:
			if s.Meta, err = decodeMeta(payload); err != nil {
				return nil, err
			}
			haveMeta = true
		default:
			return nil, fmt.Errorf("ckpt: unknown section kind %d", kind)
		}
	}
	if !haveHeader || !haveHierarchy || !haveMeta {
		return nil, fmt.Errorf("ckpt: incomplete shard (header=%v hierarchy=%v meta=%v)",
			haveHeader, haveHierarchy, haveMeta)
	}
	return s, nil
}
