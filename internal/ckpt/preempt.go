package ckpt

import (
	"errors"
	"sync/atomic"
)

// ErrPreempted is returned (wrapped) by a checkpoint component whose
// preemption gate fired: the run saved a final durable checkpoint at
// the step boundary where it noticed the request and then stopped.
// Preemption is not a failure — Supervise propagates it instead of
// retrying — and the caller resumes the job later from LatestValid,
// possibly on a different rank count (the elastic restore path).
var ErrPreempted = errors.New("ckpt: run preempted at checkpoint")

// Gate is the asynchronous stop request a scheduler hands to a running
// job. Request may be called from any goroutine at any time; the
// checkpoint component polls the gate once per driver step (through a
// collective decision, so every rank of an SCMD cohort stops at the
// same step), saves, and unwinds with ErrPreempted. A nil *Gate never
// fires, so unscheduled runs pay only a nil check.
type Gate struct {
	flag atomic.Bool
}

// Request asks the run to stop at its next step boundary. Idempotent.
func (g *Gate) Request() {
	if g != nil {
		g.flag.Store(true)
	}
}

// Requested reports whether a stop has been requested.
func (g *Gate) Requested() bool {
	return g != nil && g.flag.Load()
}

// Reset re-arms the gate for the next attempt (the scheduler clears it
// before resuming a previously preempted job).
func (g *Gate) Reset() {
	if g != nil {
		g.flag.Store(false)
	}
}
