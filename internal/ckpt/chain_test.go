package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Tests for the version-2 surfaces: gzip section framing, delta-chain
// manifests, and the retention GC. The invariant under attack is always
// the same one: a checkpoint may be *lost* (torn, collected, corrupt)
// but must never be *wrong* — no panic, no silent restore of damaged
// bytes, no resolvable chain with a broken link.

// compressibleShard is testShard with a payload long and regular enough
// for gzip to win, so the compressed path actually exercises. n is the
// payload length in floats — the corruption sweep keeps it small (the
// sweep decodes the whole shard once per byte).
func compressibleShard(n int) *Shard {
	s := testShard()
	big := make([]float64, n)
	for i := range big {
		big[i] = float64(i % 7)
	}
	s.Fields[0].Patches[0].Data = big
	return s
}

func TestCompressedShardRoundTrip(t *testing.T) {
	want := compressibleShard(4096)
	raw := EncodeShardOpts(want, nil, false)
	gz := EncodeShardOpts(want, nil, true)
	if len(gz) >= len(raw) {
		t.Fatalf("compressed encode %d B not smaller than raw %d B", len(gz), len(raw))
	}
	// Compression must be deterministic: the manifest CRC depends on it.
	if !bytes.Equal(gz, EncodeShardOpts(want, nil, true)) {
		t.Fatal("compressed encode is not deterministic")
	}
	for name, data := range map[string][]byte{"raw": raw, "gzip": gz} {
		got, err := DecodeShard(data)
		if err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s round-trip mismatch", name)
		}
	}
}

// The corruption sweep from v1, rerun against a compressed delta shard:
// truncation at every length and a bit flip at every offset must error,
// never panic — including flips landing in the new flags/length words
// and inside gzip streams.
func TestDecodeCompressedDeltaShardCorruptionNeverPanics(t *testing.T) {
	s := compressibleShard(256)
	s.Kind = ShardDelta
	s.ParentStep = 11
	data := EncodeShardOpts(s, nil, true)
	check := func(name string, b []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: DecodeShard panicked: %v", name, r)
			}
		}()
		if _, err := DecodeShard(b); err == nil {
			t.Fatalf("%s: corrupted shard accepted", name)
		}
	}
	for n := 0; n < len(data); n++ {
		check(fmt.Sprintf("truncate@%d", n), data[:n])
	}
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		check(fmt.Sprintf("flip@%d", i), mut)
	}
}

// A flip inside a gzip stream with the section CRC recomputed to match:
// the CRC check passes by construction, so the gzip layer itself must
// catch the damage. Silent acceptance here would restore garbage bits.
func TestCorruptGzipFrameWithValidCRCDetected(t *testing.T) {
	data := EncodeShardOpts(compressibleShard(4096), nil, true)
	// Walk the v2 frames to find a compressed section.
	off := len(shardMagic) + 4
	corrupted := false
	for off < len(data) {
		flags := binary.LittleEndian.Uint32(data[off+4:])
		clen := int(binary.LittleEndian.Uint64(data[off+16:]))
		stored := data[off+24 : off+24+clen]
		if flags&sectionGzip != 0 && !corrupted {
			stored[clen/2] ^= 0x55
			binary.LittleEndian.PutUint32(data[off+24+clen:], crc32.ChecksumIEEE(stored))
			corrupted = true
		}
		off += 24 + clen + 4
	}
	if !corrupted {
		t.Fatal("test shard produced no compressed section")
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("DecodeShard panicked on corrupt gzip frame: %v", r)
		}
	}()
	if _, err := DecodeShard(data); err == nil {
		t.Fatal("corrupt gzip frame with fixed-up CRC accepted")
	}
}

// writeLinkedCkpt deposits one durable single-rank checkpoint linked to
// parent (nil for a full) and returns its manifest.
func writeLinkedCkpt(t *testing.T, dir string, step int, parent *Manifest) *Manifest {
	t.Helper()
	s := testShard()
	s.Rank = 0
	s.NumRanks = 1
	s.Meta.Step = step
	s.Kind = ShardFull
	s.ParentStep = -1
	if parent != nil {
		s.Kind = ShardDelta
		s.ParentStep = parent.Step
	}
	data := EncodeShard(s, nil)
	name := ShardFileName(step, 0)
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
	size, crc := Digest(data)
	m := &Manifest{Step: step, NumRanks: 1, Kind: s.Kind, ParentStep: s.ParentStep,
		Shards: []ManifestEntry{{File: name, Size: size, CRC: crc}}}
	if parent != nil {
		m.ParentID = parent.ID
	}
	m.ID = ManifestID(m)
	if err := os.WriteFile(filepath.Join(dir, ManifestFileName(step)), EncodeManifest(m), 0o644); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestResolveChainWalksToBase(t *testing.T) {
	dir := t.TempDir()
	base := writeLinkedCkpt(t, dir, 0, nil)
	d1 := writeLinkedCkpt(t, dir, 2, base)
	d2 := writeLinkedCkpt(t, dir, 4, d1)
	chain, err := ResolveChain(filepath.Join(dir, ManifestFileName(4)))
	if err != nil {
		t.Fatalf("ResolveChain: %v", err)
	}
	var steps []int
	for _, l := range chain {
		steps = append(steps, l.Manifest.Step)
	}
	if !reflect.DeepEqual(steps, []int{0, 2, 4}) {
		t.Fatalf("chain steps %v, want [0 2 4]", steps)
	}
	if chain[2].Manifest.ID != d2.ID {
		t.Fatalf("target ID %s, want %s", chain[2].Manifest.ID, d2.ID)
	}
}

// Dangling parent references: a delta whose parent manifest is missing,
// and a delta whose recorded parent ID does not match the manifest
// actually sitting at that step, must both fail the whole chain — and
// LatestValid must fall back past them.
func TestResolveChainDanglingParent(t *testing.T) {
	dir := t.TempDir()
	base := writeLinkedCkpt(t, dir, 0, nil)

	// Parent manifest file absent.
	missing := *base
	missing.Step = 2 // no manifest was ever written for step 2
	d := writeLinkedCkpt(t, dir, 4, &missing)
	if _, err := ResolveChain(filepath.Join(dir, ManifestFileName(4))); err == nil {
		t.Fatal("chain with missing parent manifest resolved")
	}
	_ = d

	// Parent present but with a different content ID.
	forged := *base
	forged.ID = "000000-deadbeef"
	writeLinkedCkpt(t, dir, 6, &forged)
	if _, err := ResolveChain(filepath.Join(dir, ManifestFileName(6))); err == nil {
		t.Fatal("chain with mismatched parent ID resolved")
	}

	path, step, ok := LatestValid(dir)
	if !ok || step != 0 || path != filepath.Join(dir, ManifestFileName(0)) {
		t.Fatalf("LatestValid = (%q, %d, %v), want the step-0 base", path, step, ok)
	}
}

// Cycles are unrepresentable: DecodeManifest enforces ParentStep < Step
// for deltas, so self- and forward-references are rejected before any
// chain walk could loop on them.
func TestDecodeManifestRejectsCyclicParent(t *testing.T) {
	for _, parent := range []int{7, 9, -1} {
		m := &Manifest{Step: 7, NumRanks: 1, Kind: ShardDelta, ParentStep: parent, ParentID: "000005-0badc0de",
			Shards: []ManifestEntry{{File: ShardFileName(7, 0), Size: 1, CRC: 2}}}
		m.ID = ManifestID(m)
		if _, err := DecodeManifest(EncodeManifest(m)); err == nil {
			t.Errorf("delta manifest with parent step %d (own step 7) decoded", parent)
		}
	}
	// A delta with no parent ID is equally unusable.
	m := &Manifest{Step: 7, NumRanks: 1, Kind: ShardDelta, ParentStep: 5,
		Shards: []ManifestEntry{{File: ShardFileName(7, 0), Size: 1, CRC: 2}}}
	if _, err := DecodeManifest(EncodeManifest(m)); err == nil {
		t.Error("delta manifest without parent ID decoded")
	}
}

// A torn middle link invalidates every descendant: LatestValid must
// skip the whole damaged chain and land on the last full base, never
// resolving a chain whose base or any link is torn.
func TestLatestValidSkipsTornChainLink(t *testing.T) {
	dir := t.TempDir()
	base := writeLinkedCkpt(t, dir, 0, nil)
	d1 := writeLinkedCkpt(t, dir, 1, base)
	writeLinkedCkpt(t, dir, 2, d1)

	// Tear the middle delta's shard.
	if err := os.Truncate(filepath.Join(dir, ShardFileName(1, 0)), 16); err != nil {
		t.Fatal(err)
	}
	if _, err := ResolveChain(filepath.Join(dir, ManifestFileName(2))); err == nil {
		t.Fatal("chain over a torn middle link resolved")
	}
	path, step, ok := LatestValid(dir)
	if !ok || step != 0 {
		t.Fatalf("LatestValid = (%q, %d, %v), want the step-0 base", path, step, ok)
	}

	// Tear the base too: nothing survives.
	if err := os.Truncate(filepath.Join(dir, ShardFileName(0, 0)), 16); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := LatestValid(dir); ok {
		t.Fatal("LatestValid resolved a chain whose base is torn")
	}
}

// assertAllSurvivorsResolvable is the GC safety property: after any
// collection pass, every manifest still on disk must resolve its full
// chain — i.e. GC never deleted a shard or parent reachable from a
// kept manifest.
func assertAllSurvivorsResolvable(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".manifest" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeManifest(data); err != nil {
			continue // protected damage, not a kept checkpoint
		}
		if _, err := ResolveChain(filepath.Join(dir, e.Name())); err != nil {
			t.Errorf("survivor %s no longer resolves: %v", e.Name(), err)
		}
	}
}

func mustExist(t *testing.T, dir string, names ...string) {
	t.Helper()
	for _, n := range names {
		if _, err := os.Stat(filepath.Join(dir, n)); err != nil {
			t.Errorf("%s should have survived GC: %v", n, err)
		}
	}
}

func mustBeGone(t *testing.T, dir string, names ...string) {
	t.Helper()
	for _, n := range names {
		if _, err := os.Stat(filepath.Join(dir, n)); err == nil {
			t.Errorf("%s should have been collected", n)
		}
	}
}

func TestRetentionGCKeepsChainsClosed(t *testing.T) {
	dir := t.TempDir()
	base1 := writeLinkedCkpt(t, dir, 0, nil)
	d1 := writeLinkedCkpt(t, dir, 1, base1)
	writeLinkedCkpt(t, dir, 2, d1)
	base2 := writeLinkedCkpt(t, dir, 3, nil)
	d4 := writeLinkedCkpt(t, dir, 4, base2)
	writeLinkedCkpt(t, dir, 5, d4)

	// KeepLast=2 keeps steps 4 and 5; chain closure must pull in their
	// base at step 3 even though it is outside the window.
	if err := GC(dir, RetentionPolicy{KeepLast: 2}); err != nil {
		t.Fatalf("GC: %v", err)
	}
	mustExist(t, dir,
		ManifestFileName(3), ManifestFileName(4), ManifestFileName(5),
		ShardFileName(3, 0), ShardFileName(4, 0), ShardFileName(5, 0))
	mustBeGone(t, dir,
		ManifestFileName(0), ManifestFileName(1), ManifestFileName(2),
		ShardFileName(0, 0), ShardFileName(1, 0), ShardFileName(2, 0))
	assertAllSurvivorsResolvable(t, dir)
	if _, step, ok := LatestValid(dir); !ok || step != 5 {
		t.Fatalf("LatestValid after GC = (%d, %v), want step 5", step, ok)
	}
	// A second pass is a no-op.
	if err := GC(dir, RetentionPolicy{KeepLast: 2}); err != nil {
		t.Fatalf("second GC: %v", err)
	}
	mustExist(t, dir, ManifestFileName(3), ShardFileName(3, 0))
}

func TestRetentionGCKeepEveryAndProtection(t *testing.T) {
	dir := t.TempDir()
	base := writeLinkedCkpt(t, dir, 0, nil)
	d1 := writeLinkedCkpt(t, dir, 1, base)
	writeLinkedCkpt(t, dir, 2, d1)
	base2 := writeLinkedCkpt(t, dir, 3, nil)
	d4 := writeLinkedCkpt(t, dir, 4, base2)
	writeLinkedCkpt(t, dir, 5, d4)

	// An undecodable manifest and its step's shard: GC must not touch
	// either (conservative handling of a concurrent writer or damage).
	if err := os.WriteFile(filepath.Join(dir, ManifestFileName(7)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ShardFileName(7, 0)), []byte("inflight"), 0o644); err != nil {
		t.Fatal(err)
	}

	// KeepLast=1 keeps step 5 (+ chain 4, 3); KeepEvery=3 keeps 0 and 3.
	// Step 0 is a standalone full, so deltas 1 and 2 go.
	if err := GC(dir, RetentionPolicy{KeepLast: 1, KeepEvery: 3}); err != nil {
		t.Fatalf("GC: %v", err)
	}
	mustExist(t, dir,
		ManifestFileName(0), ManifestFileName(3), ManifestFileName(4), ManifestFileName(5),
		ShardFileName(0, 0), ShardFileName(3, 0), ShardFileName(4, 0), ShardFileName(5, 0),
		ManifestFileName(7), ShardFileName(7, 0))
	mustBeGone(t, dir,
		ManifestFileName(1), ManifestFileName(2),
		ShardFileName(1, 0), ShardFileName(2, 0))
	assertAllSurvivorsResolvable(t, dir)

	// Disabled policy never deletes.
	if err := GC(dir, RetentionPolicy{}); err != nil {
		t.Fatalf("disabled GC: %v", err)
	}
	mustExist(t, dir, ManifestFileName(0), ManifestFileName(5))
}
