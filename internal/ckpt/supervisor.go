package ckpt

import (
	"errors"
	"fmt"

	"ccahydro/internal/mpi"
)

// Supervise runs attempt with automatic rollback-and-retry: when the
// job dies of a rank failure (any error matching mpi.ErrRankFailed),
// the supervisor locates the last durable checkpoint under dir and
// relaunches the attempt from it — the paper-era operator workflow
// ("resubmit from the last restart dump") folded into the launcher.
//
// attempt receives the manifest path to restore from ("" for a cold
// start) and must run the job to completion. The first attempt is
// always cold (the caller decides whether to pass an explicit restore
// through other means); every retry re-reads the directory *at launch
// time* — not a restore point captured when the previous failure was
// observed — so a checkpoint that became durable in between (the failed
// attempt's async writer finishing its last manifest, or another agent
// depositing one) is picked up. Errors that are not rank failures
// propagate immediately; rank failures beyond maxRetries return the
// last failure wrapped with the retry count.
func Supervise(dir string, maxRetries int, attempt func(restore string) error) error {
	return SuperviseNotify(dir, maxRetries, nil, attempt)
}

// RetryNotifier observes supervisor decisions: OnRankFailure fires
// after attempt (1-based) died of a rank failure, before the
// supervisor rolls back — the hook the telemetry flight recorder uses
// to dump post-mortem state while it is still fresh. It is also
// called for the final failure that exhausts the retry budget.
type RetryNotifier interface {
	OnRankFailure(attempt int, err error)
}

// SuperviseNotify is Supervise with a RetryNotifier (nil is allowed
// and reduces to Supervise).
func SuperviseNotify(dir string, maxRetries int, notify RetryNotifier, attempt func(restore string) error) error {
	var err error
	for try := 0; try <= maxRetries; try++ {
		restore := ""
		if try > 0 {
			// Consulted immediately before the relaunch, never cached
			// across failures.
			if path, _, ok := LatestValid(dir); ok {
				restore = path
			}
		}
		if err = attempt(restore); err == nil {
			return nil
		}
		if !errors.Is(err, mpi.ErrRankFailed) {
			return err
		}
		if notify != nil {
			notify.OnRankFailure(try+1, err)
		}
	}
	return fmt.Errorf("ckpt: giving up after %d retries: %w", maxRetries, err)
}
