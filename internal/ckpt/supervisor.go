package ckpt

import (
	"errors"
	"fmt"

	"ccahydro/internal/mpi"
)

// Supervise runs attempt with automatic rollback-and-retry: when the
// job dies of a rank failure (any error matching mpi.ErrRankFailed),
// the supervisor locates the last durable checkpoint under dir and
// relaunches the attempt from it — the paper-era operator workflow
// ("resubmit from the last restart dump") folded into the launcher.
//
// attempt receives the manifest path to restore from ("" for a cold
// start) and must run the job to completion. Errors that are not rank
// failures propagate immediately; rank failures beyond maxRetries
// return the last failure wrapped with the retry count.
func Supervise(dir string, maxRetries int, attempt func(restore string) error) error {
	restore := ""
	for try := 0; ; try++ {
		err := attempt(restore)
		if err == nil {
			return nil
		}
		if !errors.Is(err, mpi.ErrRankFailed) {
			return err
		}
		if try >= maxRetries {
			return fmt.Errorf("ckpt: giving up after %d retries: %w", maxRetries, err)
		}
		if path, _, ok := LatestValid(dir); ok {
			restore = path
		} else {
			restore = "" // no durable checkpoint yet: cold restart
		}
	}
}
