package core

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ccahydro/internal/cca"
	"ccahydro/internal/ckpt"
	"ccahydro/internal/components"
	"ccahydro/internal/mpi"
)

// Elastic/incremental checkpoint acceptance tests: the cross-P restore
// matrix (any P_old -> any P_new, bit-for-bit per cell), delta-chain
// restores, the v1 golden-format compatibility check, and the
// crash-at-every-step torture run with incremental checkpoints on.
//
// All comparisons are per-cell (cellKey -> value): the per-cell physics
// is rank-count-invariant, but rank-local orderings (and the FP sum
// grouping behind reduced diagnostics like the shock circulation) are
// not, so cross-P assertions never compare flattened slices or series.

// cellMapOf is snapshotCellMap without the testing.T dependency, so
// SCMD rank goroutines can call it and report errors properly.
func cellMapOf(f *cca.Framework, fieldName string) (map[cellKey]float64, error) {
	comp, err := f.Lookup("grace")
	if err != nil {
		return nil, err
	}
	gc := comp.(*components.GrACEComponent)
	d := gc.Field(fieldName)
	if d == nil {
		return nil, fmt.Errorf("field %q not declared", fieldName)
	}
	h := gc.Hierarchy()
	out := make(map[cellKey]float64)
	for l := 0; l < h.NumLevels(); l++ {
		for _, pd := range d.LocalPatches(l) {
			b := pd.Interior()
			for c := 0; c < d.NComp; c++ {
				for j := b.Lo[1]; j <= b.Hi[1]; j++ {
					for i := b.Lo[0]; i <= b.Hi[0]; i++ {
						out[cellKey{l, c, i, j}] = pd.At(c, i, j)
					}
				}
			}
		}
	}
	return out, nil
}

// runCkptWorld assembles a problem on every rank of w, wires the
// checkpoint component with the given options, runs the driver, and
// returns the union of all ranks' interior cells. Rank ownership is
// disjoint, so the union is the global field.
func runCkptWorld(w *mpi.World, assemble func(*cca.Framework) error, fieldName string, o CheckpointOptions) (map[cellKey]float64, error) {
	var mu sync.Mutex
	global := map[cellKey]float64{}
	total := 0
	res := cca.RunSCMDOn(w, Repo(), func(f *cca.Framework, comm *mpi.Comm) error {
		if err := assemble(f); err != nil {
			return err
		}
		if err := WireCheckpointOpts(f, o); err != nil {
			return err
		}
		if err := f.Go("driver", "go"); err != nil {
			return err
		}
		m, err := cellMapOf(f, fieldName)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		total += len(m)
		for k, v := range m {
			global[k] = v
		}
		return nil
	})
	if err := res.Err(); err != nil {
		return nil, err
	}
	if total != len(global) {
		return nil, fmt.Errorf("ranks own overlapping cells: %d scanned, %d distinct", total, len(global))
	}
	return global, nil
}

func runCkptGlobal(t *testing.T, ranks int, assemble func(*cca.Framework) error, fieldName string, o CheckpointOptions) map[cellKey]float64 {
	t.Helper()
	m, err := runCkptWorld(mpi.NewWorld(ranks, mpi.CPlantModel), assemble, fieldName, o)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// assertSameCellMap demands identical key sets and bit-identical values
// — full coverage in both directions.
func assertSameCellMap(t *testing.T, label string, ref, got map[cellKey]float64) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: cell counts differ: ref %d, got %d (hierarchies diverged)", label, len(ref), len(got))
	}
	for k, want := range ref {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s: cell %+v missing", label, k)
		}
		if g != want {
			t.Fatalf("%s: cell %+v differs: ref %v, got %v", label, k, want, g)
		}
	}
}

func assembleFlame(params []Param) func(*cca.Framework) error {
	return func(f *cca.Framework) error { return AssembleReactionDiffusion(f, params...) }
}

func assembleShock(params []Param) func(*cca.Framework) error {
	return func(f *cca.Framework) error { return AssembleShockInterface(f, "GodunovFlux", params...) }
}

// elasticMatrix runs the full cross-P restore matrix for one problem:
// uninterrupted references at every P_new, checkpointed write runs at
// every P_old, then all |P|x|P| restore pairs, each continued to the
// end and compared per cell against the P_new reference.
func elasticMatrix(t *testing.T, label, fieldName string, assemble func(*cca.Framework) error, saveStep int) {
	ps := []int{1, 2, 4}
	refs := map[int]map[cellKey]float64{}
	for _, p := range ps {
		refs[p] = runCkptGlobal(t, p, assemble, fieldName, CheckpointOptions{Dir: t.TempDir()})
	}
	// The per-cell state must itself be P-invariant, or the matrix below
	// proves nothing.
	assertSameCellMap(t, label+": reference P=2 vs P=1", refs[1], refs[2])
	assertSameCellMap(t, label+": reference P=4 vs P=1", refs[1], refs[4])

	dirs := map[int]string{}
	for _, p := range ps {
		dirs[p] = t.TempDir()
		got := runCkptGlobal(t, p, assemble, fieldName, CheckpointOptions{Every: 2, Dir: dirs[p]})
		assertSameCellMap(t, fmt.Sprintf("%s: ckpt-wired write run P=%d", label, p), refs[p], got)
	}
	for _, pOld := range ps {
		manifest := filepath.Join(dirs[pOld], ckpt.ManifestFileName(saveStep))
		for _, pNew := range ps {
			got := runCkptGlobal(t, pNew, assemble, fieldName,
				CheckpointOptions{Dir: t.TempDir(), Restore: manifest})
			assertSameCellMap(t, fmt.Sprintf("%s: restore P%d->P%d", label, pOld, pNew), refs[pNew], got)
		}
	}
}

// TestElasticRestoreMatrixFlame: all 9 P_old -> P_new pairs for the
// reaction-diffusion flame (RKC diffusion + implicit chemistry + a
// regrid between the restore point and the end), bit-for-bit per cell.
func TestElasticRestoreMatrixFlame(t *testing.T) {
	elasticMatrix(t, "flame", "phi", assembleFlame(flameCkptParams()), 1)
}

func shockCkptParams() []Param {
	return []Param{
		{"grace", "nx", "32"}, {"grace", "ny", "16"},
		{"grace", "lx", "2.0"}, {"grace", "ly", "1.0"},
		{"grace", "maxLevels", "2"},
		{"driver", "tEnd", "1.0"}, {"driver", "maxSteps", "6"},
		{"driver", "regridEvery", "2"},
	}
}

// TestElasticRestoreMatrixShock: the same 9 pairs for the RK2 Euler
// shock-interface run (CFL dt, periodic regrids). The restore point
// sits mid-chain so the continuation crosses a regrid at every P.
func TestElasticRestoreMatrixShock(t *testing.T) {
	elasticMatrix(t, "shock", "U", assembleShock(shockCkptParams()), 3)
}

// TestV1GoldenCheckpointRestores locks the version bump down against
// committed v1 testdata: a checkpoint written by the PR-4-era format
// (before kind/flags/length words existed) must restore bit-for-bit
// under the v2 reader. The golden files are never regenerated by the
// build — if this test fails, v1 compatibility broke.
func TestV1GoldenCheckpointRestores(t *testing.T) {
	golden := filepath.Join("testdata", "v1ckpt", ckpt.ManifestFileName(1))
	for _, p := range []string{golden, filepath.Join("testdata", "v1ckpt", ckpt.ShardFileName(1, 0))} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if ver := binary.LittleEndian.Uint32(data[8:12]); ver != 1 {
			t.Fatalf("golden file %s has format version %d, want 1 — do not regenerate the testdata", p, ver)
		}
	}

	// The exact parameters the golden run used — including the v1-era
	// interpreted chemistry engine. The golden field values embed its
	// floating-point evaluation order; continuing them under the
	// generated kernels would drift in the last digits.
	params := append(flameCkptParams(), Param{"chem", "kernels", "off"})
	_, fRef, err := RunReactionDiffusion(nil, params...)
	if err != nil {
		t.Fatal(err)
	}
	ref := snapshotField(t, fRef, "phi")
	_, got := runFlameCkpt(t, t.TempDir(), golden, 0, params)
	assertSameField(t, "v1 golden restore", ref, got)
}

// TestIncrementalRestoreThroughDeltaChain runs the flame with
// incremental checkpoints every step and no regrids, producing the
// chain full@0 <- delta@1 <- ... <- delta@5, and restores through a
// 5-link chain — serially (exact path) and onto a different rank count
// (elastic path) — each continued run bit-for-bit per cell.
func TestIncrementalRestoreThroughDeltaChain(t *testing.T) {
	params := []Param{
		{"grace", "nx", "16"}, {"grace", "ny", "16"},
		{"grace", "maxLevels", "2"},
		{"driver", "steps", "6"}, {"driver", "dt", "1e-7"},
		{"driver", "regridEvery", "0"},
	}
	assemble := assembleFlame(params)
	dir := t.TempDir()
	ref := runCkptGlobal(t, 1, assemble, "phi", CheckpointOptions{Dir: t.TempDir()})
	wrote := runCkptGlobal(t, 1, assemble, "phi",
		CheckpointOptions{Every: 1, Dir: dir, Incremental: true, FullEvery: 8})
	assertSameCellMap(t, "incremental write run", ref, wrote)

	// The chain must really be incremental: one full base, deltas after.
	target := filepath.Join(dir, ckpt.ManifestFileName(4))
	chain, err := ckpt.ResolveChain(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 5 {
		t.Fatalf("chain to step 4 has %d links, want 5 (full@0 + 4 deltas)", len(chain))
	}
	for i, l := range chain {
		wantKind := ckpt.ShardDelta
		if i == 0 {
			wantKind = ckpt.ShardFull
		}
		if l.Manifest.Kind != wantKind {
			t.Fatalf("chain link %d (step %d) is %v, want %v", i, l.Manifest.Step, l.Manifest.Kind, wantKind)
		}
	}

	got := runCkptGlobal(t, 1, assemble, "phi", CheckpointOptions{Dir: t.TempDir(), Restore: target})
	assertSameCellMap(t, "restore through 5-link chain", ref, got)

	// Elastic restore from the same delta chain: P_old=1 -> P_new=4.
	ref4 := runCkptGlobal(t, 4, assemble, "phi", CheckpointOptions{Dir: t.TempDir()})
	assertSameCellMap(t, "incremental reference P=4 vs P=1", ref, ref4)
	got4 := runCkptGlobal(t, 4, assemble, "phi", CheckpointOptions{Dir: t.TempDir(), Restore: target})
	assertSameCellMap(t, "elastic restore through 5-link chain P1->P4", ref4, got4)
}

// TestCompressedCheckpointRestoreBitForBit: gzip section framing is
// purely an encoding concern — a compressed checkpoint restores the
// same bits.
func TestCompressedCheckpointRestoreBitForBit(t *testing.T) {
	params := flameCkptParams()
	assemble := assembleFlame(params)
	dir := t.TempDir()
	ref := runCkptGlobal(t, 2, assemble, "phi", CheckpointOptions{Dir: t.TempDir()})
	wrote := runCkptGlobal(t, 2, assemble, "phi", CheckpointOptions{Every: 2, Dir: dir, Compress: true})
	assertSameCellMap(t, "compressed write run", ref, wrote)
	got := runCkptGlobal(t, 2, assemble, "phi",
		CheckpointOptions{Dir: t.TempDir(), Restore: filepath.Join(dir, ckpt.ManifestFileName(1))})
	assertSameCellMap(t, "restore from compressed checkpoint", ref, got)
}

// TestDeltaChainTortureCrashEveryStep is the incremental-mode torture
// run: with checkpoints (and deltas) written after every step, a rank
// is killed at every step of the run in turn — both mid-compute and,
// using the send counter recorded in the reference shards, exactly in
// the window between a delta shard's write and its manifest commit. The
// supervisor must recover every time, the restore point must never be
// the torn checkpoint, and the recovered run must match the fault-free
// reference bit-for-bit per cell.
func TestDeltaChainTortureCrashEveryStep(t *testing.T) {
	const steps, ranks = 4, 4
	params := flameCkptParams()
	assemble := assembleFlame(params)
	opts := func(dir, restore string) CheckpointOptions {
		return CheckpointOptions{Every: 1, Dir: dir, Restore: restore, Incremental: true, FullEvery: 8}
	}

	refDir := t.TempDir()
	ref, err := runCkptWorld(mpi.NewWorld(ranks, mpi.CPlantModel), assemble, "phi", opts(refDir, ""))
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1's send count at each save: the save snapshots comm stats
	// into the shard before the digest gather, so sends[s]+1 is exactly
	// the gather send — the window between shard write and manifest
	// commit.
	sends := make([]int, steps)
	for s := 0; s < steps; s++ {
		data, err := os.ReadFile(filepath.Join(refDir, ckpt.ShardFileName(s, 1)))
		if err != nil {
			t.Fatal(err)
		}
		shard, err := ckpt.DecodeShard(data)
		if err != nil {
			t.Fatal(err)
		}
		sends[s] = shard.Meta.Comm.Sends
	}

	type tortureCase struct {
		name      string
		fault     mpi.Fault
		faultStep int // no checkpoint at or after this step is durable
	}
	var cases []tortureCase
	for s := 0; s < steps; s++ {
		cases = append(cases, tortureCase{
			name:      fmt.Sprintf("manifest-window@%d", s),
			fault:     mpi.Fault{Rank: 1, Kind: mpi.FaultKill, AtStep: -1, AtSend: sends[s] + 1},
			faultStep: s,
		})
	}
	for s := 1; s < steps; s++ {
		cases = append(cases, tortureCase{
			name:      fmt.Sprintf("mid-compute@%d", s),
			fault:     mpi.Fault{Rank: 1, Kind: mpi.FaultKill, AtStep: s, AtSend: -1},
			faultStep: s,
		})
	}

	for _, tc := range cases {
		dir := t.TempDir()
		var restores []string
		var final map[cellKey]float64
		attempts := 0
		err := ckpt.Supervise(dir, 2, func(restore string) error {
			restores = append(restores, restore)
			attempts++
			w := mpi.NewWorld(ranks, mpi.CPlantModel)
			if attempts == 1 {
				w.InjectFault(tc.fault)
			}
			m, err := runCkptWorld(w, assemble, "phi", opts(dir, restore))
			if err != nil {
				return err
			}
			final = m
			return nil
		})
		if err != nil {
			t.Fatalf("%s: supervised run failed: %v", tc.name, err)
		}
		if attempts != 2 {
			t.Fatalf("%s: attempts = %d, want 2", tc.name, attempts)
		}
		// LatestValid must never have handed the retry a torn chain: the
		// restore point is either cold or a manifest that fully resolves
		// — and never the checkpoint the kill interrupted (its manifest
		// was never committed, even when its shards landed).
		if r := restores[1]; r != "" {
			chain, err := ckpt.ResolveChain(r)
			if err != nil {
				t.Fatalf("%s: retry restored from unresolvable %s: %v", tc.name, r, err)
			}
			if s := chain[len(chain)-1].Manifest.Step; s >= tc.faultStep {
				t.Fatalf("%s: retry restored from step %d, but nothing at or after step %d was durable",
					tc.name, s, tc.faultStep)
			}
		}
		assertSameCellMap(t, tc.name+" recovered run", ref, final)
	}
}
