package core

import (
	"sync"
	"testing"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/mpi"
)

// The asynchronous coalesced exchange promises bit-for-bit equality
// with the serial path: interior cells are computed while halo messages
// fly, boundary strips after Finish, and the split must be invisible in
// the checkpoint. Patch decomposition differs with rank count, so the
// comparison is keyed per cell (level, comp, i, j) rather than by flat
// patch order, with a coverage count to catch hierarchy divergence.

type cellKey struct{ level, comp, i, j int }

// snapshotCellMap flattens every interior cell of every level into a
// map keyed by global cell index.
func snapshotCellMap(t *testing.T, f *cca.Framework, fieldName string) map[cellKey]float64 {
	t.Helper()
	comp, err := f.Lookup("grace")
	if err != nil {
		t.Fatal(err)
	}
	gc := comp.(*components.GrACEComponent)
	d := gc.Field(fieldName)
	if d == nil {
		t.Fatalf("field %q not declared", fieldName)
	}
	h := gc.Hierarchy()
	out := make(map[cellKey]float64)
	for l := 0; l < h.NumLevels(); l++ {
		for _, pd := range d.LocalPatches(l) {
			b := pd.Interior()
			for c := 0; c < d.NComp; c++ {
				for j := b.Lo[1]; j <= b.Hi[1]; j++ {
					for i := b.Lo[0]; i <= b.Hi[0]; i++ {
						out[cellKey{l, c, i, j}] = pd.At(c, i, j)
					}
				}
			}
		}
	}
	return out
}

// compareSCMDToSerial runs the assembly serially and on 4 virtual
// ranks, and demands identical per-cell checkpoints with full coverage.
func compareSCMDToSerial(t *testing.T, label string,
	runSerial func() (*cca.Framework, error),
	runRank func(f *cca.Framework, comm *mpi.Comm) error, fieldName string) {
	t.Helper()
	fS, err := runSerial()
	if err != nil {
		t.Fatal(err)
	}
	serial := snapshotCellMap(t, fS, fieldName)

	var mu sync.Mutex
	covered := 0
	res := cca.RunSCMD(4, mpi.CPlantModel, Repo(), func(f *cca.Framework, comm *mpi.Comm) error {
		if err := runRank(f, comm); err != nil {
			return err
		}
		par := snapshotCellMap(t, f, fieldName)
		mu.Lock()
		defer mu.Unlock()
		covered += len(par)
		for k, got := range par {
			want, ok := serial[k]
			if !ok {
				t.Errorf("%s: rank %d owns cell %+v absent from the serial hierarchy", label, comm.Rank(), k)
				return nil
			}
			if got != want {
				t.Errorf("%s: cell %+v differs: serial %v, 4-rank async %v", label, k, want, got)
				return nil
			}
		}
		return nil
	})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if covered != len(serial) {
		t.Errorf("%s: ranks cover %d cells, serial hierarchy has %d (decomposition diverged)",
			label, covered, len(serial))
	}
}

// TestFlameAsyncExchangeMatchesSerial checkpoints the flame assembly
// (RKC + chemistry, two levels, regrid every step so the communication
// schedule is rebuilt mid-run) against its 4-rank overlapped execution.
func TestFlameAsyncExchangeMatchesSerial(t *testing.T) {
	params := []Param{
		{"grace", "nx", "24"}, {"grace", "ny", "24"},
		{"grace", "maxLevels", "2"},
		{"driver", "steps", "2"}, {"driver", "dt", "1e-7"},
		{"driver", "regridEvery", "1"},
	}
	compareSCMDToSerial(t, "flame",
		func() (*cca.Framework, error) {
			_, f, err := RunReactionDiffusion(nil, params...)
			return f, err
		},
		func(f *cca.Framework, comm *mpi.Comm) error {
			if err := AssembleReactionDiffusion(f, params...); err != nil {
				return err
			}
			return f.Go("driver", "go")
		},
		"phi")
}

// TestShockAsyncExchangeMatchesSerial repeats the per-cell comparison
// for the shock-interface assembly (RK2 Godunov sweeps, regrids).
func TestShockAsyncExchangeMatchesSerial(t *testing.T) {
	params := []Param{
		{"grace", "nx", "32"}, {"grace", "ny", "16"},
		{"grace", "lx", "2.0"}, {"grace", "ly", "1.0"},
		{"grace", "maxLevels", "2"},
		{"driver", "tEnd", "0.05"}, {"driver", "maxSteps", "8"},
		{"driver", "regridEvery", "4"},
	}
	compareSCMDToSerial(t, "shock",
		func() (*cca.Framework, error) {
			_, f, err := RunShockInterface(nil, "GodunovFlux", params...)
			return f, err
		},
		func(f *cca.Framework, comm *mpi.Comm) error {
			if err := AssembleShockInterface(f, "GodunovFlux", params...); err != nil {
				return err
			}
			return f.Go("driver", "go")
		},
		"U")
}
