package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"ccahydro/internal/cca"
	"ccahydro/internal/exec"
	"ccahydro/internal/mpi"
	"ccahydro/internal/obs"
)

func obsParams() []Param {
	return []Param{
		{"grace", "nx", "24"}, {"grace", "ny", "24"},
		{"grace", "maxLevels", "2"},
		{"driver", "steps", "2"}, {"driver", "dt", "1e-7"},
		{"driver", "regridEvery", "1"},
	}
}

// TestObservabilityPreservesResults is the interceptor's determinism
// contract at full-assembly scale: the flame run with port-call
// interception, SAMR phase spans, and the tracer all enabled must
// produce bit-for-bit the fields of the plain run.
func TestObservabilityPreservesResults(t *testing.T) {
	restoreDefaultPool(t)
	exec.SetDefaultWidth(4)

	_, fOff, err := RunReactionDiffusion(nil, obsParams()...)
	if err != nil {
		t.Fatal(err)
	}
	ref := snapshotField(t, fOff, "phi")

	group := obs.NewGroup(1)
	f := cca.NewFramework(Repo(), nil)
	f.SetObservability(group.Rank(0))
	if err := AssembleReactionDiffusion(f, obsParams()...); err != nil {
		t.Fatal(err)
	}
	if err := f.Go("driver", "go"); err != nil {
		t.Fatal(err)
	}
	got := snapshotField(t, f, "phi")

	if len(ref) != len(got) {
		t.Fatalf("checkpoint sizes differ: %d vs %d (hierarchies diverged)", len(ref), len(got))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("cell %d differs: plain %v, observed %v", i, ref[i], got[i])
		}
	}

	// The run crossed instrumented wires: port_call histograms exist and
	// counted real invocations.
	snap := group.MergedSnapshot()
	var portCalls uint64
	for _, h := range snap.Histograms {
		if strings.HasPrefix(h.Name, obs.PortCallBase+"{") {
			portCalls += h.Count
		}
	}
	if portCalls == 0 {
		t.Error("no port_call_seconds observations recorded")
	}

	// Phase spans were emitted for every SAMR phase the run exercises.
	counts := group.EventCounts()
	for _, cat := range []string{"driver", "chem", "rkc", "samr"} {
		if counts[cat] == 0 {
			t.Errorf("no %q spans in trace: %v", cat, counts)
		}
	}
}

// TestObservabilityTraceFile runs the flame on 2 ranks with a private
// worker pool per rank and checks the merged Chrome trace document:
// valid JSON, named rank/worker/virtual-clock tracks, per-worker exec
// spans, and balanced halo flow events on the virtual clock.
func TestObservabilityTraceFile(t *testing.T) {
	restoreDefaultPool(t)
	exec.SetDefaultWidth(1)
	const nRanks = 2
	group := obs.NewGroup(nRanks)
	var mu sync.Mutex
	res := cca.RunSCMD(nRanks, mpi.CPlantModel, Repo(), func(f *cca.Framework, comm *mpi.Comm) error {
		f.SetObservability(group.Rank(comm.Rank()))
		if err := AssembleReactionDiffusion(f, obsParams()...); err != nil {
			return err
		}
		mu.Lock()
		err := f.SetParameter("pool", "workers", "3")
		mu.Unlock()
		if err != nil {
			return err
		}
		if err := f.Instantiate("ExecutionComponent", "pool"); err != nil {
			return err
		}
		for _, user := range []string{"driver", "rkc", "implicit", "maxdiff"} {
			if err := f.Connect(user, "exec", "pool", "exec"); err != nil {
				return err
			}
		}
		return f.Go("driver", "go")
	})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}

	counts := group.EventCounts()
	if counts["exec"] == 0 {
		t.Errorf("no exec worker-chunk spans: %v", counts)
	}
	if counts["halo.flow.s"] == 0 || counts["halo.flow.s"] != counts["halo.flow.f"] {
		t.Errorf("halo flow events unbalanced: s=%d f=%d", counts["halo.flow.s"], counts["halo.flow.f"])
	}

	var buf bytes.Buffer
	if err := group.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Cat  string         `json:"cat"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	threadNames := map[string]bool{}
	execTids := map[[2]int]bool{}
	var flowS, flowF int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" || ev.Name == "process_name" {
				if n, ok := ev.Args["name"].(string); ok {
					threadNames[n] = true
				}
			}
		case "s":
			flowS++
		case "f":
			flowF++
		case "X":
			if ev.Cat == "exec" {
				execTids[[2]int{ev.Pid, ev.Tid}] = true
			}
		}
	}
	for _, want := range []string{"rank 0", "rank 1", "worker 1", "virtual cluster (MPI clock)", "driver"} {
		if !threadNames[want] {
			t.Errorf("trace missing %q track metadata; have %v", want, threadNames)
		}
	}
	if flowS == 0 || flowS != flowF {
		t.Errorf("serialized flow events unbalanced: s=%d f=%d", flowS, flowF)
	}
	// Worker spans land on tid >= 1 of each rank's process, never on the
	// driver track.
	for tk := range execTids {
		if tk[1] < 1 {
			t.Errorf("exec span on driver track: pid=%d tid=%d", tk[0], tk[1])
		}
	}
	if len(execTids) < 2 {
		t.Errorf("exec spans confined to %d track(s), want per-worker tracks", len(execTids))
	}
}
