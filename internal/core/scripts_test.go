package core

import (
	"os"
	"path/filepath"
	"testing"

	"ccahydro/internal/cca"
)

// TestShippedScriptsAssemble parses every script in scripts/ and
// executes it against the real palette with "go" commands stripped, so
// a wiring or class-name drift in the shipped files fails CI.
func TestShippedScriptsAssemble(t *testing.T) {
	dir := filepath.Join("..", "..", "scripts")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("scripts dir unavailable: %v", err)
	}
	found := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".rc" {
			continue
		}
		found++
		t.Run(e.Name(), func(t *testing.T) {
			text, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			script, err := cca.ParseScriptString(string(text))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			var wiringOnly cca.Script
			nGo := 0
			for _, c := range script.Commands {
				if c.Verb == "go" {
					nGo++
					continue
				}
				wiringOnly.Commands = append(wiringOnly.Commands, c)
			}
			if nGo == 0 {
				t.Error("script has no go command")
			}
			f := cca.NewFramework(Repo(), nil)
			if err := wiringOnly.Execute(f); err != nil {
				t.Fatalf("execute: %v", err)
			}
			if len(f.Connections()) == 0 {
				t.Error("script produced no connections")
			}
		})
	}
	if found < 3 {
		t.Errorf("expected >= 3 shipped scripts, found %d", found)
	}
}

// TestStrangSplitting runs the flame with Strang splitting and checks
// it stays physical and close to the Lie-split result over a short
// horizon.
func TestStrangSplitting(t *testing.T) {
	base := []Param{
		{"grace", "nx", "16"}, {"grace", "ny", "16"},
		{"grace", "maxLevels", "1"},
		{"driver", "steps", "2"}, {"driver", "dt", "1e-7"},
		{"driver", "regridEvery", "0"},
	}
	lie, _, err := RunReactionDiffusion(nil, base...)
	if err != nil {
		t.Fatal(err)
	}
	strang, _, err := RunReactionDiffusion(nil, append(base, Param{"driver", "splitting", "strang"})...)
	if err != nil {
		t.Fatal(err)
	}
	// Over 2 tiny steps the two splittings agree to leading order.
	if d := lie.TMax - strang.TMax; d > 5 || d < -5 {
		t.Errorf("lie Tmax %v vs strang %v", lie.TMax, strang.TMax)
	}
	if strang.TMin < 295 || strang.TMax > 3500 {
		t.Errorf("strang run unphysical: %v..%v", strang.TMin, strang.TMax)
	}
}

// TestDiffusionOnlyScalingDriver exercises the skipChem path used by
// the scaling studies.
func TestDiffusionOnlyScalingDriver(t *testing.T) {
	dr, _, err := RunReactionDiffusion(nil,
		Param{"grace", "nx", "16"}, Param{"grace", "ny", "16"},
		Param{"grace", "maxLevels", "1"},
		Param{"driver", "steps", "3"}, Param{"driver", "dt", "1e-7"},
		Param{"driver", "regridEvery", "0"},
		Param{"driver", "skipChem", "true"},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Pure diffusion cannot raise the maximum temperature.
	if dr.TMax > 1801 {
		t.Errorf("diffusion-only Tmax rose to %v", dr.TMax)
	}
	if dr.TMin < 299 {
		t.Errorf("Tmin fell to %v", dr.TMin)
	}
}
