package core

import (
	"fmt"
	"sort"

	"ccahydro/internal/cca"
	"ccahydro/internal/scenario"
)

// RunRequest is the declarative form of "which assembly, with which
// knobs" that a run server receives over the wire: the problem name
// selects one of the paper's three assemblies, Flux the shock problem's
// flux component swap, and Params the instance parameters applied
// before instantiation. A request may instead carry a compiled scenario
// (Problem "scenario"), in which case the assembly is whatever the
// scenario file declared — same construction point, same dedup keying.
// The HTTP layer never touches Instantiate/Connect itself.
type RunRequest struct {
	Problem  string // "ignition", "flame", "shock", or "scenario"
	Flux     string // shock only: "GodunovFlux" (default) or "EFMFlux"
	Params   []Param
	Scenario *scenario.Compiled // set iff Problem == "scenario"
}

// ScenarioProblem is the Problem value of scenario-built requests.
const ScenarioProblem = "scenario"

// Problems lists the built-in assemblies AssembleRequest can build
// (scenario-built requests are open-ended and not enumerated here).
func Problems() []string { return []string{"flame", "ignition", "shock"} }

// driverNames maps problem to the driver tag its checkpoints carry.
var requestDrivers = map[string]string{
	"ignition": "ign",
	"flame":    "rd",
	"shock":    "shock",
}

// ValidRequest reports whether the request names a known problem (and,
// for shock, a known flux class) without building anything. Scenario
// requests are valid by construction — a *scenario.Compiled only exists
// after full static validation — but must not mix with built-in knobs.
func ValidRequest(req RunRequest) error {
	if req.Scenario != nil {
		if req.Problem != "" && req.Problem != ScenarioProblem {
			return fmt.Errorf("core: scenario request must not also name problem %q", req.Problem)
		}
		if req.Flux != "" {
			return fmt.Errorf("core: flux class is a shock-only knob, got %q for a scenario request", req.Flux)
		}
		return nil
	}
	if _, ok := requestDrivers[req.Problem]; !ok {
		return fmt.Errorf("core: unknown problem %q (want one of %v)", req.Problem, Problems())
	}
	if req.Problem == "shock" {
		switch req.Flux {
		case "", "GodunovFlux", "EFMFlux":
		default:
			return fmt.Errorf("core: unknown shock flux class %q (want GodunovFlux or EFMFlux)", req.Flux)
		}
	} else if req.Flux != "" {
		return fmt.Errorf("core: flux class is a shock-only knob, got %q for %q", req.Flux, req.Problem)
	}
	return nil
}

// Checkpointable reports whether the problem's assembly supports the
// checkpoint subsystem (and therefore preemption and elastic resume).
// The 0D ignition assembly has no mesh to snapshot; it runs to
// completion once admitted. Scenario-built requests answer through
// RequestCheckpointable, which consults the run target's driver class.
func Checkpointable(problem string) bool { return problem == "flame" || problem == "shock" }

// RequestCheckpointable is Checkpointable over a whole request,
// including scenario-built ones.
func RequestCheckpointable(req RunRequest) bool {
	if req.Scenario != nil {
		return req.Scenario.Checkpointable()
	}
	return Checkpointable(req.Problem)
}

// RunInstance names the instance whose go port drives the request:
// the fixed "driver" for built-ins, the scenario's run target
// otherwise.
func RunInstance(req RunRequest) string {
	if req.Scenario != nil {
		return req.Scenario.RunInstance()
	}
	return "driver"
}

// AssembleRequest builds the requested assembly on f. For built-ins the
// instance names are the fixed ones the Assemble* functions use
// ("driver", "stats", "grace", ...), so callers can Lookup results
// afterwards; for scenarios they are whatever the file declared.
func AssembleRequest(f *cca.Framework, req RunRequest) error {
	if err := ValidRequest(req); err != nil {
		return err
	}
	if req.Scenario != nil {
		overrides := make([]scenario.Param, len(req.Params))
		for i, p := range req.Params {
			overrides[i] = scenario.Param{Instance: p.Instance, Key: p.Key, Value: p.Value}
		}
		return req.Scenario.Build(f, overrides...)
	}
	switch req.Problem {
	case "ignition":
		return AssembleIgnition0D(f, req.Params...)
	case "flame":
		return AssembleReactionDiffusion(f, req.Params...)
	default:
		return AssembleShockInterface(f, req.Flux, req.Params...)
	}
}

// CanonicalRequestLines renders the request as a deterministic line
// set — problem, flux, and "instance/key=value" parameters sorted, with
// later duplicates winning as SetParameter semantics dictate. Scenario
// requests contribute the scenario's own canonical lines (components,
// params, connections — name excluded) plus any override parameters.
// It is the hashing surface for content-addressed run dedup: two
// requests with equal lines build bit-identical assemblies.
func CanonicalRequestLines(req RunRequest) []string {
	if req.Scenario != nil {
		lines := append([]string{"problem=" + ScenarioProblem}, req.Scenario.CanonicalLines()...)
		return append(lines, sortedParamLines(req.Params, "override/")...)
	}
	flux := req.Flux
	if req.Problem == "shock" && flux == "" {
		flux = "GodunovFlux"
	}
	lines := []string{"problem=" + req.Problem, "flux=" + flux}
	return append(lines, sortedParamLines(req.Params, "")...)
}

func sortedParamLines(params []Param, prefix string) []string {
	last := map[string]string{}
	for _, p := range params {
		last[prefix+p.Instance+"/"+p.Key] = p.Value
	}
	keys := make([]string, 0, len(last))
	for k := range last {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := make([]string, 0, len(keys))
	for _, k := range keys {
		lines = append(lines, k+"="+last[k])
	}
	return lines
}
