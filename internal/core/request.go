package core

import (
	"fmt"
	"sort"

	"ccahydro/internal/cca"
)

// RunRequest is the declarative form of "which assembly, with which
// knobs" that a run server receives over the wire: the problem name
// selects one of the paper's three assemblies, Flux the shock problem's
// flux component swap, and Params the instance parameters applied
// before instantiation. It is the assembly-from-request construction
// point — the HTTP layer never touches Instantiate/Connect itself.
type RunRequest struct {
	Problem string // "ignition", "flame", or "shock"
	Flux    string // shock only: "GodunovFlux" (default) or "EFMFlux"
	Params  []Param
}

// Problems lists the assemblies AssembleRequest can build.
func Problems() []string { return []string{"flame", "ignition", "shock"} }

// driverNames maps problem to the driver tag its checkpoints carry.
var requestDrivers = map[string]string{
	"ignition": "ign",
	"flame":    "rd",
	"shock":    "shock",
}

// ValidRequest reports whether the request names a known problem (and,
// for shock, a known flux class) without building anything.
func ValidRequest(req RunRequest) error {
	if _, ok := requestDrivers[req.Problem]; !ok {
		return fmt.Errorf("core: unknown problem %q (want one of %v)", req.Problem, Problems())
	}
	if req.Problem == "shock" {
		switch req.Flux {
		case "", "GodunovFlux", "EFMFlux":
		default:
			return fmt.Errorf("core: unknown shock flux class %q (want GodunovFlux or EFMFlux)", req.Flux)
		}
	} else if req.Flux != "" {
		return fmt.Errorf("core: flux class is a shock-only knob, got %q for %q", req.Flux, req.Problem)
	}
	return nil
}

// Checkpointable reports whether the problem's assembly supports the
// checkpoint subsystem (and therefore preemption and elastic resume).
// The 0D ignition assembly has no mesh to snapshot; it runs to
// completion once admitted.
func Checkpointable(problem string) bool { return problem == "flame" || problem == "shock" }

// AssembleRequest builds the requested assembly on f. The instance
// names are the fixed ones the Assemble* functions use ("driver",
// "stats", "grace", ...), so callers can Lookup results afterwards.
func AssembleRequest(f *cca.Framework, req RunRequest) error {
	if err := ValidRequest(req); err != nil {
		return err
	}
	switch req.Problem {
	case "ignition":
		return AssembleIgnition0D(f, req.Params...)
	case "flame":
		return AssembleReactionDiffusion(f, req.Params...)
	default:
		return AssembleShockInterface(f, req.Flux, req.Params...)
	}
}

// CanonicalRequestLines renders the request as a deterministic line
// set — problem, flux, and "instance/key=value" parameters sorted, with
// later duplicates winning as SetParameter semantics dictate. It is the
// hashing surface for content-addressed run dedup: two requests with
// equal lines build bit-identical assemblies.
func CanonicalRequestLines(req RunRequest) []string {
	flux := req.Flux
	if req.Problem == "shock" && flux == "" {
		flux = "GodunovFlux"
	}
	last := map[string]string{}
	for _, p := range req.Params {
		last[p.Instance+"/"+p.Key] = p.Value
	}
	keys := make([]string, 0, len(last))
	for k := range last {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := []string{"problem=" + req.Problem, "flux=" + flux}
	for _, k := range keys {
		lines = append(lines, k+"="+last[k])
	}
	return lines
}
