package core

import (
	"math"
	"sync"
	"testing"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/cvode"
	"ccahydro/internal/mpi"
)

// Golden trajectory tests for the generated chemistry kernels: the
// kernel engine (default) and the interpreted engine with
// finite-difference Jacobians must tell the same physics story within
// solver tolerance, and the kernel paths must build every Jacobian
// analytically — zero FD sweeps.

// cvodeStats digs the accumulated solver statistics out of an assembly.
func cvodeStats(t *testing.T, f *cca.Framework) cvode.Stats {
	t.Helper()
	comp, err := f.Lookup("cvode")
	if err != nil {
		t.Fatal(err)
	}
	return comp.(*components.CvodeComponent).TotalStats()
}

// requireAnalyticOnly asserts the run resolved the analytic Jacobian on
// every build: the ISSUE acceptance criterion for default kernel paths.
func requireAnalyticOnly(t *testing.T, label string, st cvode.Stats) {
	t.Helper()
	if st.JacBuildsAnalytic == 0 {
		t.Errorf("%s: no analytic Jacobian builds recorded (kernel path not taken)", label)
	}
	if st.JacBuildsFD != 0 {
		t.Errorf("%s: %d finite-difference Jacobian sweeps on a kernel path, want 0", label, st.JacBuildsFD)
	}
}

func runIgnitionWithFramework(t *testing.T, params ...Param) (*components.IgnitionDriver, *cca.Framework) {
	t.Helper()
	f := cca.NewFramework(Repo(), nil)
	if err := AssembleIgnition0D(f, params...); err != nil {
		t.Fatal(err)
	}
	if err := f.Go("driver", "go"); err != nil {
		t.Fatal(err)
	}
	comp, err := f.Lookup("driver")
	if err != nil {
		t.Fatal(err)
	}
	return comp.(*components.IgnitionDriver), f
}

// TestIgnitionGoldenKernelsVsInterpreted runs the 0D ignition problem
// on both engines. The generated kernel with its analytic rigid-vessel
// Jacobian and the interpreted tables with FD Jacobians take different
// step sequences, so trajectories agree to solver tolerance, not bit
// for bit: the ignition delay and the final equilibrium state are the
// physically meaningful invariants.
func TestIgnitionGoldenKernelsVsInterpreted(t *testing.T) {
	base := []Param{
		{"driver", "tEnd", "1e-3"},
		{"driver", "nOut", "40"},
	}
	gen, fg := runIgnitionWithFramework(t, base...)
	interp, fi := runIgnitionWithFramework(t, append(base, Param{"chem", "kernels", "off"})...)

	// Kernel run: all-analytic. Interpreted run: all-FD.
	requireAnalyticOnly(t, "ignition kernels=auto", cvodeStats(t, fg))
	sti := cvodeStats(t, fi)
	if sti.JacBuildsAnalytic != 0 || sti.JacBuildsFD == 0 {
		t.Errorf("ignition kernels=off: want pure FD Jacobians, got analytic=%d fd=%d",
			sti.JacBuildsAnalytic, sti.JacBuildsFD)
	}

	if relDiff := math.Abs(gen.IgnitionDelay-interp.IgnitionDelay) / interp.IgnitionDelay; relDiff > 1e-2 {
		t.Errorf("ignition delay: kernels %v vs interpreted %v (rel diff %v)",
			gen.IgnitionDelay, interp.IgnitionDelay, relDiff)
	}
	tg := gen.Temps[len(gen.Temps)-1]
	ti := interp.Temps[len(interp.Temps)-1]
	if math.Abs(tg-ti) > 1.0 {
		t.Errorf("final T: kernels %v vs interpreted %v", tg, ti)
	}
	pg := gen.Pressures[len(gen.Pressures)-1]
	pi := interp.Pressures[len(interp.Pressures)-1]
	if math.Abs(pg-pi)/pi > 1e-3 {
		t.Errorf("final P: kernels %v vs interpreted %v", pg, pi)
	}
}

// TestFlameGoldenKernelsVsInterpreted runs the 2-step reaction-diffusion
// flame on both engines and requires the hot-spot maximum temperature to
// agree within solver tolerance, with zero FD sweeps on the kernel path.
func TestFlameGoldenKernelsVsInterpreted(t *testing.T) {
	gen, fg, err := RunReactionDiffusion(nil, rdParams()...)
	if err != nil {
		t.Fatal(err)
	}
	interp, fi, err := RunReactionDiffusion(nil, rdParams(Param{"chem", "kernels", "off"})...)
	if err != nil {
		t.Fatal(err)
	}

	requireAnalyticOnly(t, "flame kernels=auto", cvodeStats(t, fg))
	sti := cvodeStats(t, fi)
	if sti.JacBuildsAnalytic != 0 || sti.JacBuildsFD == 0 {
		t.Errorf("flame kernels=off: want pure FD Jacobians, got analytic=%d fd=%d",
			sti.JacBuildsAnalytic, sti.JacBuildsFD)
	}
	// The analytic path should also cost far fewer RHS evaluations: each
	// FD build burns dim+1 of them.
	stg := cvodeStats(t, fg)
	if stg.RHSEvals >= sti.RHSEvals {
		t.Errorf("kernel path RHS evals %d >= interpreted+FD %d; analytic Jacobian should eliminate sweeps",
			stg.RHSEvals, sti.RHSEvals)
	}

	if rel := math.Abs(gen.TMax-interp.TMax) / interp.TMax; rel > 1e-6 {
		t.Errorf("flame TMax: kernels %v vs interpreted %v (rel diff %v)", gen.TMax, interp.TMax, rel)
	}
	if math.Abs(gen.TMin-interp.TMin) > 1e-3 {
		t.Errorf("flame TMin: kernels %v vs interpreted %v", gen.TMin, interp.TMin)
	}
}

// TestFlameGoldenKernels4Ranks repeats the kernel-engine flame on a
// 4-rank simulated cluster: the decomposed run must reproduce the
// serial TMax bit for bit and every rank must be FD-free (worker
// integrators resolve the analytic Jacobian through the same port
// probe as the serial solver).
func TestFlameGoldenKernels4Ranks(t *testing.T) {
	serial, _, err := RunReactionDiffusion(nil, rdParams()...)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	tmax := math.Inf(-1)
	var ranks []cvode.Stats
	res := cca.RunSCMD(4, mpi.CPlantModel, Repo(), func(f *cca.Framework, comm *mpi.Comm) error {
		if err := AssembleReactionDiffusion(f, rdParams()...); err != nil {
			return err
		}
		if err := f.Go("driver", "go"); err != nil {
			return err
		}
		comp, _ := f.Lookup("driver")
		dr := comp.(*components.RDDriver)
		cv, _ := f.Lookup("cvode")
		mu.Lock()
		if dr.TMax > tmax {
			tmax = dr.TMax
		}
		ranks = append(ranks, cv.(*components.CvodeComponent).TotalStats())
		mu.Unlock()
		return nil
	})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if tmax != serial.TMax {
		t.Errorf("4-rank kernel flame TMax %v != serial %v", tmax, serial.TMax)
	}
	var totalAnalytic int
	for r, st := range ranks {
		if st.JacBuildsFD != 0 {
			t.Errorf("rank %d: %d FD Jacobian sweeps on the kernel path, want 0", r, st.JacBuildsFD)
		}
		totalAnalytic += st.JacBuildsAnalytic
	}
	if totalAnalytic == 0 {
		t.Error("no analytic Jacobian builds across any rank")
	}
}
