// Package core assembles the paper's three applications from the
// component palette: the 0D ignition code (Table 1 / Fig 1), the 2D
// reaction–diffusion flame (Table 2 / Fig 2), and the 2D
// shock–interface interaction (Table 3 / Fig 5). Each assembly is a
// plain sequence of Instantiate/Connect calls — the programmatic
// equivalent of a Ccaffeine script — and the matching script text is
// exposed so the ccarun tool can execute the same wiring from a file.
package core

import (
	"fmt"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/mpi"
)

// Repo returns the fully populated component repository.
func Repo() *cca.Repository { return components.NewRepository() }

// Param is one (instance, key, value) parameter setting.
type Param struct {
	Instance, Key, Value string
}

// AssembleIgnition0D wires the Table 1 assembly into f. Extra
// parameters are applied before instantiation.
func AssembleIgnition0D(f *cca.Framework, params ...Param) error {
	for _, p := range params {
		if err := f.SetParameter(p.Instance, p.Key, p.Value); err != nil {
			return err
		}
	}
	steps := [][]string{
		{"instantiate", "ThermoChemistry", "chem"},
		{"instantiate", "DPDt", "dpdt"},
		{"instantiate", "ProblemModeler", "model"},
		{"instantiate", "Initializer", "init"},
		{"instantiate", "CvodeComponent", "cvode"},
		{"instantiate", "StatisticsComponent", "stats"},
		{"instantiate", "IgnitionDriver", "driver"},
		{"connect", "dpdt", "chemistry", "chem", "chemistry"},
		{"connect", "model", "chemistry", "chem", "chemistry"},
		{"connect", "model", "dpdt", "dpdt", "dpdt"},
		{"connect", "init", "chemistry", "chem", "chemistry"},
		{"connect", "cvode", "rhs", "model", "rhs"},
		{"connect", "driver", "ic", "init", "ic"},
		{"connect", "driver", "integrator", "cvode", "integrator"},
		{"connect", "driver", "chemistry", "chem", "chemistry"},
		{"connect", "driver", "stats", "stats", "stats"},
	}
	return apply(f, steps)
}

// Ignition0DScript is the equivalent Ccaffeine-style script.
const Ignition0DScript = `#!ccaffeine bootstrap file: 0D ignition (paper Table 1, Fig 1)
repository get-global ThermoChemistry
repository get-global CvodeComponent
instantiate ThermoChemistry chem
instantiate DPDt dpdt
instantiate ProblemModeler model
instantiate Initializer init
instantiate CvodeComponent cvode
instantiate StatisticsComponent stats
instantiate IgnitionDriver driver
connect dpdt chemistry chem chemistry
connect model chemistry chem chemistry
connect model dpdt dpdt dpdt
connect init chemistry chem chemistry
connect cvode rhs model rhs
connect driver ic init ic
connect driver integrator cvode integrator
connect driver chemistry chem chemistry
connect driver stats stats stats
go driver go
quit
`

// AssembleReactionDiffusion wires the Table 2 assembly.
func AssembleReactionDiffusion(f *cca.Framework, params ...Param) error {
	for _, p := range params {
		if err := f.SetParameter(p.Instance, p.Key, p.Value); err != nil {
			return err
		}
	}
	steps := [][]string{
		{"instantiate", "GrACEComponent", "grace"},
		{"instantiate", "ThermoChemistry", "chem"},
		{"instantiate", "DRFMComponent", "drfm"},
		{"instantiate", "InitialCondition", "ic"},
		{"instantiate", "DiffusionPhysics", "diffusion"},
		{"instantiate", "MaxDiffCoeffEvaluator", "maxdiff"},
		{"instantiate", "ExplicitIntegrator", "rkc"},
		{"instantiate", "CvodeComponent", "cvode"},
		{"instantiate", "ImplicitIntegrator", "implicit"},
		{"instantiate", "ErrorEstAndRegrid", "regrid"},
		{"instantiate", "StatisticsComponent", "stats"},
		{"instantiate", "RDDriver", "driver"},
		{"connect", "ic", "chemistry", "chem", "chemistry"},
		{"connect", "diffusion", "transport", "drfm", "transport"},
		{"connect", "diffusion", "chemistry", "chem", "chemistry"},
		{"connect", "maxdiff", "transport", "drfm", "transport"},
		{"connect", "maxdiff", "chemistry", "chem", "chemistry"},
		{"connect", "rkc", "patchRHS", "diffusion", "patchRHS"},
		{"connect", "rkc", "maxEigen", "maxdiff", "maxEigen"},
		{"connect", "cvode", "rhs", "implicit", "cellRHS"},
		{"connect", "implicit", "integrator", "cvode", "integrator"},
		{"connect", "implicit", "chemistry", "chem", "chemistry"},
		{"connect", "driver", "mesh", "grace", "mesh"},
		{"connect", "driver", "ic", "ic", "ic"},
		{"connect", "driver", "explicit", "rkc", "integrator"},
		{"connect", "driver", "cellChemistry", "implicit", "cellChemistry"},
		{"connect", "driver", "regrid", "regrid", "regrid"},
		{"connect", "driver", "stats", "stats", "stats"},
		{"connect", "driver", "chemistry", "chem", "chemistry"},
	}
	return apply(f, steps)
}

// ReactionDiffusionScript is the equivalent script.
const ReactionDiffusionScript = `#!ccaffeine bootstrap file: 2D reaction-diffusion flame (paper Table 2, Fig 2)
instantiate GrACEComponent grace
instantiate ThermoChemistry chem
instantiate DRFMComponent drfm
instantiate InitialCondition ic
instantiate DiffusionPhysics diffusion
instantiate MaxDiffCoeffEvaluator maxdiff
instantiate ExplicitIntegrator rkc
instantiate CvodeComponent cvode
instantiate ImplicitIntegrator implicit
instantiate ErrorEstAndRegrid regrid
instantiate StatisticsComponent stats
instantiate RDDriver driver
connect ic chemistry chem chemistry
connect diffusion transport drfm transport
connect diffusion chemistry chem chemistry
connect maxdiff transport drfm transport
connect maxdiff chemistry chem chemistry
connect rkc patchRHS diffusion patchRHS
connect rkc maxEigen maxdiff maxEigen
connect cvode rhs implicit cellRHS
connect implicit integrator cvode integrator
connect implicit chemistry chem chemistry
connect driver mesh grace mesh
connect driver ic ic ic
connect driver explicit rkc integrator
connect driver cellChemistry implicit cellChemistry
connect driver regrid regrid regrid
connect driver stats stats stats
connect driver chemistry chem chemistry
go driver go
quit
`

// AssembleShockInterface wires the Table 3 assembly. fluxClass selects
// "GodunovFlux" or "EFMFlux" — the paper's component swap for strong
// shocks, no recompilation required.
func AssembleShockInterface(f *cca.Framework, fluxClass string, params ...Param) error {
	if fluxClass == "" {
		fluxClass = "GodunovFlux"
	}
	for _, p := range params {
		if err := f.SetParameter(p.Instance, p.Key, p.Value); err != nil {
			return err
		}
	}
	steps := [][]string{
		{"instantiate", "GrACEComponent", "grace"},
		{"instantiate", "GasProperties", "gas"},
		{"instantiate", "ConicalInterfaceIC", "ic"},
		{"instantiate", "States", "states"},
		{"instantiate", fluxClass, "flux"},
		{"instantiate", "InviscidFlux", "inviscid"},
		{"instantiate", "CharacteristicQuantities", "chars"},
		{"instantiate", "BoundaryConditions", "bc"},
		{"instantiate", "ExplicitIntegratorRK2", "rk2"},
		{"instantiate", "ErrorEstAndRegrid", "regrid"},
		{"instantiate", "StatisticsComponent", "stats"},
		{"instantiate", "ProlongRestrict", "prolong"},
		{"instantiate", "ShockDriver", "driver"},
		{"connect", "ic", "gasProperties", "gas", "properties"},
		{"connect", "inviscid", "states", "states", "states"},
		{"connect", "inviscid", "flux", "flux", "flux"},
		{"connect", "inviscid", "gasProperties", "gas", "properties"},
		{"connect", "chars", "gasProperties", "gas", "properties"},
		{"connect", "bc", "mesh", "grace", "mesh"},
		{"connect", "rk2", "patchRHS", "inviscid", "patchRHS"},
		{"connect", "rk2", "bc", "bc", "bc"},
		{"connect", "driver", "mesh", "grace", "mesh"},
		{"connect", "driver", "ic", "ic", "ic"},
		{"connect", "driver", "integrator", "rk2", "integrator"},
		{"connect", "driver", "characteristics", "chars", "characteristics"},
		{"connect", "driver", "regrid", "regrid", "regrid"},
		{"connect", "driver", "stats", "stats", "stats"},
		{"connect", "driver", "gasProperties", "gas", "properties"},
		{"connect", "driver", "bc", "bc", "bc"},
	}
	return apply(f, steps)
}

// ShockInterfaceScript is the equivalent script (Godunov flux).
const ShockInterfaceScript = `#!ccaffeine bootstrap file: 2D shock-interface interaction (paper Table 3, Fig 5)
instantiate GrACEComponent grace
instantiate GasProperties gas
instantiate ConicalInterfaceIC ic
instantiate States states
instantiate GodunovFlux flux
instantiate InviscidFlux inviscid
instantiate CharacteristicQuantities chars
instantiate BoundaryConditions bc
instantiate ExplicitIntegratorRK2 rk2
instantiate ErrorEstAndRegrid regrid
instantiate StatisticsComponent stats
instantiate ProlongRestrict prolong
instantiate ShockDriver driver
connect ic gasProperties gas properties
connect inviscid states states states
connect inviscid flux flux flux
connect inviscid gasProperties gas properties
connect chars gasProperties gas properties
connect bc mesh grace mesh
connect rk2 patchRHS inviscid patchRHS
connect rk2 bc bc bc
connect driver mesh grace mesh
connect driver ic ic ic
connect driver integrator rk2 integrator
connect driver characteristics chars characteristics
connect driver regrid regrid regrid
connect driver stats stats stats
connect driver gasProperties gas properties
connect driver bc bc bc
go driver go
quit
`

func apply(f *cca.Framework, steps [][]string) error {
	for _, s := range steps {
		var err error
		switch s[0] {
		case "instantiate":
			err = f.Instantiate(s[1], s[2])
		case "connect":
			err = f.Connect(s[1], s[2], s[3], s[4])
		default:
			err = fmt.Errorf("core: unknown step %q", s[0])
		}
		if err != nil {
			return fmt.Errorf("core: step %v: %w", s, err)
		}
	}
	return nil
}

// RunIgnition0D assembles and runs the 0D ignition code serially,
// returning the driver for result inspection.
func RunIgnition0D(params ...Param) (*components.IgnitionDriver, error) {
	f := cca.NewFramework(Repo(), nil)
	if err := AssembleIgnition0D(f, params...); err != nil {
		return nil, err
	}
	if err := f.Go("driver", "go"); err != nil {
		return nil, err
	}
	comp, err := f.Lookup("driver")
	if err != nil {
		return nil, err
	}
	return comp.(*components.IgnitionDriver), nil
}

// RunReactionDiffusion assembles and runs the flame serially (comm may
// be nil) and returns the driver and framework.
func RunReactionDiffusion(comm *mpi.Comm, params ...Param) (*components.RDDriver, *cca.Framework, error) {
	f := cca.NewFramework(Repo(), comm)
	if err := AssembleReactionDiffusion(f, params...); err != nil {
		return nil, nil, err
	}
	if err := f.Go("driver", "go"); err != nil {
		return nil, nil, err
	}
	comp, err := f.Lookup("driver")
	if err != nil {
		return nil, nil, err
	}
	return comp.(*components.RDDriver), f, nil
}

// RunShockInterface assembles and runs the shock problem.
func RunShockInterface(comm *mpi.Comm, fluxClass string, params ...Param) (*components.ShockDriver, *cca.Framework, error) {
	f := cca.NewFramework(Repo(), comm)
	if err := AssembleShockInterface(f, fluxClass, params...); err != nil {
		return nil, nil, err
	}
	if err := f.Go("driver", "go"); err != nil {
		return nil, nil, err
	}
	comp, err := f.Lookup("driver")
	if err != nil {
		return nil, nil, err
	}
	return comp.(*components.ShockDriver), f, nil
}
