package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ccahydro/internal/cca"
	"ccahydro/internal/ckpt"
	"ccahydro/internal/components"
	"ccahydro/internal/mpi"
	"ccahydro/internal/obs"
	"ccahydro/internal/telemetry"
)

// Live-telemetry acceptance tests: the tentpole criteria of the
// telemetry plane. A multi-rank flame run must answer all four HTTP
// endpoints while it executes, and an injected rank kill under
// supervision must leave a flight-recorder dump ending in the fault
// injection and the retry while still recovering bit-for-bit.

func telGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// runFlameSCMDTel is runFlameSCMD with the telemetry plane attached:
// per-rank handles, virtual clock, substrate events, and the tracer
// tee when an obs group rides along.
func runFlameSCMDTel(world *mpi.World, hub *telemetry.Hub, group *obs.Group, dir, restore string, every int, params []Param) ([][]float64, error) {
	var mu sync.Mutex
	ranks := make([][]float64, world.Size())
	res := cca.RunSCMDOn(world, Repo(), func(f *cca.Framework, comm *mpi.Comm) error {
		r := comm.Rank()
		if group != nil {
			f.SetObservability(group.Rank(r))
		}
		if err := AssembleReactionDiffusion(f, params...); err != nil {
			return err
		}
		if err := WireCheckpoint(f, dir, restore, every); err != nil {
			return err
		}
		rk := hub.Rank(r)
		AttachTelemetry(f, rk, comm)
		if group != nil {
			group.Rank(r).Tracer().SetSink(rk)
		}
		if err := f.Go("driver", "go"); err != nil {
			return err
		}
		snap, err := snapshotFieldOf(f, "phi")
		if err != nil {
			return err
		}
		mu.Lock()
		ranks[r] = snap
		mu.Unlock()
		return nil
	})
	return ranks, res.Err()
}

// TestTelemetryEndpointsLiveFlame runs the 4-rank flame with the full
// telemetry plane attached and queries /metrics, /healthz, /series and
// /trace while the run is in flight (falling back to after-the-fact
// queries only if the run outpaces the poller — the endpoints must
// answer either way).
func TestTelemetryEndpointsLiveFlame(t *testing.T) {
	params := []Param{
		{"grace", "nx", "16"}, {"grace", "ny", "16"},
		{"grace", "maxLevels", "2"},
		{"driver", "steps", "8"}, {"driver", "dt", "1e-7"},
		{"driver", "regridEvery", "2"},
	}
	group := obs.NewGroup(4)
	hub := telemetry.NewHub(4, group)
	hub.SetFlightDir(t.TempDir())
	srv, err := telemetry.Serve("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	hub.SetPhase("running")
	hub.StartAttempt(1)
	done := make(chan error, 1)
	go func() {
		_, err := runFlameSCMDTel(mpi.NewWorld(4, mpi.CPlantModel), hub, group, t.TempDir(), "", 2, params)
		done <- err
	}()

	// Wait until at least one rank has entered a step (or the run
	// finishes first on a fast machine — the endpoints answer anyway).
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body := telGet(t, base+"/healthz")
		if code != http.StatusOK {
			t.Fatalf("/healthz mid-run: code %d\n%s", code, body)
		}
		var h telemetry.Health
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			t.Fatalf("/healthz not JSON: %v", err)
		}
		if len(h.Ranks) != 4 {
			t.Fatalf("/healthz lists %d ranks, want 4", len(h.Ranks))
		}
		stepped := false
		for _, r := range h.Ranks {
			if r.Step >= 1 {
				stepped = true
			}
		}
		if stepped || h.Phase == "done" {
			break
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run failed before telemetry saw a step: %v", err)
			}
			done <- nil // keep the final wait below working
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("no rank reported a step within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// /metrics: Prometheus text with the port-call interceptor data.
	code, body := telGet(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "# TYPE "+obs.PortCallBase+" histogram") {
		t.Fatalf("/metrics: code=%d, missing %s histogram\n%.400s", code, obs.PortCallBase, body)
	}

	// /series: NDJSON, every line decodes, stepSeconds appears.
	code, body = telGet(t, base+"/series?follow=0")
	if code != http.StatusOK {
		t.Fatalf("/series code = %d", code)
	}
	sawStepSeconds := false
	for _, ln := range strings.Split(strings.TrimSpace(body), "\n") {
		if ln == "" {
			continue
		}
		var pt telemetry.SeriesPoint
		if err := json.Unmarshal([]byte(ln), &pt); err != nil {
			t.Fatalf("/series line %q: %v", ln, err)
		}
		if pt.Key == "stepSeconds" {
			sawStepSeconds = true
		}
	}
	if !sawStepSeconds {
		t.Fatalf("/series never streamed stepSeconds:\n%.400s", body)
	}

	// /trace: a Chrome-trace JSON document with events.
	code, body = telGet(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace code = %d", code)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/trace snapshot has no events")
	}

	if err := <-done; err != nil {
		t.Fatalf("run failed: %v", err)
	}
	hub.SetPhase("done")

	// After completion the structured log has the expected event mix.
	counts := hub.EventCounts()
	if counts[telemetry.EvStep] == 0 || counts[telemetry.EvCkptSave] == 0 {
		t.Fatalf("event counts missing steps/saves: %v", counts)
	}
}

// TestTelemetryFaultFlightRecorder is the resilience acceptance test
// with the telemetry plane attached: killing rank 1 mid-run under
// ckpt.SuperviseNotify must (a) leave a flight-recorder dump whose
// last events include the fault injection and the supervisor retry,
// (b) log the failure to the JSONL event stream, and (c) still recover
// bit-for-bit against the fault-free reference.
func TestTelemetryFaultFlightRecorder(t *testing.T) {
	params := flameCkptParams()

	refHub := telemetry.NewHub(4, nil) // exercises the attached-but-idle path
	ref, err := runFlameSCMDTel(mpi.NewWorld(4, mpi.CPlantModel), refHub, nil, t.TempDir(), "", 1, params)
	if err != nil {
		t.Fatal(err)
	}

	flightDir := t.TempDir()
	eventsPath := filepath.Join(t.TempDir(), "events.jsonl")
	hub := telemetry.NewHub(4, nil)
	hub.SetFlightDir(flightDir)
	if err := hub.LogTo(eventsPath); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var final [][]float64
	attempts := 0
	err = ckpt.SuperviseNotify(dir, 2, hub, func(restore string) error {
		attempts++
		hub.StartAttempt(attempts)
		w := mpi.NewWorld(4, mpi.CPlantModel)
		if attempts == 1 {
			w.InjectFault(mpi.Fault{Rank: 1, Kind: mpi.FaultKill, AtStep: 2, AtSend: -1})
		}
		ranks, err := runFlameSCMDTel(w, hub, nil, dir, restore, 1, params)
		if err != nil {
			return err
		}
		final = ranks
		return nil
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if err := hub.CloseLog(); err != nil {
		t.Fatal(err)
	}
	for r := range ref {
		assertSameField(t, fmt.Sprintf("recovered rank %d", r), ref[r], final[r])
	}

	// Exactly one flight dump: the retry after the kill.
	entries, err := os.ReadDir(flightDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d flight dumps, want 1: %v", len(entries), entries)
	}
	data, err := os.ReadFile(filepath.Join(flightDir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("flight dump too short: %d lines", len(lines))
	}
	var dump []telemetry.Event
	for _, ln := range lines[1:] { // line 0 is the {"flight":...} header
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("flight line %q: %v", ln, err)
		}
		dump = append(dump, ev)
	}
	// The dump's last events are the failure story: the injected fault
	// on rank 1, the rank deaths, and finally the supervisor retry.
	if last := dump[len(dump)-1]; last.Kind != telemetry.EvSupervisorRetry {
		t.Fatalf("last dumped event = %+v, want %s", last, telemetry.EvSupervisorRetry)
	}
	tail := dump
	if len(tail) > 32 {
		tail = tail[len(tail)-32:]
	}
	sawInject, sawFailed := false, false
	for _, ev := range tail {
		if ev.Kind == telemetry.EvFaultInject && ev.Rank == 1 {
			sawInject = true
		}
		if ev.Kind == telemetry.EvRankFailed {
			sawFailed = true
		}
	}
	if !sawInject || !sawFailed {
		t.Fatalf("dump tail missing fault story (inject=%v failed=%v): %+v", sawInject, sawFailed, tail)
	}

	// The JSONL event log captured the whole run: steps, checkpoint
	// saves, the fault, the retry, and the restore on attempt 2.
	f, err := os.Open(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	logCounts := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event log line %q: %v", sc.Text(), err)
		}
		logCounts[ev.Kind]++
	}
	for _, kind := range []string{
		telemetry.EvStep, telemetry.EvCkptSave, telemetry.EvCkptRestore,
		telemetry.EvFaultInject, telemetry.EvRankFailed, telemetry.EvSupervisorRetry,
	} {
		if logCounts[kind] == 0 {
			t.Fatalf("event log missing %q events: %v", kind, logCounts)
		}
	}

	// The idle reference hub never dumped and saw no failures.
	if refCounts := refHub.EventCounts(); refCounts[telemetry.EvRankFailed] != 0 || refCounts[telemetry.EvFaultInject] != 0 {
		t.Fatalf("fault-free hub recorded failures: %v", refCounts)
	}
}

// TestTelemetrySeriesMatchesStats pins the /series stream to the
// StatisticsComponent contract: the streamed points reconstruct
// exactly the Get() snapshot, per key, in order.
func TestTelemetrySeriesMatchesStats(t *testing.T) {
	params := flameCkptParams()
	hub := telemetry.NewHub(1, nil)
	f := cca.NewFramework(Repo(), nil)
	if err := AssembleReactionDiffusion(f, params...); err != nil {
		t.Fatal(err)
	}
	AttachTelemetry(f, hub.Rank(0), nil)
	srv, err := telemetry.Serve("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := f.Go("driver", "go"); err != nil {
		t.Fatal(err)
	}
	hub.SetPhase("done")

	comp, err := f.Lookup("stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := comp.(*components.StatisticsComponent)

	_, body := telGet(t, "http://"+srv.Addr()+"/series?follow=0")
	got := map[string][]float64{}
	for _, ln := range strings.Split(strings.TrimSpace(body), "\n") {
		var pt telemetry.SeriesPoint
		if err := json.Unmarshal([]byte(ln), &pt); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		if pt.Index != len(got[pt.Key]) {
			t.Fatalf("out-of-order index for %s: %+v", pt.Key, pt)
		}
		got[pt.Key] = append(got[pt.Key], pt.Value)
	}
	keys := stats.Keys()
	if len(keys) == 0 {
		t.Fatal("stats recorded nothing")
	}
	for _, k := range keys {
		want := stats.Get(k)
		if len(got[k]) != len(want) {
			t.Fatalf("series %q: streamed %d points, stats hold %d", k, len(got[k]), len(want))
		}
		for i := range want {
			if got[k][i] != want[i] {
				t.Fatalf("series %q[%d]: streamed %v, stats hold %v", k, i, got[k][i], want[i])
			}
		}
	}
}
