package core

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"ccahydro/internal/cca"
	"ccahydro/internal/ckpt"
	"ccahydro/internal/components"
	"ccahydro/internal/mpi"
)

// Checkpoint/restart acceptance tests: a run checkpointed at step k and
// restored must be bit-for-bit the uninterrupted run — same fields,
// same diagnostics — for both drivers, serial and rank-parallel, and
// recovery from an injected rank failure must land on the same state.

func flameCkptParams() []Param {
	return []Param{
		{"grace", "nx", "16"}, {"grace", "ny", "16"},
		{"grace", "maxLevels", "2"},
		{"driver", "steps", "4"}, {"driver", "dt", "1e-7"},
		{"driver", "regridEvery", "2"},
	}
}

// snapshotFieldOf is snapshotField without the testing.T dependency, so
// SCMD rank goroutines can call it.
func snapshotFieldOf(f *cca.Framework, fieldName string) ([]float64, error) {
	comp, err := f.Lookup("grace")
	if err != nil {
		return nil, err
	}
	gc := comp.(*components.GrACEComponent)
	d := gc.Field(fieldName)
	if d == nil {
		return nil, fmt.Errorf("field %q not declared", fieldName)
	}
	h := gc.Hierarchy()
	var out []float64
	for l := 0; l < h.NumLevels(); l++ {
		for _, pd := range d.LocalPatches(l) {
			b := pd.Interior()
			for c := 0; c < d.NComp; c++ {
				for j := b.Lo[1]; j <= b.Hi[1]; j++ {
					for i := b.Lo[0]; i <= b.Hi[0]; i++ {
						out = append(out, pd.At(c, i, j))
					}
				}
			}
		}
	}
	return out, nil
}

func assertSameField(t *testing.T, label string, ref, got []float64) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: field sizes differ: %d vs %d (hierarchies diverged)", label, len(ref), len(got))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("%s: cell %d differs: %v vs %v", label, i, ref[i], got[i])
		}
	}
}

// runFlameCkpt assembles the flame with a CheckpointComponent wired in
// and runs it, returning the driver and the final field.
func runFlameCkpt(t *testing.T, dir, restore string, every int, params []Param) (*components.RDDriver, []float64) {
	t.Helper()
	f := cca.NewFramework(Repo(), nil)
	if err := AssembleReactionDiffusion(f, params...); err != nil {
		t.Fatal(err)
	}
	if err := WireCheckpoint(f, dir, restore, every); err != nil {
		t.Fatal(err)
	}
	if err := f.Go("driver", "go"); err != nil {
		t.Fatal(err)
	}
	snap, err := snapshotFieldOf(f, "phi")
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := f.Lookup("driver")
	return comp.(*components.RDDriver), snap
}

// TestFlameRestoreBitForBitEveryStep checkpoints the flame after every
// step, then restores from EVERY checkpoint in turn and finishes the
// run — each continuation must be bit-for-bit the uninterrupted run.
// RKC diffusion, implicit chemistry, and a regrid all sit between
// checkpoints, so this covers the full restored-state surface
// (hierarchy layout, field bits including ghosts, step counters).
func TestFlameRestoreBitForBitEveryStep(t *testing.T) {
	params := flameCkptParams()
	const steps = 4

	// Reference: no checkpointing wired at all.
	drRef, fRef, err := RunReactionDiffusion(nil, params...)
	if err != nil {
		t.Fatal(err)
	}
	ref := snapshotField(t, fRef, "phi")

	// Write run: checkpoint after every step. Wiring the component must
	// not perturb the physics.
	dir := t.TempDir()
	drW, wrote := runFlameCkpt(t, dir, "", 1, params)
	assertSameField(t, "ckpt-wired run vs reference", ref, wrote)
	if drW.TMax != drRef.TMax || drW.TMin != drRef.TMin {
		t.Fatalf("ckpt-wired extrema (%v,%v) != reference (%v,%v)", drW.TMax, drW.TMin, drRef.TMax, drRef.TMin)
	}

	for k := 0; k < steps; k++ {
		manifest := filepath.Join(dir, ckpt.ManifestFileName(k))
		dr, got := runFlameCkpt(t, t.TempDir(), manifest, 0, params)
		assertSameField(t, fmt.Sprintf("restore from step %d", k), ref, got)
		if dr.TMax != drRef.TMax || dr.TMin != drRef.TMin {
			t.Fatalf("restore from step %d: extrema (%v,%v) != reference (%v,%v)",
				k, dr.TMax, dr.TMin, drRef.TMax, drRef.TMin)
		}
	}
}

// runFlameSCMD runs the 4-rank flame with checkpointing wired and
// returns each rank's final field.
func runFlameSCMD(t *testing.T, world *mpi.World, dir, restore string, every int, params []Param) ([][]float64, error) {
	t.Helper()
	var mu sync.Mutex
	ranks := make([][]float64, world.Size())
	res := cca.RunSCMDOn(world, Repo(), func(f *cca.Framework, comm *mpi.Comm) error {
		if err := AssembleReactionDiffusion(f, params...); err != nil {
			return err
		}
		if err := WireCheckpoint(f, dir, restore, every); err != nil {
			return err
		}
		if err := f.Go("driver", "go"); err != nil {
			return err
		}
		snap, err := snapshotFieldOf(f, "phi")
		if err != nil {
			return err
		}
		mu.Lock()
		ranks[comm.Rank()] = snap
		mu.Unlock()
		return nil
	})
	return ranks, res.Err()
}

// TestFlameRestoreBitForBit4Ranks repeats the restore check under SCMD:
// 4 ranks checkpoint collectively (per-rank shards + rank-0 manifest),
// and a 4-rank restore must reproduce every rank's field exactly.
func TestFlameRestoreBitForBit4Ranks(t *testing.T) {
	params := flameCkptParams()
	dir := t.TempDir()

	ref, err := runFlameSCMD(t, mpi.NewWorld(4, mpi.CPlantModel), dir, "", 2, params)
	if err != nil {
		t.Fatal(err)
	}

	// every=2 over 4 steps saves after steps 1 and 3; restore mid-run.
	manifest := filepath.Join(dir, ckpt.ManifestFileName(1))
	got, err := runFlameSCMD(t, mpi.NewWorld(4, mpi.CPlantModel), t.TempDir(), manifest, 0, params)
	if err != nil {
		t.Fatal(err)
	}
	for r := range ref {
		assertSameField(t, fmt.Sprintf("rank %d", r), ref[r], got[r])
	}
}

// TestShockRestoreBitForBit covers the second driver: the RK2 Euler
// run with CFL-controlled dt, periodic regrids, and the circulation
// time series, which a restore must reinstate exactly (the checkpoint
// carries it in Meta.Series).
func TestShockRestoreBitForBit(t *testing.T) {
	params := []Param{
		{"grace", "nx", "32"}, {"grace", "ny", "16"},
		{"grace", "lx", "2.0"}, {"grace", "ly", "1.0"},
		{"grace", "maxLevels", "2"},
		{"driver", "tEnd", "1.0"}, {"driver", "maxSteps", "6"},
		{"driver", "regridEvery", "2"},
	}
	dir := t.TempDir()

	run := func(dir, restore string, every int) (*components.ShockDriver, []float64) {
		f := cca.NewFramework(Repo(), nil)
		if err := AssembleShockInterface(f, "GodunovFlux", params...); err != nil {
			t.Fatal(err)
		}
		if err := WireCheckpoint(f, dir, restore, every); err != nil {
			t.Fatal(err)
		}
		if err := f.Go("driver", "go"); err != nil {
			t.Fatal(err)
		}
		snap, err := snapshotFieldOf(f, "U")
		if err != nil {
			t.Fatal(err)
		}
		comp, _ := f.Lookup("driver")
		return comp.(*components.ShockDriver), snap
	}

	drRef, ref := run(dir, "", 2) // saves after steps 1, 3, 5
	if drRef.Steps != 6 {
		t.Fatalf("reference ran %d steps, want 6", drRef.Steps)
	}

	drGot, got := run(t.TempDir(), filepath.Join(dir, ckpt.ManifestFileName(3)), 0)
	assertSameField(t, "shock restore from step 3", ref, got)
	if drGot.Steps != drRef.Steps || drGot.FinalTime != drRef.FinalTime {
		t.Fatalf("restored (steps=%d, t=%v) != reference (steps=%d, t=%v)",
			drGot.Steps, drGot.FinalTime, drRef.Steps, drRef.FinalTime)
	}
	if len(drGot.Circulations) != len(drRef.Circulations) {
		t.Fatalf("circulation series length %d != %d", len(drGot.Circulations), len(drRef.Circulations))
	}
	for i := range drRef.Circulations {
		if drGot.Circulations[i] != drRef.Circulations[i] || drGot.Times[i] != drRef.Times[i] {
			t.Fatalf("series entry %d differs: (%v,%v) vs (%v,%v)",
				i, drGot.Times[i], drGot.Circulations[i], drRef.Times[i], drRef.Circulations[i])
		}
	}
}

// TestFaultRecoveryBitForBit is the end-to-end resilience check: a
// 4-rank flame run is killed on rank 2 at step 2 by the injected fault;
// the supervisor detects the rank failure, rolls back to the last
// durable checkpoint, relaunches, and the recovered run's final state
// is bit-for-bit the fault-free run's.
func TestFaultRecoveryBitForBit(t *testing.T) {
	params := flameCkptParams()

	ref, err := runFlameSCMD(t, mpi.NewWorld(4, mpi.CPlantModel), t.TempDir(), "", 1, params)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var final [][]float64
	attempts := 0
	err = ckpt.Supervise(dir, 2, func(restore string) error {
		attempts++
		w := mpi.NewWorld(4, mpi.CPlantModel)
		if attempts == 1 {
			w.InjectFault(mpi.Fault{Rank: 2, Kind: mpi.FaultKill, AtStep: 2, AtSend: -1})
		}
		ranks, err := runFlameSCMD(t, w, dir, restore, 1, params)
		if err != nil {
			return err
		}
		final = ranks
		return nil
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one crash, one recovery)", attempts)
	}
	for r := range ref {
		assertSameField(t, fmt.Sprintf("recovered rank %d", r), ref[r], final[r])
	}
}
