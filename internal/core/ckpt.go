package core

import (
	"fmt"
	"strconv"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
)

// WireCheckpoint retrofits checkpointing onto an assembled framework:
// it instantiates a CheckpointComponent as "ckpt", points its mesh port
// at the assembly's MeshPort provider, and connects every unconnected
// "checkpoint" uses port (the drivers declare one) to it. This is the
// CCA promise in action — the Table 2/3 assemblies gain durable
// restart without editing a single existing wire.
//
// every is the cadence in driver steps (0 disables saving), dir the
// checkpoint directory, restore a manifest path or directory to resume
// from ("" for a cold start).
func WireCheckpoint(f *cca.Framework, dir, restore string, every int) error {
	const inst = "ckpt"
	for _, kv := range [][2]string{
		{"every", strconv.Itoa(every)},
		{"dir", dir},
		{"restore", restore},
	} {
		if err := f.SetParameter(inst, kv[0], kv[1]); err != nil {
			return err
		}
	}
	if err := f.Instantiate("CheckpointComponent", inst); err != nil {
		return err
	}

	// Point ckpt.mesh at the assembly's mesh provider.
	meshInst, meshPort, err := findProvider(f, components.MeshPortType)
	if err != nil {
		return fmt.Errorf("core: WireCheckpoint: %w", err)
	}
	if err := f.Connect(inst, "mesh", meshInst, meshPort); err != nil {
		return err
	}

	// Connect every dangling checkpoint uses port to ckpt.
	connected := make(map[[2]string]bool)
	for _, c := range f.Connections() {
		connected[[2]string{c.User, c.UsesPort}] = true
	}
	for _, name := range f.Instances() {
		uses, err := f.UsesPorts(name)
		if err != nil {
			return err
		}
		for _, u := range uses {
			if u[1] != components.CheckpointPortType || connected[[2]string{name, u[0]}] {
				continue
			}
			if err := f.Connect(name, u[0], inst, "checkpoint"); err != nil {
				return err
			}
		}
	}
	return nil
}

// findProvider locates the first instance providing a port of the given
// type, returning (instance, portName).
func findProvider(f *cca.Framework, portType string) (string, string, error) {
	for _, name := range f.Instances() {
		provides, err := f.ProvidedPorts(name)
		if err != nil {
			return "", "", err
		}
		for _, p := range provides {
			if p[1] == portType {
				return name, p[0], nil
			}
		}
	}
	return "", "", fmt.Errorf("no provider of %q in the assembly", portType)
}
