package core

import (
	"fmt"
	"strconv"

	"ccahydro/internal/cca"
	"ccahydro/internal/ckpt"
	"ccahydro/internal/components"
)

// WireCheckpoint retrofits checkpointing onto an assembled framework:
// it instantiates a CheckpointComponent as "ckpt", points its mesh port
// at the assembly's MeshPort provider, and connects every unconnected
// "checkpoint" uses port (the drivers declare one) to it. This is the
// CCA promise in action — the Table 2/3 assemblies gain durable
// restart without editing a single existing wire.
//
// every is the cadence in driver steps (0 disables saving), dir the
// checkpoint directory, restore a manifest path or directory to resume
// from ("" for a cold start).
func WireCheckpoint(f *cca.Framework, dir, restore string, every int) error {
	return WireCheckpointOpts(f, CheckpointOptions{Dir: dir, Restore: restore, Every: every})
}

// CheckpointOptions configures WireCheckpointOpts; the zero value of
// every field means "component default".
type CheckpointOptions struct {
	Every       int    // save cadence in driver steps (0 = off)
	Dir         string // checkpoint directory
	Restore     string // manifest path or directory ("" = cold start)
	Incremental bool   // delta shards for unchanged patches
	FullEvery   int    // force a full save after this many deltas
	Compress    bool   // gzip shard section payloads
	Keep        int    // retention: keep newest K (0 = keep all)
	KeepEvery   int    // retention: also keep every N-th step

	// Preempt is a scheduler's stop gate: when it fires, the run saves
	// a final checkpoint at its next step boundary and unwinds with
	// ckpt.ErrPreempted (nil = never preempted). Set programmatically —
	// it has no string-parameter form.
	Preempt *ckpt.Gate
}

// WireCheckpointOpts is WireCheckpoint with the full option surface
// (incremental deltas, compression, retention).
func WireCheckpointOpts(f *cca.Framework, o CheckpointOptions) error {
	const inst = "ckpt"
	if o.FullEvery == 0 {
		o.FullEvery = 8
	}
	for _, kv := range [][2]string{
		{"every", strconv.Itoa(o.Every)},
		{"dir", o.Dir},
		{"restore", o.Restore},
		{"incremental", strconv.FormatBool(o.Incremental)},
		{"fullEvery", strconv.Itoa(o.FullEvery)},
		{"compress", strconv.FormatBool(o.Compress)},
		{"keep", strconv.Itoa(o.Keep)},
		{"keepEvery", strconv.Itoa(o.KeepEvery)},
	} {
		if err := f.SetParameter(inst, kv[0], kv[1]); err != nil {
			return err
		}
	}
	if err := f.Instantiate("CheckpointComponent", inst); err != nil {
		return err
	}
	if o.Preempt != nil {
		comp, err := f.Lookup(inst)
		if err != nil {
			return err
		}
		comp.(*components.CheckpointComponent).SetPreempt(o.Preempt)
	}

	// Point ckpt.mesh at the assembly's mesh provider.
	meshInst, meshPort, err := findProvider(f, components.MeshPortType)
	if err != nil {
		return fmt.Errorf("core: WireCheckpoint: %w", err)
	}
	if err := f.Connect(inst, "mesh", meshInst, meshPort); err != nil {
		return err
	}

	// Connect every dangling checkpoint uses port to ckpt.
	connected := make(map[[2]string]bool)
	for _, c := range f.Connections() {
		connected[[2]string{c.User, c.UsesPort}] = true
	}
	for _, name := range f.Instances() {
		uses, err := f.UsesPorts(name)
		if err != nil {
			return err
		}
		for _, u := range uses {
			if u[1] != components.CheckpointPortType || connected[[2]string{name, u[0]}] {
				continue
			}
			if err := f.Connect(name, u[0], inst, "checkpoint"); err != nil {
				return err
			}
		}
	}
	return nil
}

// findProvider locates the first instance providing a port of the given
// type, returning (instance, portName).
func findProvider(f *cca.Framework, portType string) (string, string, error) {
	for _, name := range f.Instances() {
		provides, err := f.ProvidedPorts(name)
		if err != nil {
			return "", "", err
		}
		for _, p := range provides {
			if p[1] == portType {
				return name, p[0], nil
			}
		}
	}
	return "", "", fmt.Errorf("no provider of %q in the assembly", portType)
}
