package core

import (
	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/mpi"
	"ccahydro/internal/telemetry"
)

// hierarchySource is any component exposing its live AMR hierarchy
// (GrACEComponent does); AttachTelemetry samples Generation through it.
type hierarchySource interface {
	Hierarchy() *amr.Hierarchy
}

// AttachTelemetry wires one rank's telemetry handle into an assembled
// framework, the live-plane analogue of WireCheckpoint: no existing
// wire changes, the handle is discovered through Services at emit
// time. It
//
//   - hands the handle to the framework (drivers and the checkpoint
//     component reach it via Services.Telemetry()),
//   - points the handle's virtual clock at the rank's communicator and
//     registers the communicator's fault/failure events with it,
//   - samples the hierarchy generation from the assembly's mesh
//     provider, and
//   - registers any StatisticsComponent as the rank's /series source.
//
// Call after the assembly is built (and after WireCheckpoint, if any)
// and before Go. comm may be nil for serial frameworks; rk may be nil,
// which detaches everything it would have attached.
func AttachTelemetry(f *cca.Framework, rk *telemetry.Rank, comm *mpi.Comm) {
	f.SetTelemetry(rk)
	if rk == nil {
		return
	}
	if comm != nil {
		rk.SetClock(comm.VirtualTime)
		// The substrate sink, not the rank itself: comm events can fire
		// inside sends while the sender holds component locks, where the
		// full stamp (which samples the mesh) must not run.
		comm.SetEvents(rk.Substrate())
	}
	for _, name := range f.Instances() {
		comp, err := f.Lookup(name)
		if err != nil {
			continue
		}
		if src, ok := comp.(telemetry.SeriesSource); ok {
			rk.SetSeries(src)
		}
		if hs, ok := comp.(hierarchySource); ok {
			rk.SetGeneration(func() int {
				if h := hs.Hierarchy(); h != nil {
					return h.Generation()
				}
				return 0
			})
		}
	}
}
