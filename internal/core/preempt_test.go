package core

import (
	"errors"
	"testing"
	"time"

	"ccahydro/internal/ckpt"
	"ccahydro/internal/mpi"
)

// TestPreemptThenElasticResume is the scheduler-facing preemption
// contract: a run stopped mid-flight by a ckpt.Gate (1) saves a final
// checkpoint at the stop step, (2) unwinds through ckpt.Supervise with
// ckpt.ErrPreempted — not retried, because preemption is not a fault —
// and (3) a later supervised resume on a *different* rank count lands
// bit-for-bit on the uninterrupted run's final state.
func TestPreemptThenElasticResume(t *testing.T) {
	params := flameCkptParams() // 4 steps, regrid mid-run
	assemble := assembleFlame(params)

	// Uninterrupted reference at the resume rank count.
	ref := runCkptGlobal(t, 2, assemble, "phi", CheckpointOptions{Dir: t.TempDir()})

	// Live preemption: the gate fires from another goroutine once the
	// step-0 checkpoint is durable, so the stop lands at a genuine
	// mid-run boundary (all SCMD ranks agree on it via the collective
	// decision in the checkpoint component).
	dir := t.TempDir()
	gate := &ckpt.Gate{}
	go func() {
		for {
			if _, _, ok := ckpt.LatestValid(dir); ok {
				gate.Request()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	attempts := 0
	err := ckpt.Supervise(dir, 2, func(restore string) error {
		attempts++
		_, err := runCkptWorld(mpi.NewWorld(4, mpi.CPlantModel), assemble, "phi",
			CheckpointOptions{Every: 1, Dir: dir, Restore: restore, Preempt: gate})
		return err
	})
	if err == nil {
		t.Fatal("run completed before the gate fired — no live preemption exercised")
	}
	if !errors.Is(err, ckpt.ErrPreempted) {
		t.Fatalf("preempted run returned %v, want ckpt.ErrPreempted", err)
	}
	if attempts != 1 {
		t.Fatalf("supervisor ran %d attempts, want 1: preemption must not be retried as a fault", attempts)
	}

	path, stopStep, ok := ckpt.LatestValid(dir)
	if !ok {
		t.Fatal("preempted run left no durable checkpoint")
	}
	if stopStep >= 3 {
		t.Fatalf("stopped at step %d — not mid-run for a 4-step drive", stopStep)
	}

	// Resume on 2 ranks (the preempted run held 4): the supervised
	// attempt chain starts from the preemption checkpoint exactly as
	// the serve scheduler does.
	var got map[cellKey]float64
	err = ckpt.Supervise(dir, 2, func(restore string) error {
		if restore == "" {
			restore = path
		}
		m, err := runCkptWorld(mpi.NewWorld(2, mpi.CPlantModel), assemble, "phi",
			CheckpointOptions{Every: 1, Dir: dir, Restore: restore})
		got = m
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameCellMap(t, "preempt at 4 ranks, resume at 2", ref, got)
}
