package core

import (
	"math"
	"strings"
	"sync"
	"testing"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/euler"
	"ccahydro/internal/mpi"
)

// ---- 0D ignition (paper Sec. 4.1, Table 1) --------------------------------

func TestIgnition0DEndToEnd(t *testing.T) {
	dr, err := RunIgnition0D(
		Param{"driver", "tEnd", "1e-3"},
		Param{"driver", "nOut", "40"},
	)
	if err != nil {
		t.Fatal(err)
	}
	tFinal := dr.Temps[len(dr.Temps)-1]
	pFinal := dr.Pressures[len(dr.Pressures)-1]
	// Stoichiometric H2-air at 1000 K / 1 atm in a rigid vessel must
	// ignite within 1 ms and reach the constant-volume adiabatic flame
	// temperature (~2900 K) with a ~2.5-3x pressure rise.
	if tFinal < 2500 || tFinal > 3300 {
		t.Errorf("final T = %v, want ~2900", tFinal)
	}
	if pFinal < 2.0*101325 || pFinal > 3.5*101325 {
		t.Errorf("final P = %v, want ~2.6 atm", pFinal)
	}
	if dr.IgnitionDelay < 1e-5 || dr.IgnitionDelay > 8e-4 {
		t.Errorf("ignition delay = %v, want O(0.1 ms)", dr.IgnitionDelay)
	}
	// Temperature trajectory is monotone after ignition (no ringing).
	for i := 2; i < len(dr.Temps); i++ {
		if dr.Temps[i] < dr.Temps[i-1]-2 {
			t.Errorf("T dropped at sample %d: %v -> %v", i, dr.Temps[i-1], dr.Temps[i])
		}
	}
}

func TestIgnition0DColdNoIgnition(t *testing.T) {
	dr, err := RunIgnition0D(
		Param{"driver", "tEnd", "1e-4"},
		Param{"driver", "nOut", "5"},
		Param{"init", "T0", "600"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if dT := dr.Temps[len(dr.Temps)-1] - 600; dT > 50 {
		t.Errorf("600 K mixture ignited within 0.1 ms (dT=%v); it should not", dT)
	}
}

func TestIgnition0DScriptEquivalence(t *testing.T) {
	// The script file and the programmatic assembly must produce the
	// same wiring and the same answer.
	repo := Repo()
	f1 := cca.NewFramework(repo, nil)
	if err := AssembleIgnition0D(f1, Param{"driver", "tEnd", "2e-4"}, Param{"driver", "nOut", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := f1.Go("driver", "go"); err != nil {
		t.Fatal(err)
	}

	f2 := cca.NewFramework(repo, nil)
	if err := f2.SetParameter("driver", "tEnd", "2e-4"); err != nil {
		t.Fatal(err)
	}
	if err := f2.SetParameter("driver", "nOut", "8"); err != nil {
		t.Fatal(err)
	}
	script, err := cca.ParseScriptString(Ignition0DScript)
	if err != nil {
		t.Fatal(err)
	}
	if err := script.Execute(f2); err != nil {
		t.Fatal(err)
	}

	d1, _ := f1.Lookup("driver")
	d2, _ := f2.Lookup("driver")
	t1 := d1.(*components.IgnitionDriver).Temps
	t2 := d2.(*components.IgnitionDriver).Temps
	if len(t1) != len(t2) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Errorf("sample %d: %v != %v", i, t1[i], t2[i])
		}
	}
	// Same wiring.
	if len(f1.Connections()) != len(f2.Connections()) {
		t.Errorf("connection counts differ: %d vs %d", len(f1.Connections()), len(f2.Connections()))
	}
}

func TestArenaShowsAssembly(t *testing.T) {
	f := cca.NewFramework(Repo(), nil)
	if err := AssembleIgnition0D(f); err != nil {
		t.Fatal(err)
	}
	arena := cca.Arena(f)
	for _, want := range []string{"ThermoChemistry", "cvode.rhs -> model.rhs", "driver.integrator -> cvode.integrator"} {
		if !strings.Contains(arena, want) {
			t.Errorf("arena missing %q", want)
		}
	}
}

// ---- 2D reaction-diffusion (paper Sec. 4.2, Table 2) ----------------------

func rdParams(extra ...Param) []Param {
	base := []Param{
		{"grace", "nx", "24"}, {"grace", "ny", "24"},
		{"grace", "maxLevels", "2"},
		{"driver", "steps", "2"}, {"driver", "dt", "1e-7"},
		{"driver", "regridEvery", "1"},
	}
	return append(base, extra...)
}

func TestReactionDiffusionEndToEnd(t *testing.T) {
	dr, f, err := RunReactionDiffusion(nil, rdParams()...)
	if err != nil {
		t.Fatal(err)
	}
	// Hot spots present: Tmax well above ambient, Tmin at ambient.
	if dr.TMax < 1500 {
		t.Errorf("Tmax = %v, want hot spots ~1800", dr.TMax)
	}
	if math.Abs(dr.TMin-300) > 20 {
		t.Errorf("Tmin = %v, want ~300", dr.TMin)
	}
	// AMR refined around the hot spots.
	comp, _ := f.Lookup("grace")
	h := comp.(*components.GrACEComponent).Hierarchy()
	if h.NumLevels() < 2 {
		t.Errorf("levels = %d, want refinement around hot spots", h.NumLevels())
	}
	if err := h.CheckProperNesting(); err != nil {
		t.Errorf("hierarchy invariants violated: %v", err)
	}
	if len(dr.StepSeconds) != 2 {
		t.Errorf("step records = %d", len(dr.StepSeconds))
	}
}

func TestReactionDiffusionMassFractionsStayNormalized(t *testing.T) {
	_, f, err := RunReactionDiffusion(nil, rdParams()...)
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := f.Lookup("grace")
	gc := comp.(*components.GrACEComponent)
	d := gc.Field("phi")
	h := gc.Hierarchy()
	for l := 0; l < h.NumLevels(); l++ {
		for _, pd := range d.LocalPatches(l) {
			b := pd.Interior()
			for j := b.Lo[1]; j <= b.Hi[1]; j += 5 {
				for i := b.Lo[0]; i <= b.Hi[0]; i += 5 {
					var s float64
					for k := 1; k < d.NComp; k++ {
						s += pd.At(k, i, j)
					}
					if math.Abs(s-1) > 1e-6 {
						t.Fatalf("Y sum at level %d (%d,%d) = %v", l, i, j, s)
					}
				}
			}
		}
	}
}

func TestReactionDiffusionParallelMatchesSerial(t *testing.T) {
	params := []Param{
		{"grace", "nx", "24"}, {"grace", "ny", "24"},
		{"grace", "maxLevels", "1"},
		{"driver", "steps", "2"}, {"driver", "dt", "1e-7"},
		{"driver", "regridEvery", "0"},
	}
	serial, _, err := RunReactionDiffusion(nil, params...)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	tmax := -1e300
	res := cca.RunSCMD(4, mpi.CPlantModel, Repo(), func(f *cca.Framework, comm *mpi.Comm) error {
		if err := AssembleReactionDiffusion(f, params...); err != nil {
			return err
		}
		if err := f.Go("driver", "go"); err != nil {
			return err
		}
		comp, _ := f.Lookup("driver")
		dr := comp.(*components.RDDriver)
		mu.Lock()
		if dr.TMax > tmax {
			tmax = dr.TMax
		}
		mu.Unlock()
		return nil
	})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if tmax != serial.TMax {
		t.Errorf("parallel Tmax %v != serial %v", tmax, serial.TMax)
	}
	if res.MaxVirtualTime() <= 0 {
		t.Error("virtual time not accumulated")
	}
}

// ---- 2D shock-interface (paper Sec. 4.3, Table 3) --------------------------

func shockParams(extra ...Param) []Param {
	base := []Param{
		{"grace", "nx", "48"}, {"grace", "ny", "24"},
		{"grace", "lx", "2.0"}, {"grace", "ly", "1.0"},
		{"grace", "maxLevels", "2"},
		{"driver", "tEnd", "0.1"}, {"driver", "maxSteps", "50"},
		{"driver", "regridEvery", "5"},
	}
	return append(base, extra...)
}

func TestShockInterfaceEndToEnd(t *testing.T) {
	dr, f, err := RunShockInterface(nil, "GodunovFlux", shockParams()...)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Steps == 0 || dr.FinalTime <= 0 {
		t.Fatalf("no progress: %+v", dr)
	}
	// AMR tracks the shock and interface.
	comp, _ := f.Lookup("grace")
	h := comp.(*components.GrACEComponent).Hierarchy()
	if h.NumLevels() < 2 {
		t.Errorf("levels = %d, want refinement at discontinuities", h.NumLevels())
	}
	if err := h.CheckProperNesting(); err != nil {
		t.Errorf("hierarchy invariants violated: %v", err)
	}
	// Density stays within physical bounds (1..post-shock*ratio-ish).
	gc := comp.(*components.GrACEComponent)
	d := gc.Field("U")
	for l := 0; l < h.NumLevels(); l++ {
		for _, pd := range d.LocalPatches(l) {
			b := pd.Interior()
			for j := b.Lo[1]; j <= b.Hi[1]; j += 4 {
				for i := b.Lo[0]; i <= b.Hi[0]; i += 4 {
					rho := pd.At(euler.IRho, i, j)
					if rho < 0.5 || rho > 12 {
						t.Fatalf("rho at level %d (%d,%d) = %v", l, i, j, rho)
					}
				}
			}
		}
	}
}

func TestShockCirculationDeposition(t *testing.T) {
	// After the shock crosses the interface, baroclinic circulation of
	// negative sign must be deposited (the paper's Fig 7 quantity).
	dr, _, err := RunShockInterface(nil, "GodunovFlux",
		Param{"grace", "nx", "64"}, Param{"grace", "ny", "32"},
		Param{"grace", "lx", "2.0"}, Param{"grace", "ly", "1.0"},
		Param{"grace", "maxLevels", "1"},
		Param{"driver", "tEnd", "0.7"}, Param{"driver", "maxSteps", "400"},
		Param{"driver", "regridEvery", "0"},
	)
	if err != nil {
		t.Fatal(err)
	}
	last := dr.Circulations[len(dr.Circulations)-1]
	if last >= -0.05 {
		t.Errorf("circulation = %v, want clearly negative after interaction", last)
	}
	// Early circulation (pre-interaction) is ~0.
	if first := dr.Circulations[2]; math.Abs(first) > 1e-6 {
		t.Errorf("pre-interaction circulation = %v", first)
	}
}

func TestEFMFluxSwap(t *testing.T) {
	// The paper's headline reuse claim: swap GodunovFlux for EFMFlux
	// (no recompile) and run a strong shock (Mach 3.5) stably.
	dr, _, err := RunShockInterface(nil, "EFMFlux",
		append(shockParams(),
			Param{"gas", "mach", "3.5"},
			Param{"driver", "tEnd", "0.05"},
			Param{"driver", "maxSteps", "60"})...)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Steps == 0 {
		t.Error("EFM run made no progress")
	}
	for _, c := range dr.Circulations {
		if math.IsNaN(c) {
			t.Fatal("NaN circulation: EFM run went unstable")
		}
	}
}

func TestShockScriptAssemblyRuns(t *testing.T) {
	repo := Repo()
	f := cca.NewFramework(repo, nil)
	for _, p := range shockParams(Param{"driver", "maxSteps", "5"}) {
		if err := f.SetParameter(p.Instance, p.Key, p.Value); err != nil {
			t.Fatal(err)
		}
	}
	script, err := cca.ParseScriptString(ShockInterfaceScript)
	if err != nil {
		t.Fatal(err)
	}
	if err := script.Execute(f); err != nil {
		t.Fatal(err)
	}
}

// ---- assembly structure (Tables 1-3) ---------------------------------------

func TestAssembliesMatchPaperTables(t *testing.T) {
	repo := Repo()
	// Table 1: 0D ignition instances.
	f := cca.NewFramework(repo, nil)
	if err := AssembleIgnition0D(f); err != nil {
		t.Fatal(err)
	}
	for _, inst := range []string{"chem", "cvode", "model", "dpdt", "init", "driver"} {
		if _, err := f.ClassOf(inst); err != nil {
			t.Errorf("table 1 instance %q missing", inst)
		}
	}
	// Table 2: reaction-diffusion instances.
	f2 := cca.NewFramework(repo, nil)
	if err := AssembleReactionDiffusion(f2); err != nil {
		t.Fatal(err)
	}
	for _, inst := range []string{"grace", "chem", "drfm", "ic", "diffusion", "maxdiff", "rkc", "cvode", "implicit", "regrid", "driver"} {
		if _, err := f2.ClassOf(inst); err != nil {
			t.Errorf("table 2 instance %q missing", inst)
		}
	}
	// Table 3: shock instances, with both flux choices constructible.
	for _, flux := range []string{"GodunovFlux", "EFMFlux"} {
		f3 := cca.NewFramework(repo, nil)
		if err := AssembleShockInterface(f3, flux); err != nil {
			t.Fatalf("%s: %v", flux, err)
		}
		class, _ := f3.ClassOf("flux")
		if class != flux {
			t.Errorf("flux class = %q, want %q", class, flux)
		}
	}
}

func TestRepoHasAllPaperComponents(t *testing.T) {
	repo := Repo()
	for _, class := range []string{
		"ThermoChemistry", "CvodeComponent", "ProblemModeler", "DPDt",
		"Initializer", "GrACEComponent", "InitialCondition", "DRFMComponent",
		"DiffusionPhysics", "MaxDiffCoeffEvaluator", "ExplicitIntegrator",
		"ImplicitIntegrator", "ErrorEstAndRegrid", "StatisticsComponent",
		"ConicalInterfaceIC", "States", "GodunovFlux", "EFMFlux",
		"InviscidFlux", "CharacteristicQuantities", "ExplicitIntegratorRK2",
		"BoundaryConditions", "GasProperties", "ProlongRestrict",
	} {
		if !repo.Has(class) {
			t.Errorf("repository missing %q", class)
		}
	}
}

func TestHLLCFluxSwap(t *testing.T) {
	// Third flux choice through the same seam: assemble with HLLCFlux.
	dr, _, err := RunShockInterface(nil, "HLLCFlux",
		append(shockParams(), Param{"driver", "maxSteps", "15"})...)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Steps == 0 {
		t.Error("HLLC run made no progress")
	}
	for _, c := range dr.Circulations {
		if math.IsNaN(c) {
			t.Fatal("NaN circulation with HLLC")
		}
	}
}
