package core

import (
	"fmt"
	"runtime"
	"testing"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/exec"
)

// snapshotField flattens every interior cell of every level of a named
// field into one deterministic checkpoint vector.
func snapshotField(t *testing.T, f *cca.Framework, fieldName string) []float64 {
	t.Helper()
	comp, err := f.Lookup("grace")
	if err != nil {
		t.Fatal(err)
	}
	gc := comp.(*components.GrACEComponent)
	d := gc.Field(fieldName)
	if d == nil {
		t.Fatalf("field %q not declared", fieldName)
	}
	h := gc.Hierarchy()
	var out []float64
	for l := 0; l < h.NumLevels(); l++ {
		for _, pd := range d.LocalPatches(l) {
			b := pd.Interior()
			for c := 0; c < d.NComp; c++ {
				for j := b.Lo[1]; j <= b.Hi[1]; j++ {
					for i := b.Lo[0]; i <= b.Hi[0]; i++ {
						out = append(out, pd.At(c, i, j))
					}
				}
			}
		}
	}
	return out
}

func restoreDefaultPool(t *testing.T) {
	t.Helper()
	t.Cleanup(func() { exec.SetDefaultWidth(runtime.GOMAXPROCS(0)) })
}

// TestFlameParallelPoolMatchesSerial is the checkpoint-comparison test
// of the execution engine's determinism contract: the same flame run
// under a width-1 pool and a width-4 pool must produce bit-for-bit
// identical fields and diagnostics.
func TestFlameParallelPoolMatchesSerial(t *testing.T) {
	restoreDefaultPool(t)
	params := []Param{
		{"grace", "nx", "24"}, {"grace", "ny", "24"},
		{"grace", "maxLevels", "2"},
		{"driver", "steps", "2"}, {"driver", "dt", "1e-7"},
		{"driver", "regridEvery", "1"},
	}

	exec.SetDefaultWidth(1)
	drS, fS, err := RunReactionDiffusion(nil, params...)
	if err != nil {
		t.Fatal(err)
	}
	refField := snapshotField(t, fS, "phi")

	exec.SetDefaultWidth(4)
	drP, fP, err := RunReactionDiffusion(nil, params...)
	if err != nil {
		t.Fatal(err)
	}
	gotField := snapshotField(t, fP, "phi")

	if drS.TMax != drP.TMax || drS.TMin != drP.TMin {
		t.Errorf("extrema differ: serial (%v, %v) vs parallel (%v, %v)",
			drS.TMax, drS.TMin, drP.TMax, drP.TMin)
	}
	if len(refField) != len(gotField) {
		t.Fatalf("checkpoint sizes differ: %d vs %d (hierarchies diverged)", len(refField), len(gotField))
	}
	for i := range refField {
		if refField[i] != gotField[i] {
			t.Fatalf("checkpoint cell %d differs: serial %v, parallel %v", i, refField[i], gotField[i])
		}
	}
}

// TestShockParallelPoolMatchesSerial repeats the checkpoint comparison
// for the shock-interface assembly (RK2 + flux sweeps + circulation).
func TestShockParallelPoolMatchesSerial(t *testing.T) {
	restoreDefaultPool(t)
	params := []Param{
		{"grace", "nx", "32"}, {"grace", "ny", "16"},
		{"grace", "maxLevels", "2"},
		{"driver", "tEnd", "0.05"}, {"driver", "maxSteps", "8"},
		{"driver", "regridEvery", "4"},
	}

	exec.SetDefaultWidth(1)
	drS, fS, err := RunShockInterface(nil, "GodunovFlux", params...)
	if err != nil {
		t.Fatal(err)
	}
	refField := snapshotField(t, fS, "U")

	exec.SetDefaultWidth(4)
	drP, fP, err := RunShockInterface(nil, "GodunovFlux", params...)
	if err != nil {
		t.Fatal(err)
	}
	gotField := snapshotField(t, fP, "U")

	if len(drS.Circulations) != len(drP.Circulations) {
		t.Fatalf("step counts differ: %d vs %d", len(drS.Circulations), len(drP.Circulations))
	}
	for i := range drS.Circulations {
		if drS.Circulations[i] != drP.Circulations[i] {
			t.Errorf("circulation %d differs: serial %v, parallel %v", i, drS.Circulations[i], drP.Circulations[i])
		}
	}
	if len(refField) != len(gotField) {
		t.Fatalf("checkpoint sizes differ: %d vs %d", len(refField), len(gotField))
	}
	for i := range refField {
		if refField[i] != gotField[i] {
			t.Fatalf("checkpoint cell %d differs: serial %v, parallel %v", i, refField[i], gotField[i])
		}
	}
}

// TestExecutionComponentWiring runs the flame with an explicit
// ExecutionComponent connected to every exec uses port — the
// CCA-faithful way to control intra-rank parallelism — and checks the
// result matches the default-pool run exactly.
func TestExecutionComponentWiring(t *testing.T) {
	restoreDefaultPool(t)
	params := []Param{
		{"grace", "nx", "24"}, {"grace", "ny", "24"},
		{"grace", "maxLevels", "1"},
		{"driver", "steps", "1"}, {"driver", "dt", "1e-7"},
		{"driver", "regridEvery", "0"},
	}

	exec.SetDefaultWidth(1)
	_, fS, err := RunReactionDiffusion(nil, params...)
	if err != nil {
		t.Fatal(err)
	}
	ref := snapshotField(t, fS, "phi")

	f := cca.NewFramework(Repo(), nil)
	if err := AssembleReactionDiffusion(f, params...); err != nil {
		t.Fatal(err)
	}
	if err := f.SetParameter("pool", "workers", "3"); err != nil {
		t.Fatal(err)
	}
	if err := f.Instantiate("ExecutionComponent", "pool"); err != nil {
		t.Fatal(err)
	}
	for _, user := range []string{"driver", "rkc", "implicit", "maxdiff"} {
		if err := f.Connect(user, "exec", "pool", "exec"); err != nil {
			t.Fatalf("connect %s.exec: %v", user, err)
		}
	}
	if err := f.Go("driver", "go"); err != nil {
		t.Fatal(err)
	}
	got := snapshotField(t, f, "phi")

	if len(ref) != len(got) {
		t.Fatalf("checkpoint sizes differ: %d vs %d", len(ref), len(got))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("cell %d differs: default pool %v, ExecutionComponent %v", i, ref[i], got[i])
		}
	}

	comp, err := f.Lookup("pool")
	if err != nil {
		t.Fatal(err)
	}
	if w := comp.(components.ExecutionPort).Pool().Width(); w != 3 {
		t.Errorf("pool width = %d, want 3 (workers parameter)", w)
	}
}

// TestExecutionPortInArena checks the new port shows up in the textual
// arena view like any other CCA wiring.
func TestExecutionPortInArena(t *testing.T) {
	f := cca.NewFramework(Repo(), nil)
	if err := AssembleReactionDiffusion(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Instantiate("ExecutionComponent", "pool"); err != nil {
		t.Fatal(err)
	}
	if err := f.Connect("driver", "exec", "pool", "exec"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range f.Connections() {
		if c.User == "driver" && c.UsesPort == "exec" && c.Provider == "pool" {
			found = true
			if c.PortType != components.ExecutionPortType {
				t.Errorf("port type = %q, want %q", c.PortType, components.ExecutionPortType)
			}
		}
	}
	if !found {
		t.Fatal(fmt.Sprintf("driver.exec -> pool.exec not in %v", f.Connections()))
	}
}
