package exec

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"ccahydro/internal/amr"
	"ccahydro/internal/field"
	"ccahydro/internal/telemetry"
)

// TestForEachMatchesSerial checks the determinism contract: a parallel
// ForEach produces bit-for-bit the same results as a plain serial loop.
func TestForEachMatchesSerial(t *testing.T) {
	const n = 1003
	f := func(i int) float64 {
		x := float64(i) * 0.37
		return math.Sin(x)*math.Exp(-x/100) + math.Sqrt(x+1)
	}
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		want[i] = f(i)
	}
	for _, width := range []int{1, 2, 3, 4, 8, 17} {
		p := NewPool(width)
		got := make([]float64, n)
		// Run several times: scheduling must never matter.
		for rep := 0; rep < 3; rep++ {
			for i := range got {
				got[i] = 0
			}
			p.ForEach(n, func(_, i int) { got[i] = f(i) })
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("width %d rep %d: got[%d] = %v, want %v", width, rep, i, got[i], want[i])
				}
			}
		}
	}
}

// TestForEachChunkCoverage checks every index is visited exactly once
// and worker slots stay in range.
func TestForEachChunkCoverage(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, width := range []int{1, 3, 8} {
			p := NewPool(width)
			visits := make([]int32, n)
			p.ForEachChunk(n, func(w, lo, hi int) {
				if w < 0 || w >= p.Width() {
					t.Errorf("worker slot %d out of [0, %d)", w, p.Width())
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d width=%d: index %d visited %d times", n, width, i, v)
				}
			}
		}
	}
}

// TestWorkerSlotStable checks that item i maps to the same worker slot
// on every run — the property per-worker scratch determinism rests on.
func TestWorkerSlotStable(t *testing.T) {
	const n = 211
	p := NewPool(4)
	ref := make([]int, n)
	p.ForEach(n, func(w, i int) { ref[i] = w })
	for rep := 0; rep < 5; rep++ {
		got := make([]int, n)
		p.ForEach(n, func(w, i int) { got[i] = w })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("rep %d: item %d ran under slot %d, previously %d", rep, i, got[i], ref[i])
			}
		}
	}
}

// TestPanicPropagation checks a worker panic surfaces in the caller as
// *PanicError carrying the original value.
func TestPanicPropagation(t *testing.T) {
	p := NewPool(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if pe.Value != "boom 7" {
			t.Errorf("panic value = %v, want %q", pe.Value, "boom 7")
		}
		if pe.Stack == "" {
			t.Error("panic stack not captured")
		}
	}()
	p.ForEach(64, func(_, i int) {
		if i == 7 {
			panic("boom 7")
		}
	})
}

// TestPanicDoesNotPoisonPool checks the pool keeps working after a
// panicked loop.
func TestPanicDoesNotPoisonPool(t *testing.T) {
	p := NewPool(4)
	func() {
		defer func() { recover() }()
		p.ForEach(32, func(_, i int) { panic(i) })
	}()
	var sum int64
	p.ForEach(100, func(_, i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum after panic = %d, want 4950", sum)
	}
}

// TestNestedForEach checks an inner ForEach issued from inside an outer
// one completes (no deadlock) and computes correctly even when the
// outer loop saturates every worker.
func TestNestedForEach(t *testing.T) {
	p := NewPool(4)
	const outer, inner = 16, 257
	totals := make([]int64, outer)
	p.ForEach(outer, func(_, oi int) {
		var s int64
		p.ForEach(inner, func(_, ii int) { atomic.AddInt64(&s, int64(ii)) })
		totals[oi] = s
	})
	want := int64(inner * (inner - 1) / 2)
	for oi, s := range totals {
		if s != want {
			t.Fatalf("outer %d: inner sum = %d, want %d", oi, s, want)
		}
	}
	// Three levels deep, for good measure.
	var deep int64
	p.ForEach(4, func(_, _ int) {
		p.ForEach(4, func(_, _ int) {
			p.ForEach(4, func(_, _ int) { atomic.AddInt64(&deep, 1) })
		})
	})
	if deep != 64 {
		t.Fatalf("triple-nested count = %d, want 64", deep)
	}
}

// TestArenaDeterminism checks per-worker arena scratch does not perturb
// results: slot w is private to chunk w, values never leak across items.
func TestArenaDeterminism(t *testing.T) {
	const n = 500
	p := NewPool(8)
	arena := NewArena(p, func() []float64 { return make([]float64, 4) })
	out := make([]float64, n)
	p.ForEach(n, func(w, i int) {
		s := arena.Get(w)
		s[0] = float64(i)
		s[1] = s[0] * s[0]
		out[i] = s[1] + 1
	})
	for i := range out {
		if want := float64(i)*float64(i) + 1; out[i] != want {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want)
		}
	}
	if arena.Width() != p.Width() {
		t.Errorf("arena width %d != pool width %d", arena.Width(), p.Width())
	}
}

// TestForEachPatchDisjointWrites is the -race stress test: concurrent
// workers write every cell of disjoint ghost-padded patches through the
// PatchData API, repeatedly, while a nested loop reads them back. Any
// overlap or pool bug shows up under the race detector.
func TestForEachPatchDisjointWrites(t *testing.T) {
	h := amr.NewHierarchy(amr.NewBox(0, 0, 63, 63), 2, 1, 1)
	d := field.New("u", h, 3, 2, nil)
	// Split level 0 into many patches by regridding is unnecessary:
	// build patch data over disjoint boxes directly.
	var patches []*field.PatchData
	for _, p := range h.Level(0).Patches {
		patches = append(patches, d.Local(p.ID))
	}
	if len(patches) == 0 {
		t.Fatal("no patches")
	}
	// Manufacture extra disjoint patches to give the pool real fan-out.
	for k := 0; k < 12; k++ {
		b := amr.NewBox(k*8, 70, k*8+7, 77)
		patches = append(patches, field.NewPatchData(&amr.Patch{ID: 100 + k, Box: b}, 3, 2))
	}
	p := NewPool(8)
	for rep := 0; rep < 20; rep++ {
		ForEachPatch(p, patches, func(w int, pd *field.PatchData) {
			b := pd.Interior()
			for c := 0; c < pd.NComp; c++ {
				for j := b.Lo[1]; j <= b.Hi[1]; j++ {
					for i := b.Lo[0]; i <= b.Hi[0]; i++ {
						pd.Set(c, i, j, float64(c*1000+i+j*7+rep))
					}
				}
			}
		})
		// Read back in a second parallel sweep.
		ForEachPatch(p, patches, func(_ int, pd *field.PatchData) {
			b := pd.Interior()
			for c := 0; c < pd.NComp; c++ {
				for j := b.Lo[1]; j <= b.Hi[1]; j++ {
					for i := b.Lo[0]; i <= b.Hi[0]; i++ {
						if got, want := pd.At(c, i, j), float64(c*1000+i+j*7+rep); got != want {
							t.Errorf("patch %d cell (%d,%d,%d) = %v, want %v", pd.Patch.ID, c, i, j, got, want)
							return
						}
					}
				}
			}
		})
	}
}

// TestSerialPoolNoGoroutines checks width-1 pools never spawn workers
// (the SCMD pinning contract: pinned ranks stay strictly serial).
func TestSerialPoolNoGoroutines(t *testing.T) {
	p := NewPool(1)
	ran := 0
	p.ForEach(10, func(w, i int) {
		if w != 0 {
			t.Fatalf("serial pool used slot %d", w)
		}
		ran++
	})
	if ran != 10 {
		t.Fatalf("ran %d items, want 10", ran)
	}
	// The epoch machinery must not have been touched: no workers
	// spawned, no epoch published.
	if p.spawned.Load() {
		t.Fatal("width-1 pool spawned workers")
	}
	if p.state.Load() != 0 {
		t.Fatalf("width-1 pool published an epoch: state=%#x", p.state.Load())
	}
}

// TestForEachChunkEdgeCases locks in the boundary behavior of the
// epoch path: empty and negative loops do nothing, n < width produces
// exactly n one-item chunks, n == width one item per slot, and chunk
// ranges tile [0, n) in order.
func TestForEachChunkEdgeCases(t *testing.T) {
	cases := []struct {
		n, width   int
		wantChunks int
	}{
		{n: 0, width: 4, wantChunks: 0},
		{n: -3, width: 4, wantChunks: 0},
		{n: 1, width: 4, wantChunks: 1},
		{n: 3, width: 8, wantChunks: 3}, // n < width: one item per chunk
		{n: 4, width: 4, wantChunks: 4}, // n == width
		{n: 5, width: 4, wantChunks: 4},
		{n: 100, width: 1, wantChunks: 1},
	}
	for _, tc := range cases {
		p := NewPool(tc.width)
		var mu sync.Mutex
		type rng struct{ w, lo, hi int }
		var got []rng
		p.ForEachChunk(tc.n, func(w, lo, hi int) {
			mu.Lock()
			got = append(got, rng{w, lo, hi})
			mu.Unlock()
		})
		if len(got) != tc.wantChunks {
			t.Errorf("n=%d width=%d: %d chunks, want %d", tc.n, tc.width, len(got), tc.wantChunks)
			continue
		}
		sort.Slice(got, func(i, j int) bool { return got[i].w < got[j].w })
		next := 0
		for c, r := range got {
			if r.w != c {
				t.Errorf("n=%d width=%d: chunk %d ran under slot %d", tc.n, tc.width, c, r.w)
			}
			if r.lo != next || r.hi <= r.lo {
				t.Errorf("n=%d width=%d: chunk %d range [%d,%d), want lo=%d and non-empty",
					tc.n, tc.width, c, r.lo, r.hi, next)
			}
			if tc.n < tc.width && r.hi-r.lo != 1 {
				t.Errorf("n=%d width=%d: chunk %d has %d items, want 1", tc.n, tc.width, c, r.hi-r.lo)
			}
			next = r.hi
		}
		if tc.wantChunks > 0 && next != tc.n {
			t.Errorf("n=%d width=%d: chunks cover [0,%d), want [0,%d)", tc.n, tc.width, next, tc.n)
		}
	}
}

// TestNestedFromWorkerMapping checks that a ForEach issued from inside
// a worker chunk (the inline fallback) uses the same deterministic
// chunk→slot mapping as a top-level parallel loop.
func TestNestedFromWorkerMapping(t *testing.T) {
	p := NewPool(4)
	const inner = 10
	ref := make([]int, inner)
	p.ForEach(inner, func(w, i int) { ref[i] = w }) // top-level mapping
	slots := make([][]int, 4)
	p.ForEachChunk(4, func(w, lo, hi int) {
		m := make([]int, inner)
		p.ForEach(inner, func(iw, i int) { m[i] = iw }) // nested: inline
		slots[w] = m
	})
	for w, m := range slots {
		for i := range m {
			if m[i] != ref[i] {
				t.Fatalf("outer slot %d: nested item %d ran under slot %d, top-level uses %d",
					w, i, m[i], ref[i])
			}
		}
	}
}

// TestConcurrentCallersSharedPool checks the SCMD sharing contract: any
// number of goroutines may drive ForEach on one pool concurrently (one
// wins the epoch machinery, the rest run inline) with correct results
// and no deadlock. Run under -race in scripts/check.sh.
func TestConcurrentCallersSharedPool(t *testing.T) {
	p := NewPool(4)
	const callers, loops, n = 6, 25, 300
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < loops; rep++ {
				var sum int64
				p.ForEach(n, func(_, i int) { atomic.AddInt64(&sum, int64(i)) })
				if sum != n*(n-1)/2 {
					errs <- fmt.Errorf("sum = %d, want %d", sum, n*(n-1)/2)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPanicInCallerChunk checks a panic in the caller-owned last chunk
// surfaces as *PanicError exactly like a worker panic, and the pool
// stays usable.
func TestPanicInCallerChunk(t *testing.T) {
	p := NewPool(4)
	func() {
		defer func() {
			r := recover()
			pe, ok := r.(*PanicError)
			if !ok {
				t.Fatalf("recovered %T (%v), want *PanicError", r, r)
			}
			if pe.Value != "last chunk" {
				t.Errorf("panic value = %v, want %q", pe.Value, "last chunk")
			}
		}()
		p.ForEachChunk(4, func(w, lo, hi int) {
			if w == 3 { // the caller's own chunk
				panic("last chunk")
			}
		})
	}()
	var sum int64
	p.ForEach(10, func(_, i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 45 {
		t.Fatalf("sum after caller panic = %d, want 45", sum)
	}
}

// TestNestedPanicPropagation checks panics cross the inline fallback of
// a nested loop as *PanicError without disturbing the outer epoch.
func TestNestedPanicPropagation(t *testing.T) {
	p := NewPool(4)
	var caught int64
	p.ForEachChunk(4, func(w, lo, hi int) {
		err := func() (err any) {
			defer func() { err = recover() }()
			p.ForEach(8, func(_, i int) {
				if i == 5 {
					panic("inner")
				}
			})
			return nil
		}()
		if pe, ok := err.(*PanicError); ok && pe.Value == "inner" {
			atomic.AddInt64(&caught, 1)
		}
	})
	if caught != 4 {
		t.Fatalf("nested panic caught in %d/4 outer chunks", caught)
	}
}

// TestEpochHandoffZeroAlloc is the steady-state allocation gate for the
// epoch engine: after warm-up, a parallel ForEachChunk must not
// allocate — the epoch publish is one atomic store and the join one
// atomic counter, with the job descriptor reused in place.
func TestEpochHandoffZeroAlloc(t *testing.T) {
	p := NewPool(4)
	var cells [256]float64
	fn := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			cells[i] += float64(i)
		}
	}
	p.ForEachChunk(len(cells), fn) // warm up: spawn workers
	allocs := testing.AllocsPerRun(200, func() {
		p.ForEachChunk(len(cells), fn)
	})
	if allocs != 0 {
		t.Fatalf("epoch handoff allocates %.1f objects/op, want 0", allocs)
	}
}

// TestEpochHandoffZeroAllocTelemetryAttached repeats the epoch-engine
// allocation gate with the live telemetry plane in the picture: a hub
// with this rank's handle attached and a per-step NoteStep in the
// measured body, exactly what an instrumented driver step does around
// its ForEachChunk calls. The epoch handoff itself has no telemetry
// emit sites, and the per-step structured event rides the in-place
// flight ring — the combined loop must still be 0 allocs/op.
func TestEpochHandoffZeroAllocTelemetryAttached(t *testing.T) {
	hub := telemetry.NewHub(1, nil)
	rk := hub.Rank(0)
	rk.SetClock(func() float64 { return 1.0 })
	p := NewPool(4)
	var cells [256]float64
	fn := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			cells[i] += float64(i)
		}
	}
	p.ForEachChunk(len(cells), fn) // warm up: spawn workers
	rk.NoteStep(0)                 // warm the event-count map
	allocs := testing.AllocsPerRun(200, func() {
		rk.NoteStep(1)
		p.ForEachChunk(len(cells), fn)
	})
	if allocs != 0 {
		t.Fatalf("telemetry-attached epoch handoff allocates %.1f objects/op, want 0", allocs)
	}
}

func TestDefaultPoolWidthOverride(t *testing.T) {
	SetDefaultWidth(3)
	if w := Default().Width(); w != 3 {
		t.Fatalf("default width = %d, want 3", w)
	}
	SetDefaultWidth(0) // clamps to 1
	if w := Default().Width(); w != 1 {
		t.Fatalf("default width = %d, want 1", w)
	}
}
