package exec

import (
	"math"
	"sync/atomic"
	"testing"

	"ccahydro/internal/amr"
	"ccahydro/internal/field"
)

// TestForEachMatchesSerial checks the determinism contract: a parallel
// ForEach produces bit-for-bit the same results as a plain serial loop.
func TestForEachMatchesSerial(t *testing.T) {
	const n = 1003
	f := func(i int) float64 {
		x := float64(i) * 0.37
		return math.Sin(x)*math.Exp(-x/100) + math.Sqrt(x+1)
	}
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		want[i] = f(i)
	}
	for _, width := range []int{1, 2, 3, 4, 8, 17} {
		p := NewPool(width)
		got := make([]float64, n)
		// Run several times: scheduling must never matter.
		for rep := 0; rep < 3; rep++ {
			for i := range got {
				got[i] = 0
			}
			p.ForEach(n, func(_, i int) { got[i] = f(i) })
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("width %d rep %d: got[%d] = %v, want %v", width, rep, i, got[i], want[i])
				}
			}
		}
	}
}

// TestForEachChunkCoverage checks every index is visited exactly once
// and worker slots stay in range.
func TestForEachChunkCoverage(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, width := range []int{1, 3, 8} {
			p := NewPool(width)
			visits := make([]int32, n)
			p.ForEachChunk(n, func(w, lo, hi int) {
				if w < 0 || w >= p.Width() {
					t.Errorf("worker slot %d out of [0, %d)", w, p.Width())
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d width=%d: index %d visited %d times", n, width, i, v)
				}
			}
		}
	}
}

// TestWorkerSlotStable checks that item i maps to the same worker slot
// on every run — the property per-worker scratch determinism rests on.
func TestWorkerSlotStable(t *testing.T) {
	const n = 211
	p := NewPool(4)
	ref := make([]int, n)
	p.ForEach(n, func(w, i int) { ref[i] = w })
	for rep := 0; rep < 5; rep++ {
		got := make([]int, n)
		p.ForEach(n, func(w, i int) { got[i] = w })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("rep %d: item %d ran under slot %d, previously %d", rep, i, got[i], ref[i])
			}
		}
	}
}

// TestPanicPropagation checks a worker panic surfaces in the caller as
// *PanicError carrying the original value.
func TestPanicPropagation(t *testing.T) {
	p := NewPool(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if pe.Value != "boom 7" {
			t.Errorf("panic value = %v, want %q", pe.Value, "boom 7")
		}
		if pe.Stack == "" {
			t.Error("panic stack not captured")
		}
	}()
	p.ForEach(64, func(_, i int) {
		if i == 7 {
			panic("boom 7")
		}
	})
}

// TestPanicDoesNotPoisonPool checks the pool keeps working after a
// panicked loop.
func TestPanicDoesNotPoisonPool(t *testing.T) {
	p := NewPool(4)
	func() {
		defer func() { recover() }()
		p.ForEach(32, func(_, i int) { panic(i) })
	}()
	var sum int64
	p.ForEach(100, func(_, i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum after panic = %d, want 4950", sum)
	}
}

// TestNestedForEach checks an inner ForEach issued from inside an outer
// one completes (no deadlock) and computes correctly even when the
// outer loop saturates every worker.
func TestNestedForEach(t *testing.T) {
	p := NewPool(4)
	const outer, inner = 16, 257
	totals := make([]int64, outer)
	p.ForEach(outer, func(_, oi int) {
		var s int64
		p.ForEach(inner, func(_, ii int) { atomic.AddInt64(&s, int64(ii)) })
		totals[oi] = s
	})
	want := int64(inner * (inner - 1) / 2)
	for oi, s := range totals {
		if s != want {
			t.Fatalf("outer %d: inner sum = %d, want %d", oi, s, want)
		}
	}
	// Three levels deep, for good measure.
	var deep int64
	p.ForEach(4, func(_, _ int) {
		p.ForEach(4, func(_, _ int) {
			p.ForEach(4, func(_, _ int) { atomic.AddInt64(&deep, 1) })
		})
	})
	if deep != 64 {
		t.Fatalf("triple-nested count = %d, want 64", deep)
	}
}

// TestArenaDeterminism checks per-worker arena scratch does not perturb
// results: slot w is private to chunk w, values never leak across items.
func TestArenaDeterminism(t *testing.T) {
	const n = 500
	p := NewPool(8)
	arena := NewArena(p, func() []float64 { return make([]float64, 4) })
	out := make([]float64, n)
	p.ForEach(n, func(w, i int) {
		s := arena.Get(w)
		s[0] = float64(i)
		s[1] = s[0] * s[0]
		out[i] = s[1] + 1
	})
	for i := range out {
		if want := float64(i)*float64(i) + 1; out[i] != want {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want)
		}
	}
	if arena.Width() != p.Width() {
		t.Errorf("arena width %d != pool width %d", arena.Width(), p.Width())
	}
}

// TestForEachPatchDisjointWrites is the -race stress test: concurrent
// workers write every cell of disjoint ghost-padded patches through the
// PatchData API, repeatedly, while a nested loop reads them back. Any
// overlap or pool bug shows up under the race detector.
func TestForEachPatchDisjointWrites(t *testing.T) {
	h := amr.NewHierarchy(amr.NewBox(0, 0, 63, 63), 2, 1, 1)
	d := field.New("u", h, 3, 2, nil)
	// Split level 0 into many patches by regridding is unnecessary:
	// build patch data over disjoint boxes directly.
	var patches []*field.PatchData
	for _, p := range h.Level(0).Patches {
		patches = append(patches, d.Local(p.ID))
	}
	if len(patches) == 0 {
		t.Fatal("no patches")
	}
	// Manufacture extra disjoint patches to give the pool real fan-out.
	for k := 0; k < 12; k++ {
		b := amr.NewBox(k*8, 70, k*8+7, 77)
		patches = append(patches, field.NewPatchData(&amr.Patch{ID: 100 + k, Box: b}, 3, 2))
	}
	p := NewPool(8)
	for rep := 0; rep < 20; rep++ {
		ForEachPatch(p, patches, func(w int, pd *field.PatchData) {
			b := pd.Interior()
			for c := 0; c < pd.NComp; c++ {
				for j := b.Lo[1]; j <= b.Hi[1]; j++ {
					for i := b.Lo[0]; i <= b.Hi[0]; i++ {
						pd.Set(c, i, j, float64(c*1000+i+j*7+rep))
					}
				}
			}
		})
		// Read back in a second parallel sweep.
		ForEachPatch(p, patches, func(_ int, pd *field.PatchData) {
			b := pd.Interior()
			for c := 0; c < pd.NComp; c++ {
				for j := b.Lo[1]; j <= b.Hi[1]; j++ {
					for i := b.Lo[0]; i <= b.Hi[0]; i++ {
						if got, want := pd.At(c, i, j), float64(c*1000+i+j*7+rep); got != want {
							t.Errorf("patch %d cell (%d,%d,%d) = %v, want %v", pd.Patch.ID, c, i, j, got, want)
							return
						}
					}
				}
			}
		})
	}
}

// TestSerialPoolNoGoroutines checks width-1 pools never spawn workers
// (the SCMD pinning contract: pinned ranks stay strictly serial).
func TestSerialPoolNoGoroutines(t *testing.T) {
	p := NewPool(1)
	ran := 0
	p.ForEach(10, func(w, i int) {
		if w != 0 {
			t.Fatalf("serial pool used slot %d", w)
		}
		ran++
	})
	if ran != 10 {
		t.Fatalf("ran %d items, want 10", ran)
	}
	// spawn must not have fired: jobs queue still empty and unserviced.
	select {
	case p.jobs <- &job{chunks: 0, fin: make(chan struct{})}:
		// Buffered send succeeds; nobody is listening — drain it back out.
		<-p.jobs
	default:
		t.Fatal("jobs queue unexpectedly full")
	}
}

func TestDefaultPoolWidthOverride(t *testing.T) {
	SetDefaultWidth(3)
	if w := Default().Width(); w != 3 {
		t.Fatalf("default width = %d, want 3", w)
	}
	SetDefaultWidth(0) // clamps to 1
	if w := Default().Width(); w != 1 {
		t.Fatalf("default width = %d, want 1", w)
	}
}
