// Package exec provides the shared goroutine worker pool behind the
// repository's patch-parallel hot loops. The paper's performance story
// is that component boundaries cost nothing while the physics kernels
// dominate runtime; this package is the lever that lets those kernels
// use every core. Block-structured SAMR gets its parallelism from the
// independence of same-level patch updates (each patch's RHS/flux
// evaluation reads its own ghost-padded array and writes its own
// interior), so a level advance decomposes into an embarrassingly
// parallel ForEach over patches — and stiff per-cell chemistry
// decomposes further into a ForEach over cells.
//
// Design constraints, in order:
//
//  1. Determinism. Work item i always runs under the same worker slot
//     w regardless of scheduling, and callers combine any per-slot
//     partial results in slot order, so a parallel run is bit-for-bit
//     identical to a serial run of the same loop.
//  2. Nested safety. The calling goroutine always participates in its
//     own loop (it claims chunks like any worker), so a ForEach issued
//     from inside another ForEach completes even when every pool
//     worker is busy — there is no deadlock by construction.
//  3. Zero overhead when serial. With width 1 (the default on a
//     single-CPU host, and the pinned configuration for SCMD
//     rank-parallel runs) ForEach degenerates to an inline loop with
//     no goroutines, channels, or allocations.
//  4. Panic transparency. A panic inside a work item is captured with
//     its stack and re-raised in the calling goroutine as *PanicError,
//     so component contracts (drivers panic on wiring bugs) survive
//     parallel execution.
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ccahydro/internal/field"
	"ccahydro/internal/obs"
)

// PanicError wraps a panic captured inside a pool task. It is re-raised
// in the goroutine that issued the ForEach.
type PanicError struct {
	Value any    // the original panic value
	Stack string // stack of the panicking worker
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: panic in parallel task: %v", e.Value)
}

// job is one ForEach invocation: n items split into `chunks` contiguous
// ranges, claimed by participants through an atomic counter. The worker
// slot passed to fn is the chunk index, so the slot→items mapping is a
// pure function of (n, chunks) — the root of the determinism guarantee.
type job struct {
	n      int
	chunks int32
	next   int32 // atomic: next unclaimed chunk
	done   int32 // atomic: finished chunks
	fn     func(w, lo, hi int)
	fin    chan struct{}
	pe     atomic.Pointer[PanicError]
	// tr, when non-nil, records one span per executed chunk on worker
	// track 1+w (captured at submission so mid-job SetTracer calls
	// cannot tear a job's events).
	tr *obs.Tracer
}

// bounds returns the half-open item range [lo, hi) of chunk c.
func (j *job) bounds(c int) (lo, hi int) {
	ch := int(j.chunks)
	return c * j.n / ch, (c + 1) * j.n / ch
}

func (j *job) runChunk(c int) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 1<<14)
			buf = buf[:runtime.Stack(buf, false)]
			j.pe.CompareAndSwap(nil, &PanicError{Value: r, Stack: string(buf)})
		}
		if atomic.AddInt32(&j.done, 1) == j.chunks {
			close(j.fin)
		}
	}()
	lo, hi := j.bounds(c)
	if j.tr != nil {
		defer j.tr.SpanTid(1+c, "exec", "chunk")()
	}
	j.fn(c, lo, hi)
}

// drain claims and executes chunks until none remain.
func (j *job) drain() {
	for {
		c := atomic.AddInt32(&j.next, 1) - 1
		if c >= j.chunks {
			return
		}
		j.runChunk(int(c))
	}
}

// Pool is a lazily-started goroutine worker pool. The zero value is not
// usable; construct with NewPool. Pools are safe for concurrent use by
// multiple goroutines (e.g. the in-process SCMD rank cohort shares one
// pool, bounding total hardware parallelism at Width regardless of rank
// count).
type Pool struct {
	width int
	jobs  chan *job
	start sync.Once
	// tr holds the optional tracer; atomic so SetTracer can race with
	// in-flight ForEach calls from other ranks sharing the pool.
	tr atomic.Pointer[obs.Tracer]
}

// SetTracer attaches an event tracer: every subsequently executed chunk
// records a span on worker track 1+w. nil detaches. The serial width-1
// fast path stays span-free and allocation-free either way.
func (p *Pool) SetTracer(t *obs.Tracer) { p.tr.Store(t) }

// NewPool creates a pool with the given width (maximum parallelism and
// worker-slot count). Width < 1 is clamped to 1. Workers are spawned
// lazily on the first parallel ForEach; a width-1 pool never spawns
// anything.
func NewPool(width int) *Pool {
	if width < 1 {
		width = 1
	}
	return &Pool{width: width, jobs: make(chan *job, 4*width)}
}

// Width returns the worker-slot count: fn's w argument is always in
// [0, Width()). Size per-worker scratch arenas by it.
func (p *Pool) Width() int { return p.width }

func (p *Pool) spawn() {
	// width resident workers; the caller of each ForEach participates
	// too, so a saturated pool still makes progress on nested loops.
	for i := 0; i < p.width; i++ {
		go func() {
			for j := range p.jobs {
				j.drain()
			}
		}()
	}
}

// ForEachChunk partitions [0, n) into at most Width contiguous chunks
// and calls fn(w, lo, hi) once per chunk, in parallel. w is the chunk
// index — stable for a given n, so per-w scratch yields deterministic
// results. Blocks until every chunk has finished; panics inside fn are
// re-raised here as *PanicError.
func (p *Pool) ForEachChunk(n int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := p.width
	if chunks > n {
		chunks = n
	}
	if chunks == 1 {
		// Serial fast path: same (w, lo, hi) mapping, no machinery.
		fn(0, 0, n)
		return
	}
	j := &job{n: n, chunks: int32(chunks), fn: fn, fin: make(chan struct{}), tr: p.tr.Load()}
	p.start.Do(p.spawn)
	// Advertise one handle per chunk beyond the caller's own share;
	// workers that pick up an exhausted job return immediately. Posting
	// is best-effort: a full queue only costs parallelism, never
	// correctness, because the caller drains the job itself.
	for i := 1; i < chunks; i++ {
		select {
		case p.jobs <- j:
		default:
			i = chunks // queue full; stop advertising
		}
	}
	j.drain()
	<-j.fin
	if pe := j.pe.Load(); pe != nil {
		panic(pe)
	}
}

// ForEach calls fn(w, i) for every i in [0, n), in parallel across at
// most Width workers. Item i always runs under the same worker slot w
// for a given n (chunked contiguously), so per-worker scratch does not
// perturb results. Blocks until done; worker panics re-raise here.
func (p *Pool) ForEach(n int, fn func(w, i int)) {
	p.ForEachChunk(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(w, i)
		}
	})
}

// ForEachPatch applies fn to every patch of a level in parallel — the
// SAMR hot-loop shape: each patch's update is independent within a
// level given filled ghosts, so patches fan out across workers.
func ForEachPatch(p *Pool, patches []*field.PatchData, fn func(w int, pd *field.PatchData)) {
	p.ForEach(len(patches), func(w, i int) { fn(w, patches[i]) })
}

var (
	defMu sync.Mutex
	def   *Pool
)

// Default returns the process-wide pool, created on first use with
// width runtime.GOMAXPROCS(0). Components whose optional ExecutionPort
// is unconnected fall back to it, so standard assemblies parallelize
// automatically on multicore hosts and stay serial on one CPU.
func Default() *Pool {
	defMu.Lock()
	defer defMu.Unlock()
	if def == nil {
		def = NewPool(runtime.GOMAXPROCS(0))
	}
	return def
}

// SetDefaultWidth replaces the default pool with one of the given
// width. It is a test and benchmark hook (the CCA-faithful way to pin
// the width is an ExecutionComponent with the "workers" parameter);
// callers must not have ForEach calls in flight on the old pool.
func SetDefaultWidth(width int) {
	defMu.Lock()
	def = NewPool(width)
	defMu.Unlock()
}
