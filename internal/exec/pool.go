// Package exec provides the shared worker pool behind the repository's
// patch-parallel hot loops. The paper's performance story is that
// component boundaries cost nothing while the physics kernels dominate
// runtime; this package is the lever that lets those kernels use every
// core. Block-structured SAMR gets its parallelism from the
// independence of same-level patch updates (each patch's RHS/flux
// evaluation reads its own ghost-padded array and writes its own
// interior), so a level advance decomposes into an embarrassingly
// parallel ForEach over patches — and stiff per-cell chemistry
// decomposes further into a ForEach over cells.
//
// The pool is a persistent-worker epoch engine: workers are spawned
// once and live for the pool's lifetime, advancing through loop epochs
// via a per-pool epoch counter. Publishing an epoch is one atomic store
// of a packed (epoch, chunks) word — there is no per-call goroutine
// spawn, no channel round-trip, and no sync.WaitGroup; completion is a
// single atomic counter the caller spins on (parking on a condvar only
// when the wait is long). Between epochs workers spin briefly and then
// park, so back-to-back ForEach calls — the RKC stage loop shape —
// hand off in nanoseconds while an idle pool costs nothing.
//
// Design constraints, in order:
//
//  1. Determinism. Work item i always runs under the same worker slot
//     w regardless of scheduling, and callers combine any per-slot
//     partial results in slot order, so a parallel run is bit-for-bit
//     identical to a serial run of the same loop. The slot passed to
//     fn is the chunk index, a pure function of (n, chunks) — which
//     goroutine happens to execute a chunk never matters, so the
//     caller and the workers claim chunks freely (an idle machine's
//     caller can drain a whole epoch inline without a context switch).
//  2. Nested safety. A ForEach issued while an epoch is in flight on
//     the same pool — from inside a work item, or from a concurrent
//     goroutine sharing the pool — executes inline on the calling
//     goroutine with the identical chunk→slot mapping. No deadlock by
//     construction, and no second epoch machinery.
//  3. Zero overhead when serial. With width 1 (the default on a
//     single-CPU host, and the pinned configuration for SCMD
//     rank-parallel runs) ForEachChunk degenerates to an inline call
//     with no goroutines, atomics, or allocations.
//  4. Panic transparency. A panic inside a work item is captured with
//     its stack and re-raised in the calling goroutine as *PanicError,
//     so component contracts (drivers panic on wiring bugs) survive
//     parallel execution. Workers are persistent and survive panics.
//
// Steady-state epoch handoff is allocation-free: the job descriptor is
// embedded in the Pool and reused, and the packed state word is the
// only cross-goroutine signal (asserted by TestEpochHandoffZeroAlloc).
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ccahydro/internal/field"
	"ccahydro/internal/obs"
)

// PanicError wraps a panic captured inside a pool task. It is re-raised
// in the goroutine that issued the ForEach.
type PanicError struct {
	Value any    // the original panic value
	Stack string // stack of the panicking worker
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: panic in parallel task: %v", e.Value)
}

// chunkBits is the width of the chunk-count field in the packed epoch
// state word (epoch<<chunkBits | chunks). Pool width is clamped below
// its capacity, and the epoch counter has 64-chunkBits bits of
// headroom (millennia of epochs at nanosecond handoff).
const chunkBits = 16

// epochJob describes the loop of the currently published epoch. It is
// embedded in the Pool and reused across epochs — the publish order
// (fields first, then the claim word, then the atomic state store)
// plus the completion counter (the next publish cannot happen until
// every claimed chunk has finished) make the reuse race-free: a
// participant reads the fields only after winning a chunk claim, and a
// claim can only be won while its epoch is the live one.
type epochJob struct {
	n  int
	fn func(w, lo, hi int)
	// tr, when non-nil, records one span per executed chunk on worker
	// track 1+w (captured at publish so mid-epoch SetTracer calls
	// cannot tear an epoch's events).
	tr *obs.Tracer
}

// chunkBounds returns the half-open item range [lo, hi) of chunk c when
// [0, n) is split into ch contiguous chunks.
func chunkBounds(n, ch, c int) (lo, hi int) {
	return c * n / ch, (c + 1) * n / ch
}

// Pool is a persistent-worker epoch engine. The zero value is not
// usable; construct with NewPool. Pools are safe for concurrent use by
// multiple goroutines (e.g. the in-process SCMD rank cohort shares one
// pool): one caller at a time drives the epoch machinery, any overlap
// falls back to inline execution with the same deterministic mapping.
type Pool struct {
	width int

	// state packs (epoch<<chunkBits | chunks) — the single atomic
	// publish per epoch. Workers key off this word alone; epochs they
	// arrive at too late never touch the (mutable) job fields.
	state atomic.Uint64
	// claim packs (epoch<<chunkBits | chunksClaimed): participants win
	// chunk c by CASing the count from c to c+1 while the epoch half
	// still matches the epoch they observed. The tag makes late claims
	// from a previous epoch fail instead of stealing the new epoch's
	// chunks.
	claim atomic.Uint64
	// done counts finished chunks of the current epoch. Target: chunks.
	done atomic.Int32
	// busy serializes epoch publication. Losers (nested or concurrent
	// callers) run inline.
	busy atomic.Bool
	// pe captures the first panic of the current epoch.
	pe atomic.Pointer[PanicError]

	job epochJob

	mu       sync.Mutex
	wcond    *sync.Cond // workers park here between epochs
	ccond    *sync.Cond // the caller parks here awaiting completion
	sleepers atomic.Int32
	cparked  atomic.Bool
	spawned  atomic.Bool

	// tr holds the optional tracer; atomic so SetTracer can race with
	// in-flight ForEach calls from other ranks sharing the pool.
	tr atomic.Pointer[obs.Tracer]
	// waitHist, when set, observes the caller-side epoch wait (the
	// nanoseconds between the caller finishing its own chunk and the
	// last worker chunk landing) — the pool_epoch_wait histogram.
	waitHist atomic.Pointer[obs.Histogram]
}

// SetTracer attaches an event tracer: every subsequently executed chunk
// records a span on worker track 1+w and each epoch a span on the
// caller's track. nil detaches. The serial width-1 fast path stays
// span-free and allocation-free either way.
func (p *Pool) SetTracer(t *obs.Tracer) { p.tr.Store(t) }

// SetEpochWaitHistogram attaches a histogram observing the caller-side
// epoch wait in nanoseconds (time from the caller finishing its own
// chunk to epoch completion — the join tail). nil detaches. Observation
// is allocation-free (obs.Histogram is atomic log2 buckets).
func (p *Pool) SetEpochWaitHistogram(h *obs.Histogram) { p.waitHist.Store(h) }

// NewPool creates a pool with the given width (maximum parallelism and
// worker-slot count). Width < 1 is clamped to 1. Workers are spawned
// lazily on the first parallel ForEach; a width-1 pool never spawns
// anything.
func NewPool(width int) *Pool {
	if width < 1 {
		width = 1
	}
	if width > 1<<chunkBits-1 {
		width = 1<<chunkBits - 1
	}
	p := &Pool{width: width}
	p.wcond = sync.NewCond(&p.mu)
	p.ccond = sync.NewCond(&p.mu)
	return p
}

// Width returns the worker-slot count: fn's w argument is always in
// [0, Width()). Size per-worker scratch arenas by it.
func (p *Pool) Width() int { return p.width }

// spinIters bounds the Gosched spin before a worker or waiting caller
// parks on its condvar. Each iteration yields the processor, so the
// spin is cooperative even on a single-CPU host; back-to-back epochs
// (the RKC stage loop) stay inside the spin window and never touch the
// mutex.
const spinIters = 160

func (p *Pool) spawnWorkers() {
	p.mu.Lock()
	if !p.spawned.Load() {
		// width-1 resident workers; the caller of each ForEach is the
		// width-th participant.
		for w := 0; w < p.width-1; w++ {
			go p.worker()
		}
		p.spawned.Store(true)
	}
	p.mu.Unlock()
}

// worker is the persistent loop of a pool worker: observe a new epoch
// in the state word, help drain its chunks, and go back to spinning
// (then parking) for the next epoch. Epochs a worker arrives at after
// every chunk is claimed cost it one failed claim — it never touches
// the job fields.
func (p *Pool) worker() {
	// Workers are spawned before the pool's first publish, so epoch 0
	// (the initial state) is the correct baseline; reading the live
	// state here could mark an in-flight epoch as already seen.
	seen := uint64(0)
	for {
		s := p.state.Load()
		if ep := s >> chunkBits; ep != seen {
			seen = ep
			p.drain(ep, int(s&(1<<chunkBits-1)))
			continue
		}
		for i := 0; i < spinIters; i++ {
			runtime.Gosched()
			if p.state.Load() != s {
				break
			}
		}
		if p.state.Load() == s {
			p.mu.Lock()
			p.sleepers.Add(1)
			for p.state.Load() == s {
				p.wcond.Wait()
			}
			p.sleepers.Add(-1)
			p.mu.Unlock()
		}
	}
}

// drain claims and runs chunks of epoch ep until none remain (or the
// claim word has moved on to a later epoch — the participant was too
// slow and the epoch completed without it). A won claim pins the job
// fields: the epoch cannot finish, so the next publish cannot happen,
// until the chunk's done increment lands.
func (p *Pool) drain(ep uint64, chunks int) {
	tagged := ep << chunkBits
	for {
		v := p.claim.Load()
		if v>>chunkBits != ep {
			return // a later epoch owns the claim word now
		}
		c := int(v & (1<<chunkBits - 1))
		if c >= chunks {
			return // every chunk claimed
		}
		if !p.claim.CompareAndSwap(v, tagged|uint64(c+1)) {
			continue
		}
		p.runChunk(c, chunks)
		if p.done.Add(1) == int32(chunks) && p.cparked.Load() {
			p.mu.Lock()
			p.ccond.Broadcast()
			p.mu.Unlock()
		}
	}
}

// runChunk executes chunk c of the current epoch, capturing panics into
// the epoch's panic slot. Callers must hold a won claim on c.
func (p *Pool) runChunk(c, chunks int) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 1<<14)
			buf = buf[:runtime.Stack(buf, false)]
			p.pe.CompareAndSwap(nil, &PanicError{Value: r, Stack: string(buf)})
		}
	}()
	lo, hi := chunkBounds(p.job.n, chunks, c)
	if p.job.tr != nil {
		defer p.job.tr.SpanTid(1+c, "exec", "chunk")()
	}
	p.job.fn(c, lo, hi)
}

// runChunkInline executes one chunk outside the epoch machinery (the
// nested/contended fallback), capturing a panic as *PanicError.
func runChunkInline(n, chunks, c int, fn func(w, lo, hi int), tr *obs.Tracer) (pe *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 1<<14)
			buf = buf[:runtime.Stack(buf, false)]
			pe = &PanicError{Value: r, Stack: string(buf)}
		}
	}()
	lo, hi := chunkBounds(n, chunks, c)
	if tr != nil {
		defer tr.SpanTid(1+c, "exec", "chunk")()
	}
	fn(c, lo, hi)
	return nil
}

// runInline runs all chunks on the calling goroutine with the same
// chunk→slot mapping as an epoch. Like a drained epoch, every chunk
// runs even after one panics; the first panic is re-raised.
func runInline(n, chunks int, fn func(w, lo, hi int), tr *obs.Tracer) {
	var first *PanicError
	for c := 0; c < chunks; c++ {
		if pe := runChunkInline(n, chunks, c, fn, tr); pe != nil && first == nil {
			first = pe
		}
	}
	if first != nil {
		panic(first)
	}
}

// ForEachChunk partitions [0, n) into at most Width contiguous chunks
// and calls fn(w, lo, hi) once per chunk, in parallel. w is the chunk
// index — stable for a given n, so per-w scratch yields deterministic
// results. Blocks until every chunk has finished; panics inside fn are
// re-raised here as *PanicError (width-1 pools run fn inline and let
// panics propagate raw, as a plain loop would).
//
// Steady-state parallel dispatch is allocation-free: one atomic publish
// hands the loop to the persistent workers, one atomic counter joins
// it.
func (p *Pool) ForEachChunk(n int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := p.width
	if chunks > n {
		chunks = n
	}
	if chunks == 1 {
		// Serial fast path: same (w, lo, hi) mapping, no machinery.
		fn(0, 0, n)
		return
	}
	tr := p.tr.Load()
	if !p.busy.CompareAndSwap(false, true) {
		// An epoch is in flight on this pool — we are nested inside a
		// work item or racing another caller. Run inline: identical
		// mapping, no second epoch.
		runInline(n, chunks, fn, tr)
		return
	}
	if !p.spawned.Load() {
		p.spawnWorkers()
	}
	// The epoch span lives on the caller's own track under its own
	// category ("exec" spans are reserved for worker tracks).
	var endEpoch func()
	if tr != nil {
		endEpoch = tr.Span("pool", "epoch")
	}
	// Publish the epoch: job fields first, then the claim word, then
	// the packed state word the workers key off.
	p.pe.Store(nil)
	p.done.Store(0)
	p.job.n = n
	p.job.fn = fn
	p.job.tr = tr
	ep := p.state.Load()>>chunkBits + 1
	p.claim.Store(ep << chunkBits)
	p.state.Store(ep<<chunkBits | uint64(chunks))
	if p.sleepers.Load() > 0 {
		p.mu.Lock()
		p.wcond.Broadcast()
		p.mu.Unlock()
	}
	// The caller helps drain its own epoch, then joins it.
	p.drain(ep, chunks)
	target := int32(chunks)
	if p.done.Load() != target {
		var t0 time.Time
		hist := p.waitHist.Load()
		if hist != nil {
			t0 = time.Now()
		}
		for i := 0; i < spinIters && p.done.Load() != target; i++ {
			runtime.Gosched()
		}
		if p.done.Load() != target {
			p.mu.Lock()
			p.cparked.Store(true)
			for p.done.Load() != target {
				p.ccond.Wait()
			}
			p.cparked.Store(false)
			p.mu.Unlock()
		}
		if hist != nil {
			hist.ObserveNs(time.Since(t0).Nanoseconds())
		}
	}
	p.job.fn = nil // release the closure; owners have all finished
	p.job.tr = nil
	pe := p.pe.Load()
	p.busy.Store(false)
	if endEpoch != nil {
		endEpoch()
	}
	if pe != nil {
		panic(pe)
	}
}

// ForEach calls fn(w, i) for every i in [0, n), in parallel across at
// most Width workers. Item i always runs under the same worker slot w
// for a given n (chunked contiguously), so per-worker scratch does not
// perturb results. Blocks until done; worker panics re-raise here.
func (p *Pool) ForEach(n int, fn func(w, i int)) {
	p.ForEachChunk(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(w, i)
		}
	})
}

// ForEachPatch applies fn to every patch of a level in parallel — the
// SAMR hot-loop shape: each patch's update is independent within a
// level given filled ghosts, so patches fan out across workers.
func ForEachPatch(p *Pool, patches []*field.PatchData, fn func(w int, pd *field.PatchData)) {
	p.ForEach(len(patches), func(w, i int) { fn(w, patches[i]) })
}

var (
	defMu sync.Mutex
	def   *Pool
)

// Default returns the process-wide pool, created on first use with
// width runtime.GOMAXPROCS(0). Components whose optional ExecutionPort
// is unconnected fall back to it, so standard assemblies parallelize
// automatically on multicore hosts and stay serial on one CPU.
func Default() *Pool {
	defMu.Lock()
	defer defMu.Unlock()
	if def == nil {
		def = NewPool(runtime.GOMAXPROCS(0))
	}
	return def
}

// SetDefaultWidth replaces the default pool with one of the given
// width. It is a test and benchmark hook (the CCA-faithful way to pin
// the width is an ExecutionComponent with the "workers" parameter);
// callers must not have ForEach calls in flight on the old pool.
func SetDefaultWidth(width int) {
	defMu.Lock()
	def = NewPool(width)
	defMu.Unlock()
}
