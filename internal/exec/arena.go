package exec

// Arena is a per-worker scratch store: one lazily-constructed value per
// worker slot of a Pool. Kernels that used to `make` scratch slices in
// inner loops instead Get(w) the slot for the worker executing them —
// slot w is only ever touched by chunk w of the running loop, so no
// locking is needed and, because the slot→items mapping is
// deterministic, results are bit-for-bit reproducible.
//
// An Arena must only be shared by loops that cannot overlap in time
// (e.g. scratch held by a component whose port is driven by one level
// advance at a time). Kernels reachable from several concurrent jobs —
// a shared PatchRHSPort evaluated under nested parallelism — should use
// a sync.Pool instead, which trades determinism of *identity* (never of
// values: scratch is fully overwritten before use) for safety under
// arbitrary overlap.
type Arena[T any] struct {
	mk    func() T
	slots []T
	live  []bool
}

// NewArena creates an arena sized for p's worker slots. mk constructs a
// slot's scratch on first use.
func NewArena[T any](p *Pool, mk func() T) *Arena[T] {
	return &Arena[T]{
		mk:    mk,
		slots: make([]T, p.Width()),
		live:  make([]bool, p.Width()),
	}
}

// Get returns worker w's scratch, constructing it on first use.
func (a *Arena[T]) Get(w int) T {
	if !a.live[w] {
		a.slots[w] = a.mk()
		a.live[w] = true
	}
	return a.slots[w]
}

// Width returns the slot count the arena was sized for.
func (a *Arena[T]) Width() int { return len(a.slots) }
