package euler

import (
	"math"
	"sync"

	"ccahydro/internal/amr"
	"ccahydro/internal/exec"
	"ccahydro/internal/field"
)

// FluxFunc computes the interface flux of an x-sweep from limited
// left/right states — the port the GodunovFlux and EFMFlux components
// provide, and the seam the paper swaps for strong shocks.
type FluxFunc func(g Gas, l, r Primitive) Conserved

// Limiter limits a slope given backward and forward differences.
type Limiter func(a, b float64) float64

// MinMod is the classic diffusive limiter.
func MinMod(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	if math.Abs(a) < math.Abs(b) {
		return a
	}
	return b
}

// MC is the monotonized-central limiter (sharper than minmod).
func MC(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	c := 0.5 * (a + b)
	lim := 2 * math.Min(math.Abs(a), math.Abs(b))
	if math.Abs(c) > lim {
		if c > 0 {
			return lim
		}
		return -lim
	}
	return c
}

// FirstOrder disables reconstruction (piecewise-constant states).
func FirstOrder(a, b float64) float64 { return 0 }

// StatesFunc reconstructs the (left, right) face states between cells
// (i-1, j) and (i, j) for dir 0, or (i, j-1) and (i, j) for dir 1 (with
// u/v swapped so the x-flux machinery applies) — the paper's States
// component seam.
type StatesFunc func(g Gas, pd *field.PatchData, i, j, dir int) (Primitive, Primitive)

// Solver advances the 2D Euler system on AMR patches. A Solver value
// with a nil or width-1 Pool is strictly serial; all methods are
// read-only on the Solver itself, so one Solver may serve concurrent
// RHSPatch calls on different patches.
type Solver struct {
	Gas  Gas
	Flux FluxFunc
	// States reconstructs face states; defaults to MUSCL with the
	// Limiter field when nil. Must be safe for concurrent calls.
	States  StatesFunc
	Limiter Limiter
	// CFL is the Courant number (default 0.45 when zero).
	CFL float64
	// Pool, when non-nil, fans the row/column sweeps of RHSPatch out
	// across workers. Rows (and columns) write disjoint cells of out,
	// and the sweep decomposition is independent of worker count, so
	// results are bit-for-bit identical to the serial sweeps.
	Pool *exec.Pool
}

// NewSolver builds a second-order Godunov solver with MC limiting.
func NewSolver(gamma float64, flux FluxFunc) *Solver {
	return &Solver{Gas: Gas{Gamma: gamma}, Flux: flux, Limiter: MC, CFL: 0.45}
}

// MUSCLStates returns a StatesFunc doing primitive-variable MUSCL
// reconstruction with the given limiter. The closure holds no mutable
// state, so it is safe for concurrent sweeps.
func MUSCLStates(lim Limiter) StatesFunc {
	return func(g Gas, pd *field.PatchData, i, j, dir int) (Primitive, Primitive) {
		s := Solver{Gas: g, Limiter: lim}
		return s.limitedPair(pd, i, j, dir)
	}
}

// primAt loads the primitive state at cell (i, j) of a conserved-data
// patch.
func (s *Solver) primAt(pd *field.PatchData, i, j int) Primitive {
	var u Conserved
	for k := 0; k < NumComp; k++ {
		u[k] = pd.At(k, i, j)
	}
	return s.Gas.ToPrimitive(u)
}

// limitedPair reconstructs the (left-of-face, right-of-face) states at
// the face between cells (i-1, j) and (i, j) of an x-sweep, using
// primitive-variable MUSCL with the solver's limiter. dir selects the
// sweep direction: 0 for x, 1 for y (j varies then).
func (s *Solver) limitedPair(pd *field.PatchData, i, j, dir int) (Primitive, Primitive) {
	get := func(o int) Primitive {
		if dir == 0 {
			return s.primAt(pd, i+o, j)
		}
		return swapUV(s.primAt(pd, i, j+o))
	}
	wm2, wm1, w0, wp1 := get(-2), get(-1), get(0), get(1)
	slope := func(a, b, c float64) float64 { return s.Limiter(b-a, c-b) }
	l := Primitive{
		Rho:  wm1.Rho + 0.5*slope(wm2.Rho, wm1.Rho, w0.Rho),
		U:    wm1.U + 0.5*slope(wm2.U, wm1.U, w0.U),
		V:    wm1.V + 0.5*slope(wm2.V, wm1.V, w0.V),
		P:    wm1.P + 0.5*slope(wm2.P, wm1.P, w0.P),
		Zeta: wm1.Zeta + 0.5*slope(wm2.Zeta, wm1.Zeta, w0.Zeta),
	}
	r := Primitive{
		Rho:  w0.Rho - 0.5*slope(wm1.Rho, w0.Rho, wp1.Rho),
		U:    w0.U - 0.5*slope(wm1.U, w0.U, wp1.U),
		V:    w0.V - 0.5*slope(wm1.V, w0.V, wp1.V),
		P:    w0.P - 0.5*slope(wm1.P, w0.P, wp1.P),
		Zeta: w0.Zeta - 0.5*slope(wm1.Zeta, w0.Zeta, wp1.Zeta),
	}
	if l.Rho < 1e-12 {
		l.Rho = 1e-12
	}
	if r.Rho < 1e-12 {
		r.Rho = 1e-12
	}
	if l.P < 1e-12 {
		l.P = 1e-12
	}
	if r.P < 1e-12 {
		r.P = 1e-12
	}
	return l, r
}

// serialPool backs RHSPatch when the Solver has no Pool: width 1, so
// ForEachChunk degenerates to an inline loop.
var serialPool = exec.NewPool(1)

// sweepPool recycles flux-line buffers across RHSPatch calls. A
// sync.Pool (rather than solver-held scratch) keeps Solver values
// copyable and the kernel safe under nested parallelism, where one
// shared Solver serves several concurrent patch evaluations.
var sweepPool sync.Pool

func getSweep(n int) []Conserved {
	if v := sweepPool.Get(); v != nil {
		if s := *v.(*[]Conserved); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]Conserved, n)
}

func putSweep(s []Conserved) { sweepPool.Put(&s) }

// RHSPatch writes dU/dt = -dF/dx - dG/dy into out over the interior of
// pd. The patch's ghost cells (2 layers) must be filled beforehand.
// With a Pool set, rows of the x sweep and columns of the y sweep run
// in parallel: each writes its own cells of out, and the two sweeps are
// separated by a barrier (ForEachChunk blocks), so y-sweep Adds always
// see completed x-sweep Sets.
func (s *Solver) RHSPatch(pd, out *field.PatchData, dx, dy float64) {
	s.RHSRegion(pd, out, pd.Interior(), dx, dy)
}

// RHSRegion is RHSPatch restricted to a sub-box of the interior. Each
// face flux is a pure function of the four stencil cells behind it, so
// fluxes on a region boundary are recomputed identically to a
// full-patch sweep and any disjoint partition of the interior
// reproduces RHSPatch bit for bit. Cells of region must stay at least
// two cells from data the caller considers unfilled (the MUSCL stencil
// reads ±2 in the sweep direction).
func (s *Solver) RHSRegion(pd, out *field.PatchData, region amr.Box, dx, dy float64) {
	b := region
	if b.Empty() {
		return
	}
	nx, ny := b.Size()
	invDx, invDy := 1/dx, 1/dy

	states := s.States
	if states == nil {
		states = MUSCLStates(s.Limiter)
	}
	pool := s.Pool
	if pool == nil {
		pool = serialPool
	}

	// X sweep: fluxes at nx+1 faces per row; rows fan out.
	pool.ForEachChunk(ny, func(_, lo, hi int) {
		fx := getSweep(nx + 1)
		for jj := lo; jj < hi; jj++ {
			j := b.Lo[1] + jj
			for fi := 0; fi <= nx; fi++ {
				i := b.Lo[0] + fi
				l, r := states(s.Gas, pd, i, j, 0)
				fx[fi] = s.Flux(s.Gas, l, r)
			}
			for ii := 0; ii < nx; ii++ {
				i := b.Lo[0] + ii
				for k := 0; k < NumComp; k++ {
					out.Set(k, i, j, -(fx[ii+1][k]-fx[ii][k])*invDx)
				}
			}
		}
		putSweep(fx)
	})

	// Y sweep: columns fan out.
	pool.ForEachChunk(nx, func(_, lo, hi int) {
		fy := getSweep(ny + 1)
		for ii := lo; ii < hi; ii++ {
			i := b.Lo[0] + ii
			for fj := 0; fj <= ny; fj++ {
				j := b.Lo[1] + fj
				l, r := states(s.Gas, pd, i, j, 1)
				fy[fj] = swapFlux(s.Flux(s.Gas, l, r))
			}
			for jj := 0; jj < ny; jj++ {
				j := b.Lo[1] + jj
				for k := 0; k < NumComp; k++ {
					out.Add(k, i, j, -(fy[jj+1][k]-fy[jj][k])*invDy)
				}
			}
		}
		putSweep(fy)
	})
}

// StableDt returns the CFL-limited time step for one patch.
func (s *Solver) StableDt(pd *field.PatchData, dx, dy float64) float64 {
	cfl := s.CFL
	if cfl <= 0 {
		cfl = 0.45
	}
	b := pd.Interior()
	minDt := math.Inf(1)
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			w := s.primAt(pd, i, j)
			sx, sy := s.Gas.MaxWaveSpeed(w)
			dt := 1 / (sx/dx + sy/dy)
			if dt < minDt {
				minDt = dt
			}
		}
	}
	return cfl * minDt
}

// Circulation computes Γ = Σ ω dA over interior cells whose zeta lies
// in (zlo, zhi) — the interfacial circulation diagnostic of the paper's
// Fig 7 (ω = ∂v/∂x − ∂u/∂y by central differences; ghosts must be
// filled).
func (s *Solver) Circulation(pd *field.PatchData, dx, dy, zlo, zhi float64) float64 {
	b := pd.Interior()
	var gamma float64
	vel := func(i, j int) (float64, float64) {
		rho := pd.At(IRho, i, j)
		if rho < 1e-12 {
			rho = 1e-12
		}
		return pd.At(IMx, i, j) / rho, pd.At(IMy, i, j) / rho
	}
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			z := pd.At(IZeta, i, j) / math.Max(pd.At(IRho, i, j), 1e-12)
			if z < zlo || z > zhi {
				continue
			}
			_, vE := vel(i+1, j)
			_, vW := vel(i-1, j)
			uN, _ := vel(i, j+1)
			uS, _ := vel(i, j-1)
			om := (vE-vW)/(2*dx) - (uN-uS)/(2*dy)
			gamma += om * dx * dy
		}
	}
	return gamma
}

// MaxMach returns the maximum Mach number over the patch interior
// (diagnostics for the strong-shock runs).
func (s *Solver) MaxMach(pd *field.PatchData) float64 {
	b := pd.Interior()
	var m float64
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			w := s.primAt(pd, i, j)
			c := s.Gas.SoundSpeed(w)
			if v := math.Sqrt(w.U*w.U+w.V*w.V) / c; v > m {
				m = v
			}
		}
	}
	return m
}
