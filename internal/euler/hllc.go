package euler

import "math"

// HLLC is a third interface flux choice alongside the exact Godunov
// solver and the EFM kinetic splitting: the Harten–Lax–van Leer flux
// with contact restoration. It resolves contacts (unlike plain HLL) at
// a fraction of the exact solver's cost, which makes it a useful
// middle point in the flux-component swap ablation the paper's
// architecture enables.

// HLLCFlux returns the HLLC interface flux for an x-sweep.
func HLLCFlux(g Gas, l, r Primitive) Conserved {
	cl := math.Sqrt(g.Gamma * l.P / l.Rho)
	cr := math.Sqrt(g.Gamma * r.P / r.Rho)

	// Wave-speed estimates (Toro's pressure-based bounds via PVRS).
	pStar := math.Max(0, 0.5*(l.P+r.P)-0.125*(r.U-l.U)*(l.Rho+r.Rho)*(cl+cr))
	ql := 1.0
	if pStar > l.P {
		ql = math.Sqrt(1 + (g.Gamma+1)/(2*g.Gamma)*(pStar/l.P-1))
	}
	qr := 1.0
	if pStar > r.P {
		qr = math.Sqrt(1 + (g.Gamma+1)/(2*g.Gamma)*(pStar/r.P-1))
	}
	sl := l.U - cl*ql
	sr := r.U + cr*qr
	// Contact speed.
	sm := (r.P - l.P + l.Rho*l.U*(sl-l.U) - r.Rho*r.U*(sr-r.U)) /
		(l.Rho*(sl-l.U) - r.Rho*(sr-r.U))

	switch {
	case sl >= 0:
		return g.FluxX(l)
	case sr <= 0:
		return g.FluxX(r)
	case sm >= 0:
		return hllcSide(g, l, sl, sm)
	default:
		return hllcSide(g, r, sr, sm)
	}
}

// hllcSide computes F_K + S_K (U*_K - U_K) for one side.
func hllcSide(g Gas, w Primitive, sk, sm float64) Conserved {
	u := g.ToConserved(w)
	f := g.FluxX(w)
	coef := w.Rho * (sk - w.U) / (sk - sm)
	e := u[IE]
	var uStar Conserved
	uStar[IRho] = coef
	uStar[IMx] = coef * sm
	uStar[IMy] = coef * w.V
	uStar[IE] = coef * (e/w.Rho + (sm-w.U)*(sm+w.P/(w.Rho*(sk-w.U))))
	uStar[IZeta] = coef * w.Zeta
	var out Conserved
	for k := 0; k < NumComp; k++ {
		out[k] = f[k] + sk*(uStar[k]-u[k])
	}
	return out
}
