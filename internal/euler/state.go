// Package euler implements the 2D compressible Euler equations with an
// advected interface-tracking scalar zeta, solved by a second-order
// Godunov (MUSCL) finite-volume method with an exact Riemann solver,
// plus Pullin's Equilibrium Flux Method (EFM) as the drop-in
// alternative flux for strong shocks — the paper's shock–interface
// assembly (GodunovFlux, EFMFlux, States, ExplicitIntegratorRK2).
//
// Conserved components, in order: rho, rho*u, rho*v, rho*E, rho*zeta
// (E is specific total energy). The gas is ideal with constant gamma;
// the Air/Freon density contrast of the paper's test case is carried by
// the initial density and the zeta tracker.
package euler

import "math"

// Conserved component indices.
const (
	IRho = iota
	IMx
	IMy
	IE
	IZeta
	NumComp
)

// Gas holds the (single-gamma) ideal-gas parameters.
type Gas struct {
	Gamma float64
}

// AirGamma is the default specific-heat ratio.
const AirGamma = 1.4

// Primitive is a pointwise primitive state.
type Primitive struct {
	Rho, U, V, P, Zeta float64
}

// Conserved is a pointwise conserved state.
type Conserved [NumComp]float64

// ToConserved converts primitive to conserved variables.
func (g Gas) ToConserved(w Primitive) Conserved {
	e := w.P/(g.Gamma-1) + 0.5*w.Rho*(w.U*w.U+w.V*w.V)
	return Conserved{w.Rho, w.Rho * w.U, w.Rho * w.V, e, w.Rho * w.Zeta}
}

// ToPrimitive converts conserved to primitive variables. A density or
// pressure floor (1e-12) guards against transient undershoots.
func (g Gas) ToPrimitive(u Conserved) Primitive {
	rho := u[IRho]
	if rho < 1e-12 {
		rho = 1e-12
	}
	inv := 1 / rho
	vx := u[IMx] * inv
	vy := u[IMy] * inv
	p := (g.Gamma - 1) * (u[IE] - 0.5*rho*(vx*vx+vy*vy))
	if p < 1e-12 {
		p = 1e-12
	}
	return Primitive{Rho: rho, U: vx, V: vy, P: p, Zeta: u[IZeta] * inv}
}

// SoundSpeed returns c = sqrt(gamma p / rho).
func (g Gas) SoundSpeed(w Primitive) float64 {
	return math.Sqrt(g.Gamma * w.P / w.Rho)
}

// FluxX returns the exact x-direction flux of a state.
func (g Gas) FluxX(w Primitive) Conserved {
	e := w.P/(g.Gamma-1) + 0.5*w.Rho*(w.U*w.U+w.V*w.V)
	return Conserved{
		w.Rho * w.U,
		w.Rho*w.U*w.U + w.P,
		w.Rho * w.U * w.V,
		(e + w.P) * w.U,
		w.Rho * w.Zeta * w.U,
	}
}

// MaxWaveSpeed returns |u| + c and |v| + c for CFL control.
func (g Gas) MaxWaveSpeed(w Primitive) (sx, sy float64) {
	c := g.SoundSpeed(w)
	return math.Abs(w.U) + c, math.Abs(w.V) + c
}

// swapUV exchanges the roles of u and v so y-direction sweeps can reuse
// the x-flux machinery.
func swapUV(w Primitive) Primitive {
	w.U, w.V = w.V, w.U
	return w
}

// swapFlux converts an x-sweep flux back into a y-sweep flux.
func swapFlux(f Conserved) Conserved {
	f[IMx], f[IMy] = f[IMy], f[IMx]
	return f
}
