package euler

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ccahydro/internal/amr"
	"ccahydro/internal/field"
)

func almost(a, b, rel float64) bool {
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))+1e-14
}

var gas = Gas{Gamma: 1.4}

// ---- state conversions ----------------------------------------------------

func TestPrimitiveConservedRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := Primitive{
			Rho:  0.1 + rng.Float64()*10,
			U:    rng.Float64()*20 - 10,
			V:    rng.Float64()*20 - 10,
			P:    0.1 + rng.Float64()*10,
			Zeta: rng.Float64(),
		}
		u := gas.ToConserved(w)
		w2 := gas.ToPrimitive(u)
		return almost(w.Rho, w2.Rho, 1e-12) && almost(w.U, w2.U, 1e-12) &&
			almost(w.V, w2.V, 1e-12) && almost(w.P, w2.P, 1e-12) &&
			almost(w.Zeta, w2.Zeta, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSoundSpeedAir(t *testing.T) {
	// Air at rho=1.2, p=101325: c ≈ 343.7 m/s.
	w := Primitive{Rho: 1.2, P: 101325}
	if c := gas.SoundSpeed(w); !almost(c, 343.7, 0.01) {
		t.Errorf("c = %v", c)
	}
}

func TestPressureFloor(t *testing.T) {
	u := Conserved{1, 10, 0, 1, 0} // kinetic energy exceeds total
	w := gas.ToPrimitive(u)
	if w.P <= 0 {
		t.Errorf("p = %v, want floored positive", w.P)
	}
}

// ---- exact Riemann solver --------------------------------------------------

func sodStates() (Primitive, Primitive) {
	return Primitive{Rho: 1, U: 0, P: 1, Zeta: 0},
		Primitive{Rho: 0.125, U: 0, P: 0.1, Zeta: 1}
}

func TestRiemannSod(t *testing.T) {
	l, r := sodStates()
	sol := SolveRiemann(gas, l, r)
	if !almost(sol.PStar, 0.30313, 1e-4) {
		t.Errorf("p* = %v, want 0.30313", sol.PStar)
	}
	if !almost(sol.UStar, 0.92745, 1e-4) {
		t.Errorf("u* = %v, want 0.92745", sol.UStar)
	}
}

func TestRiemannSymmetric(t *testing.T) {
	// Two identical states: star = state, flux = analytic flux.
	w := Primitive{Rho: 1.5, U: 2, V: -1, P: 3, Zeta: 0.25}
	sol := SolveRiemann(gas, w, w)
	if !almost(sol.PStar, w.P, 1e-9) || !almost(sol.UStar, w.U, 1e-9) {
		t.Errorf("star = %v %v", sol.PStar, sol.UStar)
	}
	f := GodunovFlux(gas, w, w)
	exact := gas.FluxX(w)
	for k := 0; k < NumComp; k++ {
		if !almost(f[k], exact[k], 1e-9) {
			t.Errorf("flux[%d] = %v, want %v", k, f[k], exact[k])
		}
	}
}

func TestRiemannStrongShock(t *testing.T) {
	// High pressure ratio: solver must converge and give p* between.
	l := Primitive{Rho: 1, U: 0, P: 1000}
	r := Primitive{Rho: 1, U: 0, P: 0.01}
	sol := SolveRiemann(gas, l, r)
	if sol.PStar <= r.P || sol.PStar >= l.P {
		t.Errorf("p* = %v not between states", sol.PStar)
	}
	if sol.UStar <= 0 {
		t.Errorf("u* = %v, expansion must push right", sol.UStar)
	}
}

func TestRiemannVacuumGuard(t *testing.T) {
	// Strong receding flows: star pressure must stay positive.
	l := Primitive{Rho: 1, U: -5, P: 0.4}
	r := Primitive{Rho: 1, U: 5, P: 0.4}
	sol := SolveRiemann(gas, l, r)
	if sol.PStar <= 0 || math.IsNaN(sol.PStar) {
		t.Errorf("p* = %v", sol.PStar)
	}
}

func TestSampleRiemannContactSidesZeta(t *testing.T) {
	l, r := sodStates()
	sol := SolveRiemann(gas, l, r)
	// Left of contact: zeta from left (0); right: from right (1).
	wl := SampleRiemann(gas, l, r, sol, sol.UStar-0.01)
	wr := SampleRiemann(gas, l, r, sol, sol.UStar+0.01)
	if wl.Zeta != 0 || wr.Zeta != 1 {
		t.Errorf("zeta across contact: %v %v", wl.Zeta, wr.Zeta)
	}
	// Pressure continuous across contact.
	if !almost(wl.P, wr.P, 1e-9) {
		t.Errorf("pressure jump across contact: %v vs %v", wl.P, wr.P)
	}
}

func TestSampleRiemannFarField(t *testing.T) {
	l, r := sodStates()
	sol := SolveRiemann(gas, l, r)
	wl := SampleRiemann(gas, l, r, sol, -10)
	wr := SampleRiemann(gas, l, r, sol, 10)
	if wl != l || wr != r {
		t.Error("far-field sampling must return the inputs")
	}
}

// ---- EFM -------------------------------------------------------------------

func TestEFMConsistency(t *testing.T) {
	// Equal states: EFM must reduce to the analytic flux.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := Primitive{
			Rho:  0.1 + rng.Float64()*5,
			U:    rng.Float64()*10 - 5,
			V:    rng.Float64()*10 - 5,
			P:    0.1 + rng.Float64()*5,
			Zeta: rng.Float64(),
		}
		fe := EFMFlux(gas, w, w)
		fa := gas.FluxX(w)
		for k := 0; k < NumComp; k++ {
			if !almost(fe[k], fa[k], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEFMUpwinding(t *testing.T) {
	// Supersonic left-to-right flow: the flux must equal the left
	// state's flux (all molecules cross from the left).
	l := Primitive{Rho: 1, U: 10, P: 1, Zeta: 0.3} // M ≈ 8.5
	r := Primitive{Rho: 5, U: 10, P: 9, Zeta: 0.9}
	fe := EFMFlux(gas, l, r)
	fa := gas.FluxX(l)
	for k := 0; k < NumComp; k++ {
		if !almost(fe[k], fa[k], 1e-6) {
			t.Errorf("flux[%d] = %v, want %v", k, fe[k], fa[k])
		}
	}
}

func TestEFMMoreDiffusiveThanGodunov(t *testing.T) {
	// On a stationary contact, Godunov is exact (zero mass flux);
	// EFM leaks mass — the diffusivity the paper accepts for stability.
	l := Primitive{Rho: 1, U: 0, P: 1}
	r := Primitive{Rho: 0.2, U: 0, P: 1}
	fg := GodunovFlux(gas, l, r)
	fe := EFMFlux(gas, l, r)
	if math.Abs(fg[IRho]) > 1e-12 {
		t.Errorf("godunov mass flux on contact = %v", fg[IRho])
	}
	if math.Abs(fe[IRho]) < 1e-6 {
		t.Errorf("efm mass flux = %v, expected diffusive", fe[IRho])
	}
}

// ---- limiters ---------------------------------------------------------------

func TestLimiters(t *testing.T) {
	if MinMod(1, 2) != 1 || MinMod(-3, -2) != -2 || MinMod(1, -1) != 0 {
		t.Error("minmod wrong")
	}
	if MC(1, 1) != 1 || MC(1, -1) != 0 {
		t.Error("mc wrong")
	}
	// MC caps at 2*min.
	if MC(1, 10) != 2 {
		t.Errorf("MC(1,10) = %v", MC(1, 10))
	}
	if FirstOrder(5, 5) != 0 {
		t.Error("first order must return zero slope")
	}
}

// ---- patch-level solver ------------------------------------------------------

// onePatch builds a single-patch hierarchy with 2 ghost cells.
func onePatch(nx, ny int) (*amr.Hierarchy, *field.DataObject) {
	h := amr.NewHierarchy(amr.NewBox(0, 0, nx-1, ny-1), 2, 1, 1)
	d := field.New("U", h, NumComp, 2, nil)
	return h, d
}

func setPrim(pd *field.PatchData, i, j int, w Primitive) {
	u := gas.ToConserved(w)
	for k := 0; k < NumComp; k++ {
		pd.Set(k, i, j, u[k])
	}
}

// eulerBCs: outflow everywhere (quasi-1D tests).
var outflowBC = field.UniformBC(field.BCSpec{Kind: field.BCOutflow})

// heunStep advances one RK2 (Heun) step on a serial single-patch setup.
func heunStep(s *Solver, d *field.DataObject, dt, dx, dy float64) {
	pd := d.LocalPatches(0)[0]
	h := d.Hierarchy()
	_ = h
	rhs := field.NewPatchData(pd.Patch, NumComp, 2)
	tmp := field.NewPatchData(pd.Patch, NumComp, 2)

	d.ApplyPhysicalBCs(0, outflowBC)
	s.RHSPatch(pd, rhs, dx, dy)
	b := pd.Interior()
	for k := 0; k < NumComp; k++ {
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				tmp.Set(k, i, j, pd.At(k, i, j)+dt*rhs.At(k, i, j))
			}
		}
	}
	// Stage 2 on tmp (needs its own BC fill: copy tmp into pd ghosts
	// via a scratch object sharing the patch).
	tmpObj := *d
	_ = tmpObj
	// Apply BCs manually on tmp by reusing the field helper through a
	// temporary DataObject is heavyweight; instead copy interior into
	// pd, fill BCs, compute RHS, then combine.
	save := field.NewPatchData(pd.Patch, NumComp, 2)
	save.CopyRegion(pd, pd.GrownBox())
	pd.CopyRegion(tmp, b)
	d.ApplyPhysicalBCs(0, outflowBC)
	s.RHSPatch(pd, rhs, dx, dy)
	for k := 0; k < NumComp; k++ {
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				un := 0.5*save.At(k, i, j) + 0.5*(pd.At(k, i, j)+dt*rhs.At(k, i, j))
				pd.Set(k, i, j, un)
			}
		}
	}
}

func TestSodShockTube(t *testing.T) {
	nx, ny := 200, 4
	_, d := onePatch(nx, ny)
	dx := 1.0 / float64(nx)
	dy := dx
	pd := d.LocalPatches(0)[0]
	l, r := sodStates()
	b := pd.Interior()
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			x := (float64(i) + 0.5) * dx
			if x < 0.5 {
				setPrim(pd, i, j, l)
			} else {
				setPrim(pd, i, j, r)
			}
		}
	}
	s := NewSolver(1.4, GodunovFlux)
	tEnd := 0.2
	tNow := 0.0
	for tNow < tEnd {
		dt := s.StableDt(pd, dx, dy)
		if tNow+dt > tEnd {
			dt = tEnd - tNow
		}
		heunStep(s, d, dt, dx, dy)
		tNow += dt
	}
	// Compare density against the exact solution.
	sol := SolveRiemann(gas, l, r)
	var l1 float64
	j := (b.Lo[1] + b.Hi[1]) / 2
	for i := b.Lo[0]; i <= b.Hi[0]; i++ {
		x := (float64(i) + 0.5) * dx
		exact := SampleRiemann(gas, l, r, sol, (x-0.5)/tEnd)
		got := s.primAt(pd, i, j)
		l1 += math.Abs(got.Rho-exact.Rho) * dx
	}
	if l1 > 0.015 {
		t.Errorf("Sod density L1 error = %v, want < 0.015", l1)
	}
}

func TestSodWithEFM(t *testing.T) {
	// Same tube with the EFM flux: should still converge, slightly more
	// diffusive (larger but bounded L1 error).
	nx, ny := 200, 4
	_, d := onePatch(nx, ny)
	dx := 1.0 / float64(nx)
	pd := d.LocalPatches(0)[0]
	l, r := sodStates()
	b := pd.Interior()
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			x := (float64(i) + 0.5) * dx
			if x < 0.5 {
				setPrim(pd, i, j, l)
			} else {
				setPrim(pd, i, j, r)
			}
		}
	}
	s := NewSolver(1.4, EFMFlux)
	tEnd, tNow := 0.2, 0.0
	for tNow < tEnd {
		dt := s.StableDt(pd, dx, dx)
		if tNow+dt > tEnd {
			dt = tEnd - tNow
		}
		heunStep(s, d, dt, dx, dx)
		tNow += dt
	}
	sol := SolveRiemann(gas, l, r)
	var l1 float64
	j := (b.Lo[1] + b.Hi[1]) / 2
	for i := b.Lo[0]; i <= b.Hi[0]; i++ {
		x := (float64(i) + 0.5) * dx
		exact := SampleRiemann(gas, l, r, sol, (x-0.5)/tEnd)
		got := s.primAt(pd, i, j)
		l1 += math.Abs(got.Rho-exact.Rho) * dx
	}
	if l1 > 0.03 {
		t.Errorf("EFM Sod L1 error = %v", l1)
	}
}

func TestUniformFlowIsSteady(t *testing.T) {
	// A uniform state must produce exactly zero RHS.
	_, d := onePatch(16, 16)
	pd := d.LocalPatches(0)[0]
	w := Primitive{Rho: 1.3, U: 0.7, V: -0.4, P: 2.1, Zeta: 0.5}
	g := pd.GrownBox()
	for j := g.Lo[1]; j <= g.Hi[1]; j++ {
		for i := g.Lo[0]; i <= g.Hi[0]; i++ {
			setPrim(pd, i, j, w)
		}
	}
	s := NewSolver(1.4, GodunovFlux)
	rhs := field.NewPatchData(pd.Patch, NumComp, 2)
	s.RHSPatch(pd, rhs, 0.01, 0.01)
	b := pd.Interior()
	for k := 0; k < NumComp; k++ {
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				if math.Abs(rhs.At(k, i, j)) > 1e-8 {
					t.Fatalf("rhs[%d](%d,%d) = %v", k, i, j, rhs.At(k, i, j))
				}
			}
		}
	}
}

func TestConservationUnderRK2(t *testing.T) {
	// With periodic-like symmetric interior and outflow BCs not yet
	// reached, total mass/momentum/energy changes only through the
	// boundary; confine the disturbance to the middle so totals are
	// conserved to round-off over a short time.
	nx := 64
	_, d := onePatch(nx, nx)
	dx := 1.0 / float64(nx)
	pd := d.LocalPatches(0)[0]
	b := pd.Interior()
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			x := (float64(i)+0.5)*dx - 0.5
			y := (float64(j)+0.5)*dx - 0.5
			p := 1 + 0.1*math.Exp(-((x*x+y*y)/0.005))
			setPrim(pd, i, j, Primitive{Rho: 1, P: p, Zeta: 0.5})
		}
	}
	total := func(k int) float64 {
		var s float64
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				s += pd.At(k, i, j)
			}
		}
		return s
	}
	m0, e0 := total(IRho), total(IE)
	s := NewSolver(1.4, GodunovFlux)
	for step := 0; step < 5; step++ {
		dt := s.StableDt(pd, dx, dx)
		heunStep(s, d, dt, dx, dx)
	}
	if !almost(total(IRho), m0, 1e-10) {
		t.Errorf("mass drift: %v -> %v", m0, total(IRho))
	}
	if !almost(total(IE), e0, 1e-10) {
		t.Errorf("energy drift: %v -> %v", e0, total(IE))
	}
}

func TestStableDtScalesWithMesh(t *testing.T) {
	_, d := onePatch(16, 16)
	pd := d.LocalPatches(0)[0]
	g := pd.GrownBox()
	for j := g.Lo[1]; j <= g.Hi[1]; j++ {
		for i := g.Lo[0]; i <= g.Hi[0]; i++ {
			setPrim(pd, i, j, Primitive{Rho: 1, P: 1})
		}
	}
	s := NewSolver(1.4, GodunovFlux)
	dt1 := s.StableDt(pd, 0.01, 0.01)
	dt2 := s.StableDt(pd, 0.005, 0.005)
	if !almost(dt1, 2*dt2, 1e-9) {
		t.Errorf("dt does not scale linearly with dx: %v vs %v", dt1, 2*dt2)
	}
}

func TestCirculationRigidRotation(t *testing.T) {
	// u = -Ω y, v = Ω x: vorticity 2Ω everywhere. With zeta = 0.5 in a
	// band, Γ over that band = 2Ω × band area.
	nx := 32
	_, d := onePatch(nx, nx)
	dx := 1.0 / float64(nx)
	pd := d.LocalPatches(0)[0]
	om := 3.0
	g := pd.GrownBox()
	for j := g.Lo[1]; j <= g.Hi[1]; j++ {
		for i := g.Lo[0]; i <= g.Hi[0]; i++ {
			x := (float64(i) + 0.5) * dx
			y := (float64(j) + 0.5) * dx
			zeta := 0.0
			if x > 0.25 && x < 0.75 {
				zeta = 0.5
			}
			setPrim(pd, i, j, Primitive{Rho: 1, U: -om * y, V: om * x, P: 10, Zeta: zeta})
		}
	}
	s := NewSolver(1.4, GodunovFlux)
	gamma := s.Circulation(pd, dx, dx, 0.001, 0.999)
	// Band is half the domain area (0.5), vorticity 2Ω.
	want := 2 * om * 0.5
	if !almost(gamma, want, 0.05) {
		t.Errorf("circulation = %v, want %v", gamma, want)
	}
}

func TestMaxMach(t *testing.T) {
	_, d := onePatch(8, 8)
	pd := d.LocalPatches(0)[0]
	g := pd.GrownBox()
	for j := g.Lo[1]; j <= g.Hi[1]; j++ {
		for i := g.Lo[0]; i <= g.Hi[0]; i++ {
			setPrim(pd, i, j, Primitive{Rho: 1.4, U: 2, P: 1}) // c = 1, M = 2
		}
	}
	s := NewSolver(1.4, GodunovFlux)
	if m := s.MaxMach(pd); !almost(m, 2, 1e-6) {
		t.Errorf("max mach = %v", m)
	}
}
