package euler

import "math"

// Exact Riemann solver for the 1D Euler equations (ideal gas, single
// gamma), after Toro. Given left/right states it finds the star-region
// pressure/velocity by Newton iteration on the pressure function, then
// samples the self-similar solution at x/t = 0 to produce the Godunov
// interface flux. The tracked scalar zeta and tangential velocity ride
// passively with the contact.

// RiemannSolution holds the star-region values of one solved problem.
type RiemannSolution struct {
	PStar, UStar float64
	Iterations   int
}

// fK is Toro's pressure function for one side and its derivative.
func fK(g Gas, p float64, w Primitive) (f, df float64) {
	c := math.Sqrt(g.Gamma * w.P / w.Rho)
	if p > w.P {
		// Shock branch.
		a := 2 / ((g.Gamma + 1) * w.Rho)
		b := (g.Gamma - 1) / (g.Gamma + 1) * w.P
		sq := math.Sqrt(a / (p + b))
		f = (p - w.P) * sq
		df = sq * (1 - (p-w.P)/(2*(p+b)))
		return f, df
	}
	// Rarefaction branch.
	pr := p / w.P
	ex := (g.Gamma - 1) / (2 * g.Gamma)
	f = 2 * c / (g.Gamma - 1) * (math.Pow(pr, ex) - 1)
	df = math.Pow(pr, -(g.Gamma+1)/(2*g.Gamma)) / (w.Rho * c)
	return f, df
}

// SolveRiemann finds the star state for left/right primitive states
// (only Rho, U, P matter; V and Zeta are passive).
func SolveRiemann(g Gas, l, r Primitive) RiemannSolution {
	cl := math.Sqrt(g.Gamma * l.P / l.Rho)
	cr := math.Sqrt(g.Gamma * r.P / r.Rho)
	du := r.U - l.U

	// Initial guess: two-rarefaction approximation, guarded by PVRS.
	p0 := 0.5*(l.P+r.P) - 0.125*du*(l.Rho+r.Rho)*(cl+cr)
	if p0 < 1e-10 {
		p0 = 1e-10
	}

	p := p0
	var it int
	for it = 0; it < 50; it++ {
		flv, dfl := fK(g, p, l)
		frv, dfr := fK(g, p, r)
		f := flv + frv + du
		df := dfl + dfr
		dp := f / df
		pNew := p - dp
		if pNew < 1e-12 {
			pNew = 1e-12
		}
		if math.Abs(pNew-p) < 1e-12*(pNew+p) {
			p = pNew
			break
		}
		p = pNew
	}
	flv, _ := fK(g, p, l)
	frv, _ := fK(g, p, r)
	u := 0.5*(l.U+r.U) + 0.5*(frv-flv)
	return RiemannSolution{PStar: p, UStar: u, Iterations: it + 1}
}

// SampleRiemann evaluates the self-similar solution W(x/t = s) of the
// Riemann problem (Toro's sampling procedure).
func SampleRiemann(g Gas, l, r Primitive, sol RiemannSolution, s float64) Primitive {
	gm1 := g.Gamma - 1
	gp1 := g.Gamma + 1
	if s <= sol.UStar {
		// Left of contact: left wave family, zeta/tangential from left.
		cl := math.Sqrt(g.Gamma * l.P / l.Rho)
		if sol.PStar > l.P {
			// Left shock.
			sl := l.U - cl*math.Sqrt(gp1/(2*g.Gamma)*sol.PStar/l.P+gm1/(2*g.Gamma))
			if s < sl {
				return l
			}
			rho := l.Rho * (sol.PStar/l.P + gm1/gp1) / (gm1/gp1*sol.PStar/l.P + 1)
			return Primitive{Rho: rho, U: sol.UStar, V: l.V, P: sol.PStar, Zeta: l.Zeta}
		}
		// Left rarefaction.
		cstar := cl * math.Pow(sol.PStar/l.P, gm1/(2*g.Gamma))
		head := l.U - cl
		tail := sol.UStar - cstar
		switch {
		case s < head:
			return l
		case s > tail:
			rho := l.Rho * math.Pow(sol.PStar/l.P, 1/g.Gamma)
			return Primitive{Rho: rho, U: sol.UStar, V: l.V, P: sol.PStar, Zeta: l.Zeta}
		default:
			// Inside the fan.
			u := 2 / gp1 * (cl + gm1/2*l.U + s)
			c := 2 / gp1 * (cl + gm1/2*(l.U-s))
			rho := l.Rho * math.Pow(c/cl, 2/gm1)
			p := l.P * math.Pow(c/cl, 2*g.Gamma/gm1)
			return Primitive{Rho: rho, U: u, V: l.V, P: p, Zeta: l.Zeta}
		}
	}
	// Right of contact (mirror).
	cr := math.Sqrt(g.Gamma * r.P / r.Rho)
	if sol.PStar > r.P {
		sr := r.U + cr*math.Sqrt(gp1/(2*g.Gamma)*sol.PStar/r.P+gm1/(2*g.Gamma))
		if s > sr {
			return r
		}
		rho := r.Rho * (sol.PStar/r.P + gm1/gp1) / (gm1/gp1*sol.PStar/r.P + 1)
		return Primitive{Rho: rho, U: sol.UStar, V: r.V, P: sol.PStar, Zeta: r.Zeta}
	}
	cstar := cr * math.Pow(sol.PStar/r.P, gm1/(2*g.Gamma))
	head := r.U + cr
	tail := sol.UStar + cstar
	switch {
	case s > head:
		return r
	case s < tail:
		rho := r.Rho * math.Pow(sol.PStar/r.P, 1/g.Gamma)
		return Primitive{Rho: rho, U: sol.UStar, V: r.V, P: sol.PStar, Zeta: r.Zeta}
	default:
		u := 2 / gp1 * (-cr + gm1/2*r.U + s)
		c := 2 / gp1 * (cr - gm1/2*(r.U-s))
		rho := r.Rho * math.Pow(c/cr, 2/gm1)
		p := r.P * math.Pow(c/cr, 2*g.Gamma/gm1)
		return Primitive{Rho: rho, U: u, V: r.V, P: p, Zeta: r.Zeta}
	}
}

// GodunovFlux returns the exact-Riemann interface flux for an x-sweep.
func GodunovFlux(g Gas, l, r Primitive) Conserved {
	sol := SolveRiemann(g, l, r)
	w := SampleRiemann(g, l, r, sol, 0)
	return g.FluxX(w)
}
