package euler

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ccahydro/internal/field"
)

// TestMirrorSymmetryPreserved: an x-symmetric initial state must stay
// exactly x-symmetric under the solver (catches directional bias bugs
// in the sweeps and limiters).
func TestMirrorSymmetryPreserved(t *testing.T) {
	nx := 64
	_, d := onePatch(nx, 8)
	dx := 1.0 / float64(nx)
	pd := d.LocalPatches(0)[0]
	b := pd.Interior()
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			x := (float64(i) + 0.5) * dx
			p := 1 + 2*math.Exp(-((x-0.5)*(x-0.5))/0.01)
			setPrim(pd, i, j, Primitive{Rho: 1, P: p, Zeta: 0.5})
		}
	}
	s := NewSolver(1.4, GodunovFlux)
	for step := 0; step < 8; step++ {
		dt := s.StableDt(pd, dx, dx)
		heunStep(s, d, dt, dx, dx)
	}
	j := (b.Lo[1] + b.Hi[1]) / 2
	for i := 0; i < nx/2; i++ {
		mi := nx - 1 - i
		rhoL := pd.At(IRho, b.Lo[0]+i, j)
		rhoR := pd.At(IRho, b.Lo[0]+mi, j)
		if math.Abs(rhoL-rhoR) > 1e-11 {
			t.Fatalf("symmetry broken at i=%d: %v vs %v", i, rhoL, rhoR)
		}
		// x-momentum is antisymmetric.
		mxL := pd.At(IMx, b.Lo[0]+i, j)
		mxR := pd.At(IMx, b.Lo[0]+mi, j)
		if math.Abs(mxL+mxR) > 1e-11 {
			t.Fatalf("antisymmetry broken at i=%d: %v vs %v", i, mxL, mxR)
		}
	}
}

// TestXYSymmetry: rotating the problem 90 degrees must give the
// rotated solution (x and y sweeps treated identically).
func TestXYSymmetry(t *testing.T) {
	n := 32
	dx := 1.0 / float64(n)
	makeRun := func(alongX bool) *field.PatchData {
		_, d := onePatch(n, n)
		pd := d.LocalPatches(0)[0]
		b := pd.Interior()
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				coord := float64(i)
				if !alongX {
					coord = float64(j)
				}
				x := (coord + 0.5) * dx
				w := Primitive{Rho: 1, P: 1, Zeta: 0}
				if x > 0.5 {
					w = Primitive{Rho: 0.125, P: 0.1, Zeta: 1}
				}
				setPrim(pd, i, j, w)
			}
		}
		s := NewSolver(1.4, GodunovFlux)
		for step := 0; step < 6; step++ {
			dt := s.StableDt(pd, dx, dx)
			heunStep(s, d, dt, dx, dx)
		}
		return pd
	}
	px := makeRun(true)
	py := makeRun(false)
	bx := px.Interior()
	for j := bx.Lo[1]; j <= bx.Hi[1]; j++ {
		for i := bx.Lo[0]; i <= bx.Hi[0]; i++ {
			// (i, j) in the x-run corresponds to (j, i) in the y-run.
			if math.Abs(px.At(IRho, i, j)-py.At(IRho, j, i)) > 1e-11 {
				t.Fatalf("rho xy asymmetry at (%d,%d): %v vs %v",
					i, j, px.At(IRho, i, j), py.At(IRho, j, i))
			}
			if math.Abs(px.At(IMx, i, j)-py.At(IMy, j, i)) > 1e-11 {
				t.Fatalf("momentum xy asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

// TestZetaBounded: the tracked scalar stays in [0, 1] (advected
// passively, it must not create new extrema beyond limiter wiggles).
func TestZetaBounded(t *testing.T) {
	nx := 64
	_, d := onePatch(nx, 8)
	dx := 1.0 / float64(nx)
	pd := d.LocalPatches(0)[0]
	b := pd.Interior()
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			x := (float64(i) + 0.5) * dx
			z := 0.0
			if x > 0.5 {
				z = 1
			}
			setPrim(pd, i, j, Primitive{Rho: 1, U: 0.5, P: 1, Zeta: z})
		}
	}
	s := NewSolver(1.4, GodunovFlux)
	for step := 0; step < 10; step++ {
		dt := s.StableDt(pd, dx, dx)
		heunStep(s, d, dt, dx, dx)
	}
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			z := pd.At(IZeta, i, j) / pd.At(IRho, i, j)
			if z < -0.02 || z > 1.02 {
				t.Fatalf("zeta = %v at (%d,%d)", z, i, j)
			}
		}
	}
}

// TestEFMStrongShockStability: Mach ~5 conditions that break the
// unlimited scheme must stay positive under EFM (the paper's reason
// for the swap).
func TestEFMStrongShockStability(t *testing.T) {
	nx := 128
	_, d := onePatch(nx, 4)
	dx := 1.0 / float64(nx)
	pd := d.LocalPatches(0)[0]
	b := pd.Interior()
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			x := (float64(i) + 0.5) * dx
			w := Primitive{Rho: 1, P: 1}
			if x < 0.3 {
				w = Primitive{Rho: 5.8, U: 4.5, P: 29} // ~Mach 5 post-shock
			}
			setPrim(pd, i, j, w)
		}
	}
	s := NewSolver(1.4, EFMFlux)
	for step := 0; step < 30; step++ {
		dt := s.StableDt(pd, dx, dx)
		heunStep(s, d, dt, dx, dx)
	}
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			rho := pd.At(IRho, i, j)
			if rho <= 0 || math.IsNaN(rho) {
				t.Fatalf("rho = %v at (%d,%d)", rho, i, j)
			}
		}
	}
	if m := s.MaxMach(pd); math.IsNaN(m) || m > 20 {
		t.Errorf("max mach = %v", m)
	}
}

// ---- HLLC flux -------------------------------------------------------------

func TestHLLCConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := Primitive{
			Rho:  0.1 + rng.Float64()*5,
			U:    rng.Float64()*10 - 5,
			V:    rng.Float64()*10 - 5,
			P:    0.1 + rng.Float64()*5,
			Zeta: rng.Float64(),
		}
		fh := HLLCFlux(gas, w, w)
		fa := gas.FluxX(w)
		for k := 0; k < NumComp; k++ {
			if !almost(fh[k], fa[k], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHLLCResolvesStationaryContact(t *testing.T) {
	// HLLC (unlike HLL) keeps a stationary contact exact: zero mass flux.
	l := Primitive{Rho: 1, U: 0, P: 1, Zeta: 0}
	r := Primitive{Rho: 0.2, U: 0, P: 1, Zeta: 1}
	f := HLLCFlux(gas, l, r)
	if math.Abs(f[IRho]) > 1e-12 {
		t.Errorf("mass flux on contact = %v", f[IRho])
	}
	if math.Abs(f[IMx]-1) > 1e-12 { // pressure flux only
		t.Errorf("momentum flux = %v, want p = 1", f[IMx])
	}
}

func TestHLLCSupersonicUpwinding(t *testing.T) {
	l := Primitive{Rho: 1, U: 10, P: 1, Zeta: 0.3}
	r := Primitive{Rho: 5, U: 10, P: 9, Zeta: 0.9}
	fh := HLLCFlux(gas, l, r)
	fa := gas.FluxX(l)
	for k := 0; k < NumComp; k++ {
		if !almost(fh[k], fa[k], 1e-9) {
			t.Errorf("flux[%d] = %v, want %v", k, fh[k], fa[k])
		}
	}
}

func TestHLLCSodTube(t *testing.T) {
	nx, ny := 200, 4
	_, d := onePatch(nx, ny)
	dx := 1.0 / float64(nx)
	pd := d.LocalPatches(0)[0]
	l, r := sodStates()
	b := pd.Interior()
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			x := (float64(i) + 0.5) * dx
			if x < 0.5 {
				setPrim(pd, i, j, l)
			} else {
				setPrim(pd, i, j, r)
			}
		}
	}
	s := NewSolver(1.4, HLLCFlux)
	tEnd, tNow := 0.2, 0.0
	for tNow < tEnd {
		dt := s.StableDt(pd, dx, dx)
		if tNow+dt > tEnd {
			dt = tEnd - tNow
		}
		heunStep(s, d, dt, dx, dx)
		tNow += dt
	}
	sol := SolveRiemann(gas, l, r)
	var l1 float64
	j := (b.Lo[1] + b.Hi[1]) / 2
	for i := b.Lo[0]; i <= b.Hi[0]; i++ {
		x := (float64(i) + 0.5) * dx
		exact := SampleRiemann(gas, l, r, sol, (x-0.5)/tEnd)
		got := s.primAt(pd, i, j)
		l1 += math.Abs(got.Rho-exact.Rho) * dx
	}
	if l1 > 0.02 {
		t.Errorf("HLLC Sod L1 error = %v", l1)
	}
}
