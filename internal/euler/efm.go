package euler

import "math"

// EFM is Pullin's Equilibrium Flux Method (J. Comp. Phys. 34, 1980): a
// kinetic flux-vector splitting that transports half-Maxwellians across
// the interface. It is more diffusive than the Godunov flux but
// positively conservative and robust for strong shocks — the paper
// swaps it in for the Mach 3.5 case by reconnecting one component.

// efmHalf computes the one-sided kinetic flux of a state moving in +x
// (sign=+1) or -x (sign=-1).
func efmHalf(g Gas, w Primitive, sign float64) Conserved {
	rt := w.P / w.Rho // R*T per unit mass
	beta := 1 / (2 * rt)
	s := w.U * math.Sqrt(beta)
	// W = weight of molecules crossing with the chosen sign,
	// D = number-flux correction from thermal motion.
	var wgt, d float64
	if sign > 0 {
		wgt = 0.5 * math.Erfc(-s)
		d = 0.5 * math.Exp(-s*s) / math.Sqrt(math.Pi*beta)
	} else {
		wgt = 0.5 * math.Erfc(s)
		d = -0.5 * math.Exp(-s*s) / math.Sqrt(math.Pi*beta)
	}
	e := w.P/(g.Gamma-1) + 0.5*w.Rho*(w.U*w.U+w.V*w.V)
	massFlux := w.Rho * (w.U*wgt + d)
	return Conserved{
		massFlux,
		(w.Rho*w.U*w.U+w.P)*wgt + w.Rho*w.U*d,
		w.V * massFlux,
		(e+w.P)*w.U*wgt + (e+0.5*w.P)*d,
		w.Zeta * massFlux,
	}
}

// EFMFlux returns the equilibrium-flux-method interface flux for an
// x-sweep: upstream half-flux of the left state plus downstream
// half-flux of the right state.
func EFMFlux(g Gas, l, r Primitive) Conserved {
	fp := efmHalf(g, l, +1)
	fm := efmHalf(g, r, -1)
	var out Conserved
	for k := 0; k < NumComp; k++ {
		out[k] = fp[k] + fm[k]
	}
	return out
}
