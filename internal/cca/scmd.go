package cca

import (
	"fmt"
	"sync"

	"ccahydro/internal/mpi"
)

// SCMD (Single Component Multiple Data) execution: P identically
// configured frameworks, one per rank, each built from the same script
// or assembly function. The P instances of a given component form a
// cohort, and all message passing happens inside cohorts through the
// communicator the framework lends out — the framework itself provides
// no messaging.

// SCMDResult captures one SCMD job's outcome.
type SCMDResult struct {
	// World exposes the virtual clocks of the finished job.
	World *mpi.World
	// Errors holds the per-rank error (nil on success), indexed by rank.
	Errors []error
}

// Err returns the job's failure: a world-level fault (a killed rank —
// whose assemble never returned, so its Errors slot stays nil) takes
// precedence, then the first non-nil rank error annotated with its rank.
func (r *SCMDResult) Err() error {
	if err := r.World.Failure(); err != nil {
		return err
	}
	for rank, e := range r.Errors {
		if e != nil {
			return fmt.Errorf("cca: rank %d: %w", rank, e)
		}
	}
	return nil
}

// MaxVirtualTime is the simulated job run time (max over ranks).
func (r *SCMDResult) MaxVirtualTime() float64 { return r.World.MaxVirtualTime() }

// RunSCMD instantiates P frameworks, applies assemble to each with its
// rank-scoped communicator, and waits for all ranks. assemble typically
// parses/executes a script or calls Instantiate/Connect/Go directly.
func RunSCMD(size int, model mpi.NetworkModel, repo *Repository, assemble func(f *Framework, comm *mpi.Comm) error) *SCMDResult {
	return RunSCMDOn(mpi.NewWorld(size, model), repo, assemble)
}

// RunSCMDOn is RunSCMD over a caller-built world, so the job can be
// launched with faults injected (or clocks pre-seeded) before any rank
// starts. The world's size fixes the rank count.
func RunSCMDOn(w *mpi.World, repo *Repository, assemble func(f *Framework, comm *mpi.Comm) error) *SCMDResult {
	res := &SCMDResult{Errors: make([]error, w.Size())}
	var mu sync.Mutex
	res.World = mpi.RunOn(w, func(comm *mpi.Comm) {
		f := NewFramework(repo, comm)
		err := assemble(f, comm)
		mu.Lock()
		res.Errors[comm.Rank()] = err
		mu.Unlock()
	})
	return res
}

// RunScriptSCMD parses the script text once and executes it on P
// frameworks — the paper's "P instances of the framework, run with the
// same script" launch mode (mpirun equivalent).
func RunScriptSCMD(size int, model mpi.NetworkModel, repo *Repository, scriptText string) (*SCMDResult, error) {
	script, err := ParseScriptString(scriptText)
	if err != nil {
		return nil, err
	}
	return RunSCMD(size, model, repo, func(f *Framework, _ *mpi.Comm) error {
		return script.Execute(f)
	}), nil
}
