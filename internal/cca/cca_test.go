package cca

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"ccahydro/internal/mpi"
)

// ---- test fixtures ----------------------------------------------------

// addPort is a toy domain port.
type addPort interface {
	Add(a, b float64) float64
}

// adder provides addPort.
type adder struct {
	calls int
}

func (a *adder) SetServices(svc Services) error {
	return svc.AddProvidesPort(a, "sum", "test.AddPort")
}

func (a *adder) Add(x, y float64) float64 {
	a.calls++
	return x + y
}

// client uses addPort and provides a GoPort that exercises it.
type client struct {
	svc    Services
	result float64
}

func (c *client) SetServices(svc Services) error {
	c.svc = svc
	if err := svc.RegisterUsesPort("calc", "test.AddPort"); err != nil {
		return err
	}
	return svc.AddProvidesPort(goFunc(c.run), "go", GoPortType)
}

func (c *client) run() error {
	p, err := c.svc.GetPort("calc")
	if err != nil {
		return err
	}
	defer c.svc.ReleasePort("calc")
	c.result = p.(addPort).Add(2, c.svc.Parameters().GetFloat("addend", 1))
	return nil
}

// goFunc adapts a func to GoPort.
type goFunc func() error

func (g goFunc) Go() error { return g() }

func testRepo() *Repository {
	repo := NewRepository()
	repo.Register("Adder", func() Component { return &adder{} })
	repo.Register("Client", func() Component { return &client{} })
	return repo
}

// ---- framework semantics ----------------------------------------------

func TestInstantiateConnectGo(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	if err := f.Instantiate("Adder", "a"); err != nil {
		t.Fatal(err)
	}
	if err := f.Instantiate("Client", "c"); err != nil {
		t.Fatal(err)
	}
	if err := f.Connect("c", "calc", "a", "sum"); err != nil {
		t.Fatal(err)
	}
	if err := f.Go("c", "go"); err != nil {
		t.Fatal(err)
	}
	comp, _ := f.Lookup("c")
	if got := comp.(*client).result; got != 3 {
		t.Errorf("result = %v, want 3", got)
	}
}

func TestUnknownClass(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	if err := f.Instantiate("Nope", "x"); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("err = %v, want ErrUnknownClass", err)
	}
}

func TestDuplicateInstanceName(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	if err := f.Instantiate("Adder", "a"); err != nil {
		t.Fatal(err)
	}
	if err := f.Instantiate("Adder", "a"); !errors.Is(err, ErrInstanceExists) {
		t.Errorf("err = %v, want ErrInstanceExists", err)
	}
}

func TestConnectTypeMismatch(t *testing.T) {
	repo := testRepo()
	repo.Register("WrongType", func() Component {
		return componentFunc(func(svc Services) error {
			return svc.AddProvidesPort(goFunc(func() error { return nil }), "sum", "test.OtherPort")
		})
	})
	f := NewFramework(repo, nil)
	mustOK(t, f.Instantiate("WrongType", "w"))
	mustOK(t, f.Instantiate("Client", "c"))
	if err := f.Connect("c", "calc", "w", "sum"); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("err = %v, want ErrTypeMismatch", err)
	}
}

type componentFunc func(Services) error

func (c componentFunc) SetServices(svc Services) error { return c(svc) }

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestConnectUnknownPortsAndInstances(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	mustOK(t, f.Instantiate("Adder", "a"))
	mustOK(t, f.Instantiate("Client", "c"))
	if err := f.Connect("zzz", "calc", "a", "sum"); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("unknown user: %v", err)
	}
	if err := f.Connect("c", "nope", "a", "sum"); !errors.Is(err, ErrPortNotFound) {
		t.Errorf("unknown uses port: %v", err)
	}
	if err := f.Connect("c", "calc", "a", "nope"); !errors.Is(err, ErrPortNotFound) {
		t.Errorf("unknown provides port: %v", err)
	}
}

func TestDoubleConnectRejected(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	mustOK(t, f.Instantiate("Adder", "a"))
	mustOK(t, f.Instantiate("Adder", "a2"))
	mustOK(t, f.Instantiate("Client", "c"))
	mustOK(t, f.Connect("c", "calc", "a", "sum"))
	if err := f.Connect("c", "calc", "a2", "sum"); !errors.Is(err, ErrAlreadyConnected) {
		t.Errorf("err = %v, want ErrAlreadyConnected", err)
	}
}

func TestGetPortBeforeConnect(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	mustOK(t, f.Instantiate("Client", "c"))
	if err := f.Go("c", "go"); !errors.Is(err, ErrPortNotConnected) {
		t.Errorf("err = %v, want ErrPortNotConnected", err)
	}
}

func TestDisconnectAndReconnect(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	mustOK(t, f.Instantiate("Adder", "a"))
	mustOK(t, f.Instantiate("Adder", "b"))
	mustOK(t, f.Instantiate("Client", "c"))
	mustOK(t, f.Connect("c", "calc", "a", "sum"))
	mustOK(t, f.Go("c", "go")) // fetch+release, so disconnect is legal
	mustOK(t, f.Disconnect("c", "calc"))
	// The paper's EFMFlux-for-GodunovFlux swap: reconnect to another provider.
	mustOK(t, f.Connect("c", "calc", "b", "sum"))
	mustOK(t, f.Go("c", "go"))
	ca, _ := f.Lookup("a")
	cb, _ := f.Lookup("b")
	if ca.(*adder).calls != 1 || cb.(*adder).calls != 1 {
		t.Errorf("calls a=%d b=%d, want 1 and 1", ca.(*adder).calls, cb.(*adder).calls)
	}
}

func TestDisconnectWhileFetched(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	mustOK(t, f.Instantiate("Adder", "a"))
	mustOK(t, f.Instantiate("Client", "c"))
	mustOK(t, f.Connect("c", "calc", "a", "sum"))
	comp, _ := f.Lookup("c")
	cl := comp.(*client)
	if _, err := cl.svc.GetPort("calc"); err != nil {
		t.Fatal(err)
	}
	if err := f.Disconnect("c", "calc"); !errors.Is(err, ErrPortInUse) {
		t.Errorf("err = %v, want ErrPortInUse", err)
	}
	cl.svc.ReleasePort("calc")
	mustOK(t, f.Disconnect("c", "calc"))
}

func TestGoOnNonGoPort(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	mustOK(t, f.Instantiate("Adder", "a"))
	if err := f.Go("a", "sum"); !errors.Is(err, ErrNotGoPort) {
		t.Errorf("err = %v, want ErrNotGoPort", err)
	}
}

func TestDuplicatePortRegistration(t *testing.T) {
	repo := NewRepository()
	repo.Register("DupProvides", func() Component {
		return componentFunc(func(svc Services) error {
			if err := svc.AddProvidesPort(goFunc(nil), "p", "t"); err != nil {
				return err
			}
			return svc.AddProvidesPort(goFunc(nil), "p", "t")
		})
	})
	f := NewFramework(repo, nil)
	if err := f.Instantiate("DupProvides", "d"); !errors.Is(err, ErrPortExists) {
		t.Errorf("err = %v, want ErrPortExists", err)
	}
}

func TestParametersStagedBeforeInstantiate(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	mustOK(t, f.SetParameter("c", "addend", "40"))
	mustOK(t, f.Instantiate("Adder", "a"))
	mustOK(t, f.Instantiate("Client", "c"))
	mustOK(t, f.Connect("c", "calc", "a", "sum"))
	mustOK(t, f.Go("c", "go"))
	comp, _ := f.Lookup("c")
	if got := comp.(*client).result; got != 42 {
		t.Errorf("result = %v, want 42", got)
	}
}

func TestIntrospection(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	mustOK(t, f.Instantiate("Adder", "a"))
	mustOK(t, f.Instantiate("Client", "c"))
	mustOK(t, f.Connect("c", "calc", "a", "sum"))
	if got := f.Instances(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("Instances = %v", got)
	}
	class, err := f.ClassOf("a")
	if err != nil || class != "Adder" {
		t.Errorf("ClassOf = %q, %v", class, err)
	}
	conns := f.Connections()
	if len(conns) != 1 || conns[0].User != "c" || conns[0].Provider != "a" {
		t.Errorf("Connections = %+v", conns)
	}
	prov, _ := f.ProvidedPorts("a")
	if len(prov) != 1 || prov[0][0] != "sum" || prov[0][1] != "test.AddPort" {
		t.Errorf("ProvidedPorts = %v", prov)
	}
	uses, _ := f.UsesPorts("c")
	if len(uses) != 1 || uses[0][0] != "calc" {
		t.Errorf("UsesPorts = %v", uses)
	}
}

// ---- repository ---------------------------------------------------------

func TestRepositoryClassesSorted(t *testing.T) {
	r := testRepo()
	got := r.Classes()
	if len(got) != 2 || got[0] != "Adder" || got[1] != "Client" {
		t.Errorf("Classes = %v", got)
	}
	if !r.Has("Adder") || r.Has("Nope") {
		t.Error("Has misbehaves")
	}
}

func TestRepositoryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate registration")
		}
	}()
	r := NewRepository()
	r.Register("X", func() Component { return &adder{} })
	r.Register("X", func() Component { return &adder{} })
}

// ---- typemap ------------------------------------------------------------

func TestTypeMapRoundTrips(t *testing.T) {
	tm := NewTypeMap()
	tm.SetFloat("f", 3.25)
	tm.SetInt("i", -7)
	tm.SetBool("b", true)
	tm.SetString("s", "hello")
	if tm.GetFloat("f", 0) != 3.25 || tm.GetInt("i", 0) != -7 || !tm.GetBool("b", false) || tm.GetString("s", "") != "hello" {
		t.Errorf("round trip failed: %v", tm)
	}
	// Defaults on missing/malformed.
	if tm.GetFloat("missing", 9) != 9 || tm.GetInt("s", 5) != 5 || tm.GetBool("s", true) != true {
		t.Error("defaults not honored")
	}
	if tm.Len() != 4 || !tm.Has("f") || tm.Has("zz") {
		t.Error("Len/Has wrong")
	}
	keys := tm.Keys()
	want := []string{"b", "f", "i", "s"}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("Keys = %v", keys)
		}
	}
	if s := tm.String(); !strings.Contains(s, "f=3.25") {
		t.Errorf("String = %q", s)
	}
}

func TestTypeMapScriptValuesRoundTrip(t *testing.T) {
	// Script parameters arrive as strings; typed getters must parse them.
	tm := NewTypeMap()
	tm.SetString("n", "128")
	tm.SetString("dt", "1e-7")
	tm.SetString("on", "true")
	if tm.GetInt("n", 0) != 128 || tm.GetFloat("dt", 0) != 1e-7 || !tm.GetBool("on", false) {
		t.Error("string-typed values failed to parse")
	}
}

// ---- script ------------------------------------------------------------

const demoScript = `
#!ccaffeine bootstrap file
repository get-global Adder
repository get-global Client
instantiate Adder a
instantiate Client c
parameter c addend 5
connect c calc a sum
go c go
quit
`

func TestScriptExecute(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	s, err := ParseScriptString(demoScript)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Execute(f); err != nil {
		t.Fatal(err)
	}
	comp, _ := f.Lookup("c")
	if got := comp.(*client).result; got != 7 {
		t.Errorf("result = %v, want 7", got)
	}
}

func TestScriptParseErrors(t *testing.T) {
	cases := []string{
		"frobnicate a b",
		"instantiate OnlyOneArg",
		"connect a b c",
		"repository delete X",
		"go onlyinstance",
	}
	for _, src := range cases {
		if _, err := ParseScriptString(src); err == nil {
			t.Errorf("ParseScriptString(%q) succeeded, want error", src)
		}
	}
}

func TestScriptQuitStopsExecution(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	s, err := ParseScriptString("instantiate Adder a\nquit\ninstantiate Nope x\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Execute(f); err != nil {
		t.Errorf("commands after quit must not run: %v", err)
	}
}

func TestScriptExecuteErrorCarriesLine(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	s, err := ParseScriptString("instantiate Adder a\ninstantiate Missing m\n")
	if err != nil {
		t.Fatal(err)
	}
	execErr := s.Execute(f)
	if execErr == nil || !strings.Contains(execErr.Error(), "line 2") {
		t.Errorf("err = %v, want line 2 mention", execErr)
	}
}

func TestArenaRendering(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	mustOK(t, f.Instantiate("Adder", "a"))
	mustOK(t, f.Instantiate("Client", "c"))
	mustOK(t, f.Connect("c", "calc", "a", "sum"))
	arena := Arena(f)
	for _, want := range []string{"component a (class Adder)", "provides sum", "uses     calc", "c.calc -> a.sum"} {
		if !strings.Contains(arena, want) {
			t.Errorf("arena missing %q:\n%s", want, arena)
		}
	}
}

// ---- SCMD ---------------------------------------------------------------

// cohortComp exercises cohort communication: each rank contributes its
// rank and checks the allreduced sum.
type cohortComp struct {
	svc Services
	sum float64
}

func (c *cohortComp) SetServices(svc Services) error {
	c.svc = svc
	return svc.AddProvidesPort(goFunc(c.run), "go", GoPortType)
}

func (c *cohortComp) run() error {
	comm := c.svc.Comm()
	c.sum = comm.AllreduceScalar(mpi.OpSum, float64(comm.Rank()))
	return nil
}

func TestRunScriptSCMD(t *testing.T) {
	repo := NewRepository()
	var mu sync.Mutex
	sums := map[int]float64{}
	repo.Register("Cohort", func() Component { return &cohortComp{} })
	repo.Register("Probe", func() Component {
		return componentFunc(func(svc Services) error { return nil })
	})
	script := "instantiate Cohort w\ngo w go\n"
	// Wrap via RunSCMD to capture results per rank.
	res := RunSCMD(4, mpi.ZeroModel, repo, func(f *Framework, comm *mpi.Comm) error {
		s, err := ParseScriptString(script)
		if err != nil {
			return err
		}
		if err := s.Execute(f); err != nil {
			return err
		}
		comp, _ := f.Lookup("w")
		mu.Lock()
		sums[comm.Rank()] = comp.(*cohortComp).sum
		mu.Unlock()
		return nil
	})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if sums[r] != 6 { // 0+1+2+3
			t.Errorf("rank %d sum = %v, want 6", r, sums[r])
		}
	}
}

func TestRunScriptSCMDParsesOnce(t *testing.T) {
	repo := NewRepository()
	repo.Register("Cohort", func() Component { return &cohortComp{} })
	res, err := RunScriptSCMD(3, mpi.ZeroModel, repo, "instantiate Cohort w\ngo w go\nquit\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.MaxVirtualTime() < 0 {
		t.Error("negative virtual time")
	}
}

func TestSCMDRankErrorSurfaces(t *testing.T) {
	repo := NewRepository()
	res := RunSCMD(2, mpi.ZeroModel, repo, func(f *Framework, comm *mpi.Comm) error {
		if comm.Rank() == 1 {
			return errors.New("boom")
		}
		return nil
	})
	err := res.Err()
	if err == nil || !strings.Contains(err.Error(), "rank 1") {
		t.Errorf("err = %v", err)
	}
}

func TestDestroyInstance(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	mustOK(t, f.Instantiate("Adder", "a"))
	mustOK(t, f.Instantiate("Client", "c"))
	mustOK(t, f.Connect("c", "calc", "a", "sum"))
	// Destroying a connected provider is refused.
	if err := f.Destroy("a"); err == nil {
		t.Fatal("destroyed a connected provider")
	}
	mustOK(t, f.Disconnect("c", "calc"))
	mustOK(t, f.Destroy("a"))
	if _, err := f.ClassOf("a"); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("a still present: %v", err)
	}
	if got := f.Instances(); len(got) != 1 || got[0] != "c" {
		t.Errorf("instances = %v", got)
	}
	// Unknown instance.
	if err := f.Destroy("zzz"); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("err = %v", err)
	}
	// Name is reusable after destroy.
	mustOK(t, f.Instantiate("Adder", "a"))
}

func TestScriptDestroyCommand(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	s, err := ParseScriptString("instantiate Adder a\ninstantiate Adder b\ndestroy b\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Execute(f); err != nil {
		t.Fatal(err)
	}
	if got := f.Instances(); len(got) != 1 {
		t.Errorf("instances = %v", got)
	}
}
