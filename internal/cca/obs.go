package cca

import (
	"sync"

	"ccahydro/internal/obs"
	"ccahydro/internal/telemetry"
)

// Port-call interception. With observability enabled, GetPort hands the
// using component an instrumented proxy instead of the raw provider
// port, so every method invocation crossing the wire is counted and its
// latency recorded under port_call_seconds{instance,port,method} — a
// direct, always-on re-measurement of the paper's Table 4 component
// invocation overhead on whatever assembly is actually running.
//
// Go cannot synthesize an implementation of an arbitrary interface at
// runtime, so proxies are hand-written per port type and registered
// here by the package that owns the interface definitions (the CCA
// spec's "user community" — internal/components). Port types without a
// registered wrapper pass through unwrapped; their wires stay exactly
// as fast as with observability off.

// PortWrapper builds an instrumented proxy around inner. instance and
// portName label the metrics (the *using* side's instance and uses-port
// name, matching how Table 4 counts caller-side invocation cost). The
// returned Port must implement every interface inner exposes that
// callers probe for — including optional capability interfaces — or
// return inner unchanged when it cannot.
type PortWrapper func(o *obs.Obs, instance, portName string, inner Port) Port

var portWrappers struct {
	mu sync.RWMutex
	m  map[string]PortWrapper
}

// RegisterPortWrapper installs the proxy factory for one port type
// string. Later registrations for the same type win; registration is
// typically done from init functions of the port-owning package.
func RegisterPortWrapper(portType string, w PortWrapper) {
	portWrappers.mu.Lock()
	defer portWrappers.mu.Unlock()
	if portWrappers.m == nil {
		portWrappers.m = make(map[string]PortWrapper)
	}
	portWrappers.m[portType] = w
}

// wrapPort resolves the proxy for one fetched wire. Called at most once
// per uses entry per connection (the instance caches the result), so
// the map lookup and proxy allocation never sit on a hot path.
func wrapPort(o *obs.Obs, instance, portName, portType string, inner Port) Port {
	portWrappers.mu.RLock()
	w := portWrappers.m[portType]
	portWrappers.mu.RUnlock()
	if w == nil {
		return inner
	}
	if p := w(o, instance, portName, inner); p != nil {
		return p
	}
	return inner
}

// SetObservability attaches (or, with nil, detaches) an observability
// session to the framework. With a session attached, GetPort returns
// instrumented proxies for wrapped port types and the framework's
// communicator reports message flights to the session's tracer. Call
// before the simulation starts; attaching mid-run only affects ports
// fetched afterwards.
func (f *Framework) SetObservability(o *obs.Obs) {
	f.obs = o
	if f.comm != nil {
		f.comm.SetTracer(o.Tracer())
	}
	// Invalidate any proxies cached under a previous session.
	for _, in := range f.instances {
		in.mu.Lock()
		for _, u := range in.uses {
			u.proxy = nil
		}
		in.mu.Unlock()
	}
}

// Observability returns the attached session, or nil.
func (f *Framework) Observability() *obs.Obs { return f.obs }

// SetTelemetry attaches (or, with nil, detaches) the rank's live
// telemetry handle; components read it through Services.Telemetry().
// Unlike observability there is nothing to invalidate — the handle is
// consulted at emit time, not baked into proxies.
func (f *Framework) SetTelemetry(rk *telemetry.Rank) { f.tel = rk }

// Telemetry returns the attached telemetry handle, or nil.
func (f *Framework) Telemetry() *telemetry.Rank { return f.tel }
