// Package cca implements a Common Component Architecture (CCA)
// component model and a Ccaffeine-style hosting framework in pure Go.
//
// The model follows the paper's description of Ccaffeine:
//
//   - Components are peers created inside a Framework. Each implements
//     the single deferred method SetServices, which the framework calls
//     at instantiation; the component uses it to register its
//     ProvidesPorts and declare its UsesPorts.
//   - Ports are data-less abstract interfaces. Connecting a uses port
//     to a provides port is just the movement of an interface value
//     from the providing to the using component, so a method invocation
//     on a uses port costs one interface-method dispatch — the Go
//     analogue of the C++ virtual-function call the paper measures in
//     Table 4.
//   - The framework is SCMD (Single Component Multiple Data): identical
//     frameworks holding identical component assemblies run on P ranks,
//     and the framework lends a properly scoped communicator to any
//     component that asks. All message passing happens inside component
//     cohorts; the framework itself never moves data.
//
// Where Ccaffeine loads components from shared-object libraries via
// dlopen, Go programs cannot portably dlopen Go code, so this package
// substitutes a Repository of registered factories; the assembly
// scripts' "repository get" command resolves class names against it.
package cca

import (
	"errors"
	"fmt"
	"sync"

	"ccahydro/internal/mpi"
	"ccahydro/internal/obs"
	"ccahydro/internal/telemetry"
)

// Port is the marker interface for CCA ports. Concrete ports are
// ordinary Go interfaces (MeshPort, RHSPort, ...) whose definitions are
// owned by the user community, exactly as in the CCA specification.
type Port any

// Component is the data-less abstract base of the CCA model. The
// framework invokes SetServices exactly once, at instantiation; the
// component registers itself, its UsesPorts and its ProvidesPorts
// through the provided Services handle and must retain the handle if it
// wants to fetch ports later.
type Component interface {
	SetServices(svc Services) error
}

// GoPort is the standard CCA start port: the framework's "go" command
// locates a provides port of type "gov.cca.ports.GoPort" on a driver
// component and invokes Go once on it.
type GoPort interface {
	Go() error
}

// GoPortType is the canonical type string for GoPort provides ports.
const GoPortType = "gov.cca.ports.GoPort"

// Services is the component's window into its hosting framework. It is
// handed to SetServices and stays valid for the component's lifetime.
type Services interface {
	// AddProvidesPort exports a functionality. The port value must
	// implement whatever interface the portType names; name must be
	// unique among this component's provides ports.
	AddProvidesPort(port Port, name, portType string) error

	// RegisterUsesPort declares that this component will call through a
	// port of the given type under the given local name.
	RegisterUsesPort(name, portType string) error

	// GetPort returns the port connected to the named uses port. It
	// fails if the uses port was never registered or is not connected.
	GetPort(name string) (Port, error)

	// ReleasePort signals that the component is done with the port
	// fetched under name (reference counting hook; release of an
	// unfetched port is a no-op).
	ReleasePort(name string)

	// Comm returns the framework-scoped communicator lent to this
	// component's cohort, or nil in a serial (non-SCMD) framework.
	Comm() *mpi.Comm

	// Parameters returns this instance's parameter TypeMap, populated
	// by "parameter" script commands or programmatic SetParameter calls
	// before SetServices runs.
	Parameters() *TypeMap

	// InstanceName returns the name this component was instantiated
	// under.
	InstanceName() string

	// Observability returns the framework's observability session, or
	// nil when observability is disabled (the default). Components use
	// it to open tracer spans around their own phases; the framework
	// itself uses it to interpose on port wires. A nil result is safe
	// to call span helpers on.
	Observability() *obs.Obs

	// Telemetry returns the rank's live-telemetry handle, or nil when
	// the telemetry plane is detached (the default). A nil handle
	// accepts every call as a no-op, so drivers emit events unguarded.
	Telemetry() *telemetry.Rank
}

// Sentinel errors returned by framework and services operations.
var (
	ErrPortNotFound      = errors.New("cca: port not found")
	ErrPortExists        = errors.New("cca: port already defined")
	ErrPortNotConnected  = errors.New("cca: uses port not connected")
	ErrTypeMismatch      = errors.New("cca: port type mismatch")
	ErrUnknownClass      = errors.New("cca: unknown component class")
	ErrUnknownInstance   = errors.New("cca: unknown component instance")
	ErrInstanceExists    = errors.New("cca: instance name already in use")
	ErrAlreadyConnected  = errors.New("cca: uses port already connected")
	ErrNotGoPort         = errors.New("cca: port does not implement GoPort")
	ErrSelfConnection    = errors.New("cca: cannot connect a component to itself on the same port pair")
	ErrPortInUse         = errors.New("cca: port still fetched; release before disconnect")
	ErrBadPortDefinition = errors.New("cca: invalid port definition")
)

// providesEntry is one exported port on an instance.
type providesEntry struct {
	port     Port
	portType string
}

// usesEntry is one declared dependency of an instance.
type usesEntry struct {
	portType string
	// conn is the connected provider port, nil while unconnected.
	conn Port
	// provider records where the connection leads, for introspection.
	provider     string
	providerPort string
	// fetches counts outstanding GetPort minus ReleasePort calls.
	fetches int
	// proxy caches the instrumented wrapper around conn when the
	// framework's observability is on; nil otherwise or until the
	// first GetPort. Invalidated by Connect/Disconnect.
	proxy Port
}

// instance is one live component inside a framework.
type instance struct {
	name      string
	className string
	comp      Component
	provides  map[string]*providesEntry
	uses      map[string]*usesEntry
	params    *TypeMap
	fw        *Framework
	// mu guards the mutable fields of uses entries (conn, fetches).
	// GetPort/ReleasePort may be called from parallel worker goroutines
	// while kernels run, so the reference counting must be atomic with
	// respect to Connect/Disconnect.
	mu sync.Mutex
}

var _ Services = (*instance)(nil)

func (in *instance) AddProvidesPort(port Port, name, portType string) error {
	if port == nil || name == "" || portType == "" {
		return fmt.Errorf("%w: name=%q type=%q", ErrBadPortDefinition, name, portType)
	}
	if _, dup := in.provides[name]; dup {
		return fmt.Errorf("%w: provides %q on %q", ErrPortExists, name, in.name)
	}
	if _, dup := in.uses[name]; dup {
		return fmt.Errorf("%w: %q already a uses port on %q", ErrPortExists, name, in.name)
	}
	in.provides[name] = &providesEntry{port: port, portType: portType}
	return nil
}

func (in *instance) RegisterUsesPort(name, portType string) error {
	if name == "" || portType == "" {
		return fmt.Errorf("%w: name=%q type=%q", ErrBadPortDefinition, name, portType)
	}
	if _, dup := in.uses[name]; dup {
		return fmt.Errorf("%w: uses %q on %q", ErrPortExists, name, in.name)
	}
	if _, dup := in.provides[name]; dup {
		return fmt.Errorf("%w: %q already a provides port on %q", ErrPortExists, name, in.name)
	}
	in.uses[name] = &usesEntry{portType: portType}
	return nil
}

func (in *instance) GetPort(name string) (Port, error) {
	u, ok := in.uses[name]
	if !ok {
		return nil, fmt.Errorf("%w: uses %q on %q", ErrPortNotFound, name, in.name)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if u.conn == nil {
		return nil, fmt.Errorf("%w: %q on %q", ErrPortNotConnected, name, in.name)
	}
	u.fetches++
	if o := in.fw.obs; o != nil {
		if u.proxy == nil {
			u.proxy = wrapPort(o, in.name, name, u.portType, u.conn)
		}
		return u.proxy, nil
	}
	return u.conn, nil
}

func (in *instance) ReleasePort(name string) {
	if u, ok := in.uses[name]; ok {
		in.mu.Lock()
		if u.fetches > 0 {
			u.fetches--
		}
		in.mu.Unlock()
	}
}

func (in *instance) Comm() *mpi.Comm            { return in.fw.comm }
func (in *instance) Parameters() *TypeMap       { return in.params }
func (in *instance) InstanceName() string       { return in.name }
func (in *instance) Observability() *obs.Obs    { return in.fw.obs }
func (in *instance) Telemetry() *telemetry.Rank { return in.fw.tel }

// Connection describes one live uses→provides wire, for introspection
// (the GUI "arena" view of Fig 1 rendered as text).
type Connection struct {
	User         string
	UsesPort     string
	Provider     string
	ProvidesPort string
	PortType     string
}

// Framework hosts component instances and wires their ports. One
// Framework corresponds to one rank's Ccaffeine instance; under SCMD, P
// identically configured Frameworks exist, one per rank.
type Framework struct {
	repo      *Repository
	comm      *mpi.Comm
	instances map[string]*instance
	order     []string // instantiation order, for deterministic listings
	pending   map[string]*TypeMap
	// obs is the rank's observability session; nil (the default) keeps
	// GetPort returning raw provider ports with zero added work.
	obs *obs.Obs
	// tel is the rank's live-telemetry handle; nil (the default) keeps
	// instrumented drivers on the no-op path.
	tel *telemetry.Rank
}

// NewFramework creates an empty framework resolving classes against
// repo. comm may be nil for serial use.
func NewFramework(repo *Repository, comm *mpi.Comm) *Framework {
	return &Framework{
		repo:      repo,
		comm:      comm,
		instances: make(map[string]*instance),
		pending:   make(map[string]*TypeMap),
	}
}

// SetParameter stages a parameter for an instance name before it is
// instantiated (mirrors the script's "parameter" command which may
// precede "instantiate" in hand-written files). If the instance already
// exists the parameter is applied immediately.
func (f *Framework) SetParameter(instanceName, key, value string) error {
	if in, ok := f.instances[instanceName]; ok {
		in.params.SetString(key, value)
		return nil
	}
	tm, ok := f.pending[instanceName]
	if !ok {
		tm = NewTypeMap()
		f.pending[instanceName] = tm
	}
	tm.SetString(key, value)
	return nil
}

// Instantiate creates an instance of the named class, calls its
// SetServices, and records it under instanceName.
func (f *Framework) Instantiate(className, instanceName string) error {
	if _, dup := f.instances[instanceName]; dup {
		return fmt.Errorf("%w: %q", ErrInstanceExists, instanceName)
	}
	factory, ok := f.repo.lookup(className)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClass, className)
	}
	params := f.pending[instanceName]
	if params == nil {
		params = NewTypeMap()
	}
	delete(f.pending, instanceName)
	in := &instance{
		name:      instanceName,
		className: className,
		comp:      factory(),
		provides:  make(map[string]*providesEntry),
		uses:      make(map[string]*usesEntry),
		params:    params,
		fw:        f,
	}
	if err := in.comp.SetServices(in); err != nil {
		return fmt.Errorf("cca: SetServices(%q of class %q): %w", instanceName, className, err)
	}
	f.instances[instanceName] = in
	f.order = append(f.order, instanceName)
	return nil
}

// Connect wires user's uses port to provider's provides port. Port type
// strings must match exactly; this is the CCA contract check.
func (f *Framework) Connect(user, usesPort, provider, providesPort string) error {
	ui, ok := f.instances[user]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownInstance, user)
	}
	pi, ok := f.instances[provider]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownInstance, provider)
	}
	u, ok := ui.uses[usesPort]
	if !ok {
		return fmt.Errorf("%w: uses %q on %q", ErrPortNotFound, usesPort, user)
	}
	p, ok := pi.provides[providesPort]
	if !ok {
		return fmt.Errorf("%w: provides %q on %q", ErrPortNotFound, providesPort, provider)
	}
	ui.mu.Lock()
	defer ui.mu.Unlock()
	if u.conn != nil {
		return fmt.Errorf("%w: %q.%q", ErrAlreadyConnected, user, usesPort)
	}
	if u.portType != p.portType {
		return fmt.Errorf("%w: %q.%q wants %q, %q.%q provides %q",
			ErrTypeMismatch, user, usesPort, u.portType, provider, providesPort, p.portType)
	}
	if user == provider && usesPort == providesPort {
		return fmt.Errorf("%w: %q.%q", ErrSelfConnection, user, usesPort)
	}
	u.conn = p.port
	u.provider = provider
	u.providerPort = providesPort
	u.proxy = nil
	return nil
}

// Disconnect severs a previously made connection. It fails while the
// user still holds fetches on the port.
func (f *Framework) Disconnect(user, usesPort string) error {
	ui, ok := f.instances[user]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownInstance, user)
	}
	u, ok := ui.uses[usesPort]
	if !ok {
		return fmt.Errorf("%w: uses %q on %q", ErrPortNotFound, usesPort, user)
	}
	ui.mu.Lock()
	defer ui.mu.Unlock()
	if u.conn == nil {
		return fmt.Errorf("%w: %q.%q", ErrPortNotConnected, user, usesPort)
	}
	if u.fetches > 0 {
		return fmt.Errorf("%w: %q.%q has %d outstanding fetches", ErrPortInUse, user, usesPort, u.fetches)
	}
	u.conn = nil
	u.provider = ""
	u.providerPort = ""
	u.proxy = nil
	return nil
}

// Destroy removes an instance from the framework. It fails while any
// other component is connected to one of the instance's provides
// ports (disconnect first), mirroring Ccaffeine's destroy semantics.
func (f *Framework) Destroy(instanceName string) error {
	in, ok := f.instances[instanceName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownInstance, instanceName)
	}
	for _, other := range f.instances {
		if other == in {
			continue
		}
		for pn, u := range other.uses {
			if u.conn != nil && u.provider == instanceName {
				return fmt.Errorf("cca: cannot destroy %q: %q.%q is connected to it",
					instanceName, other.name, pn)
			}
		}
	}
	delete(f.instances, instanceName)
	for i, n := range f.order {
		if n == instanceName {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	return nil
}

// Go invokes the GoPort named portName provided by the named instance —
// the framework's "go" command that starts a simulation.
func (f *Framework) Go(instanceName, portName string) error {
	in, ok := f.instances[instanceName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownInstance, instanceName)
	}
	p, ok := in.provides[portName]
	if !ok {
		return fmt.Errorf("%w: provides %q on %q", ErrPortNotFound, portName, instanceName)
	}
	gp, ok := p.port.(GoPort)
	if !ok {
		return fmt.Errorf("%w: %q.%q has type %q", ErrNotGoPort, instanceName, portName, p.portType)
	}
	return gp.Go()
}

// Instances lists instance names in creation order.
func (f *Framework) Instances() []string {
	return append([]string(nil), f.order...)
}

// ClassOf returns the class an instance was created from.
func (f *Framework) ClassOf(instanceName string) (string, error) {
	in, ok := f.instances[instanceName]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownInstance, instanceName)
	}
	return in.className, nil
}

// Lookup returns the raw component behind an instance name. It exists
// for drivers that need to hand results out of the framework (the
// paper's GUI inspects components the same way).
func (f *Framework) Lookup(instanceName string) (Component, error) {
	in, ok := f.instances[instanceName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownInstance, instanceName)
	}
	return in.comp, nil
}

// Connections lists all live wires in deterministic (creation, then
// port-name) order.
func (f *Framework) Connections() []Connection {
	var out []Connection
	for _, name := range f.order {
		in := f.instances[name]
		names := make([]string, 0, len(in.uses))
		for pn := range in.uses {
			names = append(names, pn)
		}
		sortStrings(names)
		for _, pn := range names {
			u := in.uses[pn]
			if u.conn == nil {
				continue
			}
			out = append(out, Connection{
				User: name, UsesPort: pn,
				Provider: u.provider, ProvidesPort: u.providerPort,
				PortType: u.portType,
			})
		}
	}
	return out
}

// ProvidedPorts lists (name, type) of an instance's provides ports in
// name order; UsesPorts does the same for uses ports. Both power the
// textual "arena" rendering.
func (f *Framework) ProvidedPorts(instanceName string) ([][2]string, error) {
	in, ok := f.instances[instanceName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownInstance, instanceName)
	}
	names := make([]string, 0, len(in.provides))
	for n := range in.provides {
		names = append(names, n)
	}
	sortStrings(names)
	out := make([][2]string, len(names))
	for i, n := range names {
		out[i] = [2]string{n, in.provides[n].portType}
	}
	return out, nil
}

// UsesPorts lists (name, type) of an instance's uses ports in name order.
func (f *Framework) UsesPorts(instanceName string) ([][2]string, error) {
	in, ok := f.instances[instanceName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownInstance, instanceName)
	}
	names := make([]string, 0, len(in.uses))
	for n := range in.uses {
		names = append(names, n)
	}
	sortStrings(names)
	out := make([][2]string, len(names))
	for i, n := range names {
		out[i] = [2]string{n, in.uses[n].portType}
	}
	return out, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
