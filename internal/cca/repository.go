package cca

import (
	"fmt"
	"sort"
	"sync"
)

// Factory constructs a fresh component instance. Each Instantiate call
// invokes the factory once, so components never share state unless they
// arrange to.
type Factory func() Component

// Repository maps component class names to factories. It substitutes
// for Ccaffeine's dlopen-based palette of shared-object components:
// Go cannot portably load Go code at run time, so component packages
// register their classes here (usually once, at program start) and
// assembly scripts resolve class names against the repository.
type Repository struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{factories: make(map[string]Factory)}
}

// Register adds a class. Registering a duplicate name is a programming
// error and panics, mirroring duplicate shared-object symbols.
func (r *Repository) Register(className string, f Factory) {
	if className == "" || f == nil {
		panic("cca: Register requires a class name and a factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[className]; dup {
		panic(fmt.Sprintf("cca: component class %q registered twice", className))
	}
	r.factories[className] = f
}

// lookup fetches a factory.
func (r *Repository) lookup(className string) (Factory, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.factories[className]
	return f, ok
}

// Has reports whether the class is registered.
func (r *Repository) Has(className string) bool {
	_, ok := r.lookup(className)
	return ok
}

// Classes lists registered class names in sorted order — the palette
// the paper's GUI shows as "an available list" of components.
func (r *Repository) Classes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for k := range r.factories {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
