package cca

// BuilderService is the standard CCA composition service: a port
// through which a component (or the GUI's application framer) can
// itself instantiate components, wire ports, and inspect the assembly.
// Ccaffeine exposes exactly this to its framer; here the framework
// provides it to any component that registers a uses port of type
// BuilderServiceType and connects it to the framework's built-in
// provider (instantiated implicitly under the reserved instance name
// ".framework").

// BuilderServiceType is the canonical type string for the builder port.
const BuilderServiceType = "gov.cca.ports.BuilderService"

// BuilderService exposes framework composition operations.
type BuilderService interface {
	// Instantiate creates a named component from a repository class.
	Instantiate(className, instanceName string) error
	// Connect wires user.usesPort to provider.providesPort.
	Connect(user, usesPort, provider, providesPort string) error
	// Disconnect severs a wire.
	Disconnect(user, usesPort string) error
	// SetParameter stages or applies an instance parameter.
	SetParameter(instanceName, key, value string) error
	// Go fires a GoPort.
	Go(instanceName, portName string) error
	// ComponentClasses lists the repository palette.
	ComponentClasses() []string
	// Instances lists live instance names.
	Instances() []string
	// Connections lists live wires.
	Connections() []Connection
}

// FrameworkInstanceName is the reserved name under which the framework
// publishes its own service ports.
const FrameworkInstanceName = ".framework"

// builderView adapts a Framework to BuilderService.
type builderView struct{ f *Framework }

func (b builderView) Instantiate(className, instanceName string) error {
	return b.f.Instantiate(className, instanceName)
}

func (b builderView) Connect(user, usesPort, provider, providesPort string) error {
	return b.f.Connect(user, usesPort, provider, providesPort)
}

func (b builderView) Disconnect(user, usesPort string) error {
	return b.f.Disconnect(user, usesPort)
}

func (b builderView) SetParameter(instanceName, key, value string) error {
	return b.f.SetParameter(instanceName, key, value)
}

func (b builderView) Go(instanceName, portName string) error {
	return b.f.Go(instanceName, portName)
}

func (b builderView) ComponentClasses() []string { return b.f.repo.Classes() }
func (b builderView) Instances() []string        { return b.f.Instances() }
func (b builderView) Connections() []Connection  { return b.f.Connections() }

// frameworkComponent is the implicit component that provides the
// framework's service ports.
type frameworkComponent struct{ f *Framework }

func (fc *frameworkComponent) SetServices(svc Services) error {
	return svc.AddProvidesPort(builderView{fc.f}, "builder", BuilderServiceType)
}

// EnableBuilderService instantiates the framework's service component
// under the reserved name, making the builder port connectable:
//
//	f.EnableBuilderService()
//	f.Connect("myComposer", "builder", cca.FrameworkInstanceName, "builder")
//
// Calling it twice is an error (the instance name is taken), matching
// Instantiate semantics.
func (f *Framework) EnableBuilderService() error {
	if _, dup := f.instances[FrameworkInstanceName]; dup {
		return nil // already enabled
	}
	in := &instance{
		name:      FrameworkInstanceName,
		className: "<framework>",
		comp:      &frameworkComponent{f},
		provides:  make(map[string]*providesEntry),
		uses:      make(map[string]*usesEntry),
		params:    NewTypeMap(),
		fw:        f,
	}
	if err := in.comp.SetServices(in); err != nil {
		return err
	}
	f.instances[FrameworkInstanceName] = in
	f.order = append(f.order, FrameworkInstanceName)
	return nil
}
