package cca

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// TypeMap is the CCA key-value parameter store handed to components
// through Services.Parameters. The paper's Database subsystem (gas
// properties, mesh sizes) retrieves numbers by character-string name;
// TypeMap is that mechanism with typed accessors layered over string
// storage so that values written by assembly scripts (always text)
// round-trip.
type TypeMap struct {
	mu sync.RWMutex
	m  map[string]string
}

// NewTypeMap returns an empty TypeMap.
func NewTypeMap() *TypeMap {
	return &TypeMap{m: make(map[string]string)}
}

// SetString stores a raw string value.
func (t *TypeMap) SetString(key, val string) {
	t.mu.Lock()
	t.m[key] = val
	t.mu.Unlock()
}

// GetString returns the raw value, or def if absent.
func (t *TypeMap) GetString(key, def string) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if v, ok := t.m[key]; ok {
		return v
	}
	return def
}

// SetFloat stores a float64.
func (t *TypeMap) SetFloat(key string, val float64) {
	t.SetString(key, strconv.FormatFloat(val, 'g', -1, 64))
}

// GetFloat parses the value as float64, returning def if absent or
// malformed.
func (t *TypeMap) GetFloat(key string, def float64) float64 {
	t.mu.RLock()
	v, ok := t.m[key]
	t.mu.RUnlock()
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return def
	}
	return f
}

// SetInt stores an int.
func (t *TypeMap) SetInt(key string, val int) {
	t.SetString(key, strconv.Itoa(val))
}

// GetInt parses the value as int, returning def if absent or malformed.
func (t *TypeMap) GetInt(key string, def int) int {
	t.mu.RLock()
	v, ok := t.m[key]
	t.mu.RUnlock()
	if !ok {
		return def
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return i
}

// SetBool stores a bool.
func (t *TypeMap) SetBool(key string, val bool) {
	t.SetString(key, strconv.FormatBool(val))
}

// GetBool parses the value as bool, returning def if absent or malformed.
func (t *TypeMap) GetBool(key string, def bool) bool {
	t.mu.RLock()
	v, ok := t.m[key]
	t.mu.RUnlock()
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return def
	}
	return b
}

// Has reports whether key is present.
func (t *TypeMap) Has(key string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.m[key]
	return ok
}

// Keys returns all keys in sorted order.
func (t *TypeMap) Keys() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.m))
	for k := range t.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored keys.
func (t *TypeMap) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}

// String renders the map as sorted key=value pairs (debug aid).
func (t *TypeMap) String() string {
	keys := t.Keys()
	s := "{"
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%s", k, t.GetString(k, ""))
	}
	return s + "}"
}
