package cca

import (
	"testing"
)

// composer is a component that composes the rest of the application
// through the BuilderService — the application-framer pattern.
type composer struct {
	svc    Services
	result float64
}

func (c *composer) SetServices(svc Services) error {
	c.svc = svc
	if err := svc.RegisterUsesPort("builder", BuilderServiceType); err != nil {
		return err
	}
	return svc.AddProvidesPort(goFunc(c.compose), "go", GoPortType)
}

func (c *composer) compose() error {
	p, err := c.svc.GetPort("builder")
	if err != nil {
		return err
	}
	defer c.svc.ReleasePort("builder")
	b := p.(BuilderService)
	// Build the adder demo programmatically.
	if err := b.SetParameter("c", "addend", "10"); err != nil {
		return err
	}
	for _, step := range [][2]string{{"Adder", "a"}, {"Client", "c"}} {
		if err := b.Instantiate(step[0], step[1]); err != nil {
			return err
		}
	}
	if err := b.Connect("c", "calc", "a", "sum"); err != nil {
		return err
	}
	if err := b.Go("c", "go"); err != nil {
		return err
	}
	return nil
}

func TestBuilderServiceComposesApplication(t *testing.T) {
	repo := testRepo()
	repo.Register("Composer", func() Component { return &composer{} })
	f := NewFramework(repo, nil)
	if err := f.EnableBuilderService(); err != nil {
		t.Fatal(err)
	}
	mustOK(t, f.Instantiate("Composer", "framer"))
	mustOK(t, f.Connect("framer", "builder", FrameworkInstanceName, "builder"))
	mustOK(t, f.Go("framer", "go"))

	// The composed components exist and ran.
	comp, err := f.Lookup("c")
	if err != nil {
		t.Fatal(err)
	}
	if got := comp.(*client).result; got != 12 {
		t.Errorf("composed result = %v, want 12", got)
	}
}

func TestBuilderServiceIntrospection(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	mustOK(t, f.EnableBuilderService())
	b := builderView{f}
	classes := b.ComponentClasses()
	if len(classes) != 2 {
		t.Errorf("classes = %v", classes)
	}
	mustOK(t, b.Instantiate("Adder", "a"))
	mustOK(t, b.Instantiate("Client", "c"))
	mustOK(t, b.Connect("c", "calc", "a", "sum"))
	if got := b.Instances(); len(got) != 3 { // .framework + a + c
		t.Errorf("instances = %v", got)
	}
	if got := b.Connections(); len(got) != 1 {
		t.Errorf("connections = %v", got)
	}
	mustOK(t, b.Disconnect("c", "calc"))
	if got := b.Connections(); len(got) != 0 {
		t.Errorf("connections after disconnect = %v", got)
	}
}

func TestEnableBuilderServiceIdempotent(t *testing.T) {
	f := NewFramework(testRepo(), nil)
	mustOK(t, f.EnableBuilderService())
	mustOK(t, f.EnableBuilderService()) // second call is a no-op
	n := 0
	for _, name := range f.Instances() {
		if name == FrameworkInstanceName {
			n++
		}
	}
	if n != 1 {
		t.Errorf("framework instance appears %d times", n)
	}
}
