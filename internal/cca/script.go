package cca

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Script is a parsed Ccaffeine-style assembly file. The dialect covers
// the commands the paper's runs use: fetching classes from the
// repository, instantiating them, setting parameters, connecting ports,
// and firing a GoPort. A script is data; Execute applies it to a
// Framework, and the SCMD multiplexer applies the same script to all P
// framework instances, which is exactly how the GUI's "multiplexer
// reproduces the action P-fold".
type Script struct {
	Commands []Command
}

// Command is one parsed script line.
type Command struct {
	// Verb is one of "repository", "instantiate", "parameter",
	// "connect", "disconnect", "go", "quit".
	Verb string
	Args []string
	Line int
}

// ParseScript reads an assembly script. Grammar, one command per line:
//
//	# comment, blank lines ignored
//	repository get-global <ClassName>
//	instantiate <ClassName> <instanceName>
//	parameter <instanceName> <key> <value...>
//	connect <userInstance> <usesPort> <providerInstance> <providesPort>
//	disconnect <userInstance> <usesPort>
//	destroy <instanceName>
//	go <instanceName> <portName>
//	quit
func ParseScript(r io.Reader) (*Script, error) {
	sc := bufio.NewScanner(r)
	s := &Script{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "!") {
			continue
		}
		fields := strings.Fields(line)
		verb := fields[0]
		args := fields[1:]
		wantArgs := map[string][2]int{ // verb -> {min,max} arg count
			"repository":  {2, 2},
			"instantiate": {2, 2},
			"parameter":   {3, -1},
			"connect":     {4, 4},
			"disconnect":  {2, 2},
			"destroy":     {1, 1},
			"go":          {2, 2},
			"quit":        {0, 0},
		}
		spec, ok := wantArgs[verb]
		if !ok {
			return nil, fmt.Errorf("cca: script line %d: unknown command %q", lineNo, verb)
		}
		if len(args) < spec[0] || (spec[1] >= 0 && len(args) > spec[1]) {
			return nil, fmt.Errorf("cca: script line %d: %q takes %d..%d args, got %d",
				lineNo, verb, spec[0], spec[1], len(args))
		}
		if verb == "repository" && args[0] != "get-global" && args[0] != "get" {
			return nil, fmt.Errorf("cca: script line %d: repository subcommand %q not supported", lineNo, args[0])
		}
		s.Commands = append(s.Commands, Command{Verb: verb, Args: args, Line: lineNo})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cca: reading script: %w", err)
	}
	return s, nil
}

// ParseScriptString parses a script held in a string.
func ParseScriptString(text string) (*Script, error) {
	return ParseScript(strings.NewReader(text))
}

// Execute applies the script to a framework. "repository get" commands
// verify the class exists (the palette check); "quit" stops execution.
func (s *Script) Execute(f *Framework) error {
	for _, cmd := range s.Commands {
		var err error
		switch cmd.Verb {
		case "repository":
			if !f.repo.Has(cmd.Args[1]) {
				err = fmt.Errorf("%w: %q", ErrUnknownClass, cmd.Args[1])
			}
		case "instantiate":
			err = f.Instantiate(cmd.Args[0], cmd.Args[1])
		case "parameter":
			err = f.SetParameter(cmd.Args[0], cmd.Args[1], strings.Join(cmd.Args[2:], " "))
		case "connect":
			err = f.Connect(cmd.Args[0], cmd.Args[1], cmd.Args[2], cmd.Args[3])
		case "disconnect":
			err = f.Disconnect(cmd.Args[0], cmd.Args[1])
		case "destroy":
			err = f.Destroy(cmd.Args[0])
		case "go":
			err = f.Go(cmd.Args[0], cmd.Args[1])
		case "quit":
			return nil
		}
		if err != nil {
			return fmt.Errorf("cca: script line %d (%s): %w", cmd.Line, cmd.Verb, err)
		}
	}
	return nil
}

// Arena renders the framework's current assembly as text: one box per
// component with provides ports on the left and uses ports on the
// right, followed by the wire list — a terminal rendering of the GUI
// arena in the paper's Fig 1.
func Arena(f *Framework) string {
	var b strings.Builder
	for _, name := range f.Instances() {
		class, _ := f.ClassOf(name)
		fmt.Fprintf(&b, "component %s (class %s)\n", name, class)
		prov, _ := f.ProvidedPorts(name)
		for _, p := range prov {
			fmt.Fprintf(&b, "  provides %-24s : %s\n", p[0], p[1])
		}
		uses, _ := f.UsesPorts(name)
		for _, u := range uses {
			fmt.Fprintf(&b, "  uses     %-24s : %s\n", u[0], u[1])
		}
	}
	conns := f.Connections()
	if len(conns) > 0 {
		fmt.Fprintf(&b, "wires:\n")
		for _, c := range conns {
			fmt.Fprintf(&b, "  %s.%s -> %s.%s [%s]\n", c.User, c.UsesPort, c.Provider, c.ProvidesPort, c.PortType)
		}
	}
	return b.String()
}
