package cca

import (
	"testing"
	"time"

	"ccahydro/internal/obs"
)

// wrappedAdder is the instrumented proxy for test.AddPort, registered
// the way internal/components registers the real domain proxies.
type wrappedAdder struct {
	inner addPort
	hist  *obs.Histogram
}

func (w *wrappedAdder) Add(a, b float64) float64 {
	t0 := time.Now()
	defer func() { w.hist.ObserveNs(int64(time.Since(t0))) }()
	return w.inner.Add(a, b)
}

func init() {
	RegisterPortWrapper("test.AddPort", func(o *obs.Obs, instance, portName string, inner Port) Port {
		ap, ok := inner.(addPort)
		if !ok {
			return nil
		}
		return &wrappedAdder{inner: ap, hist: o.PortHistogram(instance, portName, "Add")}
	})
}

func findHist(s obs.Snapshot, name string) *obs.HistogramSnapshot {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

func obsFixture(t *testing.T) (*Framework, *client, *adder) {
	t.Helper()
	f := NewFramework(testRepo(), nil)
	mustOK(t, f.Instantiate("Adder", "a"))
	mustOK(t, f.Instantiate("Client", "c"))
	mustOK(t, f.Connect("c", "calc", "a", "sum"))
	cc, _ := f.Lookup("c")
	ca, _ := f.Lookup("a")
	return f, cc.(*client), ca.(*adder)
}

func TestGetPortRawWithoutObservability(t *testing.T) {
	_, cl, ad := obsFixture(t)
	p, err := cl.svc.GetPort("calc")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.svc.ReleasePort("calc")
	// Disabled observability must hand back the provider port itself,
	// not a proxy: the wire costs exactly one interface call.
	if _, proxied := p.(*wrappedAdder); proxied {
		t.Fatal("GetPort returned a proxy with observability off")
	}
	if p.(addPort).Add(1, 2) != 3 || ad.calls != 1 {
		t.Errorf("raw port miswired: calls=%d", ad.calls)
	}
}

func TestGetPortWrapsAndRecords(t *testing.T) {
	f, cl, ad := obsFixture(t)
	session := obs.NewGroup(1).Rank(0)
	f.SetObservability(session)

	p, err := cl.svc.GetPort("calc")
	if err != nil {
		t.Fatal(err)
	}
	if _, proxied := p.(*wrappedAdder); !proxied {
		t.Fatal("GetPort did not return the registered proxy")
	}
	const n = 5
	for i := 0; i < n; i++ {
		if got := p.(addPort).Add(float64(i), 1); got != float64(i)+1 {
			t.Fatalf("Add(%d,1) = %v through proxy", i, got)
		}
	}
	cl.svc.ReleasePort("calc")
	if ad.calls != n {
		t.Errorf("provider saw %d calls, want %d", ad.calls, n)
	}
	h := findHist(session.Metrics().Snapshot(), obs.PortCallName("c", "calc", "Add"))
	if h == nil {
		t.Fatal("no port_call histogram in snapshot")
	}
	if h.Count != n {
		t.Errorf("histogram count = %d, want %d", h.Count, n)
	}
}

func TestProxyCachedPerWire(t *testing.T) {
	f, cl, _ := obsFixture(t)
	f.SetObservability(obs.NewGroup(1).Rank(0))
	p1, err := cl.svc.GetPort("calc")
	mustOK(t, err)
	cl.svc.ReleasePort("calc")
	p2, err := cl.svc.GetPort("calc")
	mustOK(t, err)
	cl.svc.ReleasePort("calc")
	// Repeated fetches of the same wire must not allocate fresh proxies.
	if p1 != p2 {
		t.Error("proxy not cached across GetPort calls")
	}
}

func TestProxyInvalidatedOnReconnect(t *testing.T) {
	f, cl, _ := obsFixture(t)
	f.SetObservability(obs.NewGroup(1).Rank(0))
	p1, err := cl.svc.GetPort("calc")
	mustOK(t, err)
	cl.svc.ReleasePort("calc")

	mustOK(t, f.Instantiate("Adder", "b"))
	mustOK(t, f.Disconnect("c", "calc"))
	mustOK(t, f.Connect("c", "calc", "b", "sum"))
	p2, err := cl.svc.GetPort("calc")
	mustOK(t, err)
	cl.svc.ReleasePort("calc")
	if p1 == p2 {
		t.Error("proxy survived a rewire; it still targets the old provider")
	}
	cb, _ := f.Lookup("b")
	p2.(addPort).Add(1, 1)
	if cb.(*adder).calls != 1 {
		t.Error("rewired proxy does not reach the new provider")
	}
}

func TestProxyInvalidatedOnSessionChange(t *testing.T) {
	f, cl, _ := obsFixture(t)
	f.SetObservability(obs.NewGroup(1).Rank(0))
	p1, err := cl.svc.GetPort("calc")
	mustOK(t, err)
	cl.svc.ReleasePort("calc")

	// Detach: the raw port comes back.
	f.SetObservability(nil)
	p2, err := cl.svc.GetPort("calc")
	mustOK(t, err)
	cl.svc.ReleasePort("calc")
	if _, proxied := p2.(*wrappedAdder); proxied {
		t.Error("detached session still yields proxies")
	}

	// Re-attach a fresh session: a new proxy bound to its registry.
	g2 := obs.NewGroup(1)
	f.SetObservability(g2.Rank(0))
	p3, err := cl.svc.GetPort("calc")
	mustOK(t, err)
	cl.svc.ReleasePort("calc")
	if p3 == p1 {
		t.Error("proxy from a previous session was reused")
	}
	p3.(addPort).Add(2, 2)
	if h := findHist(g2.MergedSnapshot(), obs.PortCallName("c", "calc", "Add")); h == nil || h.Count != 1 {
		t.Error("new session's registry did not record the call")
	}
}

func TestUnregisteredPortTypePassesThrough(t *testing.T) {
	repo := testRepo()
	repo.Register("Exotic", func() Component {
		return componentFunc(func(svc Services) error {
			return svc.AddProvidesPort(goFunc(func() error { return nil }), "p", "test.ExoticPort")
		})
	})
	repo.Register("ExoticUser", func() Component {
		return componentFunc(func(svc Services) error {
			return svc.RegisterUsesPort("u", "test.ExoticPort")
		})
	})
	f := NewFramework(repo, nil)
	f.SetObservability(obs.NewGroup(1).Rank(0))
	mustOK(t, f.Instantiate("Exotic", "e"))
	mustOK(t, f.Instantiate("ExoticUser", "eu"))
	mustOK(t, f.Connect("eu", "u", "e", "p"))
	in := f.instances["eu"]
	p, err := in.GetPort("u")
	mustOK(t, err)
	in.ReleasePort("u")
	if _, ok := p.(goFunc); !ok {
		t.Error("unregistered port type was not passed through unwrapped")
	}
}

func TestServicesObservabilityAccessor(t *testing.T) {
	f, cl, _ := obsFixture(t)
	if cl.svc.Observability() != nil {
		t.Error("Observability non-nil before attach")
	}
	session := obs.NewGroup(1).Rank(0)
	f.SetObservability(session)
	if cl.svc.Observability() != session {
		t.Error("Observability does not surface the attached session")
	}
}
