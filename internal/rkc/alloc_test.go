package rkc

import "testing"

// heat1D is a small diffusion RHS for steady-state allocation tests.
func heat1D(n int) (RHS, SpectralRadius) {
	f := func(t float64, y, ydot []float64) {
		for i := range y {
			l, r := 0.0, 0.0
			if i > 0 {
				l = y[i-1]
			}
			if i < len(y)-1 {
				r = y[i+1]
			}
			ydot[i] = (l - 2*y[i] + r) * float64(n*n)
		}
	}
	rho := func(t float64, y []float64) float64 { return 4 * float64(n*n) }
	return f, rho
}

// TestIntegrateSteadyStateAllocs pins the scratch-lifting work: after
// the first Integrate grows the Chebyshev recurrence buffers, repeated
// Init+Integrate cycles on the same solver must not allocate.
func TestIntegrateSteadyStateAllocs(t *testing.T) {
	const n = 64
	f, rho := heat1D(n)
	s := New(n, f, rho, Options{})
	y0 := make([]float64, n)
	for i := range y0 {
		y0[i] = float64(i%7) / 7.0
	}

	run := func() {
		s.Init(0, y0)
		if err := s.Integrate(1e-4); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm up: grows tj/dj/d2j/bj to the peak stage count

	if avg := testing.AllocsPerRun(20, run); avg > 0 {
		t.Errorf("Integrate allocates %.1f times per call at steady state, want 0", avg)
	}
}

// TestPowerRhoSteadyStateAllocs covers the power-iteration path (no
// user spectral radius) with the same zero-alloc requirement.
func TestPowerRhoSteadyStateAllocs(t *testing.T) {
	const n = 32
	f, _ := heat1D(n)
	s := New(n, f, nil, Options{})
	y0 := make([]float64, n)
	for i := range y0 {
		y0[i] = 1.0 / float64(i+1)
	}

	run := func() {
		s.Init(0, y0)
		if err := s.Integrate(1e-4); err != nil {
			t.Fatal(err)
		}
	}
	run()

	if avg := testing.AllocsPerRun(20, run); avg > 0 {
		t.Errorf("Integrate (power iteration) allocates %.1f times per call, want 0", avg)
	}
}
