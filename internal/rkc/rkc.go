// Package rkc implements the second-order Runge–Kutta–Chebyshev method
// of Sommeijer, Shampine and Verwer ("RKC: an explicit solver for
// parabolic PDEs", J. Comp. Appl. Math. 88, 1998) — the paper's
// ExplicitIntegrator component for the diffusion half of the
// operator-split reaction–diffusion system. RKC trades stage count for
// an extended real stability interval ~0.653 s^2, which makes it an
// explicit method that behaves like an implicit one for mildly stiff
// diffusion operators.
package rkc

import (
	"errors"
	"fmt"
	"math"
)

// RHS evaluates ydot = f(t, y).
type RHS func(t float64, y, ydot []float64)

// SpectralRadius estimates the spectral radius of df/dy at (t, y); the
// integrator uses it to pick the stage count. The paper's
// MaxDiffCoeffEvaluator component provides exactly this bound for the
// diffusion operator.
type SpectralRadius func(t float64, y []float64) float64

// Options configures the integrator.
type Options struct {
	// RelTol and AbsTol control the local error test (defaults 1e-4,
	// 1e-8 — parabolic PDE accuracy, per the RKC paper).
	RelTol, AbsTol float64
	// MaxStages caps the Chebyshev stage count (default 512).
	MaxStages int
	// InitialStep, MaxStep bound the step size.
	InitialStep, MaxStep float64
	// MaxSteps bounds steps per Integrate call (default 100000).
	MaxSteps int
	// CombineNorm, when non-nil, merges the local weighted
	// sum-of-squares and component count across an SPMD cohort (e.g.
	// by Allreduce) before the error test, so every rank takes
	// identical step-control decisions. nil means serial.
	CombineNorm func(sumSq, n float64) (float64, float64)
}

// Stats counts work performed.
type Stats struct {
	Steps        int
	RHSEvals     int
	StageTotal   int
	ErrTestFails int
	LastStep     float64
	LastStages   int
}

// Errors.
var (
	ErrTooMuchWork  = errors.New("rkc: maximum step count exceeded")
	ErrStepTooSmall = errors.New("rkc: step size underflow")
)

// Solver integrates one system. Not safe for concurrent use.
type Solver struct {
	n   int
	f   RHS
	rho SpectralRadius
	opt Options

	t float64
	y []float64
	h float64

	f0, yjm1, yjm2, yj, est []float64

	// Persistent scratch so repeated Step calls are allocation-free:
	// fj is the stage RHS, pv/pfv/pyp back the power iteration, and
	// tj/dj/d2j/bj hold the Chebyshev recurrences (grown to the largest
	// stage count seen).
	fj, pv, pfv, pyp []float64
	tj, dj, d2j, bj  []float64

	stats Stats
}

func normalize(opt Options) Options {
	if opt.RelTol <= 0 {
		opt.RelTol = 1e-4
	}
	if opt.AbsTol <= 0 {
		opt.AbsTol = 1e-8
	}
	if opt.MaxStages <= 0 {
		opt.MaxStages = 512
	}
	if opt.MaxSteps <= 0 {
		opt.MaxSteps = 100000
	}
	return opt
}

// New creates an RKC solver. rho may be nil, in which case a power
// iteration estimates the spectral radius from finite differences.
func New(n int, f RHS, rho SpectralRadius, opt Options) *Solver {
	s := &Solver{
		n: n, f: f, rho: rho, opt: normalize(opt),
		f0:   make([]float64, n),
		yjm1: make([]float64, n),
		yjm2: make([]float64, n),
		yj:   make([]float64, n),
		est:  make([]float64, n),
		fj:   make([]float64, n),
	}
	return s
}

// SetProblem swaps the RHS and spectral-radius callbacks, keeping the
// solver's scratch. It lets a component reuse one Solver (and its
// allocations) across level advances whose closures change each call.
func (s *Solver) SetProblem(f RHS, rho SpectralRadius) {
	s.f = f
	s.rho = rho
}

// Reconfigure replaces the options (applying the same defaults as New).
func (s *Solver) Reconfigure(opt Options) {
	s.opt = normalize(opt)
}

// N returns the system dimension the solver was built for.
func (s *Solver) N() int { return s.n }

// Init sets the initial condition.
func (s *Solver) Init(t0 float64, y0 []float64) {
	if len(y0) != s.n {
		panic(fmt.Sprintf("rkc: Init dimension %d != %d", len(y0), s.n))
	}
	s.t = t0
	s.y = append(s.y[:0], y0...)
	s.h = 0
	s.stats = Stats{}
}

// T returns the current time; Y the live state slice.
func (s *Solver) T() float64   { return s.t }
func (s *Solver) Y() []float64 { return s.y }

// Stats returns work counters.
func (s *Solver) Stats() Stats { return s.stats }

// powerRho estimates the spectral radius by a few rounds of nonlinear
// power iteration on directional finite differences.
func (s *Solver) powerRho(t float64, y, fy []float64) float64 {
	if s.n == 0 {
		return 1e-8
	}
	if s.pv == nil {
		s.pv = make([]float64, s.n)
		s.pfv = make([]float64, s.n)
		s.pyp = make([]float64, s.n)
	}
	v, fv := s.pv, s.pfv
	var ynorm float64
	for i, yi := range y {
		ynorm += yi * yi
		v[i] = yi * (1 + 0.01*float64(i%7)) // deterministic perturbation
	}
	ynorm = math.Sqrt(ynorm)
	dy := 1e-7 * (ynorm + 1)
	var vnorm float64
	for _, vi := range v {
		vnorm += vi * vi
	}
	vnorm = math.Sqrt(vnorm)
	if vnorm == 0 {
		for i := range v {
			v[i] = 1
		}
		vnorm = math.Sqrt(float64(s.n))
	}
	rho := 0.0
	yp := s.pyp
	for iter := 0; iter < 10; iter++ {
		// u = v/|v| is the current direction; v <- J u by differences.
		for i := range yp {
			yp[i] = y[i] + dy*v[i]/vnorm
		}
		s.f(t, yp, fv)
		s.stats.RHSEvals++
		var norm float64
		for i := range v {
			v[i] = (fv[i] - fy[i]) / dy
			norm += v[i] * v[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 1e-8
		}
		prev := rho
		rho = norm // |J u| -> dominant eigenvalue magnitude
		vnorm = norm
		if iter > 2 && math.Abs(rho-prev) < 0.05*rho {
			break
		}
	}
	return 1.2 * rho // safety margin
}

// stages picks the Chebyshev stage count for step h and spectral
// radius rho: h*rho <= 0.653 s^2 (damped stability boundary).
func stages(h, rho float64, maxStages int) int {
	s := 1 + int(math.Sqrt(h*rho/0.653)) + 0
	if s < 2 {
		s = 2
	}
	if s > maxStages {
		s = maxStages
	}
	return s
}

// Step advances one internal step with error control.
func (s *Solver) Step() error {
	s.f(s.t, s.y, s.f0)
	s.stats.RHSEvals++
	var rho float64
	if s.rho != nil {
		rho = s.rho(s.t, s.y)
	} else {
		rho = s.powerRho(s.t, s.y, s.f0)
	}
	if rho <= 0 {
		rho = 1e-8
	}
	if s.h == 0 {
		if s.opt.InitialStep > 0 {
			s.h = s.opt.InitialStep
		} else {
			s.h = 0.25 / rho * float64(s.opt.MaxStages)
			if s.h > 0.1 {
				s.h = 0.1
			}
		}
	}
	minStep := 10 * 2.22e-16 * math.Max(math.Abs(s.t), 1)
	for try := 0; try < 25; try++ {
		h := s.h
		if s.opt.MaxStep > 0 && h > s.opt.MaxStep {
			h = s.opt.MaxStep
		}
		// Cap h so the stage count stays within MaxStages.
		maxH := 0.653 * float64(s.opt.MaxStages) * float64(s.opt.MaxStages) / rho
		if h > maxH {
			h = maxH
		}
		if h < minStep {
			return ErrStepTooSmall
		}
		nStage := stages(h, rho, s.opt.MaxStages)
		errNorm := s.chebStep(h, nStage)
		if errNorm > 1 {
			s.stats.ErrTestFails++
			fac := 0.8 * math.Pow(errNorm, -1.0/3.0)
			s.h = h * math.Max(0.1, math.Min(0.8, fac))
			continue
		}
		// Accept: yj holds the new solution.
		copy(s.y, s.yj)
		s.t += h
		s.stats.Steps++
		s.stats.LastStep = h
		s.stats.LastStages = nStage
		s.stats.StageTotal += nStage
		fac := 0.8 * math.Pow(math.Max(errNorm, 1e-10), -1.0/3.0)
		s.h = h * math.Max(0.2, math.Min(5, fac))
		return nil
	}
	return ErrStepTooSmall
}

// chebStep performs one damped Chebyshev step of nStage stages and
// returns the weighted local error norm. The new solution is left in
// s.yj; s.y and s.f0 must hold the current state and its RHS.
func (s *Solver) chebStep(h float64, nStage int) float64 {
	const eps = 2.0 / 13.0
	ns := float64(nStage)
	w0 := 1 + eps/(ns*ns)

	// Chebyshev values at w0 via the stable recurrences.
	// T_j(w0), T_j'(w0), T_j''(w0). Coefficient scratch persists on the
	// solver, grown to the largest stage count seen.
	if cap(s.tj) < nStage+1 {
		s.tj = make([]float64, nStage+1)
		s.dj = make([]float64, nStage+1)
		s.d2j = make([]float64, nStage+1)
		s.bj = make([]float64, nStage+1)
	}
	tj := s.tj[:nStage+1]
	dj := s.dj[:nStage+1]
	d2j := s.d2j[:nStage+1]
	tj[0], dj[0], d2j[0] = 1, 0, 0
	tj[1], dj[1], d2j[1] = w0, 1, 0
	for j := 2; j <= nStage; j++ {
		tj[j] = 2*w0*tj[j-1] - tj[j-2]
		dj[j] = 2*w0*dj[j-1] + 2*tj[j-1] - dj[j-2]
		d2j[j] = 2*w0*d2j[j-1] + 4*dj[j-1] - d2j[j-2]
	}
	w1 := dj[nStage] / d2j[nStage]

	b := s.bj[:nStage+1]
	for j := 2; j <= nStage; j++ {
		b[j] = d2j[j] / (dj[j] * dj[j])
	}
	b[0], b[1] = b[2], b[2]

	// Stage 0 and 1.
	copy(s.yjm2, s.y)
	mu1t := b[1] * w1
	for i := 0; i < s.n; i++ {
		s.yjm1[i] = s.y[i] + mu1t*h*s.f0[i]
	}

	fj := s.fj
	for j := 2; j <= nStage; j++ {
		mu := 2 * b[j] * w0 / b[j-1]
		nu := -b[j] / b[j-2]
		mut := 2 * b[j] * w1 / b[j-1]
		ajm1 := 1 - b[j-1]*tj[j-1]
		gt := -ajm1 * mut

		s.f(s.t, s.yjm1, fj) // frozen-t evaluation (autonomous diffusion)
		s.stats.RHSEvals++
		for i := 0; i < s.n; i++ {
			s.yj[i] = (1-mu-nu)*s.y[i] + mu*s.yjm1[i] + nu*s.yjm2[i] +
				mut*h*fj[i] + gt*h*s.f0[i]
		}
		s.yjm2, s.yjm1, s.yj = s.yjm1, s.yj, s.yjm2
	}
	// After the loop the newest stage lives in yjm1; move it to yj.
	s.yj, s.yjm1 = s.yjm1, s.yj

	// Error estimate: est = 0.8 (y_n - y_{n+1}) + 0.4 h (f_n + f_{n+1}).
	s.f(s.t+h, s.yj, fj)
	s.stats.RHSEvals++
	var sum float64
	for i := 0; i < s.n; i++ {
		e := 0.8*(s.y[i]-s.yj[i]) + 0.4*h*(s.f0[i]+fj[i])
		w := 1 / (s.opt.RelTol*math.Max(math.Abs(s.y[i]), math.Abs(s.yj[i])) + s.opt.AbsTol)
		ew := e * w
		sum += ew * ew
	}
	count := float64(s.n)
	if s.opt.CombineNorm != nil {
		sum, count = s.opt.CombineNorm(sum, count)
	}
	if count == 0 {
		return 0
	}
	return math.Sqrt(sum / count)
}

// Integrate advances to tEnd.
func (s *Solver) Integrate(tEnd float64) error {
	if tEnd < s.t {
		return fmt.Errorf("rkc: tEnd %v < t %v", tEnd, s.t)
	}
	steps := 0
	for s.t < tEnd {
		if steps >= s.opt.MaxSteps {
			return ErrTooMuchWork
		}
		if s.h > tEnd-s.t {
			s.h = tEnd - s.t
		}
		if err := s.Step(); err != nil {
			return err
		}
		steps++
	}
	return nil
}
