package rkc

import (
	"math"
	"testing"
)

func almost(a, b, rel float64) bool {
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))+1e-300
}

func TestScalarDecay(t *testing.T) {
	s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -3 * y[0] },
		func(_ float64, _ []float64) float64 { return 3 },
		Options{RelTol: 1e-6, AbsTol: 1e-10})
	s.Init(0, []float64{2})
	if err := s.Integrate(1); err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Exp(-3)
	if !almost(s.Y()[0], want, 1e-4) {
		t.Errorf("y(1) = %v, want %v", s.Y()[0], want)
	}
}

// heatRHS builds the standard 1D Laplacian ODE system on n interior
// points with homogeneous Dirichlet BCs, spacing dx.
func heatRHS(n int, d, dx float64) (RHS, SpectralRadius) {
	inv := d / (dx * dx)
	f := func(_ float64, y, ydot []float64) {
		for i := 0; i < n; i++ {
			var left, right float64
			if i > 0 {
				left = y[i-1]
			}
			if i < n-1 {
				right = y[i+1]
			}
			ydot[i] = inv * (left - 2*y[i] + right)
		}
	}
	rho := func(_ float64, _ []float64) float64 { return 4 * inv }
	return f, rho
}

func TestHeatEquationSineModeDecay(t *testing.T) {
	// u_t = D u_xx on (0,1), u(0)=u(1)=0, u0 = sin(pi x): the first
	// Fourier mode decays like exp(-D pi^2 t) (up to the discrete
	// eigenvalue, which we use exactly).
	n := 63
	dx := 1.0 / float64(n+1)
	d := 0.1
	f, rho := heatRHS(n, d, dx)
	s := New(n, f, rho, Options{RelTol: 1e-7, AbsTol: 1e-10})
	y0 := make([]float64, n)
	for i := range y0 {
		y0[i] = math.Sin(math.Pi * float64(i+1) * dx)
	}
	s.Init(0, y0)
	tEnd := 0.5
	if err := s.Integrate(tEnd); err != nil {
		t.Fatal(err)
	}
	// Discrete eigenvalue of the first mode.
	lam := 4 * d / (dx * dx) * math.Pow(math.Sin(math.Pi*dx/2), 2)
	decay := math.Exp(-lam * tEnd)
	for i := 0; i < n; i += 13 {
		want := y0[i] * decay
		if !almost(s.Y()[i], want, 2e-3) {
			t.Errorf("y[%d] = %v, want %v", i, s.Y()[i], want)
		}
	}
}

func TestStageCountScalesWithStiffness(t *testing.T) {
	// Larger spectral radius must not shrink steps to explicit-Euler
	// scale; RKC adds stages instead.
	n := 127
	dx := 1.0 / float64(n+1)
	f, rho := heatRHS(n, 1.0, dx)
	s := New(n, f, rho, Options{RelTol: 1e-5, AbsTol: 1e-8})
	y0 := make([]float64, n)
	for i := range y0 {
		y0[i] = math.Sin(math.Pi * float64(i+1) * dx)
	}
	s.Init(0, y0)
	if err := s.Integrate(0.01); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	// Explicit Euler would need h <= dx^2/2 ≈ 3e-5, i.e. >300 steps.
	if st.Steps > 150 {
		t.Errorf("steps = %d; RKC should take far fewer than Euler's ~330", st.Steps)
	}
	if st.LastStages < 3 {
		t.Errorf("stages = %d; stiff problem should use many stages", st.LastStages)
	}
}

func TestSecondOrderConvergence(t *testing.T) {
	// Fixed-step error should drop ~4x when the step is halved.
	run := func(h float64) float64 {
		s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -y[0] * y[0] },
			func(_ float64, y []float64) float64 { return 2 * math.Abs(y[0]) },
			Options{RelTol: 1e30, AbsTol: 1e30, InitialStep: h, MaxStep: h})
		s.Init(0, []float64{1})
		for s.T() < 1-1e-12 {
			if err := s.Step(); err != nil {
				t.Fatal(err)
			}
		}
		want := 1.0 / (1 + s.T())
		return math.Abs(s.Y()[0] - want)
	}
	e1 := run(0.05)
	e2 := run(0.025)
	ratio := e1 / e2
	if ratio < 3.0 || ratio > 5.5 {
		t.Errorf("convergence ratio = %v, want ~4 (order 2)", ratio)
	}
}

func TestPowerIterationFallback(t *testing.T) {
	// No spectral radius supplied: the power iteration must still
	// stabilize a moderately stiff linear problem.
	n := 31
	dx := 1.0 / float64(n+1)
	f, _ := heatRHS(n, 0.5, dx)
	s := New(n, f, nil, Options{RelTol: 1e-5, AbsTol: 1e-9})
	y0 := make([]float64, n)
	for i := range y0 {
		y0[i] = math.Sin(math.Pi * float64(i+1) * dx)
	}
	s.Init(0, y0)
	if err := s.Integrate(0.05); err != nil {
		t.Fatal(err)
	}
	lam := 4 * 0.5 / (dx * dx) * math.Pow(math.Sin(math.Pi*dx/2), 2)
	decay := math.Exp(-lam * 0.05)
	mid := n / 2
	if !almost(s.Y()[mid], y0[mid]*decay, 5e-3) {
		t.Errorf("y[mid] = %v, want %v", s.Y()[mid], y0[mid]*decay)
	}
}

func TestToleranceControlsErrorRKC(t *testing.T) {
	run := func(rtol float64) float64 {
		s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -2 * y[0] },
			func(_ float64, _ []float64) float64 { return 2 },
			Options{RelTol: rtol, AbsTol: rtol * 1e-4})
		s.Init(0, []float64{1})
		if err := s.Integrate(1); err != nil {
			t.Fatal(err)
		}
		return math.Abs(s.Y()[0] - math.Exp(-2))
	}
	if eT, eL := run(1e-8), run(1e-3); eT >= eL {
		t.Errorf("tight %v >= loose %v", eT, eL)
	}
}

func TestIntegrateBackwardRejected(t *testing.T) {
	s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = 1 }, nil, Options{})
	s.Init(5, []float64{0})
	if err := s.Integrate(1); err == nil {
		t.Error("expected error")
	}
}

func TestMaxStepsEnforced(t *testing.T) {
	s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -y[0] },
		func(_ float64, _ []float64) float64 { return 1 },
		Options{MaxSteps: 2, MaxStep: 1e-6})
	s.Init(0, []float64{1})
	if err := s.Integrate(1); err != ErrTooMuchWork {
		t.Errorf("err = %v", err)
	}
}

func TestStagesFormula(t *testing.T) {
	// h*rho = 0.653 s^2 boundary.
	if s := stages(1, 0.653*16, 512); s < 5 || s > 6 {
		t.Errorf("stages = %d, want ~5", s)
	}
	if s := stages(1e-9, 1, 512); s != 2 {
		t.Errorf("min stages = %d, want 2", s)
	}
	if s := stages(1, 1e12, 64); s != 64 {
		t.Errorf("capped stages = %d, want 64", s)
	}
}

func TestStatsPopulatedRKC(t *testing.T) {
	s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -y[0] },
		func(_ float64, _ []float64) float64 { return 1 },
		Options{})
	s.Init(0, []float64{1})
	if err := s.Integrate(1); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Steps == 0 || st.RHSEvals == 0 || st.StageTotal == 0 || st.LastStep <= 0 {
		t.Errorf("stats = %+v", st)
	}
}
