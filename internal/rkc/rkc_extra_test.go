package rkc

import (
	"math"
	"testing"
)

// TestCombineNormHook verifies that the SPMD norm hook is consulted and
// controls acceptance: a hook that reports a huge combined norm must
// force error-test failures (visible in the stats), while the identity
// hook reproduces the serial result exactly.
func TestCombineNormHook(t *testing.T) {
	mk := func(hook func(s, n float64) (float64, float64)) *Solver {
		s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -y[0] },
			func(_ float64, _ []float64) float64 { return 1 },
			Options{RelTol: 1e-6, AbsTol: 1e-9, CombineNorm: hook})
		s.Init(0, []float64{1})
		return s
	}
	// Identity hook: same answer as no hook.
	plain := mk(nil)
	if err := plain.Integrate(1); err != nil {
		t.Fatal(err)
	}
	ident := mk(func(s, n float64) (float64, float64) { return s, n })
	if err := ident.Integrate(1); err != nil {
		t.Fatal(err)
	}
	if plain.Y()[0] != ident.Y()[0] {
		t.Errorf("identity hook changed the result: %v vs %v", plain.Y()[0], ident.Y()[0])
	}
	// Inflating hook: many more steps (the controller sees big errors).
	inflate := mk(func(s, n float64) (float64, float64) { return s * 1e4, n })
	if err := inflate.Integrate(1); err != nil {
		t.Fatal(err)
	}
	if inflate.Stats().Steps <= plain.Stats().Steps {
		t.Errorf("inflated norm did not shrink steps: %d vs %d",
			inflate.Stats().Steps, plain.Stats().Steps)
	}
}

// TestZeroDimensionalRank models an SCMD rank that owns no cells: the
// solver must still run (driven by the combined norm) without dividing
// by zero.
func TestZeroDimensionalRank(t *testing.T) {
	calls := 0
	s := New(0, func(_ float64, _, _ []float64) { calls++ },
		func(_ float64, _ []float64) float64 { return 1 },
		Options{RelTol: 1e-6, AbsTol: 1e-9,
			CombineNorm: func(sum, n float64) (float64, float64) {
				// Pretend the cohort contributed some well-behaved error.
				return sum + 1e-14, n + 10
			}})
	s.Init(0, nil)
	if err := s.Integrate(0.1); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("empty rank never evaluated (cohort lockstep broken)")
	}
}

func TestMaxStepRespected(t *testing.T) {
	s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -y[0] },
		func(_ float64, _ []float64) float64 { return 1 },
		Options{RelTol: 1e-3, AbsTol: 1e-6, MaxStep: 1e-2})
	s.Init(0, []float64{1})
	for i := 0; i < 20; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if s.Stats().LastStep > 1e-2+1e-15 {
			t.Fatalf("step %v exceeded MaxStep", s.Stats().LastStep)
		}
	}
}

// Property-flavored: RKC preserves the discrete maximum principle on
// the heat equation (no new extrema) for smooth initial data.
func TestMaximumPrinciple(t *testing.T) {
	n := 63
	dx := 1.0 / float64(n+1)
	f, rho := heatRHS(n, 0.3, dx)
	s := New(n, f, rho, Options{RelTol: 1e-6, AbsTol: 1e-9})
	y0 := make([]float64, n)
	for i := range y0 {
		y0[i] = math.Sin(math.Pi*float64(i+1)*dx) + 0.3*math.Sin(3*math.Pi*float64(i+1)*dx)
	}
	var y0max float64
	for _, v := range y0 {
		if v > y0max {
			y0max = v
		}
	}
	s.Init(0, y0)
	for k := 0; k < 10; k++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		for i, v := range s.Y() {
			if v > y0max+1e-8 || v < -1e-8 {
				t.Fatalf("step %d: y[%d] = %v violates max principle (max %v)", k, i, v, y0max)
			}
		}
	}
}
