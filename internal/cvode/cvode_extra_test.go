package cvode

import (
	"math"
	"testing"
)

func TestAbsTolVecPerComponent(t *testing.T) {
	// Two decoupled decays with wildly different magnitudes: per-
	// component absolute tolerances must let both resolve.
	s := New(2, func(_ float64, y, ydot []float64) {
		ydot[0] = -y[0]      // O(1) component
		ydot[1] = -10 * y[1] // O(1e-8) component
	}, Options{RelTol: 1e-8, AbsTolVec: []float64{1e-10, 1e-18}})
	s.Init(0, []float64{1, 1e-8})
	if err := s.Integrate(1); err != nil {
		t.Fatal(err)
	}
	if !almost(s.Y()[0], math.Exp(-1), 1e-6) {
		t.Errorf("y0 = %v", s.Y()[0])
	}
	if !almost(s.Y()[1], 1e-8*math.Exp(-10), 1e-4) {
		t.Errorf("y1 = %v, want %v", s.Y()[1], 1e-8*math.Exp(-10))
	}
}

func TestNonAutonomousForcing(t *testing.T) {
	// y' = cos(t) - y: analytic y = (cos t + sin t - e^{-t})/2 + y0 e^{-t}.
	s := New(1, func(tt float64, y, ydot []float64) {
		ydot[0] = math.Cos(tt) - y[0]
	}, Options{RelTol: 1e-9, AbsTol: 1e-12})
	s.Init(0, []float64{0})
	if err := s.Integrate(2); err != nil {
		t.Fatal(err)
	}
	want := (math.Cos(2) + math.Sin(2) - math.Exp(-2)) / 2
	if !almost(s.Y()[0], want, 1e-6) {
		t.Errorf("y(2) = %v, want %v", s.Y()[0], want)
	}
}

func TestStiffnessRatio1e6(t *testing.T) {
	// lambda = -1e6 transient plus slow mode: the implicit method must
	// coarsen far past the fast scale.
	s := New(2, func(_ float64, y, ydot []float64) {
		ydot[0] = -1e6 * (y[0] - math.Sin(y[1]))
		ydot[1] = -y[1]
	}, Options{RelTol: 1e-7, AbsTol: 1e-11})
	s.Init(0, []float64{1, 1})
	if err := s.Integrate(1); err != nil {
		t.Fatal(err)
	}
	// After the transient, y0 tracks sin(y1) (slow manifold).
	if !almost(s.Y()[0], math.Sin(s.Y()[1]), 1e-5) {
		t.Errorf("off manifold: y0=%v sin(y1)=%v", s.Y()[0], math.Sin(s.Y()[1]))
	}
	if s.Stats().Steps > 2000 {
		t.Errorf("steps = %d — not coarsening past the 1e-6 scale", s.Stats().Steps)
	}
}

func TestFixedPointModeOnMildProblem(t *testing.T) {
	nonstiff := false
	s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -0.5 * y[0] },
		Options{RelTol: 1e-8, AbsTol: 1e-12, Stiff: &nonstiff})
	s.Init(0, []float64{4})
	if err := s.Integrate(2); err != nil {
		t.Fatal(err)
	}
	if !almost(s.Y()[0], 4*math.Exp(-1), 1e-6) {
		t.Errorf("y = %v", s.Y()[0])
	}
	if s.Stats().JacEvals != 0 {
		t.Errorf("fixed-point mode built %d Jacobians", s.Stats().JacEvals)
	}
}

func TestInitialStepOption(t *testing.T) {
	s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -y[0] },
		Options{RelTol: 1e-6, AbsTol: 1e-10, InitialStep: 1e-3})
	s.Init(0, []float64{1})
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	// First accepted step is the requested one (or a shrink of it).
	if s.Stats().LastStep > 1e-3+1e-15 {
		t.Errorf("first step = %v, exceeds InitialStep", s.Stats().LastStep)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() ([]float64, Stats) {
		s := New(2, func(_ float64, y, ydot []float64) {
			ydot[0] = -40*y[0] + 10*y[1]
			ydot[1] = y[0] - y[1]*y[1]
		}, Options{RelTol: 1e-8, AbsTol: 1e-12})
		s.Init(0, []float64{1, 2})
		if err := s.Integrate(0.5); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), s.Y()...), s.Stats()
	}
	y1, st1 := run()
	y2, st2 := run()
	if y1[0] != y2[0] || y1[1] != y2[1] {
		t.Errorf("non-deterministic results: %v vs %v", y1, y2)
	}
	if st1.Steps != st2.Steps || st1.RHSEvals != st2.RHSEvals {
		t.Errorf("non-deterministic work: %+v vs %+v", st1, st2)
	}
}

// Regression anchor: the full 0D ignition trajectory. If the solver's
// controls change, this locks the physics (final T, monotone runaway).
func TestIgnitionRegressionAnchor(t *testing.T) {
	// Simple 2-species exothermic model A -> B with Arrhenius rate:
	// dA/dt = -A*exp(10-10/T), dT/dt = 50*A*exp(10-10/T), T0=1, A0=1.
	f := func(_ float64, y, ydot []float64) {
		r := y[0] * math.Exp(10-10/math.Max(y[1], 0.1))
		ydot[0] = -r
		ydot[1] = 50 * r
	}
	s := New(2, f, Options{RelTol: 1e-8, AbsTol: 1e-12})
	s.Init(0, []float64{1, 1})
	if err := s.Integrate(10); err != nil {
		t.Fatal(err)
	}
	// All fuel consumed; T = 1 + 50 (energy conservation of the model).
	if !almost(s.Y()[1], 51, 1e-6) {
		t.Errorf("final T = %v, want 51", s.Y()[1])
	}
	if s.Y()[0] > 1e-6 {
		t.Errorf("fuel left: %v", s.Y()[0])
	}
}

func TestAnalyticJacobianRobertson(t *testing.T) {
	// Robertson with the exact Jacobian supplied: same answer as the FD
	// path, fewer RHS evaluations, and the stats must attribute every
	// build to the analytic source.
	f := func(_ float64, y, ydot []float64) {
		ydot[0] = -0.04*y[0] + 1e4*y[1]*y[2]
		ydot[2] = 3e7 * y[1] * y[1]
		ydot[1] = -ydot[0] - ydot[2]
	}
	jac := func(_ float64, y, jac []float64) {
		jac[0], jac[1], jac[2] = -0.04, 1e4*y[2], 1e4*y[1]
		jac[6], jac[7], jac[8] = 0, 6e7*y[1], 0
		jac[3], jac[4], jac[5] = -jac[0]-jac[6], -jac[1]-jac[7], -jac[2]-jac[8]
	}
	run := func(j Jac) (*Solver, Stats) {
		s := New(3, f, Options{RelTol: 1e-8, AbsTol: 1e-12, Jac: j})
		s.Init(0, []float64{1, 0, 0})
		if err := s.Integrate(40); err != nil {
			t.Fatal(err)
		}
		return s, s.Stats()
	}
	sa, sta := run(jac)
	sf, stf := run(nil)
	for i := 0; i < 3; i++ {
		if !almost(sa.Y()[i], sf.Y()[i], 1e-4) {
			t.Errorf("y[%d]: analytic %v vs fd %v", i, sa.Y()[i], sf.Y()[i])
		}
	}
	if sta.JacBuildsAnalytic == 0 || sta.JacBuildsFD != 0 {
		t.Errorf("analytic run: builds analytic=%d fd=%d", sta.JacBuildsAnalytic, sta.JacBuildsFD)
	}
	if stf.JacBuildsFD == 0 || stf.JacBuildsAnalytic != 0 {
		t.Errorf("fd run: builds analytic=%d fd=%d", stf.JacBuildsAnalytic, stf.JacBuildsFD)
	}
	if sta.JacEvals != sta.JacBuildsAnalytic || stf.JacEvals != stf.JacBuildsFD {
		t.Errorf("JacEvals should equal the per-source build count")
	}
}
