// Package cvode implements a variable-order, variable-step backward
// differentiation formula (BDF) integrator for stiff ODE systems, with
// modified-Newton iteration over a dense finite-difference Jacobian —
// the same method family and controls as the CVODE library the paper's
// CvodeComponent wraps. A fixed-point (functional) iteration mode
// covers non-stiff use, mirroring CVODE's Adams/functional option.
package cvode

import (
	"errors"
	"fmt"
	"math"
)

// RHS evaluates ydot = f(t, y).
type RHS func(t float64, y, ydot []float64)

// Jac fills jac, row-major n*n, with the dense Jacobian df/dy at
// (t, y). Supplied via Options.Jac it replaces the finite-difference
// sweep (n+1 RHS evaluations per build) with a single analytic
// evaluation; an approximate Jacobian is fine, since the modified
// Newton iteration only needs a contraction, not an exact derivative.
type Jac func(t float64, y, jac []float64)

// Options configures a Solver. Zero values select documented defaults.
type Options struct {
	// RelTol is the relative tolerance (default 1e-6).
	RelTol float64
	// AbsTol is the absolute tolerance, scalar applied to every
	// component (default 1e-10); AbsTolVec overrides per component.
	AbsTol    float64
	AbsTolVec []float64
	// MaxOrder caps the BDF order in [1, 5] (default 5).
	MaxOrder int
	// InitialStep, MinStep, MaxStep bound the step size. Defaults:
	// automatic initial step, MinStep ~ 1e4*ulp, MaxStep unbounded.
	InitialStep, MinStep, MaxStep float64
	// MaxSteps bounds internal steps per Integrate call (default 100000).
	MaxSteps int
	// Stiff selects Newton iteration (true, default) or fixed-point
	// iteration (false).
	Stiff *bool
	// Jac, when non-nil, supplies the Jacobian analytically; finite
	// differences remain the fallback.
	Jac Jac
}

// Stats counts the work performed.
type Stats struct {
	Steps    int
	RHSEvals int
	// JacEvals counts Jacobian builds of either kind;
	// JacBuildsAnalytic and JacBuildsFD split it by source, and
	// JacReuses counts gamma-drift refactors that reused the stored
	// Jacobian instead of rebuilding it.
	JacEvals          int
	JacBuildsAnalytic int
	JacBuildsFD       int
	JacReuses         int
	NewtonIters       int
	ErrTestFails      int
	ConvFails         int
	LastStep          float64
	LastOrder         int
}

// Errors reported by the integrator.
var (
	ErrTooMuchWork  = errors.New("cvode: maximum step count exceeded")
	ErrStepTooSmall = errors.New("cvode: step size underflow")
)

const maxHistory = 7 // up to order 5 needs 7 points for order-raise test

// Solver integrates one ODE system. Not safe for concurrent use.
type Solver struct {
	n   int
	f   RHS
	opt Options

	stiff bool

	t float64
	y []float64

	// History ring: ts[0], ys[0] is the most recent accepted point.
	ts    []float64
	ys    [][]float64
	nHist int

	order int

	h float64

	// growthCap limits step growth after the last step (set to 1 after
	// a failed attempt, CVODE's etamax rule).
	growthCap float64
	// sinceOrderChange counts accepted steps since the order last
	// changed; order changes are held off for order+1 steps so the
	// history reflects the current order before re-deciding.
	sinceOrderChange int
	// cleanStreak counts consecutive accepted steps without any failed
	// attempt; it widens the growth cap so startup can expand h fast
	// while post-failure regimes grow gently (big jumps re-trigger the
	// nonlinear failures that caused them).
	cleanStreak int

	// Newton machinery.
	jac      *Dense
	lu       *LU
	gammaJac float64 // gamma at last Jacobian build
	haveJac  bool

	// Scratch.
	ytmp, ftmp, delta, pred, beta []float64
	ewt                           []float64

	stats Stats
}

// New creates a solver for an n-dimensional system.
func New(n int, f RHS, opt Options) *Solver {
	if opt.RelTol <= 0 {
		opt.RelTol = 1e-6
	}
	if opt.AbsTol <= 0 {
		opt.AbsTol = 1e-10
	}
	if opt.MaxOrder <= 0 || opt.MaxOrder > 5 {
		opt.MaxOrder = 5
	}
	if opt.MaxSteps <= 0 {
		opt.MaxSteps = 100000
	}
	s := &Solver{
		n: n, f: f, opt: opt,
		stiff: opt.Stiff == nil || *opt.Stiff,
		ts:    make([]float64, 0, maxHistory),
		ys:    make([][]float64, 0, maxHistory),
		ytmp:  make([]float64, n),
		ftmp:  make([]float64, n),
		delta: make([]float64, n),
		pred:  make([]float64, n),
		beta:  make([]float64, n),
		ewt:   make([]float64, n),
		jac:   NewDense(n),
	}
	return s
}

// Init sets the initial condition and resets all state.
func (s *Solver) Init(t0 float64, y0 []float64) {
	if len(y0) != s.n {
		panic(fmt.Sprintf("cvode: Init dimension %d != %d", len(y0), s.n))
	}
	s.t = t0
	s.y = append(s.y[:0], y0...)
	s.ts = append(s.ts[:0], t0)
	y := append([]float64(nil), y0...)
	s.ys = append(s.ys[:0], y)
	s.nHist = 1
	s.order = 1
	s.h = 0
	s.sinceOrderChange = 0
	s.cleanStreak = 0
	s.growthCap = 5
	s.haveJac = false
	s.stats = Stats{}
}

// T returns the current time.
func (s *Solver) T() float64 { return s.t }

// Y returns the current state (live slice; copy before mutating).
func (s *Solver) Y() []float64 { return s.y }

// Stats returns work counters.
func (s *Solver) Stats() Stats { return s.stats }

func (s *Solver) errWeights() {
	for i := 0; i < s.n; i++ {
		at := s.opt.AbsTol
		if s.opt.AbsTolVec != nil {
			at = s.opt.AbsTolVec[i]
		}
		s.ewt[i] = 1 / (s.opt.RelTol*math.Abs(s.y[i]) + at)
	}
}

// wrms computes the weighted RMS norm of v with current weights.
func (s *Solver) wrms(v []float64) float64 {
	var sum float64
	for i, x := range v {
		w := x * s.ewt[i]
		sum += w * w
	}
	return math.Sqrt(sum / float64(s.n))
}

// initialStep picks h0 from the RHS magnitude (CVODE-like heuristic).
func (s *Solver) initialStep() float64 {
	if s.opt.InitialStep > 0 {
		return s.opt.InitialStep
	}
	s.f(s.t, s.y, s.ftmp)
	s.stats.RHSEvals++
	s.errWeights()
	fn := s.wrms(s.ftmp)
	h := 1e-6
	if fn > 0 {
		h = 0.01 / fn
	}
	if s.opt.MaxStep > 0 && h > s.opt.MaxStep {
		h = s.opt.MaxStep
	}
	return h
}

// pushHistory records an accepted step.
func (s *Solver) pushHistory(t float64, y []float64) {
	cp := append([]float64(nil), y...)
	s.ts = append([]float64{t}, s.ts...)
	s.ys = append([][]float64{cp}, s.ys...)
	if len(s.ts) > maxHistory {
		s.ts = s.ts[:maxHistory]
		s.ys = s.ys[:maxHistory]
	}
	s.nHist = len(s.ts)
}

// lagrangeDeriv computes the coefficients c_j = L_j'(tn) of the
// Lagrange interpolation through nodes[0..k] evaluated at tn =
// nodes[0]; nodes[0] is the new time.
func lagrangeDeriv(nodes []float64, out []float64) {
	k := len(nodes) - 1
	tn := nodes[0]
	for j := 0; j <= k; j++ {
		// L_j'(tn) with tn one of the nodes (node 0).
		if j == 0 {
			var sum float64
			for m := 1; m <= k; m++ {
				sum += 1 / (tn - nodes[m])
			}
			out[0] = sum
			continue
		}
		// L_j'(tn) = [Π_{m≠j,m≠0} (tn-nodes[m])] / [Π_{m≠j} (nodes[j]-nodes[m])]
		num := 1.0
		for m := 0; m <= k; m++ {
			if m == j || m == 0 {
				continue
			}
			num *= tn - nodes[m]
		}
		den := 1.0
		for m := 0; m <= k; m++ {
			if m == j {
				continue
			}
			den *= nodes[j] - nodes[m]
		}
		out[j] = num / den
	}
}

// predictAt extrapolates the history polynomial of the given order
// (using points ts[0..order]) to time tn, writing into out. Returns
// false if not enough history.
func (s *Solver) predictAt(order int, tn float64, out []float64) bool {
	if s.nHist < order+1 {
		return false
	}
	// Lagrange evaluation at tn through (ts[i], ys[i]), i=0..order.
	for i := range out {
		out[i] = 0
	}
	for j := 0; j <= order; j++ {
		w := 1.0
		for m := 0; m <= order; m++ {
			if m == j {
				continue
			}
			w *= (tn - s.ts[m]) / (s.ts[j] - s.ts[m])
		}
		yj := s.ys[j]
		for i := range out {
			out[i] += w * yj[i]
		}
	}
	return true
}

// buildJacobian computes J = df/dy — analytically when Options.Jac is
// set, by forward differences otherwise — and factors I - gamma J.
func (s *Solver) buildJacobian(tn float64, y []float64, gamma float64) error {
	if s.opt.Jac != nil {
		s.opt.Jac(tn, y, s.jac.A)
		s.stats.JacEvals++
		s.stats.JacBuildsAnalytic++
		if err := s.refactor(gamma); err != nil {
			return err
		}
		s.haveJac = true
		return nil
	}
	s.f(tn, y, s.ftmp)
	s.stats.RHSEvals++
	base := append([]float64(nil), s.ftmp...)
	yp := append([]float64(nil), y...)
	uround := 2.22e-16
	srur := math.Sqrt(uround)
	for j := 0; j < s.n; j++ {
		// Difference increment: relative to |y_j|, floored at an
		// absolute srur so columns for zero or trace components still
		// carry signal above the round-off of the f evaluations. (A
		// cancellation-starved column makes Newton diverge and the
		// step controller collapse — chemistry with trace radicals is
		// the canonical victim.)
		dy := srur * math.Max(math.Abs(y[j]), 1)
		yp[j] = y[j] + dy
		s.f(tn, yp, s.ftmp)
		s.stats.RHSEvals++
		inv := 1 / dy
		for i := 0; i < s.n; i++ {
			s.jac.Set(i, j, (s.ftmp[i]-base[i])*inv)
		}
		yp[j] = y[j]
	}
	s.stats.JacEvals++
	s.stats.JacBuildsFD++
	if err := s.refactor(gamma); err != nil {
		return err
	}
	s.haveJac = true
	return nil
}

// refactor forms and factors the Newton matrix from the stored
// Jacobian, equilibrated in the error-weighted space:
//
//	M' = I - gamma D J D^{-1},  D = diag(ewt)
//
// Chemistry Jacobians span ~14 orders of magnitude between rows;
// factoring the raw M loses the small-scale rows to round-off and the
// resulting Newton steps explode along near-null directions. In the
// weighted space all components are tolerance-comparable and partial
// pivoting is reliable.
func (s *Solver) refactor(gamma float64) error {
	m := NewDense(s.n)
	for i := 0; i < s.n; i++ {
		for j := 0; j < s.n; j++ {
			v := -gamma * s.ewt[i] * s.jac.At(i, j) / s.ewt[j]
			if i == j {
				v += 1
			}
			m.Set(i, j, v)
		}
	}
	lu, err := Factor(m)
	if err != nil {
		return err
	}
	s.lu = lu
	s.gammaJac = gamma
	return nil
}

// solveNonlinear solves y = gamma f(tn,y) + beta starting from pred.
// Returns the converged y in s.ytmp, or an error.
func (s *Solver) solveNonlinear(tn, gamma float64) error {
	copy(s.ytmp, s.pred)
	const maxIter = 25
	var firstNorm, prevNorm float64
	damp := 1.0
	for iter := 0; iter < maxIter; iter++ {
		s.f(tn, s.ytmp, s.ftmp)
		s.stats.RHSEvals++
		// Residual G = y - gamma f - beta.
		for i := 0; i < s.n; i++ {
			s.delta[i] = s.ytmp[i] - gamma*s.ftmp[i] - s.beta[i]
		}
		if s.stiff {
			// Solve in the weighted space: delta = D^{-1} M'^{-1} D G.
			for i := 0; i < s.n; i++ {
				s.delta[i] *= s.ewt[i]
			}
			s.lu.Solve(s.delta)
			for i := 0; i < s.n; i++ {
				s.delta[i] /= s.ewt[i]
			}
		}
		norm := s.wrms(s.delta)
		// Adaptive damping: the weighted iteration matrix of combustion
		// chemistry is strongly non-normal, so undamped steps can grow
		// transiently before contracting; halve the relaxation whenever
		// the step norm grows, recover it geometrically on decay.
		if iter > 0 {
			if norm > prevNorm {
				damp = math.Max(damp*0.5, 0.125)
			} else if damp < 1 {
				damp = math.Min(1, damp*2)
			}
		}
		prevNorm = norm
		for i := 0; i < s.n; i++ {
			s.ytmp[i] -= damp * s.delta[i]
		}
		s.stats.NewtonIters++
		if norm < 0.1 { // tolerance relative to the error test (CVODE uses 0.1*errtol)
			return nil
		}
		// The weighted iteration matrix of stiff chemistry is strongly
		// non-normal: norms often grow for several iterations (a
		// transient hump) before contracting. Declare divergence only
		// when the norm has grown far beyond the initial residual.
		if iter == 0 {
			firstNorm = norm
		} else if norm > 50*firstNorm && norm > 1 {
			return errors.New("cvode: nonlinear divergence")
		}
	}
	return errors.New("cvode: nonlinear iteration failed to converge")
}

// attemptStep tries one step of the given order and size. On success it
// leaves the candidate solution in ytmp and returns the local error
// estimate; on nonlinear failure it returns convErr.
func (s *Solver) attemptStep(order int, h float64) (errNorm float64, err error) {
	tn := s.t + h
	nodes := make([]float64, order+1)
	nodes[0] = tn
	for j := 1; j <= order; j++ {
		nodes[j] = s.ts[j-1]
	}
	coef := make([]float64, order+1)
	lagrangeDeriv(nodes, coef)
	gamma := 1 / coef[0]
	// beta = -(1/c0) Σ_{j>=1} c_j y_{n-j}
	for i := 0; i < s.n; i++ {
		s.beta[i] = 0
	}
	for j := 1; j <= order; j++ {
		cj := coef[j] * gamma
		yj := s.ys[j-1]
		for i := 0; i < s.n; i++ {
			s.beta[i] -= cj * yj[i]
		}
	}
	// Predictor: extrapolate through the last order+1 points (or fewer).
	po := order
	if s.nHist < po+1 {
		po = s.nHist - 1
	}
	if po < 1 {
		copy(s.pred, s.y)
	} else {
		s.predictAt(po, tn, s.pred)
	}

	if s.stiff {
		// (Re)build or refactor the iteration matrix when gamma drifted.
		if !s.haveJac {
			if jerr := s.buildJacobian(tn, s.pred, gamma); jerr != nil {
				return 0, jerr
			}
		} else if math.Abs(gamma-s.gammaJac) > 0.3*math.Abs(s.gammaJac) {
			s.stats.JacReuses++
			if jerr := s.refactor(gamma); jerr != nil {
				return 0, jerr
			}
		}
	}

	if nerr := s.solveNonlinear(tn, gamma); nerr != nil {
		// One retry with a fresh Jacobian before reporting failure.
		if s.stiff {
			if jerr := s.buildJacobian(tn, s.pred, gamma); jerr != nil {
				return 0, jerr
			}
			if nerr2 := s.solveNonlinear(tn, gamma); nerr2 == nil {
				goto converged
			}
		}
		return 0, nerr
	}
converged:
	// Error estimate: distance between the BDF solution and the
	// explicit predictor of the same order, scaled by 1/(order+1).
	if po >= order {
		for i := 0; i < s.n; i++ {
			s.delta[i] = s.ytmp[i] - s.pred[i]
		}
		errNorm = s.wrms(s.delta) / float64(order+1)
	} else {
		// Not enough history for a same-order predictor (startup):
		// be conservative.
		for i := 0; i < s.n; i++ {
			s.delta[i] = s.ytmp[i] - s.pred[i]
		}
		errNorm = s.wrms(s.delta)
	}
	return errNorm, nil
}

// Step advances one internal step with error control.
func (s *Solver) Step() error {
	if s.h == 0 {
		s.h = s.initialStep()
	}
	minStep := s.opt.MinStep
	if minStep <= 0 {
		minStep = 1e4 * 2.22e-16 * math.Max(math.Abs(s.t), 1e-30)
	}
	s.errWeights()
	for try := 0; try < 30; try++ {
		if s.opt.MaxStep > 0 && s.h > s.opt.MaxStep {
			s.h = s.opt.MaxStep
		}
		if math.Abs(s.h) < minStep {
			return ErrStepTooSmall
		}
		order := s.order
		if order > s.nHist {
			order = s.nHist
		}
		errNorm, err := s.attemptStep(order, s.h)
		if err != nil {
			s.stats.ConvFails++
			s.h *= 0.25
			s.haveJac = false
			s.growthCap = 1 // CVODE's etamax rule: no growth right after a failure
			s.cleanStreak = 0
			continue
		}
		if errNorm > 1 {
			s.stats.ErrTestFails++
			fac := stepFactor(errNorm, order)
			s.h *= math.Max(0.1, math.Min(0.9, fac))
			s.growthCap = 1
			s.cleanStreak = 0
			continue
		}
		// Accept.
		tn := s.t + s.h
		copy(s.y, s.ytmp)
		s.t = tn
		s.pushHistory(tn, s.y)
		s.stats.Steps++
		s.stats.LastStep = s.h
		s.stats.LastOrder = order
		s.adaptOrderAndStep(order, errNorm)
		return nil
	}
	return ErrStepTooSmall
}

// adaptOrderAndStep chooses the next order and step from predictor
// errors at order-1, order, order+1.
func (s *Solver) adaptOrderAndStep(order int, errNorm float64) {
	bestOrder := order
	bestFac := stepFactor(errNorm, order)
	s.sinceOrderChange++
	if s.sinceOrderChange > order {
		// Lower order.
		if order > 1 {
			if e := s.predictorError(order - 1); e >= 0 {
				if f := stepFactor(e, order-1); f > bestFac {
					bestFac, bestOrder = f, order-1
				}
			}
		}
		// Higher order.
		if order < s.opt.MaxOrder && s.nHist >= order+2 {
			if e := s.predictorError(order + 1); e >= 0 {
				if f := stepFactor(e, order+1); f > bestFac {
					bestFac, bestOrder = f, order+1
				}
			}
		}
	}
	if bestOrder != s.order {
		s.sinceOrderChange = 0
	}
	s.order = bestOrder
	cap := s.growthCap
	if cap <= 0 {
		cap = 5
	}
	// Widen the cap with the clean streak: 1.5 right after trouble,
	// up to 10 once the solver has settled.
	s.cleanStreak++
	streakCap := 1.5
	switch {
	case s.cleanStreak > 8:
		streakCap = 10
	case s.cleanStreak > 4:
		streakCap = 5
	case s.cleanStreak > 2:
		streakCap = 2.5
	}
	if streakCap < cap {
		cap = streakCap
	}
	s.h *= math.Max(0.2, math.Min(cap, bestFac))
	s.growthCap = 5
}

// predictorError evaluates, a posteriori, how well an order-q predictor
// through older points reproduces the newest accepted point; returns
// the weighted norm scaled as an order-q error estimate, or -1 if
// history is insufficient.
func (s *Solver) predictorError(q int) float64 {
	if s.nHist < q+2 {
		return -1
	}
	// Predict ys[0] from points 1..q+1.
	tn := s.ts[0]
	for i := range s.pred {
		s.pred[i] = 0
	}
	for j := 1; j <= q+1; j++ {
		w := 1.0
		for m := 1; m <= q+1; m++ {
			if m == j {
				continue
			}
			w *= (tn - s.ts[m]) / (s.ts[j] - s.ts[m])
		}
		yj := s.ys[j]
		for i := range s.pred {
			s.pred[i] += w * yj[i]
		}
	}
	for i := 0; i < s.n; i++ {
		s.delta[i] = s.ys[0][i] - s.pred[i]
	}
	return s.wrms(s.delta) / float64(q+1)
}

// stepFactor is CVODE's biased step multiplier: it drives the
// controller toward err ~ 1/6 rather than the acceptance boundary 1,
// so accepted history points carry errors well below tolerance. (A
// controller that rides the boundary plants O(1)-weighted errors in
// the history, which contaminate the predictor-corrector error
// estimate of later steps and lock the solver into a small-step limit
// cycle.)
func stepFactor(errNorm float64, order int) float64 {
	if errNorm <= 0 {
		return 5
	}
	return 1 / (math.Pow(6*errNorm, 1/float64(order+1)) + 1e-6)
}

// Integrate advances the solution to tEnd (forward time only).
func (s *Solver) Integrate(tEnd float64) error {
	if tEnd < s.t {
		return fmt.Errorf("cvode: tEnd %v < current t %v", tEnd, s.t)
	}
	steps := 0
	for s.t < tEnd {
		if steps >= s.opt.MaxSteps {
			return ErrTooMuchWork
		}
		if s.h == 0 {
			s.h = s.initialStep()
		}
		if s.t+s.h > tEnd {
			s.h = tEnd - s.t
		}
		if err := s.Step(); err != nil {
			return err
		}
		steps++
	}
	return nil
}
