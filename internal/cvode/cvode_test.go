package cvode

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, rel float64) bool {
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))+1e-300
}

// ---- LU -----------------------------------------------------------------

func TestLUSolveKnown(t *testing.T) {
	m := NewDense(3)
	vals := [][]float64{{2, 1, 1}, {4, -6, 0}, {-2, 7, 2}}
	for i := range vals {
		for j := range vals[i] {
			m.Set(i, j, vals[i][j])
		}
	}
	lu, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{5, -2, 9}
	lu.Solve(b)
	want := []float64{1, 1, 2}
	for i := range want {
		if !almost(b[i], want[i], 1e-12) {
			t.Errorf("x[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := Factor(m); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

// Property: random diagonally dominant systems solve to machine
// accuracy (residual check).
func TestLURandomProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		m := NewDense(n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				v := rng.Float64()*2 - 1
				m.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			m.Set(i, i, rowSum+1) // dominance
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*10 - 5
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += m.At(i, j) * x[j]
			}
		}
		lu, err := Factor(m)
		if err != nil {
			return false
		}
		lu.Solve(b)
		for i := range x {
			if !almost(b[i], x[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// ---- integrator: accuracy ------------------------------------------------

func TestExponentialDecay(t *testing.T) {
	s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -y[0] },
		Options{RelTol: 1e-8, AbsTol: 1e-12})
	s.Init(0, []float64{1})
	if err := s.Integrate(2); err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-2)
	if !almost(s.Y()[0], want, 1e-6) {
		t.Errorf("y(2) = %v, want %v", s.Y()[0], want)
	}
	if s.T() != 2 {
		t.Errorf("t = %v", s.T())
	}
}

func TestLinearOscillatorNonStiff(t *testing.T) {
	nonstiff := false
	s := New(2, func(_ float64, y, ydot []float64) {
		ydot[0] = y[1]
		ydot[1] = -y[0]
	}, Options{RelTol: 1e-8, AbsTol: 1e-10, Stiff: &nonstiff})
	s.Init(0, []float64{1, 0})
	if err := s.Integrate(math.Pi / 2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Y()[0]) > 1e-4 || !almost(s.Y()[1], -1, 1e-4) {
		t.Errorf("y(pi/2) = %v, want [0 -1]", s.Y())
	}
}

func TestStiffLinearSystem(t *testing.T) {
	// y1' = -1000 y1 + y2; y2' = -y2. Stiffness ratio 1000.
	s := New(2, func(_ float64, y, ydot []float64) {
		ydot[0] = -1000*y[0] + y[1]
		ydot[1] = -y[1]
	}, Options{RelTol: 1e-8, AbsTol: 1e-12})
	s.Init(0, []float64{1, 1})
	if err := s.Integrate(1); err != nil {
		t.Fatal(err)
	}
	// Analytic: y2 = e^-t; y1 = (1 - 1/999) e^-1000t + (1/999) e^-t.
	wantY2 := math.Exp(-1)
	wantY1 := math.Exp(-1) / 999
	if !almost(s.Y()[1], wantY2, 1e-6) {
		t.Errorf("y2(1) = %v, want %v", s.Y()[1], wantY2)
	}
	if !almost(s.Y()[0], wantY1, 1e-4) {
		t.Errorf("y1(1) = %v, want %v", s.Y()[0], wantY1)
	}
	// Stiff solver must not need ~1000 steps per unit time.
	if s.Stats().Steps > 500 {
		t.Errorf("steps = %d; implicit method should coarsen past the transient", s.Stats().Steps)
	}
}

func TestRobertson(t *testing.T) {
	// The classic stiff benchmark.
	f := func(_ float64, y, ydot []float64) {
		ydot[0] = -0.04*y[0] + 1e4*y[1]*y[2]
		ydot[2] = 3e7 * y[1] * y[1]
		ydot[1] = -ydot[0] - ydot[2]
	}
	s := New(3, f, Options{RelTol: 1e-8, AbsTol: 1e-12})
	s.Init(0, []float64{1, 0, 0})
	if err := s.Integrate(40); err != nil {
		t.Fatal(err)
	}
	want := []float64{0.7158271, 9.1855e-6, 0.2841637}
	for i := range want {
		if !almost(s.Y()[i], want[i], 2e-3) {
			t.Errorf("y[%d](40) = %v, want %v", i, s.Y()[i], want[i])
		}
	}
	// Conservation: components sum to 1.
	if sum := s.Y()[0] + s.Y()[1] + s.Y()[2]; !almost(sum, 1, 1e-6) {
		t.Errorf("sum = %v", sum)
	}
}

func TestVanDerPolStiff(t *testing.T) {
	mu := 100.0
	f := func(_ float64, y, ydot []float64) {
		ydot[0] = y[1]
		ydot[1] = mu*(1-y[0]*y[0])*y[1] - y[0]
	}
	s := New(2, f, Options{RelTol: 1e-6, AbsTol: 1e-9})
	s.Init(0, []float64{2, 0})
	if err := s.Integrate(100); err != nil {
		t.Fatal(err)
	}
	// After a bit over half a period (T ≈ 162 for mu=100), the solution
	// remains bounded in [-2.1, 2.1].
	if math.Abs(s.Y()[0]) > 2.2 {
		t.Errorf("y(100) = %v, |y| must stay <= ~2", s.Y()[0])
	}
}

func TestToleranceControlsError(t *testing.T) {
	run := func(rtol float64) float64 {
		s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -y[0] },
			Options{RelTol: rtol, AbsTol: rtol * 1e-4})
		s.Init(0, []float64{1})
		if err := s.Integrate(5); err != nil {
			t.Fatal(err)
		}
		return math.Abs(s.Y()[0] - math.Exp(-5))
	}
	eLoose := run(1e-4)
	eTight := run(1e-10)
	if eTight >= eLoose {
		t.Errorf("tight tol error %v >= loose %v", eTight, eLoose)
	}
	if eTight > 1e-9 {
		t.Errorf("tight error = %v", eTight)
	}
}

func TestOrderClimbs(t *testing.T) {
	// On a smooth problem the order should exceed 1 quickly.
	s := New(1, func(tt float64, y, ydot []float64) { ydot[0] = math.Cos(tt) },
		Options{RelTol: 1e-10, AbsTol: 1e-12})
	s.Init(0, []float64{0})
	if err := s.Integrate(3); err != nil {
		t.Fatal(err)
	}
	if s.Stats().LastOrder < 2 {
		t.Errorf("order stayed at %d", s.Stats().LastOrder)
	}
	if !almost(s.Y()[0], math.Sin(3), 1e-7) {
		t.Errorf("y(3) = %v, want %v", s.Y()[0], math.Sin(3))
	}
}

func TestMaxOrderRespected(t *testing.T) {
	s := New(1, func(tt float64, y, ydot []float64) { ydot[0] = math.Cos(tt) },
		Options{RelTol: 1e-10, AbsTol: 1e-12, MaxOrder: 2})
	s.Init(0, []float64{0})
	if err := s.Integrate(3); err != nil {
		t.Fatal(err)
	}
	if s.Stats().LastOrder > 2 {
		t.Errorf("order %d exceeds cap", s.Stats().LastOrder)
	}
}

func TestIntegrateStopsExactlyAtTEnd(t *testing.T) {
	s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = 1 },
		Options{RelTol: 1e-6, AbsTol: 1e-9})
	s.Init(0, []float64{0})
	if err := s.Integrate(0.3333); err != nil {
		t.Fatal(err)
	}
	if s.T() != 0.3333 {
		t.Errorf("t = %v", s.T())
	}
	if !almost(s.Y()[0], 0.3333, 1e-10) {
		t.Errorf("y = %v", s.Y()[0])
	}
}

func TestIntegrateBackwardRejected(t *testing.T) {
	s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = 1 }, Options{})
	s.Init(1, []float64{0})
	if err := s.Integrate(0); err == nil {
		t.Error("expected error for backward integration")
	}
}

func TestMaxStepsEnforced(t *testing.T) {
	s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -y[0] },
		Options{RelTol: 1e-12, AbsTol: 1e-14, MaxSteps: 3, MaxStep: 1e-6})
	s.Init(0, []float64{1})
	if err := s.Integrate(1); err != ErrTooMuchWork {
		t.Errorf("err = %v, want ErrTooMuchWork", err)
	}
}

func TestReInitResets(t *testing.T) {
	s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -y[0] },
		Options{RelTol: 1e-8, AbsTol: 1e-12})
	s.Init(0, []float64{1})
	if err := s.Integrate(1); err != nil {
		t.Fatal(err)
	}
	s.Init(0, []float64{2})
	if s.T() != 0 || s.Y()[0] != 2 || s.Stats().Steps != 0 {
		t.Error("Init did not reset state")
	}
	if err := s.Integrate(1); err != nil {
		t.Fatal(err)
	}
	if !almost(s.Y()[0], 2*math.Exp(-1), 1e-6) {
		t.Errorf("y = %v", s.Y()[0])
	}
}

func TestStatsPopulated(t *testing.T) {
	s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -y[0] },
		Options{RelTol: 1e-8, AbsTol: 1e-12})
	s.Init(0, []float64{1})
	if err := s.Integrate(1); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Steps == 0 || st.RHSEvals == 0 || st.NewtonIters == 0 || st.LastStep <= 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.JacEvals == 0 {
		t.Errorf("stiff solve built no Jacobian: %+v", st)
	}
}

// Property: linear scalar ODEs with random decay rates integrate to the
// analytic solution within tolerance.
func TestLinearDecayProperty(t *testing.T) {
	f := func(kRaw uint8, y0Raw int8) bool {
		k := 0.1 + float64(kRaw)/8 // decay rates up to ~32
		y0 := float64(y0Raw)
		s := New(1, func(_ float64, y, ydot []float64) { ydot[0] = -k * y[0] },
			Options{RelTol: 1e-8, AbsTol: 1e-12})
		s.Init(0, []float64{y0})
		if err := s.Integrate(1); err != nil {
			return false
		}
		want := y0 * math.Exp(-k)
		// Accumulated error is bounded by rtol-scale relative error plus
		// an atol-scale floor (the analytic value can decay to ~AbsTol).
		return math.Abs(s.Y()[0]-want) <= 1e-4*math.Abs(want)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLagrangeDerivUniform(t *testing.T) {
	// Uniform grid, order 1 (BDF1): c0 = 1/h, c1 = -1/h.
	out := make([]float64, 2)
	lagrangeDeriv([]float64{1.0, 0.5}, out)
	if !almost(out[0], 2, 1e-12) || !almost(out[1], -2, 1e-12) {
		t.Errorf("BDF1 coef = %v", out)
	}
	// Order 2 uniform (h=1): c = [3/2, -2, 1/2].
	out = make([]float64, 3)
	lagrangeDeriv([]float64{2, 1, 0}, out)
	want := []float64{1.5, -2, 0.5}
	for i := range want {
		if !almost(out[i], want[i], 1e-12) {
			t.Errorf("BDF2 coef = %v", out)
		}
	}
}
