package cvode

import (
	"errors"
	"math"
)

// Dense LU factorization with partial pivoting — the direct linear
// solver behind the modified-Newton iteration (CVODE's CVDense analog).

// ErrSingular is returned when factorization meets a (numerically)
// zero pivot.
var ErrSingular = errors.New("cvode: singular matrix")

// Dense is a square matrix in row-major storage.
type Dense struct {
	N int
	A []float64
}

// NewDense allocates an N x N zero matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, A: make([]float64, n*n)}
}

// At reads entry (i, j).
func (m *Dense) At(i, j int) float64 { return m.A[i*m.N+j] }

// Set writes entry (i, j).
func (m *Dense) Set(i, j int, v float64) { m.A[i*m.N+j] = v }

// LU holds a factorization P A = L U.
type LU struct {
	n   int
	lu  []float64
	piv []int
}

// Factor computes the LU decomposition with partial pivoting,
// overwriting an internal copy (m is untouched).
func Factor(m *Dense) (*LU, error) {
	n := m.N
	f := &LU{n: n, lu: append([]float64(nil), m.A...), piv: make([]int, n)}
	for k := 0; k < n; k++ {
		// Pivot search.
		p := k
		maxAbs := math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(f.lu[i*n+k]); a > maxAbs {
				maxAbs, p = a, i
			}
		}
		f.piv[k] = p
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[k*n+j], f.lu[p*n+j] = f.lu[p*n+j], f.lu[k*n+j]
			}
		}
		inv := 1 / f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] * inv
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			row := f.lu[i*n : i*n+n]
			prow := f.lu[k*n : k*n+n]
			for j := k + 1; j < n; j++ {
				row[j] -= l * prow[j]
			}
		}
	}
	return f, nil
}

// Solve overwrites b with the solution of A x = b.
func (f *LU) Solve(b []float64) {
	n := f.n
	// Apply permutation and forward-substitute L.
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
		for i := k + 1; i < n; i++ {
			b[i] -= f.lu[i*n+k] * b[k]
		}
	}
	// Back-substitute U.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			b[i] -= f.lu[i*n+j] * b[j]
		}
		b[i] /= f.lu[i*n+i]
	}
}
