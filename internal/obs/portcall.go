package obs

import (
	"sync/atomic"
	"time"
)

// Port-call sampling. The interceptor proxies record every call by
// default (~30% overhead on µs-scale wires, BENCH_obs); production runs
// can thin the stream per wire with a sampling rate and/or a latency
// floor. Dropped observations are counted in port_call_dropped_total so
// histogram counts stay honest: true call volume = recorded + dropped.

// portCallPolicy is the session-wide filter; nil means record all.
type portCallPolicy struct {
	every uint64        // keep 1 of every N calls per wire (0/1 = all)
	floor time.Duration // drop calls faster than this (0 = none)
}

// PortCall is one wire's recording endpoint: the latency histogram
// behind the session's sampling policy. Methods are nil-safe.
type PortCall struct {
	h   *Histogram
	o   *Obs
	seq atomic.Uint64 // per-wire call ordinal for the 1-in-N filter
}

// PortCall returns the recording endpoint of one (instance, port,
// method) triple.
func (o *Obs) PortCall(instance, port, method string) *PortCall {
	if o == nil {
		return nil
	}
	return &PortCall{h: o.PortHistogram(instance, port, method), o: o}
}

// SetPortCallSampling installs the session's port-call filter: keep 1
// of every `every` calls per wire (<=1 keeps all) and drop calls
// shorter than floor (0 keeps all). Applies to calls observed after it
// is set; safe to call concurrently with recording.
func (o *Obs) SetPortCallSampling(every int, floor time.Duration) {
	if o == nil {
		return
	}
	if every <= 1 && floor <= 0 {
		o.callPol.Store(nil)
		return
	}
	e := uint64(1)
	if every > 1 {
		e = uint64(every)
	}
	o.callPol.Store(&portCallPolicy{every: e, floor: floor})
}

// PortCallDropped is the number of port calls the sampling policy
// discarded in this session.
func (o *Obs) PortCallDropped() uint64 {
	if o == nil {
		return 0
	}
	return o.droppedCounter().Value()
}

// droppedCounter caches the drop counter so the discard path never
// takes a registry shard lock. Registry.Counter is idempotent per name,
// so a racing double-store resolves to the same instrument.
func (o *Obs) droppedCounter() *Counter {
	if c := o.dropped.Load(); c != nil {
		return c
	}
	c := o.reg.Counter("port_call_dropped_total")
	o.dropped.Store(c)
	return c
}

// ObserveSince records one call's latency measured from t0, subject to
// the session policy. This is the single line every proxy method pays.
func (pc *PortCall) ObserveSince(t0 time.Time) {
	if pc == nil {
		return
	}
	d := time.Since(t0)
	if pol := pc.o.callPol.Load(); pol != nil {
		if d < pol.floor || (pol.every > 1 && pc.seq.Add(1)%pol.every != 1) {
			pc.o.droppedCounter().Inc()
			return
		}
	}
	pc.h.ObserveNs(int64(d))
}
