package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var o *Obs
	if o.Metrics() != nil || o.Tracer() != nil {
		t.Fatal("nil Obs accessors must return nil")
	}
	o.Span("x", "y")() // must not panic
	var tr *Tracer
	tr.Span("x", "y")()
	tr.SpanTid(3, "x", "y")()
	tr.Instant(0, "x", "y")
	tr.Emit(Event{})
	tr.VirtualSend(1, "halo", 0, 1, 0, 1e-6, 8)
	tr.VirtualRecv(1, "halo", 1, 2e-6, 8)
	if tr.NextFlowID() != 0 {
		t.Fatal("nil tracer NextFlowID must return 0")
	}
}

func TestSpanAndEventCounts(t *testing.T) {
	g := NewGroup(2)
	done := g.Rank(0).Span("samr", "regrid")
	done()
	g.Rank(1).Tracer().SpanTid(2, "exec", "chunk")()

	id := g.Rank(0).Tracer().NextFlowID()
	if id == 0 {
		t.Fatal("flow id must be nonzero")
	}
	g.Rank(0).Tracer().VirtualSend(id, "halo", 0, 1, 1e-6, 2e-6, 64)
	g.Rank(1).Tracer().VirtualRecv(id, "halo", 1, 4e-6, 64)

	counts := g.EventCounts()
	if counts["samr"] != 1 || counts["exec"] != 1 {
		t.Fatalf("span counts wrong: %v", counts)
	}
	if counts["halo.flow.s"] != 1 || counts["halo.flow.f"] != 1 {
		t.Fatalf("flow counts wrong: %v", counts)
	}
}

func TestFlowIDsUniqueAcrossRanks(t *testing.T) {
	g := NewGroup(4)
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := g.Rank(r).Tracer().NextFlowID()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate flow id %d", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
}

func TestWriteTraceValidJSON(t *testing.T) {
	g := NewGroup(2)
	g.Rank(0).Span("samr", "step")()
	g.Rank(0).Tracer().SpanTid(1, "exec", "chunk 0")()
	id := g.Rank(0).Tracer().NextFlowID()
	g.Rank(0).Tracer().VirtualSend(id, "halo", 0, 1, 0, 1e-6, 32)
	g.Rank(1).Tracer().VirtualRecv(id, "halo", 1, 3e-6, 32)

	var buf bytes.Buffer
	if err := g.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var metas, spans, flowS, flowF int
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		ph := ev["ph"].(string)
		switch ph {
		case "M":
			metas++
		case "X":
			spans++
			if d, ok := ev["dur"].(float64); !ok || d <= 0 {
				t.Fatalf("X event with missing/zero dur: %v", ev)
			}
		case "s":
			flowS++
		case "f":
			flowF++
			if ev["bp"] != "e" {
				t.Fatalf("flow finish must carry bp=e: %v", ev)
			}
		}
		pids[ev["pid"].(float64)] = true
	}
	if metas == 0 {
		t.Fatal("no metadata events (process/thread names)")
	}
	if spans < 4 { // step, chunk, flight, recv
		t.Fatalf("spans = %d, want >= 4", spans)
	}
	if flowS != 1 || flowF != 1 {
		t.Fatalf("flow events s=%d f=%d, want 1/1", flowS, flowF)
	}
	if !pids[float64(VirtualPid)] || !pids[0] {
		t.Fatalf("expected rank-0 and virtual pids, got %v", pids)
	}
}

func TestMergedSnapshot(t *testing.T) {
	g := NewGroup(2)
	g.Rank(0).Metrics().Counter("c").Add(1)
	g.Rank(1).Metrics().Counter("c").Add(2)
	s := g.MergedSnapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 3 {
		t.Fatalf("merged snapshot wrong: %+v", s.Counters)
	}
}

func TestPortHistogramHelper(t *testing.T) {
	g := NewGroup(1)
	h := g.Rank(0).PortHistogram("inst", "port", "Method")
	h.ObserveNs(100)
	if h.Count() != 1 {
		t.Fatal("PortHistogram did not record")
	}
}
