package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("steps_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("steps_total") != c {
		t.Fatal("Counter not idempotent: second lookup returned a different instance")
	}
	g := r.Gauge("dt_seconds")
	g.Set(1e-7)
	if got := g.Value(); got != 1e-7 {
		t.Fatalf("gauge = %g, want 1e-7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 1ns -> bucket index bits.Len64(1)=1; 1024ns -> index 11.
	h.ObserveNs(1)
	h.ObserveNs(1024)
	h.ObserveNs(-5) // clamps to 0 -> bucket 0
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot histograms = %d, want 1", len(s.Histograms))
	}
	hs := s.Histograms[0]
	var total uint64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("bucket counts sum to %d, want 3", total)
	}
	// Quantile must land on a bucket upper bound >= the observation.
	if q := hs.Quantile(1.0); q < 1024e-9 {
		t.Fatalf("p100 = %g, want >= 1024ns", q)
	}
	if m := hs.Mean(); m <= 0 {
		t.Fatalf("mean = %g, want > 0", m)
	}
}

func TestHistogramObserveSeconds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t")
	h.Observe(2e-6) // 2000 ns
	if got, want := h.SumSeconds(), 2e-6; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Histogram("h").ObserveNs(int64(i + 1))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

func TestSnapshotSortedAndMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("z").Add(1)
	a.Counter("a").Add(2)
	a.Gauge("g").Set(1)
	a.Histogram("h").ObserveNs(10)
	b.Counter("z").Add(3)
	b.Gauge("g").Set(2)
	b.Histogram("h").ObserveNs(20)

	sa := a.Snapshot()
	if sa.Counters[0].Name != "a" || sa.Counters[1].Name != "z" {
		t.Fatalf("snapshot counters not sorted: %+v", sa.Counters)
	}

	m := Merge(sa, b.Snapshot())
	byName := map[string]uint64{}
	for _, c := range m.Counters {
		byName[c.Name] = c.Value
	}
	if byName["z"] != 4 || byName["a"] != 2 {
		t.Fatalf("merged counters wrong: %v", byName)
	}
	if m.Gauges[0].Value != 2 {
		t.Fatalf("merged gauge = %g, want last-wins 2", m.Gauges[0].Value)
	}
	if m.Histograms[0].Count != 2 {
		t.Fatalf("merged hist count = %d, want 2", m.Histograms[0].Count)
	}
}

func TestPrometheusAndJSONExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps_total").Add(3)
	r.Histogram(PortCallName("flame", "rhs", "EvalPatch")).ObserveNs(500)

	var prom bytes.Buffer
	r.Snapshot().WritePrometheus(&prom)
	text := prom.String()
	for _, want := range []string{
		"# TYPE steps_total counter",
		"steps_total 3",
		"# TYPE port_call_seconds histogram",
		`instance="flame"`,
		`le="+Inf"`,
		"port_call_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}

	var js bytes.Buffer
	if err := r.Snapshot().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v", err)
	}
}

func TestPortCallNameAndCallTable(t *testing.T) {
	name := PortCallName("driver", "mesh", "Regrid")
	if want := `port_call_seconds{instance="driver",port="mesh",method="Regrid"}`; name != want {
		t.Fatalf("PortCallName = %q, want %q", name, want)
	}
	r := NewRegistry()
	r.Histogram(name).ObserveNs(1000)
	var buf bytes.Buffer
	r.Snapshot().WriteCallTable(&buf)
	out := buf.String()
	if !strings.Contains(out, "driver") || !strings.Contains(out, "Regrid") {
		t.Fatalf("call table missing entries:\n%s", out)
	}
}
