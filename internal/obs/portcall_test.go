package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// With no policy installed, every observation is recorded — the default
// must behave exactly like the pre-sampling interceptor.
func TestPortCallRecordsAllByDefault(t *testing.T) {
	g := NewGroup(1)
	o := g.Rank(0)
	pc := o.PortCall("chem", "rates", "Rates")
	for i := 0; i < 100; i++ {
		pc.ObserveSince(time.Now())
	}
	if got := o.PortHistogram("chem", "rates", "Rates").Count(); got != 100 {
		t.Fatalf("recorded %d/100 calls", got)
	}
	if got := o.PortCallDropped(); got != 0 {
		t.Fatalf("dropped %d calls with no policy", got)
	}
}

// 1-in-N sampling: recorded + dropped must equal the true call volume.
func TestPortCallSamplingKeepsTotalsHonest(t *testing.T) {
	g := NewGroup(1)
	o := g.Rank(0)
	o.SetPortCallSampling(10, 0)
	pc := o.PortCall("chem", "rates", "Rates")
	const calls = 1000
	for i := 0; i < calls; i++ {
		pc.ObserveSince(time.Now())
	}
	rec := o.PortHistogram("chem", "rates", "Rates").Count()
	drop := o.PortCallDropped()
	if rec != calls/10 {
		t.Fatalf("recorded %d calls, want %d", rec, calls/10)
	}
	if rec+drop != calls {
		t.Fatalf("recorded %d + dropped %d != %d issued", rec, drop, calls)
	}
}

// The latency floor discards fast calls and keeps slow ones.
func TestPortCallLatencyFloor(t *testing.T) {
	g := NewGroup(1)
	o := g.Rank(0)
	o.SetPortCallSampling(0, 5*time.Millisecond)
	pc := o.PortCall("solver", "integrator", "Solve")
	pc.ObserveSince(time.Now())                             // ~0s: under the floor
	pc.ObserveSince(time.Now().Add(-20 * time.Millisecond)) // over it
	if got := o.PortHistogram("solver", "integrator", "Solve").Count(); got != 1 {
		t.Fatalf("recorded %d calls, want 1 (floor should drop the fast one)", got)
	}
	if got := o.PortCallDropped(); got != 1 {
		t.Fatalf("dropped %d calls, want 1", got)
	}
	// Clearing the policy records everything again.
	o.SetPortCallSampling(0, 0)
	pc.ObserveSince(time.Now())
	if got := o.PortHistogram("solver", "integrator", "Solve").Count(); got != 2 {
		t.Fatalf("recorded %d calls after clearing policy, want 2", got)
	}
}

// Nil receivers must stay no-ops (the disabled-observability path).
func TestPortCallNilSafe(t *testing.T) {
	var o *Obs
	pc := o.PortCall("a", "b", "c")
	pc.ObserveSince(time.Now())
	o.SetPortCallSampling(4, time.Millisecond)
	if o.PortCallDropped() != 0 {
		t.Fatal("nil Obs dropped calls")
	}
}

// Spill streaming: in-memory growth stays bounded by the shard cap and
// the merged trace still contains every event.
func TestTracerSpillBoundsMemory(t *testing.T) {
	dir := t.TempDir()
	g := NewGroup(2)
	const shardCap = 16
	if err := g.StreamTo(dir, shardCap); err != nil {
		t.Fatalf("StreamTo: %v", err)
	}
	const perRank = 1000
	for r := 0; r < 2; r++ {
		tr := g.Rank(r).Tracer()
		for i := 0; i < perRank; i++ {
			tr.Emit(Event{Ph: 'i', Cat: "test", Name: fmt.Sprintf("e%d", i), Pid: -1, Tid: i % 3, Ts: float64(i)})
		}
	}
	for r := 0; r < 2; r++ {
		tr := g.Rank(r).Tracer()
		for i := range tr.sh {
			tr.sh[i].mu.Lock()
			n := len(tr.sh[i].evs)
			tr.sh[i].mu.Unlock()
			if n >= shardCap {
				t.Fatalf("rank %d shard %d holds %d events, cap %d", r, i, n, shardCap)
			}
		}
	}
	counts := g.EventCounts()
	if counts["test"] != 2*perRank {
		t.Fatalf("EventCounts[test] = %d, want %d", counts["test"], 2*perRank)
	}
	var buf bytes.Buffer
	if err := g.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var slices int
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "i" {
			slices++
		}
	}
	if slices != 2*perRank {
		t.Fatalf("trace holds %d instants, want %d", slices, 2*perRank)
	}
}

// Re-entering StreamTo (a restore reusing the trace dir) truncates the
// old segment instead of duplicating events.
func TestTracerSpillReopensCleanly(t *testing.T) {
	dir := t.TempDir()
	g := NewGroup(1)
	if err := g.StreamTo(dir, 4); err != nil {
		t.Fatal(err)
	}
	tr := g.Rank(0).Tracer()
	for i := 0; i < 100; i++ {
		tr.Emit(Event{Ph: 'i', Cat: "first", Name: "x", Pid: -1, Tid: 0, Ts: float64(i)})
	}
	// Fresh group over the same dir — the restored run.
	g2 := NewGroup(1)
	if err := g2.StreamTo(dir, 4); err != nil {
		t.Fatal(err)
	}
	tr2 := g2.Rank(0).Tracer()
	for i := 0; i < 10; i++ {
		tr2.Emit(Event{Ph: 'i', Cat: "second", Name: "y", Pid: -1, Tid: 0, Ts: float64(i)})
	}
	counts := g2.EventCounts()
	if counts["first"] != 0 || counts["second"] != 10 {
		t.Fatalf("restored trace counts %v, want only 10 'second' events", counts)
	}
}

// A tracer with streaming off behaves exactly as before (all in memory).
func TestTracerNoSpillUnchanged(t *testing.T) {
	g := NewGroup(1)
	tr := g.Rank(0).Tracer()
	for i := 0; i < 500; i++ {
		tr.Emit(Event{Ph: 'i', Cat: "mem", Name: "x", Pid: -1, Tid: 0, Ts: float64(i)})
	}
	if got := g.EventCounts()["mem"]; got != 500 {
		t.Fatalf("EventCounts = %d, want 500", got)
	}
}
