package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The tracer emits the Chrome trace-event JSON format (the "JSON Array
// Format"), loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
// Two process rows exist per run:
//
//   - pid = rank: wall-clock spans. tid 0 is the rank's driver
//     goroutine (SAMR phases nest there); tids 1..W are exec-pool
//     worker-chunk tracks.
//   - pid = VirtualPid: the simulated cluster. tid = world rank is that
//     rank's virtual clock; message-flight slices live there, and flow
//     events ("s"/"f") tie every halo-exchange post to its completion
//     across rank tracks.
//
// Wall and virtual rows use a shared microsecond axis (wall spans since
// the group origin; virtual events at virtual-clock time), so the two
// never share a track but both render on one timeline.

// VirtualPid is the pid of the simulated-cluster process row.
const VirtualPid = 9999

// traceShards bounds tracer lock contention: events are appended under
// a per-shard mutex chosen by track id.
const traceShards = 8

// Event is one trace event, pre-serialization.
type Event struct {
	Ph   byte   // 'X' complete, 'i' instant, 's'/'f' flow
	Cat  string // category ("samr", "exec", "halo", "rkc", ...)
	Name string
	Pid  int // -1 means "this tracer's rank pid"
	Tid  int
	Ts   float64 // microseconds
	Dur  float64 // microseconds, 'X' only
	ID   uint64  // flow binding, 's'/'f' only
}

type traceShard struct {
	mu  sync.Mutex
	evs []Event
}

// EventSink receives a copy of every event a Tracer records. The live
// telemetry plane's flight recorder implements it to keep the most
// recent spans available for post-mortem dumps. Implementations must
// be cheap and non-blocking — they run inline on every Emit.
type EventSink interface {
	TraceEvent(Event)
}

// Tracer is one rank's event sink. The zero value is not usable;
// tracers are created by NewGroup. A nil *Tracer is safe to call —
// every method is a no-op — so instrumentation sites need no guards
// beyond the pointer they already hold.
type Tracer struct {
	g    *Group
	rank int
	sh   [traceShards]traceShard

	// sink, when set, is teed a copy of every event (see EventSink).
	sink atomic.Pointer[EventSink]

	// Spill streaming (see StreamTo): when spillCap > 0, any shard
	// reaching that many buffered events is flushed to the spill file as
	// JSON lines, bounding in-memory growth on long runs.
	spillCap atomic.Int64
	spill    struct {
		mu   sync.Mutex
		path string
		f    *os.File
		enc  *json.Encoder
		err  error
	}
}

// Rank returns the rank this tracer records for.
func (t *Tracer) Rank() int { return t.rank }

// nowUs returns wall microseconds since the group origin.
func (t *Tracer) nowUs() float64 {
	return float64(time.Since(t.g.origin).Nanoseconds()) / 1e3
}

// Emit appends one event. Safe for concurrent use. With spill streaming
// enabled, a shard that reaches the cap hands its buffer to the spill
// file outside the shard lock, so concurrent emitters on other tracks
// never stall behind the disk.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	if ev.Pid < 0 {
		ev.Pid = t.rank
	}
	if sp := t.sink.Load(); sp != nil {
		(*sp).TraceEvent(ev)
	}
	s := &t.sh[uint(ev.Tid)%traceShards]
	var flush []Event
	s.mu.Lock()
	s.evs = append(s.evs, ev)
	if limit := t.spillCap.Load(); limit > 0 && int64(len(s.evs)) >= limit {
		flush = s.evs
		s.evs = nil
	}
	s.mu.Unlock()
	if flush != nil {
		t.spillOut(flush)
	}
}

// SetSink installs (or, with nil, removes) the tee that receives a
// copy of every emitted event. Install before instrumented code runs;
// the swap itself is atomic but events emitted concurrently with the
// swap may go to either sink.
func (t *Tracer) SetSink(sink EventSink) {
	if t == nil {
		return
	}
	if sink == nil {
		t.sink.Store(nil)
		return
	}
	t.sink.Store(&sink)
}

// spillOut appends a batch of events to the spill file.
func (t *Tracer) spillOut(evs []Event) {
	t.spill.mu.Lock()
	defer t.spill.mu.Unlock()
	if t.spill.f == nil {
		return
	}
	for i := range evs {
		if err := t.spill.enc.Encode(&evs[i]); err != nil {
			if t.spill.err == nil {
				t.spill.err = err
			}
			return
		}
	}
}

// streamTo (re)opens the tracer's spill file, truncating any previous
// segment — a restore that reuses a trace directory starts clean.
func (t *Tracer) streamTo(path string, shardCap int) error {
	if t == nil {
		return nil
	}
	if shardCap < 1 {
		shardCap = 1
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	t.spill.mu.Lock()
	if t.spill.f != nil {
		t.spill.f.Close()
	}
	t.spill.path = path
	t.spill.f = f
	t.spill.enc = json.NewEncoder(f)
	t.spill.err = nil
	t.spill.mu.Unlock()
	t.spillCap.Store(int64(shardCap))
	return nil
}

// spillEvents reads back everything flushed to the spill file so far.
func (t *Tracer) spillEvents() ([]Event, error) {
	t.spill.mu.Lock()
	defer t.spill.mu.Unlock()
	if t.spill.f == nil {
		return nil, t.spill.err
	}
	data, err := os.ReadFile(t.spill.path)
	if err != nil {
		return nil, err
	}
	var out []Event
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
	return out, t.spill.err
}

var nop = func() {}

// Span opens a wall-clock span on the driver track (tid 0) and returns
// the closure that closes it. Nil-safe: a nil tracer returns a shared
// no-op closure without allocating.
func (t *Tracer) Span(cat, name string) func() {
	return t.SpanTid(0, cat, name)
}

// SpanTid opens a wall-clock span on an explicit track.
func (t *Tracer) SpanTid(tid int, cat, name string) func() {
	if t == nil {
		return nop
	}
	start := t.nowUs()
	return func() {
		t.Emit(Event{Ph: 'X', Cat: cat, Name: name, Pid: -1, Tid: tid, Ts: start, Dur: t.nowUs() - start})
	}
}

// Instant drops a point marker on a track.
func (t *Tracer) Instant(tid int, cat, name string) {
	if t == nil {
		return
	}
	t.Emit(Event{Ph: 'i', Cat: cat, Name: name, Pid: -1, Tid: tid, Ts: t.nowUs()})
}

// NextFlowID allocates a group-unique flow id; the sender stamps it on
// the message and the receiver's completion closes the arrow.
func (t *Tracer) NextFlowID() uint64 {
	if t == nil {
		return 0
	}
	return t.g.flowID.Add(1)
}

// VirtualSend records a message entering flight on the virtual-cluster
// row: a flight slice [postSec, postSec+costSec] on the sender's clock
// track plus the flow start that the receiver's VirtualRecv closes.
// cat classifies the traffic ("halo", "coll", "p2p").
func (t *Tracer) VirtualSend(id uint64, cat string, srcRank, dstRank int, postSec, costSec float64, words int) {
	if t == nil {
		return
	}
	ts := postSec * 1e6
	name := fmt.Sprintf("msg->r%d (%dw)", dstRank, words)
	t.Emit(Event{Ph: 'X', Cat: cat, Name: name, Pid: VirtualPid, Tid: srcRank, Ts: ts, Dur: costSec * 1e6})
	t.Emit(Event{Ph: 's', Cat: cat, Name: "flight", Pid: VirtualPid, Tid: srcRank, Ts: ts, ID: id})
}

// VirtualRecv records a message completion on the receiver's virtual
// clock track and closes the flow arrow opened by VirtualSend.
func (t *Tracer) VirtualRecv(id uint64, cat string, rank int, atSec float64, words int) {
	if t == nil {
		return
	}
	ts := atSec * 1e6
	name := fmt.Sprintf("recv (%dw)", words)
	t.Emit(Event{Ph: 'X', Cat: cat, Name: name, Pid: VirtualPid, Tid: rank, Ts: ts, Dur: 1})
	t.Emit(Event{Ph: 'f', Cat: cat, Name: "flight", Pid: VirtualPid, Tid: rank, Ts: ts, ID: id})
}

// events returns a copy of everything recorded so far: the spilled
// prefix (when streaming) followed by the in-memory residue.
func (t *Tracer) events() []Event {
	out, _ := t.spillEvents()
	for i := range t.sh {
		s := &t.sh[i]
		s.mu.Lock()
		out = append(out, s.evs...)
		s.mu.Unlock()
	}
	return out
}

// SpillError reports the first spill-write failure, if any.
func (t *Tracer) SpillError() error {
	if t == nil {
		return nil
	}
	t.spill.mu.Lock()
	defer t.spill.mu.Unlock()
	return t.spill.err
}

// Obs is one rank's observability session: the shared-origin tracer
// plus a private metrics registry. Components reach it through
// cca.Services.Observability(); a nil *Obs means "disabled" and every
// hot path must check exactly that one pointer.
type Obs struct {
	rank int
	reg  *Registry
	tr   *Tracer

	// callPol is the port-call sampling policy (nil records all) and
	// dropped caches its discard counter; see portcall.go.
	callPol atomic.Pointer[portCallPolicy]
	dropped atomic.Pointer[Counter]
}

// Rank returns the session's rank.
func (o *Obs) Rank() int { return o.rank }

// Metrics returns the rank's registry (nil on a nil session).
func (o *Obs) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the rank's tracer (nil on a nil session, and nil
// tracers are themselves no-ops).
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tr
}

// Span forwards to the tracer's driver-track span; nil-safe.
func (o *Obs) Span(cat, name string) func() {
	if o == nil {
		return nop
	}
	return o.tr.Span(cat, name)
}

// PortHistogram returns the interceptor histogram of one (instance,
// port, method) triple.
func (o *Obs) PortHistogram(instance, port, method string) *Histogram {
	return o.reg.Histogram(PortCallName(instance, port, method))
}

// Group is one job's observability: a session per rank, one time
// origin, one flow-id space. Rank 0's WriteTrace merges every rank's
// events into one Perfetto-loadable file (the in-process analogue of
// the per-rank trace files an MPI job would gather to rank 0).
type Group struct {
	origin time.Time
	ranks  []*Obs
	flowID atomic.Uint64
}

// NewGroup creates sessions for n ranks sharing one origin.
func NewGroup(n int) *Group {
	g := &Group{origin: time.Now()}
	for r := 0; r < n; r++ {
		tr := &Tracer{g: g, rank: r}
		g.ranks = append(g.ranks, &Obs{rank: r, reg: NewRegistry(), tr: tr})
	}
	return g
}

// Size returns the rank count.
func (g *Group) Size() int { return len(g.ranks) }

// Rank returns rank r's session.
func (g *Group) Rank(r int) *Obs { return g.ranks[r] }

// StreamTo enables incremental trace streaming: each rank spills any
// event shard that reaches shardCap buffered events to
// dir/trace-spill-r<rank>.jsonl, bounding in-memory trace growth on
// long runs. Existing spill segments are truncated, so a restarted or
// checkpoint-restored run reopens its trace cleanly. WriteTrace merges
// the spilled prefix with the in-memory residue transparently.
func (g *Group) StreamTo(dir string, shardCap int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, o := range g.ranks {
		path := filepath.Join(dir, fmt.Sprintf("trace-spill-r%d.jsonl", o.tr.rank))
		if err := o.tr.streamTo(path, shardCap); err != nil {
			return err
		}
	}
	return nil
}

// MergedSnapshot merges every rank's metrics registry.
func (g *Group) MergedSnapshot() Snapshot {
	snaps := make([]Snapshot, len(g.ranks))
	for i, o := range g.ranks {
		snaps[i] = o.reg.Snapshot()
	}
	return Merge(snaps...)
}

// EventCounts returns the number of recorded trace events per category,
// summed over ranks — the deterministic face of a trace (timestamps
// are host wall or virtual clock; counts are fixed by the algorithm).
func (g *Group) EventCounts() map[string]int {
	out := map[string]int{}
	for _, o := range g.ranks {
		for _, ev := range o.tr.events() {
			out[o.tr.catKey(ev)]++
		}
	}
	return out
}

// catKey labels an event for counting: category, with flow phases
// split out so "s"/"f" balance is visible.
func (t *Tracer) catKey(ev Event) string {
	switch ev.Ph {
	case 's':
		return ev.Cat + ".flow.s"
	case 'f':
		return ev.Cat + ".flow.f"
	}
	return ev.Cat
}

// jsonEvent is the wire form of one trace event.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   *uint64        `json:"id,omitempty"`
	Bp   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTrace merges all ranks' events into one Chrome trace-event JSON
// document, with process/thread metadata naming every track.
func (g *Group) WriteTrace(w io.Writer) error {
	var evs []Event
	for _, o := range g.ranks {
		if err := o.tr.SpillError(); err != nil {
			return fmt.Errorf("obs: rank %d trace spill failed: %w", o.tr.rank, err)
		}
		evs = append(evs, o.tr.events()...)
	}
	// Stable order: by (pid, tid, ts, phase) so regenerating an
	// identical run yields an identical file modulo timestamps.
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].Pid != evs[b].Pid {
			return evs[a].Pid < evs[b].Pid
		}
		if evs[a].Tid != evs[b].Tid {
			return evs[a].Tid < evs[b].Tid
		}
		return evs[a].Ts < evs[b].Ts
	})

	type track struct{ pid, tid int }
	tracks := map[track]bool{}
	pids := map[int]bool{}
	for _, ev := range evs {
		tracks[track{ev.Pid, ev.Tid}] = true
		pids[ev.Pid] = true
	}

	var out []jsonEvent
	meta := func(pid, tid int, name, label string) {
		out = append(out, jsonEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": label}})
	}
	var pidList []int
	for pid := range pids {
		pidList = append(pidList, pid)
	}
	sort.Ints(pidList)
	for _, pid := range pidList {
		if pid == VirtualPid {
			meta(pid, 0, "process_name", "virtual cluster (MPI clock)")
		} else {
			meta(pid, 0, "process_name", fmt.Sprintf("rank %d", pid))
		}
	}
	var trackList []track
	for tk := range tracks {
		trackList = append(trackList, tk)
	}
	sort.Slice(trackList, func(a, b int) bool {
		if trackList[a].pid != trackList[b].pid {
			return trackList[a].pid < trackList[b].pid
		}
		return trackList[a].tid < trackList[b].tid
	})
	for _, tk := range trackList {
		switch {
		case tk.pid == VirtualPid:
			meta(tk.pid, tk.tid, "thread_name", fmt.Sprintf("rank %d clock", tk.tid))
		case tk.tid == 0:
			meta(tk.pid, tk.tid, "thread_name", "driver")
		default:
			meta(tk.pid, tk.tid, "thread_name", fmt.Sprintf("worker %d", tk.tid-1))
		}
	}

	for _, ev := range evs {
		je := jsonEvent{Name: ev.Name, Cat: ev.Cat, Ph: string(ev.Ph), Ts: ev.Ts, Pid: ev.Pid, Tid: ev.Tid}
		switch ev.Ph {
		case 'X':
			d := ev.Dur
			if d <= 0 {
				d = 0.1 // zero-width slices are dropped by viewers
			}
			je.Dur = &d
		case 's':
			id := ev.ID
			je.ID = &id
		case 'f':
			id := ev.ID
			je.ID = &id
			je.Bp = "e" // bind to the enclosing slice at the arrow head
		case 'i':
			je.Args = map[string]any{"s": "t"}
		}
		out = append(out, je)
	}
	doc := map[string]any{"traceEvents": out, "displayTimeUnit": "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
