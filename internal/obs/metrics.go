// Package obs is the framework-level observability layer: a lock-cheap
// sharded metrics registry (counters, gauges, latency histograms with
// fixed log-spaced buckets) and a Chrome-trace-event tracer that the
// cca port-call interceptor, the exec worker pool, the mpi substrate,
// and the SAMR phase drivers all feed. It is a leaf package — only the
// standard library — so every layer of the stack may import it.
//
// The paper's future-work item (4) plans to "characterize the
// performance characteristics of individual components and their
// assemblies" with TAU; this package is the framework-side half of that
// plan: instrumentation lives on the wires and in the substrate, not
// inside components, so any assembly is observable without changing a
// single component (the FLASH/Cactus argument for framework-level
// instrumentation).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// nShards is the registry shard count. Get-or-create calls hash the
// metric name onto a shard; observation hot paths never touch a shard
// lock (instruments are held by pointer and update with atomics).
const nShards = 16

// histBuckets is the fixed bucket count of every histogram: bucket k
// holds observations whose duration in nanoseconds n satisfies
// bits.Len64(n) == k, i.e. n in [2^(k-1), 2^k). Bucket 0 is exactly
// zero. 64 log2-spaced buckets cover 1 ns .. ~292 years.
const histBuckets = 65

// Counter is a monotonically increasing count.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates durations into fixed log2-spaced buckets. All
// methods are safe for concurrent use and allocation-free: one atomic
// add per bucket, count, and sum.
type Histogram struct {
	name    string
	count   atomic.Uint64
	sumNs   atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration in seconds.
func (h *Histogram) Observe(seconds float64) {
	h.ObserveNs(int64(seconds * 1e9))
}

// ObserveNs records one duration in nanoseconds.
func (h *Histogram) ObserveNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumSeconds returns the total observed time.
func (h *Histogram) SumSeconds() float64 { return float64(h.sumNs.Load()) / 1e9 }

// bucketUpperSeconds is the inclusive upper bound of bucket k.
func bucketUpperSeconds(k int) float64 {
	if k == 0 {
		return 0
	}
	return math.Ldexp(1, k) / 1e9 // 2^k ns
}

// regShard is one lock domain of the registry.
type regShard struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Registry is the sharded instrument store. Get-or-create by name is
// the only locked path; returned instruments are updated lock-free.
type Registry struct {
	shards [nShards]regShard
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		s := &r.shards[i]
		s.counters = make(map[string]*Counter)
		s.gauges = make(map[string]*Gauge)
		s.hists = make(map[string]*Histogram)
	}
	return r
}

// shardOf hashes a name onto its shard (FNV-1a).
func (r *Registry) shardOf(name string) *regShard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &r.shards[h%nShards]
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	s := r.shardOf(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{name: name}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	s := r.shardOf(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Names may carry a Prometheus label block: `base{k="v",...}`.
func (r *Registry) Histogram(name string) *Histogram {
	s := r.shardOf(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hists[name]
	if !ok {
		h = &Histogram{name: name}
		s.hists[name] = h
	}
	return h
}

// CounterSnapshot is one counter's frozen state.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnapshot is one gauge's frozen state.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketCount is one non-empty histogram bucket: Count observations at
// most UpperSeconds long (and longer than the previous bucket's bound).
type BucketCount struct {
	UpperSeconds float64 `json:"le"`
	Count        uint64  `json:"count"`
}

// HistogramSnapshot is one histogram's frozen state. Buckets holds only
// the non-empty buckets, in increasing bound order.
type HistogramSnapshot struct {
	Name       string        `json:"name"`
	Count      uint64        `json:"count"`
	SumSeconds float64       `json:"sumSeconds"`
	Buckets    []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the average observation in seconds.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumSeconds / float64(h.Count)
}

// Quantile interpolates the q-quantile (q in [0,1]) from the log-spaced
// buckets: the answer is geometric within the containing bucket, so it
// is an order-of-magnitude estimate, which is what latency histograms
// are for.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := q * float64(h.Count)
	var cum float64
	for _, b := range h.Buckets {
		cum += float64(b.Count)
		if cum >= target {
			return b.UpperSeconds
		}
	}
	return h.Buckets[len(h.Buckets)-1].UpperSeconds
}

// Snapshot is a frozen, name-sorted view of a registry (or a merge of
// several — see Merge).
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry. Concurrent observations may or may not
// be included; each instrument's (count, sum, buckets) triple is read
// without a global lock, so a snapshot taken while observations are in
// flight is approximate — taken at quiescence it is exact.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for name, c := range s.counters {
			snap.Counters = append(snap.Counters, CounterSnapshot{Name: name, Value: c.Value()})
		}
		for name, g := range s.gauges {
			snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
		}
		for name, h := range s.hists {
			hs := HistogramSnapshot{Name: name, Count: h.Count(), SumSeconds: h.SumSeconds()}
			for k := 0; k < histBuckets; k++ {
				if n := h.buckets[k].Load(); n > 0 {
					hs.Buckets = append(hs.Buckets, BucketCount{UpperSeconds: bucketUpperSeconds(k), Count: n})
				}
			}
			snap.Histograms = append(snap.Histograms, hs)
		}
		s.mu.Unlock()
	}
	sort.Slice(snap.Counters, func(a, b int) bool { return snap.Counters[a].Name < snap.Counters[b].Name })
	sort.Slice(snap.Gauges, func(a, b int) bool { return snap.Gauges[a].Name < snap.Gauges[b].Name })
	sort.Slice(snap.Histograms, func(a, b int) bool { return snap.Histograms[a].Name < snap.Histograms[b].Name })
	return snap
}

// Merge combines per-rank snapshots into one: counters and histogram
// (count, sum, buckets) add; gauges keep the last rank's value.
func Merge(snaps ...Snapshot) Snapshot {
	ctr := map[string]uint64{}
	gau := map[string]float64{}
	his := map[string]*HistogramSnapshot{}
	for _, s := range snaps {
		for _, c := range s.Counters {
			ctr[c.Name] += c.Value
		}
		for _, g := range s.Gauges {
			gau[g.Name] = g.Value
		}
		for _, h := range s.Histograms {
			m, ok := his[h.Name]
			if !ok {
				m = &HistogramSnapshot{Name: h.Name}
				his[h.Name] = m
			}
			m.Count += h.Count
			m.SumSeconds += h.SumSeconds
			for _, b := range h.Buckets {
				found := false
				for i := range m.Buckets {
					if m.Buckets[i].UpperSeconds == b.UpperSeconds {
						m.Buckets[i].Count += b.Count
						found = true
						break
					}
				}
				if !found {
					m.Buckets = append(m.Buckets, b)
				}
			}
		}
	}
	var out Snapshot
	for n, v := range ctr {
		out.Counters = append(out.Counters, CounterSnapshot{Name: n, Value: v})
	}
	for n, v := range gau {
		out.Gauges = append(out.Gauges, GaugeSnapshot{Name: n, Value: v})
	}
	for _, h := range his {
		sort.Slice(h.Buckets, func(a, b int) bool { return h.Buckets[a].UpperSeconds < h.Buckets[b].UpperSeconds })
		out.Histograms = append(out.Histograms, *h)
	}
	sort.Slice(out.Counters, func(a, b int) bool { return out.Counters[a].Name < out.Counters[b].Name })
	sort.Slice(out.Gauges, func(a, b int) bool { return out.Gauges[a].Name < out.Gauges[b].Name })
	sort.Slice(out.Histograms, func(a, b int) bool { return out.Histograms[a].Name < out.Histograms[b].Name })
	return out
}

// splitName separates `base{labels}` into base and the label block
// (including braces); names without labels return an empty block.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// joinLabels splices an extra label into an existing (possibly empty)
// label block.
func joinLabels(block, extra string) string {
	if block == "" {
		return "{" + extra + "}"
	}
	return block[:len(block)-1] + "," + extra + "}"
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (v0.0.4). Histogram buckets are cumulative, with a
// final +Inf bucket, as the format requires.
func (s Snapshot) WritePrometheus(w io.Writer) {
	for _, c := range s.Counters {
		base, labels := splitName(c.Name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", base, base, labels, c.Value)
	}
	for _, g := range s.Gauges {
		base, labels := splitName(g.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %g\n", base, base, labels, g.Value)
	}
	seenType := map[string]bool{}
	for _, h := range s.Histograms {
		base, labels := splitName(h.Name)
		if !seenType[base] {
			fmt.Fprintf(w, "# TYPE %s histogram\n", base)
			seenType[base] = true
		}
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(labels, fmt.Sprintf("le=%q", fmt.Sprintf("%g", b.UpperSeconds))), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(labels, `le="+Inf"`), h.Count)
		fmt.Fprintf(w, "%s_sum%s %g\n", base, labels, h.SumSeconds)
		fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count)
	}
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// PortCallBase is the base metric name of every interceptor histogram.
const PortCallBase = "port_call_seconds"

// labelEscaper escapes a Prometheus label value per the text
// exposition format: backslash, double quote, and newline.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// EscapeLabelValue escapes s for use inside a quoted Prometheus label
// value. The common no-escape case returns s unchanged, allocation-
// free.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	return labelEscaper.Replace(s)
}

// PortCallName builds the interceptor histogram name for one
// (instance, port, method) wire crossing. Label values are escaped,
// so foreign component names with quotes or backslashes cannot break
// the exposition format.
func PortCallName(instance, port, method string) string {
	return PortCallBase + `{instance="` + EscapeLabelValue(instance) +
		`",port="` + EscapeLabelValue(port) +
		`",method="` + EscapeLabelValue(method) + `"}`
}

// WriteCallTable renders the interceptor's port-call histograms as a
// human-readable table sorted by descending total time — the `-obs`
// summary and the direct re-measurement of the paper's Table 4
// component-call overhead.
func (s Snapshot) WriteCallTable(w io.Writer) {
	type row struct {
		labels string
		h      HistogramSnapshot
	}
	var rows []row
	for _, h := range s.Histograms {
		base, labels := splitName(h.Name)
		if base != PortCallBase {
			continue
		}
		rows = append(rows, row{labels: strings.Trim(labels, "{}"), h: h})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].h.SumSeconds != rows[b].h.SumSeconds {
			return rows[a].h.SumSeconds > rows[b].h.SumSeconds
		}
		return rows[a].labels < rows[b].labels
	})
	fmt.Fprintf(w, "%-64s %10s %12s %14s %12s\n", "port call", "calls", "total (s)", "mean (s)", "p99 (<=s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-64s %10d %12.6f %14.3e %12.3e\n",
			r.labels, r.h.Count, r.h.SumSeconds, r.h.Mean(), r.h.Quantile(0.99))
	}
}
