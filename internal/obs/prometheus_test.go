package obs

import (
	"strings"
	"testing"
)

// The Prometheus text exporter was previously exercised only through
// end-to-end runs; these tests pin its format contract directly:
// escaping, histogram bucket cumulativity, and deterministic ordering.

func promText(r *Registry) string {
	var sb strings.Builder
	r.Snapshot().WritePrometheus(&sb)
	return sb.String()
}

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`say "hi"`, `say \"hi\"`},
		{"two\nlines", `two\nlines`},
		{`all\"` + "\n", `all\\\"\n`},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPortCallNameEscapes(t *testing.T) {
	name := PortCallName(`drv"er`, "go", "Go")
	want := PortCallBase + `{instance="drv\"er",port="go",method="Go"}`
	if name != want {
		t.Fatalf("PortCallName = %q, want %q", name, want)
	}
}

func TestWritePrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`latency_seconds{op="x"}`)
	h.Observe(1e-6) // tiny bucket
	h.Observe(1e-6)
	h.Observe(0.5) // much larger bucket
	out := promText(r)

	if !strings.Contains(out, "# TYPE latency_seconds histogram\n") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	// Bucket lines must be cumulative and end with +Inf == count.
	var lines []string
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "latency_seconds_bucket") {
			lines = append(lines, ln)
		}
	}
	if len(lines) < 3 {
		t.Fatalf("want >= 3 bucket lines (2 finite + +Inf), got %d:\n%s", len(lines), out)
	}
	wantCum := []string{" 2", " 3", " 3"} // 2 tiny, then 2+1 cumulative, then +Inf
	for i, ln := range lines {
		if !strings.HasSuffix(ln, wantCum[i]) {
			t.Fatalf("bucket line %d = %q, want suffix %q", i, ln, wantCum[i])
		}
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `le="+Inf"`) {
		t.Fatalf("last bucket is not +Inf: %q", last)
	}
	if !strings.Contains(out, `latency_seconds_count{op="x"} 3`) {
		t.Fatalf("missing _count line:\n%s", out)
	}
	if !strings.Contains(out, `latency_seconds_sum{op="x"}`) {
		t.Fatalf("missing _sum line:\n%s", out)
	}
	// The le label must splice into the existing block, not replace it.
	if !strings.Contains(lines[0], `{op="x",le="`) {
		t.Fatalf("le label not spliced into label block: %q", lines[0])
	}
}

func TestWritePrometheusTypeLineDeduped(t *testing.T) {
	r := NewRegistry()
	r.Histogram(PortCallName("a", "p", "m")).Observe(1e-6)
	r.Histogram(PortCallName("b", "p", "m")).Observe(1e-6)
	out := promText(r)
	if n := strings.Count(out, "# TYPE "+PortCallBase+" histogram"); n != 1 {
		t.Fatalf("TYPE line emitted %d times for one base name, want 1:\n%s", n, out)
	}
}

func TestWritePrometheusDeterministicOrdering(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, n := range order {
			r.Counter("c_" + n).Inc()
			r.Gauge("g_" + n).Set(1)
			r.Histogram("h_" + n).Observe(1e-3)
		}
		return promText(r)
	}
	a := build([]string{"z", "m", "a"})
	b := build([]string{"a", "z", "m"})
	if a != b {
		t.Fatalf("output depends on registration order:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	// And names appear sorted within each instrument family.
	iz := strings.Index(a, "c_z")
	ia := strings.Index(a, "c_a")
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("counter names not sorted:\n%s", a)
	}
}
