package field

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"ccahydro/internal/amr"
	"ccahydro/internal/mpi"
)

func TestCheckpointRoundTripSerial(t *testing.T) {
	h := refinedHierarchy()
	d := New("phi", h, 3, 2, nil)
	d.Names = []string{"T", "Y0", "Y1"}
	// Paint recognizable data including ghosts.
	d.ForEachLocal(func(pd *PatchData) {
		g := pd.GrownBox()
		for c := 0; c < 3; c++ {
			for j := g.Lo[1]; j <= g.Hi[1]; j++ {
				for i := g.Lo[0]; i <= g.Hi[0]; i++ {
					pd.Set(c, i, j, float64(c*1000000+pd.Patch.ID*10000+(i+100)*100+(j+100)))
				}
			}
		}
	})

	var buf bytes.Buffer
	if err := d.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadCheckpoint(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != "phi" || d2.NComp != 3 || d2.Ghost != 2 || len(d2.Names) != 3 {
		t.Fatalf("header mismatch: %+v", d2)
	}
	if d2.Hierarchy().NumLevels() != h.NumLevels() {
		t.Fatalf("levels = %d", d2.Hierarchy().NumLevels())
	}
	// Every cell (ghosts included) must match.
	d.ForEachLocal(func(pd *PatchData) {
		pd2 := d2.Local(pd.Patch.ID)
		if pd2 == nil {
			t.Fatalf("patch %d missing after restart", pd.Patch.ID)
		}
		g := pd.GrownBox()
		for c := 0; c < 3; c++ {
			for j := g.Lo[1]; j <= g.Hi[1]; j++ {
				for i := g.Lo[0]; i <= g.Hi[0]; i++ {
					if pd2.At(c, i, j) != pd.At(c, i, j) {
						t.Fatalf("patch %d c=%d (%d,%d): %v != %v",
							pd.Patch.ID, c, i, j, pd2.At(c, i, j), pd.At(c, i, j))
					}
				}
			}
		}
	})
}

func TestCheckpointParallelShards(t *testing.T) {
	// Each rank writes its shard; a fresh cohort restarts from them and
	// the reassembled data matches.
	shards := make([][]byte, 4)
	var mu sync.Mutex
	mpi.Run(4, mpi.ZeroModel, func(comm *mpi.Comm) {
		h := amr.NewHierarchy(amr.NewBox(0, 0, 31, 31), 2, 1, 4)
		d := New("u", h, 2, 1, comm)
		for _, pd := range d.LocalPatches(0) {
			pd.FillAll(float64(comm.Rank() + 1))
		}
		var buf bytes.Buffer
		if err := d.WriteCheckpoint(&buf); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		shards[comm.Rank()] = buf.Bytes()
		mu.Unlock()
	})
	// Restart on a fresh 4-rank cohort.
	mpi.Run(4, mpi.ZeroModel, func(comm *mpi.Comm) {
		d, err := ReadCheckpoint(bytes.NewReader(shards[comm.Rank()]), comm)
		if err != nil {
			t.Error(err)
			return
		}
		for _, pd := range d.LocalPatches(0) {
			b := pd.Interior()
			if got := pd.At(0, b.Lo[0], b.Lo[1]); got != float64(comm.Rank()+1) {
				t.Errorf("rank %d restored %v", comm.Rank(), got)
			}
		}
		// The restored object is live: a collective exchange works.
		d.ExchangeGhosts(0)
	})
}

func TestCheckpointRankMismatch(t *testing.T) {
	shards := make([][]byte, 2)
	var mu sync.Mutex
	mpi.Run(2, mpi.ZeroModel, func(comm *mpi.Comm) {
		h := amr.NewHierarchy(amr.NewBox(0, 0, 15, 15), 2, 1, 2)
		d := New("u", h, 1, 1, comm)
		var buf bytes.Buffer
		if err := d.WriteCheckpoint(&buf); err != nil {
			t.Error(err)
		}
		mu.Lock()
		shards[comm.Rank()] = buf.Bytes()
		mu.Unlock()
	})
	// Serial restart of a parallel checkpoint: rejected.
	if _, err := ReadCheckpoint(bytes.NewReader(shards[0]), nil); err == nil ||
		!strings.Contains(err.Error(), "needs a communicator") {
		t.Errorf("err = %v", err)
	}
	// Wrong-rank shard: rejected.
	mpi.Run(2, mpi.ZeroModel, func(comm *mpi.Comm) {
		other := (comm.Rank() + 1) % 2
		if _, err := ReadCheckpoint(bytes.NewReader(shards[other]), comm); err == nil {
			t.Errorf("rank %d accepted rank %d's shard", comm.Rank(), other)
		}
	})
	// Wrong cohort size: rejected.
	mpi.Run(4, mpi.ZeroModel, func(comm *mpi.Comm) {
		if comm.Rank() == 0 {
			if _, err := ReadCheckpoint(bytes.NewReader(shards[0]), comm); err == nil {
				t.Error("4-rank cohort accepted 2-rank checkpoint")
			}
		}
	})
}

func TestCheckpointGarbageInput(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("not a checkpoint"), nil); err == nil {
		t.Error("expected decode error")
	}
}
