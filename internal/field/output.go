package field

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"ccahydro/internal/amr"
)

// Field output: composite-grid samplers and writers for the paper's
// field figures (temperature frames of Fig 3, the density field of
// Fig 6). The composite view samples each coarse cell from the finest
// patch covering it, which is how SAMR plots are drawn.

// CompositeSample flattens one component onto the coarse (level-0)
// index space: every coarse cell takes the restricted average of the
// finest data covering it. Only locally owned data contributes; under
// SCMD each rank writes its own tile set, or the caller gathers first.
func (d *DataObject) CompositeSample(comp int) ([]float64, amr.Box) {
	domain := d.h.LevelDomain(0)
	nx, ny := domain.Size()
	out := make([]float64, nx*ny)
	filled := make([]int8, nx*ny) // finest level that wrote each cell, -1 none
	for i := range filled {
		filled[i] = -1
	}
	idx := func(i, j int) int { return (j-domain.Lo[1])*nx + (i - domain.Lo[0]) }

	for l := 0; l < d.h.NumLevels(); l++ {
		scale := 1
		for k := 0; k < l; k++ {
			scale *= d.h.Ratio
		}
		inv := 1.0 / float64(scale*scale)
		for _, pd := range d.LocalPatches(l) {
			b := pd.Interior()
			cbox := b.Coarsen(scale)
			for cj := cbox.Lo[1]; cj <= cbox.Hi[1]; cj++ {
				for ci := cbox.Lo[0]; ci <= cbox.Hi[0]; ci++ {
					if !domain.Contains(ci, cj) {
						continue
					}
					var sum float64
					count := 0
					for dj := 0; dj < scale; dj++ {
						for di := 0; di < scale; di++ {
							fi, fj := ci*scale+di, cj*scale+dj
							if b.Contains(fi, fj) {
								sum += pd.At(comp, fi, fj)
								count++
							}
						}
					}
					if count == 0 {
						continue
					}
					k := idx(ci, cj)
					if int8(l) >= filled[k] {
						if count == scale*scale {
							out[k] = sum * inv
						} else {
							out[k] = sum / float64(count)
						}
						filled[k] = int8(l)
					}
				}
			}
		}
	}
	return out, domain
}

// WriteCSV writes one component's composite view as comma-separated
// rows (row per y, increasing), headed by a comment line.
func (d *DataObject) WriteCSV(w io.Writer, comp int, label string) error {
	data, domain := d.CompositeSample(comp)
	nx, ny := domain.Size()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %s component %d, %dx%d composite view\n", d.Name, label, comp, nx, ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if i > 0 {
				if _, err := bw.WriteString(","); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%g", data[j*nx+i]); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePGM renders one component's composite view as a portable
// graymap (plain PGM, 8-bit), linearly mapped from [min, max] — a
// dependency-free way to eyeball the paper's field figures.
func (d *DataObject) WritePGM(w io.Writer, comp int) error {
	data, domain := d.CompositeSample(comp)
	nx, ny := domain.Size()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	scale := 0.0
	if hi > lo {
		scale = 255 / (hi - lo)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P2\n%d %d\n255\n", nx, ny)
	// PGM rows top-to-bottom: flip y so the image is oriented naturally.
	for j := ny - 1; j >= 0; j-- {
		for i := 0; i < nx; i++ {
			v := int((data[j*nx+i] - lo) * scale)
			if i > 0 {
				bw.WriteString(" ")
			}
			fmt.Fprintf(bw, "%d", v)
		}
		bw.WriteString("\n")
	}
	return bw.Flush()
}

// PatchMap renders the hierarchy's patch layout as ASCII art on the
// coarse index space (digit = finest level covering the cell) — a
// terminal rendering of the paper's Fig 4 patch-distribution plot.
func PatchMap(h *amr.Hierarchy, maxWidth int) string {
	domain := h.LevelDomain(0)
	nx, _ := domain.Size()
	step := 1
	if maxWidth > 0 && nx > maxWidth {
		step = (nx + maxWidth - 1) / maxWidth
	}
	var b []byte
	for j := domain.Hi[1]; j >= domain.Lo[1]; j -= step {
		for i := domain.Lo[0]; i <= domain.Hi[0]; i += step {
			finest := 0
			for l := 1; l < h.NumLevels(); l++ {
				scale := 1
				for k := 0; k < l; k++ {
					scale *= h.Ratio
				}
				covered := false
				for _, p := range h.Level(l).Patches {
					if p.Box.Coarsen(scale).Contains(i, j) {
						covered = true
						break
					}
				}
				if covered {
					finest = l
				}
			}
			b = append(b, byte('0'+finest))
		}
		b = append(b, '\n')
	}
	return string(b)
}
