// Package field implements the paper's Data Object subsystem: named,
// multi-component arrays declared on the patches of an AMR hierarchy,
// one array per patch, with ghost-cell exchange, coarse–fine transfer
// (prolongation/restriction), physical boundary fills, and data
// migration across regrids. Packing and unpacking of data before and
// after message passing — which the paper assigns to this subsystem —
// happens here, over the mpi substrate.
package field

import (
	"fmt"
	"math"
	"strconv"

	"ccahydro/internal/amr"
	"ccahydro/internal/mpi"
	"ccahydro/internal/obs"
)

// PatchData is the storage for one patch: NComp components over the
// patch box grown by Ghost cells, in component-major, row-major order.
type PatchData struct {
	Patch *amr.Patch
	NComp int
	Ghost int

	gbox   amr.Box
	nx, ny int // grown extents
	data   []float64
}

// NewPatchData allocates zeroed storage for a patch.
func NewPatchData(p *amr.Patch, ncomp, ghost int) *PatchData {
	g := p.Box.Grow(ghost)
	nx, ny := g.Size()
	return &PatchData{
		Patch: p, NComp: ncomp, Ghost: ghost,
		gbox: g, nx: nx, ny: ny,
		data: make([]float64, ncomp*nx*ny),
	}
}

// Interior returns the patch's interior box (no ghosts).
func (pd *PatchData) Interior() amr.Box { return pd.Patch.Box }

// GrownBox returns the storage box including ghost cells.
func (pd *PatchData) GrownBox() amr.Box { return pd.gbox }

func (pd *PatchData) idx(c, i, j int) int {
	return c*pd.nx*pd.ny + (j-pd.gbox.Lo[1])*pd.nx + (i - pd.gbox.Lo[0])
}

// At reads component c at cell (i, j); the cell must lie in the grown box.
func (pd *PatchData) At(c, i, j int) float64 { return pd.data[pd.idx(c, i, j)] }

// Set writes component c at cell (i, j).
func (pd *PatchData) Set(c, i, j int, v float64) { pd.data[pd.idx(c, i, j)] = v }

// Add accumulates into component c at cell (i, j).
func (pd *PatchData) Add(c, i, j int, v float64) { pd.data[pd.idx(c, i, j)] += v }

// Comp returns the raw plane of one component (row-major over the grown
// box); Stride returns the row stride for index arithmetic.
func (pd *PatchData) Comp(c int) []float64 {
	return pd.data[c*pd.nx*pd.ny : (c+1)*pd.nx*pd.ny]
}

// Stride is the row length of a component plane.
func (pd *PatchData) Stride() int { return pd.nx }

// Offset converts a (i, j) cell to a plane index.
func (pd *PatchData) Offset(i, j int) int {
	return (j-pd.gbox.Lo[1])*pd.nx + (i - pd.gbox.Lo[0])
}

// Fill sets every cell (including ghosts) of component c to v.
func (pd *PatchData) Fill(c int, v float64) {
	plane := pd.Comp(c)
	for i := range plane {
		plane[i] = v
	}
}

// FillAll sets every cell of every component to v.
func (pd *PatchData) FillAll(v float64) {
	for i := range pd.data {
		pd.data[i] = v
	}
}

// CopyRegion copies all components of region (cell coordinates shared
// by both patches' level) from src into pd.
func (pd *PatchData) CopyRegion(src *PatchData, region amr.Box) {
	r := region.Intersect(pd.gbox).Intersect(src.gbox)
	if r.Empty() {
		return
	}
	if src.NComp != pd.NComp {
		panic("field: component count mismatch in CopyRegion")
	}
	for c := 0; c < pd.NComp; c++ {
		for j := r.Lo[1]; j <= r.Hi[1]; j++ {
			srcRow := src.Comp(c)[src.Offset(r.Lo[0], j) : src.Offset(r.Hi[0], j)+1]
			dstRow := pd.Comp(c)[pd.Offset(r.Lo[0], j) : pd.Offset(r.Hi[0], j)+1]
			copy(dstRow, srcRow)
		}
	}
}

// pack serializes all components of region into a flat buffer.
func (pd *PatchData) pack(region amr.Box) []float64 {
	r := region.Intersect(pd.gbox)
	nx, ny := r.Size()
	buf := make([]float64, 0, pd.NComp*nx*ny)
	for c := 0; c < pd.NComp; c++ {
		for j := r.Lo[1]; j <= r.Hi[1]; j++ {
			row := pd.Comp(c)[pd.Offset(r.Lo[0], j) : pd.Offset(r.Hi[0], j)+1]
			buf = append(buf, row...)
		}
	}
	return buf
}

// packAppend serializes all components of region onto buf. Unlike pack
// it refuses out-of-storage regions instead of clipping: coalesced
// messages require sender and receiver to agree on exact sizes computed
// from replicated metadata.
func (pd *PatchData) packAppend(region amr.Box, buf []float64) []float64 {
	if !pd.gbox.ContainsBox(region) {
		panic(fmt.Sprintf("field: pack region %v outside storage %v", region, pd.gbox))
	}
	for c := 0; c < pd.NComp; c++ {
		for j := region.Lo[1]; j <= region.Hi[1]; j++ {
			row := pd.Comp(c)[pd.Offset(region.Lo[0], j) : pd.Offset(region.Hi[0], j)+1]
			buf = append(buf, row...)
		}
	}
	return buf
}

// unpack deserializes a buffer produced by pack over the same region.
func (pd *PatchData) unpack(region amr.Box, buf []float64) {
	r := region.Intersect(pd.gbox)
	nx, ny := r.Size()
	if len(buf) != pd.NComp*nx*ny {
		panic(fmt.Sprintf("field: unpack length %d != %d", len(buf), pd.NComp*nx*ny))
	}
	k := 0
	for c := 0; c < pd.NComp; c++ {
		for j := r.Lo[1]; j <= r.Hi[1]; j++ {
			row := pd.Comp(c)[pd.Offset(r.Lo[0], j) : pd.Offset(r.Hi[0], j)+1]
			copy(row, buf[k:k+nx])
			k += nx
		}
	}
}

// MaxAbs returns the max |value| of component c over the interior.
func (pd *PatchData) MaxAbs(c int) float64 {
	b := pd.Interior()
	var m float64
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			if v := math.Abs(pd.At(c, i, j)); v > m {
				m = v
			}
		}
	}
	return m
}

// DataObject is a named collection of per-patch arrays distributed over
// the hierarchy's ranks. Metadata (which patches exist, who owns them)
// is replicated; data exists only on the owner.
type DataObject struct {
	Name  string
	NComp int
	Ghost int
	// Names optionally labels components (diagnostics).
	Names []string

	h    *amr.Hierarchy
	comm *mpi.Comm // nil means serial
	rank int

	local map[int]*PatchData // patch ID -> data, owned patches only

	// sched caches the per-level ghost-exchange schedule; entries are
	// invalidated by hierarchy generation changes (regrids).
	sched          map[int]*ghostSchedule
	scheduleBuilds int

	// xsched caches the shadow-fill and restriction transfer schedules
	// per (phase, level), invalidated the same way.
	xsched     map[xferKey]*xferSchedule
	xferBuilds int

	// obs, when non-nil, receives spans for the object's exchange and
	// transfer phases. Every hot path guards on the pointer, so a nil
	// obs adds no work.
	obs *obs.Obs
}

// SetObs attaches an observability session to this object; transfers
// and ghost exchanges then emit tracer spans. nil detaches.
func (d *DataObject) SetObs(o *obs.Obs) { d.obs = o }

// spanName labels a per-level phase span without fmt overhead.
func spanName(op string, level int) string {
	return op + " L" + strconv.Itoa(level)
}

// New allocates a DataObject over h's current patches. comm may be nil
// for serial use; then all patches are local.
func New(name string, h *amr.Hierarchy, ncomp, ghost int, comm *mpi.Comm) *DataObject {
	d := &DataObject{
		Name: name, NComp: ncomp, Ghost: ghost,
		h: h, comm: comm,
		local: make(map[int]*PatchData),
	}
	if comm != nil {
		d.rank = comm.Rank()
	}
	d.allocate()
	return d
}

func (d *DataObject) owns(p *amr.Patch) bool {
	return d.comm == nil || p.Owner == d.rank
}

func (d *DataObject) allocate() {
	for l := 0; l < d.h.NumLevels(); l++ {
		for _, p := range d.h.Level(l).Patches {
			if d.owns(p) {
				d.local[p.ID] = NewPatchData(p, d.NComp, d.Ghost)
			}
		}
	}
}

// Hierarchy returns the mesh this object is declared on.
func (d *DataObject) Hierarchy() *amr.Hierarchy { return d.h }

// Local returns the owned PatchData for a patch ID, or nil.
func (d *DataObject) Local(id int) *PatchData { return d.local[id] }

// LocalPatches returns owned patch data on a level, in patch order.
func (d *DataObject) LocalPatches(level int) []*PatchData {
	var out []*PatchData
	for _, p := range d.h.Level(level).Patches {
		if pd := d.local[p.ID]; pd != nil {
			out = append(out, pd)
		}
	}
	return out
}

// ForEachLocal applies fn to every owned patch on every level,
// coarsest first.
func (d *DataObject) ForEachLocal(fn func(*PatchData)) {
	for l := 0; l < d.h.NumLevels(); l++ {
		for _, pd := range d.LocalPatches(l) {
			fn(pd)
		}
	}
}

// transfer is one region move between two same-level patches.
type transfer struct {
	srcID, dstID       int
	srcOwner, dstOwner int
	region             amr.Box
}

// executeTransfers runs a deterministic, collectively identical list of
// transfers as one blocking Start/Finish cycle over a transient
// schedule. All regions bound for the same destination rank travel in
// one coalesced message tagged by (phase, level); receives and local
// copies are applied strictly in list order, because some callers (the
// shadow fill) rely on later transfers overwriting earlier ones. Hot
// phases use the cached schedules in xfer.go instead.
func (d *DataObject) executeTransfers(ph phase, level int, ts []transfer, getSrc, getDst func(id int) *PatchData) {
	s := &xferSchedule{ts: ts}
	d.planXfer(s)
	d.startTransfers(s, ph, level, getSrc, getDst).Finish()
}

// ExchangeGhosts fills the ghost cells of every patch on a level from
// overlapping same-level neighbors, using the cached coalesced schedule.
// All ranks must call it (collective).
func (d *DataObject) ExchangeGhosts(level int) {
	d.ExchangeGhostsStart(level).Finish()
}

// regionsOf subtracts the interior from an overlap, leaving the pieces
// that are genuinely ghost cells of dst.
func regionsOf(overlap, interior amr.Box) []amr.Box {
	if overlap.Empty() {
		return nil
	}
	return overlap.Subtract(interior)
}
