package field

import (
	"strings"
	"testing"

	"ccahydro/internal/amr"
)

func TestCompositeSampleUsesFinestData(t *testing.T) {
	h := refinedHierarchy() // 32x32 with a fine level over (8..23)^2 refined
	d := New("u", h, 1, 2, nil)
	// Coarse = 1 everywhere, fine = 5 everywhere: composite must show 5
	// where fine data exists, 1 elsewhere.
	for _, pd := range d.LocalPatches(0) {
		pd.FillAll(1)
	}
	for _, pd := range d.LocalPatches(1) {
		pd.FillAll(5)
	}
	data, domain := d.CompositeSample(0)
	nx, _ := domain.Size()
	at := func(i, j int) float64 { return data[j*nx+i] }
	fineFoot := h.Level(1).Patches[0].Box.Coarsen(2)
	if got := at(fineFoot.Lo[0]+1, fineFoot.Lo[1]+1); got != 5 {
		t.Errorf("fine-covered cell = %v, want 5", got)
	}
	if got := at(0, 0); got != 1 {
		t.Errorf("coarse-only cell = %v, want 1", got)
	}
}

func TestCompositeSampleAverages(t *testing.T) {
	h := refinedHierarchy()
	d := New("u", h, 1, 2, nil)
	// Fine cells hold their i-index; the coarse composite holds the
	// 2x2 average = 2*ci + 0.5.
	for _, pd := range d.LocalPatches(1) {
		b := pd.Interior()
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				pd.Set(0, i, j, float64(i))
			}
		}
	}
	data, domain := d.CompositeSample(0)
	nx, _ := domain.Size()
	foot := h.Level(1).Patches[0].Box.Coarsen(2)
	ci, cj := foot.Lo[0]+2, foot.Lo[1]+2
	want := float64(2*ci) + 0.5
	if got := data[cj*nx+ci]; got != want {
		t.Errorf("composite = %v, want %v", got, want)
	}
}

func TestWriteCSVShape(t *testing.T) {
	h := amr.NewHierarchy(amr.NewBox(0, 0, 3, 2), 2, 1, 1)
	d := New("u", h, 1, 1, nil)
	d.LocalPatches(0)[0].FillAll(2.5)
	var b strings.Builder
	if err := d.WriteCSV(&b, 0, "test"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "#") {
		t.Error("missing header")
	}
	if lines[1] != "2.5,2.5,2.5,2.5" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWritePGMShape(t *testing.T) {
	h := amr.NewHierarchy(amr.NewBox(0, 0, 7, 7), 2, 1, 1)
	d := New("u", h, 1, 1, nil)
	pd := d.LocalPatches(0)[0]
	b := pd.Interior()
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			pd.Set(0, i, j, float64(i))
		}
	}
	var sb strings.Builder
	if err := d.WritePGM(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "P2\n8 8\n255\n") {
		t.Errorf("header = %q", out[:20])
	}
	// Max value 255 (at i=7), min 0 (at i=0).
	if !strings.Contains(out, "255") {
		t.Error("no max gray value")
	}
}

func TestPatchMapRendersLevels(t *testing.T) {
	h := refinedHierarchy()
	m := PatchMap(h, 0)
	if !strings.Contains(m, "1") || !strings.Contains(m, "0") {
		t.Errorf("patch map missing levels:\n%s", m)
	}
	rows := strings.Split(strings.TrimSpace(m), "\n")
	if len(rows) != 32 || len(rows[0]) != 32 {
		t.Errorf("map shape = %dx%d", len(rows), len(rows[0]))
	}
	// Downsampled map respects maxWidth.
	small := PatchMap(h, 16)
	srows := strings.Split(strings.TrimSpace(small), "\n")
	if len(srows[0]) > 16 {
		t.Errorf("downsampled width = %d", len(srows[0]))
	}
}
