package field

import (
	"fmt"
	"sort"

	"ccahydro/internal/amr"
	"ccahydro/internal/mpi"
)

// Communication schedules: the transfer lists driving ghost exchange and
// coarse–fine moves are grouped by communicating peer so that all
// regions bound for one destination rank travel in a single coalesced
// message per exchange phase. Message count per exchange drops from
// #overlap-regions to ≤ #neighbor-ranks, amortizing the per-message
// alpha cost exactly as production SAMR frameworks do. The ghost-
// exchange schedule is additionally cached per (level, hierarchy
// generation), so the region enumeration runs once per regrid instead
// of on every exchange.

// phase distinguishes the independent transfer streams so that messages
// from different protocol steps can never be confused, even when an
// exchange is split into Start/Finish and other collectives run inside
// the window.
type phase int

const (
	phaseGhost phase = iota
	phaseShadow
	phaseRestrict
	phaseRemap
)

func (ph phase) String() string {
	switch ph {
	case phaseGhost:
		return "ghost"
	case phaseShadow:
		return "shadow"
	case phaseRestrict:
		return "restrict"
	case phaseRemap:
		return "remap"
	}
	return "phase?"
}

// streamTag derives the deterministic per-(phase, level) message tag.
// The range sits far below the collective tag space (which grows
// downward from -1000) and never touches user tags (>= 0). Messages
// between the same pair in the same phase+level rely on the substrate's
// per-pair FIFO ordering, which coalescing preserves: there is at most
// one message per peer per exchange.
func streamTag(ph phase, level int) int {
	return -100000 - int(ph)*256 - level
}

// peerMsg is one coalesced message: the transfers (by index into the
// phase's transfer list, in list order) that share a peer rank.
type peerMsg struct {
	rank  int
	items []int
	words int
}

// commPlan is a transfer list grouped by peer: the messages this rank
// sends and receives. Both slices are ordered by peer rank.
type commPlan struct {
	sends []peerMsg
	recvs []peerMsg
}

// words is the exact on-wire size of one transfer. Transfer regions are
// always contained in both endpoints' storage boxes (the enumeration
// guarantees it), so sender and receiver compute identical counts from
// replicated metadata alone.
func (d *DataObject) words(t transfer) int {
	return d.NComp * t.region.NumCells()
}

// buildPlan groups ts by peer rank for this endpoint.
func (d *DataObject) buildPlan(ts []transfer) commPlan {
	sendIdx := make(map[int]int)
	recvIdx := make(map[int]int)
	var plan commPlan
	for i, t := range ts {
		w := d.words(t)
		switch {
		case t.srcOwner == d.rank && t.dstOwner != d.rank:
			k, ok := sendIdx[t.dstOwner]
			if !ok {
				k = len(plan.sends)
				sendIdx[t.dstOwner] = k
				plan.sends = append(plan.sends, peerMsg{rank: t.dstOwner})
			}
			plan.sends[k].items = append(plan.sends[k].items, i)
			plan.sends[k].words += w
		case t.dstOwner == d.rank && t.srcOwner != d.rank:
			k, ok := recvIdx[t.srcOwner]
			if !ok {
				k = len(plan.recvs)
				recvIdx[t.srcOwner] = k
				plan.recvs = append(plan.recvs, peerMsg{rank: t.srcOwner})
			}
			plan.recvs[k].items = append(plan.recvs[k].items, i)
			plan.recvs[k].words += w
		}
	}
	sort.Slice(plan.sends, func(a, b int) bool { return plan.sends[a].rank < plan.sends[b].rank })
	sort.Slice(plan.recvs, func(a, b int) bool { return plan.recvs[a].rank < plan.recvs[b].rank })
	return plan
}

// packPeerInto serializes every transfer of one coalesced message, in
// list order, into a caller-owned buffer (reset to length zero first),
// so persistent schedules repack without allocating.
func (d *DataObject) packPeerInto(buf []float64, pm peerMsg, ts []transfer, getSrc func(id int) *PatchData) []float64 {
	buf = buf[:0]
	for _, idx := range pm.items {
		t := ts[idx]
		buf = getSrc(t.srcID).packAppend(t.region, buf)
	}
	return buf
}

// ghostSchedule is the cached exchange plan of one level: valid while
// the level object and hierarchy generation are unchanged.
type ghostSchedule struct {
	lv   *amr.Level
	gen  int
	ts   []transfer
	plan commPlan
	// nbrRanks is the distinct peer set (union of send and recv peers).
	nbrRanks []int

	// Persistent exchange state (the MPI persistent-communication
	// pattern): message sizes are fixed for the life of the schedule, so
	// pack buffers and receive requests are allocated once and reused by
	// every exchange. Together with the substrate's payload recycling
	// this makes steady-state ghost exchange allocation-free.
	sendBufs [][]float64   // one pack buffer per plan.sends entry
	reqs     []mpi.Request // one reusable request per plan.recvs entry
	exch     GhostExchange // the in-flight handle Start returns
}

// ghostScheduleFor returns the cached schedule for a level, rebuilding
// it only after a regrid (generation change) or hierarchy swap.
func (d *DataObject) ghostScheduleFor(level int) *ghostSchedule {
	lv := d.h.Level(level)
	gen := d.h.Generation()
	if s, ok := d.sched[level]; ok && s.lv == lv && s.gen == gen {
		return s
	}
	s := &ghostSchedule{lv: lv, gen: gen}
	nbr := lv.Neighbors(d.Ghost)
	for di, dst := range lv.Patches {
		g := dst.Box.Grow(d.Ghost)
		for _, si := range nbr[di] {
			src := lv.Patches[si]
			for _, r := range regionsOf(g.Intersect(src.Box), dst.Box) {
				s.ts = append(s.ts, transfer{
					srcID: src.ID, dstID: dst.ID,
					srcOwner: src.Owner, dstOwner: dst.Owner,
					region: r,
				})
			}
		}
	}
	s.plan = d.buildPlan(s.ts)
	peers := make(map[int]bool)
	for _, pm := range s.plan.sends {
		peers[pm.rank] = true
	}
	for _, pm := range s.plan.recvs {
		peers[pm.rank] = true
	}
	for r := range peers {
		s.nbrRanks = append(s.nbrRanks, r)
	}
	sort.Ints(s.nbrRanks)
	if d.sched == nil {
		d.sched = make(map[int]*ghostSchedule)
	}
	d.sched[level] = s
	d.scheduleBuilds++
	return s
}

// ScheduleBuilds counts ghost-schedule constructions (cache misses);
// tests assert the cache only invalidates across regrids.
func (d *DataObject) ScheduleBuilds() int { return d.scheduleBuilds }

// ExchangeInfo summarizes the cached exchange schedule of one level.
type ExchangeInfo struct {
	// Transfers is the number of overlap regions in the schedule.
	Transfers int
	// SendMsgs / RecvMsgs are coalesced message counts per exchange for
	// this rank.
	SendMsgs, RecvMsgs int
	// SendWords is the per-exchange outbound volume in float64 words.
	SendWords int
	// NeighborRanks is the number of distinct peer ranks.
	NeighborRanks int
	// RemoteTransfers is the number of outbound overlap regions — what
	// the per-exchange send count was before coalescing (one message
	// per region).
	RemoteTransfers int
}

// ExchangeInfo reports the coalescing shape of a level's exchange: with
// the schedule in place, SendMsgs ≤ NeighborRanks always holds.
func (d *DataObject) ExchangeInfo(level int) ExchangeInfo {
	s := d.ghostScheduleFor(level)
	info := ExchangeInfo{
		Transfers:     len(s.ts),
		SendMsgs:      len(s.plan.sends),
		RecvMsgs:      len(s.plan.recvs),
		NeighborRanks: len(s.nbrRanks),
	}
	for _, pm := range s.plan.sends {
		info.SendWords += pm.words
		info.RemoteTransfers += len(pm.items)
	}
	return info
}

// GhostExchange is an in-flight split ghost exchange: Start posted the
// sends and receives and performed rank-local copies; Finish drains the
// receives and unpacks. Between the two, the caller is free to compute
// on patch interiors — ghost exchange writes only ghost cells, so
// interior reads never race the fill, and the virtual-clock model
// credits the compute against message flight time.
type GhostExchange struct {
	d      *DataObject
	sched  *ghostSchedule
	active bool
}

// ExchangeGhostsStart posts the coalesced exchange for a level and
// returns without waiting: one Isend per destination rank, one Irecv
// per source rank, and all rank-local region copies done inline. The
// returned handle lives on the schedule and is reused by the next
// exchange of the same level, so steady-state Start/Finish cycles
// allocate nothing. Collective; every rank must call Start and then
// Finish before the next Start on the same level.
func (d *DataObject) ExchangeGhostsStart(level int) *GhostExchange {
	s := d.ghostScheduleFor(level)
	if s.exch.active {
		panic("field: ghost exchange already in flight on this level")
	}
	if d.obs != nil {
		defer d.obs.Span("samr", spanName("ghost.start", level))()
	}
	s.exch = GhostExchange{d: d, sched: s, active: true}
	if d.comm != nil {
		tag := streamTag(phaseGhost, level)
		if s.reqs == nil && len(s.plan.recvs) > 0 {
			s.reqs = make([]mpi.Request, len(s.plan.recvs))
		}
		for k, pm := range s.plan.recvs {
			d.comm.IrecvInto(&s.reqs[k], pm.rank, tag)
		}
		if s.sendBufs == nil && len(s.plan.sends) > 0 {
			s.sendBufs = make([][]float64, len(s.plan.sends))
			for k, pm := range s.plan.sends {
				s.sendBufs[k] = make([]float64, 0, pm.words)
			}
		}
		for k, pm := range s.plan.sends {
			s.sendBufs[k] = d.packPeerInto(s.sendBufs[k], pm, s.ts, d.Local)
			d.comm.IsendBuffered(pm.rank, tag, s.sendBufs[k])
		}
	}
	for _, t := range s.ts {
		if t.dstOwner == d.rank && t.srcOwner == d.rank {
			if dst, src := d.local[t.dstID], d.local[t.srcID]; dst != nil && src != nil {
				dst.CopyRegion(src, t.region)
			}
		} else if d.comm == nil {
			d.local[t.dstID].CopyRegion(d.local[t.srcID], t.region)
		}
	}
	return &s.exch
}

// Finish waits for the posted receives, unpacks them, and returns the
// payload buffers to the substrate's pool. Idempotent.
func (ex *GhostExchange) Finish() {
	if !ex.active {
		return
	}
	ex.active = false
	d := ex.d
	s := ex.sched
	if d.obs != nil {
		defer d.obs.Span("samr", "ghost.finish")()
	}
	for k := range s.reqs {
		buf, _ := s.reqs[k].Wait()
		pm := s.plan.recvs[k]
		off := 0
		for _, idx := range pm.items {
			t := s.ts[idx]
			w := d.words(t)
			d.local[t.dstID].unpack(t.region, buf[off:off+w])
			off += w
		}
		if off != len(buf) {
			panic(fmt.Sprintf("field: ghost message from rank %d has %d words, schedule expects %d",
				pm.rank, len(buf), off))
		}
		d.comm.Recycle(buf)
	}
}
