package field

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"ccahydro/internal/amr"
	"ccahydro/internal/mpi"
)

func TestPatchDataBasics(t *testing.T) {
	p := &amr.Patch{ID: 0, Box: amr.NewBox(2, 3, 5, 7)}
	pd := NewPatchData(p, 3, 2)
	if pd.GrownBox() != amr.NewBox(0, 1, 7, 9) {
		t.Errorf("grown = %v", pd.GrownBox())
	}
	pd.Set(1, 4, 5, 3.5)
	if pd.At(1, 4, 5) != 3.5 {
		t.Error("At/Set failed")
	}
	pd.Add(1, 4, 5, 0.5)
	if pd.At(1, 4, 5) != 4 {
		t.Error("Add failed")
	}
	pd.Fill(0, 7)
	if pd.At(0, 0, 1) != 7 || pd.At(0, 7, 9) != 7 {
		t.Error("Fill failed")
	}
	pd.FillAll(1)
	if pd.At(2, 3, 3) != 1 {
		t.Error("FillAll failed")
	}
	// Comp plane addressing matches At.
	plane := pd.Comp(1)
	pd.Set(1, 2, 3, -9)
	if plane[pd.Offset(2, 3)] != -9 {
		t.Error("Comp/Offset inconsistent with At")
	}
	if pd.MaxAbs(1) < 9 {
		t.Errorf("MaxAbs = %v", pd.MaxAbs(1))
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	p := &amr.Patch{ID: 0, Box: amr.NewBox(0, 0, 9, 9)}
	src := NewPatchData(p, 2, 1)
	rng := rand.New(rand.NewSource(1))
	for c := 0; c < 2; c++ {
		plane := src.Comp(c)
		for i := range plane {
			plane[i] = rng.Float64()
		}
	}
	region := amr.NewBox(3, 4, 7, 8)
	buf := src.pack(region)
	dst := NewPatchData(p, 2, 1)
	dst.unpack(region, buf)
	for c := 0; c < 2; c++ {
		for j := region.Lo[1]; j <= region.Hi[1]; j++ {
			for i := region.Lo[0]; i <= region.Hi[0]; i++ {
				if dst.At(c, i, j) != src.At(c, i, j) {
					t.Fatalf("mismatch at c=%d (%d,%d)", c, i, j)
				}
			}
		}
	}
	// Cells outside the region stay zero.
	if dst.At(0, 0, 0) != 0 {
		t.Error("unpack wrote outside region")
	}
}

func TestCopyRegion(t *testing.T) {
	pa := &amr.Patch{ID: 0, Box: amr.NewBox(0, 0, 4, 4)}
	pb := &amr.Patch{ID: 1, Box: amr.NewBox(5, 0, 9, 4)}
	a := NewPatchData(pa, 1, 1)
	b := NewPatchData(pb, 1, 1)
	a.Fill(0, 2)
	// Copy a's rightmost column into b's left ghost column.
	b.CopyRegion(a, amr.NewBox(4, 0, 4, 4))
	if b.At(0, 4, 2) != 2 {
		t.Error("ghost not copied")
	}
	if b.At(0, 5, 2) != 0 {
		t.Error("interior overwritten")
	}
}

// twoPatchHierarchy builds a 1-level hierarchy with two side-by-side
// patches on the given number of ranks.
func twoPatchHierarchy(ranks int) *amr.Hierarchy {
	return amr.NewHierarchy(amr.NewBox(0, 0, 19, 9), 2, 1, ranks)
}

func TestExchangeGhostsSerial(t *testing.T) {
	h := twoPatchHierarchy(2) // two patches, but serial (comm nil): both local
	d := New("u", h, 1, 2, nil)
	// Paint each patch with its owner-patch id + 1.
	for i, pd := range d.LocalPatches(0) {
		pd.Fill(0, 0)
		b := pd.Interior()
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for ii := b.Lo[0]; ii <= b.Hi[0]; ii++ {
				pd.Set(0, ii, j, float64(i+1))
			}
		}
	}
	d.ExchangeGhosts(0)
	left := d.LocalPatches(0)[0]
	right := d.LocalPatches(0)[1]
	// Left patch spans x=0..9; its ghost at x=10,11 must hold 2.
	if left.At(0, 10, 5) != 2 || left.At(0, 11, 5) != 2 {
		t.Errorf("left ghosts = %v, %v", left.At(0, 10, 5), left.At(0, 11, 5))
	}
	if right.At(0, 9, 5) != 1 || right.At(0, 8, 5) != 1 {
		t.Errorf("right ghosts = %v, %v", right.At(0, 9, 5), right.At(0, 8, 5))
	}
	// Interiors untouched.
	if left.At(0, 9, 5) != 1 || right.At(0, 10, 5) != 2 {
		t.Error("interior corrupted by exchange")
	}
}

func TestExchangeGhostsParallelMatchesSerial(t *testing.T) {
	// Run the same exchange on 2 ranks and compare ghost contents.
	type probe struct{ l10, l11, r9, r8 float64 }
	results := make(map[int]probe)
	var mu sync.Mutex
	mpi.Run(2, mpi.ZeroModel, func(comm *mpi.Comm) {
		h := twoPatchHierarchy(2)
		d := New("u", h, 1, 2, comm)
		for _, pd := range d.LocalPatches(0) {
			b := pd.Interior()
			for j := b.Lo[1]; j <= b.Hi[1]; j++ {
				for ii := b.Lo[0]; ii <= b.Hi[0]; ii++ {
					pd.Set(0, ii, j, float64(pd.Patch.Owner+1))
				}
			}
		}
		d.ExchangeGhosts(0)
		mu.Lock()
		defer mu.Unlock()
		for _, pd := range d.LocalPatches(0) {
			if pd.Patch.Owner == 0 {
				results[0] = probe{l10: pd.At(0, 10, 5), l11: pd.At(0, 11, 5)}
			} else {
				p := results[1]
				p.r9, p.r8 = pd.At(0, 9, 5), pd.At(0, 8, 5)
				results[1] = p
			}
		}
	})
	if results[0].l10 != 2 || results[0].l11 != 2 {
		t.Errorf("rank0 ghosts = %+v", results[0])
	}
	if results[1].r9 != 1 || results[1].r8 != 1 {
		t.Errorf("rank1 ghosts = %+v", results[1])
	}
}

// refinedHierarchy builds 2 levels: level 1 covers a centered region.
func refinedHierarchy() *amr.Hierarchy {
	h := amr.NewHierarchy(amr.NewBox(0, 0, 31, 31), 2, 2, 1)
	f := amr.NewFlagField(h.LevelDomain(0))
	f.SetBox(amr.NewBox(8, 8, 23, 23))
	h.Regrid([]*amr.FlagField{f}, amr.DefaultRegridOptions)
	return h
}

// fillAffine paints u = a + b*x + c*y with x, y the physical cell
// centers on the patch's level.
func fillAffine(d *DataObject, level int, a, b, c float64) {
	ratio := float64(int(1) << uint(level))
	dx := 1.0 / ratio
	for _, pd := range d.LocalPatches(level) {
		g := pd.GrownBox()
		for j := g.Lo[1]; j <= g.Hi[1]; j++ {
			for i := g.Lo[0]; i <= g.Hi[0]; i++ {
				x := (float64(i) + 0.5) * dx
				y := (float64(j) + 0.5) * dx
				pd.Set(0, i, j, a+b*x+c*y)
			}
		}
	}
}

func TestProlongLinearReproducesAffine(t *testing.T) {
	h := refinedHierarchy()
	d := New("u", h, 1, 2, nil)
	fillAffine(d, 0, 1.0, 2.0, -3.0)
	d.ProlongLevel(1, ProlongLinear)
	dx1 := 0.5
	for _, pd := range d.LocalPatches(1) {
		b := pd.Interior()
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				x := (float64(i) + 0.5) * dx1
				y := (float64(j) + 0.5) * dx1
				want := 1.0 + 2.0*x - 3.0*y
				if got := pd.At(0, i, j); math.Abs(got-want) > 1e-12 {
					t.Fatalf("prolong at (%d,%d): got %v, want %v", i, j, got, want)
				}
			}
		}
	}
}

func TestProlongInjectionIsPiecewiseConstant(t *testing.T) {
	h := refinedHierarchy()
	d := New("u", h, 1, 2, nil)
	// Coarse checkerboard.
	for _, pd := range d.LocalPatches(0) {
		g := pd.GrownBox()
		for j := g.Lo[1]; j <= g.Hi[1]; j++ {
			for i := g.Lo[0]; i <= g.Hi[0]; i++ {
				pd.Set(0, i, j, float64((i+j)%2))
			}
		}
	}
	d.ProlongLevel(1, ProlongInjection)
	for _, pd := range d.LocalPatches(1) {
		b := pd.Interior()
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				ci, cj := i/2, j/2
				want := float64((ci + cj) % 2)
				if pd.At(0, i, j) != want {
					t.Fatalf("injection at (%d,%d) = %v, want %v", i, j, pd.At(0, i, j), want)
				}
			}
		}
	}
}

func TestRestrictAverages(t *testing.T) {
	h := refinedHierarchy()
	d := New("u", h, 1, 2, nil)
	// Fine level: value = fine i index; coarse cell (ci) should get the
	// mean of its 4 children.
	for _, pd := range d.LocalPatches(1) {
		b := pd.Interior()
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				pd.Set(0, i, j, float64(i))
			}
		}
	}
	d.RestrictLevel(1)
	fineRegion := h.Level(1).Patches[0].Box
	cbox := fineRegion.Coarsen(2)
	for _, pd := range d.LocalPatches(0) {
		ov := pd.Interior().Intersect(cbox)
		for j := ov.Lo[1]; j <= ov.Hi[1]; j++ {
			for i := ov.Lo[0]; i <= ov.Hi[0]; i++ {
				want := float64(2*i) + 0.5 // mean of fine columns 2i, 2i+1
				if got := pd.At(0, i, j); math.Abs(got-want) > 1e-12 {
					t.Fatalf("restrict at (%d,%d) = %v, want %v", i, j, got, want)
				}
			}
		}
	}
}

func TestRestrictProlongConservesConstant(t *testing.T) {
	h := refinedHierarchy()
	d := New("u", h, 1, 2, nil)
	fillAffine(d, 0, 4.0, 0, 0)
	d.ProlongLevel(1, ProlongLinear)
	d.RestrictLevel(1)
	for _, pd := range d.LocalPatches(0) {
		b := pd.Interior()
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				if math.Abs(pd.At(0, i, j)-4.0) > 1e-12 {
					t.Fatalf("constant not preserved at (%d,%d): %v", i, j, pd.At(0, i, j))
				}
			}
		}
	}
}

func TestFillCoarseFineGhosts(t *testing.T) {
	h := refinedHierarchy()
	d := New("u", h, 1, 2, nil)
	fillAffine(d, 0, 0, 1, 0) // u = x on coarse
	// Zero the fine level; fill its ghosts from coarse.
	for _, pd := range d.LocalPatches(1) {
		pd.FillAll(0)
	}
	d.FillCoarseFineGhosts(1, ProlongLinear)
	pd := d.LocalPatches(1)[0]
	b := pd.Interior()
	// A ghost just left of the fine interior: x = (lo-1+0.5)*0.5.
	gi, gj := b.Lo[0]-1, (b.Lo[1]+b.Hi[1])/2
	want := (float64(gi) + 0.5) * 0.5
	if got := pd.At(0, gi, gj); math.Abs(got-want) > 1e-12 {
		t.Errorf("cf ghost = %v, want %v", got, want)
	}
	// Interior must remain zero.
	if pd.At(0, b.Lo[0], gj) != 0 {
		t.Error("interior touched by ghost fill")
	}
}

func TestRemapPreservesData(t *testing.T) {
	h := refinedHierarchy()
	d := New("u", h, 1, 2, nil)
	fillAffine(d, 0, 1, 2, 3)
	d.ProlongLevel(1, ProlongLinear)

	// Regrid to a shifted fine region.
	h2 := amr.NewHierarchy(amr.NewBox(0, 0, 31, 31), 2, 2, 1)
	f := amr.NewFlagField(h2.LevelDomain(0))
	f.SetBox(amr.NewBox(10, 10, 25, 25))
	h2.Regrid([]*amr.FlagField{f}, amr.DefaultRegridOptions)

	nd := d.Remap(h2, ProlongLinear)
	// Coarse data must be identical; fine data affine-exact since the
	// source was affine.
	for _, pd := range nd.LocalPatches(0) {
		b := pd.Interior()
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				x, y := float64(i)+0.5, float64(j)+0.5
				want := 1 + 2*x + 3*y
				if math.Abs(pd.At(0, i, j)-want) > 1e-12 {
					t.Fatalf("coarse remap at (%d,%d): %v want %v", i, j, pd.At(0, i, j), want)
				}
			}
		}
	}
	for _, pd := range nd.LocalPatches(1) {
		b := pd.Interior()
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				x, y := (float64(i)+0.5)*0.5, (float64(j)+0.5)*0.5
				want := 1 + 2*x + 3*y
				if math.Abs(pd.At(0, i, j)-want) > 1e-10 {
					t.Fatalf("fine remap at (%d,%d): %v want %v", i, j, pd.At(0, i, j), want)
				}
			}
		}
	}
}

// Property: ghost exchange never modifies any interior cell.
func TestExchangeLeavesInteriorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := amr.NewHierarchy(amr.NewBox(0, 0, 15, 15), 2, 1, 4)
		d := New("u", h, 2, 1, nil)
		type cell struct {
			id, c, i, j int
			v           float64
		}
		var cells []cell
		d.ForEachLocal(func(pd *PatchData) {
			b := pd.Interior()
			for c := 0; c < 2; c++ {
				for j := b.Lo[1]; j <= b.Hi[1]; j++ {
					for i := b.Lo[0]; i <= b.Hi[0]; i++ {
						v := rng.Float64()
						pd.Set(c, i, j, v)
						cells = append(cells, cell{pd.Patch.ID, c, i, j, v})
					}
				}
			}
		})
		d.ExchangeGhosts(0)
		for _, cl := range cells {
			if d.Local(cl.id).At(cl.c, cl.i, cl.j) != cl.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// ---- boundary conditions ------------------------------------------------

func bcFixture() (*amr.Hierarchy, *DataObject) {
	h := amr.NewHierarchy(amr.NewBox(0, 0, 7, 7), 2, 1, 1)
	d := New("u", h, 2, 2, nil)
	pd := d.LocalPatches(0)[0]
	g := pd.GrownBox()
	for c := 0; c < 2; c++ {
		for j := g.Lo[1]; j <= g.Hi[1]; j++ {
			for i := g.Lo[0]; i <= g.Hi[0]; i++ {
				pd.Set(c, i, j, 100*float64(c)+float64(i)+10*float64(j))
			}
		}
	}
	return h, d
}

func TestBCOutflow(t *testing.T) {
	_, d := bcFixture()
	d.ApplyPhysicalBCs(0, UniformBC(BCSpec{Kind: BCOutflow}))
	pd := d.LocalPatches(0)[0]
	// Ghost at x=-1 copies interior x=0 value at the same j.
	if pd.At(0, -1, 3) != pd.At(0, 0, 3) || pd.At(0, -2, 3) != pd.At(0, 0, 3) {
		t.Error("outflow x-lo wrong")
	}
	if pd.At(1, 9, 4) != pd.At(1, 7, 4) {
		t.Error("outflow x-hi wrong")
	}
	if pd.At(0, 4, -1) != pd.At(0, 4, 0) || pd.At(0, 4, 9) != pd.At(0, 4, 7) {
		t.Error("outflow y wrong")
	}
}

func TestBCReflectWithOddComponent(t *testing.T) {
	_, d := bcFixture()
	spec := BCSpec{Kind: BCReflect, OddComps: []int{1}}
	d.ApplyPhysicalBCs(0, UniformBC(spec))
	pd := d.LocalPatches(0)[0]
	// Even component mirrors: ghost(-1) == interior(0), ghost(-2) == interior(1).
	if pd.At(0, -1, 3) != pd.At(0, 0, 3) || pd.At(0, -2, 3) != pd.At(0, 1, 3) {
		t.Error("reflect even wrong")
	}
	// Odd component flips sign.
	if pd.At(1, -1, 3) != -pd.At(1, 0, 3) {
		t.Error("reflect odd wrong")
	}
	if pd.At(1, 8, 3) != -pd.At(1, 7, 3) || pd.At(1, 9, 3) != -pd.At(1, 6, 3) {
		t.Error("reflect odd x-hi wrong")
	}
}

func TestBCDirichlet(t *testing.T) {
	_, d := bcFixture()
	d.ApplyPhysicalBCs(0, UniformBC(BCSpec{Kind: BCDirichlet, Value: -5}))
	pd := d.LocalPatches(0)[0]
	if pd.At(0, -1, 3) != -5 || pd.At(1, 4, 9) != -5 {
		t.Error("dirichlet wrong")
	}
}

func TestBCPeriodicSerial(t *testing.T) {
	_, d := bcFixture()
	d.ApplyPhysicalBCs(0, UniformBC(BCSpec{Kind: BCPeriodic}))
	pd := d.LocalPatches(0)[0]
	// Ghost at x=-1 wraps to interior x=7.
	if pd.At(0, -1, 3) != pd.At(0, 7, 3) {
		t.Errorf("periodic x-lo = %v, want %v", pd.At(0, -1, 3), pd.At(0, 7, 3))
	}
	if pd.At(0, 8, 3) != pd.At(0, 0, 3) {
		t.Error("periodic x-hi wrong")
	}
}

func TestBCMixedSides(t *testing.T) {
	_, d := bcFixture()
	bcs := BCSet{
		XLo: BCSpec{Kind: BCDirichlet, Value: 1},
		XHi: BCSpec{Kind: BCOutflow},
		YLo: BCSpec{Kind: BCReflect},
		YHi: BCSpec{Kind: BCDirichlet, Value: 2},
	}
	d.ApplyPhysicalBCs(0, bcs)
	pd := d.LocalPatches(0)[0]
	if pd.At(0, -1, 3) != 1 || pd.At(0, 4, 9) != 2 {
		t.Error("mixed dirichlet sides wrong")
	}
	if pd.At(0, 8, 3) != pd.At(0, 7, 3) {
		t.Error("mixed outflow wrong")
	}
	if pd.At(0, 4, -1) != pd.At(0, 4, 0) {
		t.Error("mixed reflect wrong")
	}
}

func TestBCOnlyAppliesAtDomainEdge(t *testing.T) {
	// With two patches, the interior seam must not be BC-filled.
	h := twoPatchHierarchy(2)
	d := New("u", h, 1, 1, nil)
	for _, pd := range d.LocalPatches(0) {
		pd.FillAll(3)
	}
	d.ApplyPhysicalBCs(0, UniformBC(BCSpec{Kind: BCDirichlet, Value: -1}))
	left := d.LocalPatches(0)[0]
	// Left patch's right ghost (x=10) is an interior seam: untouched.
	if left.At(0, 10, 5) != 3 {
		t.Error("BC wrote into interior seam ghost")
	}
	// Its left ghost (x=-1) is physical: filled.
	if left.At(0, -1, 5) != -1 {
		t.Error("BC missed physical ghost")
	}
}

func TestSideString(t *testing.T) {
	if XLo.String() != "x-lo" || YHi.String() != "y-hi" {
		t.Error("Side.String wrong")
	}
}

func TestLocalAccessors(t *testing.T) {
	h := refinedHierarchy()
	d := New("u", h, 1, 1, nil)
	if d.Hierarchy() != h {
		t.Error("Hierarchy accessor")
	}
	n := 0
	d.ForEachLocal(func(*PatchData) { n++ })
	want := 0
	for l := 0; l < h.NumLevels(); l++ {
		want += len(h.Level(l).Patches)
	}
	if n != want {
		t.Errorf("ForEachLocal visited %d, want %d", n, want)
	}
	if d.Local(-1) != nil {
		t.Error("Local(-1) should be nil")
	}
}
