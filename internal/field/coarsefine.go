package field

import (
	"math"

	"ccahydro/internal/amr"
)

// Coarse–fine transfer: prolongation (coarse → fine) and restriction
// (fine → coarse). These are the paper's Interpolation components'
// working parts (ProlongRestrict in the shock assembly).
//
// Both directions are implemented with a "shadow" intermediate: a
// temporary patch in the coarse index space aligned with each fine
// patch. Filling the shadow (prolongation) or draining it (restriction)
// uses the same same-level transfer engine as ghost exchange, which
// keeps the message passing identical on all ranks.

// ProlongKind selects the interpolation operator.
type ProlongKind int

const (
	// ProlongInjection copies the coarse value to all covered fine
	// cells (piecewise constant).
	ProlongInjection ProlongKind = iota
	// ProlongLinear uses bilinear interpolation with central slopes —
	// second-order accurate for smooth data.
	ProlongLinear
)

// shadowFor builds the coarse-space shadow patch descriptor for a fine
// patch: its coarsened footprint grown enough to supply ghost fills and
// slope stencils.
func (d *DataObject) shadowFor(fine *amr.Patch, ratio int) *PatchData {
	cg := d.Ghost/ratio + 2
	box := fine.Box.Coarsen(ratio).Grow(cg)
	// Clip to the coarse level domain: values outside the domain are
	// filled by physical BCs on the coarse level before prolongation.
	box = box.Intersect(d.h.LevelDomain(fine.Level - 1).Grow(d.Ghost))
	p := &amr.Patch{ID: fine.ID, Level: fine.Level - 1, Box: box, Owner: fine.Owner}
	return NewPatchData(p, d.NComp, 0)
}

// buildShadowTransfers enumerates coarse-interior → shadow moves.
func (d *DataObject) buildShadowTransfers(level int, shadows map[int]*PatchData) []transfer {
	coarse := d.h.Level(level - 1)
	var ts []transfer
	for _, fp := range d.h.Level(level).Patches {
		sh := shadows[fp.ID]
		var shBox amr.Box
		if sh != nil {
			shBox = sh.GrownBox()
		} else {
			// Ranks without the shadow still need the identical list;
			// recompute the descriptor geometry.
			cg := d.Ghost/d.h.Ratio + 2
			shBox = fp.Box.Coarsen(d.h.Ratio).Grow(cg).
				Intersect(d.h.LevelDomain(level - 1).Grow(d.Ghost))
		}
		coarseDomain := d.h.LevelDomain(level - 1)
		for _, cp := range coarse.Patches {
			// Physical-ghost regions first (the parts of cp's grown box
			// outside the domain, filled by BCs): interior-sourced
			// transfers appended later overwrite them wherever real
			// data exists. cp's *in-domain* ghosts are never sourced —
			// they may be stale or unfilled (e.g. during a remap).
			grown := cp.Box.Grow(d.Ghost).Intersect(coarseDomain.Grow(d.Ghost))
			for _, outside := range grown.Subtract(coarseDomain) {
				ov := shBox.Intersect(outside)
				if ov.Empty() {
					continue
				}
				ts = append(ts, transfer{
					srcID: cp.ID, dstID: fp.ID,
					srcOwner: cp.Owner, dstOwner: fp.Owner,
					region: ov,
				})
			}
			if ov := shBox.Intersect(cp.Box); !ov.Empty() {
				ts = append(ts, transfer{
					srcID: cp.ID, dstID: fp.ID,
					srcOwner: cp.Owner, dstOwner: fp.Owner,
					region: ov,
				})
			}
		}
	}
	return ts
}

// fillShadows populates coarse-space shadows for every local fine patch
// on level, through the cached per-(phase, level) schedule — the
// shadow patches, transfer list, and message plan are built once per
// regrid and reused by every fill; collective.
func (d *DataObject) fillShadows(level int) map[int]*PatchData {
	s := d.xferScheduleFor(phaseShadow, level)
	d.startTransfers(s, phaseShadow, level, d.Local,
		func(id int) *PatchData { return s.scratch[id] }).Finish()
	return s.scratch
}

// interpolate writes fine values in region (fine index space) from the
// shadow coarse data.
func interpolate(fine *PatchData, shadow *PatchData, region amr.Box, ratio int, kind ProlongKind) {
	r := region.Intersect(fine.GrownBox())
	if r.Empty() {
		return
	}
	inv := 1.0 / float64(ratio)
	for c := 0; c < fine.NComp; c++ {
		for j := r.Lo[1]; j <= r.Hi[1]; j++ {
			cj := floorDiv(j, ratio)
			// Position of fine cell center within the coarse cell,
			// in [-0.5, 0.5).
			fy := (float64(j-cj*ratio)+0.5)*inv - 0.5
			for i := r.Lo[0]; i <= r.Hi[0]; i++ {
				ci := floorDiv(i, ratio)
				if !shadow.GrownBox().Contains(ci, cj) {
					continue
				}
				v := shadow.At(c, ci, cj)
				if kind == ProlongLinear {
					fx := (float64(i-ci*ratio)+0.5)*inv - 0.5
					sx := centralSlope(shadow, c, ci, cj, 1, 0)
					sy := centralSlope(shadow, c, ci, cj, 0, 1)
					v += fx*sx + fy*sy
				}
				fine.Set(c, i, j, v)
			}
		}
	}
}

// centralSlope returns a minmod-limited slope (zero at extrema,
// bounded by both one-sided differences), degrading to one-sided at
// shadow edges. Limiting matters: unlimited central slopes overshoot
// when prolonging across a shock or flame front and can produce
// negative densities on freshly created fine patches. For globally
// smooth (e.g. affine) data the one-sided differences agree, so the
// interpolation remains second-order exact.
func centralSlope(sh *PatchData, c, i, j, di, dj int) float64 {
	box := sh.GrownBox()
	hasM := box.Contains(i-di, j-dj)
	hasP := box.Contains(i+di, j+dj)
	switch {
	case hasM && hasP:
		fwd := sh.At(c, i+di, j+dj) - sh.At(c, i, j)
		bwd := sh.At(c, i, j) - sh.At(c, i-di, j-dj)
		if fwd*bwd <= 0 {
			return 0
		}
		if math.Abs(fwd) < math.Abs(bwd) {
			return fwd
		}
		return bwd
	case hasP:
		return sh.At(c, i+di, j+dj) - sh.At(c, i, j)
	case hasM:
		return sh.At(c, i, j) - sh.At(c, i-di, j-dj)
	}
	return 0
}

// ProlongLevel fills the whole interior of every patch on level from
// the coarser level (used to initialize freshly created fine levels).
// Collective.
func (d *DataObject) ProlongLevel(level int, kind ProlongKind) {
	if level <= 0 || level >= d.h.NumLevels() {
		return
	}
	if d.obs != nil {
		defer d.obs.Span("samr", spanName("prolong", level))()
	}
	shadows := d.fillShadows(level)
	for _, fp := range d.h.Level(level).Patches {
		pd := d.local[fp.ID]
		if pd == nil {
			continue
		}
		interpolate(pd, shadows[fp.ID], fp.Box, d.h.Ratio, kind)
	}
}

// FillCoarseFineGhosts fills the ghost cells of fine patches from the
// coarse level by interpolation. Same-level exchange should run after
// to overwrite ghosts where a same-level neighbor exists (its data is
// more accurate). Collective.
func (d *DataObject) FillCoarseFineGhosts(level int, kind ProlongKind) {
	if level <= 0 || level >= d.h.NumLevels() {
		return
	}
	if d.obs != nil {
		defer d.obs.Span("samr", spanName("cfghosts", level))()
	}
	shadows := d.fillShadows(level)
	for _, fp := range d.h.Level(level).Patches {
		pd := d.local[fp.ID]
		if pd == nil {
			continue
		}
		for _, g := range fp.Box.Grow(d.Ghost).Subtract(fp.Box) {
			interpolate(pd, shadows[fp.ID], g, d.h.Ratio, kind)
		}
	}
}

// RestrictLevel averages level data onto the underlying cells of
// level-1 (conservative full-weighting). Collective.
func (d *DataObject) RestrictLevel(level int) {
	if level <= 0 || level >= d.h.NumLevels() {
		return
	}
	if d.obs != nil {
		defer d.obs.Span("samr", spanName("restrict", level))()
	}
	ratio := d.h.Ratio
	// Average fine data into the schedule's cached coarse-space
	// temporaries (every interior cell is rewritten, so reuse is safe).
	s := d.xferScheduleFor(phaseRestrict, level)
	for _, fp := range d.h.Level(level).Patches {
		pd := d.local[fp.ID]
		if pd == nil {
			continue
		}
		tmp := s.scratch[fp.ID]
		cbox := tmp.Interior()
		w := 1.0 / float64(ratio*ratio)
		for c := 0; c < d.NComp; c++ {
			for j := cbox.Lo[1]; j <= cbox.Hi[1]; j++ {
				for i := cbox.Lo[0]; i <= cbox.Hi[0]; i++ {
					var sum float64
					for dj := 0; dj < ratio; dj++ {
						for di := 0; di < ratio; di++ {
							fi, fj := i*ratio+di, j*ratio+dj
							if fp.Box.Contains(fi, fj) {
								sum += pd.At(c, fi, fj)
							}
						}
					}
					tmp.Set(c, i, j, sum*w)
				}
			}
		}
	}
	// Move averaged regions into the coarse patches.
	d.startTransfers(s, phaseRestrict, level,
		func(id int) *PatchData { return s.scratch[id] }, d.Local).Finish()
}

// buildRestrictTransfers enumerates the coarsened-fine → coarse moves
// of a restriction (deterministic from the hierarchy alone, so the
// list is schedule-cacheable).
func (d *DataObject) buildRestrictTransfers(level int) []transfer {
	ratio := d.h.Ratio
	coarse := d.h.Level(level - 1)
	var ts []transfer
	for _, fp := range d.h.Level(level).Patches {
		cbox := fp.Box.Coarsen(ratio)
		for _, cp := range coarse.Patches {
			ov := cbox.Intersect(cp.Box)
			if ov.Empty() {
				continue
			}
			ts = append(ts, transfer{
				srcID: fp.ID, dstID: cp.ID,
				srcOwner: fp.Owner, dstOwner: cp.Owner,
				region: ov,
			})
		}
	}
	return ts
}

// Remap moves this object's data onto a rebuilt hierarchy: each new
// level is first prolonged from the new coarser level, then overwritten
// wherever old same-level patches overlap. Returns the new DataObject;
// the receiver is left untouched. Collective.
//
// The copy-old-data transfers of every level form one multi-level
// exchange epoch: all levels' sends and receives are posted up front
// (they read only the immutable old object and are tagged per level),
// and each level's exchange is finished only when the top-down
// prolongation sweep reaches it — deep hierarchies keep all remap
// traffic in flight at once instead of one blocking exchange per
// level. The apply order per level (prolong, then old-data overwrite)
// is unchanged, so results are bit-for-bit those of the blocking remap.
func (d *DataObject) Remap(newH *amr.Hierarchy, kind ProlongKind) *DataObject {
	nd := New(d.Name, newH, d.NComp, d.Ghost, d.comm)
	nd.Names = d.Names
	nd.obs = d.obs
	if d.obs != nil {
		defer d.obs.Span("samr", "remap "+d.Name)()
	}
	maxL := newH.NumLevels()
	exs := make([]*TransferExchange, maxL)
	for l := 0; l < maxL && l < d.h.NumLevels(); l++ {
		// Copy old level-l data where it overlaps new level-l patches.
		var ts []transfer
		for _, np := range newH.Level(l).Patches {
			for _, op := range d.h.Level(l).Patches {
				ov := np.Box.Intersect(op.Box)
				if ov.Empty() {
					continue
				}
				ts = append(ts, transfer{
					srcID: op.ID, dstID: np.ID,
					srcOwner: op.Owner, dstOwner: np.Owner,
					region: ov,
				})
			}
		}
		s := &xferSchedule{ts: ts}
		nd.planXfer(s)
		exs[l] = nd.startTransfers(s, phaseRemap, l, d.Local, nd.Local)
	}
	for l := 0; l < maxL; l++ {
		if l > 0 {
			nd.ProlongLevel(l, kind)
		}
		if exs[l] != nil {
			exs[l].Finish()
		}
	}
	return nd
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
