package field

import (
	"sync"
	"testing"

	"ccahydro/internal/amr"
	"ccahydro/internal/mpi"
	"ccahydro/internal/telemetry"
)

// raggedBlocks builds a deliberately uneven multi-patch decomposition
// of an n x n domain, dealt round-robin over p ranks so every rank owns
// several patches and shares several overlap regions with each
// neighbor — the shape coalescing exists for.
func raggedBlocks(n, p int) ([]amr.Box, []int) {
	domain := amr.NewBox(0, 0, n-1, n-1)
	blocks := amr.SplitLargeBoxes([]amr.Box{domain}, n*n/(3*p))
	owners := make([]int, len(blocks))
	for i := range owners {
		owners[i] = i % p
	}
	return blocks, owners
}

// paintOwned writes a deterministic value keyed by (patch, comp, cell)
// into every interior cell, identically on any rank layout.
func paintOwned(d *DataObject, level int) {
	for _, pd := range d.LocalPatches(level) {
		b := pd.Interior()
		for c := 0; c < d.NComp; c++ {
			for j := b.Lo[1]; j <= b.Hi[1]; j++ {
				for i := b.Lo[0]; i <= b.Hi[0]; i++ {
					pd.Set(c, i, j, float64((pd.Patch.ID+1)*1000+c*100)+0.25*float64(i)+0.125*float64(j))
				}
			}
		}
	}
}

// TestCoalescedMessageCountAtMostNeighborRanks is the coalescing
// invariant: one exchange sends at most one message per neighboring
// rank, however many overlap regions it carries — and the substrate's
// send counter agrees with the schedule's claim.
func TestCoalescedMessageCountAtMostNeighborRanks(t *testing.T) {
	const p = 4
	blocks, owners := raggedBlocks(24, p)
	mpi.Run(p, mpi.ZeroModel, func(comm *mpi.Comm) {
		h := amr.NewHierarchyDecomposed(amr.NewBox(0, 0, 23, 23), 2, 1, p, blocks, owners)
		d := New("u", h, 2, 2, comm)
		paintOwned(d, 0)
		info := d.ExchangeInfo(0)
		if info.SendMsgs > info.NeighborRanks {
			t.Errorf("rank %d: %d msgs/exchange > %d neighbor ranks", comm.Rank(), info.SendMsgs, info.NeighborRanks)
		}
		if info.RemoteTransfers <= info.SendMsgs {
			t.Errorf("rank %d: coalescing merged nothing (%d regions, %d msgs) — decomposition too simple for the test",
				comm.Rank(), info.RemoteTransfers, info.SendMsgs)
		}
		before := comm.Stats().Sends
		d.ExchangeGhosts(0)
		if got := comm.Stats().Sends - before; got != info.SendMsgs {
			t.Errorf("rank %d: exchange sent %d messages, schedule claims %d", comm.Rank(), got, info.SendMsgs)
		}
	})
}

// TestScheduleCacheInvalidatesOnRegrid asserts the schedule is built
// once per (level, generation): repeated exchanges reuse it, a regrid
// invalidates it.
func TestScheduleCacheInvalidatesOnRegrid(t *testing.T) {
	h := amr.NewHierarchy(amr.NewBox(0, 0, 31, 31), 2, 2, 1)
	d := New("u", h, 1, 2, nil)
	for i := 0; i < 5; i++ {
		d.ExchangeGhosts(0)
	}
	if got := d.ScheduleBuilds(); got != 1 {
		t.Fatalf("5 exchanges built %d schedules, want 1 (cache miss per call)", got)
	}
	f := amr.NewFlagField(h.LevelDomain(0))
	f.SetBox(amr.NewBox(8, 8, 23, 23))
	h.Regrid([]*amr.FlagField{f}, amr.DefaultRegridOptions)
	d = New("u", h, 1, 2, nil) // fresh data over the regridded hierarchy
	d.ExchangeGhosts(0)
	d.ExchangeGhosts(1)
	d.ExchangeGhosts(0)
	d.ExchangeGhosts(1)
	if got := d.ScheduleBuilds(); got != 2 {
		t.Fatalf("2 levels exchanged twice built %d schedules, want 2", got)
	}
	// An in-place regrid bumps the generation and must invalidate.
	f2 := amr.NewFlagField(h.LevelDomain(0))
	f2.SetBox(amr.NewBox(4, 4, 19, 19))
	h.Regrid([]*amr.FlagField{f2}, amr.DefaultRegridOptions)
	d.ExchangeGhosts(0)
	if got := d.ScheduleBuilds(); got != 3 {
		t.Fatalf("post-regrid exchange built %d schedules total, want 3 (stale cache survived the regrid)", got)
	}
}

// TestStartFinishSplitMatchesMonolithic runs the same exchange through
// ExchangeGhosts and through the Start/Finish split with a collective
// in the window, and demands bit-for-bit identical ghosts — the
// correctness contract that lets drivers compute between the halves.
func TestStartFinishSplitMatchesMonolithic(t *testing.T) {
	const p = 4
	blocks, owners := raggedBlocks(24, p)
	var mu sync.Mutex
	mono := make(map[int][]float64)
	split := make(map[int][]float64)
	collect := func(d *DataObject, into map[int][]float64) {
		mu.Lock()
		defer mu.Unlock()
		for _, pd := range d.LocalPatches(0) {
			g := pd.GrownBox()
			var vals []float64
			for c := 0; c < d.NComp; c++ {
				for j := g.Lo[1]; j <= g.Hi[1]; j++ {
					for i := g.Lo[0]; i <= g.Hi[0]; i++ {
						vals = append(vals, pd.At(c, i, j))
					}
				}
			}
			into[pd.Patch.ID] = vals
		}
	}
	mpi.Run(p, mpi.CPlantModel, func(comm *mpi.Comm) {
		h := amr.NewHierarchyDecomposed(amr.NewBox(0, 0, 23, 23), 2, 1, p, blocks, owners)
		a := New("a", h, 2, 2, comm)
		b := New("b", h, 2, 2, comm)
		paintOwned(a, 0)
		paintOwned(b, 0)
		a.ExchangeGhosts(0)
		ex := b.ExchangeGhostsStart(0)
		// Unrelated traffic inside the window must not be confused with
		// the stream-tagged exchange messages.
		comm.AllreduceScalar(mpi.OpMax, float64(comm.Rank()))
		ex.Finish()
		ex.Finish() // idempotent
		collect(a, mono)
		collect(b, split)
	})
	if len(mono) == 0 || len(mono) != len(split) {
		t.Fatalf("collected %d vs %d patches", len(mono), len(split))
	}
	for id, want := range mono {
		got := split[id]
		if len(got) != len(want) {
			t.Fatalf("patch %d: %d vs %d cells", id, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("patch %d cell %d: monolithic %v, split %v", id, k, want[k], got[k])
			}
		}
	}
}

// TestCoalescedParallelMatchesSerial compares every cell (interiors and
// filled ghosts) of a ragged multi-patch exchange between the serial
// path and the 4-rank coalesced path.
func TestCoalescedParallelMatchesSerial(t *testing.T) {
	const p = 4
	blocks, owners := raggedBlocks(20, p)
	domain := amr.NewBox(0, 0, 19, 19)

	serial := make(map[int][]float64)
	hs := amr.NewHierarchyDecomposed(domain, 2, 1, p, blocks, owners)
	ds := New("u", hs, 2, 2, nil)
	paintOwned(ds, 0)
	ds.ExchangeGhosts(0)
	for _, pd := range ds.LocalPatches(0) {
		g := pd.GrownBox()
		var vals []float64
		for c := 0; c < ds.NComp; c++ {
			for j := g.Lo[1]; j <= g.Hi[1]; j++ {
				for i := g.Lo[0]; i <= g.Hi[0]; i++ {
					vals = append(vals, pd.At(c, i, j))
				}
			}
		}
		serial[pd.Patch.ID] = vals
	}

	var mu sync.Mutex
	checked := 0
	mpi.Run(p, mpi.CPlantModel, func(comm *mpi.Comm) {
		h := amr.NewHierarchyDecomposed(domain, 2, 1, p, blocks, owners)
		d := New("u", h, 2, 2, comm)
		paintOwned(d, 0)
		d.ExchangeGhosts(0)
		mu.Lock()
		defer mu.Unlock()
		for _, pd := range d.LocalPatches(0) {
			want := serial[pd.Patch.ID]
			g := pd.GrownBox()
			k := 0
			for c := 0; c < d.NComp; c++ {
				for j := g.Lo[1]; j <= g.Hi[1]; j++ {
					for i := g.Lo[0]; i <= g.Hi[0]; i++ {
						if pd.At(c, i, j) != want[k] {
							t.Errorf("patch %d c=%d (%d,%d): parallel %v, serial %v",
								pd.Patch.ID, c, i, j, pd.At(c, i, j), want[k])
							return
						}
						k++
					}
				}
			}
			checked++
		}
	})
	if checked != len(serial) {
		t.Fatalf("checked %d patches, serial run had %d", checked, len(serial))
	}
}

// lockstepExchangers starts a p-rank cohort whose ranks exchange
// ghosts once per tick of the returned step function. The ranks warm up
// the persistent schedule (two full exchanges: the first builds plan,
// pack buffers, and requests; the second primes the substrate's payload
// free list) before the function returns. stop tears the cohort down.
func lockstepExchangers(p int, blocks []amr.Box, owners []int, attach ...func(*mpi.Comm)) (step func(), stop func()) {
	start := make([]chan struct{}, p)
	for r := range start {
		start[r] = make(chan struct{})
	}
	done := make(chan struct{}, p)
	go mpi.Run(p, mpi.CPlantModel, func(comm *mpi.Comm) {
		for _, a := range attach {
			a(comm)
		}
		h := amr.NewHierarchyDecomposed(amr.NewBox(0, 0, 23, 23), 2, 1, p, blocks, owners)
		d := New("u", h, 2, 2, comm)
		paintOwned(d, 0)
		d.ExchangeGhosts(0)
		d.ExchangeGhosts(0)
		done <- struct{}{}
		for range start[comm.Rank()] {
			d.ExchangeGhosts(0)
			done <- struct{}{}
		}
	})
	for r := 0; r < p; r++ {
		<-done
	}
	step = func() {
		for r := 0; r < p; r++ {
			start[r] <- struct{}{}
		}
		for r := 0; r < p; r++ {
			<-done
		}
	}
	stop = func() {
		for r := 0; r < p; r++ {
			close(start[r])
		}
	}
	return step, stop
}

// TestExchangeGhostsSteadyStateZeroAlloc enforces the persistent-
// communication contract: once the schedule, pack buffers, receive
// requests, and payload pool are warm, a full 4-rank coalesced exchange
// allocates nothing on any rank.
func TestExchangeGhostsSteadyStateZeroAlloc(t *testing.T) {
	const p = 4
	blocks, owners := raggedBlocks(24, p)
	step, stop := lockstepExchangers(p, blocks, owners)
	defer stop()
	// Global malloc counting: all p ranks run inside the measured
	// function, so any allocation anywhere in the exchange shows up.
	if avg := testing.AllocsPerRun(10, step); avg > 0 {
		t.Errorf("steady-state exchange allocates %.1f objects per round, want 0", avg)
	}
}

// TestExchangeGhostsZeroAllocTelemetryAttached repeats the steady-state
// allocation gate with the live telemetry plane wired to every rank's
// communicator (clock sampler + substrate event sink, exactly what
// ccarun -serve attaches). The exchange hot path has no telemetry emit
// sites, and the attached sink must not change that: still 0 allocs per
// round.
func TestExchangeGhostsZeroAllocTelemetryAttached(t *testing.T) {
	const p = 4
	hub := telemetry.NewHub(p, nil)
	blocks, owners := raggedBlocks(24, p)
	step, stop := lockstepExchangers(p, blocks, owners, func(comm *mpi.Comm) {
		rk := hub.Rank(comm.Rank())
		rk.SetClock(comm.VirtualTime)
		comm.SetEvents(rk.Substrate())
		rk.NoteStep(0)
	})
	defer stop()
	if avg := testing.AllocsPerRun(10, step); avg > 0 {
		t.Errorf("telemetry-attached exchange allocates %.1f objects per round, want 0", avg)
	}
}

// BenchmarkExchangeGhostsSteadyState times one lockstep 4-rank ghost
// exchange; run with -benchmem to see the 0 allocs/op.
func BenchmarkExchangeGhostsSteadyState(b *testing.B) {
	const p = 4
	blocks, owners := raggedBlocks(24, p)
	step, stop := lockstepExchangers(p, blocks, owners)
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// TestExchangeInfoWordsMatchTraffic pins the schedule's volume
// accounting to the substrate's word counter.
func TestExchangeInfoWordsMatchTraffic(t *testing.T) {
	const p = 4
	blocks, owners := raggedBlocks(24, p)
	mpi.Run(p, mpi.ZeroModel, func(comm *mpi.Comm) {
		h := amr.NewHierarchyDecomposed(amr.NewBox(0, 0, 23, 23), 2, 1, p, blocks, owners)
		d := New("u", h, 3, 2, comm)
		paintOwned(d, 0)
		info := d.ExchangeInfo(0)
		before := comm.Stats().WordsSent
		d.ExchangeGhosts(0)
		if got := comm.Stats().WordsSent - before; got != info.SendWords {
			t.Errorf("rank %d: exchange sent %d words, schedule claims %d", comm.Rank(), got, info.SendWords)
		}
	})
}
