package field

import (
	"fmt"

	"ccahydro/internal/amr"
	"ccahydro/internal/mpi"
)

// Generalized transfer schedules: the shadow-fill (prolongation),
// restriction, and regrid-remap transfer lists get the same treatment
// PR 2 gave the ghost exchange — the deterministic region enumeration
// and peer grouping are computed once per (phase, level, hierarchy
// generation) and reused, with persistent pack buffers and receive
// requests, and the blocking execute call split into Start (post all
// sends/receives) and Finish (apply local copies and unpacks in strict
// list order, waiting for each peer's message lazily at its first
// use). Remap goes further and runs one multi-level exchange epoch:
// every level's transfers are posted up front, and each level is
// finished only when the prolongation sweep reaches it.

// xferKey identifies a cached transfer schedule: one per phase and
// (fine) level.
type xferKey struct {
	ph    phase
	level int
}

// xferSchedule is the cached transfer plan of one (phase, level):
// the deterministic transfer list, its peer grouping, per-transfer
// receive-buffer offsets, persistent buffers, and — for the shadow and
// restrict phases — the coarse-space scratch patches the transfers
// read or write. Valid while the level object and hierarchy generation
// are unchanged.
type xferSchedule struct {
	lv   *amr.Level
	gen  int
	ts   []transfer
	plan commPlan

	// scratch holds the phase's patch-aligned intermediates (shadows
	// for phaseShadow, restriction temporaries for phaseRestrict),
	// keyed by fine patch ID. Allocated zeroed once per schedule:
	// every transfer and every averaging sweep rewrites exactly the
	// same cells on every reuse, and cells no transfer covers must
	// read as zero — which they do, forever, because nothing ever
	// writes them.
	scratch map[int]*PatchData

	// Persistent exchange state, reused by every Start/Finish cycle.
	sendBufs [][]float64
	reqs     []mpi.Request
	bufs     [][]float64
	waited   []bool
	// recvOf[i] is the plan.recvs index of the coalesced message
	// carrying transfer i (-1 if not received here); viewOff[i] its
	// word offset inside that buffer.
	recvOf  []int
	viewOff []int

	exch TransferExchange
}

// planXfer computes the peer grouping and receive-offset tables for
// s.ts and allocates the persistent buffers.
func (d *DataObject) planXfer(s *xferSchedule) {
	s.plan = d.buildPlan(s.ts)
	s.recvOf = make([]int, len(s.ts))
	s.viewOff = make([]int, len(s.ts))
	for i := range s.recvOf {
		s.recvOf[i] = -1
	}
	for k, pm := range s.plan.recvs {
		off := 0
		for _, idx := range pm.items {
			s.recvOf[idx] = k
			s.viewOff[idx] = off
			off += d.words(s.ts[idx])
		}
	}
	if d.comm != nil {
		s.reqs = make([]mpi.Request, len(s.plan.recvs))
		s.bufs = make([][]float64, len(s.plan.recvs))
		s.waited = make([]bool, len(s.plan.recvs))
		s.sendBufs = make([][]float64, len(s.plan.sends))
		for k, pm := range s.plan.sends {
			s.sendBufs[k] = make([]float64, 0, pm.words)
		}
	}
}

// xferScheduleFor returns the cached schedule of a phase on a (fine)
// level, rebuilding it only after a regrid (generation change) or
// hierarchy swap. Only phaseShadow and phaseRestrict are cacheable —
// remap schedules couple two hierarchies and are built transiently.
func (d *DataObject) xferScheduleFor(ph phase, level int) *xferSchedule {
	lv := d.h.Level(level)
	gen := d.h.Generation()
	key := xferKey{ph, level}
	if s, ok := d.xsched[key]; ok && s.lv == lv && s.gen == gen {
		return s
	}
	s := &xferSchedule{lv: lv, gen: gen}
	switch ph {
	case phaseShadow:
		s.scratch = make(map[int]*PatchData)
		for _, fp := range lv.Patches {
			if d.owns(fp) {
				s.scratch[fp.ID] = d.shadowFor(fp, d.h.Ratio)
			}
		}
		s.ts = d.buildShadowTransfers(level, s.scratch)
	case phaseRestrict:
		s.scratch = make(map[int]*PatchData)
		ratio := d.h.Ratio
		for _, fp := range lv.Patches {
			if d.owns(fp) {
				tp := &amr.Patch{ID: fp.ID, Level: level - 1, Box: fp.Box.Coarsen(ratio), Owner: fp.Owner}
				s.scratch[fp.ID] = NewPatchData(tp, d.NComp, 0)
			}
		}
		s.ts = d.buildRestrictTransfers(level)
	default:
		panic(fmt.Sprintf("field: phase %v is not schedule-cacheable", ph))
	}
	d.planXfer(s)
	if d.xsched == nil {
		d.xsched = make(map[xferKey]*xferSchedule)
	}
	d.xsched[key] = s
	d.xferBuilds++
	return s
}

// XferScheduleBuilds counts coarse–fine/restrict schedule constructions
// (cache misses); tests assert the cache only invalidates across
// regrids, mirroring ScheduleBuilds for the ghost phase.
func (d *DataObject) XferScheduleBuilds() int { return d.xferBuilds }

// TransferExchange is an in-flight split transfer phase: Start posted
// the coalesced sends and receives; Finish applies local copies and
// remote unpacks in strict transfer-list order (some phases rely on
// later transfers overwriting earlier ones), waiting for each peer's
// message lazily when its first transfer is applied — local applies
// overlap remote flight.
type TransferExchange struct {
	d              *DataObject
	s              *xferSchedule
	ph             phase
	level          int
	getSrc, getDst func(id int) *PatchData
	active         bool
}

// startTransfers posts the coalesced exchange described by s and
// returns its (schedule-resident, reused) handle. Collectively
// identical transfer lists on every rank are the caller's contract,
// exactly as for the ghost schedule.
func (d *DataObject) startTransfers(s *xferSchedule, ph phase, level int, getSrc, getDst func(id int) *PatchData) *TransferExchange {
	if s.exch.active {
		panic(fmt.Sprintf("field: %v transfer already in flight on level %d", ph, level))
	}
	if d.obs != nil {
		defer d.obs.Span("samr", spanName("xfer."+ph.String(), level))()
	}
	s.exch = TransferExchange{d: d, s: s, ph: ph, level: level, getSrc: getSrc, getDst: getDst, active: true}
	if d.comm != nil {
		tag := streamTag(ph, level)
		for k, pm := range s.plan.recvs {
			d.comm.IrecvInto(&s.reqs[k], pm.rank, tag)
		}
		for k, pm := range s.plan.sends {
			s.sendBufs[k] = d.packPeerInto(s.sendBufs[k], pm, s.ts, getSrc)
			d.comm.IsendBuffered(pm.rank, tag, s.sendBufs[k])
		}
	}
	return &s.exch
}

// Finish applies the posted transfer phase: every transfer in list
// order, waiting for a peer's coalesced message at the first transfer
// that needs it. Idempotent.
func (ex *TransferExchange) Finish() {
	if !ex.active {
		return
	}
	ex.active = false
	d, s := ex.d, ex.s
	if d.comm == nil {
		for _, t := range s.ts {
			dst := ex.getDst(t.dstID)
			src := ex.getSrc(t.srcID)
			if src != nil && dst != nil {
				dst.CopyRegion(src, t.region)
			}
		}
		return
	}
	if d.obs != nil {
		defer d.obs.Span("samr", spanName("xfer."+ex.ph.String()+".finish", ex.level))()
	}
	for i, t := range s.ts {
		switch {
		case t.dstOwner == d.rank && t.srcOwner != d.rank:
			k := s.recvOf[i]
			if !s.waited[k] {
				buf, _ := s.reqs[k].Wait()
				if pm := s.plan.recvs[k]; len(buf) != pm.words {
					panic(fmt.Sprintf("field: coalesced %v message from rank %d has %d words, schedule expects %d",
						ex.ph, pm.rank, len(buf), pm.words))
				}
				s.bufs[k] = buf
				s.waited[k] = true
			}
			w := d.words(t)
			ex.getDst(t.dstID).unpack(t.region, s.bufs[k][s.viewOff[i]:s.viewOff[i]+w])
		case t.dstOwner == d.rank && t.srcOwner == d.rank:
			ex.getDst(t.dstID).CopyRegion(ex.getSrc(t.srcID), t.region)
		}
	}
	for k := range s.waited {
		if s.waited[k] {
			d.comm.Recycle(s.bufs[k])
			s.bufs[k] = nil
			s.waited[k] = false
		}
	}
}
