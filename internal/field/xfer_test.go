package field

import (
	"sync"
	"testing"

	"ccahydro/internal/amr"
	"ccahydro/internal/mpi"
)

// twoLevel builds a serial 2-level hierarchy with a refined window and
// returns a painted 2-component data object over it.
func twoLevel(t *testing.T) (*amr.Hierarchy, *DataObject) {
	t.Helper()
	h := amr.NewHierarchy(amr.NewBox(0, 0, 31, 31), 2, 2, 1)
	f := amr.NewFlagField(h.LevelDomain(0))
	f.SetBox(amr.NewBox(8, 8, 23, 23))
	h.Regrid([]*amr.FlagField{f}, amr.DefaultRegridOptions)
	d := New("u", h, 2, 2, nil)
	paintOwned(d, 0)
	paintOwned(d, 1)
	return h, d
}

// TestXferScheduleCachedPerPhaseAndLevel asserts the transfer-schedule
// cache is keyed by (phase, level): repeated coarse–fine fills and
// restrictions rebuild nothing, and the prolongation path shares the
// shadow schedule with the ghost-fill path.
func TestXferScheduleCachedPerPhaseAndLevel(t *testing.T) {
	_, d := twoLevel(t)
	for i := 0; i < 3; i++ {
		d.FillCoarseFineGhosts(1, ProlongLinear)
	}
	if got := d.XferScheduleBuilds(); got != 1 {
		t.Fatalf("3 coarse-fine fills built %d schedules, want 1", got)
	}
	d.ProlongLevel(1, ProlongLinear) // same phaseShadow schedule
	if got := d.XferScheduleBuilds(); got != 1 {
		t.Fatalf("prolong after fills built %d schedules, want 1 (shadow schedule not shared)", got)
	}
	for i := 0; i < 3; i++ {
		d.RestrictLevel(1)
	}
	if got := d.XferScheduleBuilds(); got != 2 {
		t.Fatalf("3 restrictions built %d schedules total, want 2", got)
	}
}

// TestXferScheduleCacheInvalidatesOnRegrid is the staleness contract for
// the coarse–fine schedules: an in-place regrid bumps the hierarchy
// generation, and the next fill/restrict of each phase must rebuild its
// schedule exactly once — a reused stale schedule would move data for
// patches that no longer exist.
func TestXferScheduleCacheInvalidatesOnRegrid(t *testing.T) {
	h, d := twoLevel(t)
	d.FillCoarseFineGhosts(1, ProlongLinear)
	d.RestrictLevel(1)
	if got := d.XferScheduleBuilds(); got != 2 {
		t.Fatalf("warm-up built %d schedules, want 2", got)
	}
	gen0 := h.Generation()
	f := amr.NewFlagField(h.LevelDomain(0))
	f.SetBox(amr.NewBox(4, 4, 19, 19))
	h.Regrid([]*amr.FlagField{f}, amr.DefaultRegridOptions)
	if h.Generation() == gen0 {
		t.Fatalf("regrid did not bump the generation (%d)", gen0)
	}
	// Same level object index, new generation: both phases must miss.
	d.FillCoarseFineGhosts(1, ProlongLinear)
	d.RestrictLevel(1)
	if got := d.XferScheduleBuilds(); got != 4 {
		t.Fatalf("post-regrid fill+restrict built %d schedules total, want 4 (stale (level,generation) schedule reused)", got)
	}
	// And the rebuilt schedules are cached again.
	d.FillCoarseFineGhosts(1, ProlongLinear)
	d.RestrictLevel(1)
	if got := d.XferScheduleBuilds(); got != 4 {
		t.Fatalf("steady state after regrid built %d schedules total, want 4", got)
	}
}

// xferRegridSequence runs the mid-run regrid scenario on one rank
// (comm nil for the serial replica): build a 2-level hierarchy, warm the
// coarse–fine schedules, regrid GrACE-style into a fresh hierarchy
// object carrying the generation counter forward, remap, and warm the
// new object's schedules. It returns the remapped object and the two
// build counters.
func xferRegridSequence(comm *mpi.Comm, p int, blocks []amr.Box, owners []int) (nd *DataObject, oldBuilds, newBuilds int) {
	domain := amr.NewBox(0, 0, 23, 23)
	h := amr.NewHierarchyDecomposed(domain, 2, 2, p, blocks, owners)
	f := amr.NewFlagField(h.LevelDomain(0))
	f.SetBox(amr.NewBox(4, 4, 17, 15))
	h.Regrid([]*amr.FlagField{f}, amr.DefaultRegridOptions)
	d := New("u", h, 2, 2, comm)
	paintOwned(d, 0)
	paintOwned(d, 1)
	for i := 0; i < 2; i++ {
		d.FillCoarseFineGhosts(1, ProlongLinear)
		d.ExchangeGhosts(1)
		d.RestrictLevel(1)
	}
	// Mid-run regrid as the mesh component does it: a fresh hierarchy
	// object (same level-0 decomposition) inherits the generation
	// counter, regrids with new flags, and the data remaps onto it.
	h2 := amr.NewHierarchyDecomposed(domain, 2, 2, p, blocks, owners)
	h2.Regrids = h.Regrids
	f2 := amr.NewFlagField(h2.LevelDomain(0))
	f2.SetBox(amr.NewBox(8, 10, 21, 21))
	h2.Regrid([]*amr.FlagField{f2}, amr.DefaultRegridOptions)
	nd = d.Remap(h2, ProlongLinear)
	for i := 0; i < 2; i++ {
		nd.FillCoarseFineGhosts(1, ProlongLinear)
		nd.ExchangeGhosts(1)
		nd.RestrictLevel(1)
	}
	return nd, d.XferScheduleBuilds(), nd.XferScheduleBuilds()
}

// TestXferScheduleMidRunRegridParallelMatchesSerial runs the mid-run
// regrid scenario on 4 ranks and serially, and demands (a) every rank
// built each phase's schedule exactly once per hierarchy generation it
// touched, and (b) every cell of every patch — interiors and ghosts,
// both levels — of the remapped object is bit-for-bit the serial
// result. A stale schedule surviving the regrid would fail both.
func TestXferScheduleMidRunRegridParallelMatchesSerial(t *testing.T) {
	const p = 4
	blocks, owners := raggedBlocks(24, p)

	collect := func(d *DataObject, into map[int][]float64, mu *sync.Mutex) {
		mu.Lock()
		defer mu.Unlock()
		for l := 0; l < d.Hierarchy().NumLevels(); l++ {
			for _, pd := range d.LocalPatches(l) {
				g := pd.GrownBox()
				var vals []float64
				for c := 0; c < d.NComp; c++ {
					for j := g.Lo[1]; j <= g.Hi[1]; j++ {
						for i := g.Lo[0]; i <= g.Hi[0]; i++ {
							vals = append(vals, pd.At(c, i, j))
						}
					}
				}
				into[pd.Patch.ID] = vals
			}
		}
	}

	var mu sync.Mutex
	serial := make(map[int][]float64)
	nd, ob, nb := xferRegridSequence(nil, p, blocks, owners)
	collect(nd, serial, &mu)
	if ob != 2 || nb != 2 {
		t.Fatalf("serial replica built %d+%d schedules, want 2+2", ob, nb)
	}

	par := make(map[int][]float64)
	mpi.Run(p, mpi.CPlantModel, func(comm *mpi.Comm) {
		nd, ob, nb := xferRegridSequence(comm, p, blocks, owners)
		// One shadow + one restrict build per object on every rank —
		// never a rebuild per call, never a stale reuse across the
		// remap (the remapped object starts from its own empty cache).
		if ob != 2 || nb != 2 {
			t.Errorf("rank %d built %d+%d schedules, want 2+2", comm.Rank(), ob, nb)
		}
		collect(nd, par, &mu)
	})

	if len(par) != len(serial) || len(par) == 0 {
		t.Fatalf("collected %d parallel vs %d serial patches", len(par), len(serial))
	}
	for id, want := range serial {
		got := par[id]
		if len(got) != len(want) {
			t.Fatalf("patch %d: %d vs %d values", id, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("patch %d value %d: parallel %v, serial %v", id, k, got[k], want[k])
			}
		}
	}
}
