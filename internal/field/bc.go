package field

import "ccahydro/internal/amr"

// Physical boundary conditions, applied patch by patch — the paper's
// Boundary Condition subsystem works at patch granularity because BCs
// must be re-applied at every stage of a multi-stage integrator.

// Side identifies one face of the rectangular domain.
type Side int

// Domain faces.
const (
	XLo Side = iota
	XHi
	YLo
	YHi
)

// AllSides lists the four faces.
var AllSides = [4]Side{XLo, XHi, YLo, YHi}

func (s Side) String() string {
	return [...]string{"x-lo", "x-hi", "y-lo", "y-hi"}[s]
}

// BCKind selects the ghost-fill rule at a physical boundary.
type BCKind int

const (
	// BCOutflow copies the nearest interior cell (zero gradient).
	BCOutflow BCKind = iota
	// BCReflect mirrors interior cells; components listed in OddComps
	// flip sign (normal velocity at a wall).
	BCReflect
	// BCDirichlet imposes a fixed value.
	BCDirichlet
	// BCPeriodic wraps around the domain (serial fast path; in parallel
	// the wrap is handled as an exchange by the caller).
	BCPeriodic
)

// BCSpec is the rule for one side.
type BCSpec struct {
	Kind BCKind
	// Value is used by BCDirichlet.
	Value float64
	// OddComps lists component indices whose mirror value flips sign
	// under BCReflect.
	OddComps []int
}

func (b BCSpec) odd(c int) bool {
	for _, o := range b.OddComps {
		if o == c {
			return true
		}
	}
	return false
}

// BCSet holds one rule per side.
type BCSet [4]BCSpec

// UniformBC builds a BCSet with the same rule on all sides.
func UniformBC(spec BCSpec) BCSet {
	return BCSet{spec, spec, spec, spec}
}

// ApplyPhysicalBCs fills ghost cells of every local patch on a level
// that lie outside the physical domain. It is purely local (no
// communication): each patch touching a domain face fills its own
// out-of-domain ghosts from its own interior.
func (d *DataObject) ApplyPhysicalBCs(level int, bcs BCSet) {
	domain := d.h.LevelDomain(level)
	for _, pd := range d.LocalPatches(level) {
		applyPatchBCs(pd, domain, d.Ghost, bcs)
	}
}

func applyPatchBCs(pd *PatchData, domain amr.Box, ghost int, bcs BCSet) {
	box := pd.Interior()
	g := pd.GrownBox()
	// X faces first, then Y over the full grown width so corners get
	// filled by composition.
	if box.Lo[0] == domain.Lo[0] {
		fillSide(pd, bcs[XLo], XLo, domain, ghost)
	}
	if box.Hi[0] == domain.Hi[0] {
		fillSide(pd, bcs[XHi], XHi, domain, ghost)
	}
	if box.Lo[1] == domain.Lo[1] {
		fillSide(pd, bcs[YLo], YLo, domain, ghost)
	}
	if box.Hi[1] == domain.Hi[1] {
		fillSide(pd, bcs[YHi], YHi, domain, ghost)
	}
	_ = g
}

func fillSide(pd *PatchData, spec BCSpec, side Side, domain amr.Box, ghost int) {
	g := pd.GrownBox()
	nx, _ := domain.Size()
	_, ny := domain.Size()
	for c := 0; c < pd.NComp; c++ {
		for layer := 1; layer <= ghost; layer++ {
			switch side {
			case XLo:
				i := domain.Lo[0] - layer
				for j := g.Lo[1]; j <= g.Hi[1]; j++ {
					pd.Set(c, i, j, bcValue(pd, spec, c, i, j, side, domain, layer, nx, ny))
				}
			case XHi:
				i := domain.Hi[0] + layer
				for j := g.Lo[1]; j <= g.Hi[1]; j++ {
					pd.Set(c, i, j, bcValue(pd, spec, c, i, j, side, domain, layer, nx, ny))
				}
			case YLo:
				j := domain.Lo[1] - layer
				for i := g.Lo[0]; i <= g.Hi[0]; i++ {
					pd.Set(c, i, j, bcValue(pd, spec, c, i, j, side, domain, layer, nx, ny))
				}
			case YHi:
				j := domain.Hi[1] + layer
				for i := g.Lo[0]; i <= g.Hi[0]; i++ {
					pd.Set(c, i, j, bcValue(pd, spec, c, i, j, side, domain, layer, nx, ny))
				}
			}
		}
	}
}

// bcValue computes the ghost value at (i, j), one of the out-of-domain
// layers on the given side. Source cells are clamped into the patch's
// grown box so narrow patches still work.
func bcValue(pd *PatchData, spec BCSpec, c, i, j int, side Side, domain amr.Box, layer, nx, ny int) float64 {
	clamp := func(i2, j2 int) (int, int) {
		g := pd.GrownBox()
		if i2 < g.Lo[0] {
			i2 = g.Lo[0]
		}
		if i2 > g.Hi[0] {
			i2 = g.Hi[0]
		}
		if j2 < g.Lo[1] {
			j2 = g.Lo[1]
		}
		if j2 > g.Hi[1] {
			j2 = g.Hi[1]
		}
		return i2, j2
	}
	switch spec.Kind {
	case BCDirichlet:
		return spec.Value
	case BCOutflow:
		var si, sj int
		switch side {
		case XLo:
			si, sj = domain.Lo[0], j
		case XHi:
			si, sj = domain.Hi[0], j
		case YLo:
			si, sj = i, domain.Lo[1]
		case YHi:
			si, sj = i, domain.Hi[1]
		}
		si, sj = clamp(si, sj)
		return pd.At(c, si, sj)
	case BCReflect:
		var si, sj int
		switch side {
		case XLo:
			si, sj = domain.Lo[0]+layer-1, j
		case XHi:
			si, sj = domain.Hi[0]-layer+1, j
		case YLo:
			si, sj = i, domain.Lo[1]+layer-1
		case YHi:
			si, sj = i, domain.Hi[1]-layer+1
		}
		si, sj = clamp(si, sj)
		v := pd.At(c, si, sj)
		if spec.odd(c) {
			v = -v
		}
		return v
	case BCPeriodic:
		var si, sj int
		switch side {
		case XLo:
			si, sj = i+nx, j
		case XHi:
			si, sj = i-nx, j
		case YLo:
			si, sj = i, j+ny
		case YHi:
			si, sj = i, j-ny
		}
		si, sj = clamp(si, sj)
		return pd.At(c, si, sj)
	}
	return 0
}
