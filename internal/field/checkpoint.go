package field

import (
	"encoding/gob"
	"fmt"
	"io"

	"ccahydro/internal/amr"
	"ccahydro/internal/mpi"
)

// Checkpoint/restart: each rank serializes its own shard (the mesh
// geometry plus the data of the patches it owns) with encoding/gob.
// Restart reconstructs the hierarchy from the embedded snapshot and
// reattaches the data by patch ID, so a run can resume exactly — the
// standard file-per-rank scheme SAMR production codes use.

// checkpointHeader is the serialized form of one rank's shard.
type checkpointHeader struct {
	Name      string
	NComp     int
	Ghost     int
	Names     []string
	Rank      int
	Hierarchy amr.Snapshot
	Patches   []patchBlob
}

// patchBlob is one owned patch's raw storage (including ghosts, which
// avoids a post-restart exchange before the first use).
type patchBlob struct {
	ID   int
	Data []float64
}

// WriteCheckpoint serializes this rank's shard of the DataObject.
func (d *DataObject) WriteCheckpoint(w io.Writer) error {
	hdr := checkpointHeader{
		Name:      d.Name,
		NComp:     d.NComp,
		Ghost:     d.Ghost,
		Names:     d.Names,
		Rank:      d.rank,
		Hierarchy: d.h.Snapshot(),
	}
	for l := 0; l < d.h.NumLevels(); l++ {
		for _, pd := range d.LocalPatches(l) {
			hdr.Patches = append(hdr.Patches, patchBlob{ID: pd.Patch.ID, Data: pd.data})
		}
	}
	return gob.NewEncoder(w).Encode(&hdr)
}

// ReadCheckpoint reconstructs one rank's shard: it rebuilds the
// hierarchy from the snapshot and returns a DataObject holding the
// saved patch data. comm is nil for serial restarts; for parallel
// restarts each rank reads the shard it wrote (the rank and cohort
// size must match the saved ones).
func ReadCheckpoint(r io.Reader, comm *mpi.Comm) (*DataObject, error) {
	var hdr checkpointHeader
	if err := gob.NewDecoder(r).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("field: reading checkpoint: %w", err)
	}
	h, err := amr.FromSnapshot(hdr.Hierarchy)
	if err != nil {
		return nil, fmt.Errorf("field: checkpoint hierarchy: %w", err)
	}
	if comm != nil {
		if comm.Size() != hdr.Hierarchy.NumRanks {
			return nil, fmt.Errorf("field: checkpoint written for %d ranks, restarting on %d",
				hdr.Hierarchy.NumRanks, comm.Size())
		}
		if comm.Rank() != hdr.Rank {
			return nil, fmt.Errorf("field: rank %d reading rank-%d shard", comm.Rank(), hdr.Rank)
		}
	} else if hdr.Hierarchy.NumRanks > 1 {
		return nil, fmt.Errorf("field: parallel checkpoint (%d ranks) needs a communicator",
			hdr.Hierarchy.NumRanks)
	}
	d := New(hdr.Name, h, hdr.NComp, hdr.Ghost, comm)
	d.Names = hdr.Names
	for _, blob := range hdr.Patches {
		pd := d.Local(blob.ID)
		if pd == nil {
			return nil, fmt.Errorf("field: checkpoint patch %d not present in rebuilt hierarchy", blob.ID)
		}
		if len(pd.data) != len(blob.Data) {
			return nil, fmt.Errorf("field: checkpoint patch %d size %d != expected %d",
				blob.ID, len(blob.Data), len(pd.data))
		}
		copy(pd.data, blob.Data)
	}
	return d, nil
}
