package field

import "fmt"

// Raw storage access for the checkpoint subsystem: a checkpoint saves a
// patch's complete backing array (interior plus ghosts, all components)
// and restores it verbatim, so a resumed run starts from bit-identical
// state without a post-restart ghost exchange.

// RawData returns the patch's backing array: component-major over the
// grown (ghost-included) box. The slice aliases live storage — callers
// serialize it synchronously or copy before mutating the field.
func (pd *PatchData) RawData() []float64 {
	return pd.data
}

// SetRawData overwrites the patch's backing array from a checkpointed
// blob. The length must match the allocation exactly.
func (pd *PatchData) SetRawData(data []float64) error {
	if len(data) != len(pd.data) {
		return fmt.Errorf("field: patch %d raw data length %d, want %d",
			pd.Patch.ID, len(data), len(pd.data))
	}
	copy(pd.data, data)
	return nil
}
