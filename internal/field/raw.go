package field

import (
	"fmt"
	"math"
)

// Raw storage access for the checkpoint subsystem: a checkpoint saves a
// patch's complete backing array (interior plus ghosts, all components)
// and restores it verbatim, so a resumed run starts from bit-identical
// state without a post-restart ghost exchange.

// RawData returns the patch's backing array: component-major over the
// grown (ghost-included) box. The slice aliases live storage — callers
// serialize it synchronously or copy before mutating the field.
func (pd *PatchData) RawData() []float64 {
	return pd.data
}

// SetRawData overwrites the patch's backing array from a checkpointed
// blob. The length must match the allocation exactly.
func (pd *PatchData) SetRawData(data []float64) error {
	if len(data) != len(pd.data) {
		return fmt.Errorf("field: patch %d raw data length %d, want %d",
			pd.Patch.ID, len(data), len(pd.data))
	}
	copy(pd.data, data)
	return nil
}

// FingerprintSeed is the FNV-1a 64 offset basis: pass it as the initial
// state to the first Fingerprint in a chain.
const FingerprintSeed uint64 = 14695981039346656037

const fingerprintPrime uint64 = 1099511628211

// Fingerprint folds the patch's raw float bits (interior plus ghosts,
// all components — exactly the bytes a checkpoint would store) into a
// running FNV-1a 64 state and returns the new state. Incremental
// checkpointing uses it to detect patches whose stored bytes would be
// unchanged since the last durable checkpoint: bit-identical data —
// including NaN payloads and signed zeros — hashes identically, and any
// single-bit flip changes the result.
func (pd *PatchData) Fingerprint(h uint64) uint64 {
	for _, v := range pd.data {
		bits := math.Float64bits(v)
		for s := uint(0); s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= fingerprintPrime
		}
	}
	return h
}
