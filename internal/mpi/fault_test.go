package mpi

import (
	"errors"
	"sync/atomic"
	"testing"
)

// A killed rank must poison the world: peers blocked in receives and
// barriers unwind instead of deadlocking, and Failure reports the fault.
func TestFaultKillUnblocksPeers(t *testing.T) {
	w := NewWorld(4, ZeroModel)
	w.InjectFault(Fault{Rank: 2, Kind: FaultKill, AtStep: 3, AtSend: 0})
	var completed atomic.Int32
	RunOn(w, func(c *Comm) {
		for step := 0; step < 10; step++ {
			c.NoteStep(step)
			// Ring exchange: every rank sends right, receives from left.
			right := (c.Rank() + 1) % c.Size()
			left := (c.Rank() - 1 + c.Size()) % c.Size()
			c.Send(right, 7, []float64{float64(step)})
			c.Recv(left, 7)
			c.Barrier()
		}
		completed.Add(1)
	})
	if completed.Load() != 0 {
		t.Fatalf("%d ranks completed a run that should have aborted", completed.Load())
	}
	err := w.Failure()
	if err == nil {
		t.Fatal("Failure() = nil after injected kill")
	}
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("failure %v does not match ErrRankFailed", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Rank != 2 {
		t.Fatalf("failure %v does not identify rank 2", err)
	}
}

// The send-ordinal trigger must fire on the Nth point-to-point send.
func TestFaultKillAtSend(t *testing.T) {
	w := NewWorld(2, ZeroModel)
	w.InjectFault(Fault{Rank: 0, Kind: FaultKill, AtStep: -1, AtSend: 3})
	var sendsDone atomic.Int32
	RunOn(w, func(c *Comm) {
		if c.Rank() != 0 {
			// Peer just drains whatever arrives; it unwinds via the
			// poisoned-world gate in Recv.
			for i := 0; ; i++ {
				c.Recv(0, AnyTag)
			}
		}
		for i := 0; i < 10; i++ {
			c.Send(1, i, []float64{1})
			sendsDone.Add(1)
		}
	})
	if got := sendsDone.Load(); got != 2 {
		t.Fatalf("rank 0 completed %d sends before dying, want 2", got)
	}
	if err := w.Failure(); !errors.Is(err, ErrRankFailed) {
		t.Fatalf("Failure() = %v, want ErrRankFailed", err)
	}
}

// A stall only delays the rank's virtual clock; the run completes.
func TestFaultStallCompletes(t *testing.T) {
	w := NewWorld(2, ZeroModel)
	w.InjectFault(Fault{Rank: 1, Kind: FaultStall, AtStep: 1, AtSend: 0, StallSeconds: 2.5})
	var completed atomic.Int32
	RunOn(w, func(c *Comm) {
		for step := 0; step < 3; step++ {
			c.NoteStep(step)
			c.Barrier()
		}
		completed.Add(1)
	})
	if completed.Load() != 2 {
		t.Fatalf("only %d/2 ranks completed", completed.Load())
	}
	if err := w.Failure(); err != nil {
		t.Fatalf("stall must not poison the world: %v", err)
	}
	if got := w.MaxVirtualTime(); got < 2.5 {
		t.Fatalf("virtual time %g does not include the 2.5 s stall", got)
	}
}

// Nonblocking receives blocked in Wait must also unwind on abort.
func TestFaultKillUnblocksWait(t *testing.T) {
	w := NewWorld(2, ZeroModel)
	w.InjectFault(Fault{Rank: 0, Kind: FaultKill, AtStep: 1, AtSend: 0})
	var completed atomic.Int32
	RunOn(w, func(c *Comm) {
		if c.Rank() == 1 {
			req := c.Irecv(0, 5)
			req.Wait() // rank 0 never sends: must unwind, not hang
			completed.Add(1)
			return
		}
		c.NoteStep(0)
		c.NoteStep(1) // dies here
		completed.Add(1)
	})
	if completed.Load() != 0 {
		t.Fatal("a rank completed past the injected failure")
	}
	if err := w.Failure(); !errors.Is(err, ErrRankFailed) {
		t.Fatalf("Failure() = %v, want ErrRankFailed", err)
	}
}

// Restore hooks: the virtual clock and endpoint stats must be
// reinstatable from a checkpointed snapshot.
func TestRestoreClockAndStats(t *testing.T) {
	Run(1, ZeroModel, func(c *Comm) {
		c.AdvanceVirtualTime(12.25)
		if got := c.VirtualTime(); got != 12.25 {
			t.Errorf("VirtualTime = %g, want 12.25", got)
		}
		// advanceTo never moves backwards.
		c.AdvanceVirtualTime(1.0)
		if got := c.VirtualTime(); got != 12.25 {
			t.Errorf("VirtualTime moved backwards to %g", got)
		}
		want := CommStats{Sends: 3, Recvs: 2, WordsSent: 40, CommSeconds: 1.5, HiddenSeconds: 0.25}
		c.RestoreStats(want)
		if got := c.Stats(); got != want {
			t.Errorf("Stats = %+v, want %+v", got, want)
		}
	})
}
