package mpi

import "fmt"

// Nonblocking point-to-point primitives (MPI_Isend/Irecv/Wait/Test) and
// the virtual-clock accounting that makes compute/communication overlap
// visible to the simulated-cluster experiments.
//
// The clock model: a blocking Send charges alpha + n*beta to the
// sender's clock inline (the rank sits in the library while the message
// goes out). An Isend instead stamps the message's network completion
// time at now + alpha + n*beta and returns without advancing the
// sender's clock — the transfer proceeds "on the NIC" concurrently with
// whatever the rank computes next. The receiver's Wait advances its
// clock to max(its own time, the message's completion time), so a
// message completes at max(post + alpha + n*beta, wait time): compute
// performed between Irecv and Wait hides message latency, and only the
// remaining stall is ever paid.

// Request is the handle returned by Isend/Irecv. A send request is
// complete at creation (sends are buffered); a receive request completes
// in Wait/Test when a matching message is consumed.
type Request struct {
	c      *Comm
	isSend bool

	// Receive matching state.
	src, tag int
	postTime float64 // receiver's virtual clock when the Irecv was posted

	done   bool
	data   []float64
	status Status
}

// Isend posts a buffered nonblocking send. The message's network
// completion time is stamped at now + Cost(n), but the sender's clock
// does not advance: the transfer overlaps with subsequent compute. The
// returned request is already complete (MPI_Bsend semantics).
func (c *Comm) Isend(dst int, tag int, data []float64) *Request {
	c.IsendBuffered(dst, tag, data)
	return &Request{c: c, isSend: true, done: true}
}

// IsendBuffered is Isend without materializing a Request handle. Send
// requests are complete at creation, so persistent communication
// schedules that never wait on their sends use this form to keep the
// steady-state exchange allocation-free.
func (c *Comm) IsendBuffered(dst int, tag int, data []float64) {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("mpi: isend to invalid rank %d (size %d)", dst, c.Size()))
	}
	c.world.failGate()
	c.noteSend(c.sends + 1)
	wdst := c.worldRankOf(dst)
	cp := c.world.takeBuf(len(data))
	copy(cp, data)
	cost := c.world.model.Cost(len(data))
	sendT := c.world.clocks[c.rank].now() + cost
	c.sends++
	c.wordsSent += len(data)
	// Relative to a blocking Send, the whole transfer cost is hidden
	// behind the sender's ongoing compute.
	c.hiddenSeconds += cost
	m := message{from: c.Rank(), tag: tag, comm: c.commID, data: cp, sendTime: sendT}
	c.traceSend(&m, wdst, sendT-cost, cost)
	box := c.world.box(wdst, c.rank)
	box.mu.Lock()
	box.queue = append(box.queue, m)
	box.cond.Broadcast()
	box.mu.Unlock()
	c.world.noteArrival(wdst)
}

// Irecv posts a nonblocking receive for (src, tag). src may be
// AnySource and tag may be AnyTag. The matching message is consumed by
// Wait or a successful Test; compute charged between the post and the
// wait counts toward hiding the message's flight time.
func (c *Comm) Irecv(src int, tag int) *Request {
	if src != AnySource && (src < 0 || src >= c.Size()) {
		panic(fmt.Sprintf("mpi: irecv from invalid rank %d (size %d)", src, c.Size()))
	}
	return &Request{c: c, src: src, tag: tag, postTime: c.world.clocks[c.rank].now()}
}

// IrecvInto posts a nonblocking receive reusing a caller-owned Request
// value, so persistent communication schedules can repost their fixed
// receive set every exchange without allocating (the MPI_Recv_init /
// MPI_Start pattern). The previous contents of r are discarded.
func (c *Comm) IrecvInto(r *Request, src int, tag int) *Request {
	if src != AnySource && (src < 0 || src >= c.Size()) {
		panic(fmt.Sprintf("mpi: irecv from invalid rank %d (size %d)", src, c.Size()))
	}
	*r = Request{c: c, src: src, tag: tag, postTime: c.world.clocks[c.rank].now()}
	return r
}

// Wait blocks until the request completes and returns the payload (nil
// with a zero Status for send requests).
func (r *Request) Wait() ([]float64, Status) {
	if r.done {
		return r.data, r.status
	}
	var m message
	if r.src == AnySource {
		m = r.c.matchAny(r.tag)
	} else {
		m = r.c.match(r.src, r.tag)
	}
	r.c.finishRecvAt(m, r.postTime)
	r.done = true
	r.data = m.data
	r.status = Status{Source: m.from, Tag: m.tag, Count: len(m.data)}
	return r.data, r.status
}

// Test polls the request without blocking. It returns true once the
// request is complete; payload and status are then available from Wait.
func (r *Request) Test() bool {
	if r.done {
		return true
	}
	if r.src == AnySource {
		panic("mpi: Test on AnySource request not supported")
	}
	wsrc := r.c.worldRankOf(r.src)
	box := r.c.world.box(r.c.rank, wsrc)
	box.mu.Lock()
	var m message
	found := false
	for i, cand := range box.queue {
		if cand.comm == r.c.commID && (r.tag == AnyTag || cand.tag == r.tag) {
			m = cand
			box.queue = append(box.queue[:i], box.queue[i+1:]...)
			found = true
			break
		}
	}
	box.mu.Unlock()
	if !found {
		return false
	}
	r.c.finishRecvAt(m, r.postTime)
	r.done = true
	r.data = m.data
	r.status = Status{Source: m.from, Tag: m.tag, Count: len(m.data)}
	return true
}

// Waitall completes every request in order.
func Waitall(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// match blocks until a message matching (src, tag) is available and
// removes it from the mailbox.
func (c *Comm) match(src, tag int) message {
	wsrc := c.worldRankOf(src)
	box := c.world.box(c.rank, wsrc)
	box.mu.Lock()
	defer box.mu.Unlock()
	for {
		for i, m := range box.queue {
			if m.comm == c.commID && (tag == AnyTag || m.tag == tag) {
				box.queue = append(box.queue[:i], box.queue[i+1:]...)
				return m
			}
		}
		// The deferred unlock releases box.mu as the signal unwinds.
		c.world.failGate()
		box.cond.Wait()
	}
}

// matchAny is match over all sources, parking on the arrival signal
// between scans (same strategy as recvAny).
func (c *Comm) matchAny(tag int) message {
	w := c.world
	for {
		w.arrivalMu[c.rank].Lock()
		seen := w.arrivals[c.rank]
		w.arrivalMu[c.rank].Unlock()

		for logical := 0; logical < c.Size(); logical++ {
			wsrc := c.worldRankOf(logical)
			if wsrc == c.rank {
				continue
			}
			box := w.box(c.rank, wsrc)
			box.mu.Lock()
			for i, m := range box.queue {
				if m.comm == c.commID && (tag == AnyTag || m.tag == tag) {
					box.queue = append(box.queue[:i], box.queue[i+1:]...)
					box.mu.Unlock()
					return m
				}
			}
			box.mu.Unlock()
		}

		w.arrivalMu[c.rank].Lock()
		for w.arrivals[c.rank] == seen {
			if err := w.Failure(); err != nil {
				w.arrivalMu[c.rank].Unlock()
				panic(&abortSignal{err: err})
			}
			w.arrivalCond[c.rank].Wait()
		}
		w.arrivalMu[c.rank].Unlock()
	}
}

// finishRecvAt completes a receive posted at postTime: the receiver's
// clock advances to the message's network completion time, the residual
// stall is charged as visible comm time, and the flight-time slice the
// receiver covered with its own compute since the post is credited as
// hidden.
func (c *Comm) finishRecvAt(m message, postTime float64) {
	cl := c.world.clocks[c.rank]
	now := cl.now()
	stall := m.sendTime - now
	if stall < 0 {
		stall = 0
	}
	covered := m.sendTime
	if now < covered {
		covered = now
	}
	covered -= postTime
	if covered < 0 {
		covered = 0
	}
	c.commSeconds += stall
	c.hiddenSeconds += covered
	cl.advanceTo(m.sendTime)
	c.recvs++
	c.traceRecv(m, cl.now())
}

// CommStats is the traffic summary of one endpoint.
type CommStats struct {
	// Sends and Recvs count point-to-point messages.
	Sends, Recvs int
	// WordsSent is the total float64 words sent point-to-point.
	WordsSent int
	// CommSeconds is virtual time the rank visibly spent on
	// communication: inline blocking-send charges plus receive stalls.
	CommSeconds float64
	// HiddenSeconds is virtual transfer time that never reached the
	// rank's clock: Isend costs running behind compute plus the
	// message-flight slices covered between Irecv and Wait.
	HiddenSeconds float64
}

// Stats returns this endpoint's accumulated traffic statistics.
func (c *Comm) Stats() CommStats {
	return CommStats{
		Sends:         c.sends,
		Recvs:         c.recvs,
		WordsSent:     c.wordsSent,
		CommSeconds:   c.commSeconds,
		HiddenSeconds: c.hiddenSeconds,
	}
}
