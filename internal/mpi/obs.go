package mpi

import "ccahydro/internal/obs"

// Tracer integration: with a tracer attached, every point-to-point
// message becomes a flight slice on the virtual-cluster trace row plus
// a flow arrow from the sender's post to the receiver's completion —
// the timeline view of the clock model in this package's doc comment.

// SetTracer attaches an event tracer to this endpoint. Events are
// emitted on the virtual-clock track of this endpoint's world rank.
// nil (the default) disables emission.
func (c *Comm) SetTracer(t *obs.Tracer) { c.tracer = t }

// Tracer returns the attached tracer, or nil.
func (c *Comm) Tracer() *obs.Tracer { return c.tracer }

// trafficCat classifies a message tag for trace categories: ghost
// exchange streams use the large negative stream-tag space, collectives
// the small negative space, and user point-to-point the non-negative.
func trafficCat(tag int) string {
	switch {
	case tag <= -100000:
		return "halo"
	case tag < 0:
		return "coll"
	}
	return "p2p"
}

// traceSend stamps a flow id on a message about to be queued and emits
// its flight slice and flow start. postT is the sender's virtual clock
// at the post; cost the modeled transfer time. Returns the flow id (0
// when tracing is off).
func (c *Comm) traceSend(m *message, wdst int, postT, cost float64) {
	if c.tracer == nil {
		return
	}
	id := c.tracer.NextFlowID()
	m.flow = id
	c.tracer.VirtualSend(id, trafficCat(m.tag), c.rank, wdst, postT, cost, len(m.data))
}

// traceRecv closes the flow arrow on the receiver's clock track at the
// completion time atSec.
func (c *Comm) traceRecv(m message, atSec float64) {
	if c.tracer == nil || m.flow == 0 {
		return
	}
	c.tracer.VirtualRecv(m.flow, trafficCat(m.tag), c.rank, atSec, len(m.data))
}
