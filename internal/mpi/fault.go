package mpi

import (
	"errors"
	"fmt"
)

// Fault injection: deterministic, seed-free rank failures for
// exercising checkpoint/restart recovery. A fault is configured on the
// World before the job launches and fires at an exact, reproducible
// point of the execution — a chosen driver step (reported through
// Comm.NoteStep) or a chosen point-to-point send — on a chosen rank.
//
// A *kill* poisons the whole world: the failing rank unwinds, every
// rank blocked in a receive, wait, or barrier wakes up and unwinds too,
// and Run returns with World.Failure() reporting the fault. The caller
// (a supervisor loop) can then roll back to the last durable checkpoint
// and relaunch. A *stall* only delays the rank's virtual clock — the
// run completes, and the hiccup is visible in the virtual-time report.

// FaultKind selects what the injected fault does when it triggers.
type FaultKind int

const (
	// FaultKill terminates the rank and aborts the world.
	FaultKill FaultKind = iota
	// FaultStall charges StallSeconds to the rank's virtual clock.
	FaultStall
)

func (k FaultKind) String() string {
	if k == FaultStall {
		return "stall"
	}
	return "kill"
}

// Fault describes one injected failure. Exactly one trigger applies:
// AtStep >= 0 fires when the rank reports that driver step through
// NoteStep; otherwise AtSend >= 1 fires on the rank's Nth
// point-to-point send (blocking or nonblocking, 1-based).
type Fault struct {
	Rank int
	Kind FaultKind
	// AtStep triggers at the start of this driver step (0-based);
	// negative disables the step trigger.
	AtStep int
	// AtSend triggers on the rank's Nth send (1-based); <= 0 disables.
	AtSend int
	// StallSeconds is the virtual-clock delay of a FaultStall.
	StallSeconds float64
}

// ErrRankFailed is the sentinel matched by errors.Is on every error
// produced by an injected (or future real) rank failure.
var ErrRankFailed = errors.New("mpi: rank failed")

// FaultError reports which rank failed and where. It matches
// ErrRankFailed under errors.Is.
type FaultError struct {
	Rank int
	At   string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("mpi: rank %d failed at %s", e.Rank, e.At)
}

// Unwrap ties FaultError to the ErrRankFailed sentinel.
func (e *FaultError) Unwrap() error { return ErrRankFailed }

// abortSignal is the panic payload used to unwind a rank's goroutine
// when the world is poisoned. Run recovers exactly this type; any other
// panic keeps crashing the process.
type abortSignal struct{ err error }

// IsAbortPanic reports whether a recovered panic value is the
// substrate's own unwind signal. Outer recover handlers (a crash
// flight recorder, say) use it to tell a controlled world abort —
// which the rank runner handles itself — from a genuine crash.
func IsAbortPanic(rec any) bool {
	_, ok := rec.(*abortSignal)
	return ok
}

// EventSink receives structured notifications of substrate-level
// events: fault injections firing and rank failures. The live
// telemetry plane implements it; the substrate itself stays
// observability-agnostic. step is -1 when the event is not tied to a
// driver step the substrate knows about. Implementations must be
// safe to call from the failing rank's goroutine mid-unwind.
type EventSink interface {
	Emit(kind string, step int, detail string)
}

// SetEvents attaches an event sink to this rank's communicator. Call
// before the run starts; a nil-handle-free assignment keeps the
// detached path a single pointer test.
func (c *Comm) SetEvents(sink EventSink) {
	c.events = sink
}

// InjectFault arms one fault on the world. Call before launching rank
// bodies; at most one fault is armed at a time and it fires once.
func (w *World) InjectFault(f Fault) {
	if f.Rank < 0 || f.Rank >= w.size {
		panic(fmt.Sprintf("mpi: fault rank %d out of range (size %d)", f.Rank, w.size))
	}
	w.fault.mu.Lock()
	w.fault.armed = &f
	w.fault.fired = false
	w.fault.mu.Unlock()
}

// Abort poisons the world with err: every blocked collective or receive
// wakes and unwinds, and Failure reports err. The first abort wins.
func (w *World) Abort(err error) {
	w.fault.mu.Lock()
	if w.fault.failure == nil {
		w.fault.failure = err
	}
	w.fault.mu.Unlock()
	// Wake every parked rank: mailbox waiters, barrier waiters, and
	// AnySource arrival waiters all re-check the failure flag.
	w.mu.Lock()
	for _, boxes := range w.mail {
		for _, b := range boxes {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		}
	}
	w.mu.Unlock()
	w.barrier.mu.Lock()
	w.barrier.cond.Broadcast()
	w.barrier.mu.Unlock()
	for r := range w.arrivalCond {
		w.arrivalMu[r].Lock()
		w.arrivalCond[r].Broadcast()
		w.arrivalMu[r].Unlock()
	}
}

// Failure returns the error the world was aborted with, or nil.
func (w *World) Failure() error {
	w.fault.mu.Lock()
	defer w.fault.mu.Unlock()
	return w.fault.failure
}

// failGate panics with the abort signal when the world is poisoned.
// Blocking operations call it before parking and after every wakeup.
func (w *World) failGate() {
	w.fault.mu.Lock()
	err := w.fault.failure
	w.fault.mu.Unlock()
	if err != nil {
		panic(&abortSignal{err: err})
	}
}

// takeFault claims the armed fault for (rank, at) if its trigger
// matches; the fault fires at most once per world.
func (w *World) takeFault(rank int, match func(*Fault) bool) *Fault {
	w.fault.mu.Lock()
	defer w.fault.mu.Unlock()
	f := w.fault.armed
	if f == nil || w.fault.fired || f.Rank != rank || !match(f) {
		return nil
	}
	w.fault.fired = true
	return f
}

// trigger executes a claimed fault on the calling rank.
func (c *Comm) trigger(f *Fault, at string) {
	if c.events != nil {
		c.events.Emit("fault.inject", -1, fmt.Sprintf("%s at %s", f.Kind, at))
	}
	if f.Kind == FaultStall {
		c.world.clocks[c.rank].add(f.StallSeconds)
		return
	}
	err := &FaultError{Rank: c.rank, At: at}
	c.world.Abort(err)
	panic(&abortSignal{err: err})
}

// NoteStep reports that this rank is entering driver step `step`. It is
// the step-granularity fault trigger point and a cheap fail-fast gate:
// a rank that survived into a poisoned world unwinds here instead of
// computing a step nobody will ever consume.
func (c *Comm) NoteStep(step int) {
	c.world.failGate()
	if f := c.world.takeFault(c.rank, func(f *Fault) bool { return f.AtStep >= 0 && f.AtStep == step }); f != nil {
		c.trigger(f, fmt.Sprintf("step %d", step))
	}
}

// noteSend is the send-granularity trigger, called with the 1-based
// send ordinal about to be issued.
func (c *Comm) noteSend(n int) {
	if f := c.world.takeFault(c.rank, func(f *Fault) bool { return f.AtSend > 0 && f.AtSend == n }); f != nil {
		c.trigger(f, fmt.Sprintf("send %d", n))
	}
}

// AdvanceVirtualTime moves this rank's virtual clock forward to at
// least t — the restart hook that reinstates a checkpointed clock.
func (c *Comm) AdvanceVirtualTime(t float64) {
	c.world.clocks[c.rank].advanceTo(t)
}

// RestoreStats reinstates checkpointed endpoint traffic counters, so
// comm statistics accumulated before a restart survive it.
func (c *Comm) RestoreStats(s CommStats) {
	c.sends = s.Sends
	c.recvs = s.Recvs
	c.wordsSent = s.WordsSent
	c.commSeconds = s.CommSeconds
	c.hiddenSeconds = s.HiddenSeconds
}
