package mpi

import (
	"sync"
	"testing"
)

func TestSplitEvenOdd(t *testing.T) {
	const n = 6
	var mu sync.Mutex
	sums := map[int]float64{}
	Run(n, ZeroModel, func(c *Comm) {
		color := c.Rank() % 2
		sub := c.Split(color, c.Rank())
		if sub == nil {
			t.Errorf("rank %d got nil sub-communicator", c.Rank())
			return
		}
		if sub.Size() != n/2 {
			t.Errorf("sub size = %d", sub.Size())
		}
		// Logical ranks are dense 0..size-1 ordered by key.
		if want := c.Rank() / 2; sub.Rank() != want {
			t.Errorf("world rank %d: sub rank = %d, want %d", c.Rank(), sub.Rank(), want)
		}
		// Group-scoped allreduce: evens sum even world ranks, odds odd.
		got := sub.AllreduceScalar(OpSum, float64(c.Rank()))
		mu.Lock()
		sums[color] = got
		mu.Unlock()
	})
	if sums[0] != 0+2+4 || sums[1] != 1+3+5 {
		t.Errorf("sums = %v", sums)
	}
}

func TestSplitNegativeColorExcluded(t *testing.T) {
	Run(4, ZeroModel, func(c *Comm) {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.Split(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("excluded rank got a communicator")
			}
			return
		}
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
		if got := sub.AllreduceScalar(OpSum, 1); got != 3 {
			t.Errorf("allreduce = %v", got)
		}
	})
}

func TestSplitKeyReordersRanks(t *testing.T) {
	const n = 4
	Run(n, ZeroModel, func(c *Comm) {
		// Reverse order: key = -rank.
		sub := c.Split(0, -c.Rank())
		if want := n - 1 - c.Rank(); sub.Rank() != want {
			t.Errorf("world %d: sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
		// Point-to-point uses logical ranks: world rank n-1 is logical 0.
		if sub.Rank() == 0 {
			sub.Send(1, 5, []float64{42})
		}
		if sub.Rank() == 1 {
			d, st := sub.Recv(0, 5)
			if d[0] != 42 || st.Source != 0 {
				t.Errorf("recv = %v from %d", d, st.Source)
			}
		}
	})
}

func TestSplitIsolatesMessageSpaces(t *testing.T) {
	// Same (src, dst, tag) on the parent and the child must not cross.
	Run(2, ZeroModel, func(c *Comm) {
		sub := c.Split(0, c.Rank())
		if c.Rank() == 0 {
			c.Send(1, 9, []float64{1})   // world comm
			sub.Send(1, 9, []float64{2}) // sub comm
		} else {
			dSub, _ := sub.Recv(0, 9)
			dW, _ := c.Recv(0, 9)
			if dSub[0] != 2 || dW[0] != 1 {
				t.Errorf("cross-communicator leak: sub=%v world=%v", dSub[0], dW[0])
			}
		}
	})
}

func TestDupIndependentSpace(t *testing.T) {
	Run(2, ZeroModel, func(c *Comm) {
		d := c.Dup()
		if d.Size() != c.Size() || d.Rank() != c.Rank() {
			t.Errorf("dup shape: %d/%d", d.Rank(), d.Size())
		}
		if c.Rank() == 0 {
			d.Send(1, 3, []float64{7})
		} else {
			got, _ := d.Recv(0, 3)
			if got[0] != 7 {
				t.Errorf("dup recv = %v", got)
			}
		}
	})
}

func TestSplitBarrierScopedToGroup(t *testing.T) {
	// A barrier on the even sub-communicator must not wait for odds.
	Run(4, ZeroModel, func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		if c.Rank()%2 == 0 {
			sub.Barrier() // must complete without odd ranks entering any barrier
		} else {
			// Odd ranks do unrelated group work.
			if got := sub.AllreduceScalar(OpSum, 1); got != 2 {
				t.Errorf("odd allreduce = %v", got)
			}
		}
	})
}

func TestSplitCollectivesFullSuite(t *testing.T) {
	// Exercise every collective on a 3-member subgroup of a 5-rank world.
	Run(5, ZeroModel, func(c *Comm) {
		color := 0
		if c.Rank() >= 3 {
			color = 1
		}
		sub := c.Split(color, c.Rank())
		if color != 0 {
			return
		}
		n := sub.Size() // 3
		r := sub.Rank()
		// Bcast.
		buf := make([]float64, 2)
		if r == 1 {
			buf = []float64{5, 6}
		}
		got := sub.Bcast(1, buf)
		if got[0] != 5 || got[1] != 6 {
			t.Errorf("bcast = %v", got)
		}
		// Allgather.
		all := sub.Allgather([]float64{float64(r)})
		for i := 0; i < n; i++ {
			if all[i][0] != float64(i) {
				t.Errorf("allgather[%d] = %v", i, all[i])
			}
		}
		// Gather + Scatter round trip.
		rows := sub.Gather(0, []float64{float64(r * 10)})
		var chunks [][]float64
		if r == 0 {
			chunks = rows
		}
		back := sub.Scatter(0, chunks)
		if back[0] != float64(r*10) {
			t.Errorf("scatter = %v", back)
		}
	})
}

func TestNestedSplit(t *testing.T) {
	// Split a split: quadrant communicators from row communicators.
	Run(4, ZeroModel, func(c *Comm) {
		row := c.Split(c.Rank()/2, c.Rank())
		cell := row.Split(row.Rank(), 0)
		if cell.Size() != 1 || cell.Rank() != 0 {
			t.Errorf("cell = %d/%d", cell.Rank(), cell.Size())
		}
		if got := cell.AllreduceScalar(OpSum, float64(c.Rank())); got != float64(c.Rank()) {
			t.Errorf("singleton allreduce = %v", got)
		}
	})
}

func TestAlltoall(t *testing.T) {
	const n = 4
	Run(n, ZeroModel, func(c *Comm) {
		chunks := make([][]float64, n)
		for dst := 0; dst < n; dst++ {
			chunks[dst] = []float64{float64(c.Rank()*10 + dst)}
		}
		out := c.Alltoall(chunks)
		for src := 0; src < n; src++ {
			want := float64(src*10 + c.Rank())
			if out[src][0] != want {
				t.Errorf("rank %d from %d: %v, want %v", c.Rank(), src, out[src][0], want)
			}
		}
	})
}

func TestAlltoallOnSubComm(t *testing.T) {
	Run(4, ZeroModel, func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		n := sub.Size()
		chunks := make([][]float64, n)
		for d := 0; d < n; d++ {
			chunks[d] = []float64{float64(sub.Rank()*100 + d)}
		}
		out := sub.Alltoall(chunks)
		for src := 0; src < n; src++ {
			if want := float64(src*100 + sub.Rank()); out[src][0] != want {
				t.Errorf("sub rank %d: from %d = %v, want %v", sub.Rank(), src, out[src][0], want)
			}
		}
	})
}
