package mpi

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestSendRecvBasic(t *testing.T) {
	Run(2, ZeroModel, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 7, []float64{1, 2, 3})
		case 1:
			data, st := c.Recv(0, 7)
			if st.Source != 0 || st.Tag != 7 || st.Count != 3 {
				t.Errorf("status = %+v", st)
			}
			want := []float64{1, 2, 3}
			for i := range want {
				if data[i] != want[i] {
					t.Errorf("data[%d] = %v, want %v", i, data[i], want[i])
				}
			}
		}
	})
}

func TestSendCopiesBuffer(t *testing.T) {
	Run(2, ZeroModel, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // mutate after send; receiver must still see 42
		} else {
			data, _ := c.Recv(0, 0)
			if data[0] != 42 {
				t.Errorf("receiver saw mutated buffer: %v", data[0])
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	Run(2, ZeroModel, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
		} else {
			// Receive out of order by tag.
			d2, _ := c.Recv(0, 2)
			d1, _ := c.Recv(0, 1)
			if d2[0] != 2 || d1[0] != 1 {
				t.Errorf("tag matching failed: got %v, %v", d2[0], d1[0])
			}
		}
	})
}

func TestRecvAnyTag(t *testing.T) {
	Run(2, ZeroModel, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 99, []float64{5})
		} else {
			d, st := c.Recv(0, AnyTag)
			if d[0] != 5 || st.Tag != 99 {
				t.Errorf("got %v tag %d", d[0], st.Tag)
			}
		}
	})
}

func TestRecvAnySource(t *testing.T) {
	const n = 5
	Run(n, ZeroModel, func(c *Comm) {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < n-1; i++ {
				d, st := c.Recv(AnySource, 3)
				if int(d[0]) != st.Source {
					t.Errorf("payload %v does not match source %d", d[0], st.Source)
				}
				if seen[st.Source] {
					t.Errorf("duplicate source %d", st.Source)
				}
				seen[st.Source] = true
			}
		} else {
			c.Send(0, 3, []float64{float64(c.Rank())})
		}
	})
}

func TestBarrierOrdersRanks(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	var before, after int
	Run(n, ZeroModel, func(c *Comm) {
		mu.Lock()
		before++
		mu.Unlock()
		c.Barrier()
		mu.Lock()
		if before != n {
			t.Errorf("rank %d left barrier before all entered (%d/%d)", c.Rank(), before, n)
		}
		after++
		mu.Unlock()
	})
	if after != n {
		t.Fatalf("after = %d, want %d", after, n)
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	const n = 7
	for root := 0; root < n; root++ {
		Run(n, ZeroModel, func(c *Comm) {
			var data []float64
			if c.Rank() == root {
				data = []float64{3.5, -1, float64(root)}
			} else {
				data = make([]float64, 3)
			}
			got := c.Bcast(root, data)
			want := []float64{3.5, -1, float64(root)}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("root %d rank %d: got[%d]=%v want %v", root, c.Rank(), i, got[i], want[i])
				}
			}
		})
	}
}

func TestReduceSum(t *testing.T) {
	const n = 9
	Run(n, ZeroModel, func(c *Comm) {
		res := c.Reduce(0, OpSum, []float64{float64(c.Rank()), 1})
		if c.Rank() == 0 {
			wantSum := float64(n*(n-1)) / 2
			if res[0] != wantSum || res[1] != n {
				t.Errorf("reduce = %v, want [%v %v]", res, wantSum, float64(n))
			}
		} else if res != nil {
			t.Errorf("non-root rank %d got non-nil reduce result", c.Rank())
		}
	})
}

func TestAllreduceOps(t *testing.T) {
	const n = 6
	cases := []struct {
		op   Op
		want float64
	}{
		{OpSum, 15}, // 0+1+..+5
		{OpMax, 5},
		{OpMin, 0},
		{OpProd, 0}, // includes 0
	}
	for _, tc := range cases {
		Run(n, ZeroModel, func(c *Comm) {
			got := c.AllreduceScalar(tc.op, float64(c.Rank()))
			if got != tc.want {
				t.Errorf("%v: rank %d got %v, want %v", tc.op, c.Rank(), got, tc.want)
			}
		})
	}
}

func TestAllgatherRing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		Run(n, ZeroModel, func(c *Comm) {
			out := c.Allgather([]float64{float64(c.Rank() * 10), float64(c.Rank())})
			if len(out) != n {
				t.Fatalf("len(out)=%d want %d", len(out), n)
			}
			for r := 0; r < n; r++ {
				if out[r][0] != float64(r*10) || out[r][1] != float64(r) {
					t.Errorf("n=%d rank %d: out[%d]=%v", n, c.Rank(), r, out[r])
				}
			}
		})
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const n = 5
	Run(n, ZeroModel, func(c *Comm) {
		mine := []float64{float64(c.Rank()), float64(c.Rank() * c.Rank())}
		all := c.Gather(2, mine)
		var chunks [][]float64
		if c.Rank() == 2 {
			for r := 0; r < n; r++ {
				if all[r][0] != float64(r) {
					t.Errorf("gather[%d] = %v", r, all[r])
				}
			}
			chunks = all
		}
		back := c.Scatter(2, chunks)
		if back[0] != float64(c.Rank()) || back[1] != float64(c.Rank()*c.Rank()) {
			t.Errorf("scatter rank %d got %v", c.Rank(), back)
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	const n = 4
	Run(n, ZeroModel, func(c *Comm) {
		right := (c.Rank() + 1) % n
		left := (c.Rank() - 1 + n) % n
		got, _ := c.Sendrecv(right, 11, []float64{float64(c.Rank())}, left, 11)
		if got[0] != float64(left) {
			t.Errorf("rank %d expected %d, got %v", c.Rank(), left, got[0])
		}
	})
}

func TestVirtualClockChargesMessages(t *testing.T) {
	model := NetworkModel{Latency: 1e-3, InvBandwidth: 0}
	w := Run(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 10))
		} else {
			c.Recv(0, 0)
		}
	})
	if got := w.MaxVirtualTime(); math.Abs(got-1e-3) > 1e-12 {
		t.Errorf("virtual time = %v, want 1e-3", got)
	}
}

func TestVirtualClockBandwidthTerm(t *testing.T) {
	model := NetworkModel{Latency: 0, InvBandwidth: 1.0 / 8.0} // 1 s per word
	w := Run(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 5))
		} else {
			c.Recv(0, 0)
		}
	})
	if got := w.MaxVirtualTime(); math.Abs(got-5) > 1e-12 {
		t.Errorf("virtual time = %v, want 5", got)
	}
}

func TestChargeAndReceiverCatchUp(t *testing.T) {
	// Rank 0 computes 10s then sends; rank 1's clock must advance to
	// at least the send completion even though rank 1 did no work.
	w := Run(2, ZeroModel, func(c *Comm) {
		if c.Rank() == 0 {
			c.Charge(10)
			c.Send(1, 0, []float64{1})
		} else {
			c.Recv(0, 0)
			if vt := c.VirtualTime(); vt < 10 {
				t.Errorf("receiver clock = %v, want >= 10", vt)
			}
		}
	})
	if w.MaxVirtualTime() < 10 {
		t.Errorf("max virtual time = %v", w.MaxVirtualTime())
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w := Run(3, ZeroModel, func(c *Comm) {
		c.Charge(float64(c.Rank()) * 2) // 0, 2, 4 seconds
		c.Barrier()
		if vt := c.VirtualTime(); vt < 4 {
			t.Errorf("rank %d left barrier at t=%v, want >= 4", c.Rank(), vt)
		}
	})
	_ = w
}

func TestStatsCounters(t *testing.T) {
	Run(2, ZeroModel, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 7))
			c.Send(1, 0, make([]float64, 3))
			if c.SendCount() != 2 || c.WordsSent() != 10 {
				t.Errorf("sends=%d words=%d", c.SendCount(), c.WordsSent())
			}
		} else {
			c.Recv(0, 0)
			c.Recv(0, 0)
			if c.RecvCount() != 2 {
				t.Errorf("recvs=%d", c.RecvCount())
			}
		}
	})
}

func TestRunCollect(t *testing.T) {
	got := RunCollect(4, ZeroModel, func(c *Comm) int { return c.Rank() * 3 })
	for r, v := range got {
		if v != r*3 {
			t.Errorf("got[%d] = %d", r, v)
		}
	}
}

// Property: Allreduce(sum) equals the serial sum for arbitrary inputs
// regardless of rank count.
func TestAllreduceSumMatchesSerialProperty(t *testing.T) {
	f := func(vals []float64, sizeRaw uint8) bool {
		size := int(sizeRaw%7) + 1
		if len(vals) == 0 {
			vals = []float64{0}
		}
		// Clamp to finite values.
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 1
			}
			// Keep magnitudes tame so float addition order effects stay
			// below the comparison tolerance.
			vals[i] = math.Mod(vals[i], 1e6)
		}
		contrib := func(rank int) float64 {
			return vals[rank%len(vals)]
		}
		var want float64
		for r := 0; r < size; r++ {
			want += contrib(r)
		}
		ok := true
		var mu sync.Mutex
		Run(size, ZeroModel, func(c *Comm) {
			got := c.AllreduceScalar(OpSum, contrib(c.Rank()))
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				mu.Lock()
				ok = false
				mu.Unlock()
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Bcast delivers identical data to all ranks for any root.
func TestBcastDeliversEverywhereProperty(t *testing.T) {
	f := func(vals []float64, sizeRaw, rootRaw uint8) bool {
		size := int(sizeRaw%8) + 1
		root := int(rootRaw) % size
		if len(vals) == 0 {
			vals = []float64{1}
		}
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0
			}
		}
		ok := true
		var mu sync.Mutex
		Run(size, ZeroModel, func(c *Comm) {
			buf := make([]float64, len(vals))
			if c.Rank() == root {
				copy(buf, vals)
			}
			got := c.Bcast(root, buf)
			for i := range vals {
				if got[i] != vals[i] {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNetworkModelCost(t *testing.T) {
	m := NetworkModel{Latency: 2, InvBandwidth: 0.5}
	if got := m.Cost(3); got != 2+8*3*0.5 {
		t.Errorf("Cost(3) = %v", got)
	}
	if CPlantModel.Cost(0) != 60e-6 {
		t.Errorf("CPlant latency = %v", CPlantModel.Cost(0))
	}
}

func TestWorldSortedRanksByTime(t *testing.T) {
	w := Run(3, ZeroModel, func(c *Comm) {
		c.Charge(float64(2 - c.Rank())) // rank 0 slowest
	})
	order := w.SortedRanksByTime()
	if order[0] != 0 || order[2] != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpSum: "sum", OpMax: "max", OpMin: "min", OpProd: "prod"} {
		if op.String() != want {
			t.Errorf("%d.String() = %q", int(op), op.String())
		}
	}
}
