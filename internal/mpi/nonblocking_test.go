package mpi

import (
	"math"
	"testing"
)

func TestIsendIrecvBasic(t *testing.T) {
	Run(2, ZeroModel, func(c *Comm) {
		switch c.Rank() {
		case 0:
			req := c.Isend(1, 7, []float64{1, 2, 3})
			req.Wait() // no-op: sends are buffered
		case 1:
			req := c.Irecv(0, 7)
			data, st := req.Wait()
			if st.Source != 0 || st.Tag != 7 || st.Count != 3 {
				t.Errorf("status = %+v", st)
			}
			for i, want := range []float64{1, 2, 3} {
				if data[i] != want {
					t.Errorf("data[%d] = %v, want %v", i, data[i], want)
				}
			}
			// Wait is idempotent.
			again, _ := req.Wait()
			if &again[0] != &data[0] {
				t.Error("second Wait returned different payload")
			}
		}
	})
}

func TestIsendCopiesBuffer(t *testing.T) {
	Run(2, ZeroModel, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Isend(1, 0, buf)
			buf[0] = -1
		} else {
			data, _ := c.Irecv(0, 0).Wait()
			if data[0] != 42 {
				t.Errorf("receiver saw mutated buffer: %v", data[0])
			}
		}
	})
}

func TestWaitallCompletesOutOfOrderTags(t *testing.T) {
	Run(2, ZeroModel, func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend(1, 2, []float64{2})
			c.Isend(1, 1, []float64{1})
		} else {
			reqs := []*Request{c.Irecv(0, 1), c.Irecv(0, 2)}
			Waitall(reqs)
			d1, _ := reqs[0].Wait()
			d2, _ := reqs[1].Wait()
			if d1[0] != 1 || d2[0] != 2 {
				t.Errorf("tag matching failed: got %v, %v", d1[0], d2[0])
			}
		}
	})
}

func TestRequestTestPolls(t *testing.T) {
	Run(2, ZeroModel, func(c *Comm) {
		if c.Rank() == 0 {
			// Wait for the receiver's signal so the first Test below has
			// provably run before the message exists.
			c.Recv(1, 5)
			c.Isend(1, 9, []float64{4})
		} else {
			req := c.Irecv(0, 9)
			if req.Test() {
				t.Error("Test succeeded before any message was sent")
			}
			c.Send(0, 5, []float64{0})
			for !req.Test() {
			}
			data, st := req.Wait()
			if data[0] != 4 || st.Tag != 9 {
				t.Errorf("got %v tag %d", data[0], st.Tag)
			}
		}
	})
}

// TestOverlapHidesLatency is the accounting contract of the tentpole:
// compute performed between Irecv and Wait hides message flight time, so
// the receive completes at max(post + alpha + beta*n, wait time).
func TestOverlapHidesLatency(t *testing.T) {
	model := NetworkModel{Latency: 1.0, InvBandwidth: 0}
	// Case 1: compute (10s) exceeds flight time (1s) — fully hidden.
	w := Run(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend(1, 0, []float64{1})
		} else {
			req := c.Irecv(0, 0)
			c.Charge(10)
			req.Wait()
			if vt := c.VirtualTime(); math.Abs(vt-10) > 1e-12 {
				t.Errorf("receiver clock = %v, want 10 (latency fully hidden)", vt)
			}
			st := c.Stats()
			if st.CommSeconds != 0 {
				t.Errorf("visible comm = %v, want 0", st.CommSeconds)
			}
			if math.Abs(st.HiddenSeconds-1) > 1e-12 {
				t.Errorf("hidden = %v, want 1", st.HiddenSeconds)
			}
		}
	})
	if got := w.MaxVirtualTime(); math.Abs(got-10) > 1e-12 {
		t.Errorf("virtual time = %v, want 10", got)
	}

	// Case 2: compute (0.25s) shorter than flight (1s) — partial hide.
	w = Run(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend(1, 0, []float64{1})
		} else {
			req := c.Irecv(0, 0)
			c.Charge(0.25)
			req.Wait()
			if vt := c.VirtualTime(); math.Abs(vt-1) > 1e-12 {
				t.Errorf("receiver clock = %v, want 1 (flight dominates)", vt)
			}
			st := c.Stats()
			if math.Abs(st.CommSeconds-0.75) > 1e-12 {
				t.Errorf("visible comm = %v, want 0.75", st.CommSeconds)
			}
			if math.Abs(st.HiddenSeconds-0.25) > 1e-12 {
				t.Errorf("hidden = %v, want 0.25", st.HiddenSeconds)
			}
		}
	})
	if got := w.MaxVirtualTime(); math.Abs(got-1) > 1e-12 {
		t.Errorf("virtual time = %v, want 1", got)
	}
}

// TestIsendDoesNotAdvanceSenderClock: the sender's transfer cost runs on
// the NIC, concurrent with compute — unlike a blocking Send.
func TestIsendDoesNotAdvanceSenderClock(t *testing.T) {
	model := NetworkModel{Latency: 1.0, InvBandwidth: 0}
	Run(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend(1, 0, []float64{1})
			if vt := c.VirtualTime(); vt != 0 {
				t.Errorf("sender clock = %v after Isend, want 0", vt)
			}
			st := c.Stats()
			if math.Abs(st.HiddenSeconds-1) > 1e-12 {
				t.Errorf("sender hidden = %v, want 1 (cost vs blocking Send)", st.HiddenSeconds)
			}
		} else {
			c.Irecv(0, 0).Wait()
		}
	})
}

func TestBlockingPathStats(t *testing.T) {
	model := NetworkModel{Latency: 2.0, InvBandwidth: 0}
	Run(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1})
			st := c.Stats()
			if st.Sends != 1 || st.WordsSent != 1 {
				t.Errorf("sends=%d words=%d", st.Sends, st.WordsSent)
			}
			if math.Abs(st.CommSeconds-2) > 1e-12 {
				t.Errorf("blocking send visible comm = %v, want 2", st.CommSeconds)
			}
		} else {
			c.Recv(0, 0)
			st := c.Stats()
			// Sender finished at t=2; idle receiver stalls the full 2s.
			if math.Abs(st.CommSeconds-2) > 1e-12 {
				t.Errorf("blocking recv stall = %v, want 2", st.CommSeconds)
			}
			if st.HiddenSeconds != 0 {
				t.Errorf("blocking recv hidden = %v, want 0", st.HiddenSeconds)
			}
		}
	})
}

func TestIrecvOnSplitComm(t *testing.T) {
	Run(4, ZeroModel, func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub.Rank() == 0 {
			sub.Isend(1, 3, []float64{float64(c.Rank())})
		} else {
			data, st := sub.Irecv(0, 3).Wait()
			if st.Source != 0 {
				t.Errorf("source = %d", st.Source)
			}
			// Sub-communicator logical root 0 is world rank Rank()%2.
			if int(data[0]) != c.Rank()%2 {
				t.Errorf("payload %v from wrong pair", data[0])
			}
		}
	})
}
