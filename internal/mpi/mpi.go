// Package mpi provides an in-process SPMD message-passing runtime that
// stands in for MPI-1 in the paper's Ccaffeine/CPlant environment.
//
// P ranks execute as goroutines sharing nothing but Comm endpoints.
// Point-to-point messages travel over per-pair channels with tag
// matching; collectives are built on top of point-to-point so that the
// communication volume of the simulated run matches what a real MPI
// job would move.
//
// The runtime keeps two clocks per rank:
//
//   - the wall clock, which is whatever the host machine does, and
//   - a virtual clock, which charges every message a latency/bandwidth
//     cost (alpha + n*beta) and lets callers charge modeled compute
//     time explicitly.
//
// The virtual clock is what the scaling experiments (paper Figs 8 and
// 9, Table 5) report: the reproduction host is a single-CPU container,
// so wall time cannot exhibit parallel speedup, but the cost model —
// the same LogP-style model the paper's clusters obey — can.
package mpi

import (
	"fmt"
	"sort"
	"sync"

	"ccahydro/internal/obs"
)

// Op identifies a reduction operator for Reduce/Allreduce.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpProd:
		return "prod"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpProd:
		return a * b
	}
	panic("mpi: unknown op")
}

// AnyTag matches any message tag in Recv.
const AnyTag = -1

// AnySource matches any sending rank in Recv.
const AnySource = -1

// message is a single point-to-point payload. Data is copied on send so
// that sender and receiver never alias a buffer, matching MPI semantics.
type message struct {
	from, tag int
	// comm scopes the message to one communicator so traffic on a
	// split communicator never matches receives on another.
	comm     uint64
	data     []float64
	sendTime float64 // virtual time at which the sender issued the send
	// flow is the nonzero trace flow id tying this message's send to
	// its receive when the sender's endpoint has a tracer attached.
	flow uint64
}

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// NetworkModel is the cost model used by the virtual clock. Costs are in
// seconds; message size n is in float64 words (8 bytes each).
type NetworkModel struct {
	// Latency is the per-message cost (the alpha term).
	Latency float64
	// InvBandwidth is the per-byte cost (the beta term).
	InvBandwidth float64
}

// Cost returns the virtual-time cost of moving n float64 words.
func (m NetworkModel) Cost(n int) float64 {
	return m.Latency + float64(8*n)*m.InvBandwidth
}

// CPlantModel approximates the paper's CPlant cluster: Myrinet with
// 32-bit PCI cards — roughly 60 us latency through MPICH and ~132 MB/s
// sustained bandwidth.
var CPlantModel = NetworkModel{Latency: 60e-6, InvBandwidth: 1.0 / (132e6)}

// FastEthernetModel approximates the 100bT Beowulf used for the long
// flame run: ~80 us latency, ~11 MB/s.
var FastEthernetModel = NetworkModel{Latency: 80e-6, InvBandwidth: 1.0 / (11e6)}

// ZeroModel charges nothing; useful for unit tests of pure semantics.
var ZeroModel = NetworkModel{}

// World is the shared state of one SPMD job: the mailboxes connecting
// ranks and the virtual clocks.
type World struct {
	size  int
	model NetworkModel

	// mail[dst][src] is the queue of messages from src to dst.
	mail []map[int]*mailbox

	clocks []*clock

	barrier *barrierState

	// arrivals[r] is bumped (under arrivalMu[r]) whenever a message is
	// delivered to rank r; AnySource receives park on it.
	arrivalMu   []sync.Mutex
	arrivalCond []*sync.Cond
	arrivals    []int

	// bufs is the free-list of recycled message payload buffers, keyed
	// by exact length. Sends draw copies from it; receivers that are
	// done with a payload return it via Comm.Recycle. Steady-state
	// ghost exchange then moves data with zero allocations.
	bufs struct {
		mu   sync.Mutex
		free map[int][][]float64
	}

	// fault holds the armed fault-injection config and, once a rank has
	// failed (or Abort was called), the poisoning error every blocked
	// operation unwinds with. See fault.go.
	fault struct {
		mu      sync.Mutex
		armed   *Fault
		fired   bool
		failure error
	}

	mu sync.Mutex
}

type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

type clock struct {
	mu sync.Mutex
	t  float64
}

func (c *clock) advanceTo(t float64) {
	c.mu.Lock()
	if t > c.t {
		c.t = t
	}
	c.mu.Unlock()
}

func (c *clock) add(dt float64) float64 {
	c.mu.Lock()
	c.t += dt
	t := c.t
	c.mu.Unlock()
	return t
}

func (c *clock) now() float64 {
	c.mu.Lock()
	t := c.t
	c.mu.Unlock()
	return t
}

type barrierState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	gen     int
	maxTime float64
}

// NewWorld creates the shared state for an SPMD job of the given size.
func NewWorld(size int, model NetworkModel) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{size: size, model: model}
	w.mail = make([]map[int]*mailbox, size)
	w.clocks = make([]*clock, size)
	for i := range w.mail {
		w.mail[i] = make(map[int]*mailbox)
		w.clocks[i] = &clock{}
	}
	b := &barrierState{}
	b.cond = sync.NewCond(&b.mu)
	w.barrier = b
	w.arrivalMu = make([]sync.Mutex, size)
	w.arrivalCond = make([]*sync.Cond, size)
	w.arrivals = make([]int, size)
	for i := range w.arrivalCond {
		w.arrivalCond[i] = sync.NewCond(&w.arrivalMu[i])
	}
	return w
}

// takeBuf returns a payload buffer of exactly n words, reusing a
// recycled one when available.
func (w *World) takeBuf(n int) []float64 {
	w.bufs.mu.Lock()
	if list := w.bufs.free[n]; len(list) > 0 {
		buf := list[len(list)-1]
		w.bufs.free[n] = list[:len(list)-1]
		w.bufs.mu.Unlock()
		return buf
	}
	w.bufs.mu.Unlock()
	return make([]float64, n)
}

// Recycle returns a payload received from Recv/Wait to the world's
// buffer pool once the caller has finished reading it. Ownership is
// exclusive after a receive completes (sends always copy), so recycling
// is safe; callers that skip it simply forgo the reuse.
func (c *Comm) Recycle(buf []float64) {
	if buf == nil {
		return
	}
	w := c.world
	w.bufs.mu.Lock()
	if w.bufs.free == nil {
		w.bufs.free = make(map[int][][]float64)
	}
	w.bufs.free[len(buf)] = append(w.bufs.free[len(buf)], buf)
	w.bufs.mu.Unlock()
}

func (w *World) noteArrival(dst int) {
	w.arrivalMu[dst].Lock()
	w.arrivals[dst]++
	w.arrivalCond[dst].Broadcast()
	w.arrivalMu[dst].Unlock()
}

func (w *World) box(dst, src int) *mailbox {
	w.mu.Lock()
	defer w.mu.Unlock()
	b, ok := w.mail[dst][src]
	if !ok {
		b = newMailbox()
		w.mail[dst][src] = b
	}
	return b
}

// Comm is one rank's endpoint into a World. It deliberately mirrors the
// MPI communicator surface the paper's components consume through the
// framework's "properly scoped MPI communicator".
type Comm struct {
	world *World
	rank  int // world rank (owns the physical mailboxes)

	// group lists the world ranks composing this communicator in
	// logical-rank order; nil means the world communicator.
	group []int
	// myIdx is this endpoint's logical rank within group.
	myIdx int
	// commID scopes message matching; 0 is the world communicator.
	commID uint64
	// splitSeq counts collective Split/Dup calls on this communicator
	// so every member derives identical child IDs.
	splitSeq uint64

	// Stats accumulated by this endpoint.
	sends     int
	recvs     int
	wordsSent int
	// commSeconds is virtual time visibly spent communicating (inline
	// blocking-send charges + receive stalls); hiddenSeconds is transfer
	// time overlapped with compute (see CommStats).
	commSeconds   float64
	hiddenSeconds float64

	// tracer, when non-nil, receives flight slices and flow events for
	// every point-to-point message (see obs.go).
	tracer *obs.Tracer

	// events, when non-nil, receives fault-injection and rank-failure
	// notifications (see fault.go EventSink).
	events EventSink
}

// Rank returns this endpoint's logical rank in [0, Size).
func (c *Comm) Rank() int {
	if c.group != nil {
		return c.myIdx
	}
	return c.rank
}

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int {
	if c.group != nil {
		return len(c.group)
	}
	return c.world.size
}

// WorldRank returns the underlying world rank (the physical mailbox
// owner), independent of any Split.
func (c *Comm) WorldRank() int { return c.rank }

// worldRankOf translates a logical rank to a world rank.
func (c *Comm) worldRankOf(logical int) int {
	if c.group != nil {
		return c.group[logical]
	}
	return logical
}

// VirtualTime returns this rank's simulated elapsed time in seconds.
func (c *Comm) VirtualTime() float64 { return c.world.clocks[c.rank].now() }

// Charge adds modeled compute time to this rank's virtual clock. The
// scaling harness charges per-cell costs through this hook.
func (c *Comm) Charge(seconds float64) {
	if seconds < 0 {
		panic("mpi: negative compute charge")
	}
	c.world.clocks[c.rank].add(seconds)
}

// SendCount reports how many point-to-point sends this rank issued.
func (c *Comm) SendCount() int { return c.sends }

// RecvCount reports how many receives this rank completed.
func (c *Comm) RecvCount() int { return c.recvs }

// WordsSent reports total float64 words sent point-to-point.
func (c *Comm) WordsSent() int { return c.wordsSent }

// Send delivers a copy of data to rank dst with the given tag. It is
// buffered (never blocks on the receiver), matching MPI_Bsend semantics,
// which is how ghost exchange is usually posted.
func (c *Comm) Send(dst int, tag int, data []float64) {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("mpi: send to invalid rank %d (size %d)", dst, c.Size()))
	}
	c.world.failGate()
	c.noteSend(c.sends + 1)
	wdst := c.worldRankOf(dst)
	cp := c.world.takeBuf(len(data))
	copy(cp, data)
	cost := c.world.model.Cost(len(data))
	sendT := c.world.clocks[c.rank].add(cost)
	c.sends++
	c.wordsSent += len(data)
	c.commSeconds += cost
	m := message{from: c.Rank(), tag: tag, comm: c.commID, data: cp, sendTime: sendT}
	c.traceSend(&m, wdst, sendT-cost, cost)
	box := c.world.box(wdst, c.rank)
	box.mu.Lock()
	box.queue = append(box.queue, m)
	box.cond.Broadcast()
	box.mu.Unlock()
	c.world.noteArrival(wdst)
}

// Recv blocks until a message matching (src, tag) arrives and returns
// its payload. src may be AnySource and tag may be AnyTag. The
// receiver's virtual clock advances to at least the sender's send
// completion time (transport latency is charged on the send side).
func (c *Comm) Recv(src int, tag int) ([]float64, Status) {
	if src == AnySource {
		return c.recvAny(tag)
	}
	if src < 0 || src >= c.Size() {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d (size %d)", src, c.Size()))
	}
	wsrc := c.worldRankOf(src)
	box := c.world.box(c.rank, wsrc)
	box.mu.Lock()
	for {
		for i, m := range box.queue {
			if m.comm == c.commID && (tag == AnyTag || m.tag == tag) {
				box.queue = append(box.queue[:i], box.queue[i+1:]...)
				box.mu.Unlock()
				c.finishRecv(m)
				return m.data, Status{Source: m.from, Tag: m.tag, Count: len(m.data)}
			}
		}
		if err := c.world.Failure(); err != nil {
			box.mu.Unlock()
			panic(&abortSignal{err: err})
		}
		box.cond.Wait()
	}
}

func (c *Comm) finishRecv(m message) {
	// A blocking receive posts and waits at the same instant, so none of
	// the message's flight time is hidden behind compute.
	c.finishRecvAt(m, c.world.clocks[c.rank].now())
}

// recvAny scans every inbound mailbox for a matching message; between
// scans it parks on the per-rank arrival notification, so an AnySource
// receive costs one scan per delivered message rather than a busy loop.
func (c *Comm) recvAny(tag int) ([]float64, Status) {
	w := c.world
	for {
		w.arrivalMu[c.rank].Lock()
		seen := w.arrivals[c.rank]
		w.arrivalMu[c.rank].Unlock()

		for logical := 0; logical < c.Size(); logical++ {
			wsrc := c.worldRankOf(logical)
			if wsrc == c.rank {
				continue
			}
			box := w.box(c.rank, wsrc)
			box.mu.Lock()
			for i, m := range box.queue {
				if m.comm == c.commID && (tag == AnyTag || m.tag == tag) {
					box.queue = append(box.queue[:i], box.queue[i+1:]...)
					box.mu.Unlock()
					c.finishRecv(m)
					return m.data, Status{Source: m.from, Tag: m.tag, Count: len(m.data)}
				}
			}
			box.mu.Unlock()
		}

		w.arrivalMu[c.rank].Lock()
		for w.arrivals[c.rank] == seen {
			if err := w.Failure(); err != nil {
				w.arrivalMu[c.rank].Unlock()
				panic(&abortSignal{err: err})
			}
			w.arrivalCond[c.rank].Wait()
		}
		w.arrivalMu[c.rank].Unlock()
	}
}

// Sendrecv posts a send to dst and then receives from src, the usual
// deadlock-free ghost-exchange pairing (legal here because sends are
// buffered).
func (c *Comm) Sendrecv(dst, sendTag int, data []float64, src, recvTag int) ([]float64, Status) {
	c.Send(dst, sendTag, data)
	return c.Recv(src, recvTag)
}

// Barrier blocks until all ranks of this communicator have entered it.
// All ranks leave with their virtual clocks advanced to at least the
// latest entry time plus one latency (the broadcast release). On a
// split communicator the barrier is message-based (gather + release),
// scoped to the group.
func (c *Comm) Barrier() {
	c.world.failGate()
	if c.group != nil {
		// Reduce an empty payload to logical root 0, then broadcast the
		// release; clock propagation rides the messages.
		res := c.Reduce(0, OpMax, []float64{0})
		if c.Rank() != 0 {
			res = nil
		}
		if res == nil {
			res = []float64{0}
		}
		c.Bcast(0, res)
		return
	}
	b := c.world.barrier
	myT := c.world.clocks[c.rank].now()
	b.mu.Lock()
	if myT > b.maxTime {
		b.maxTime = myT
	}
	b.count++
	if b.count == c.world.size {
		b.count = 0
		b.gen++
		release := b.maxTime + c.world.model.Latency
		b.maxTime = 0
		for r := 0; r < c.world.size; r++ {
			c.world.clocks[r].advanceTo(release)
		}
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	gen := b.gen
	for gen == b.gen {
		if err := c.world.Failure(); err != nil {
			b.mu.Unlock()
			panic(&abortSignal{err: err})
		}
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// tag space reserved for collectives so user tags never collide.
const (
	tagBcast = -1000 - iota
	tagReduce
	tagGather
	tagScatter
	tagAlltoall
	tagAllgatherBase
)

// Bcast distributes root's buffer to all ranks; every rank returns the
// (copied) data. Implemented as a binomial tree, as real MPIs do.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	size := c.Size()
	if size == 1 {
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	// Relative rank with root mapped to 0.
	rel := (c.Rank() - root + size) % size
	var buf []float64
	if rel == 0 {
		buf = make([]float64, len(data))
		copy(buf, data)
	} else {
		// Receive from parent.
		parent := ((rel - 1) / 2)
		abs := (parent + root) % size
		buf, _ = c.Recv(abs, tagBcast)
	}
	for _, child := range []int{2*rel + 1, 2*rel + 2} {
		if child < size {
			c.Send((child+root)%size, tagBcast, buf)
		}
	}
	return buf
}

// Reduce combines contributions elementwise with op onto root; only
// root receives a meaningful result (others get nil).
func (c *Comm) Reduce(root int, op Op, data []float64) []float64 {
	size := c.Size()
	rel := (c.Rank() - root + size) % size
	acc := make([]float64, len(data))
	copy(acc, data)
	// Binomial tree: children send up.
	for _, child := range []int{2*rel + 1, 2*rel + 2} {
		if child < size {
			part, _ := c.Recv((child+root)%size, tagReduce)
			if len(part) != len(acc) {
				panic("mpi: reduce length mismatch")
			}
			for i := range acc {
				acc[i] = op.apply(acc[i], part[i])
			}
		}
	}
	if rel != 0 {
		parent := (rel - 1) / 2
		c.Send((parent+root)%size, tagReduce, acc)
		return nil
	}
	return acc
}

// Allreduce combines contributions on every rank.
func (c *Comm) Allreduce(op Op, data []float64) []float64 {
	res := c.Reduce(0, op, data)
	if c.Rank() != 0 {
		res = nil
	}
	if res == nil {
		res = make([]float64, len(data))
	}
	return c.Bcast(0, res)
}

// AllreduceScalar is the common single-value form.
func (c *Comm) AllreduceScalar(op Op, v float64) float64 {
	return c.Allreduce(op, []float64{v})[0]
}

// Gather collects equal-size buffers onto root in rank order; non-root
// ranks return nil.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	if c.Rank() != root {
		c.Send(root, tagGather, data)
		return nil
	}
	out := make([][]float64, c.Size())
	out[root] = append([]float64(nil), data...)
	for src := 0; src < c.Size(); src++ {
		if src == root {
			continue
		}
		buf, _ := c.Recv(src, tagGather)
		out[src] = buf
	}
	return out
}

// Allgather collects every rank's buffer on every rank, in rank order.
func (c *Comm) Allgather(data []float64) [][]float64 {
	// Ring allgather: size-1 steps, each forwarding one block.
	size := c.Size()
	out := make([][]float64, size)
	out[c.Rank()] = append([]float64(nil), data...)
	if size == 1 {
		return out
	}
	right := (c.Rank() + 1) % size
	left := (c.Rank() - 1 + size) % size
	cur := c.Rank()
	for step := 0; step < size-1; step++ {
		tag := tagAllgatherBase - step
		got, _ := c.Sendrecv(right, tag, out[cur], left, tag)
		cur = (cur - 1 + size) % size
		out[cur] = got
	}
	return out
}

// Scatter distributes root's per-rank chunks; every rank returns its own
// chunk. chunks is only read at root and must have Size entries there.
func (c *Comm) Scatter(root int, chunks [][]float64) []float64 {
	if c.Rank() == root {
		if len(chunks) != c.Size() {
			panic("mpi: scatter needs one chunk per rank")
		}
		for dst := 0; dst < c.Size(); dst++ {
			if dst == root {
				continue
			}
			c.Send(dst, tagScatter, chunks[dst])
		}
		return append([]float64(nil), chunks[root]...)
	}
	buf, _ := c.Recv(root, tagScatter)
	return buf
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// RankTime returns one rank's virtual clock.
func (w *World) RankTime(r int) float64 { return w.clocks[r].now() }

// Alltoall performs the complete exchange: chunks[i] goes to rank i,
// and the result holds the chunk received from each rank (the caller's
// own chunk is copied through). chunks must have Size entries.
func (c *Comm) Alltoall(chunks [][]float64) [][]float64 {
	size := c.Size()
	if len(chunks) != size {
		panic("mpi: alltoall needs one chunk per rank")
	}
	me := c.Rank()
	out := make([][]float64, size)
	out[me] = append([]float64(nil), chunks[me]...)
	for dst := 0; dst < size; dst++ {
		if dst == me {
			continue
		}
		c.Send(dst, tagAlltoall, chunks[dst])
	}
	for src := 0; src < size; src++ {
		if src == me {
			continue
		}
		buf, _ := c.Recv(src, tagAlltoall)
		out[src] = buf
	}
	return out
}

// Split partitions this communicator: endpoints passing the same color
// form a new communicator, ordered by (key, current rank); a negative
// color opts out and receives nil. Split is collective — every member
// of this communicator must call it, with matching call sequences, so
// all members derive the same child communicator identity (MPI_Comm_split
// semantics).
func (c *Comm) Split(color, key int) *Comm {
	c.splitSeq++
	// Exchange (color, key) among all members via allgather.
	pairs := c.Allgather([]float64{float64(color), float64(key)})
	type member struct{ color, key, logical int }
	var mine []member
	for logical, p := range pairs {
		col := int(p[0])
		if col != color || col < 0 {
			continue
		}
		mine = append(mine, member{color: col, key: int(p[1]), logical: logical})
	}
	if color < 0 {
		return nil
	}
	sort.Slice(mine, func(a, b int) bool {
		if mine[a].key != mine[b].key {
			return mine[a].key < mine[b].key
		}
		return mine[a].logical < mine[b].logical
	})
	group := make([]int, len(mine))
	myIdx := -1
	for i, m := range mine {
		group[i] = c.worldRankOf(m.logical)
		if m.logical == c.Rank() {
			myIdx = i
		}
	}
	// Deterministic child ID shared by all members of this color.
	id := c.commID*1000003 + c.splitSeq*1009 + uint64(color)*31 + 1
	return &Comm{
		world: c.world, rank: c.rank,
		group: group, myIdx: myIdx, commID: id,
	}
}

// Dup returns a communicator with the same membership but a private
// message space (MPI_Comm_dup). Collective.
func (c *Comm) Dup() *Comm {
	c.splitSeq++
	group := c.group
	if group == nil {
		group = make([]int, c.world.size)
		for i := range group {
			group[i] = i
		}
	}
	id := c.commID*1000003 + c.splitSeq*1009 + 7
	return &Comm{
		world: c.world, rank: c.rank,
		group: append([]int(nil), group...), myIdx: c.Rank(), commID: id,
	}
}

// MaxVirtualTime returns the maximum virtual clock over all ranks —
// the simulated job run time.
func (w *World) MaxVirtualTime() float64 {
	var max float64
	for _, c := range w.clocks {
		if t := c.now(); t > max {
			max = t
		}
	}
	return max
}

// Run launches body on every rank of a fresh world and waits for all to
// finish. It returns the world so callers can read virtual clocks.
func Run(size int, model NetworkModel, body func(*Comm)) *World {
	return RunOn(NewWorld(size, model), body)
}

// RunOn launches body on every rank of an existing world — the entry
// point for jobs that need the world configured up front (fault
// injection, pre-seeded clocks). A rank unwinding with the abort signal
// (a killed rank, or a peer of one) is contained here: the goroutine
// exits cleanly and the failure is reported through w.Failure(). Any
// other panic propagates and crashes the process, as before.
func RunOn(w *World, body func(*Comm)) *World {
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		comm := &Comm{world: w, rank: r}
		go func(cm *Comm) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if sig, ok := rec.(*abortSignal); ok {
						if cm.events != nil {
							cm.events.Emit("rank.failed", -1, sig.err.Error())
						}
						return
					}
					panic(rec)
				}
			}()
			body(cm)
		}(comm)
	}
	wg.Wait()
	return w
}

// RunCollect launches body on every rank and gathers each rank's
// result value in rank order.
func RunCollect[T any](size int, model NetworkModel, body func(*Comm) T) []T {
	out := make([]T, size)
	var mu sync.Mutex
	Run(size, model, func(c *Comm) {
		v := body(c)
		mu.Lock()
		out[c.Rank()] = v
		mu.Unlock()
	})
	return out
}

// SortedRanksByTime returns rank indices ordered by descending virtual
// time; handy for load-imbalance diagnostics.
func (w *World) SortedRanksByTime() []int {
	idx := make([]int, w.size)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return w.clocks[idx[a]].now() > w.clocks[idx[b]].now()
	})
	return idx
}
