package bench

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"ccahydro/internal/serve"
)

// Serve benchmark: the run-server's throughput and the value of
// content-addressed dedup. A cold pass pushes N distinct ignition
// jobs through a shared scheduler; a hit pass resubmits the identical
// specs and must be served entirely from the result store; a warm
// pass extends a short flame run and must restart from the shared
// checkpoint prefix. Wall-clock rates are informative (host-
// dependent); the step/hit counts are the deterministic claims.

// ServeReport is the BENCH_serve.json artifact.
type ServeReport struct {
	Jobs  int `json:"jobs"`
	Slots int `json:"slots"`

	// Cold pass: N distinct jobs, all computed.
	ColdWallSeconds float64 `json:"cold_wall_seconds"`
	ColdJobsPerSec  float64 `json:"cold_jobs_per_sec"`
	ColdSteps       int     `json:"cold_steps"` // live driver steps, deterministic

	// Hit pass: the same N specs, all served from the store.
	HitWallSeconds float64 `json:"hit_wall_seconds"`
	HitJobsPerSec  float64 `json:"hit_jobs_per_sec"`
	HitSteps       int     `json:"hit_steps"` // must be 0
	CacheHits      int     `json:"cache_hits"`
	// HitSpeedup is cold wall over hit wall — what dedup buys.
	HitSpeedup float64 `json:"hit_speedup"`

	// Warm pass: flame steps=2 then steps=4. The extension restarts
	// from the short run's last checkpoint: WarmSteps counts only the
	// continuation, FullSteps the cold full-length run.
	FullSteps int  `json:"full_steps"`
	WarmSteps int  `json:"warm_steps"`
	WarmStart bool `json:"warm_start"`
}

func ignitionSpec(i int) serve.Spec {
	return serve.Spec{
		Problem: "ignition",
		Params: map[string]map[string]string{
			"driver": {"tEnd": fmt.Sprintf("%de-6", 100+i), "nOut": "5"},
		},
	}
}

func flameBenchSpec(steps int) serve.Spec {
	return serve.Spec{
		Problem: "flame",
		Params: map[string]map[string]string{
			"grace":  {"nx": "16", "ny": "16", "maxLevels": "2"},
			"driver": {"steps": strconv.Itoa(steps), "dt": "1e-7", "regridEvery": "2"},
		},
	}
}

// runBatch submits every spec and waits for all of them, returning
// (wall seconds, total live steps, cache hits).
func runBatch(s *serve.Scheduler, specs []serve.Spec) (float64, int, int, error) {
	start := time.Now()
	jobs := make([]*serve.Job, 0, len(specs))
	for _, sp := range specs {
		j, err := s.Submit(sp)
		if err != nil {
			return 0, 0, 0, err
		}
		jobs = append(jobs, j)
	}
	steps, hits := 0, 0
	for _, j := range jobs {
		<-j.Done()
		st, _ := s.Get(j.ID, false)
		if st.State != serve.StateDone {
			return 0, 0, 0, fmt.Errorf("bench: job %s ended %s: %s", j.ID, st.State, st.Error)
		}
		steps += st.StepsRun
		if st.CacheHit {
			hits++
		}
	}
	return time.Since(start).Seconds(), steps, hits, nil
}

// BuildServeReport runs the study. quick shrinks the job count.
func BuildServeReport(quick bool) (*ServeReport, error) {
	n := 12
	if quick {
		n = 4
	}
	dir, err := os.MkdirTemp("", "bench-serve-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	s, err := serve.NewScheduler(serve.Options{Slots: 4, Dir: dir})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	rep := &ServeReport{Jobs: n, Slots: 4}
	specs := make([]serve.Spec, n)
	for i := range specs {
		specs[i] = ignitionSpec(i)
	}
	if rep.ColdWallSeconds, rep.ColdSteps, _, err = runBatch(s, specs); err != nil {
		return nil, err
	}
	if rep.HitWallSeconds, rep.HitSteps, rep.CacheHits, err = runBatch(s, specs); err != nil {
		return nil, err
	}
	rep.ColdJobsPerSec = float64(n) / rep.ColdWallSeconds
	rep.HitJobsPerSec = float64(n) / rep.HitWallSeconds
	rep.HitSpeedup = rep.ColdWallSeconds / rep.HitWallSeconds

	// Warm-start pass: a short flame run seeds the checkpoint lineage,
	// the full-length run continues it; the cold full-length reference
	// runs in a separate state root.
	refDir, err := os.MkdirTemp("", "bench-serve-ref-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(refDir)
	ref, err := serve.NewScheduler(serve.Options{Slots: 4, Dir: refDir})
	if err != nil {
		return nil, err
	}
	defer ref.Close()
	if _, rep.FullSteps, _, err = runBatch(ref, []serve.Spec{flameBenchSpec(4)}); err != nil {
		return nil, err
	}
	if _, _, _, err = runBatch(s, []serve.Spec{flameBenchSpec(2)}); err != nil {
		return nil, err
	}
	j, err := s.Submit(flameBenchSpec(4))
	if err != nil {
		return nil, err
	}
	<-j.Done()
	st, _ := s.Get(j.ID, false)
	if st.State != serve.StateDone {
		return nil, fmt.Errorf("bench: warm flame ended %s: %s", st.State, st.Error)
	}
	rep.WarmSteps = st.StepsRun
	rep.WarmStart = st.WarmStart
	return rep, nil
}

// PrintServeReport renders the study as a table.
func PrintServeReport(w io.Writer, rep *ServeReport) {
	fmt.Fprintf(w, "\nRun-server study: %d ignition jobs over %d slots\n", rep.Jobs, rep.Slots)
	fmt.Fprintf(w, "  %-22s %10s %12s %10s\n", "pass", "wall (s)", "jobs/sec", "steps")
	fmt.Fprintf(w, "  %-22s %10.3f %12.1f %10d\n", "cold (all computed)", rep.ColdWallSeconds, rep.ColdJobsPerSec, rep.ColdSteps)
	fmt.Fprintf(w, "  %-22s %10.3f %12.1f %10d\n", "resubmit (all hits)", rep.HitWallSeconds, rep.HitJobsPerSec, rep.HitSteps)
	fmt.Fprintf(w, "  cache hits %d/%d, dedup speedup %.0fx\n", rep.CacheHits, rep.Jobs, rep.HitSpeedup)
	fmt.Fprintf(w, "  flame extension: %d live steps warm (cold full run: %d), warmStart=%v\n",
		rep.WarmSteps, rep.FullSteps, rep.WarmStart)
}
