package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/core"
	"ccahydro/internal/mpi"
	"ccahydro/internal/obs"
	"ccahydro/internal/telemetry"
)

// The observability experiment has two halves:
//
//  1. An overhead study in the spirit of the paper's Table 4: the
//     component cell-integration loop timed with the port-call
//     interceptor off and on. Wall-clock seconds are host noise, so
//     they are printed but kept out of the JSON artifact.
//  2. A trace-shape study: a pinned 2-rank flame run with per-rank
//     worker pools and full observability, reduced to the counts that a
//     correct instrumentation layer must reproduce exactly — spans per
//     category, balanced flow events, port-call totals. These are
//     deterministic (fixed assembly, fixed steps, pinned pool width,
//     virtual network clock) and form BENCH_obs.json.

// ObsOverheadRow is one interceptor-overhead measurement.
type ObsOverheadRow struct {
	NCells      int
	PlainSec    float64 // observability detached
	ObservedSec float64 // interceptor + histograms enabled
	PctDiff     float64
	// CallsRecorded is the number of port-call observations the
	// instrumented run captured (deterministic for a fixed horizon).
	CallsRecorded uint64
}

// RunObsOverhead times the Table 4 component loop with the interceptor
// off and on. Both paths run the identical assembly; the only variable
// is whether GetPort hands out instrumented proxies.
func RunObsOverhead(cells []int, tEnd float64) ([]ObsOverheadRow, error) {
	plain, err := newComponentCellIntegrator()
	if err != nil {
		return nil, err
	}
	observed, err := newComponentCellIntegrator()
	if err != nil {
		return nil, err
	}
	group := obs.NewGroup(1)
	observed.f.SetObservability(group.Rank(0))

	cfg := DefaultTable4Config
	if _, _, err := plain.run(50, tEnd, cfg.T0, cfg.P0); err != nil {
		return nil, err
	}
	if _, _, err := observed.run(50, tEnd, cfg.T0, cfg.P0); err != nil {
		return nil, err
	}
	baseCalls := portCallTotal(group.MergedSnapshot())

	var rows []ObsOverheadRow
	for _, nc := range cells {
		plainT, obsT := math.Inf(1), math.Inf(1)
		for rep := 0; rep < 2; rep++ {
			// Interleaved best-of-2, as in RunTable4, so host noise hits
			// both paths alike.
			pt, _, err := plain.run(nc, tEnd, cfg.T0, cfg.P0)
			if err != nil {
				return nil, err
			}
			ot, _, err := observed.run(nc, tEnd, cfg.T0, cfg.P0)
			if err != nil {
				return nil, err
			}
			plainT = math.Min(plainT, pt)
			obsT = math.Min(obsT, ot)
		}
		calls := portCallTotal(group.MergedSnapshot())
		rows = append(rows, ObsOverheadRow{
			NCells:        nc,
			PlainSec:      plainT,
			ObservedSec:   obsT,
			PctDiff:       100 * (obsT - plainT) / plainT,
			CallsRecorded: calls - baseCalls,
		})
		baseCalls = calls
	}
	return rows, nil
}

// portCallTotal sums every port_call_seconds observation in s.
func portCallTotal(s obs.Snapshot) uint64 {
	var total uint64
	for _, h := range s.Histograms {
		if strings.HasPrefix(h.Name, obs.PortCallBase+"{") {
			total += h.Count
		}
	}
	return total
}

// PrintObsOverhead renders the overhead study.
func PrintObsOverhead(w io.Writer, rows []ObsOverheadRow) {
	fmt.Fprintf(w, "Interceptor overhead: component cell loop, observability off vs on\n")
	fmt.Fprintf(w, "(the Table 4 protocol with the port-call interceptor as the variable)\n\n")
	fmt.Fprintf(w, "%8s %12s %12s %9s %14s\n", "Ncells", "plain (s)", "observed (s)", "% diff.", "calls recorded")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %12.4f %12.4f %9.2f %14d\n",
			r.NCells, r.PlainSec, r.ObservedSec, r.PctDiff, r.CallsRecorded)
	}
	fmt.Fprintf(w, "\nWall seconds are host-dependent and excluded from the JSON artifact.\n")
}

// PortCallCount is one wire-method's deterministic invocation count.
type PortCallCount struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
}

// ObsTraceReport is the deterministic shape of a fully instrumented
// 2-rank flame run — the BENCH_obs.json artifact. Every field is fixed
// by the algorithm (assembly, steps, pinned pool width, virtual network
// model), never by host timing.
type ObsTraceReport struct {
	Network        string          `json:"network"`
	Ranks          int             `json:"ranks"`
	Workers        int             `json:"workersPerRank"`
	Steps          int             `json:"steps"`
	Nx             int             `json:"nx"`
	MaxLevels      int             `json:"maxLevels"`
	EventCounts    map[string]int  `json:"eventCounts"`
	PortCalls      []PortCallCount `json:"portCalls"`
	TotalPortCalls uint64          `json:"totalPortCalls"`
	HaloFlowPairs  int             `json:"haloFlowPairs"`
	MaxVirtualTime float64         `json:"maxVirtualTimeSec"`
	// Telemetry is the live-plane study (RunTelemetryStudy), attached by
	// the experiments driver so BENCH_obs.json carries both.
	Telemetry *TelemetryReport `json:"telemetry,omitempty"`
}

// RunObsTrace executes the pinned instrumented flame and reduces its
// observability output to the deterministic report. The group is also
// returned so callers can write the full Perfetto trace.
func RunObsTrace() (*ObsTraceReport, *obs.Group, error) {
	rep := &ObsTraceReport{Network: "cplant", Ranks: 2, Workers: 2, Steps: 2, Nx: 24, MaxLevels: 2}
	params := []core.Param{
		{Instance: "grace", Key: "nx", Value: fmt.Sprint(rep.Nx)},
		{Instance: "grace", Key: "ny", Value: fmt.Sprint(rep.Nx)},
		{Instance: "grace", Key: "maxLevels", Value: fmt.Sprint(rep.MaxLevels)},
		{Instance: "driver", Key: "steps", Value: fmt.Sprint(rep.Steps)},
		{Instance: "driver", Key: "dt", Value: "1e-7"},
		{Instance: "driver", Key: "regridEvery", Value: "1"},
		{Instance: "pool", Key: "workers", Value: fmt.Sprint(rep.Workers)},
	}
	group := obs.NewGroup(rep.Ranks)
	res := cca.RunSCMD(rep.Ranks, mpi.CPlantModel, core.Repo(), func(f *cca.Framework, comm *mpi.Comm) error {
		f.SetObservability(group.Rank(comm.Rank()))
		if err := core.AssembleReactionDiffusion(f, params...); err != nil {
			return err
		}
		if err := f.Instantiate("ExecutionComponent", "pool"); err != nil {
			return err
		}
		for _, user := range []string{"driver", "rkc", "implicit", "maxdiff"} {
			if err := f.Connect(user, "exec", "pool", "exec"); err != nil {
				return err
			}
		}
		return f.Go("driver", "go")
	})
	if err := res.Err(); err != nil {
		return nil, nil, err
	}

	rep.EventCounts = group.EventCounts()
	rep.HaloFlowPairs = rep.EventCounts["halo.flow.s"]
	if rep.EventCounts["halo.flow.f"] != rep.HaloFlowPairs {
		return nil, nil, fmt.Errorf("obs: unbalanced halo flows: %d starts, %d finishes",
			rep.HaloFlowPairs, rep.EventCounts["halo.flow.f"])
	}
	snap := group.MergedSnapshot()
	for _, h := range snap.Histograms {
		if strings.HasPrefix(h.Name, obs.PortCallBase+"{") && h.Count > 0 {
			rep.PortCalls = append(rep.PortCalls, PortCallCount{Name: h.Name, Count: h.Count})
			rep.TotalPortCalls += h.Count
		}
	}
	sort.Slice(rep.PortCalls, func(a, b int) bool { return rep.PortCalls[a].Name < rep.PortCalls[b].Name })
	rep.MaxVirtualTime = res.MaxVirtualTime()
	return rep, group, nil
}

// PrintObsTrace renders the trace-shape study.
func PrintObsTrace(w io.Writer, rep *ObsTraceReport) {
	fmt.Fprintf(w, "Instrumented flame: %d ranks x %d workers, %d steps, nx=%d, %d levels (%s network)\n\n",
		rep.Ranks, rep.Workers, rep.Steps, rep.Nx, rep.MaxLevels, rep.Network)
	var cats []string
	for c := range rep.EventCounts {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	fmt.Fprintf(w, "%-16s %8s\n", "trace category", "events")
	for _, c := range cats {
		fmt.Fprintf(w, "%-16s %8d\n", c, rep.EventCounts[c])
	}
	fmt.Fprintf(w, "\nhalo flow pairs (post->completion arrows): %d\n", rep.HaloFlowPairs)
	fmt.Fprintf(w, "port-call observations across all wires:   %d\n", rep.TotalPortCalls)
	fmt.Fprintf(w, "simulated run time:                        %.6f s\n", rep.MaxVirtualTime)
}

// TelemetryReport is the deterministic shape of the telemetry-plane
// study: the pinned 2-rank flame run twice, once fully detached and
// once with a Hub and a live HTTP server attached (no client connected
// during the run — the paper's "monitoring must not perturb the
// physics" bar). Everything here is algorithm-determined; wall-clock
// never enters the artifact.
type TelemetryReport struct {
	Ranks int `json:"ranks"`
	Steps int `json:"steps"`
	// EventCounts are the structured telemetry events the attached run
	// recorded, by kind (steps, regrids, ...).
	EventCounts map[string]uint64 `json:"eventCounts"`
	// SeriesPointsServed is how many NDJSON points one /series?follow=0
	// request returned after the run — ranks x series x samples.
	SeriesPointsServed int `json:"seriesPointsServed"`
	// HealthRanks is the rank count the /healthz document reported.
	HealthRanks int `json:"healthRanks"`
	// BitIdentical is the study's verdict: the attached run's final
	// driver extrema and simulated clock equal the detached run's.
	BitIdentical bool `json:"bitIdenticalToDetached"`
}

// telemetryFlameRun executes the pinned flame with an optional hub
// attached and returns rank 0's final extrema plus the simulated clock.
func telemetryFlameRun(ranks, steps int, hub *telemetry.Hub) (tmax, tmin, vmax float64, err error) {
	params := []core.Param{
		{Instance: "grace", Key: "nx", Value: "24"},
		{Instance: "grace", Key: "ny", Value: "24"},
		{Instance: "grace", Key: "maxLevels", Value: "2"},
		{Instance: "driver", Key: "steps", Value: fmt.Sprint(steps)},
		{Instance: "driver", Key: "dt", Value: "1e-7"},
		{Instance: "driver", Key: "regridEvery", Value: "1"},
	}
	var mu sync.Mutex
	res := cca.RunSCMD(ranks, mpi.CPlantModel, core.Repo(), func(f *cca.Framework, comm *mpi.Comm) error {
		if err := core.AssembleReactionDiffusion(f, params...); err != nil {
			return err
		}
		core.AttachTelemetry(f, hub.Rank(comm.Rank()), comm)
		if err := f.Go("driver", "go"); err != nil {
			return err
		}
		if comm.Rank() == 0 {
			comp, err := f.Lookup("driver")
			if err != nil {
				return err
			}
			dr := comp.(*components.RDDriver)
			mu.Lock()
			tmax, tmin = dr.TMax, dr.TMin
			mu.Unlock()
		}
		return nil
	})
	if err := res.Err(); err != nil {
		return 0, 0, 0, err
	}
	return tmax, tmin, res.MaxVirtualTime(), nil
}

// RunTelemetryStudy proves the telemetry plane is free when watched and
// absent when detached: same flame, hub+server attached vs nothing,
// and the attached run must land on bit-identical extrema and simulated
// time. The endpoints are then actually queried (one /healthz, one
// /series drain) so the artifact also pins the served shape.
func RunTelemetryStudy() (*TelemetryReport, error) {
	const ranks, steps = 2, 2
	rep := &TelemetryReport{Ranks: ranks, Steps: steps}

	plainTMax, plainTMin, plainVMax, err := telemetryFlameRun(ranks, steps, nil)
	if err != nil {
		return nil, err
	}

	hub := telemetry.NewHub(ranks, nil)
	srv, err := telemetry.Serve("127.0.0.1:0", hub)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	hub.SetPhase("running")
	telTMax, telTMin, telVMax, err := telemetryFlameRun(ranks, steps, hub)
	if err != nil {
		return nil, err
	}
	hub.SetPhase("done")

	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		return nil, err
	}
	var health telemetry.Health
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	rep.HealthRanks = len(health.Ranks)

	resp, err = http.Get("http://" + srv.Addr() + "/series?follow=0")
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) > 0 {
			rep.SeriesPointsServed++
		}
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		return nil, err
	}

	rep.EventCounts = hub.EventCounts()
	rep.BitIdentical = telTMax == plainTMax && telTMin == plainTMin && telVMax == plainVMax
	if !rep.BitIdentical {
		return nil, fmt.Errorf("telemetry perturbed the run: TMax %v vs %v, TMin %v vs %v, vt %v vs %v",
			telTMax, plainTMax, telTMin, plainTMin, telVMax, plainVMax)
	}
	return rep, nil
}

// PrintTelemetryStudy renders the telemetry-plane study.
func PrintTelemetryStudy(w io.Writer, rep *TelemetryReport) {
	fmt.Fprintf(w, "Telemetry plane: %d-rank flame, %d steps, hub + HTTP server attached vs detached\n\n", rep.Ranks, rep.Steps)
	var kinds []string
	for k := range rep.EventCounts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(w, "%-20s %8s\n", "structured event", "count")
	for _, k := range kinds {
		fmt.Fprintf(w, "%-20s %8d\n", k, rep.EventCounts[k])
	}
	fmt.Fprintf(w, "\n/series points served after the run:  %d\n", rep.SeriesPointsServed)
	fmt.Fprintf(w, "/healthz ranks reported:              %d\n", rep.HealthRanks)
	fmt.Fprintf(w, "attached run bit-identical to detached: %v\n", rep.BitIdentical)
}
