package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"ccahydro/internal/cca"
	"ccahydro/internal/chem"
	"ccahydro/internal/components"
	"ccahydro/internal/core"
	"ccahydro/internal/obs"
)

// The chemistry-kernel experiment quantifies what the chemgen code
// generator buys over the interpreted Reaction-table walk:
//
//  1. Microbenchmarks per mechanism: RHS ns/op interpreted vs
//     generated, and Jacobian build cost finite-difference vs analytic
//     (the FD build replays cvode's dim+1 RHS sweeps).
//  2. The flame benchmark: the 2D reaction-diffusion problem run
//     end-to-end on both engines. Solver work counters (RHS/Jacobian
//     evaluations per step) are deterministic for a fixed assembly;
//     wall seconds are host-dependent and reported for the speedup
//     headline.

// ChemMechRow is one mechanism's microbenchmark line.
type ChemMechRow struct {
	Mechanism     string  `json:"mechanism"`
	Species       int     `json:"species"`
	Reactions     int     `json:"reactions"`
	InterpRHSNs   float64 `json:"interpretedRHSNsPerOp"`
	KernelRHSNs   float64 `json:"kernelRHSNsPerOp"`
	RHSSpeedup    float64 `json:"rhsSpeedup"`
	FDJacNs       float64 `json:"fdJacobianNsPerBuild"`
	AnalyticJacNs float64 `json:"analyticJacobianNsPerBuild"`
	JacSpeedup    float64 `json:"jacobianSpeedup"`
}

// ChemFlameRun is one engine's flame benchmark: deterministic solver
// counters plus host wall seconds.
type ChemFlameRun struct {
	Engine            string  `json:"engine"` // "interpreted+fd" or "kernels+analytic"
	FlameSteps        int     `json:"flameSteps"`
	SolverSteps       int     `json:"solverSteps"`
	RHSEvals          int     `json:"rhsEvals"`
	JacEvals          int     `json:"jacEvals"`
	JacBuildsAnalytic int     `json:"jacBuildsAnalytic"`
	JacBuildsFD       int     `json:"jacBuildsFD"`
	NewtonIters       int     `json:"newtonIters"`
	RHSEvalsPerStep   float64 `json:"rhsEvalsPerFlameStep"`
	ChemSeconds       float64 `json:"chemPhaseSeconds"`
	TotalSeconds      float64 `json:"endToEndSeconds"`
	SecondsPerStep    float64 `json:"secondsPerFlameStep"`
}

// ChemReport is the BENCH_chem.json artifact.
type ChemReport struct {
	Mechanisms []ChemMechRow  `json:"mechanisms"`
	Flame      []ChemFlameRun `json:"flame"`
	// ChemSpeedup is the headline: interpreted+FD chemistry-phase
	// seconds over kernels+analytic on the same flame (must exceed 1.5).
	ChemSpeedup float64 `json:"flameChemSpeedup"`
	// RHSEvalRatio is deterministic: interpreted+FD solver RHS
	// evaluations over the analytic path's (FD sweeps eliminated).
	RHSEvalRatio float64 `json:"flameRHSEvalRatio"`
}

// chemBenchState is the shared microbenchmark state: a hot, partially
// deterministic composition exercising every species.
func chemBenchState(m *chem.Mechanism) (T, P float64, Y []float64) {
	T, P = 1500, chem.PAtm
	Y = make([]float64, m.NumSpecies())
	for i := range Y {
		Y[i] = float64(i + 1)
	}
	chem.NormalizeY(Y)
	return
}

// bestOf times fn (which runs iters inner iterations) three times and
// returns the fastest per-iteration nanoseconds.
func bestOf(iters int, fn func(iters int)) float64 {
	best := math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		fn(iters)
		if ns := float64(time.Since(start).Nanoseconds()) / float64(iters); ns < best {
			best = ns
		}
	}
	return best
}

// RunChemMicro measures the per-mechanism microbenchmarks.
func RunChemMicro(quick bool) ([]ChemMechRow, error) {
	rhsIters, jacIters := 20000, 2000
	if quick {
		rhsIters, jacIters = 2000, 200
	}
	var rows []ChemMechRow
	for _, m := range chem.AllMechanisms() {
		k := chem.KernelFor(m.Name)
		if k == nil {
			return nil, fmt.Errorf("chem bench: no generated kernel for %q", m.Name)
		}
		T, P, Y := chemBenchState(m)
		n := m.NumSpecies()
		dim := n + 1
		ws := chem.NewSourceWorkspace(m)
		dY := make([]float64, n)
		jac := make([]float64, dim*dim)

		row := ChemMechRow{Mechanism: m.Name, Species: n, Reactions: m.NumReactions()}
		row.InterpRHSNs = bestOf(rhsIters, func(it int) {
			for i := 0; i < it; i++ {
				m.ConstPressureSource(T, P, Y, dY, ws)
			}
		})
		row.KernelRHSNs = bestOf(rhsIters, func(it int) {
			for i := 0; i < it; i++ {
				k.ConstPressureSource(T, P, Y, dY)
			}
		})
		row.RHSSpeedup = row.InterpRHSNs / row.KernelRHSNs

		// FD build: cvode's dense sweep, dim+1 RHS evaluations through
		// the interpreted engine (what the fallback path pays per build).
		x := make([]float64, dim)
		x[0] = T
		copy(x[1:], Y)
		f0 := make([]float64, dim)
		f1 := make([]float64, dim)
		xp := make([]float64, dim)
		sqrtEps := math.Sqrt(2.22e-16)
		row.FDJacNs = bestOf(jacIters, func(it int) {
			for i := 0; i < it; i++ {
				f0[0] = m.ConstPressureSource(x[0], P, x[1:], f0[1:], ws)
				for j := 0; j < dim; j++ {
					h := sqrtEps * math.Max(math.Abs(x[j]), 1e-5)
					copy(xp, x)
					xp[j] += h
					f1[0] = m.ConstPressureSource(xp[0], P, xp[1:], f1[1:], ws)
					inv := 1 / h
					for r := 0; r < dim; r++ {
						jac[r*dim+j] = (f1[r] - f0[r]) * inv
					}
				}
			}
		})
		row.AnalyticJacNs = bestOf(jacIters, func(it int) {
			for i := 0; i < it; i++ {
				k.ConstPressureJacobian(T, P, Y, jac)
			}
		})
		row.JacSpeedup = row.FDJacNs / row.AnalyticJacNs
		rows = append(rows, row)
	}
	return rows, nil
}

// chemFlameParams pins the flame benchmark assembly.
func chemFlameParams(steps int, kernels string) []core.Param {
	return []core.Param{
		{Instance: "grace", Key: "nx", Value: "48"},
		{Instance: "grace", Key: "ny", Value: "48"},
		{Instance: "grace", Key: "maxLevels", Value: "2"},
		{Instance: "driver", Key: "steps", Value: fmt.Sprint(steps)},
		{Instance: "driver", Key: "dt", Value: "1e-7"},
		{Instance: "driver", Key: "regridEvery", Value: "1"},
		{Instance: "chem", Key: "kernels", Value: kernels},
	}
}

// runChemFlame runs the flame once on the given engine and collects
// counters plus wall seconds. The chemistry-phase split comes from an
// instrumented second run (the port-call interceptor times the
// driver's AdvanceChemistry wire); end-to-end seconds come from the
// plain run so interceptor overhead never touches them.
func runChemFlame(steps int, kernels, engine string) (ChemFlameRun, error) {
	run := ChemFlameRun{Engine: engine, FlameSteps: steps}

	dr, f, err := core.RunReactionDiffusion(nil, chemFlameParams(steps, kernels)...)
	if err != nil {
		return run, err
	}
	for _, s := range dr.StepSeconds {
		run.TotalSeconds += s
	}
	run.SecondsPerStep = run.TotalSeconds / float64(steps)
	comp, err := f.Lookup("cvode")
	if err != nil {
		return run, err
	}
	st := comp.(*components.CvodeComponent).TotalStats()
	run.SolverSteps = st.Steps
	run.RHSEvals = st.RHSEvals
	run.JacEvals = st.JacEvals
	run.JacBuildsAnalytic = st.JacBuildsAnalytic
	run.JacBuildsFD = st.JacBuildsFD
	run.NewtonIters = st.NewtonIters
	run.RHSEvalsPerStep = float64(st.RHSEvals) / float64(steps)

	// Instrumented pass for the chemistry-phase seconds.
	group := obs.NewGroup(1)
	fr := cca.NewFramework(core.Repo(), nil)
	fr.SetObservability(group.Rank(0))
	if err := core.AssembleReactionDiffusion(fr, chemFlameParams(steps, kernels)...); err != nil {
		return run, err
	}
	if err := fr.Go("driver", "go"); err != nil {
		return run, err
	}
	for _, h := range group.MergedSnapshot().Histograms {
		if strings.Contains(h.Name, `port="cellChemistry"`) && strings.Contains(h.Name, `method="AdvanceChemistry"`) {
			run.ChemSeconds += h.SumSeconds
		}
	}
	return run, nil
}

// BuildChemReport runs the full chemistry-kernel study.
func BuildChemReport(quick bool) (*ChemReport, error) {
	rep := &ChemReport{}
	rows, err := RunChemMicro(quick)
	if err != nil {
		return nil, err
	}
	rep.Mechanisms = rows

	steps := 4
	if quick {
		steps = 2
	}
	interp, err := runChemFlame(steps, "off", "interpreted+fd")
	if err != nil {
		return nil, err
	}
	gen, err := runChemFlame(steps, "on", "kernels+analytic")
	if err != nil {
		return nil, err
	}
	rep.Flame = []ChemFlameRun{interp, gen}
	rep.ChemSpeedup = interp.ChemSeconds / gen.ChemSeconds
	rep.RHSEvalRatio = float64(interp.RHSEvals) / float64(gen.RHSEvals)
	return rep, nil
}

// PrintChemReport renders the study.
func PrintChemReport(w io.Writer, rep *ChemReport) {
	fmt.Fprintf(w, "Chemistry kernels: generated + analytic Jacobian vs interpreted + FD\n\n")
	fmt.Fprintf(w, "%-22s %4s %4s %10s %10s %6s %12s %12s %6s\n",
		"mechanism", "nsp", "nrx", "interp(ns)", "kernel(ns)", "rhs x", "fd-jac(ns)", "an-jac(ns)", "jac x")
	for _, r := range rep.Mechanisms {
		fmt.Fprintf(w, "%-22s %4d %4d %10.0f %10.0f %6.2f %12.0f %12.0f %6.2f\n",
			r.Mechanism, r.Species, r.Reactions,
			r.InterpRHSNs, r.KernelRHSNs, r.RHSSpeedup,
			r.FDJacNs, r.AnalyticJacNs, r.JacSpeedup)
	}
	fmt.Fprintf(w, "\nFlame benchmark (48x48, 2 levels, dt=1e-7):\n\n")
	fmt.Fprintf(w, "%-18s %6s %9s %8s %8s %8s %11s %10s %10s\n",
		"engine", "steps", "rhsEvals", "jacFD", "jacAn", "newton", "rhs/step", "chem(s)", "total(s)")
	for _, r := range rep.Flame {
		fmt.Fprintf(w, "%-18s %6d %9d %8d %8d %8d %11.0f %10.4f %10.4f\n",
			r.Engine, r.FlameSteps, r.RHSEvals, r.JacBuildsFD, r.JacBuildsAnalytic,
			r.NewtonIters, r.RHSEvalsPerStep, r.ChemSeconds, r.TotalSeconds)
	}
	fmt.Fprintf(w, "\nflame chemistry-phase speedup: %.2fx (acceptance: > 1.5x)\n", rep.ChemSpeedup)
	fmt.Fprintf(w, "flame solver RHS-eval ratio:   %.2fx (deterministic; FD sweeps eliminated)\n", rep.RHSEvalRatio)
}
