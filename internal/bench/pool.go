package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccahydro/internal/amr"
	"ccahydro/internal/exec"
)

// Pool benchmarks for the persistent-worker epoch engine: a dispatch
// microbenchmark comparing the epoch handoff against the fork/join
// baselines it replaced, and a deterministic strip-interleave study
// showing how flattening per-patch boundary strips across patches
// shrinks the epoch tail. Dispatch rows are wall-clock (best-of-reps
// minimizes scheduler noise; the *ratios* are the claim, not the
// absolute nanoseconds); the strip rows are pure geometry and
// identical on every host.

// PoolDispatchPoint is one dispatch measurement: the same loop driven
// through the epoch engine, through goroutine-spawn fork/join, and
// through a channel-dispatch worker pool (the engine's predecessor).
// Overheads subtract the serial inline time of the identical loop, so
// they isolate what the synchronization costs, not what fn costs.
type PoolDispatchPoint struct {
	Width int `json:"width"`
	N     int `json:"n"`
	// Best-of-reps ns per loop invocation.
	SerialNs   float64 `json:"serial_ns_op"`
	EpochNs    float64 `json:"epoch_ns_op"`
	ForkJoinNs float64 `json:"fork_join_ns_op"`
	ChanPoolNs float64 `json:"chan_pool_ns_op"`
	// Dispatch overhead = mode - serial (floored at 1ns).
	EpochOverheadNs    float64 `json:"epoch_overhead_ns"`
	ForkJoinOverheadNs float64 `json:"fork_join_overhead_ns"`
	// OverheadReduction is fork/join overhead over epoch overhead —
	// the acceptance number.
	OverheadReduction float64 `json:"overhead_reduction"`
	// EpochAllocsOp is allocations per epoch handoff in steady state.
	EpochAllocsOp float64 `json:"epoch_allocs_op"`
}

// benchBody is the measured loop body: a few flops per item, written
// to a padded per-slot sink so the work cannot be optimized away and
// slots do not share cache lines.
var benchSink [1 << 10]float64

func benchBody(w, lo, hi int) {
	s := 0.0
	for i := lo; i < hi; i++ {
		s += float64(i) * 1.000001
	}
	benchSink[(w%64)*8] += s
}

// chunkBounds mirrors the pool's contiguous partition.
func chunkBounds(n, ch, c int) (lo, hi int) {
	return c * n / ch, (c + 1) * n / ch
}

// forkJoinLoop is the baseline the epoch engine replaced at the API
// boundary: spawn a goroutine per chunk, join on a WaitGroup.
func forkJoinLoop(width, n int) {
	chunks := width
	if chunks > n {
		chunks = n
	}
	var wg sync.WaitGroup
	wg.Add(chunks - 1)
	for c := 0; c < chunks-1; c++ {
		go func(c int) {
			defer wg.Done()
			lo, hi := chunkBounds(n, chunks, c)
			benchBody(c, lo, hi)
		}(c)
	}
	lo, hi := chunkBounds(n, chunks, chunks-1)
	benchBody(chunks-1, lo, hi)
	wg.Wait()
}

// chanJob + chanPool replicate the repository's previous pool: resident
// workers fed per-call job descriptors through a channel, with a
// channel close as the join. Kept here so BENCH_pool records what the
// epoch engine was measured against, not just the textbook baseline.
type chanJob struct {
	n      int
	chunks int32
	next   int32
	done   int32
	fn     func(w, lo, hi int)
	fin    chan struct{}
}

func (j *chanJob) drain() {
	for {
		c := atomic.AddInt32(&j.next, 1) - 1
		if c >= j.chunks {
			return
		}
		ch := int(j.chunks)
		j.fn(int(c), int(c)*j.n/ch, (int(c)+1)*j.n/ch)
		if atomic.AddInt32(&j.done, 1) == j.chunks {
			close(j.fin)
		}
	}
}

type chanPool struct {
	width int
	jobs  chan *chanJob
	start sync.Once
}

func (p *chanPool) forEachChunk(n int, fn func(w, lo, hi int)) {
	chunks := p.width
	if chunks > n {
		chunks = n
	}
	j := &chanJob{n: n, chunks: int32(chunks), fn: fn, fin: make(chan struct{})}
	p.start.Do(func() {
		for i := 0; i < p.width; i++ {
			go func() {
				for j := range p.jobs {
					j.drain()
				}
			}()
		}
	})
	for i := 1; i < chunks; i++ {
		select {
		case p.jobs <- j:
		default:
			i = chunks
		}
	}
	j.drain()
	<-j.fin
}

// measureNs returns the best-of-reps average nanoseconds per call.
func measureNs(f func()) float64 {
	const reps, iters = 5, 2000
	best := 1e18
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		if ns := float64(time.Since(t0).Nanoseconds()) / iters; ns < best {
			best = ns
		}
	}
	return best
}

// RunPoolDispatch measures one (width, n) dispatch point.
func RunPoolDispatch(width, n int) PoolDispatchPoint {
	pt := PoolDispatchPoint{Width: width, N: n}
	pool := exec.NewPool(width)
	cp := &chanPool{width: width, jobs: make(chan *chanJob, 4*width)}
	// Warm everything: spawn workers, fault in code paths.
	pool.ForEachChunk(n, benchBody)
	cp.forEachChunk(n, benchBody)
	forkJoinLoop(width, n)

	pt.SerialNs = measureNs(func() { benchBody(0, 0, n) })
	pt.EpochNs = measureNs(func() { pool.ForEachChunk(n, benchBody) })
	pt.ForkJoinNs = measureNs(func() { forkJoinLoop(width, n) })
	pt.ChanPoolNs = measureNs(func() { cp.forEachChunk(n, benchBody) })
	pt.EpochOverheadNs = pt.EpochNs - pt.SerialNs
	if pt.EpochOverheadNs < 1 {
		pt.EpochOverheadNs = 1
	}
	pt.ForkJoinOverheadNs = pt.ForkJoinNs - pt.SerialNs
	if pt.ForkJoinOverheadNs < 1 {
		pt.ForkJoinOverheadNs = 1
	}
	pt.OverheadReduction = pt.ForkJoinOverheadNs / pt.EpochOverheadNs
	pt.EpochAllocsOp = testing.AllocsPerRun(200, func() { pool.ForEachChunk(n, benchBody) })
	return pt
}

// PoolStripPoint is one row of the strip-interleave study: the same
// ragged patch layout's boundary-strip work chunked per patch (each
// chunk evaluates all strips of its patches — the old shape) versus
// flattened and segmented across patches (the stripPlan shape), with
// per-chunk load measured in strip cells. Occupancy is
// total/(chunks·max): the fraction of the epoch the average worker is
// busy, 1.0 meaning no tail.
type PoolStripPoint struct {
	Width   int `json:"width"`
	Patches int `json:"patches"`
	// Strips counts raw boundary strips; Items the segmented work list.
	Strips int `json:"strips"`
	Items  int `json:"items"`
	// Cells is the total boundary-strip cell count of the level.
	Cells              int     `json:"cells"`
	PerPatchOccupancy  float64 `json:"per_patch_occupancy"`
	SegmentedOccupancy float64 `json:"segmented_occupancy"`
}

// occupancy evaluates total/(chunks*max) for costs chunked contiguously
// into min(width, len(costs)) chunks, the pool's partition.
func occupancy(costs []int, width int) float64 {
	chunks := width
	if chunks > len(costs) {
		chunks = len(costs)
	}
	if chunks == 0 {
		return 1
	}
	total, maxLoad := 0, 0
	for c := 0; c < chunks; c++ {
		lo, hi := chunkBounds(len(costs), chunks, c)
		load := 0
		for i := lo; i < hi; i++ {
			load += costs[i]
		}
		total += load
		if load > maxLoad {
			maxLoad = load
		}
	}
	if maxLoad == 0 {
		return 1
	}
	return float64(total) / float64(chunks*maxLoad)
}

// RunPoolStrips computes the strip study for one layout: a diagonal
// flame-front band on an n×n level, clustered into the ragged patches
// a regrid would produce (wide boxes at the band's waist, slivers at
// its ends), split at maxCells, with ghost-width boundary strips. Pure
// geometry — deterministic on every host.
func RunPoolStrips(n, maxCells, ghost int, widths []int) []PoolStripPoint {
	domain := amr.NewBox(0, 0, n-1, n-1)
	ff := amr.NewFlagField(domain)
	for j := 0; j <= n-1; j++ {
		for i := 0; i <= n-1; i++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			// A curved front: band width varies along the diagonal.
			if d <= 2+(i+j)%7 {
				ff.Set(i, j)
			}
		}
	}
	blocks := amr.SplitLargeBoxes(amr.Cluster(ff, amr.DefaultClusterOptions), maxCells)
	// segMaxCells mirrors components.stripSegMaxCells.
	const segMaxCells = 8
	totalCells, nStrips := 0, 0
	perPatch := make([]int, len(blocks))
	var segmented []int
	for i, b := range blocks {
		for _, s := range b.Subtract(b.Grow(-ghost)) {
			perPatch[i] += s.NumCells()
			nStrips++
			for _, seg := range amr.SplitLargeBoxes([]amr.Box{s}, segMaxCells) {
				segmented = append(segmented, seg.NumCells())
			}
		}
		totalCells += perPatch[i]
	}
	var out []PoolStripPoint
	for _, w := range widths {
		out = append(out, PoolStripPoint{
			Width: w, Patches: len(blocks), Strips: nStrips, Items: len(segmented), Cells: totalCells,
			PerPatchOccupancy:  occupancy(perPatch, w),
			SegmentedOccupancy: occupancy(segmented, w),
		})
	}
	return out
}

// PoolReport is the BENCH_pool.json payload.
type PoolReport struct {
	Dispatch []PoolDispatchPoint `json:"dispatch"`
	// StripN/StripMaxCells/StripGhost describe the strip-study layout.
	StripN        int              `json:"strip_n"`
	StripMaxCells int              `json:"strip_max_cells"`
	StripGhost    int              `json:"strip_ghost"`
	Strips        []PoolStripPoint `json:"strips"`
}

// BuildPoolReport runs the dispatch microbench over (width, n) points
// and the strip study over widths.
func BuildPoolReport(quick bool) PoolReport {
	points := [][2]int{{2, 2}, {4, 4}, {8, 8}, {4, 64}, {4, 1024}}
	widths := []int{2, 4, 8, 16}
	if quick {
		points = [][2]int{{2, 2}, {4, 4}}
		widths = []int{2, 4}
	}
	rep := PoolReport{StripN: 96, StripMaxCells: 600, StripGhost: 2}
	for _, p := range points {
		rep.Dispatch = append(rep.Dispatch, RunPoolDispatch(p[0], p[1]))
	}
	rep.Strips = RunPoolStrips(rep.StripN, rep.StripMaxCells, rep.StripGhost, widths)
	return rep
}

// PrintPoolReport renders the study as text.
func PrintPoolReport(w io.Writer, rep PoolReport) {
	fmt.Fprintf(w, "Epoch-engine dispatch microbenchmark (best-of-reps wall clock)\n\n")
	fmt.Fprintf(w, "%5s %6s %10s %10s %10s %10s %10s %7s\n",
		"width", "n", "serial", "epoch", "forkjoin", "chanpool", "overhead", "allocs")
	for _, pt := range rep.Dispatch {
		fmt.Fprintf(w, "%5d %6d %8.0fns %8.0fns %8.0fns %8.0fns %9.2fx %7.1f\n",
			pt.Width, pt.N, pt.SerialNs, pt.EpochNs, pt.ForkJoinNs, pt.ChanPoolNs,
			pt.OverheadReduction, pt.EpochAllocsOp)
	}
	fmt.Fprintf(w, "\noverhead = fork/join dispatch overhead over epoch dispatch overhead (>= 3x is the acceptance bar)\n")
	fmt.Fprintf(w, "\nBoundary-strip interleave, %dx%d level, patches <= %d cells, ghost %d\n\n",
		rep.StripN, rep.StripN, rep.StripMaxCells, rep.StripGhost)
	fmt.Fprintf(w, "%5s %8s %7s %6s %7s %10s %11s\n", "width", "patches", "strips", "items", "cells", "per-patch", "segmented")
	for _, pt := range rep.Strips {
		fmt.Fprintf(w, "%5d %8d %7d %6d %7d %9.1f%% %10.1f%%\n",
			pt.Width, pt.Patches, pt.Strips, pt.Items, pt.Cells,
			100*pt.PerPatchOccupancy, 100*pt.SegmentedOccupancy)
	}
	fmt.Fprintf(w, "\noccupancy = total strip cells / (chunks x max chunk load): the segmented plan's\n")
	fmt.Fprintf(w, "tail chunk is no heavier than its peers, so the post-exchange epoch has no straggler.\n")
}
