package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/ckpt"
	"ccahydro/internal/components"
	"ccahydro/internal/core"
	"ccahydro/internal/mpi"
)

// ---- Checkpoint/restart study ------------------------------------------
//
// Measures the checkpoint subsystem the way the paper's Table 4
// measures port overhead: what does durability cost, and does the
// restore contract hold? Every value in the JSON artifact is
// deterministic — byte counts come from the self-describing shard
// encoding (bit-exact fields, virtual-clock metadata) and the
// bit-for-bit flags from exact float comparison. Wall-clock save/
// restore timings go to stdout only.

// CkptCase is one configuration's result.
type CkptCase struct {
	Name        string
	Driver      string
	Ranks       int
	Steps       int
	Every       int
	RestoreStep int
	Checkpoints int    // durable checkpoints on disk after the run
	ShardBytes  uint64 // total shard bytes of the restored checkpoint
	ManifestLen uint64 // manifest file size in bytes
	Patches     int    // hierarchy patches in the restored snapshot
	Cells       int    // composite cells in the restored snapshot
	BitForBit   bool   // restored run == uninterrupted run, exactly
	Faulted     bool   // a rank kill was injected
	Attempts    int    // supervisor attempts (fault case; else 1)
	Recovered   bool   // fault case: supervisor completed the run

	// Incremental/compression study columns (zero for plain cases).
	Incremental   bool
	Compressed    bool
	ChainLen      int     // delta-chain links behind the restored checkpoint
	BaselineBytes uint64  // full/raw shard bytes at the steady-state step
	ReducedBytes  uint64  // delta/compressed shard bytes at the same step
	SavingsX      float64 // BaselineBytes / ReducedBytes
}

// CkptReport is the BENCH_ckpt.json artifact.
type CkptReport struct {
	Cases []CkptCase
}

func flameCkptParams(steps int) []core.Param {
	return []core.Param{
		{Instance: "grace", Key: "nx", Value: "16"}, {Instance: "grace", Key: "ny", Value: "16"},
		{Instance: "grace", Key: "maxLevels", Value: "2"},
		{Instance: "driver", Key: "steps", Value: fmt.Sprintf("%d", steps)},
		{Instance: "driver", Key: "dt", Value: "1e-7"},
		{Instance: "driver", Key: "regridEvery", Value: "2"},
	}
}

// fieldBits flattens a field's interior cells rank-locally (the same
// scan the core determinism tests use).
func fieldBits(f *cca.Framework, name string) ([]float64, error) {
	comp, err := f.Lookup("grace")
	if err != nil {
		return nil, err
	}
	gc := comp.(*components.GrACEComponent)
	d := gc.Field(name)
	if d == nil {
		return nil, fmt.Errorf("bench: field %q not declared", name)
	}
	h := gc.Hierarchy()
	var out []float64
	for l := 0; l < h.NumLevels(); l++ {
		for _, pd := range d.LocalPatches(l) {
			b := pd.Interior()
			for c := 0; c < d.NComp; c++ {
				for j := b.Lo[1]; j <= b.Hi[1]; j++ {
					for i := b.Lo[0]; i <= b.Hi[0]; i++ {
						out = append(out, pd.At(c, i, j))
					}
				}
			}
		}
	}
	return out, nil
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// inspectManifest fills the size/shape columns from the durable files.
func inspectManifest(c *CkptCase, dir string, step int) error {
	path := filepath.Join(dir, ckpt.ManifestFileName(step))
	m, err := ckpt.ReadManifest(path)
	if err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	c.ManifestLen = uint64(fi.Size())
	for _, s := range m.Shards {
		c.ShardBytes += s.Size
	}
	data, err := os.ReadFile(filepath.Join(dir, m.Shards[0].File))
	if err != nil {
		return err
	}
	shard, err := ckpt.DecodeShard(data)
	if err != nil {
		return err
	}
	h, err := amr.FromSnapshot(shard.Snapshot)
	if err != nil {
		return err
	}
	c.Patches = len(shard.Snapshot.Patches)
	c.Cells = h.TotalCells()
	manifests, _ := filepath.Glob(filepath.Join(dir, "*.manifest"))
	c.Checkpoints = len(manifests)
	return nil
}

// runFlame runs the flame serially with checkpointing wired and returns
// the final field bits.
func runFlame(dir, restore string, every int, params []core.Param) ([]float64, error) {
	f := cca.NewFramework(core.Repo(), nil)
	if err := core.AssembleReactionDiffusion(f, params...); err != nil {
		return nil, err
	}
	if err := core.WireCheckpoint(f, dir, restore, every); err != nil {
		return nil, err
	}
	if err := f.Go("driver", "go"); err != nil {
		return nil, err
	}
	return fieldBits(f, "phi")
}

// runFlameRanks runs the flame on a caller-built world, returning each
// rank's final field bits.
func runFlameRanks(w *mpi.World, dir, restore string, every int, params []core.Param) ([][]float64, error) {
	var mu sync.Mutex
	ranks := make([][]float64, w.Size())
	res := cca.RunSCMDOn(w, core.Repo(), func(f *cca.Framework, comm *mpi.Comm) error {
		if err := core.AssembleReactionDiffusion(f, params...); err != nil {
			return err
		}
		if err := core.WireCheckpoint(f, dir, restore, every); err != nil {
			return err
		}
		if err := f.Go("driver", "go"); err != nil {
			return err
		}
		bits, err := fieldBits(f, "phi")
		if err != nil {
			return err
		}
		mu.Lock()
		ranks[comm.Rank()] = bits
		mu.Unlock()
		return nil
	})
	return ranks, res.Err()
}

func sameRankBits(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for r := range a {
		if !sameBits(a[r], b[r]) {
			return false
		}
	}
	return true
}

// runCkptRanks is the generic runner behind the incremental and
// compression cases: any assembly, any world, full checkpoint options.
func runCkptRanks(w *mpi.World, assemble func(*cca.Framework) error, fieldName string, o core.CheckpointOptions) ([][]float64, error) {
	var mu sync.Mutex
	ranks := make([][]float64, w.Size())
	res := cca.RunSCMDOn(w, core.Repo(), func(f *cca.Framework, comm *mpi.Comm) error {
		if err := assemble(f); err != nil {
			return err
		}
		if err := core.WireCheckpointOpts(f, o); err != nil {
			return err
		}
		if err := f.Go("driver", "go"); err != nil {
			return err
		}
		bits, err := fieldBits(f, fieldName)
		if err != nil {
			return err
		}
		mu.Lock()
		ranks[comm.Rank()] = bits
		mu.Unlock()
		return nil
	})
	return ranks, res.Err()
}

// shardBytesAt sums the shard sizes a step's manifest records.
func shardBytesAt(dir string, step int) (uint64, error) {
	m, err := ckpt.ReadManifest(filepath.Join(dir, ckpt.ManifestFileName(step)))
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, s := range m.Shards {
		total += s.Size
	}
	return total, nil
}

// incrementalCase runs one problem three ways — uninterrupted
// reference, full checkpoints every step, incremental checkpoints every
// step — then restores through the delta chain and fills the
// savings/verdict columns.
func incrementalCase(out io.Writer, scratch string, c CkptCase,
	assemble func(*cca.Framework) error, fieldName string, steadyStep int) (CkptCase, error) {
	world := func() *mpi.World { return mpi.NewWorld(c.Ranks, mpi.CPlantModel) }
	ref, err := runCkptRanks(world(), assemble, fieldName,
		core.CheckpointOptions{Dir: filepath.Join(scratch, c.Name+"-ref")})
	if err != nil {
		return c, err
	}
	fullDir := filepath.Join(scratch, c.Name+"-full")
	if _, err := runCkptRanks(world(), assemble, fieldName,
		core.CheckpointOptions{Every: c.Every, Dir: fullDir}); err != nil {
		return c, err
	}
	incDir := filepath.Join(scratch, c.Name)
	t0 := time.Now()
	if _, err := runCkptRanks(world(), assemble, fieldName,
		core.CheckpointOptions{Every: c.Every, Dir: incDir, Incremental: true, FullEvery: 100}); err != nil {
		return c, err
	}
	writeWall := time.Since(t0)

	if c.BaselineBytes, err = shardBytesAt(fullDir, steadyStep); err != nil {
		return c, err
	}
	if c.ReducedBytes, err = shardBytesAt(incDir, steadyStep); err != nil {
		return c, err
	}
	c.SavingsX = float64(c.BaselineBytes) / float64(c.ReducedBytes)

	target := filepath.Join(incDir, ckpt.ManifestFileName(c.RestoreStep))
	chain, err := ckpt.ResolveChain(target)
	if err != nil {
		return c, err
	}
	c.ChainLen = len(chain)
	t0 = time.Now()
	got, err := runCkptRanks(world(), assemble, fieldName,
		core.CheckpointOptions{Dir: filepath.Join(scratch, c.Name+"-resume"), Restore: target})
	if err != nil {
		return c, err
	}
	fmt.Fprintf(out, "%-20s write run %8.1f ms, chain restore %8.1f ms, delta %d B vs full %d B (%.1fx)\n",
		c.Name, writeWall.Seconds()*1e3, time.Since(t0).Seconds()*1e3,
		c.ReducedBytes, c.BaselineBytes, c.SavingsX)
	c.BitForBit = sameRankBits(ref, got)
	if err := inspectManifest(&c, incDir, c.RestoreStep); err != nil {
		return c, err
	}
	return c, nil
}

// BuildCkptReport runs the four checkpoint configurations. out receives
// wall-clock progress lines (not part of the artifact).
func BuildCkptReport(out io.Writer, scratch string) (*CkptReport, error) {
	rep := &CkptReport{}
	const steps = 4
	params := flameCkptParams(steps)

	// Case 1: serial flame, checkpoint every step, restore mid-run.
	{
		c := CkptCase{Name: "flame-serial", Driver: "rd", Ranks: 1, Steps: steps, Every: 1, RestoreStep: 1, Attempts: 1}
		dir := filepath.Join(scratch, c.Name)
		ref, err := runFlame(filepath.Join(scratch, c.Name+"-ref"), "", 0, params)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := runFlame(dir, "", 1, params); err != nil {
			return nil, err
		}
		saveWall := time.Since(t0)
		t0 = time.Now()
		got, err := runFlame(filepath.Join(scratch, c.Name+"-resume"),
			filepath.Join(dir, ckpt.ManifestFileName(c.RestoreStep)), 0, params)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "%-20s write run %8.1f ms, resume run %8.1f ms\n",
			c.Name, saveWall.Seconds()*1e3, time.Since(t0).Seconds()*1e3)
		c.BitForBit = sameBits(ref, got)
		if err := inspectManifest(&c, dir, c.RestoreStep); err != nil {
			return nil, err
		}
		rep.Cases = append(rep.Cases, c)
	}

	// Case 2: 4-rank flame, per-rank shards + rank-0 manifest.
	{
		c := CkptCase{Name: "flame-4rank", Driver: "rd", Ranks: 4, Steps: steps, Every: 2, RestoreStep: 1, Attempts: 1}
		dir := filepath.Join(scratch, c.Name)
		t0 := time.Now()
		ref, err := runFlameRanks(mpi.NewWorld(4, mpi.CPlantModel), dir, "", 2, params)
		if err != nil {
			return nil, err
		}
		saveWall := time.Since(t0)
		t0 = time.Now()
		got, err := runFlameRanks(mpi.NewWorld(4, mpi.CPlantModel), filepath.Join(scratch, c.Name+"-resume"),
			filepath.Join(dir, ckpt.ManifestFileName(c.RestoreStep)), 0, params)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "%-20s write run %8.1f ms, resume run %8.1f ms\n",
			c.Name, saveWall.Seconds()*1e3, time.Since(t0).Seconds()*1e3)
		c.BitForBit = sameRankBits(ref, got)
		if err := inspectManifest(&c, dir, c.RestoreStep); err != nil {
			return nil, err
		}
		rep.Cases = append(rep.Cases, c)
	}

	// Case 3: serial shock, restore reinstates the circulation series.
	{
		c := CkptCase{Name: "shock-serial", Driver: "shock", Ranks: 1, Steps: 6, Every: 2, RestoreStep: 3, Attempts: 1}
		sp := []core.Param{
			{Instance: "grace", Key: "nx", Value: "32"}, {Instance: "grace", Key: "ny", Value: "16"},
			{Instance: "grace", Key: "lx", Value: "2.0"}, {Instance: "grace", Key: "ly", Value: "1.0"},
			{Instance: "grace", Key: "maxLevels", Value: "2"},
			{Instance: "driver", Key: "tEnd", Value: "1.0"},
			{Instance: "driver", Key: "maxSteps", Value: "6"},
			{Instance: "driver", Key: "regridEvery", Value: "2"},
		}
		runShock := func(dir, restore string, every int) ([]float64, *components.ShockDriver, error) {
			f := cca.NewFramework(core.Repo(), nil)
			if err := core.AssembleShockInterface(f, "GodunovFlux", sp...); err != nil {
				return nil, nil, err
			}
			if err := core.WireCheckpoint(f, dir, restore, every); err != nil {
				return nil, nil, err
			}
			if err := f.Go("driver", "go"); err != nil {
				return nil, nil, err
			}
			bits, err := fieldBits(f, "U")
			if err != nil {
				return nil, nil, err
			}
			comp, _ := f.Lookup("driver")
			return bits, comp.(*components.ShockDriver), nil
		}
		dir := filepath.Join(scratch, c.Name)
		t0 := time.Now()
		ref, drRef, err := runShock(dir, "", 2)
		if err != nil {
			return nil, err
		}
		saveWall := time.Since(t0)
		t0 = time.Now()
		got, drGot, err := runShock(filepath.Join(scratch, c.Name+"-resume"),
			filepath.Join(dir, ckpt.ManifestFileName(c.RestoreStep)), 0)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "%-20s write run %8.1f ms, resume run %8.1f ms\n",
			c.Name, saveWall.Seconds()*1e3, time.Since(t0).Seconds()*1e3)
		c.BitForBit = sameBits(ref, got) &&
			len(drGot.Circulations) == len(drRef.Circulations) &&
			drGot.FinalTime == drRef.FinalTime
		for i := range drRef.Circulations {
			if c.BitForBit && drGot.Circulations[i] != drRef.Circulations[i] {
				c.BitForBit = false
			}
		}
		if err := inspectManifest(&c, dir, c.RestoreStep); err != nil {
			return nil, err
		}
		rep.Cases = append(rep.Cases, c)
	}

	// Case 4: injected rank kill + supervised recovery.
	{
		c := CkptCase{Name: "flame-fault-kill", Driver: "rd", Ranks: 4, Steps: steps, Every: 1, RestoreStep: 1, Faulted: true}
		ref, err := runFlameRanks(mpi.NewWorld(4, mpi.CPlantModel), filepath.Join(scratch, c.Name+"-ref"), "", 1, params)
		if err != nil {
			return nil, err
		}
		dir := filepath.Join(scratch, c.Name)
		var final [][]float64
		t0 := time.Now()
		err = ckpt.Supervise(dir, 2, func(restore string) error {
			c.Attempts++
			w := mpi.NewWorld(4, mpi.CPlantModel)
			if c.Attempts == 1 {
				w.InjectFault(mpi.Fault{Rank: 2, Kind: mpi.FaultKill, AtStep: 2, AtSend: -1})
			}
			ranks, err := runFlameRanks(w, dir, restore, 1, params)
			if err != nil {
				return err
			}
			final = ranks
			return nil
		})
		fmt.Fprintf(out, "%-20s kill rank 2 @ step 2, supervised recovery %8.1f ms (%d attempts)\n",
			c.Name, time.Since(t0).Seconds()*1e3, c.Attempts)
		c.Recovered = err == nil
		c.BitForBit = err == nil && sameRankBits(ref, final)
		if err := inspectManifest(&c, dir, steps-1); err != nil {
			return nil, err
		}
		rep.Cases = append(rep.Cases, c)
	}

	// Case 5: incremental flame. The reaction term advances every cell
	// every step, so every patch's fingerprint changes and deltas buy
	// almost nothing — this row is the honest floor of the study:
	// dirty-bit tracking only skips patches that are genuinely clean.
	{
		c := CkptCase{Name: "flame-incremental", Driver: "rd", Ranks: 4, Steps: 6, Every: 1,
			RestoreStep: 4, Attempts: 1, Incremental: true}
		p := []core.Param{
			{Instance: "grace", Key: "nx", Value: "16"}, {Instance: "grace", Key: "ny", Value: "16"},
			{Instance: "grace", Key: "maxLevels", Value: "1"},
			{Instance: "driver", Key: "steps", Value: "6"},
			{Instance: "driver", Key: "dt", Value: "1e-7"},
			{Instance: "driver", Key: "regridEvery", Value: "0"},
		}
		assemble := func(f *cca.Framework) error { return core.AssembleReactionDiffusion(f, p...) }
		c, err := incrementalCase(out, scratch, c, assemble, "phi", 5)
		if err != nil {
			return nil, err
		}
		rep.Cases = append(rep.Cases, c)
	}

	// Case 6: incremental shock on a wide domain. The shock sits at
	// 0.2·Lx and the oblique interface at 0.4·Lx; everywhere else the
	// state is uniform, so Godunov flux differences are exactly zero and
	// those cells are bitwise-stationary. With 8 ranks the 256×8 grid
	// decomposes into eight 32-wide stripes and only the two stripes
	// holding the discontinuities ever change — the steady-state delta
	// step writes ~2/8 of the full payload.
	{
		c := CkptCase{Name: "shock-incremental", Driver: "shock", Ranks: 8, Steps: 6, Every: 1,
			RestoreStep: 4, Attempts: 1, Incremental: true}
		sp := []core.Param{
			{Instance: "grace", Key: "nx", Value: "256"}, {Instance: "grace", Key: "ny", Value: "8"},
			{Instance: "grace", Key: "lx", Value: "2.0"}, {Instance: "grace", Key: "ly", Value: "0.0625"},
			{Instance: "grace", Key: "maxLevels", Value: "1"},
			{Instance: "driver", Key: "tEnd", Value: "1.0"},
			{Instance: "driver", Key: "maxSteps", Value: "6"},
			{Instance: "driver", Key: "regridEvery", Value: "0"},
		}
		assemble := func(f *cca.Framework) error { return core.AssembleShockInterface(f, "GodunovFlux", sp...) }
		c, err := incrementalCase(out, scratch, c, assemble, "U", 5)
		if err != nil {
			return nil, err
		}
		rep.Cases = append(rep.Cases, c)
	}

	// Case 7: gzip-framed flame shards (format v2 compressed sections)
	// against raw v2, restore bit-for-bit from the compressed chain.
	{
		c := CkptCase{Name: "flame-compress", Driver: "rd", Ranks: 1, Steps: steps, Every: 1,
			RestoreStep: 3, Attempts: 1, Compressed: true}
		assemble := func(f *cca.Framework) error { return core.AssembleReactionDiffusion(f, params...) }
		world := func() *mpi.World { return mpi.NewWorld(1, mpi.CPlantModel) }
		ref, err := runCkptRanks(world(), assemble, "phi",
			core.CheckpointOptions{Dir: filepath.Join(scratch, c.Name+"-ref")})
		if err != nil {
			return nil, err
		}
		rawDir := filepath.Join(scratch, c.Name+"-raw")
		if _, err := runCkptRanks(world(), assemble, "phi",
			core.CheckpointOptions{Every: 1, Dir: rawDir}); err != nil {
			return nil, err
		}
		dir := filepath.Join(scratch, c.Name)
		t0 := time.Now()
		if _, err := runCkptRanks(world(), assemble, "phi",
			core.CheckpointOptions{Every: 1, Dir: dir, Compress: true}); err != nil {
			return nil, err
		}
		saveWall := time.Since(t0)
		if c.BaselineBytes, err = shardBytesAt(rawDir, c.RestoreStep); err != nil {
			return nil, err
		}
		if c.ReducedBytes, err = shardBytesAt(dir, c.RestoreStep); err != nil {
			return nil, err
		}
		c.SavingsX = float64(c.BaselineBytes) / float64(c.ReducedBytes)
		t0 = time.Now()
		got, err := runCkptRanks(world(), assemble, "phi",
			core.CheckpointOptions{Dir: filepath.Join(scratch, c.Name+"-resume"),
				Restore: filepath.Join(dir, ckpt.ManifestFileName(c.RestoreStep))})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "%-20s write run %8.1f ms, resume run %8.1f ms, gzip %d B vs raw %d B (%.1fx)\n",
			c.Name, saveWall.Seconds()*1e3, time.Since(t0).Seconds()*1e3,
			c.ReducedBytes, c.BaselineBytes, c.SavingsX)
		c.BitForBit = sameRankBits(ref, got)
		if err := inspectManifest(&c, dir, c.RestoreStep); err != nil {
			return nil, err
		}
		rep.Cases = append(rep.Cases, c)
	}
	return rep, nil
}

// PrintCkptReport renders the study as a table.
func PrintCkptReport(w io.Writer, rep *CkptReport) {
	fmt.Fprintf(w, "%-20s %-6s %5s %5s %5s %-5s %5s %9s %9s %6s %10s %9s\n",
		"case", "driver", "ranks", "steps", "every", "mode", "chain", "baseB", "shardB", "saveX", "bit4bit", "recovered")
	for _, c := range rep.Cases {
		rec := "-"
		if c.Faulted {
			rec = fmt.Sprintf("%v/%d", c.Recovered, c.Attempts)
		}
		mode := "full"
		if c.Incremental {
			mode = "incr"
		} else if c.Compressed {
			mode = "gzip"
		}
		save := "-"
		if c.SavingsX > 0 {
			save = fmt.Sprintf("%.1fx", c.SavingsX)
		}
		base := "-"
		if c.BaselineBytes > 0 {
			base = fmt.Sprintf("%d", c.BaselineBytes)
		}
		fmt.Fprintf(w, "%-20s %-6s %5d %5d %5d %-5s %5d %9s %9d %6s %10v %9s\n",
			c.Name, c.Driver, c.Ranks, c.Steps, c.Every, mode, c.ChainLen,
			base, c.ShardBytes, save, c.BitForBit, rec)
	}
}
