package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/ckpt"
	"ccahydro/internal/components"
	"ccahydro/internal/core"
	"ccahydro/internal/mpi"
)

// ---- Checkpoint/restart study ------------------------------------------
//
// Measures the checkpoint subsystem the way the paper's Table 4
// measures port overhead: what does durability cost, and does the
// restore contract hold? Every value in the JSON artifact is
// deterministic — byte counts come from the self-describing shard
// encoding (bit-exact fields, virtual-clock metadata) and the
// bit-for-bit flags from exact float comparison. Wall-clock save/
// restore timings go to stdout only.

// CkptCase is one configuration's result.
type CkptCase struct {
	Name        string
	Driver      string
	Ranks       int
	Steps       int
	Every       int
	RestoreStep int
	Checkpoints int    // durable checkpoints on disk after the run
	ShardBytes  uint64 // total shard bytes of the restored checkpoint
	ManifestLen uint64 // manifest file size in bytes
	Patches     int    // hierarchy patches in the restored snapshot
	Cells       int    // composite cells in the restored snapshot
	BitForBit   bool   // restored run == uninterrupted run, exactly
	Faulted     bool   // a rank kill was injected
	Attempts    int    // supervisor attempts (fault case; else 1)
	Recovered   bool   // fault case: supervisor completed the run
}

// CkptReport is the BENCH_ckpt.json artifact.
type CkptReport struct {
	Cases []CkptCase
}

func flameCkptParams(steps int) []core.Param {
	return []core.Param{
		{Instance: "grace", Key: "nx", Value: "16"}, {Instance: "grace", Key: "ny", Value: "16"},
		{Instance: "grace", Key: "maxLevels", Value: "2"},
		{Instance: "driver", Key: "steps", Value: fmt.Sprintf("%d", steps)},
		{Instance: "driver", Key: "dt", Value: "1e-7"},
		{Instance: "driver", Key: "regridEvery", Value: "2"},
	}
}

// fieldBits flattens a field's interior cells rank-locally (the same
// scan the core determinism tests use).
func fieldBits(f *cca.Framework, name string) ([]float64, error) {
	comp, err := f.Lookup("grace")
	if err != nil {
		return nil, err
	}
	gc := comp.(*components.GrACEComponent)
	d := gc.Field(name)
	if d == nil {
		return nil, fmt.Errorf("bench: field %q not declared", name)
	}
	h := gc.Hierarchy()
	var out []float64
	for l := 0; l < h.NumLevels(); l++ {
		for _, pd := range d.LocalPatches(l) {
			b := pd.Interior()
			for c := 0; c < d.NComp; c++ {
				for j := b.Lo[1]; j <= b.Hi[1]; j++ {
					for i := b.Lo[0]; i <= b.Hi[0]; i++ {
						out = append(out, pd.At(c, i, j))
					}
				}
			}
		}
	}
	return out, nil
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// inspectManifest fills the size/shape columns from the durable files.
func inspectManifest(c *CkptCase, dir string, step int) error {
	path := filepath.Join(dir, ckpt.ManifestFileName(step))
	m, err := ckpt.ReadManifest(path)
	if err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	c.ManifestLen = uint64(fi.Size())
	for _, s := range m.Shards {
		c.ShardBytes += s.Size
	}
	data, err := os.ReadFile(filepath.Join(dir, m.Shards[0].File))
	if err != nil {
		return err
	}
	shard, err := ckpt.DecodeShard(data)
	if err != nil {
		return err
	}
	h, err := amr.FromSnapshot(shard.Snapshot)
	if err != nil {
		return err
	}
	c.Patches = len(shard.Snapshot.Patches)
	c.Cells = h.TotalCells()
	manifests, _ := filepath.Glob(filepath.Join(dir, "*.manifest"))
	c.Checkpoints = len(manifests)
	return nil
}

// runFlame runs the flame serially with checkpointing wired and returns
// the final field bits.
func runFlame(dir, restore string, every int, params []core.Param) ([]float64, error) {
	f := cca.NewFramework(core.Repo(), nil)
	if err := core.AssembleReactionDiffusion(f, params...); err != nil {
		return nil, err
	}
	if err := core.WireCheckpoint(f, dir, restore, every); err != nil {
		return nil, err
	}
	if err := f.Go("driver", "go"); err != nil {
		return nil, err
	}
	return fieldBits(f, "phi")
}

// runFlameRanks runs the flame on a caller-built world, returning each
// rank's final field bits.
func runFlameRanks(w *mpi.World, dir, restore string, every int, params []core.Param) ([][]float64, error) {
	var mu sync.Mutex
	ranks := make([][]float64, w.Size())
	res := cca.RunSCMDOn(w, core.Repo(), func(f *cca.Framework, comm *mpi.Comm) error {
		if err := core.AssembleReactionDiffusion(f, params...); err != nil {
			return err
		}
		if err := core.WireCheckpoint(f, dir, restore, every); err != nil {
			return err
		}
		if err := f.Go("driver", "go"); err != nil {
			return err
		}
		bits, err := fieldBits(f, "phi")
		if err != nil {
			return err
		}
		mu.Lock()
		ranks[comm.Rank()] = bits
		mu.Unlock()
		return nil
	})
	return ranks, res.Err()
}

func sameRankBits(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for r := range a {
		if !sameBits(a[r], b[r]) {
			return false
		}
	}
	return true
}

// BuildCkptReport runs the four checkpoint configurations. out receives
// wall-clock progress lines (not part of the artifact).
func BuildCkptReport(out io.Writer, scratch string) (*CkptReport, error) {
	rep := &CkptReport{}
	const steps = 4
	params := flameCkptParams(steps)

	// Case 1: serial flame, checkpoint every step, restore mid-run.
	{
		c := CkptCase{Name: "flame-serial", Driver: "rd", Ranks: 1, Steps: steps, Every: 1, RestoreStep: 1, Attempts: 1}
		dir := filepath.Join(scratch, c.Name)
		ref, err := runFlame(filepath.Join(scratch, c.Name+"-ref"), "", 0, params)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := runFlame(dir, "", 1, params); err != nil {
			return nil, err
		}
		saveWall := time.Since(t0)
		t0 = time.Now()
		got, err := runFlame(filepath.Join(scratch, c.Name+"-resume"),
			filepath.Join(dir, ckpt.ManifestFileName(c.RestoreStep)), 0, params)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "%-20s write run %8.1f ms, resume run %8.1f ms\n",
			c.Name, saveWall.Seconds()*1e3, time.Since(t0).Seconds()*1e3)
		c.BitForBit = sameBits(ref, got)
		if err := inspectManifest(&c, dir, c.RestoreStep); err != nil {
			return nil, err
		}
		rep.Cases = append(rep.Cases, c)
	}

	// Case 2: 4-rank flame, per-rank shards + rank-0 manifest.
	{
		c := CkptCase{Name: "flame-4rank", Driver: "rd", Ranks: 4, Steps: steps, Every: 2, RestoreStep: 1, Attempts: 1}
		dir := filepath.Join(scratch, c.Name)
		t0 := time.Now()
		ref, err := runFlameRanks(mpi.NewWorld(4, mpi.CPlantModel), dir, "", 2, params)
		if err != nil {
			return nil, err
		}
		saveWall := time.Since(t0)
		t0 = time.Now()
		got, err := runFlameRanks(mpi.NewWorld(4, mpi.CPlantModel), filepath.Join(scratch, c.Name+"-resume"),
			filepath.Join(dir, ckpt.ManifestFileName(c.RestoreStep)), 0, params)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "%-20s write run %8.1f ms, resume run %8.1f ms\n",
			c.Name, saveWall.Seconds()*1e3, time.Since(t0).Seconds()*1e3)
		c.BitForBit = sameRankBits(ref, got)
		if err := inspectManifest(&c, dir, c.RestoreStep); err != nil {
			return nil, err
		}
		rep.Cases = append(rep.Cases, c)
	}

	// Case 3: serial shock, restore reinstates the circulation series.
	{
		c := CkptCase{Name: "shock-serial", Driver: "shock", Ranks: 1, Steps: 6, Every: 2, RestoreStep: 3, Attempts: 1}
		sp := []core.Param{
			{Instance: "grace", Key: "nx", Value: "32"}, {Instance: "grace", Key: "ny", Value: "16"},
			{Instance: "grace", Key: "lx", Value: "2.0"}, {Instance: "grace", Key: "ly", Value: "1.0"},
			{Instance: "grace", Key: "maxLevels", Value: "2"},
			{Instance: "driver", Key: "tEnd", Value: "1.0"},
			{Instance: "driver", Key: "maxSteps", Value: "6"},
			{Instance: "driver", Key: "regridEvery", Value: "2"},
		}
		runShock := func(dir, restore string, every int) ([]float64, *components.ShockDriver, error) {
			f := cca.NewFramework(core.Repo(), nil)
			if err := core.AssembleShockInterface(f, "GodunovFlux", sp...); err != nil {
				return nil, nil, err
			}
			if err := core.WireCheckpoint(f, dir, restore, every); err != nil {
				return nil, nil, err
			}
			if err := f.Go("driver", "go"); err != nil {
				return nil, nil, err
			}
			bits, err := fieldBits(f, "U")
			if err != nil {
				return nil, nil, err
			}
			comp, _ := f.Lookup("driver")
			return bits, comp.(*components.ShockDriver), nil
		}
		dir := filepath.Join(scratch, c.Name)
		t0 := time.Now()
		ref, drRef, err := runShock(dir, "", 2)
		if err != nil {
			return nil, err
		}
		saveWall := time.Since(t0)
		t0 = time.Now()
		got, drGot, err := runShock(filepath.Join(scratch, c.Name+"-resume"),
			filepath.Join(dir, ckpt.ManifestFileName(c.RestoreStep)), 0)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "%-20s write run %8.1f ms, resume run %8.1f ms\n",
			c.Name, saveWall.Seconds()*1e3, time.Since(t0).Seconds()*1e3)
		c.BitForBit = sameBits(ref, got) &&
			len(drGot.Circulations) == len(drRef.Circulations) &&
			drGot.FinalTime == drRef.FinalTime
		for i := range drRef.Circulations {
			if c.BitForBit && drGot.Circulations[i] != drRef.Circulations[i] {
				c.BitForBit = false
			}
		}
		if err := inspectManifest(&c, dir, c.RestoreStep); err != nil {
			return nil, err
		}
		rep.Cases = append(rep.Cases, c)
	}

	// Case 4: injected rank kill + supervised recovery.
	{
		c := CkptCase{Name: "flame-fault-kill", Driver: "rd", Ranks: 4, Steps: steps, Every: 1, RestoreStep: 1, Faulted: true}
		ref, err := runFlameRanks(mpi.NewWorld(4, mpi.CPlantModel), filepath.Join(scratch, c.Name+"-ref"), "", 1, params)
		if err != nil {
			return nil, err
		}
		dir := filepath.Join(scratch, c.Name)
		var final [][]float64
		t0 := time.Now()
		err = ckpt.Supervise(dir, 2, func(restore string) error {
			c.Attempts++
			w := mpi.NewWorld(4, mpi.CPlantModel)
			if c.Attempts == 1 {
				w.InjectFault(mpi.Fault{Rank: 2, Kind: mpi.FaultKill, AtStep: 2, AtSend: -1})
			}
			ranks, err := runFlameRanks(w, dir, restore, 1, params)
			if err != nil {
				return err
			}
			final = ranks
			return nil
		})
		fmt.Fprintf(out, "%-20s kill rank 2 @ step 2, supervised recovery %8.1f ms (%d attempts)\n",
			c.Name, time.Since(t0).Seconds()*1e3, c.Attempts)
		c.Recovered = err == nil
		c.BitForBit = err == nil && sameRankBits(ref, final)
		if err := inspectManifest(&c, dir, steps-1); err != nil {
			return nil, err
		}
		rep.Cases = append(rep.Cases, c)
	}
	return rep, nil
}

// PrintCkptReport renders the study as a table.
func PrintCkptReport(w io.Writer, rep *CkptReport) {
	fmt.Fprintf(w, "%-20s %-6s %5s %5s %5s %9s %8s %7s %6s %10s %9s\n",
		"case", "driver", "ranks", "steps", "every", "shardB", "maniB", "patches", "cells", "bit4bit", "recovered")
	for _, c := range rep.Cases {
		rec := "-"
		if c.Faulted {
			rec = fmt.Sprintf("%v/%d", c.Recovered, c.Attempts)
		}
		fmt.Fprintf(w, "%-20s %-6s %5d %5d %5d %9d %8d %7d %6d %10v %9s\n",
			c.Name, c.Driver, c.Ranks, c.Steps, c.Every, c.ShardBytes, c.ManifestLen,
			c.Patches, c.Cells, c.BitForBit, rec)
	}
}
