package bench

import (
	"fmt"
	"io"
	"math"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/core"
	"ccahydro/internal/euler"
)

// ---- Fig 3: temperature-field evolution of the flame --------------------
//
// The paper's frames (t = 0, 0.265, 0.395 ms) come from a 58-hour,
// 28-CPU run. This reproduction exercises the same code path on a
// reduced configuration (coarser mesh, shorter horizon): the hot spots
// ignite to the adiabatic flame temperature and diffusive fronts form,
// which is the qualitative content of the figure.

// Fig3Snapshot summarizes one temperature frame.
type Fig3Snapshot struct {
	Time          float64
	TMin, TMax    float64
	TMean         float64
	BurntFraction float64 // fraction of coarse cells above 1500 K
}

// Fig3Config tunes the flame-evolution run.
type Fig3Config struct {
	Nx, MaxLevels, StepsPerFrame, Frames int
	Dt                                   float64
}

// DefaultFig3Config runs in ~a minute on a laptop-class core.
var DefaultFig3Config = Fig3Config{Nx: 32, MaxLevels: 2, StepsPerFrame: 8, Frames: 3, Dt: 8e-7}

// RunFig3 produces the frame summaries and the final framework (for
// field dumps).
func RunFig3(cfg Fig3Config) ([]Fig3Snapshot, *cca.Framework, error) {
	if cfg.Nx == 0 {
		cfg = DefaultFig3Config
	}
	f := cca.NewFramework(core.Repo(), nil)
	params := []core.Param{
		{Instance: "grace", Key: "nx", Value: fmt.Sprint(cfg.Nx)},
		{Instance: "grace", Key: "ny", Value: fmt.Sprint(cfg.Nx)},
		{Instance: "grace", Key: "maxLevels", Value: fmt.Sprint(cfg.MaxLevels)},
		{Instance: "driver", Key: "steps", Value: fmt.Sprint(cfg.StepsPerFrame)},
		{Instance: "driver", Key: "dt", Value: fmt.Sprint(cfg.Dt)},
		{Instance: "driver", Key: "regridEvery", Value: "2"},
		{Instance: "regrid", Key: "threshold", Value: "0.2"},
	}
	if err := core.AssembleReactionDiffusion(f, params...); err != nil {
		return nil, nil, err
	}
	var frames []Fig3Snapshot
	snapshot := func(t float64) Fig3Snapshot {
		comp, _ := f.Lookup("grace")
		gc := comp.(*components.GrACEComponent)
		d := gc.Field("phi")
		s := Fig3Snapshot{Time: t, TMin: math.Inf(1), TMax: math.Inf(-1)}
		var sum float64
		var count, burnt int
		for _, pd := range d.LocalPatches(0) {
			b := pd.Interior()
			for j := b.Lo[1]; j <= b.Hi[1]; j++ {
				for i := b.Lo[0]; i <= b.Hi[0]; i++ {
					v := pd.At(0, i, j)
					sum += v
					count++
					if v > 1500 {
						burnt++
					}
					if v < s.TMin {
						s.TMin = v
					}
					if v > s.TMax {
						s.TMax = v
					}
				}
			}
		}
		s.TMean = sum / float64(count)
		s.BurntFraction = float64(burnt) / float64(count)
		return s
	}

	// Each Go call advances StepsPerFrame steps; the driver continues
	// from the current field on repeated invocations.
	t := 0.0
	for frame := 0; frame < cfg.Frames; frame++ {
		if err := f.Go("driver", "go"); err != nil {
			return frames, f, err
		}
		t += float64(cfg.StepsPerFrame) * cfg.Dt
		frames = append(frames, snapshot(t))
	}
	return frames, f, nil
}

// PrintFig3 renders the frame summaries.
func PrintFig3(w io.Writer, frames []Fig3Snapshot) {
	fmt.Fprintf(w, "Fig 3: temperature-field evolution (reduced run; paper frames at 0, 0.265, 0.395 ms)\n\n")
	fmt.Fprintf(w, "%12s %10s %10s %10s %8s\n", "t (s)", "Tmin (K)", "Tmax (K)", "Tmean (K)", "burnt %")
	for _, fr := range frames {
		fmt.Fprintf(w, "%12.3e %10.1f %10.1f %10.1f %8.2f\n",
			fr.Time, fr.TMin, fr.TMax, fr.TMean, 100*fr.BurntFraction)
	}
	fmt.Fprintf(w, "\nExpected shape: hot spots ignite toward ~3000 K and the burnt fraction grows as fronts spread.\n")
}

// ---- Fig 4: AMR patch distribution ---------------------------------------

// Fig4Row is one level of the patch census.
type Fig4Row struct {
	Level, Patches, Cells int
	Coverage              float64
}

// RunFig4 reuses the Fig 3 run and reports the final hierarchy census —
// the paper's "patch distribution with the finest mesh over the flame".
func RunFig4(cfg Fig3Config) ([]Fig4Row, error) {
	_, f, err := RunFig3(cfg)
	if err != nil {
		return nil, err
	}
	comp, _ := f.Lookup("grace")
	h := comp.(*components.GrACEComponent).Hierarchy()
	var rows []Fig4Row
	for _, c := range h.CensusReport() {
		rows = append(rows, Fig4Row{Level: c.Level, Patches: c.Patches, Cells: c.Cells, Coverage: c.Coverage})
	}
	return rows, nil
}

// PrintFig4 renders the census.
func PrintFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintf(w, "Fig 4: AMR patch distribution over the flame front\n\n")
	fmt.Fprintf(w, "%6s %8s %10s %10s\n", "level", "patches", "cells", "coverage")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %8d %10d %9.1f%%\n", r.Level, r.Patches, r.Cells, 100*r.Coverage)
	}
	fmt.Fprintf(w, "\nExpected shape: fine levels cover only the flame fronts (small coverage), not the whole domain.\n")
}

// ---- Fig 6: density field after shock-interface interaction ---------------

// Fig6Result summarizes the density field at the end of the run.
type Fig6Result struct {
	Time                float64
	RhoMin, RhoMax      float64
	InterfaceCells      int
	UpstreamOfInterface float64 // mean density left of the zeta=0.5 line
	DownstreamDensity   float64 // mean density right of it
	Levels              int
	FinestCoverage      float64
	Circulation         float64
}

// Fig6Config tunes the shock run.
type Fig6Config struct {
	Nx, Ny, MaxLevels int
	TEnd              float64
	Flux              string
	Mach              float64
}

// DefaultFig6Config reaches the paper's t/tau ~ 2 interaction stage.
var DefaultFig6Config = Fig6Config{Nx: 96, Ny: 48, MaxLevels: 2, TEnd: 0.9, Flux: "GodunovFlux", Mach: 1.5}

// RunFig6 runs the shock problem and summarizes the final density field.
func RunFig6(cfg Fig6Config) (Fig6Result, *cca.Framework, error) {
	if cfg.Nx == 0 {
		cfg = DefaultFig6Config
	}
	params := []core.Param{
		{Instance: "grace", Key: "nx", Value: fmt.Sprint(cfg.Nx)},
		{Instance: "grace", Key: "ny", Value: fmt.Sprint(cfg.Ny)},
		{Instance: "grace", Key: "lx", Value: "2.0"},
		{Instance: "grace", Key: "ly", Value: "1.0"},
		{Instance: "grace", Key: "maxLevels", Value: fmt.Sprint(cfg.MaxLevels)},
		{Instance: "gas", Key: "mach", Value: fmt.Sprint(cfg.Mach)},
		{Instance: "driver", Key: "tEnd", Value: fmt.Sprint(cfg.TEnd)},
		{Instance: "driver", Key: "maxSteps", Value: "4000"},
		{Instance: "driver", Key: "regridEvery", Value: "5"},
	}
	f := cca.NewFramework(core.Repo(), nil)
	if err := core.AssembleShockInterface(f, cfg.Flux, params...); err != nil {
		return Fig6Result{}, nil, err
	}
	if err := f.Go("driver", "go"); err != nil {
		return Fig6Result{}, nil, err
	}
	drComp, _ := f.Lookup("driver")
	dr := drComp.(*components.ShockDriver)
	gComp, _ := f.Lookup("grace")
	gc := gComp.(*components.GrACEComponent)
	d := gc.Field("U")
	h := gc.Hierarchy()

	res := Fig6Result{Time: dr.FinalTime, RhoMin: math.Inf(1), RhoMax: math.Inf(-1), Levels: h.NumLevels()}
	var upSum, downSum float64
	var upN, downN int
	for _, pd := range d.LocalPatches(0) {
		b := pd.Interior()
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				rho := pd.At(euler.IRho, i, j)
				z := pd.At(euler.IZeta, i, j) / rho
				if rho < res.RhoMin {
					res.RhoMin = rho
				}
				if rho > res.RhoMax {
					res.RhoMax = rho
				}
				switch {
				case z > 0.001 && z < 0.999:
					res.InterfaceCells++
				case z <= 0.001:
					upSum += rho
					upN++
				default:
					downSum += rho
					downN++
				}
			}
		}
	}
	if upN > 0 {
		res.UpstreamOfInterface = upSum / float64(upN)
	}
	if downN > 0 {
		res.DownstreamDensity = downSum / float64(downN)
	}
	if h.NumLevels() > 1 {
		c := h.CensusReport()
		res.FinestCoverage = c[len(c)-1].Coverage
	}
	if n := len(dr.Circulations); n > 0 {
		res.Circulation = dr.Circulations[n-1]
	}
	return res, f, nil
}

// PrintFig6 renders the density-field summary.
func PrintFig6(w io.Writer, r Fig6Result) {
	fmt.Fprintf(w, "Fig 6: density field after the shock-interface interaction\n\n")
	fmt.Fprintf(w, "final time (shock-crossing units): %.3f\n", r.Time)
	fmt.Fprintf(w, "density range: %.3f .. %.3f (pre-shock air = 1, Freon = 3)\n", r.RhoMin, r.RhoMax)
	fmt.Fprintf(w, "mean density air side %.3f, Freon side %.3f\n", r.UpstreamOfInterface, r.DownstreamDensity)
	fmt.Fprintf(w, "interface cells (0.001 < zeta < 0.999): %d\n", r.InterfaceCells)
	fmt.Fprintf(w, "hierarchy: %d levels, finest covers %.1f%% of its domain\n", r.Levels, 100*r.FinestCoverage)
	fmt.Fprintf(w, "interfacial circulation: %.4f\n", r.Circulation)
	fmt.Fprintf(w, "\nExpected shape: compressed (shocked) air above rho=1, Freon above 3, steep-gradient\n")
	fmt.Fprintf(w, "regions (shocks, interface) captured by the finest level only; circulation negative.\n")
}

// ---- Fig 7: circulation convergence with refinement ------------------------

// Fig7Series is one refinement depth's circulation history.
type Fig7Series struct {
	Levels       int
	Times        []float64
	Circulations []float64
	// Knee is the extreme (most negative) deposition.
	Knee float64
}

// Fig7Config tunes the convergence study.
type Fig7Config struct {
	Nx, Ny    int
	TEnd      float64
	MaxLevels []int
}

// DefaultFig7Config mirrors the paper's 1, 2, 3-level comparison.
var DefaultFig7Config = Fig7Config{Nx: 64, Ny: 32, TEnd: 1.1, MaxLevels: []int{1, 2, 3}}

// RunFig7 repeats the shock run with 1, 2 and 3 allowed levels and
// records the circulation histories.
func RunFig7(cfg Fig7Config) ([]Fig7Series, error) {
	if cfg.Nx == 0 {
		cfg = DefaultFig7Config
	}
	var out []Fig7Series
	for _, ml := range cfg.MaxLevels {
		dr, _, err := core.RunShockInterface(nil, "GodunovFlux",
			core.Param{Instance: "grace", Key: "nx", Value: fmt.Sprint(cfg.Nx)},
			core.Param{Instance: "grace", Key: "ny", Value: fmt.Sprint(cfg.Ny)},
			core.Param{Instance: "grace", Key: "lx", Value: "2.0"},
			core.Param{Instance: "grace", Key: "ly", Value: "1.0"},
			core.Param{Instance: "grace", Key: "maxLevels", Value: fmt.Sprint(ml)},
			core.Param{Instance: "driver", Key: "tEnd", Value: fmt.Sprint(cfg.TEnd)},
			core.Param{Instance: "driver", Key: "maxSteps", Value: "6000"},
			core.Param{Instance: "driver", Key: "regridEvery", Value: "5"},
		)
		if err != nil {
			return out, err
		}
		s := Fig7Series{Levels: ml, Times: dr.Times, Circulations: dr.Circulations}
		for _, c := range dr.Circulations {
			if c < s.Knee {
				s.Knee = c
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// PrintFig7 renders the convergence comparison.
func PrintFig7(w io.Writer, series []Fig7Series, samples int) {
	fmt.Fprintf(w, "Fig 7: interfacial circulation vs time for 1, 2, 3 refinement levels\n\n")
	fmt.Fprintf(w, "%10s", "t")
	for _, s := range series {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("%d-level", s.Levels))
	}
	fmt.Fprintln(w)
	if len(series) == 0 || len(series[0].Times) == 0 {
		return
	}
	n := len(series[0].Times)
	if samples <= 0 {
		samples = 12
	}
	tEnd := series[0].Times[n-1]
	for k := 0; k <= samples; k++ {
		t := tEnd * float64(k) / float64(samples)
		fmt.Fprintf(w, "%10.3f", t)
		for _, s := range series {
			fmt.Fprintf(w, " %14.4f", sampleAt(s.Times, s.Circulations, t))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nKnee (max deposition):")
	for _, s := range series {
		fmt.Fprintf(w, "  %d-level: %.4f", s.Levels, s.Knee)
	}
	fmt.Fprintln(w)
	if len(series) >= 3 {
		d12 := math.Abs(series[1].Knee - series[0].Knee)
		d23 := math.Abs(series[2].Knee - series[1].Knee)
		fmt.Fprintf(w, "knee change 1->2 levels: %.4f; 2->3 levels: %.4f\n", d12, d23)
		fmt.Fprintf(w, "\nExpected shape (paper): no appreciable difference between the 2- and 3-level runs\n")
		fmt.Fprintf(w, "(convergence); paper's analytic knee estimate was -0.592 for its parameters.\n")
	}
}

// sampleAt linearly interpolates a (t, y) series.
func sampleAt(ts, ys []float64, t float64) float64 {
	if len(ts) == 0 {
		return 0
	}
	if t <= ts[0] {
		return ys[0]
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] >= t {
			w := (t - ts[i-1]) / (ts[i] - ts[i-1])
			return ys[i-1] + w*(ys[i]-ys[i-1])
		}
	}
	return ys[len(ys)-1]
}
