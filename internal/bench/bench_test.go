package bench

import (
	"math"
	"strings"
	"testing"
)

// calibOnce caches the kernel calibration across tests.
var calib CellCosts

func costs(t *testing.T) CellCosts {
	t.Helper()
	if calib == (CellCosts{}) {
		c, err := Calibrate()
		if err != nil {
			t.Fatal(err)
		}
		calib = c
	}
	return calib
}

func TestCalibrateProducesSaneCosts(t *testing.T) {
	c := costs(t)
	if c.ColdChem <= 0 || c.HotChem <= 0 || c.DiffStage <= 0 {
		t.Fatalf("non-positive costs: %+v", c)
	}
	if c.HotChem <= c.ColdChem {
		t.Errorf("hot chemistry (%v) should cost more than cold (%v)", c.HotChem, c.ColdChem)
	}
	if c.DMax < 1e-5 || c.DMax > 1e-1 {
		t.Errorf("Dmax = %v m^2/s out of physical range", c.DMax)
	}
}

// Table 5 / Fig 8 shape: weak scaling stays flat, and run time orders
// by per-processor problem size.
func TestWeakScalingShape(t *testing.T) {
	c := costs(t)
	ps := []int{1, 2, 4, 8}
	rows := RunTable5(c, []int{20, 40}, ps)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	small, large := rows[0], rows[1]
	// Larger per-proc mesh takes longer (paper: times scale as the
	// single-processor problem size).
	if large.Mean < 3*small.Mean {
		t.Errorf("175-vs-50 analogue: mean %v vs %v (want ~4x)", large.Mean, small.Mean)
	}
	// Flat in P: sigma small relative to mean (paper Table 5 shape).
	for _, r := range rows {
		if r.Sigma > 0.25*r.Mean {
			t.Errorf("per-proc %d: sigma %v too large vs mean %v", r.PerProcN, r.Sigma, r.Mean)
		}
		// No blow-up: max/min within 1.6x.
		mn, mx := math.Inf(1), 0.0
		for _, x := range r.Times {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		if mx/mn > 1.6 {
			t.Errorf("per-proc %d: weak scaling not flat (%v..%v)", r.PerProcN, mn, mx)
		}
	}
}

// Fig 9 shape: the large problem scales better than the small one, and
// efficiency degrades as the per-rank share shrinks.
func TestStrongScalingShape(t *testing.T) {
	c := costs(t)
	ps := []int{1, 4, 16}
	small := RunFig9(c, 64, ps)
	large := RunFig9(c, 160, ps)
	effAt := func(pts []Fig9Point, p int) float64 {
		for _, pt := range pts {
			if pt.P == p {
				return pt.Efficiency
			}
		}
		t.Fatalf("missing P=%d", p)
		return 0
	}
	if e := effAt(small, 1); math.Abs(e-1) > 1e-9 {
		t.Errorf("P=1 efficiency = %v", e)
	}
	eSmall, eLarge := effAt(small, 16), effAt(large, 16)
	if eSmall >= eLarge {
		t.Errorf("small problem (eff %v) should scale worse than large (eff %v)", eSmall, eLarge)
	}
	if eSmall > 0.98 {
		t.Errorf("small-problem efficiency %v shows no degradation; crossover missing", eSmall)
	}
	if eSmall < 0.3 {
		t.Errorf("small-problem efficiency %v collapsed; model too pessimistic", eSmall)
	}
}

func TestScalingDeterminism(t *testing.T) {
	c := CellCosts{ColdChem: 1e-5, HotChem: 1e-4, DiffStage: 1e-6, DMax: 1e-3, HotT: 800}
	a := RunScaling(ScalingConfig{P: 4, PerProcN: 24, Costs: c})
	b := RunScaling(ScalingConfig{P: 4, PerProcN: 24, Costs: c})
	if a.Time != b.Time {
		t.Errorf("virtual time not deterministic: %v vs %v", a.Time, b.Time)
	}
	if a.Stages != b.Stages || a.CellsPerRank != b.CellsPerRank {
		t.Errorf("metadata mismatch: %+v vs %+v", a, b)
	}
}

func TestFactorPair(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {2, 1}, 4: {2, 2}, 6: {3, 2}, 12: {4, 3}, 48: {8, 6}}
	for p, want := range cases {
		a, b := factorPair(p)
		if a*b != p || (a != want[0] && a != want[1]) {
			t.Errorf("factorPair(%d) = %d,%d", p, a, b)
		}
	}
}

func TestTable4RowsBalanced(t *testing.T) {
	cfg := DefaultTable4Config
	cfg.BaseTEnd = 5e-6
	cfg.Cells = []int{300}
	cfg.DtFactors = []int{1, 4}
	rows, err := RunTable4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's result: component overhead within noise. Allow a
		// generous 15% band for wall-clock jitter on a shared host.
		if math.Abs(r.PctDiff) > 15 {
			t.Errorf("Δt=%d Ncells=%d: %%diff = %v, overhead should be small", r.DtFactor, r.NCells, r.PctDiff)
		}
		if r.NFE <= 0 {
			t.Errorf("NFE = %d", r.NFE)
		}
	}
	// Longer horizon costs more RHS evaluations per cell (paper's
	// 150 vs 424 pattern).
	if rows[1].NFE <= rows[0].NFE {
		t.Errorf("NFE did not grow with horizon: %d vs %d", rows[0].NFE, rows[1].NFE)
	}
}

func TestStatsHelpers(t *testing.T) {
	mean, median, sigma := stats([]float64{1, 2, 3, 4})
	if mean != 2.5 || median != 2.5 {
		t.Errorf("mean %v median %v", mean, median)
	}
	if math.Abs(sigma-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("sigma = %v", sigma)
	}
	_, medOdd, _ := stats([]float64{5, 1, 3})
	if medOdd != 3 {
		t.Errorf("odd median = %v", medOdd)
	}
}

func TestSampleAt(t *testing.T) {
	ts := []float64{0, 1, 2}
	ys := []float64{0, 10, 20}
	if v := sampleAt(ts, ys, 0.5); v != 5 {
		t.Errorf("interp = %v", v)
	}
	if v := sampleAt(ts, ys, -1); v != 0 {
		t.Errorf("clamp-lo = %v", v)
	}
	if v := sampleAt(ts, ys, 9); v != 20 {
		t.Errorf("clamp-hi = %v", v)
	}
}

func TestFig3FramesEvolve(t *testing.T) {
	frames, _, err := RunFig3(Fig3Config{Nx: 20, MaxLevels: 1, StepsPerFrame: 2, Frames: 2, Dt: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("frames = %d", len(frames))
	}
	for _, fr := range frames {
		if fr.TMax < 1500 || fr.TMin < 250 {
			t.Errorf("frame %+v out of range", fr)
		}
	}
	// Chemistry heats the kernels between frames.
	if frames[1].TMax < frames[0].TMax-1 {
		t.Errorf("Tmax dropped: %v -> %v", frames[0].TMax, frames[1].TMax)
	}
}

func TestFig4CensusShape(t *testing.T) {
	rows, err := RunFig4(Fig3Config{Nx: 32, MaxLevels: 2, StepsPerFrame: 1, Frames: 1, Dt: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("no refinement: %+v", rows)
	}
	if rows[0].Coverage != 1 {
		t.Errorf("level-0 coverage = %v", rows[0].Coverage)
	}
	if rows[1].Coverage >= 1 {
		t.Errorf("level-1 coverage = %v, fine level must be selective", rows[1].Coverage)
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	var b strings.Builder
	PrintTable4(&b, []Table4Row{{DtFactor: 1, NCells: 10, NFE: 5, Component: 0.1, CCode: 0.1}})
	PrintTable5(&b, []Table5Stats{{PerProcN: 50, Times: []float64{1}, Mean: 1, Median: 1}}, []int{1})
	PrintFig8(&b, []Table5Stats{{PerProcN: 50, Times: []float64{1}}}, []int{1})
	PrintFig9(&b, map[int][]Fig9Point{200: {{P: 1, Time: 1, Ideal: 1, Efficiency: 1}}})
	PrintFig3(&b, []Fig3Snapshot{{Time: 1e-7, TMax: 1800, TMin: 300}})
	PrintFig4(&b, []Fig4Row{{Level: 0, Patches: 1, Cells: 100, Coverage: 1}})
	PrintFig6(&b, Fig6Result{Time: 1})
	PrintFig7(&b, []Fig7Series{{Levels: 1, Times: []float64{0, 1}, Circulations: []float64{0, -0.5}, Knee: -0.5}}, 4)
	out := b.String()
	for _, want := range []string{"Table 4", "Table 5", "Fig 8", "Fig 9", "Fig 3", "Fig 4", "Fig 6", "Fig 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q", want)
		}
	}
}
