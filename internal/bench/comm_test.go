package bench

import (
	"testing"

	"ccahydro/internal/mpi"
)

// TestHaloAsyncBeatsBlocking runs the halo microbenchmark at a small
// size and checks the headline claims: overlapped virtual time never
// exceeds blocking, flight time is actually hidden, and message counts
// obey msgs <= nbrs and msgs <= regions (coalescing merged something).
func TestHaloAsyncBeatsBlocking(t *testing.T) {
	for _, p := range []int{2, 4} {
		pt := RunHalo(p, 64, 10, ReferenceCosts.DiffStage, mpi.CPlantModel)
		if pt.AsyncTime > pt.BlockingTime {
			t.Errorf("P=%d: async %.6fs slower than blocking %.6fs", p, pt.AsyncTime, pt.BlockingTime)
		}
		if pt.AsyncTime >= pt.BlockingTime && pt.StallSeconds == 0 {
			// Equal times are only acceptable when nothing stalled at all.
			t.Errorf("P=%d: no improvement (%.6fs) yet stall recorded", p, pt.AsyncTime)
		}
		if pt.HiddenSeconds <= 0 {
			t.Errorf("P=%d: overlap hid no flight time", p)
		}
		if pt.MsgsPerExchange > pt.NeighborRankSum {
			t.Errorf("P=%d: %d msgs/exchange > %d neighbor-rank sum", p, pt.MsgsPerExchange, pt.NeighborRankSum)
		}
		if pt.MsgsPerExchange >= pt.RegionsPerExchange {
			t.Errorf("P=%d: coalescing merged nothing (%d msgs, %d regions)",
				p, pt.MsgsPerExchange, pt.RegionsPerExchange)
		}
		if pt.WordsPerExchange <= 0 {
			t.Errorf("P=%d: no exchange volume recorded", p)
		}
	}
}

// TestCommFig9AsyncImproves reruns the small Fig 9 pipeline in both
// modes and checks the overlapped exchange is never slower, and
// strictly faster wherever receive stalls existed to hide.
func TestCommFig9AsyncImproves(t *testing.T) {
	for _, pt := range RunCommFig9(ReferenceCosts, 100, []int{2, 4}) {
		if pt.AsyncTime > pt.BlockingTime {
			t.Errorf("P=%d: async %.4fs slower than blocking %.4fs", pt.P, pt.AsyncTime, pt.BlockingTime)
		}
		if pt.Improvement <= 0 {
			t.Errorf("P=%d: improvement %.4f%%, want > 0", pt.P, 100*pt.Improvement)
		}
		if pt.MsgsPerExchange > pt.NeighborRankSum {
			t.Errorf("P=%d: %d msgs/exchange > %d neighbor-rank sum", pt.P, pt.MsgsPerExchange, pt.NeighborRankSum)
		}
		if pt.HiddenSeconds <= 0 {
			t.Errorf("P=%d: overlap hid no flight time", pt.P)
		}
	}
}
