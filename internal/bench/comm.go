package bench

import (
	"fmt"
	"io"

	"ccahydro/internal/amr"
	"ccahydro/internal/field"
	"ccahydro/internal/mpi"
)

// Communication benchmarks for the asynchronous coalesced halo
// exchange: a pure ghost-exchange microbenchmark and the Fig 9
// strong-scaling study rerun in both exchange modes. Everything here
// runs on the virtual-clock cluster with pinned per-cell rates, so the
// emitted numbers (BENCH_comm.json) are deterministic across hosts.

// ReferenceCosts pins the per-cell compute rates for the deterministic
// communication report. Magnitudes match a typical Calibrate() run of
// the real kernels; pinning them decouples BENCH_comm.json from host
// speed.
var ReferenceCosts = CellCosts{
	ColdChem:  2.0e-5,
	HotChem:   2.5e-4,
	DiffStage: 8.0e-8,
	DMax:      3.2e-4,
	HotT:      800,
}

// HaloPoint is one halo-microbenchmark measurement: the same exchange
// schedule driven blocking (Finish immediately after Start, compute
// after) and overlapped (interior compute charged between Start and
// Finish).
type HaloPoint struct {
	P         int `json:"p"`
	N         int `json:"n"`
	Exchanges int `json:"exchanges"`
	// BlockingTime / AsyncTime are max-over-ranks virtual run times.
	BlockingTime float64 `json:"blocking_time_s"`
	AsyncTime    float64 `json:"async_time_s"`
	// MsgsPerExchange sums the coalesced per-rank send counts of one
	// exchange; RegionsPerExchange is what the count was before
	// coalescing (one message per overlap region).
	MsgsPerExchange    int `json:"msgs_per_exchange"`
	RegionsPerExchange int `json:"regions_per_exchange"`
	// NeighborRankSum sums per-rank neighbor counts — the coalescing
	// invariant is MsgsPerExchange <= NeighborRankSum.
	NeighborRankSum int `json:"neighbor_rank_sum"`
	// WordsPerExchange is the global outbound volume of one exchange.
	WordsPerExchange int `json:"words_per_exchange"`
	// StallSeconds / HiddenSeconds are the worst per-rank receive-stall
	// and covered-flight totals of the overlapped run.
	StallSeconds  float64 `json:"stall_seconds"`
	HiddenSeconds float64 `json:"hidden_seconds"`
}

// runHaloMode executes the microbenchmark in one mode and returns the
// max virtual time plus per-rank stats.
func runHaloMode(p, n, ncomp, ghost, exchanges int, perCell float64,
	model mpi.NetworkModel, blocking bool) (float64, []mpi.CommStats, field.ExchangeInfo) {
	domain := amr.NewBox(0, 0, n-1, n-1)
	// Several patches per rank, dealt round-robin: each rank then shares
	// multiple overlap regions with each neighbor, so coalescing has
	// something to merge (msgs < regions).
	blockCells := n * n / (4 * p)
	if blockCells < 64 {
		blockCells = 64
	}
	blocks := amr.SplitLargeBoxes([]amr.Box{domain}, blockCells)
	owners := make([]int, len(blocks))
	for i := range owners {
		owners[i] = i % p
	}
	rstats := make([]mpi.CommStats, p)
	infos := make([]field.ExchangeInfo, p)
	world := mpi.Run(p, model, func(comm *mpi.Comm) {
		h := amr.NewHierarchyDecomposed(domain, 2, 1, p, blocks, owners)
		d := field.New("u", h, ncomp, ghost, comm)
		var cells, innerCells int
		for _, pd := range d.LocalPatches(0) {
			cells += pd.Interior().NumCells()
			innerCells += pd.Interior().Grow(-d.Ghost).NumCells()
		}
		stripCells := cells - innerCells
		for e := 0; e < exchanges; e++ {
			if blocking {
				d.ExchangeGhosts(0)
				comm.Charge(float64(cells) * perCell)
			} else {
				ex := d.ExchangeGhostsStart(0)
				comm.Charge(float64(innerCells) * perCell)
				ex.Finish()
				comm.Charge(float64(stripCells) * perCell)
			}
		}
		comm.Barrier()
		infos[comm.Rank()] = d.ExchangeInfo(0)
		rstats[comm.Rank()] = comm.Stats()
	})
	var info field.ExchangeInfo
	for _, in := range infos {
		info.Transfers += in.Transfers
		info.SendMsgs += in.SendMsgs
		info.RecvMsgs += in.RecvMsgs
		info.SendWords += in.SendWords
		info.NeighborRanks += in.NeighborRanks
		info.RemoteTransfers += in.RemoteTransfers
	}
	return world.MaxVirtualTime(), rstats, info
}

// RunHalo measures one (P, N) halo-microbenchmark point in both modes.
// perCell is the synthetic compute rate charged per cell per exchange.
func RunHalo(p, n, exchanges int, perCell float64, model mpi.NetworkModel) HaloPoint {
	const ncomp, ghost = 10, 2
	pt := HaloPoint{P: p, N: n, Exchanges: exchanges}
	bt, _, _ := runHaloMode(p, n, ncomp, ghost, exchanges, perCell, model, true)
	at, rstats, info := runHaloMode(p, n, ncomp, ghost, exchanges, perCell, model, false)
	pt.BlockingTime, pt.AsyncTime = bt, at
	pt.MsgsPerExchange = info.SendMsgs
	pt.RegionsPerExchange = info.RemoteTransfers
	pt.NeighborRankSum = info.NeighborRanks
	pt.WordsPerExchange = info.SendWords
	for _, s := range rstats {
		if s.CommSeconds > pt.StallSeconds {
			pt.StallSeconds = s.CommSeconds
		}
		if s.HiddenSeconds > pt.HiddenSeconds {
			pt.HiddenSeconds = s.HiddenSeconds
		}
	}
	return pt
}

// CommFig9Point compares the strong-scaling virtual time of one machine
// size in both exchange modes (the full Fig 9 pipeline: chemistry,
// reductions, RKC stages).
type CommFig9Point struct {
	P            int     `json:"p"`
	BlockingTime float64 `json:"blocking_time_s"`
	AsyncTime    float64 `json:"async_time_s"`
	// Improvement is (blocking - async) / blocking.
	Improvement        float64 `json:"improvement"`
	MsgsPerExchange    int     `json:"msgs_per_exchange"`
	RegionsPerExchange int     `json:"regions_per_exchange"`
	NeighborRankSum    int     `json:"neighbor_rank_sum"`
	StallSeconds       float64 `json:"stall_seconds"`
	HiddenSeconds      float64 `json:"hidden_seconds"`
}

// RunCommFig9 reruns the constant-global-problem study with blocking
// and overlapped exchanges.
func RunCommFig9(costs CellCosts, globalN int, ps []int) []CommFig9Point {
	var out []CommFig9Point
	for _, p := range ps {
		base := ScalingConfig{P: p, GlobalNx: globalN, GlobalNy: globalN, Costs: costs}
		blk := base
		blk.Blocking = true
		rb := RunScaling(blk)
		ra := RunScaling(base)
		pt := CommFig9Point{
			P:                  p,
			BlockingTime:       rb.Time,
			AsyncTime:          ra.Time,
			MsgsPerExchange:    ra.MsgsPerExchange,
			RegionsPerExchange: ra.RegionsPerExchange,
			NeighborRankSum:    ra.NeighborRankSum,
			StallSeconds:       ra.CommSeconds,
			HiddenSeconds:      ra.HiddenSeconds,
		}
		if rb.Time > 0 {
			pt.Improvement = (rb.Time - ra.Time) / rb.Time
		}
		out = append(out, pt)
	}
	return out
}

// CommReport is the BENCH_comm.json payload.
type CommReport struct {
	// Model names the network cost model (alpha/beta) used throughout.
	Model string `json:"model"`
	// Costs are the pinned per-cell rates.
	Costs CellCosts   `json:"costs"`
	Halo  []HaloPoint `json:"halo"`
	// Fig9GlobalN is the strong-scaling mesh edge.
	Fig9GlobalN int             `json:"fig9_global_n"`
	Fig9        []CommFig9Point `json:"fig9"`
}

// BuildCommReport runs the full communication study: halo microbench
// over haloPs at mesh haloN, and the Fig 9 comparison over ps at
// globalN. Deterministic (virtual clocks, pinned costs).
func BuildCommReport(costs CellCosts, haloN int, haloPs []int, globalN int, ps []int) CommReport {
	rep := CommReport{
		Model:       "CPlant (60us, 132MB/s)",
		Costs:       costs,
		Fig9GlobalN: globalN,
	}
	for _, p := range haloPs {
		rep.Halo = append(rep.Halo, RunHalo(p, haloN, 20, costs.DiffStage, mpi.CPlantModel))
	}
	rep.Fig9 = RunCommFig9(costs, globalN, ps)
	return rep
}

// PrintCommReport renders the study as text.
func PrintCommReport(w io.Writer, rep CommReport) {
	fmt.Fprintf(w, "Halo exchange microbenchmark (%s; 10 comps, ghost 2; 20 exchanges)\n\n", rep.Model)
	fmt.Fprintf(w, "%4s %6s %12s %12s %8s %8s %8s %12s\n",
		"P", "N", "blocking(s)", "async(s)", "msgs", "regions", "nbrs", "hidden(s)")
	for _, h := range rep.Halo {
		fmt.Fprintf(w, "%4d %6d %12.6f %12.6f %8d %8d %8d %12.6f\n",
			h.P, h.N, h.BlockingTime, h.AsyncTime,
			h.MsgsPerExchange, h.RegionsPerExchange, h.NeighborRankSum, h.HiddenSeconds)
	}
	fmt.Fprintf(w, "\nFig 9 strong scaling, %dx%d mesh, blocking vs overlapped exchange\n\n", rep.Fig9GlobalN, rep.Fig9GlobalN)
	fmt.Fprintf(w, "%4s %12s %12s %10s %8s %8s\n", "P", "blocking(s)", "async(s)", "improve", "msgs", "regions")
	for _, pt := range rep.Fig9 {
		fmt.Fprintf(w, "%4d %12.4f %12.4f %9.2f%% %8d %8d\n",
			pt.P, pt.BlockingTime, pt.AsyncTime, 100*pt.Improvement,
			pt.MsgsPerExchange, pt.RegionsPerExchange)
	}
	fmt.Fprintf(w, "\nExpected shape: async <= blocking everywhere (flight time hides behind interior compute),\n")
	fmt.Fprintf(w, "and msgs <= nbrs <= regions (coalescing packs every region for a peer into one message).\n")
}
