// Package bench implements the experiment harness that regenerates
// every table and figure of the paper's evaluation: the Table 4
// single-processor overhead study, the Table 5 / Fig 8 weak-scaling and
// Fig 9 strong-scaling runs on the simulated cluster, and the physics
// figures (Figs 3, 4, 6, 7).
package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"ccahydro/internal/cca"
	"ccahydro/internal/chem"
	"ccahydro/internal/components"
	"ccahydro/internal/cvode"
)

// Table4Row is one line of the paper's Table 4.
type Table4Row struct {
	DtFactor  int     // the paper's "Δt" column (1 or 10)
	NCells    int     // identical cells integrated
	NFE       int     // RHS evaluations per cell (measured)
	Component float64 // component-assembled code seconds
	CCode     float64 // direct-call code seconds
	PctDiff   float64 // 100*(Component-CCode)/CCode
}

// table4InitialY builds the Table 4 mixture: stoichiometric H2-air
// seeded with a trace of H atoms (the 5-reaction mechanism has no
// initiation step, so an unseeded mixture is frozen and the integrator
// does no work; the paper's cells clearly reacted, with 150-424 RHS
// evaluations each).
func table4InitialY(mech *chem.Mechanism) []float64 {
	Y := mech.StoichiometricH2Air()
	Y[mech.SpeciesIndex("H")] = 1e-6
	chem.NormalizeY(Y)
	return Y
}

// Table4Config tunes the overhead study.
type Table4Config struct {
	// BaseTEnd is the integration horizon for DtFactor=1 (seconds of
	// simulated time; the paper's dimensionless Δt=1).
	BaseTEnd float64
	// Cells lists the cell counts (paper: 1000, 5000, 10000).
	Cells []int
	// DtFactors lists the horizon multipliers (paper: 1, 10).
	DtFactors []int
	// T0, P0 are the initial state.
	T0, P0 float64
}

// DefaultTable4Config mirrors the paper's setup: the light 8-species,
// 5-reaction mechanism, cell counts 1000/5000/10000, horizons 1x/10x.
var DefaultTable4Config = Table4Config{
	BaseTEnd:  2e-5,
	Cells:     []int{1000, 5000, 10000},
	DtFactors: []int{1, 10},
	T0:        1000,
	P0:        chem.PAtm,
}

// componentCellIntegrator assembles the Table 4 component code: the
// RHS is reached through CCA ports (interface-method dispatch, the Go
// analogue of the virtual call the paper measures).
type componentCellIntegrator struct {
	f     *cca.Framework
	integ components.ImplicitIntegratorPort
	nsp   int
}

func newComponentCellIntegrator() (*componentCellIntegrator, error) {
	repo := components.NewRepository()
	f := cca.NewFramework(repo, nil)
	if err := f.SetParameter("chem", "mech", "h2air-lite"); err != nil {
		return nil, err
	}
	if err := f.SetParameter("cvode", "rtol", "1e-6"); err != nil {
		return nil, err
	}
	if err := f.SetParameter("cvode", "atol", "1e-10"); err != nil {
		return nil, err
	}
	steps := [][4]string{
		{"ThermoChemistry", "chem", "", ""},
		{"DPDt", "dpdt", "", ""},
		{"ProblemModeler", "model", "", ""},
		{"CvodeComponent", "cvode", "", ""},
	}
	for _, s := range steps {
		if err := f.Instantiate(s[0], s[1]); err != nil {
			return nil, err
		}
	}
	wires := [][4]string{
		{"dpdt", "chemistry", "chem", "chemistry"},
		{"model", "chemistry", "chem", "chemistry"},
		{"model", "dpdt", "dpdt", "dpdt"},
		{"cvode", "rhs", "model", "rhs"},
	}
	for _, w := range wires {
		if err := f.Connect(w[0], w[1], w[2], w[3]); err != nil {
			return nil, err
		}
	}
	comp, err := f.Lookup("cvode")
	if err != nil {
		return nil, err
	}
	cc := comp.(*components.CvodeComponent)
	chemComp, err := f.Lookup("chem")
	if err != nil {
		return nil, err
	}
	return &componentCellIntegrator{
		f:     f,
		integ: cc,
		nsp:   chemComp.(*components.ThermoChemistry).Mechanism().NumSpecies(),
	}, nil
}

// run integrates nCells identical cells to tEnd and returns (seconds,
// RHS evals per cell).
func (ci *componentCellIntegrator) run(nCells int, tEnd, T0, P0 float64) (float64, int, error) {
	comp, _ := ci.f.Lookup("chem")
	mech := comp.(*components.ThermoChemistry).Mechanism()
	y0 := make([]float64, ci.nsp+2)
	y0[0] = T0
	copy(y0[1:1+ci.nsp], table4InitialY(mech))
	y0[1+ci.nsp] = P0
	y := make([]float64, len(y0))

	cvodeComp, _ := ci.f.Lookup("cvode")
	before := cvodeComp.(*components.CvodeComponent).TotalStats().RHSEvals
	start := time.Now()
	for c := 0; c < nCells; c++ {
		copy(y, y0)
		if _, err := ci.integ.IntegrateTo(0, tEnd, y); err != nil {
			return 0, 0, fmt.Errorf("component cell %d: %w", c, err)
		}
	}
	elapsed := time.Since(start).Seconds()
	after := cvodeComp.(*components.CvodeComponent).TotalStats().RHSEvals
	return elapsed, (after - before) / nCells, nil
}

// directCellIntegrator is the paper's "C-code": the same algorithm with
// the integrator used as a plain library — concrete calls, no ports.
// It must stay algorithm-identical to the componentized side, so it
// uses the same engine the components resolve: the generated kernel
// with its analytic Jacobian when one is registered, the interpreted
// tables with finite differences otherwise. Only the dispatch differs.
type directCellIntegrator struct {
	mech   *chem.Mechanism
	kern   chem.Kernel
	ws     *chem.SourceWorkspace
	solver *cvode.Solver
	nfe    int
}

func newDirectCellIntegrator() *directCellIntegrator {
	di := &directCellIntegrator{
		mech: chem.H2AirLite(),
	}
	di.kern = chem.KernelFor(di.mech.Name)
	di.ws = chem.NewSourceWorkspace(di.mech)
	n := di.mech.NumSpecies()
	rhs := func(_ float64, y, ydot []float64) {
		di.nfe++
		T := y[0]
		if T < 200 {
			T = 200
		}
		Y := y[1 : 1+n]
		P := y[1+n]
		rho := di.mech.Density(P, T, Y)
		if di.kern != nil {
			ydot[0] = di.kern.ConstVolumeSource(T, rho, Y, ydot[1:1+n])
		} else {
			ydot[0] = di.mech.ConstVolumeSource(T, rho, Y, ydot[1:1+n], di.ws)
		}
		ydot[1+n] = di.mech.DPDt(rho, T, ydot[0], Y, ydot[1:1+n])
	}
	opts := cvode.Options{RelTol: 1e-6, AbsTol: 1e-10}
	if di.kern != nil {
		opts.Jac = chem.RigidVesselJac(di.kern, di.mech)
	}
	di.solver = cvode.New(n+2, rhs, opts)
	return di
}

func (di *directCellIntegrator) run(nCells int, tEnd, T0, P0 float64) (float64, int, error) {
	n := di.mech.NumSpecies()
	y0 := make([]float64, n+2)
	y0[0] = T0
	copy(y0[1:1+n], table4InitialY(di.mech))
	y0[1+n] = P0

	before := di.nfe
	start := time.Now()
	for c := 0; c < nCells; c++ {
		di.solver.Init(0, y0)
		if err := di.solver.Integrate(tEnd); err != nil {
			return 0, 0, fmt.Errorf("direct cell %d: %w", c, err)
		}
	}
	elapsed := time.Since(start).Seconds()
	return elapsed, (di.nfe - before) / nCells, nil
}

// RunTable4 executes the single-processor overhead study and returns
// the rows in the paper's order.
func RunTable4(cfg Table4Config) ([]Table4Row, error) {
	if cfg.BaseTEnd == 0 {
		cfg = DefaultTable4Config
	}
	ci, err := newComponentCellIntegrator()
	if err != nil {
		return nil, err
	}
	di := newDirectCellIntegrator()

	// Warm up both paths so one-time costs don't skew the first row.
	if _, _, err := ci.run(50, cfg.BaseTEnd, cfg.T0, cfg.P0); err != nil {
		return nil, err
	}
	if _, _, err := di.run(50, cfg.BaseTEnd, cfg.T0, cfg.P0); err != nil {
		return nil, err
	}

	var rows []Table4Row
	for _, df := range cfg.DtFactors {
		tEnd := cfg.BaseTEnd * float64(df)
		for _, nc := range cfg.Cells {
			// Best-of-2, interleaved, so host noise hits both paths alike.
			compT, directT := math.Inf(1), math.Inf(1)
			var nfe int
			for rep := 0; rep < 2; rep++ {
				ct, n1, err := ci.run(nc, tEnd, cfg.T0, cfg.P0)
				if err != nil {
					return nil, err
				}
				dt, _, err := di.run(nc, tEnd, cfg.T0, cfg.P0)
				if err != nil {
					return nil, err
				}
				compT = math.Min(compT, ct)
				directT = math.Min(directT, dt)
				nfe = n1
			}
			rows = append(rows, Table4Row{
				DtFactor:  df,
				NCells:    nc,
				NFE:       nfe,
				Component: compT,
				CCode:     directT,
				PctDiff:   100 * (compT - directT) / directT,
			})
		}
	}
	return rows, nil
}

// PrintTable4 renders rows like the paper's Table 4.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4: single-processor timings, component vs direct-call code\n")
	fmt.Fprintf(w, "(light 8-species/5-reaction mechanism; identical cells)\n\n")
	fmt.Fprintf(w, "%4s %8s %6s %12s %12s %9s\n", "Δt", "Ncells", "NFE", "Comp.(s)", "C-code(s)", "% diff.")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %8d %6d %12.4f %12.4f %9.2f\n",
			r.DtFactor, r.NCells, r.NFE, r.Component, r.CCode, r.PctDiff)
	}
	fmt.Fprintf(w, "\nPaper reference: |%% diff.| <= 1.54 with no trend (overhead within noise).\n")
}
