package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"ccahydro/internal/amr"
	"ccahydro/internal/chem"
	"ccahydro/internal/cvode"
	"ccahydro/internal/field"
	"ccahydro/internal/mpi"
	"ccahydro/internal/transport"
)

// The scaling experiments (Table 5, Figs 8 and 9) ran on the paper's
// CPlant cluster. This reproduction executes the same SPMD code path —
// the real domain decomposition, the real ghost-cell messages, the
// real reductions — on the in-process cluster, with per-cell compute
// charged to each rank's virtual clock at rates *calibrated by running
// this repository's actual physics kernels*. Wall-clock on the test
// host cannot exhibit parallel speedup (single CPU), but the virtual
// clock obeys the same cost model the paper's machines do, including
// the chemistry-driven load imbalance between ranks that own hot-spot
// cells and ranks that own cold gas.

// CellCosts holds the calibrated per-cell compute rates (seconds).
type CellCosts struct {
	// ColdChem / HotChem: one macro step of implicit chemistry for a
	// cold (300 K) and a hot (reacting) cell.
	ColdChem, HotChem float64
	// DiffStage: one RKC stage evaluation of the diffusion RHS, per cell.
	DiffStage float64
	// DMax is the largest mixture diffusivity (m^2/s), used to size
	// the RKC stage count exactly as MaxDiffCoeffEvaluator does.
	DMax float64
	// HotT separates hot from cold cells.
	HotT float64
}

// Calibrate measures CellCosts by running the real kernels.
func Calibrate() (CellCosts, error) {
	mech := chem.H2Air()
	ws := chem.NewSourceWorkspace(mech)
	n := mech.NumSpecies()
	rhs := func(_ float64, y, ydot []float64) {
		T := y[0]
		if T < 200 {
			T = 200
		}
		ydot[0] = mech.ConstPressureSource(T, chem.PAtm, y[1:1+n], ydot[1:1+n], ws)
	}
	solver := cvode.New(n+1, rhs, cvode.Options{RelTol: 1e-8, AbsTol: 1e-12})

	chemCost := func(T0 float64, reps int) (float64, error) {
		y0 := make([]float64, n+1)
		y0[0] = T0
		copy(y0[1:], mech.StoichiometricH2Air())
		start := time.Now()
		for i := 0; i < reps; i++ {
			solver.Init(0, y0)
			if err := solver.Integrate(1e-7); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds() / float64(reps), nil
	}
	cold, err := chemCost(300, 200)
	if err != nil {
		return CellCosts{}, err
	}
	hot, err := chemCost(1500, 200)
	if err != nil {
		return CellCosts{}, err
	}

	// Diffusion stage cost: one EvalPatch on a 32x32 patch through the
	// real transport model.
	tm := transport.New(mech)
	h := amr.NewHierarchy(amr.NewBox(0, 0, 31, 31), 2, 1, 1)
	d := field.New("phi", h, 1+n, 2, nil)
	pd := d.LocalPatches(0)[0]
	Y := mech.StoichiometricH2Air()
	g := pd.GrownBox()
	for j := g.Lo[1]; j <= g.Hi[1]; j++ {
		for i := g.Lo[0]; i <= g.Hi[0]; i++ {
			pd.Set(0, i, j, 300+1200*math.Exp(-float64((i-16)*(i-16)+(j-16)*(j-16))/64))
			for k, yk := range Y {
				pd.Set(1+k, i, j, yk)
			}
		}
	}
	out := field.NewPatchData(pd.Patch, 1+n, 2)
	dp := &diffKernel{tm: tm, mech: mech}
	start := time.Now()
	const reps = 5
	for r := 0; r < reps; r++ {
		dp.eval(pd, out, 1e-4, 1e-4)
	}
	diffStage := time.Since(start).Seconds() / float64(reps) / float64(pd.Interior().NumCells())

	// Largest diffusivity at flame temperature.
	X := make([]float64, n)
	D := make([]float64, n)
	tm.Evaluate(1800, chem.PAtm, Y, X, D)
	dmax := 0.0
	for _, v := range D {
		if v > dmax {
			dmax = v
		}
	}
	return CellCosts{
		ColdChem: cold, HotChem: hot,
		DiffStage: diffStage,
		DMax:      dmax,
		HotT:      800,
	}, nil
}

// diffKernel reuses the DiffusionPhysics math without the framework
// (calibration only; the experiments charge its measured cost).
type diffKernel struct {
	tm   *transport.Model
	mech *chem.Mechanism
}

func (dk *diffKernel) eval(pd, out *field.PatchData, dx, dy float64) {
	n := dk.mech.NumSpecies()
	X := make([]float64, n)
	D := make([]float64, n)
	Y := make([]float64, n)
	b := pd.Interior()
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			T := pd.At(0, i, j)
			for k := 0; k < n; k++ {
				Y[k] = pd.At(1+k, i, j)
			}
			lam, rho := dk.tm.Evaluate(T, chem.PAtm, Y, X, D)
			lap := (pd.At(0, i+1, j) - 2*T + pd.At(0, i-1, j)) / (dx * dx)
			out.Set(0, i, j, lam*lap/(rho*dk.mech.CpMass(T, Y)))
			for k := 0; k < n; k++ {
				lapY := (pd.At(1+k, i+1, j) - 2*pd.At(1+k, i, j) + pd.At(1+k, i-1, j)) / (dx * dx)
				out.Set(1+k, i, j, D[k]*lapY)
			}
		}
	}
}

// ScalingConfig describes one simulated-cluster run.
type ScalingConfig struct {
	// P is the rank count.
	P int
	// PerProcN sets weak scaling: each rank owns PerProcN x PerProcN
	// cells and the global mesh grows with P. Zero selects strong
	// scaling with the fixed GlobalNx x GlobalNy mesh.
	PerProcN int
	// GlobalNx, GlobalNy for strong scaling.
	GlobalNx, GlobalNy int
	// Steps and Dt follow the paper: 5 steps of 1e-7 s.
	Steps int
	Dt    float64
	// Model is the network cost model (default CPlant).
	Model mpi.NetworkModel
	// Costs are the calibrated rates.
	Costs CellCosts
	// NComp is the per-point variable count (paper: 9).
	NComp int
	// Dx is the physical mesh spacing (paper: 10 mm / 100 = 1e-4 m).
	Dx float64
	// Blocking disables the exchange/compute overlap: every ghost
	// exchange completes before any stage compute is charged (the
	// pre-asynchronous baseline). The default overlapped mode charges
	// the interior compute between ExchangeGhostsStart and Finish, so
	// message flight hides behind it exactly as in the drivers.
	Blocking bool
}

func (c *ScalingConfig) defaults() {
	if c.Steps == 0 {
		c.Steps = 5
	}
	if c.Dt == 0 {
		c.Dt = 1e-7
	}
	if c.Model == (mpi.NetworkModel{}) {
		c.Model = mpi.CPlantModel
	}
	if c.NComp == 0 {
		c.NComp = 10
	}
	if c.Dx == 0 {
		c.Dx = 1e-4
	}
}

// factorPair splits P into the most square px*py = P.
func factorPair(p int) (int, int) {
	best := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			best = d
		}
	}
	return p / best, best
}

// ScalingResult reports one run.
type ScalingResult struct {
	P            int
	GlobalNx     int
	GlobalNy     int
	CellsPerRank int
	// Time is the simulated run time (max rank virtual time).
	Time float64
	// RankTimes per rank.
	RankTimes []float64
	// Stages is the RKC stage count used per step.
	Stages int
	// Sends / WordsSent total the point-to-point traffic over all ranks
	// (collective-internal messages included).
	Sends, WordsSent int
	// CommSeconds is the largest per-rank virtual time lost to message
	// stalls; HiddenSeconds the largest per-rank flight time hidden
	// behind compute via the nonblocking engine.
	CommSeconds, HiddenSeconds float64
	// MsgsPerExchange is this run's coalesced send count for one level-0
	// ghost exchange, summed over ranks; NeighborRankSum the matching
	// sum of per-rank neighbor counts (coalescing invariant:
	// MsgsPerExchange <= NeighborRankSum). RegionsPerExchange is the
	// uncoalesced region count — the old per-region message cost.
	MsgsPerExchange, NeighborRankSum, RegionsPerExchange int
}

// RunScaling executes one weak- or strong-scaling point.
func RunScaling(cfg ScalingConfig) ScalingResult {
	cfg.defaults()
	var gnx, gny int
	if cfg.PerProcN > 0 {
		px, py := factorPair(cfg.P)
		gnx, gny = cfg.PerProcN*px, cfg.PerProcN*py
	} else {
		gnx, gny = cfg.GlobalNx, cfg.GlobalNy
		if gny == 0 {
			gny = gnx
		}
	}
	// RKC stage count from the same bound MaxDiffCoeffEvaluator uses.
	rho := 4 * cfg.Costs.DMax * (2 / (cfg.Dx * cfg.Dx))
	stages := 1 + int(math.Sqrt(cfg.Dt*rho/0.653))
	if stages < 2 {
		stages = 2
	}

	res := ScalingResult{P: cfg.P, GlobalNx: gnx, GlobalNy: gny, Stages: stages}
	res.RankTimes = make([]float64, cfg.P)

	domain := amr.NewBox(0, 0, gnx-1, gny-1)
	lx := cfg.Dx * float64(gnx)
	ly := cfg.Dx * float64(gny)
	sigma2 := (0.06 * lx) * (0.06 * lx)
	icTemp := func(i, j int) float64 {
		x := (float64(i) + 0.5) * cfg.Dx
		y := (float64(j) + 0.5) * cfg.Dx
		T := 300.0
		for s := 0; s < 3; s++ {
			cx, cy := hotSpotFrac[s][0]*lx, hotSpotFrac[s][1]*ly
			r2 := (x-cx)*(x-cx) + (y-cy)*(y-cy)
			T += 1500 * math.Exp(-r2/(2*sigma2))
		}
		return T
	}
	// The paper's load balancing: decompose into several patches per
	// rank and distribute them greedily, weighting each patch by its
	// chemistry workload (hot cells are more expensive). Sampling every
	// 4th cell keeps the workload estimate cheap.
	blockCells := gnx * gny / (4 * cfg.P)
	if blockCells < 64 {
		blockCells = 64
	}
	blocks := amr.SplitLargeBoxes([]amr.Box{domain}, blockCells)
	work := func(b amr.Box, _ int) float64 {
		var w float64
		for j := b.Lo[1]; j <= b.Hi[1]; j += 4 {
			for i := b.Lo[0]; i <= b.Hi[0]; i += 4 {
				if icTemp(i, j) > cfg.Costs.HotT {
					w += 16 * cfg.Costs.HotChem
				} else {
					w += 16 * cfg.Costs.ColdChem
				}
			}
		}
		return w
	}
	owners := amr.GreedyBalancer{}.Assign(blocks, 0, cfg.P, work)

	rstats := make([]mpi.CommStats, cfg.P)
	msgs := make([]int, cfg.P)
	nbrs := make([]int, cfg.P)
	regions := make([]int, cfg.P)
	world := mpi.Run(cfg.P, cfg.Model, func(comm *mpi.Comm) {
		h := amr.NewHierarchyDecomposed(domain, 2, 1, cfg.P, blocks, owners)
		d := field.New("phi", h, cfg.NComp, 2, comm)

		// Impose the three-hot-spot temperature field (component 0);
		// other components ride along to give messages realistic size.
		var hot, cold int
		for _, pd := range d.LocalPatches(0) {
			b := pd.Interior()
			for j := b.Lo[1]; j <= b.Hi[1]; j++ {
				for i := b.Lo[0]; i <= b.Hi[0]; i++ {
					T := icTemp(i, j)
					pd.Set(0, i, j, T)
					if T > cfg.Costs.HotT {
						hot++
					} else {
						cold++
					}
				}
			}
		}
		cells := hot + cold
		// Interior/strip split mirroring evalLevelOverlapped: inner
		// cells never read ghosts and compute while messages fly.
		var innerCells int
		for _, pd := range d.LocalPatches(0) {
			innerCells += pd.Interior().Grow(-d.Ghost).NumCells()
		}
		stripCells := cells - innerCells

		for step := 0; step < cfg.Steps; step++ {
			// Implicit chemistry, cell by cell (no communication; the
			// hot/cold split is the paper's load-imbalance source).
			comm.Charge(float64(cold)*cfg.Costs.ColdChem + float64(hot)*cfg.Costs.HotChem)

			// Spectral-radius bound: local scan + allreduce.
			comm.Charge(float64(cells) * cfg.Costs.DiffStage * 0.05)
			comm.AllreduceScalar(mpi.OpMax, rho)

			// RKC stages: each evaluation exchanges ghosts for real and
			// charges the calibrated per-cell stage cost; the combined
			// error norm is one more reduction. Overlapped mode charges
			// the interior compute while the coalesced messages are in
			// flight — the strip compute waits for Finish.
			for e := 0; e < stages+1; e++ {
				if cfg.Blocking {
					d.ExchangeGhosts(0)
					comm.Charge(float64(cells) * cfg.Costs.DiffStage)
				} else {
					ex := d.ExchangeGhostsStart(0)
					comm.Charge(float64(innerCells) * cfg.Costs.DiffStage)
					ex.Finish()
					comm.Charge(float64(stripCells) * cfg.Costs.DiffStage)
				}
			}
			comm.Allreduce(mpi.OpSum, []float64{1, float64(cells)})
		}
		info := d.ExchangeInfo(0)
		msgs[comm.Rank()] = info.SendMsgs
		nbrs[comm.Rank()] = info.NeighborRanks
		regions[comm.Rank()] = info.RemoteTransfers
		rstats[comm.Rank()] = comm.Stats()
	})

	for r := 0; r < cfg.P; r++ {
		res.RankTimes[r] = world.RankTime(r)
		res.Sends += rstats[r].Sends
		res.WordsSent += rstats[r].WordsSent
		if rstats[r].CommSeconds > res.CommSeconds {
			res.CommSeconds = rstats[r].CommSeconds
		}
		if rstats[r].HiddenSeconds > res.HiddenSeconds {
			res.HiddenSeconds = rstats[r].HiddenSeconds
		}
		res.MsgsPerExchange += msgs[r]
		res.NeighborRankSum += nbrs[r]
		res.RegionsPerExchange += regions[r]
	}
	res.Time = world.MaxVirtualTime()
	res.CellsPerRank = gnx * gny / cfg.P
	return res
}

// hotSpotFrac mirrors the InitialCondition component's layout.
var hotSpotFrac = [3][2]float64{{0.30, 0.30}, {0.70, 0.40}, {0.45, 0.72}}

// Table5Stats holds the paper's Table 5 row: run-time statistics over
// machine sizes for one per-processor problem size.
type Table5Stats struct {
	PerProcN     int
	Times        []float64
	Mean, Median float64
	Sigma        float64
}

// RunTable5 runs the constant-per-processor-workload study (Fig 8 data,
// Table 5 statistics). ps lists the machine sizes (paper: up to 48).
func RunTable5(costs CellCosts, sizes, ps []int) []Table5Stats {
	var out []Table5Stats
	for _, n := range sizes {
		st := Table5Stats{PerProcN: n}
		for _, p := range ps {
			r := RunScaling(ScalingConfig{P: p, PerProcN: n, Costs: costs})
			st.Times = append(st.Times, r.Time)
		}
		st.Mean, st.Median, st.Sigma = stats(st.Times)
		out = append(out, st)
	}
	return out
}

// Fig9Point is one strong-scaling measurement.
type Fig9Point struct {
	P          int
	Time       float64
	Ideal      float64
	Efficiency float64
}

// RunFig9 runs the constant-global-problem study for one mesh.
func RunFig9(costs CellCosts, globalN int, ps []int) []Fig9Point {
	var out []Fig9Point
	var t1 float64
	for _, p := range ps {
		r := RunScaling(ScalingConfig{P: p, GlobalNx: globalN, GlobalNy: globalN, Costs: costs})
		if p == 1 || t1 == 0 {
			t1 = r.Time * float64(p) // if ps does not start at 1
		}
		pt := Fig9Point{P: p, Time: r.Time, Ideal: t1 / float64(p)}
		pt.Efficiency = pt.Ideal / r.Time
		out = append(out, pt)
	}
	return out
}

func stats(xs []float64) (mean, median, sigma float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sigma += (x - mean) * (x - mean)
	}
	sigma = math.Sqrt(sigma / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	m := len(sorted) / 2
	if len(sorted)%2 == 1 {
		median = sorted[m]
	} else {
		median = 0.5 * (sorted[m-1] + sorted[m])
	}
	return mean, median, sigma
}

// PrintTable5 renders the weak-scaling statistics like the paper.
func PrintTable5(w io.Writer, rows []Table5Stats, ps []int) {
	fmt.Fprintf(w, "Table 5: reaction-diffusion run-time statistics, constant per-processor workload\n")
	fmt.Fprintf(w, "(simulated CPlant; machine sizes %v; 5 steps of 1e-7 s)\n\n", ps)
	fmt.Fprintf(w, "%-14s %10s %10s %10s\n", "Problem Size", "Mean(s)", "Median(s)", "Sigma(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%3dx%-10d %10.3f %10.3f %10.3f\n", r.PerProcN, r.PerProcN, r.Mean, r.Median, r.Sigma)
	}
	fmt.Fprintf(w, "\nPaper reference (433 MHz Alphas): 50x50: 43.94/44.4/2.72; 100x100: 161.7/159.6/5.81; 175x175: 507.1/506.05/20.57.\n")
	fmt.Fprintf(w, "Expected shape: times scale with per-processor size and stay flat in P (sigma small vs mean).\n")
}

// PrintFig8 renders the weak-scaling series.
func PrintFig8(w io.Writer, rows []Table5Stats, ps []int) {
	fmt.Fprintf(w, "Fig 8: run time vs machine size, constant per-processor workload\n\n")
	fmt.Fprintf(w, "%6s", "P")
	for _, r := range rows {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("%dx%d (s)", r.PerProcN, r.PerProcN))
	}
	fmt.Fprintln(w)
	for i, p := range ps {
		fmt.Fprintf(w, "%6d", p)
		for _, r := range rows {
			fmt.Fprintf(w, " %12.3f", r.Times[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nExpected shape: flat lines — growing the machine with the problem leaves run time unchanged.\n")
}

// PrintFig9 renders the strong-scaling comparison.
func PrintFig9(w io.Writer, series map[int][]Fig9Point) {
	fmt.Fprintf(w, "Fig 9: strong scaling vs ideal, constant global problem size\n\n")
	keys := make([]int, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, n := range keys {
		fmt.Fprintf(w, "mesh %dx%d:\n", n, n)
		fmt.Fprintf(w, "%6s %12s %12s %12s\n", "P", "Time(s)", "Ideal(s)", "Efficiency")
		for _, pt := range series[n] {
			fmt.Fprintf(w, "%6d %12.3f %12.3f %11.1f%%\n", pt.P, pt.Time, pt.Ideal, 100*pt.Efficiency)
		}
	}
	fmt.Fprintf(w, "\nPaper reference: 350x350 follows ideal closely; 200x200 degrades, worst 73%% at P=48 (29x29 per rank).\n")
}

// NetSweepResult compares strong-scaling efficiency across network
// models — the paper ran on two fabrics (Myrinet CPlant for the
// scaling study, 100bT fast Ethernet for the long flame run), and the
// fabric choice moves the efficiency crossover.
type NetSweepResult struct {
	Label  string
	Model  mpi.NetworkModel
	Points []Fig9Point
}

// RunNetSweep runs the strong-scaling curve for each named network.
func RunNetSweep(costs CellCosts, globalN int, ps []int) []NetSweepResult {
	nets := []NetSweepResult{
		{Label: "CPlant Myrinet (60us, 132MB/s)", Model: mpi.CPlantModel},
		{Label: "100bT Ethernet (80us, 11MB/s)", Model: mpi.FastEthernetModel},
	}
	for i := range nets {
		var t1 float64
		for _, p := range ps {
			r := RunScaling(ScalingConfig{P: p, GlobalNx: globalN, GlobalNy: globalN,
				Costs: costs, Model: nets[i].Model})
			if t1 == 0 {
				t1 = r.Time * float64(p)
			}
			pt := Fig9Point{P: p, Time: r.Time, Ideal: t1 / float64(p)}
			pt.Efficiency = pt.Ideal / r.Time
			nets[i].Points = append(nets[i].Points, pt)
		}
	}
	return nets
}

// PrintNetSweep renders the comparison.
func PrintNetSweep(w io.Writer, globalN int, sweeps []NetSweepResult) {
	fmt.Fprintf(w, "Network ablation: strong scaling of the %dx%d mesh on the paper's two fabrics\n\n", globalN, globalN)
	fmt.Fprintf(w, "%6s", "P")
	for _, s := range sweeps {
		fmt.Fprintf(w, " %14s", s.Label[:14])
	}
	fmt.Fprintln(w)
	if len(sweeps) == 0 {
		return
	}
	for i := range sweeps[0].Points {
		fmt.Fprintf(w, "%6d", sweeps[0].Points[i].P)
		for _, s := range sweeps {
			fmt.Fprintf(w, " %13.1f%%", 100*s.Points[i].Efficiency)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nExpected shape: the slower fabric loses efficiency sooner (larger beta term on the ghost volume).\n")
}
