package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ccahydro/internal/obs"
)

// fakeSeries is a hand-rolled SeriesSource for server tests.
type fakeSeries struct {
	mu      sync.Mutex
	series  map[string][]float64
	version uint64
}

func newFakeSeries() *fakeSeries {
	return &fakeSeries{series: map[string][]float64{}}
}

func (fs *fakeSeries) add(key string, v float64) {
	fs.mu.Lock()
	fs.series[key] = append(fs.series[key], v)
	fs.version++
	fs.mu.Unlock()
}

func (fs *fakeSeries) Keys() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.series))
	for k := range fs.series {
		out = append(out, k)
	}
	return out
}

func (fs *fakeSeries) GetSince(key string, from int) []float64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s := fs.series[key]
	if from >= len(s) {
		return nil
	}
	return append([]float64(nil), s[from:]...)
}

func (fs *fakeSeries) Version() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.version
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	g := obs.NewGroup(2)
	g.Rank(0).Metrics().Counter("events_total").Add(3)
	g.Rank(0).Span("samr", "step 0")()
	h := NewHub(2, g)
	h.SetPhase("running")
	src := newFakeSeries()
	src.add("stepSeconds", 0.25)
	h.Rank(0).SetSeries(src)
	h.Rank(0).NoteStep(0)

	s, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "# TYPE events_total counter") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}

	code, body = get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz code = %d", code)
	}
	var health Health
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if health.Phase != "running" || len(health.Ranks) != 2 || health.Ranks[0].Step != 0 {
		t.Fatalf("/healthz: %+v", health)
	}

	code, body = get(t, base+"/series?follow=0")
	if code != http.StatusOK {
		t.Fatalf("/series code = %d", code)
	}
	var pt SeriesPoint
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &pt); err != nil {
		t.Fatalf("/series line: %v\n%s", err, body)
	}
	if pt.Rank != 0 || pt.Key != "stepSeconds" || pt.Index != 0 || pt.Value != 0.25 {
		t.Fatalf("/series point: %+v", pt)
	}

	code, body = get(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace code = %d", code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/trace has no events")
	}
}

func TestServerDetachedObs(t *testing.T) {
	h := NewHub(1, nil)
	s, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()
	if code, _ := get(t, base+"/metrics"); code != http.StatusServiceUnavailable {
		t.Fatalf("/metrics without group: code %d, want 503", code)
	}
	if code, _ := get(t, base+"/trace"); code != http.StatusServiceUnavailable {
		t.Fatalf("/trace without group: code %d, want 503", code)
	}
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz without group: code %d, want 200", code)
	}
}

func TestHealthzReports503OnDeadRank(t *testing.T) {
	h := NewHub(2, nil)
	h.SetPhase("running")
	h.Rank(1).Emit(EvRankFailed, -1, "boom")
	s, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with dead rank: code %d, want 503\n%s", code, body)
	}
}

// TestSeriesFollowStreams proves /series is a live stream: a follower
// connected mid-run receives samples recorded after it connected, and
// the stream terminates when the run reaches a terminal phase.
func TestSeriesFollowStreams(t *testing.T) {
	h := NewHub(1, nil)
	h.SetPhase("running")
	src := newFakeSeries()
	h.Rank(0).SetSeries(src)
	s, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	src.add("T", 300)
	resp, err := http.Get("http://" + s.Addr() + "/series")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type result struct {
		points []SeriesPoint
		err    error
	}
	done := make(chan result, 1)
	go func() {
		var res result
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var pt SeriesPoint
			if err := json.Unmarshal(sc.Bytes(), &pt); err != nil {
				res.err = fmt.Errorf("line %q: %w", sc.Text(), err)
				break
			}
			res.points = append(res.points, pt)
		}
		done <- res
	}()

	// Samples recorded while the follower is attached; NoteStep fires
	// the hub watch channel, like a driver step would.
	src.add("T", 310)
	h.Rank(0).NoteStep(1)
	src.add("T", 320)
	h.Rank(0).NoteStep(2)
	time.Sleep(50 * time.Millisecond)
	h.SetPhase("done")

	select {
	case res := <-done:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if len(res.points) != 3 {
			t.Fatalf("follower saw %d points, want 3: %+v", len(res.points), res.points)
		}
		for i, pt := range res.points {
			if pt.Index != i || pt.Value != float64(300+10*i) {
				t.Fatalf("point %d: %+v", i, pt)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not terminate after the run finished")
	}
}

// TestShutdownDrainsFollowers is the graceful-shutdown regression: an
// in-flight /series follower on a still-running hub must receive every
// sample recorded so far and see its stream end when Shutdown is
// called, and Shutdown/Close must be safe to call repeatedly in any
// order.
func TestShutdownDrainsFollowers(t *testing.T) {
	h := NewHub(1, nil)
	h.SetPhase("running")
	src := newFakeSeries()
	h.Rank(0).SetSeries(src)
	s, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}

	src.add("T", 300)
	src.add("T", 310)
	resp, err := http.Get("http://" + s.Addr() + "/series")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan []SeriesPoint, 1)
	go func() {
		var pts []SeriesPoint
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var pt SeriesPoint
			if json.Unmarshal(sc.Bytes(), &pt) == nil {
				pts = append(pts, pt)
			}
		}
		done <- pts
	}()

	// Give the follower a moment to attach, then shut down with the run
	// still in phase "running" — only the done channel can end the
	// stream.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	select {
	case pts := <-done:
		if len(pts) != 2 {
			t.Fatalf("follower saw %d points across shutdown, want 2: %+v", len(pts), pts)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not end the in-flight /series stream")
	}

	// Double shutdown, shutdown-after-close, close-after-shutdown: all
	// must return without panicking on the sync.Once-guarded stop.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	s.Close()
	if err := s.Shutdown(ctx); err != nil && err != http.ErrServerClosed {
		t.Fatalf("Shutdown after Close: %v", err)
	}
}
