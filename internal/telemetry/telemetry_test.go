package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccahydro/internal/obs"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var h *Hub
	var rk *Rank
	h.SetPhase("running")
	h.Emit(EvPhase, "x")
	h.StartAttempt(1)
	h.OnRankFailure(1, errors.New("boom"))
	if _, err := h.DumpAll("x", nil); err != nil {
		t.Fatalf("nil hub DumpAll: %v", err)
	}
	if got := h.Health(); got.Phase != "detached" {
		t.Fatalf("nil hub health phase = %q", got.Phase)
	}
	rk.NoteStep(3)
	rk.Emit(EvRegrid, 3, "")
	rk.TraceEvent(obs.Event{Ph: 'X'})
	rk.SetClock(nil)
	rk.SetSeries(nil)
	if rk.Series() != nil || rk.FlightEvents() != nil {
		t.Fatal("nil rank returned non-nil state")
	}
}

func TestEventStamping(t *testing.T) {
	h := NewHub(2, nil)
	rk := h.Rank(1)
	vt := 0.0
	rk.SetClock(func() float64 { return vt })
	gen := 0
	rk.SetGeneration(func() int { return gen })

	rk.NoteStep(0)
	vt, gen = 2.5, 3
	rk.Emit(EvRegrid, -1, "finer")

	evs := rk.FlightEvents()
	if len(evs) != 2 {
		t.Fatalf("ring holds %d events, want 2", len(evs))
	}
	rg := evs[1]
	if rg.Kind != EvRegrid || rg.Rank != 1 || rg.Step != 0 || rg.VT != 2.5 || rg.Gen != 3 || rg.Detail != "finer" {
		t.Fatalf("bad stamp: %+v", rg)
	}
	if evs[0].Seq >= rg.Seq {
		t.Fatalf("sequence not monotone: %d then %d", evs[0].Seq, rg.Seq)
	}

	health := h.Health()
	if health.Ranks[1].Step != 0 || health.Ranks[1].VirtualTime != 2.5 || health.Ranks[1].Generation != 3 {
		t.Fatalf("health rollup: %+v", health.Ranks[1])
	}
	if health.Ranks[0].Step != 0 || !health.Ranks[0].Alive {
		t.Fatalf("untouched rank: %+v", health.Ranks[0])
	}
}

func TestHealthTracksCheckpointAndLiveness(t *testing.T) {
	h := NewHub(2, nil)
	if got := h.Health().LastCheckpointStep; got != -1 {
		t.Fatalf("pristine lastCheckpointStep = %d, want -1", got)
	}
	h.Rank(0).Emit(EvCkptSave, 4, "full")
	h.Rank(1).Emit(EvRankFailed, -1, "mpi: rank 1 failed at step 5")
	doc := h.Health()
	if doc.LastCheckpointStep != 4 {
		t.Fatalf("lastCheckpointStep = %d, want 4", doc.LastCheckpointStep)
	}
	if doc.Ranks[1].Alive || !doc.Ranks[0].Alive {
		t.Fatalf("liveness: %+v", doc.Ranks)
	}
	h.StartAttempt(2)
	if !h.Health().Ranks[1].Alive {
		t.Fatal("StartAttempt did not revive rank 1")
	}
	if h.Health().Attempt != 2 {
		t.Fatalf("attempt = %d, want 2", h.Health().Attempt)
	}
}

func TestJSONLEventLog(t *testing.T) {
	h := NewHub(1, nil)
	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := h.LogTo(path); err != nil {
		t.Fatal(err)
	}
	h.Rank(0).NoteStep(0)
	h.Rank(0).Emit(EvCkptSave, 0, "full")
	h.SetPhase("done")
	if err := h.CloseLog(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var kinds []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []string{EvStep, EvCkptSave, EvPhase}
	if len(kinds) != len(want) {
		t.Fatalf("log has kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("log kind %d = %q, want %q", i, kinds[i], want[i])
		}
	}
}

func TestFlightDump(t *testing.T) {
	h := NewHub(2, nil)
	dir := t.TempDir()
	h.SetFlightDir(dir)
	h.StartAttempt(1)
	h.Rank(0).NoteStep(0)
	h.Rank(1).NoteStep(0)
	h.Rank(1).Emit(EvFaultInject, -1, "kill at step 0")
	h.OnRankFailure(1, errors.New("mpi: rank 1 failed at step 0"))

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d dumps written, want 1", len(entries))
	}
	name := entries[0].Name()
	if !strings.HasPrefix(name, "flight-001-retry1") {
		t.Fatalf("dump name = %q", name)
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var hdr struct {
		Flight flightHeader `json:"flight"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("bad header line: %v", err)
	}
	if hdr.Flight.Reason != "retry1" || hdr.Flight.Cause == "" || hdr.Flight.Events != len(lines)-1 {
		t.Fatalf("header: %+v (%d event lines)", hdr.Flight, len(lines)-1)
	}
	var last Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != EvSupervisorRetry {
		t.Fatalf("last dumped event kind = %q, want %q", last.Kind, EvSupervisorRetry)
	}
	var prevSeq uint64
	sawFault := false
	for _, ln := range lines[1:] {
		var ev Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Seq <= prevSeq {
			t.Fatalf("dump not sorted by seq: %d after %d", ev.Seq, prevSeq)
		}
		prevSeq = ev.Seq
		if ev.Kind == EvFaultInject {
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatal("dump does not contain the fault injection")
	}

	// No flight dir configured: silent no-op.
	h2 := NewHub(1, nil)
	if path, err := h2.DumpAll("x", nil); err != nil || path != "" {
		t.Fatalf("dump without dir: path=%q err=%v", path, err)
	}
}

func TestTraceEventTee(t *testing.T) {
	g := obs.NewGroup(1)
	h := NewHub(1, g)
	rk := h.Rank(0)
	g.Rank(0).Tracer().SetSink(rk)
	g.Rank(0).Span("samr", "step 0")()
	g.Rank(0).Tracer().Instant(0, "ckpt", "save")
	g.Rank(0).Tracer().Emit(obs.Event{Ph: 's', Cat: "halo", Name: "flight"}) // flow: filtered

	evs := rk.FlightEvents()
	if len(evs) != 2 {
		t.Fatalf("%d teed events, want 2 (span+mark, no flow)", len(evs))
	}
	if evs[0].Kind != EvSpan || evs[0].Cat != "samr" || evs[0].Detail != "step 0" {
		t.Fatalf("teed span: %+v", evs[0])
	}
	if evs[1].Kind != EvMark || evs[1].Cat != "ckpt" || evs[1].Detail != "save" {
		t.Fatalf("teed mark: %+v", evs[1])
	}
	// Teed events stay out of the structured counters.
	if n := h.EventCounts()[EvSpan]; n != 0 {
		t.Fatalf("span counted %d times in structured counts", n)
	}
}

func TestWatchNotifies(t *testing.T) {
	h := NewHub(1, nil)
	c, cancel := h.Watch()
	defer cancel()
	h.Rank(0).NoteStep(0)
	select {
	case <-c:
	default:
		t.Fatal("watch channel not notified")
	}
	v := h.Version()
	if v == 0 {
		t.Fatal("version did not advance")
	}
}

// TestEmitZeroAllocRingPath pins the flight-ring emit cost: with no
// JSONL log attached, recording an event with constant strings must
// not allocate — the ring slot is in place and the stamp closures
// return scalars.
func TestEmitZeroAllocRingPath(t *testing.T) {
	h := NewHub(1, nil)
	rk := h.Rank(0)
	rk.SetClock(func() float64 { return 1.0 })
	rk.NoteStep(0) // warm the counts map for "step"
	if avg := testing.AllocsPerRun(100, func() {
		rk.NoteStep(1)
	}); avg > 0 {
		t.Errorf("NoteStep allocates %.1f objects/op, want 0", avg)
	}
}

// TestTraceEventZeroAlloc pins the tracer-tee cost: teeing a span into
// the flight ring copies string headers and cached stamps only — no
// allocation, whatever the emit rate.
func TestTraceEventZeroAlloc(t *testing.T) {
	h := NewHub(1, nil)
	rk := h.Rank(0)
	rk.SetClock(func() float64 { return 1.0 })
	rk.NoteStep(0) // populate the cached stamp
	ev := obs.Event{Ph: 'X', Cat: "exec", Name: "chunk", Ts: 10, Dur: 2}
	if avg := testing.AllocsPerRun(100, func() {
		rk.TraceEvent(ev)
	}); avg > 0 {
		t.Errorf("TraceEvent allocates %.1f objects/op, want 0", avg)
	}
}

// TestSubstrateEmitZeroAlloc pins the MPI-sink cost the same way: a
// substrate event with constant strings rides the cached stamp and the
// in-place ring slot.
func TestSubstrateEmitZeroAlloc(t *testing.T) {
	h := NewHub(1, nil)
	rk := h.Rank(0)
	sink := rk.Substrate()
	sink.Emit(EvFaultInject, 0, "warm") // warm the counts map
	if avg := testing.AllocsPerRun(100, func() {
		sink.Emit(EvFaultInject, 1, "kill at step 1")
	}); avg > 0 {
		t.Errorf("substrate Emit allocates %.1f objects/op, want 0", avg)
	}
}
