// Package telemetry is the live serving plane over the passive obs
// layer: while internal/obs records (metrics registries, trace rings)
// and only writes files at exit, telemetry answers questions about a
// run *while it is running* and preserves the recent past when it
// dies.
//
// Three cooperating pieces:
//
//   - A Hub with one Rank handle per SPMD rank. Drivers, the
//     checkpoint component, and the MPI substrate emit structured
//     Events through their rank handle; each event is stamped with a
//     global sequence number, the rank, the step, the virtual clock,
//     and the AMR hierarchy generation so multi-rank timelines
//     correlate.
//   - An optional JSONL event log (Hub.LogTo): every structured event
//     appended to disk as it happens.
//   - A crash flight recorder: each Rank owns a fixed-size lock-free
//     ring of the most recent events and tracer spans. Hub.DumpAll
//     writes the merged rings to a post-mortem file; callers invoke it
//     on panic, on ErrRankFailed, and on every ckpt.Supervise retry
//     (the Hub itself implements ckpt.RetryNotifier).
//
// The HTTP server over the Hub lives in server.go. The whole package
// is stdlib-only and nil-safe: a nil *Rank or nil *Hub accepts every
// call as a no-op, so instrumented code paths need no guards and a
// detached run (no -serve, no fault supervision) pays nothing.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"ccahydro/internal/obs"
)

// Event kinds emitted by the instrumented subsystems. Kinds are flat
// strings (not an enum type) so foreign components can add their own
// without touching this package.
const (
	EvStep            = "step"             // driver began a macro step
	EvRegrid          = "regrid"           // SAMR hierarchy changed
	EvCkptSave        = "ckpt.save"        // checkpoint shard enqueued (detail: full|delta)
	EvCkptRestore     = "ckpt.restore"     // restore completed (detail: manifest)
	EvCkptGC          = "ckpt.gc"          // retention GC pass completed
	EvFaultInject     = "fault.inject"     // fault armed on this rank fired
	EvRankFailed      = "rank.failed"      // rank goroutine died with ErrRankFailed
	EvSupervisorRetry = "supervisor.retry" // ckpt.Supervise restarting after rank failure
	EvPhase           = "phase"            // run phase transition (detail: phase name)
	EvSpan            = "span"             // tracer span teed into the flight ring
	EvMark            = "mark"             // tracer instant teed into the flight ring
)

// Event is one structured telemetry record. Seq is a hub-global
// monotone sequence number: merging all ranks' rings sorted by Seq
// reconstructs the interleaved timeline.
type Event struct {
	Seq  uint64  `json:"seq"`
	Rank int     `json:"rank"` // -1 for hub-level (supervisor) events
	Step int     `json:"step"`
	VT   float64 `json:"vt"` // virtual clock seconds (0 when no comm attached)
	Gen  int     `json:"gen"`
	Kind string  `json:"kind"`
	// Cat is set on teed tracer events (span/mark) only: the tracer
	// category, kept separate from Detail so the tee copies string
	// headers instead of concatenating (the tee is on the span hot path
	// and must not allocate).
	Cat    string `json:"cat,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// SeriesSource is the incremental view of a time-series store that the
// /series endpoint streams from. *components.StatisticsComponent
// implements it; the interface lives here so telemetry stays a leaf
// package.
type SeriesSource interface {
	// Keys returns the sorted series names.
	Keys() []string
	// GetSince returns a copy of series key from index from onward
	// (nil when nothing new).
	GetSince(key string, from int) []float64
	// Version is a counter that increases after every append, so a
	// poller can skip the scan entirely when nothing changed.
	Version() uint64
}

// RankHealth is one rank's row in the /healthz report.
type RankHealth struct {
	Rank        int     `json:"rank"`
	Alive       bool    `json:"alive"`
	Step        int     `json:"step"`
	VirtualTime float64 `json:"virtualTime"`
	Generation  int     `json:"generation"`
}

// Health is the /healthz document.
type Health struct {
	Phase              string       `json:"phase"`
	Attempt            int          `json:"attempt"`
	LastCheckpointStep int          `json:"lastCheckpointStep"` // -1 before the first save
	Events             uint64       `json:"events"`
	Ranks              []RankHealth `json:"ranks"`
}

// Hub is the per-run telemetry root: rank handles, phase, the event
// log, and the flight recorder. All methods are safe on a nil
// receiver and safe for concurrent use.
type Hub struct {
	group *obs.Group
	ranks []*Rank
	seq   atomic.Uint64

	phase    atomic.Value // string
	attempt  atomic.Int64
	lastCkpt atomic.Int64
	version  atomic.Uint64 // bumps on every structured event

	countMu sync.Mutex
	counts  map[string]uint64

	logMu sync.Mutex
	logF  *os.File
	logW  *bufio.Writer

	flightMu  sync.Mutex
	flightDir string
	dumpSeq   int

	watchMu  sync.Mutex
	watchers []chan struct{}
	nwatch   atomic.Int64
}

// NewHub builds a hub for an n-rank run. group may be nil when the
// obs layer is detached; /metrics and /trace then answer 503.
func NewHub(n int, group *obs.Group) *Hub {
	h := &Hub{
		group:  group,
		ranks:  make([]*Rank, n),
		counts: make(map[string]uint64),
	}
	h.phase.Store("idle")
	h.lastCkpt.Store(-1)
	for r := range h.ranks {
		rk := &Rank{hub: h, rank: r}
		rk.alive.Store(true)
		rk.ring.init()
		h.ranks[r] = rk
	}
	return h
}

// Group returns the obs group backing /metrics and /trace (may be nil).
func (h *Hub) Group() *obs.Group {
	if h == nil {
		return nil
	}
	return h.group
}

// NumRanks returns the number of rank handles.
func (h *Hub) NumRanks() int {
	if h == nil {
		return 0
	}
	return len(h.ranks)
}

// Rank returns rank r's handle (nil when out of range or h is nil, so
// the result is always safe to use).
func (h *Hub) Rank(r int) *Rank {
	if h == nil || r < 0 || r >= len(h.ranks) {
		return nil
	}
	return h.ranks[r]
}

// SetPhase records a run phase transition ("running", "done",
// "failed", ...) and emits a phase event.
func (h *Hub) SetPhase(phase string) {
	if h == nil {
		return
	}
	h.phase.Store(phase)
	h.Emit(EvPhase, phase)
}

// Phase returns the current run phase.
func (h *Hub) Phase() string {
	if h == nil {
		return ""
	}
	return h.phase.Load().(string)
}

// Finished reports whether the run reached a terminal phase.
func (h *Hub) Finished() bool {
	p := h.Phase()
	return p == "done" || p == "failed"
}

// StartAttempt marks the beginning of supervised attempt n (1-based):
// every rank is considered alive again until it fails.
func (h *Hub) StartAttempt(n int) {
	if h == nil {
		return
	}
	h.attempt.Store(int64(n))
	for _, rk := range h.ranks {
		rk.alive.Store(true)
	}
	h.Emit(EvPhase, fmt.Sprintf("attempt %d", n))
}

// Emit records a hub-level event (rank -1). Rank-attributed events go
// through Rank.Emit instead.
func (h *Hub) Emit(kind, detail string) {
	if h == nil {
		return
	}
	ev := Event{Seq: h.seq.Add(1), Rank: -1, Step: -1, Kind: kind, Detail: detail}
	if len(h.ranks) > 0 {
		h.ranks[0].ring.put(ev) // hub events ride in rank 0's flight ring
	}
	h.note(ev)
}

// record stamps and routes one rank-attributed event.
func (h *Hub) record(rk *Rank, kind string, step int, detail string) {
	vt, gen := rk.stamp()
	h.put(rk, Event{Rank: rk.rank, Step: step, VT: vt, Gen: gen, Kind: kind, Detail: detail})
}

// put sequences an already-stamped event, rings it on rk, and fans it
// out. The substrate sink uses it directly with cached stamps.
func (h *Hub) put(rk *Rank, ev Event) {
	ev.Seq = h.seq.Add(1)
	rk.ring.put(ev)
	h.note(ev)
}

// note fans one structured event out to the health rollup, the counts
// table, the JSONL log, and any watchers. Tracer spans teed into the
// flight ring bypass note — they would flood the log and the counters
// duplicate obs.Group.EventCounts.
func (h *Hub) note(ev Event) {
	switch ev.Kind {
	case EvCkptSave:
		h.lastCkpt.Store(int64(ev.Step))
	case EvRankFailed:
		if rk := h.Rank(ev.Rank); rk != nil {
			rk.alive.Store(false)
		}
	}

	h.countMu.Lock()
	h.counts[ev.Kind]++
	h.countMu.Unlock()

	h.logMu.Lock()
	if h.logW != nil {
		if b, err := json.Marshal(ev); err == nil {
			h.logW.Write(b)
			h.logW.WriteByte('\n')
		}
	}
	h.logMu.Unlock()

	h.version.Add(1)
	if h.nwatch.Load() > 0 {
		h.watchMu.Lock()
		for _, c := range h.watchers {
			select {
			case c <- struct{}{}:
			default:
			}
		}
		h.watchMu.Unlock()
	}
}

// EventCounts returns a copy of the per-kind structured-event totals.
func (h *Hub) EventCounts() map[string]uint64 {
	if h == nil {
		return nil
	}
	h.countMu.Lock()
	defer h.countMu.Unlock()
	out := make(map[string]uint64, len(h.counts))
	for k, v := range h.counts {
		out[k] = v
	}
	return out
}

// Version returns a counter that bumps on every structured event;
// pollers use it for cheap change detection.
func (h *Hub) Version() uint64 {
	if h == nil {
		return 0
	}
	return h.version.Load()
}

// Watch registers a change-notification channel (capacity 1,
// non-blocking sends) fired on every structured event. The returned
// cancel must be called to unregister.
func (h *Hub) Watch() (<-chan struct{}, func()) {
	if h == nil {
		c := make(chan struct{})
		return c, func() {}
	}
	c := make(chan struct{}, 1)
	h.watchMu.Lock()
	h.watchers = append(h.watchers, c)
	h.watchMu.Unlock()
	h.nwatch.Add(1)
	return c, func() {
		h.watchMu.Lock()
		for i, w := range h.watchers {
			if w == c {
				h.watchers = append(h.watchers[:i], h.watchers[i+1:]...)
				break
			}
		}
		h.watchMu.Unlock()
		h.nwatch.Add(-1)
	}
}

// Health assembles the /healthz document.
func (h *Hub) Health() Health {
	if h == nil {
		return Health{Phase: "detached", LastCheckpointStep: -1}
	}
	doc := Health{
		Phase:              h.Phase(),
		Attempt:            int(h.attempt.Load()),
		LastCheckpointStep: int(h.lastCkpt.Load()),
		Ranks:              make([]RankHealth, len(h.ranks)),
	}
	h.countMu.Lock()
	for _, v := range h.counts {
		doc.Events += v
	}
	h.countMu.Unlock()
	for r, rk := range h.ranks {
		vt, gen := rk.stamp()
		doc.Ranks[r] = RankHealth{
			Rank:        r,
			Alive:       rk.alive.Load(),
			Step:        int(rk.step.Load()),
			VirtualTime: vt,
			Generation:  gen,
		}
	}
	return doc
}

// seriesVersion sums the registered series sources' generation
// counters; /series skips its scan while this is unchanged.
func (h *Hub) seriesVersion() uint64 {
	var v uint64
	for _, rk := range h.ranks {
		if src := rk.Series(); src != nil {
			v += src.Version()
		}
	}
	return v
}

// LogTo opens (truncating) a JSONL event log; every structured event
// is appended as one JSON object per line. Call CloseLog to flush.
func (h *Hub) LogTo(path string) error {
	if h == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	h.logMu.Lock()
	if h.logF != nil {
		h.logW.Flush()
		h.logF.Close()
	}
	h.logF, h.logW = f, bufio.NewWriter(f)
	h.logMu.Unlock()
	return nil
}

// CloseLog flushes and closes the JSONL event log, if open.
func (h *Hub) CloseLog() error {
	if h == nil {
		return nil
	}
	h.logMu.Lock()
	defer h.logMu.Unlock()
	if h.logF == nil {
		return nil
	}
	err := h.logW.Flush()
	if cerr := h.logF.Close(); err == nil {
		err = cerr
	}
	h.logF, h.logW = nil, nil
	return err
}

// SetFlightDir names the directory flight-recorder dumps land in.
// Without one, DumpAll is a no-op.
func (h *Hub) SetFlightDir(dir string) {
	if h == nil {
		return
	}
	h.flightMu.Lock()
	h.flightDir = dir
	h.flightMu.Unlock()
}

// flightHeader is the first line of a flight-recorder dump.
type flightHeader struct {
	Reason  string `json:"reason"`
	Cause   string `json:"cause,omitempty"`
	Attempt int    `json:"attempt"`
	Events  int    `json:"events"`
}

// DumpAll snapshots every rank's flight ring, merges by sequence
// number, and writes one JSONL post-mortem file
// (flight-NNN-<reason>.jsonl: a {"flight":...} header line, then the
// events oldest first). Returns the path written, or "" when no
// flight directory is configured. Callers must only dump at points
// where the rank goroutines have quiesced (after RunOn returns, or
// from a panic handler) — the rings are lock-free and a dump races an
// active writer only in the benign drop-a-slot sense.
func (h *Hub) DumpAll(reason string, cause error) (string, error) {
	if h == nil {
		return "", nil
	}
	h.flightMu.Lock()
	dir := h.flightDir
	h.dumpSeq++
	n := h.dumpSeq
	h.flightMu.Unlock()
	if dir == "" {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var evs []Event
	for _, rk := range h.ranks {
		evs = append(evs, rk.ring.snapshot()...)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })

	path := filepath.Join(dir, fmt.Sprintf("flight-%03d-%s.jsonl", n, reason))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	w := bufio.NewWriter(f)
	hdr := flightHeader{Reason: reason, Attempt: int(h.attempt.Load()), Events: len(evs)}
	if cause != nil {
		hdr.Cause = cause.Error()
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(struct {
		Flight flightHeader `json:"flight"`
	}{hdr}); err != nil {
		f.Close()
		return "", err
	}
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			f.Close()
			return "", err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// OnRankFailure implements ckpt.RetryNotifier: it records the
// supervisor retry and dumps the flight recorder so every injected-
// fault recovery leaves a post-mortem artifact. The retry event is
// emitted first so the dump contains it as its final entry.
func (h *Hub) OnRankFailure(attempt int, err error) {
	if h == nil {
		return
	}
	h.Emit(EvSupervisorRetry, fmt.Sprintf("attempt %d failed: %v", attempt, err))
	// Best effort: a dump failure must never mask the run error.
	h.DumpAll(fmt.Sprintf("retry%d", attempt), err)
}

// Rank is one SPMD rank's telemetry handle. All methods are safe on a
// nil receiver, so instrumented code calls them unguarded; a detached
// framework hands out nil handles and pays nothing.
type Rank struct {
	hub  *Hub
	rank int
	ring ring

	step  atomic.Int64
	alive atomic.Bool

	mu     sync.Mutex
	clock  func() float64
	gen    func() int
	series SeriesSource

	// Last sampled clock/generation, refreshed by stamp. The trace tee
	// and the substrate sink read these instead of calling the samplers:
	// both can fire while the emitter holds component locks (a span
	// inside Regrid, a fault tripped by a send during a remap), and the
	// generation sampler reaches back into the mesh component — calling
	// it there would self-deadlock.
	lastVT  atomic.Uint64 // math.Float64bits
	lastGen atomic.Int64
}

// RankID returns the rank this handle stamps events with.
func (rk *Rank) RankID() int {
	if rk == nil {
		return -1
	}
	return rk.rank
}

// SetClock installs the virtual-clock sampler (typically
// mpi.Comm.VirtualTime). Install before the run starts.
func (rk *Rank) SetClock(clock func() float64) {
	if rk == nil {
		return
	}
	rk.mu.Lock()
	rk.clock = clock
	rk.mu.Unlock()
}

// SetGeneration installs the AMR hierarchy-generation sampler.
func (rk *Rank) SetGeneration(gen func() int) {
	if rk == nil {
		return
	}
	rk.mu.Lock()
	rk.gen = gen
	rk.mu.Unlock()
}

// SetSeries registers the rank's time-series source for /series.
func (rk *Rank) SetSeries(src SeriesSource) {
	if rk == nil {
		return
	}
	rk.mu.Lock()
	rk.series = src
	rk.mu.Unlock()
}

// Series returns the registered series source (nil when detached).
func (rk *Rank) Series() SeriesSource {
	if rk == nil {
		return nil
	}
	rk.mu.Lock()
	defer rk.mu.Unlock()
	return rk.series
}

// stamp samples the virtual clock and hierarchy generation and caches
// the result for the lock-free paths. The samplers are invoked outside
// rk.mu (they may block on component or communicator state) — only the
// function values are read under the lock.
func (rk *Rank) stamp() (vt float64, gen int) {
	rk.mu.Lock()
	clock, genFn := rk.clock, rk.gen
	rk.mu.Unlock()
	if clock != nil {
		vt = clock()
	}
	if genFn != nil {
		gen = genFn()
	}
	rk.lastVT.Store(math.Float64bits(vt))
	rk.lastGen.Store(int64(gen))
	return vt, gen
}

// cachedStamp returns the last sampled clock/generation without calling
// the samplers — safe from any context, including under component locks.
func (rk *Rank) cachedStamp() (vt float64, gen int) {
	return math.Float64frombits(rk.lastVT.Load()), int(rk.lastGen.Load())
}

// NoteStep records the rank entering macro step step: it updates the
// health rollup and emits a step event.
func (rk *Rank) NoteStep(step int) {
	if rk == nil {
		return
	}
	rk.step.Store(int64(step))
	rk.Emit(EvStep, step, "")
}

// Emit records one structured event attributed to this rank. A
// negative step means "the last step NoteStep saw" — emitters that
// don't track the step themselves (the MPI substrate, the checkpoint
// writer) pass -1.
func (rk *Rank) Emit(kind string, step int, detail string) {
	if rk == nil {
		return
	}
	if step < 0 {
		step = int(rk.step.Load())
	}
	rk.hub.record(rk, kind, step, detail)
}

// TraceEvent implements obs.EventSink: tracer spans and instants tee
// into the flight ring (only — not the event log or counters, which
// would drown in them), so a post-mortem dump shows the spans leading
// up to the failure interleaved with the structured events.
func (rk *Rank) TraceEvent(ev obs.Event) {
	if rk == nil {
		return
	}
	var kind string
	switch ev.Ph {
	case 'X':
		kind = EvSpan
	case 'i':
		kind = EvMark
	default: // flow arrows are pure trace plumbing
		return
	}
	vt, gen := rk.cachedStamp()
	rk.ring.put(Event{
		Seq:    rk.hub.seq.Add(1),
		Rank:   rk.rank,
		Step:   int(rk.step.Load()),
		VT:     vt,
		Gen:    gen,
		Kind:   kind,
		Cat:    ev.Cat,
		Detail: ev.Name,
	})
}

// Substrate returns the sink the MPI layer should emit through
// (mpi.Comm.SetEvents). Substrate events — fault injections, rank
// deaths — can fire deep inside sends while the caller holds component
// locks, so this sink stamps from the cached clock/generation instead
// of invoking the samplers. A nil receiver yields a usable no-op sink.
func (rk *Rank) Substrate() SubstrateSink {
	return SubstrateSink{rk: rk}
}

// SubstrateSink is the lock-safe emitter handed to the MPI substrate.
type SubstrateSink struct {
	rk *Rank
}

// Emit implements mpi.EventSink.
func (s SubstrateSink) Emit(kind string, step int, detail string) {
	rk := s.rk
	if rk == nil {
		return
	}
	if step < 0 {
		step = int(rk.step.Load())
	}
	vt, gen := rk.cachedStamp()
	rk.hub.put(rk, Event{
		Rank:   rk.rank,
		Step:   step,
		VT:     vt,
		Gen:    gen,
		Kind:   kind,
		Detail: detail,
	})
}

// FlightEvents returns a snapshot of this rank's flight ring, oldest
// first. Meant for tests and post-run inspection; see the DumpAll
// quiescence caveat.
func (rk *Rank) FlightEvents() []Event {
	if rk == nil {
		return nil
	}
	return rk.ring.snapshot()
}
