package telemetry

import "sync/atomic"

// The flight ring is a fixed-size lock-free MPMC ring of the most
// recent Events. Writers never block and never wait on readers: a
// writer that catches a slot still owned by a lapped writer sheds the
// event instead of stalling — a flight recorder's job is "most recent
// history, cheaply", not lossless capture (the JSONL event log is the
// lossless channel).
//
// Protocol, per slot s at ring position pos:
//
//	s.seq == pos            slot free for the writer claiming pos
//	s.seq == ringBusy       writer mid-copy
//	s.seq == pos+ringSize   slot holds generation pos's event
//
// A writer claims pos by CAS on head, marks the slot busy, copies,
// then publishes pos+ringSize. A reader accepts a slot only when seq
// reads pos+ringSize both before and after copying the event out, so
// any overlapping rewrite (which passes through ringBusy) is
// detected and the slot skipped.
const (
	ringSize = 1024 // power of two
	ringMask = ringSize - 1
)

const ringBusy = ^uint64(0)

type ringSlot struct {
	seq atomic.Uint64
	ev  Event
}

type ring struct {
	head  atomic.Uint64
	slots [ringSize]ringSlot
}

// init seeds each slot's sequence with its own index so generation 0
// writers find their slots free.
func (r *ring) init() {
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
}

// put appends ev, overwriting the oldest entry once full. Wait-free
// for the common single-writer-per-rank case; under contention an
// event racing a lapped slot is dropped.
func (r *ring) put(ev Event) {
	for {
		pos := r.head.Load()
		s := &r.slots[pos&ringMask]
		if s.seq.Load() != pos {
			return // lapped writer still owns the slot: shed, don't stall
		}
		if r.head.CompareAndSwap(pos, pos+1) {
			s.seq.Store(ringBusy)
			s.ev = ev
			s.seq.Store(pos + ringSize)
			return
		}
	}
}

// snapshot returns up to the last ringSize events, oldest first.
// Slots mid-write (or rewritten during the copy) are skipped, so the
// result is exact once writers have quiesced and merely recent while
// they race.
func (r *ring) snapshot() []Event {
	head := r.head.Load()
	n := uint64(ringSize)
	if head < n {
		n = head
	}
	out := make([]Event, 0, n)
	for pos := head - n; pos < head; pos++ {
		s := &r.slots[pos&ringMask]
		if s.seq.Load() != pos+ringSize {
			continue
		}
		ev := s.ev
		if s.seq.Load() != pos+ringSize {
			continue
		}
		out = append(out, ev)
	}
	return out
}
