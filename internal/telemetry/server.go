package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"time"
)

// SeriesPoint is one NDJSON line of the /series stream: sample Index
// of series Key on rank Rank. Index makes the stream resumable — a
// reconnecting client can discard duplicates.
type SeriesPoint struct {
	Rank  int     `json:"rank"`
	Key   string  `json:"key"`
	Index int     `json:"index"`
	Value float64 `json:"value"`
}

// Endpoints is one Hub's HTTP surface, usable standalone (Serve) or
// mounted under a prefix by a multi-tenant server — ccaserve scopes one
// per job at /jobs/:id/. The zero value is not useful; build with
// NewEndpoints.
//
//	/metrics  Prometheus text exposition of the merged obs registries
//	/healthz  JSON Health: phase, step, last checkpoint, rank liveness
//	          (503 when the run failed or a rank is down)
//	/series   NDJSON stream of StatisticsComponent samples as steps
//	          complete; ?follow=0 for a non-blocking drain
//	/trace    Chrome-trace snapshot of the live tracer rings
type Endpoints struct {
	hub *Hub
	// done, when non-nil, ends streaming handlers early: a graceful
	// Shutdown closes it so in-flight /series followers drain what they
	// have and return instead of pinning the server open.
	done <-chan struct{}
}

// NewEndpoints builds the endpoint set over hub. done may be nil (no
// early-stop signal); Serve wires its own.
func NewEndpoints(hub *Hub, done <-chan struct{}) *Endpoints {
	return &Endpoints{hub: hub, done: done}
}

// Handler returns the mux serving the four endpoints at the root.
// Mount under http.StripPrefix for scoped (per-job) exposure.
func (e *Endpoints) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", e.metrics)
	mux.HandleFunc("/healthz", e.healthz)
	mux.HandleFunc("/series", e.series)
	mux.HandleFunc("/trace", e.trace)
	return mux
}

// Server is the standalone telemetry server: one Hub's Endpoints bound
// to its own listener.
type Server struct {
	*Endpoints
	ln   net.Listener
	srv  *http.Server
	stop chan struct{}
	once sync.Once
}

// Serve starts the telemetry server on addr (e.g. ":8080" or
// "127.0.0.1:0") and returns once the listener is bound.
func Serve(addr string, hub *Hub) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	stop := make(chan struct{})
	s := &Server{Endpoints: NewEndpoints(hub, stop), ln: ln, stop: stop}
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and drops open connections (streaming
// /series followers included).
func (s *Server) Close() error {
	s.once.Do(func() { close(s.stop) })
	return s.srv.Close()
}

// Shutdown stops the server gracefully: the listener closes, streaming
// followers are told to finish their current drain and hang up, and the
// call waits for in-flight requests (until ctx expires, when it gives
// up the same way http.Server.Shutdown does). Safe to call more than
// once and after Close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.once.Do(func() { close(s.stop) })
	return s.srv.Shutdown(ctx)
}

func (e *Endpoints) metrics(w http.ResponseWriter, _ *http.Request) {
	g := e.hub.Group()
	if g == nil {
		http.Error(w, "telemetry: no metrics group attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.MergedSnapshot().WritePrometheus(w)
}

func (e *Endpoints) healthz(w http.ResponseWriter, _ *http.Request) {
	h := e.hub.Health()
	code := http.StatusOK
	if h.Phase == "failed" {
		code = http.StatusServiceUnavailable
	}
	for _, r := range h.Ranks {
		if !r.Alive {
			code = http.StatusServiceUnavailable
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(h)
}

func (e *Endpoints) trace(w http.ResponseWriter, _ *http.Request) {
	g := e.hub.Group()
	if g == nil {
		http.Error(w, "telemetry: no tracer attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	g.WriteTrace(w)
}

// series streams StatisticsComponent samples as NDJSON. Each
// (rank, key) pair keeps a cursor, so every sample is emitted exactly
// once per connection, in append order, as it lands — the hub's
// watch channel wakes the handler on every structured event (steps
// record samples) and a coarse ticker bounds the worst-case latency.
// The stream ends when the run reaches a terminal phase, the client
// disconnects, the server shuts down (after a final drain), or
// immediately after one drain with ?follow=0.
func (e *Endpoints) series(w http.ResponseWriter, r *http.Request) {
	follow := r.URL.Query().Get("follow") != "0"
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	type cursor struct {
		rank int
		key  string
	}
	cursors := map[cursor]int{}
	emit := func() {
		for rank := 0; rank < e.hub.NumRanks(); rank++ {
			src := e.hub.Rank(rank).Series()
			if src == nil {
				continue
			}
			for _, k := range src.Keys() {
				c := cursor{rank, k}
				base := cursors[c]
				vals := src.GetSince(k, base)
				for i, v := range vals {
					enc.Encode(SeriesPoint{Rank: rank, Key: k, Index: base + i, Value: v})
				}
				cursors[c] += len(vals)
			}
		}
		if fl != nil {
			fl.Flush()
		}
	}

	watch, cancel := e.hub.Watch()
	defer cancel()
	last := ^uint64(0) // force the first scan
	for {
		if e.hub.Finished() {
			emit() // terminal phase was set after the last sample: final drain is complete
			return
		}
		select {
		case <-e.done:
			emit() // shutdown: hand the follower everything recorded so far
			return
		default:
		}
		if v := e.hub.seriesVersion(); v != last {
			last = v
			emit()
		}
		if !follow {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-e.done:
		case <-watch:
		case <-time.After(200 * time.Millisecond):
		}
	}
}
