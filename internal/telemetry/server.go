package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// SeriesPoint is one NDJSON line of the /series stream: sample Index
// of series Key on rank Rank. Index makes the stream resumable — a
// reconnecting client can discard duplicates.
type SeriesPoint struct {
	Rank  int     `json:"rank"`
	Key   string  `json:"key"`
	Index int     `json:"index"`
	Value float64 `json:"value"`
}

// Server is the live telemetry HTTP endpoint set over one Hub:
//
//	/metrics  Prometheus text exposition of the merged obs registries
//	/healthz  JSON Health: phase, step, last checkpoint, rank liveness
//	          (503 when the run failed or a rank is down)
//	/series   NDJSON stream of StatisticsComponent samples as steps
//	          complete; ?follow=0 for a non-blocking drain
//	/trace    Chrome-trace snapshot of the live tracer rings
type Server struct {
	hub *Hub
	ln  net.Listener
	srv *http.Server
}

// Serve starts the telemetry server on addr (e.g. ":8080" or
// "127.0.0.1:0") and returns once the listener is bound.
func Serve(addr string, hub *Hub) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{hub: hub, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/series", s.series)
	mux.HandleFunc("/trace", s.trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and drops open connections (streaming
// /series followers included).
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	g := s.hub.Group()
	if g == nil {
		http.Error(w, "telemetry: no metrics group attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.MergedSnapshot().WritePrometheus(w)
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	h := s.hub.Health()
	code := http.StatusOK
	if h.Phase == "failed" {
		code = http.StatusServiceUnavailable
	}
	for _, r := range h.Ranks {
		if !r.Alive {
			code = http.StatusServiceUnavailable
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(h)
}

func (s *Server) trace(w http.ResponseWriter, _ *http.Request) {
	g := s.hub.Group()
	if g == nil {
		http.Error(w, "telemetry: no tracer attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	g.WriteTrace(w)
}

// series streams StatisticsComponent samples as NDJSON. Each
// (rank, key) pair keeps a cursor, so every sample is emitted exactly
// once per connection, in append order, as it lands — the hub's
// watch channel wakes the handler on every structured event (steps
// record samples) and a coarse ticker bounds the worst-case latency.
// The stream ends when the run reaches a terminal phase, the client
// disconnects, or immediately after one drain with ?follow=0.
func (s *Server) series(w http.ResponseWriter, r *http.Request) {
	follow := r.URL.Query().Get("follow") != "0"
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	type cursor struct {
		rank int
		key  string
	}
	cursors := map[cursor]int{}
	emit := func() {
		for rank := 0; rank < s.hub.NumRanks(); rank++ {
			src := s.hub.Rank(rank).Series()
			if src == nil {
				continue
			}
			for _, k := range src.Keys() {
				c := cursor{rank, k}
				base := cursors[c]
				vals := src.GetSince(k, base)
				for i, v := range vals {
					enc.Encode(SeriesPoint{Rank: rank, Key: k, Index: base + i, Value: v})
				}
				cursors[c] += len(vals)
			}
		}
		if fl != nil {
			fl.Flush()
		}
	}

	watch, cancel := s.hub.Watch()
	defer cancel()
	last := ^uint64(0) // force the first scan
	for {
		if s.hub.Finished() {
			emit() // terminal phase was set after the last sample: final drain is complete
			return
		}
		if v := s.hub.seriesVersion(); v != last {
			last = v
			emit()
		}
		if !follow {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-watch:
		case <-time.After(200 * time.Millisecond):
		}
	}
}
