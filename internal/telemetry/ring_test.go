package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func TestRingPutSnapshotInOrder(t *testing.T) {
	var r ring
	r.init()
	for i := 0; i < 10; i++ {
		r.put(Event{Seq: uint64(i + 1), Kind: EvStep, Step: i})
	}
	evs := r.snapshot()
	if len(evs) != 10 {
		t.Fatalf("snapshot returned %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Step != i {
			t.Fatalf("event %d has step %d, want %d (oldest-first order)", i, ev.Step, i)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	var r ring
	r.init()
	total := ringSize + 100
	for i := 0; i < total; i++ {
		r.put(Event{Seq: uint64(i + 1), Step: i})
	}
	evs := r.snapshot()
	if len(evs) != ringSize {
		t.Fatalf("snapshot returned %d events, want %d", len(evs), ringSize)
	}
	if first := evs[0].Step; first != total-ringSize {
		t.Fatalf("oldest surviving step = %d, want %d", first, total-ringSize)
	}
	if last := evs[len(evs)-1].Step; last != total-1 {
		t.Fatalf("newest step = %d, want %d", last, total-1)
	}
}

// TestRingConcurrentPut hammers the ring from many writers, then
// snapshots after quiescing: every surviving event must be intact (its
// Detail consistent with its Step), whatever was shed under lapping.
func TestRingConcurrentPut(t *testing.T) {
	var r ring
	r.init()
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				step := w*perWriter + i
				r.put(Event{Step: step, Detail: fmt.Sprintf("d%d", step)})
			}
		}(w)
	}
	wg.Wait()
	evs := r.snapshot()
	if len(evs) == 0 {
		t.Fatal("empty snapshot after concurrent puts")
	}
	for _, ev := range evs {
		if want := fmt.Sprintf("d%d", ev.Step); ev.Detail != want {
			t.Fatalf("torn event: step %d has detail %q", ev.Step, ev.Detail)
		}
	}
}
