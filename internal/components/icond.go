package components

import (
	"math"

	"ccahydro/internal/cca"
)

// InitialCondition initializes the reaction–diffusion field with hot
// spots in a cold stoichiometric H2–air mixture (the paper's
// three-hot-spot configuration). The field layout is [T, Y_0..Y_{n-1}].
// Parameters:
//
//	Tcold   ambient temperature (default 300 K)
//	Thot    hot-spot peak temperature (default 1800 K)
//	radius  hot-spot radius as a fraction of the domain (default 0.06)
//	nspots  number of hot spots (default 3, capped at 4)
type InitialCondition struct {
	svc cca.Services
}

// hotSpotCenters are fixed fractional positions (the paper's layout is
// unspecified; these three are well separated).
var hotSpotCenters = [4][2]float64{
	{0.30, 0.30}, {0.70, 0.40}, {0.45, 0.72}, {0.75, 0.75},
}

// SetServices implements cca.Component.
func (ic *InitialCondition) SetServices(svc cca.Services) error {
	ic.svc = svc
	if err := svc.RegisterUsesPort("chemistry", ChemistryPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(ic, "ic", ICFieldPortType)
}

// Impose implements ICFieldPort: writes T and mass fractions over the
// whole hierarchy (all levels, interiors and ghosts).
func (ic *InitialCondition) Impose(mesh MeshPort, name string) {
	p, err := ic.svc.GetPort("chemistry")
	if err != nil {
		panic(err)
	}
	ic.svc.ReleasePort("chemistry")
	mech := p.(ChemistryPort).Mechanism()
	Y := mech.StoichiometricH2Air()

	params := ic.svc.Parameters()
	tCold := params.GetFloat("Tcold", 300)
	tHot := params.GetFloat("Thot", 1800)
	radius := params.GetFloat("radius", 0.06)
	nspots := params.GetInt("nspots", 3)
	if nspots > len(hotSpotCenters) {
		nspots = len(hotSpotCenters)
	}

	d := mesh.Field(name)
	h := d.Hierarchy()
	for l := 0; l < h.NumLevels(); l++ {
		dx, dy := mesh.Spacing(l)
		nx, _ := h.LevelDomain(l).Size()
		lx := dx * float64(nx)
		for _, pd := range d.LocalPatches(l) {
			g := pd.GrownBox()
			for j := g.Lo[1]; j <= g.Hi[1]; j++ {
				for i := g.Lo[0]; i <= g.Hi[0]; i++ {
					x := (float64(i) + 0.5) * dx
					y := (float64(j) + 0.5) * dy
					T := tCold
					for s := 0; s < nspots; s++ {
						cx := hotSpotCenters[s][0] * lx
						cy := hotSpotCenters[s][1] * lx
						r2 := (x-cx)*(x-cx) + (y-cy)*(y-cy)
						sigma2 := (radius * lx) * (radius * lx)
						T += (tHot - tCold) * math.Exp(-r2/(2*sigma2))
					}
					pd.Set(0, i, j, T)
					for k, yk := range Y {
						pd.Set(1+k, i, j, yk)
					}
				}
			}
		}
	}
}

// GasProperties is the shock assembly's Database component: it holds
// gamma and the Air/Freon shock-tube parameters as key-value pairs.
// One instance lives per rank framework, so no locking is needed.
type GasProperties struct {
	db map[string]float64
}

// SetServices implements cca.Component. Parameters prefixed "prop_"
// are loaded into the database.
func (gp *GasProperties) SetServices(svc cca.Services) error {
	gp.db = map[string]float64{
		"gamma":        svc.Parameters().GetFloat("gamma", 1.4),
		"densityRatio": svc.Parameters().GetFloat("densityRatio", 3.0),
		"mach":         svc.Parameters().GetFloat("mach", 1.5),
	}
	return svc.AddProvidesPort(gp, "properties", KeyValuePortType)
}

// SetValue implements KeyValuePort.
func (gp *GasProperties) SetValue(key string, v float64) { gp.db[key] = v }

// Value implements KeyValuePort.
func (gp *GasProperties) Value(key string) (float64, bool) {
	v, ok := gp.db[key]
	return v, ok
}
