package components

import (
	"sort"
	"sync"

	"ccahydro/internal/cca"
)

// StatisticsComponent collects named scalar time series — the paper's
// StatisticsComponent, reused by the flame and shock assemblies for
// diagnostics output.
//
// Concurrency and aliasing contract (StatsPort): all three methods are
// safe to call concurrently. Get returns a fresh copy, never a view of
// the live series, so a reader holding a snapshot cannot race a
// concurrent Record growing the backing array — and a caller mutating
// its copy cannot corrupt the recorded history. Keys returns the series
// names sorted, so exporters iterate deterministically regardless of
// map order or recording interleaving.
type StatisticsComponent struct {
	mu     sync.Mutex
	series map[string][]float64
}

// SetServices implements cca.Component.
func (sc *StatisticsComponent) SetServices(svc cca.Services) error {
	sc.series = make(map[string][]float64)
	return svc.AddProvidesPort(sc, "stats", StatsPortType)
}

// Record implements StatsPort.
func (sc *StatisticsComponent) Record(key string, value float64) {
	sc.mu.Lock()
	sc.series[key] = append(sc.series[key], value)
	sc.mu.Unlock()
}

// Get implements StatsPort.
func (sc *StatisticsComponent) Get(key string) []float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return append([]float64(nil), sc.series[key]...)
}

// Keys implements StatsPort.
func (sc *StatisticsComponent) Keys() []string {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]string, 0, len(sc.series))
	for k := range sc.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
