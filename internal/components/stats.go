package components

import (
	"sort"
	"sync"
	"sync/atomic"

	"ccahydro/internal/cca"
)

// StatisticsComponent collects named scalar time series — the paper's
// StatisticsComponent, reused by the flame and shock assemblies for
// diagnostics output.
//
// Concurrency and aliasing contract (StatsPort): all methods are safe
// to call concurrently. Get and GetSince return fresh copies, never a
// view of the live series, so a reader holding a snapshot cannot race
// a concurrent Record growing the backing array — and a caller
// mutating its copy cannot corrupt the recorded history. Keys returns
// the series names sorted, so exporters iterate deterministically
// regardless of map order or recording interleaving.
//
// For live streaming, the component also implements
// telemetry.SeriesSource: Version is a generation counter bumped after
// every Record, so a poller skips its scan when nothing changed, and
// GetSince copies only the tail it has not yet seen instead of the
// full history every poll.
type StatisticsComponent struct {
	mu      sync.Mutex
	series  map[string][]float64
	version atomic.Uint64
}

// SetServices implements cca.Component.
func (sc *StatisticsComponent) SetServices(svc cca.Services) error {
	sc.series = make(map[string][]float64)
	return svc.AddProvidesPort(sc, "stats", StatsPortType)
}

// Record implements StatsPort.
func (sc *StatisticsComponent) Record(key string, value float64) {
	sc.mu.Lock()
	sc.series[key] = append(sc.series[key], value)
	sc.mu.Unlock()
	// Bumped after the sample is visible: a reader woken by the new
	// version is guaranteed to see the sample under the lock.
	sc.version.Add(1)
}

// Get implements StatsPort.
func (sc *StatisticsComponent) Get(key string) []float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return append([]float64(nil), sc.series[key]...)
}

// GetSince returns a copy of series key from sample index from onward;
// nil when nothing new (or the key is unknown). The incremental form
// of Get for streaming consumers.
func (sc *StatisticsComponent) GetSince(key string, from int) []float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	s := sc.series[key]
	if from < 0 {
		from = 0
	}
	if from >= len(s) {
		return nil
	}
	return append([]float64(nil), s[from:]...)
}

// Version implements telemetry.SeriesSource: a counter that increases
// after every Record.
func (sc *StatisticsComponent) Version() uint64 {
	return sc.version.Load()
}

// Keys implements StatsPort.
func (sc *StatisticsComponent) Keys() []string {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]string, 0, len(sc.series))
	for k := range sc.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
