package components

import (
	"fmt"
	"math"

	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/mpi"
)

// ErrorEstAndRegrid estimates gradients at each cell and flags regions
// for refinement or coarsening, then triggers a hierarchy rebuild
// (paper Secs. 4.2/4.3 — reused by both the flame and the shock
// assemblies). Parameters:
//
//	threshold  scaled-gradient flag threshold (default 0.08)
//	comp       field component to monitor (default 0, i.e. T or rho)
//	buffer     flag buffer cells (default 2)
type ErrorEstAndRegrid struct {
	svc cca.Services
}

// SetServices implements cca.Component.
func (er *ErrorEstAndRegrid) SetServices(svc cca.Services) error {
	er.svc = svc
	return svc.AddProvidesPort(er, "regrid", RegridPortType)
}

// EstimateAndRegrid implements RegridPort. The error indicator is the
// normalized undivided gradient |Δφ| / (max φ − min φ) per level. All
// ranks flag their local patches; the flag fields are unioned across
// the cohort (allreduce of the bitmap) so the regrid is identical
// everywhere.
func (er *ErrorEstAndRegrid) EstimateAndRegrid(mesh MeshPort, name string) bool {
	p := er.svc.Parameters()
	threshold := p.GetFloat("threshold", 0.08)
	comp := p.GetInt("comp", 0)
	buffer := p.GetInt("buffer", 2)

	d := mesh.Field(name)
	h := d.Hierarchy()
	comm := er.svc.Comm()

	// Global range of the monitored component for normalization.
	lo, hi := math.Inf(1), math.Inf(-1)
	for l := 0; l < h.NumLevels(); l++ {
		for _, pd := range d.LocalPatches(l) {
			b := pd.Interior()
			for j := b.Lo[1]; j <= b.Hi[1]; j++ {
				for i := b.Lo[0]; i <= b.Hi[0]; i++ {
					v := pd.At(comp, i, j)
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
			}
		}
	}
	if comm != nil && comm.Size() > 1 {
		lo = comm.AllreduceScalar(mpi.OpMin, lo)
		hi = comm.AllreduceScalar(mpi.OpMax, hi)
	}
	rng := hi - lo
	if rng <= 0 || math.IsInf(rng, 0) {
		return false
	}

	maxFlagLevel := h.NumLevels()
	if maxFlagLevel > h.MaxLevels-1 {
		maxFlagLevel = h.MaxLevels - 1
	}
	flags := make([]*amr.FlagField, maxFlagLevel)
	for l := 0; l < maxFlagLevel; l++ {
		ff := amr.NewFlagField(h.LevelDomain(l))
		for _, pd := range d.LocalPatches(l) {
			b := pd.Interior()
			for j := b.Lo[1]; j <= b.Hi[1]; j++ {
				for i := b.Lo[0]; i <= b.Hi[0]; i++ {
					c := pd.At(comp, i, j)
					g := math.Max(
						math.Max(math.Abs(pd.At(comp, i+1, j)-c), math.Abs(c-pd.At(comp, i-1, j))),
						math.Max(math.Abs(pd.At(comp, i, j+1)-c), math.Abs(c-pd.At(comp, i, j-1))),
					)
					if g/rng > threshold {
						ff.Set(i, j)
					}
				}
			}
		}
		if comm != nil && comm.Size() > 1 {
			unionFlags(comm, ff)
		}
		ff.Buffer(buffer)
		flags[l] = ff
	}

	before := censusKey(h)
	mesh.Regrid(flags, amr.RegridOptions{})
	return censusKey(mesh.Hierarchy()) != before
}

// unionFlags ORs a flag field across the cohort by allreducing its
// bitmap as 0/1 floats (max = OR).
func unionFlags(comm *mpi.Comm, ff *amr.FlagField) {
	b := ff.Box
	nx, ny := b.Size()
	buf := make([]float64, nx*ny)
	k := 0
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			if ff.Get(i, j) {
				buf[k] = 1
			}
			k++
		}
	}
	out := comm.Allreduce(mpi.OpMax, buf)
	k = 0
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			if out[k] > 0 {
				ff.Set(i, j)
			}
			k++
		}
	}
}

func censusKey(h *amr.Hierarchy) string {
	key := ""
	for _, c := range h.CensusReport() {
		key += fmt.Sprintf("L%d:%d:%d;", c.Level, c.Patches, c.Cells)
	}
	return key
}
